"""Table I transcription checks: the paper's exact layer set."""

import pytest

from repro.conv.workloads import (
    ALL_LAYERS,
    DEFAULT_BATCH,
    GAN_LAYERS,
    RESNET_LAYERS,
    TABLE_I,
    YOLO_LAYERS,
    get_layer,
    layers_for_network,
    networks,
)


class TestTableStructure:
    def test_layer_counts(self):
        assert len(RESNET_LAYERS) == 8
        assert len(GAN_LAYERS) == 8
        assert len(YOLO_LAYERS) == 6
        assert len(ALL_LAYERS) == 22

    def test_figure_order(self):
        assert ALL_LAYERS[:8] == RESNET_LAYERS
        assert ALL_LAYERS[8:16] == GAN_LAYERS
        assert ALL_LAYERS[16:] == YOLO_LAYERS

    def test_all_batches_are_eight(self):
        assert all(layer.batch == DEFAULT_BATCH for layer in ALL_LAYERS)

    def test_networks_ordering(self):
        assert tuple(networks()) == ("resnet", "gan", "yolo")

    def test_unique_qualified_names(self):
        names = [layer.qualified_name for layer in ALL_LAYERS]
        assert len(set(names)) == len(names)


# (input NHWC, filter KHWC, pad, stride) rows transcribed from Table I.
RESNET_ROWS = {
    "C1": ((8, 224, 224, 3), (64, 7, 7, 3), 3, 2),
    "C2": ((8, 56, 56, 64), (64, 3, 3, 64), 1, 1),
    "C3": ((8, 56, 56, 64), (128, 3, 3, 64), 0, 2),
    "C4": ((8, 28, 28, 128), (128, 3, 3, 128), 1, 1),
    "C5": ((8, 28, 28, 128), (256, 3, 3, 128), 0, 2),
    "C6": ((8, 14, 14, 256), (256, 3, 3, 256), 1, 1),
    "C7": ((8, 14, 14, 256), (512, 3, 3, 256), 0, 2),
    "C8": ((8, 7, 7, 512), (512, 3, 3, 512), 1, 1),
}
GAN_ROWS = {
    "TC1": ((8, 4, 4, 512), (256, 5, 5, 512), 2, 2),
    "TC2": ((8, 8, 8, 256), (128, 5, 5, 256), 2, 2),
    "TC3": ((8, 16, 16, 128), (64, 5, 5, 128), 2, 2),
    "TC4": ((8, 32, 32, 64), (3, 5, 5, 64), 2, 2),
    "C1": ((8, 64, 64, 3), (64, 5, 5, 3), 2, 2),
    "C2": ((8, 32, 32, 64), (128, 5, 5, 64), 2, 2),
    "C3": ((8, 16, 16, 128), (256, 5, 5, 128), 2, 2),
    "C4": ((8, 8, 8, 256), (512, 5, 5, 256), 2, 2),
}
YOLO_ROWS = {
    "C1": ((8, 224, 224, 3), (32, 3, 3, 3), 1, 1),
    "C2": ((8, 112, 112, 32), (64, 3, 3, 32), 1, 1),
    "C3": ((8, 56, 56, 64), (128, 3, 3, 64), 1, 1),
    "C4": ((8, 28, 28, 128), (256, 3, 3, 128), 1, 1),
    "C5": ((8, 14, 14, 256), (512, 3, 3, 256), 1, 1),
    "C6": ((8, 7, 7, 512), (1024, 3, 3, 512), 1, 1),
}


@pytest.mark.parametrize(
    "network,rows",
    [("resnet", RESNET_ROWS), ("gan", GAN_ROWS), ("yolo", YOLO_ROWS)],
)
def test_table1_verbatim(network, rows):
    for name, (input_nhwc, filter_khwc, pad, stride) in rows.items():
        layer = get_layer(network, name)
        assert layer.input_nhwc == input_nhwc, layer.qualified_name
        assert layer.filter_nhwc == filter_khwc, layer.qualified_name
        assert layer.pad == pad
        assert layer.stride == stride


def test_gan_tc_layers_are_transposed():
    for layer in GAN_LAYERS:
        assert layer.transposed == layer.name.startswith("TC")


def test_only_gan_has_transposed_layers():
    for network in ("resnet", "yolo"):
        assert not any(layer.transposed for layer in TABLE_I[network])


class TestLookups:
    def test_get_layer(self):
        assert get_layer("resnet", "C2").name == "C2"

    def test_get_layer_unknown_layer(self):
        with pytest.raises(KeyError, match="C9"):
            get_layer("resnet", "C9")

    def test_unknown_network(self):
        with pytest.raises(KeyError, match="vgg"):
            layers_for_network("vgg")

    def test_layers_for_network_returns_copy(self):
        layers = layers_for_network("yolo")
        layers.pop()
        assert len(layers_for_network("yolo")) == 6

    def test_filter_channels_match_input(self):
        for layer in ALL_LAYERS:
            assert layer.filter_nhwc[3] == layer.in_channels
