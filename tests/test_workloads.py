"""Table I transcription checks plus the workload-registry contract."""

import pytest

from repro.conv.attention import ATTENTION_LAYERS, attention_layers, gemm_layer
from repro.conv.workloads import (
    ALL_LAYERS,
    DEFAULT_BATCH,
    GAN_LAYERS,
    RESNET_LAYERS,
    TABLE_I,
    WORKLOADS,
    YOLO_LAYERS,
    get_layer,
    layers_for_network,
    networks,
)


class TestTableStructure:
    def test_layer_counts(self):
        assert len(RESNET_LAYERS) == 8
        assert len(GAN_LAYERS) == 8
        assert len(YOLO_LAYERS) == 6
        assert len(ALL_LAYERS) == 22

    def test_figure_order(self):
        assert ALL_LAYERS[:8] == RESNET_LAYERS
        assert ALL_LAYERS[8:16] == GAN_LAYERS
        assert ALL_LAYERS[16:] == YOLO_LAYERS

    def test_all_batches_are_eight(self):
        assert all(layer.batch == DEFAULT_BATCH for layer in ALL_LAYERS)

    def test_networks_ordering(self):
        # Table I networks first (figure order), registry additions after.
        assert tuple(networks()) == ("resnet", "gan", "yolo", "attention")

    def test_table1_is_exactly_the_paper(self):
        # WORKLOADS may grow; TABLE_I must stay the paper's table.
        assert tuple(TABLE_I) == ("resnet", "gan", "yolo")
        assert "attention" not in TABLE_I

    def test_unique_qualified_names(self):
        names = [
            layer.qualified_name
            for layers in WORKLOADS.values()
            for layer in layers
        ]
        assert len(set(names)) == len(names)


# (input NHWC, filter KHWC, pad, stride) rows transcribed from Table I.
RESNET_ROWS = {
    "C1": ((8, 224, 224, 3), (64, 7, 7, 3), 3, 2),
    "C2": ((8, 56, 56, 64), (64, 3, 3, 64), 1, 1),
    "C3": ((8, 56, 56, 64), (128, 3, 3, 64), 0, 2),
    "C4": ((8, 28, 28, 128), (128, 3, 3, 128), 1, 1),
    "C5": ((8, 28, 28, 128), (256, 3, 3, 128), 0, 2),
    "C6": ((8, 14, 14, 256), (256, 3, 3, 256), 1, 1),
    "C7": ((8, 14, 14, 256), (512, 3, 3, 256), 0, 2),
    "C8": ((8, 7, 7, 512), (512, 3, 3, 512), 1, 1),
}
GAN_ROWS = {
    "TC1": ((8, 4, 4, 512), (256, 5, 5, 512), 2, 2),
    "TC2": ((8, 8, 8, 256), (128, 5, 5, 256), 2, 2),
    "TC3": ((8, 16, 16, 128), (64, 5, 5, 128), 2, 2),
    "TC4": ((8, 32, 32, 64), (3, 5, 5, 64), 2, 2),
    "C1": ((8, 64, 64, 3), (64, 5, 5, 3), 2, 2),
    "C2": ((8, 32, 32, 64), (128, 5, 5, 64), 2, 2),
    "C3": ((8, 16, 16, 128), (256, 5, 5, 128), 2, 2),
    "C4": ((8, 8, 8, 256), (512, 5, 5, 256), 2, 2),
}
YOLO_ROWS = {
    "C1": ((8, 224, 224, 3), (32, 3, 3, 3), 1, 1),
    "C2": ((8, 112, 112, 32), (64, 3, 3, 32), 1, 1),
    "C3": ((8, 56, 56, 64), (128, 3, 3, 64), 1, 1),
    "C4": ((8, 28, 28, 128), (256, 3, 3, 128), 1, 1),
    "C5": ((8, 14, 14, 256), (512, 3, 3, 256), 1, 1),
    "C6": ((8, 7, 7, 512), (1024, 3, 3, 512), 1, 1),
}


@pytest.mark.parametrize(
    "network,rows",
    [("resnet", RESNET_ROWS), ("gan", GAN_ROWS), ("yolo", YOLO_ROWS)],
)
def test_table1_verbatim(network, rows):
    for name, (input_nhwc, filter_khwc, pad, stride) in rows.items():
        layer = get_layer(network, name)
        assert layer.input_nhwc == input_nhwc, layer.qualified_name
        assert layer.filter_nhwc == filter_khwc, layer.qualified_name
        assert layer.pad == pad
        assert layer.stride == stride


def test_gan_tc_layers_are_transposed():
    for layer in GAN_LAYERS:
        assert layer.transposed == layer.name.startswith("TC")


def test_only_gan_has_transposed_layers():
    for network in ("resnet", "yolo"):
        assert not any(layer.transposed for layer in TABLE_I[network])


class TestLookups:
    def test_get_layer(self):
        assert get_layer("resnet", "C2").name == "C2"

    def test_get_layer_unknown_layer(self):
        with pytest.raises(KeyError, match="C9"):
            get_layer("resnet", "C9")

    def test_unknown_network(self):
        with pytest.raises(KeyError, match="vgg"):
            layers_for_network("vgg")

    def test_layers_for_network_returns_copy(self):
        layers = layers_for_network("yolo")
        layers.pop()
        assert len(layers_for_network("yolo")) == 6

    def test_filter_channels_match_input(self):
        for layer in ALL_LAYERS:
            assert layer.filter_nhwc[3] == layer.in_channels


class TestAttentionWorkload:
    """The transformer GEMM block rides the registry natively."""

    def test_registered(self):
        assert WORKLOADS["attention"] is ATTENTION_LAYERS
        assert [s.name for s in ATTENTION_LAYERS] == ["QKV", "QK", "PV", "OUT"]

    def test_gemm_layer_is_identity_embedding(self):
        spec = gemm_layer("X", batch=2, m=48, n=96, k=64)
        g = spec.gemm_shape
        assert (g.m, g.n, g.k) == (2 * 48, 96, 64)
        # 1x1/stride-1/pad-0: im2col workspace == activation matrix.
        assert spec.duplication_factor == 1.0

    def test_bert_base_shapes(self):
        by_name = {s.name: s.gemm_shape for s in ATTENTION_LAYERS}
        # batch 8, seq 128, d_model 768, 12 heads x 64.
        assert (by_name["QKV"].m, by_name["QKV"].n, by_name["QKV"].k) == (
            8 * 128, 3 * 768, 768,
        )
        assert (by_name["QK"].m, by_name["QK"].n, by_name["QK"].k) == (
            8 * 12 * 128, 128, 64,
        )
        assert (by_name["PV"].m, by_name["PV"].n, by_name["PV"].k) == (
            8 * 12 * 128, 64, 128,
        )
        assert (by_name["OUT"].m, by_name["OUT"].n, by_name["OUT"].k) == (
            8 * 128, 768, 768,
        )

    def test_lookup_through_registry_helpers(self):
        assert get_layer("attention", "QK").network == "attention"
        assert len(layers_for_network("attention")) == 4

    def test_head_split_validated(self):
        with pytest.raises(ValueError, match="divisible"):
            attention_layers(d_model=768, heads=7)

    def test_bad_gemm_dims_rejected(self):
        with pytest.raises(ValueError, match="dims"):
            gemm_layer("bad", batch=1, m=0, n=16, k=16)
