"""Kernel trace generation: tiling, octet duplication, scheduling."""

import numpy as np
import pytest

from repro.gpu.config import GPUConfig, KernelConfig, SimulationOptions
from repro.gpu.isa import (
    FILTER_BASE,
    LOAD_A,
    LOAD_B,
    STORE_D,
    WORKSPACE_BASE,
)
from repro.gpu.kernel import (
    gemm_geometry,
    generate_sm_trace,
    sm_cta_blocks,
)

from tests.conftest import make_spec

SMALL_GPU = GPUConfig(num_sms=2)
SMALL_KERNEL = KernelConfig(warp_runahead=2)


@pytest.fixture
def spec():
    # M = 2*6*6 = 72, K = 3*3*8 = 72, N = 16.
    return make_spec(batch=2, h=6, w=6, c=8, filters=16)


@pytest.fixture
def trace(spec):
    return generate_sm_trace(spec, SMALL_GPU, SMALL_KERNEL, SimulationOptions())


class TestGeometry:
    def test_padded_dims(self, spec):
        geom = gemm_geometry(spec)
        assert geom.m == 72 and geom.m_pad == 80
        assert geom.k == 72 and geom.k_pad == 80 and geom.lda == 80
        assert geom.n == 16 and geom.n_pad == 16
        assert geom.k_steps == 5

    def test_cta_striping(self, spec):
        geom = gemm_geometry(spec)
        blocks0, total = sm_cta_blocks(geom, SMALL_KERNEL, SMALL_GPU, 0)
        blocks1, _ = sm_cta_blocks(geom, SMALL_KERNEL, SMALL_GPU, 1)
        assert total == 1  # 72 rows -> one 128-row CTA; 16 cols -> one
        assert len(blocks0) + len(blocks1) == total


class TestTraceStructure:
    def test_event_kinds_present(self, trace):
        kinds = set(trace.kind.tolist())
        assert kinds == {LOAD_A, LOAD_B, STORE_D}

    def test_a_addresses_in_workspace(self, trace, spec):
        geom = gemm_geometry(spec)
        a = trace.address[trace.kind == LOAD_A]
        assert (a >= WORKSPACE_BASE).all()
        assert (a < WORKSPACE_BASE + geom.m_pad * geom.lda * 2).all()

    def test_b_addresses_in_filter_region(self, trace):
        b = trace.address[trace.kind == LOAD_B]
        assert (b >= FILTER_BASE).all()

    def test_octet_duplication(self, trace):
        """Every A fragment address appears an even number of times:
        the octet pair fetches each fragment twice (Section II-B)."""
        a = trace.address[trace.kind == LOAD_A]
        _, counts = np.unique(a, return_counts=True)
        assert (counts % 2 == 0).all()

    def test_dual_instructions_cover_same_fragments(self, trace):
        """Consecutive octet-copy instructions load identical tiles."""
        is_a = trace.kind == LOAD_A
        addr = trace.address[is_a]
        instr = trace.instr[is_a]
        # First two instructions in the trace are the two copies of
        # the first tile.
        first = addr[instr == instr[0]]
        second = addr[instr == instr[0] + 1]
        np.testing.assert_array_equal(first, second)

    def test_instruction_groups_are_16_fragments(self, trace):
        is_a = trace.kind == LOAD_A
        _, counts = np.unique(trace.instr[is_a], return_counts=True)
        assert set(counts.tolist()) == {16}

    def test_instructions_contiguous(self, trace):
        ins = trace.instr[trace.kind != STORE_D]
        # Each instruction's fragments form one contiguous run.
        changes = np.count_nonzero(np.diff(ins))
        assert changes + 1 == len(np.unique(ins))

    def test_mma_ops_match_tiling(self, spec, trace):
        geom = gemm_geometry(spec)
        # 72x16 output: 5 m-tiles x 1 n-tile of 16x16, x k-steps.
        expected = 5 * 1 * geom.k_steps
        assert trace.mma_ops == expected

    def test_load_count_formula(self, spec, trace):
        geom = gemm_geometry(spec)
        m_tiles = -(-geom.m // 16)
        n_tiles = -(-geom.n // 16)
        # Warps sharing a row-block re-load A; warp grid is 4x2 but
        # partial CTAs clamp, so count per valid tile x copies.
        a = int((trace.kind == LOAD_A).sum())
        assert a % (16 * 2) == 0  # whole dual-instructions only

    def test_stores_once_per_output_fragment(self, spec, trace):
        geom = gemm_geometry(spec)
        stores = trace.address[trace.kind == STORE_D]
        assert len(np.unique(stores)) == len(stores)

    def test_partial_tiles_guarded(self, trace, spec):
        """No A row at or beyond the padded allocation."""
        geom = gemm_geometry(spec)
        a = trace.address[trace.kind == LOAD_A]
        rows = (a - WORKSPACE_BASE) // (geom.lda * 2)
        assert rows.max() < geom.m_pad


class TestCtaCapAndScaling:
    def test_max_ctas_caps_trace(self):
        spec = make_spec(batch=8, h=16, w=16, c=8, filters=16)
        full = generate_sm_trace(spec, SMALL_GPU, SMALL_KERNEL, SimulationOptions())
        capped = generate_sm_trace(
            spec, SMALL_GPU, SMALL_KERNEL, SimulationOptions(max_ctas=1)
        )
        assert capped.traced_ctas == 1
        assert capped.total_ctas == full.total_ctas
        assert len(capped) < len(full)
        assert capped.scale_factor == full.total_ctas / 1

    def test_counts_by_kind(self, trace):
        counts = trace.counts_by_kind()
        assert counts["load_a"] == int((trace.kind == LOAD_A).sum())
        assert set(counts) == {"load_a", "load_b", "store_d"}

    def test_concurrent_warps(self, trace):
        assert trace.concurrent_warps >= SMALL_KERNEL.warps_per_cta


class TestRunaheadOrdering:
    def test_runahead_groups_ksteps_per_warp(self):
        spec = make_spec(batch=1, h=8, w=8, c=8, filters=16)
        kern = KernelConfig(warp_runahead=4)
        trace = generate_sm_trace(spec, SMALL_GPU, kern, SimulationOptions())
        is_a = trace.kind == LOAD_A
        warp0 = trace.warp[is_a] == 0
        addrs = trace.address[is_a][warp0]
        geom = gemm_geometry(spec)
        cols = ((addrs - WORKSPACE_BASE) // 2) % geom.lda
        # Warp 0's first burst covers k-steps 0..3 before any later
        # k-step appears.
        ksteps = (cols // 16).tolist()
        first_burst = ksteps[: ksteps.index(4)] if 4 in ksteps else ksteps
        assert set(first_burst) == {0, 1, 2, 3}
