"""Lowering (im2col): the workspace construction and its inverse maps.

The central invariant of the whole reproduction lives here: two
workspace entries hold the same value **iff** the inverse map sends
them to the same padded input coordinate.
"""

import numpy as np
import pytest

from repro.conv.lowering import (
    MERGED_PADDING_ID,
    col2im,
    entries_to_padded_flat,
    lower_input,
    unique_element_count,
    upsample_zero_insert,
    workspace_entry_to_input_coord,
    workspace_shape,
)

from tests.conftest import make_spec


def random_input(spec, rng):
    return rng.standard_normal(spec.input_nhwc)


class TestWorkspaceShape:
    def test_matches_gemm_dims(self, tiny_spec):
        rows, cols = workspace_shape(tiny_spec)
        g = tiny_spec.gemm_shape
        assert (rows, cols) == (g.m, g.k)

    def test_figure1_example_shape(self):
        # 4x4 input, 3x3 filter, no padding -> 4x9 workspace.
        spec = make_spec(h=4, w=4, c=1, filters=1, pad=0)
        assert workspace_shape(spec) == (4, 9)


class TestLowerInput:
    def test_figure1_example_values(self):
        # The worked example from Figure 1(b) of the paper.
        spec = make_spec(h=4, w=4, c=1, filters=1, pad=0)
        x = np.array(
            [[3, 1, 4, -2], [1, 0, -2, 1], [4, -2, 4, 0], [-2, 1, 0, 3]],
            dtype=np.float64,
        ).reshape(1, 4, 4, 1)
        ws = lower_input(spec, x).matrix
        expected = np.array(
            [
                [3, 1, 4, 1, 0, -2, 4, -2, 4],
                [1, 4, -2, 0, -2, 1, -2, 4, 0],
                [1, 0, -2, 4, -2, 4, -2, 1, 0],
                [0, -2, 1, -2, 4, 0, 1, 0, 3],
            ],
            dtype=np.float64,
        )
        np.testing.assert_array_equal(ws, expected)

    def test_row_is_flattened_receptive_field(self, tiny_spec, rng):
        x = random_input(tiny_spec, rng)
        ws = lower_input(tiny_spec, x).matrix
        # Output pixel (2, 3): receptive field rows 1..3, cols 2..4.
        row = 2 * 8 + 3
        field = np.zeros((3, 3, 4))
        padded = np.pad(x[0], ((1, 1), (1, 1), (0, 0)))
        field = padded[2 : 2 + 3, 3 : 3 + 3, :]
        np.testing.assert_allclose(ws[row], field.reshape(-1))

    def test_padding_materialised_as_zero(self, tiny_spec, rng):
        x = random_input(tiny_spec, rng)
        ws = lower_input(tiny_spec, x).matrix
        # Output pixel (0, 0), filter tap (0, 0) reads padding.
        assert ws[0, 0] == 0.0

    def test_shape_validation(self, tiny_spec, rng):
        with pytest.raises(ValueError, match="shape"):
            lower_input(tiny_spec, rng.standard_normal((1, 9, 8, 4)))

    def test_strided(self, strided_spec, rng):
        x = random_input(strided_spec, rng)
        ws = lower_input(strided_spec, x).matrix
        assert ws.shape == workspace_shape(strided_spec)
        # Row 1 = output (0, 1) -> input cols 2..4 (stride 2, no pad).
        np.testing.assert_allclose(
            ws[1].reshape(3, 3, 4), x[0, 0:3, 2:5, :]
        )

    def test_transposed_uses_upsampled_input(self, transposed_spec, rng):
        x = random_input(transposed_spec, rng)
        ws = lower_input(transposed_spec, x).matrix
        assert ws.shape == workspace_shape(transposed_spec)
        up = upsample_zero_insert(x, 2, 1)
        # At least the upsampled zeros appear in the workspace.
        assert (ws == 0).sum() > 0
        assert up.shape[1] == 8


class TestUpsample:
    def test_identity_for_unit_stride(self, rng):
        x = rng.standard_normal((1, 4, 4, 2))
        assert upsample_zero_insert(x, 1, 0) is x

    def test_zero_insertion_pattern(self, rng):
        x = rng.standard_normal((1, 3, 3, 1))
        up = upsample_zero_insert(x, 2, 0)
        assert up.shape == (1, 5, 5, 1)
        np.testing.assert_allclose(up[:, ::2, ::2, :], x)
        assert up[0, 1, :, 0].sum() == 0.0

    def test_output_pad_appends_zero_border(self, rng):
        x = rng.standard_normal((1, 3, 3, 1))
        up = upsample_zero_insert(x, 2, 1)
        assert up.shape == (1, 6, 6, 1)
        assert np.all(up[0, -1, :, 0] == 0)
        assert np.all(up[0, :, -1, 0] == 0)

    def test_rejects_non_nhwc(self, rng):
        with pytest.raises(ValueError, match="NHWC"):
            upsample_zero_insert(rng.standard_normal((3, 3)), 2)


class TestInverseMap:
    def test_equal_ids_iff_equal_values(self, tiny_spec, rng):
        """The load-bearing invariant behind the whole paper."""
        x = random_input(tiny_spec, rng)  # continuous -> a.s. distinct
        ws = lower_input(tiny_spec, x).matrix
        rows, cols = ws.shape
        rr, cc = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
        batch, element = entries_to_padded_flat(
            tiny_spec, rr.ravel(), cc.ravel()
        )
        values = ws.ravel()
        by_id = {}
        for b, e, v in zip(batch, element, values):
            key = (int(b), int(e))
            if key in by_id:
                assert by_id[key] == v, f"id {key} maps to distinct values"
            else:
                by_id[key] = v
        # And unique ID count matches the analytic formula.
        assert len(by_id) == unique_element_count(tiny_spec)

    def test_scalar_map_matches_vectorised(self, strided_spec):
        rows, cols = workspace_shape(strided_spec)
        eff = strided_spec.effective_spec()
        padded_w = eff.in_width + 2 * eff.pad
        for row, col in [(0, 0), (3, 7), (rows - 1, cols - 1)]:
            coord = workspace_entry_to_input_coord(strided_spec, row, col)
            batch, element = entries_to_padded_flat(
                strided_spec, np.array([row]), np.array([col])
            )
            py = coord.iy + eff.pad
            px = coord.ix + eff.pad
            expected = (py * padded_w + px) * eff.in_channels + coord.ch
            assert element[0] == expected
            assert batch[0] == coord.n

    def test_out_of_range_entry_rejected(self, tiny_spec):
        rows, cols = workspace_shape(tiny_spec)
        with pytest.raises(IndexError):
            workspace_entry_to_input_coord(tiny_spec, rows, 0)

    def test_padding_flag(self, tiny_spec):
        coord = workspace_entry_to_input_coord(tiny_spec, 0, 0)
        assert coord.is_padding
        assert coord.iy == -1 and coord.ix == -1

    def test_batch_id_separates_images(self, multibatch_spec):
        rows, cols = workspace_shape(multibatch_spec)
        out = multibatch_spec.output_shape
        per_image = out.pixels
        batch, element = entries_to_padded_flat(
            multibatch_spec,
            np.array([0, per_image, 2 * per_image]),
            np.array([0, 0, 0]),
        )
        assert list(batch) == [0, 1, 2]
        assert element[0] == element[1] == element[2]

    def test_merge_padding_collapses_padding_ids(self, tiny_spec):
        rows, cols = workspace_shape(tiny_spec)
        rr, cc = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
        _, element = entries_to_padded_flat(
            tiny_spec, rr.ravel(), cc.ravel(), merge_padding=True
        )
        assert (element == MERGED_PADDING_ID).sum() > 0
        assert len(np.unique(element)) == unique_element_count(
            tiny_spec, merge_padding=True
        )


class TestUniqueElementCount:
    def test_no_padding_full_coverage(self):
        spec = make_spec(h=6, w=6, c=3, pad=0)
        # Every input element is touched; no padding IDs.
        assert unique_element_count(spec) == 6 * 6 * 3

    def test_with_padding_counts_touched_ring(self, tiny_spec):
        # pad=1, 3x3, stride 1: reach = H+2p in both axes.
        assert unique_element_count(tiny_spec) == 10 * 10 * 4

    def test_merge_padding_single_id(self, tiny_spec):
        assert (
            unique_element_count(tiny_spec, merge_padding=True)
            == 8 * 8 * 4 + 1
        )

    def test_stride_skips_edges(self):
        spec = make_spec(h=9, w=9, pad=0, stride=2, c=2)
        # reach = (out-1)*2 + 3 = 9 -> all rows/cols touched.
        assert unique_element_count(spec) == 9 * 9 * 2


class TestCol2Im:
    def test_adjoint_of_lowering(self, tiny_spec, rng):
        """<lower(x), W> == <x, col2im(W)> for all W (adjoint test)."""
        x = random_input(tiny_spec, rng)
        ws = lower_input(tiny_spec, x).matrix
        w = rng.standard_normal(ws.shape)
        lhs = float((ws * w).sum())
        rhs = float((x * col2im(tiny_spec, w)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_counts_multiplicity(self):
        spec = make_spec(h=4, w=4, c=1, filters=1, pad=0)
        ones = np.ones(workspace_shape(spec))
        back = col2im(spec, ones)
        # Centre elements appear in 4 receptive fields; corners in 1.
        assert back[0, 0, 0, 0] == 1
        assert back[0, 1, 1, 0] == 4

    def test_shape_validation(self, tiny_spec):
        with pytest.raises(ValueError, match="workspace"):
            col2im(tiny_spec, np.zeros((3, 3)))

    def test_accumulate_in_place(self, tiny_spec, rng):
        ws = np.ones(workspace_shape(tiny_spec))
        acc = np.ones(tiny_spec.input_nhwc)
        out = col2im(tiny_spec, ws, accumulate=acc)
        assert out is acc
        assert out.min() >= 1.0
