"""Energy and area models (Section V-H)."""

import pytest

from repro.energy.model import (
    AreaModel,
    DEFAULT_AREA,
    DEFAULT_ENERGY,
    EnergyBreakdown,
    EnergyModel,
    on_chip_energy_reduction,
)
from repro.gpu.stats import LayerStats


def baseline_stats():
    return LayerStats(
        loads_total=10000,
        l1_accesses=10000,
        l2_accesses=3000,
        dram_read_bytes=1000 * 128,
        dram_write_bytes=0,
    )


def duplo_stats():
    return LayerStats(
        loads_total=10000,
        eliminated_fragments=5000,
        lhb_lookups=6000,
        lhb_hits=5000,
        l1_accesses=5000,
        l2_accesses=1200,
        dram_read_bytes=500 * 128,
        dram_write_bytes=0,
    )


class TestEnergyModel:
    def test_baseline_has_no_lhb_energy(self):
        eb = DEFAULT_ENERGY.breakdown(baseline_stats())
        assert eb.picojoules["lhb"] == 0.0
        assert eb.picojoules["rename"] == 0.0

    def test_elimination_reduces_on_chip_energy(self):
        eb = DEFAULT_ENERGY.breakdown(baseline_stats())
        ed = DEFAULT_ENERGY.breakdown(duplo_stats())
        assert ed.on_chip_pj < eb.on_chip_pj
        reduction = on_chip_energy_reduction(eb, ed)
        assert 0 < reduction < 1

    def test_l1_tag_energy_not_saved_by_hits(self):
        """The paper: L1 is probed in parallel with the LHB, so its
        *tag* energy is spent even for eliminated loads; the data
        array is only read by loads that actually proceed."""
        ed = DEFAULT_ENERGY.breakdown(duplo_stats())
        expected = (5000 + 5000) * DEFAULT_ENERGY.l1_tag_pj
        expected += 5000 * DEFAULT_ENERGY.l1_data_pj
        assert ed.picojoules["l1"] == expected

    def test_rf_write_skipped_for_eliminated(self):
        ed = DEFAULT_ENERGY.breakdown(duplo_stats())
        assert ed.picojoules["rf_write"] == 5000 * DEFAULT_ENERGY.rf_write_pj

    def test_rf_reads_unchanged(self):
        eb = DEFAULT_ENERGY.breakdown(baseline_stats())
        ed = DEFAULT_ENERGY.breakdown(duplo_stats())
        assert eb.picojoules["rf_read"] == ed.picojoules["rf_read"]

    def test_dram_is_off_chip(self):
        eb = DEFAULT_ENERGY.breakdown(baseline_stats())
        assert "dram" not in EnergyBreakdown.ON_CHIP
        assert eb.total_pj > eb.on_chip_pj

    def test_merge(self):
        eb = DEFAULT_ENERGY.breakdown(baseline_stats())
        double = eb.merge(eb)
        assert double.on_chip_pj == pytest.approx(2 * eb.on_chip_pj)

    def test_reduction_validates_baseline(self):
        empty = EnergyBreakdown(picojoules={k: 0.0 for k in EnergyBreakdown.ON_CHIP})
        with pytest.raises(ValueError):
            on_chip_energy_reduction(empty, empty)


class TestAreaModel:
    def test_default_overhead_matches_paper(self):
        """Section V-H: 0.77% of the register file's area."""
        assert DEFAULT_AREA.area_overhead(1024) == pytest.approx(
            0.0077, rel=0.03
        )

    def test_overhead_scales_with_entries(self):
        assert DEFAULT_AREA.area_overhead(2048) > DEFAULT_AREA.area_overhead(1024)

    def test_lhb_bits(self):
        assert DEFAULT_AREA.lhb_bits(1024) == 1024 * 53

    def test_regfile_bits(self):
        assert DEFAULT_AREA.regfile_bits() == 256 * 1024 * 8

    def test_entries_validation(self):
        with pytest.raises(ValueError):
            DEFAULT_AREA.lhb_bits(0)

    def test_tag_bits_agree_with_lhb_model(self):
        """The area accounting and the behavioural LHB must derive the
        stored tag from the same explicit field widths — for every
        organisation, not just the paper default."""
        from repro.core.lhb import LoadHistoryBuffer

        for entries, assoc in [
            (1024, 1), (1024, 4), (256, 1), (256, 2), (16, 16), (1, 1),
        ]:
            buf = LoadHistoryBuffer(num_entries=entries, assoc=assoc)
            assert DEFAULT_AREA.tag_bits(entries, assoc) == buf.tag_bits(
                element_bits=DEFAULT_AREA.element_id_bits,
                batch_bits=DEFAULT_AREA.batch_bits,
                pid_bits=DEFAULT_AREA.pid_bits,
            ), (entries, assoc)

    def test_paper_default_composition(self):
        """1024 x (42-bit tag + 11-bit payload); the behavioural model
        stores 10 payload bits (no valid bit — liveness is the
        lifetime window), hence the one-bit-per-entry difference."""
        from repro.core.lhb import LoadHistoryBuffer

        buf = LoadHistoryBuffer(num_entries=1024)
        assert DEFAULT_AREA.tag_bits(1024) == buf.tag_bits() == 42
        assert DEFAULT_AREA.lhb_bits(1024) - buf.storage_bits() == 1024
