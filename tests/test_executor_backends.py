"""Backend equivalence matrix for the adaptive sweep executor.

The executor's cutover and venue selection (inline / threads /
processes / shared-store) are pure *placement* decisions: every
backend must return LayerStats that are ``asdict``-equal to the
serial path, bit for bit, across all engine tiers.  This suite pins
that contract, the cost estimator's honesty (its decisions never leak
into results — hypothesis-fuzzed), the thread-worker metrics rule
(no export/merge, no double-count), the warm-chunk skip, and the
shared-store claim/poll/steal protocol.
"""

import dataclasses
import os
import shutil

import pytest
from hypothesis import given, settings, strategies as st

from tests.conftest import make_spec
from repro import obs
from repro.gpu import simulator
from repro.gpu.config import SimulationOptions
from repro.gpu.ldst import EliminationMode
from repro.gpu.simulator import clear_trace_cache
from repro.runtime import (
    DiskCache,
    SimPoint,
    SweepExecutor,
    estimate_trace_events,
    trace_key,
)

MAX_EXAMPLES = int(os.environ.get("REPRO_FUZZ_EXAMPLES", "25"))

#: Golden layers: plain, strided, and multi-batch geometry.
LAYERS = [
    make_spec(name="bk-plain"),
    make_spec(name="bk-strided", h=9, w=9, pad=0, stride=2),
    make_spec(name="bk-batch3", batch=3, h=6, w=6, c=2, filters=4),
]
OPTIONS = SimulationOptions(max_ctas=2)

#: Engine tiers under test.  The two exact tiers must match serial
#: bit-for-bit; the analytic tier is approximate but must still be
#: identical across *backends* (same closed forms, same answer).
ENGINES = ("auto", "fast", "event", "analytic")

#: (backend, executor kwargs) — every venue plus both forced cutovers.
BACKEND_MATRIX = [
    ("serial", {}),
    ("auto", {"jobs": 4}),
    ("threads", {"jobs": 2, "cutover": 0}),
    ("processes", {"jobs": 2, "cutover": 0}),
    ("auto", {"jobs": 2, "cutover": 0}),          # forced pool
    ("auto", {"jobs": 4, "cutover": float("inf")}),  # forced inline
]


@pytest.fixture(autouse=True)
def _fresh(monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    monkeypatch.delenv("REPRO_FAST_PATH", raising=False)
    obs.disable()
    obs.reset()
    clear_trace_cache()
    yield
    obs.disable()
    obs.reset()
    clear_trace_cache()
    simulator.set_trace_store(None)


def _chunks(engine="auto"):
    options = dataclasses.replace(OPTIONS, engine=engine)
    return [
        [
            SimPoint(spec, options=options, lhb_entries=entries)
            for entries in (64, 1024, None)
        ]
        + [
            SimPoint(
                spec, mode=EliminationMode.BASELINE, options=options
            )
        ]
        for spec in LAYERS
    ]


def _stat_rows(rows):
    """LayerStats as plain dicts — the ``asdict``-equality form."""
    return [
        [
            (dataclasses.asdict(r.stats), dataclasses.asdict(r.sm_stats),
             r.cycles, r.time_ms)
            for r in row
        ]
        for row in rows
    ]


# ----------------------------------------------------------------------
# The matrix
# ----------------------------------------------------------------------


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("backend,kwargs", BACKEND_MATRIX)
def test_backend_matches_serial(tmp_path, engine, backend, kwargs):
    chunks = _chunks(engine)
    clear_trace_cache()
    reference = _stat_rows(
        SweepExecutor(jobs=1, backend="serial").run_chunks(chunks)
    )
    clear_trace_cache()
    executor = SweepExecutor(
        cache=DiskCache(tmp_path / "cache"), backend=backend, **kwargs
    )
    assert _stat_rows(executor.run_chunks(chunks)) == reference
    # Warm rerun through the same cache is identical too.
    clear_trace_cache()
    assert _stat_rows(executor.run_chunks(chunks)) == reference


def test_constructor_validation(tmp_path):
    with pytest.raises(ValueError, match="backend"):
        SweepExecutor(backend="fibers")
    with pytest.raises(ValueError, match="cutover"):
        SweepExecutor(cutover=-1)
    with pytest.raises(ValueError, match="cutover"):
        SweepExecutor(cutover=float("nan"))
    with pytest.raises(ValueError, match="shared-store"):
        SweepExecutor(backend="shared-store")
    SweepExecutor(
        backend="shared-store", cache=DiskCache(tmp_path / "c")
    )  # with a cache it constructs


# ----------------------------------------------------------------------
# Cutover estimator: decisions never change results (hypothesis)
# ----------------------------------------------------------------------


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(
    layer_idx=st.lists(
        st.integers(min_value=0, max_value=len(LAYERS) - 1),
        min_size=1, max_size=3, unique=True,
    ),
    entries=st.sampled_from([64, 256, 1024, None]),
    engine=st.sampled_from(["auto", "fast", "event"]),
    backend=st.sampled_from(["auto", "threads", "processes"]),
    jobs=st.integers(min_value=1, max_value=4),
    cutover=st.sampled_from(["auto", 0.0, 1e-6, 0.5, float("inf")]),
)
def test_cutover_never_changes_results(
    layer_idx, entries, engine, backend, jobs, cutover
):
    """Whatever the estimator decides — inline, threads, processes,
    any threshold — the rows match the serial reference exactly."""
    options = dataclasses.replace(OPTIONS, max_ctas=1, engine=engine)
    chunks = [
        [
            SimPoint(LAYERS[i], options=options, lhb_entries=entries),
            SimPoint(
                LAYERS[i], mode=EliminationMode.BASELINE, options=options
            ),
        ]
        for i in layer_idx
    ]
    reference = _stat_rows(
        SweepExecutor(jobs=1, backend="serial").run_chunks(chunks)
    )
    got = SweepExecutor(
        jobs=jobs, backend=backend, cutover=cutover
    ).run_chunks(chunks)
    assert _stat_rows(got) == reference


# ----------------------------------------------------------------------
# Cost estimator: exact on the explicit kernel
# ----------------------------------------------------------------------


@pytest.mark.parametrize("spec", LAYERS, ids=lambda s: s.name)
@pytest.mark.parametrize("max_ctas", [1, 2, None])
def test_event_estimate_is_exact_for_explicit_kernel(spec, max_ctas):
    """The closed-form estimate mirrors the kernel's emission
    arithmetic, so for the explicit kernel it is not an estimate at
    all — it equals the traced event count."""
    point = SimPoint(spec, options=SimulationOptions(max_ctas=max_ctas))
    trace = simulator._get_trace(
        point.spec, point.gpu, point.kernel, point.options
    )
    assert estimate_trace_events(point) == len(trace)


# ----------------------------------------------------------------------
# Warm chunks never reach a worker (the chunks_skipped contract)
# ----------------------------------------------------------------------


def test_fully_warm_chunk_is_skipped(tmp_path):
    cache = DiskCache(tmp_path / "cache")
    chunks = _chunks()
    SweepExecutor(jobs=1, cache=cache).run_chunks(chunks)
    clear_trace_cache()
    obs.enable()
    obs.reset()
    SweepExecutor(jobs=4, cache=cache, cutover=0).run_chunks(chunks)
    counters = obs.snapshot()["counters"]
    assert counters["executor.chunks_skipped"] == len(chunks)
    assert counters["executor.prefilter_hits"] == sum(
        len(c) for c in chunks
    )
    # Nothing was dispatched anywhere — not even with cutover=0.
    assert "executor.dispatch.threads" not in counters
    assert "executor.dispatch.processes" not in counters
    assert "executor.inline_chunks" not in counters
    assert "sim.layers_simulated" not in counters
    obs.disable()


def test_analytic_chunk_is_skipped(tmp_path):
    """Analytic-resolved points count as warm: the whole chunk is
    answered at prefilter and never dispatched."""
    chunks = _chunks(engine="analytic")
    obs.enable()
    obs.reset()
    rows = SweepExecutor(
        jobs=4, cache=DiskCache(tmp_path / "cache"), cutover=0
    ).run_chunks(chunks)
    counters = obs.snapshot()["counters"]
    n_points = sum(len(c) for c in chunks)
    assert counters["executor.analytic_prefilter"] == n_points
    assert counters["executor.chunks_skipped"] == len(chunks)
    assert "executor.dispatch.threads" not in counters
    assert "executor.dispatch.processes" not in counters
    assert len(rows) == len(chunks)
    obs.disable()


def test_mixed_chunk_is_not_skipped(tmp_path):
    cache = DiskCache(tmp_path / "cache")
    warm = SimPoint(LAYERS[0], options=OPTIONS)
    cold = SimPoint(LAYERS[0], options=OPTIONS, lhb_entries=64)
    SweepExecutor(jobs=1, cache=cache).run_chunks([[warm]])
    obs.enable()
    obs.reset()
    SweepExecutor(jobs=1, cache=cache).run_chunks([[warm, cold]])
    counters = obs.snapshot()["counters"]
    assert counters["executor.prefilter_hits"] == 1
    assert counters.get("executor.chunks_skipped", 0) == 0
    obs.disable()


# ----------------------------------------------------------------------
# Thread workers share the parent registry: no merge, no double-count
# ----------------------------------------------------------------------


def _chunk_spans(tree):
    found = []

    def walk(span):
        if span["name"] == "executor.chunk":
            found.append(span)
        for child in span.get("children", []):
            walk(child)

    for root in tree["spans"]:
        walk(root)
    return found


def test_thread_workers_do_not_double_count(tmp_path):
    """Regression (PR 7): thread workers record straight onto the
    parent's registry, so the process-worker export/merge protocol
    must not run for them — merging would double every counter and
    duplicate every span."""
    chunks = _chunks()
    n_points = sum(len(c) for c in chunks)
    obs.enable()
    obs.reset()
    SweepExecutor(
        jobs=2, cache=DiskCache(tmp_path / "c"),
        backend="threads", cutover=0,
    ).run_chunks(chunks)
    snapshot = obs.snapshot()
    counters = snapshot["counters"]
    # Exactly one simulation per point — doubled counts would show 2x.
    assert counters["sim.layers_simulated"] == n_points
    assert counters["executor.dispatch.threads"] == len(chunks)
    # Exactly one chunk span per chunk, and no executor.worker merge
    # groups (those wrap *process* payloads only).
    tree = obs.tree()
    assert len(_chunk_spans(tree)) == len(chunks)
    assert not [
        s for s in tree["spans"] if s["name"] == "executor.worker"
    ]
    assert 0.0 < snapshot["gauges"]["executor.worker_utilization"] <= 1.0
    obs.disable()


def test_process_workers_still_merge_under_worker_groups(tmp_path):
    chunks = _chunks()
    obs.enable()
    obs.reset()
    SweepExecutor(
        jobs=2, cache=DiskCache(tmp_path / "c"),
        backend="processes", cutover=0,
    ).run_chunks(chunks)
    counters = obs.snapshot()["counters"]
    assert counters["sim.layers_simulated"] == sum(len(c) for c in chunks)
    workers = [
        s for s in obs.tree()["spans"] if s["name"] == "executor.worker"
    ]
    assert len(workers) == len(chunks)
    obs.disable()


# ----------------------------------------------------------------------
# Zero-copy trace hand-off: mmap-loaded traces replay identically
# ----------------------------------------------------------------------


def test_mmap_trace_handoff_is_bit_identical(tmp_path):
    chunks = _chunks()
    clear_trace_cache()
    reference = _stat_rows(
        SweepExecutor(jobs=1, backend="serial").run_chunks(chunks)
    )
    # Populate the store from a cold LRU so traces actually persist.
    cache = DiskCache(tmp_path / "cache")
    clear_trace_cache()
    SweepExecutor(jobs=1, cache=cache).run_chunks(chunks)
    # Cold results + warm traces: the rerun must *load* every trace
    # through the mmap sidecar and still match bit-for-bit.
    shutil.rmtree(tmp_path / "cache" / "results")
    clear_trace_cache()
    mmap_cache = DiskCache(tmp_path / "cache", mmap_traces=True)
    obs.enable()
    obs.reset()
    got = _stat_rows(
        SweepExecutor(jobs=1, cache=mmap_cache).run_chunks(chunks)
    )
    counters = obs.snapshot()["counters"]
    obs.disable()
    assert got == reference
    assert counters["store.trace_mmap_hits"] == len(LAYERS)
    assert "sim.trace.generated" not in counters


def test_mmap_trace_handoff_event_path(tmp_path):
    """The event-level replay consumes mmap-loaded traces too."""
    options = dataclasses.replace(OPTIONS, fast_path="off")
    point = SimPoint(LAYERS[0], options=options, lhb_entries=64)
    clear_trace_cache()
    reference = _stat_rows(
        SweepExecutor(jobs=1, backend="serial").run_chunks([[point]])
    )
    cache = DiskCache(tmp_path / "cache")
    clear_trace_cache()
    SweepExecutor(jobs=1, cache=cache).run_chunks([[point]])
    shutil.rmtree(tmp_path / "cache" / "results")
    clear_trace_cache()
    mmap_cache = DiskCache(tmp_path / "cache", mmap_traces=True)
    got = _stat_rows(
        SweepExecutor(jobs=1, cache=mmap_cache).run_chunks([[point]])
    )
    assert got == reference


# ----------------------------------------------------------------------
# Shared-store coordination
# ----------------------------------------------------------------------


def test_shared_store_second_host_adopts_results(tmp_path):
    """Host B loses every claim to host A and adopts A's persisted
    results without simulating anything."""
    chunks = _chunks()
    clear_trace_cache()
    reference = _stat_rows(
        SweepExecutor(jobs=1, backend="serial").run_chunks(chunks)
    )
    root = tmp_path / "shared"
    a = SweepExecutor(
        jobs=1, cache=DiskCache(root), backend="shared-store"
    )
    assert _stat_rows(a.run_chunks(chunks)) == reference
    clear_trace_cache()
    obs.enable()
    obs.reset()
    b = SweepExecutor(
        jobs=1, cache=DiskCache(root), backend="shared-store",
        shared_timeout_s=10.0, shared_poll_s=0.01,
    )
    assert _stat_rows(b.run_chunks(chunks)) == reference
    counters = obs.snapshot()["counters"]
    obs.disable()
    # B resolved everything at the prefilter (A's results are on
    # disk), so it neither claimed nor simulated.
    assert "sim.layers_simulated" not in counters
    assert counters["executor.prefilter_hits"] == sum(
        len(c) for c in chunks
    )


def test_shared_store_poll_adopts_mid_sweep_results(tmp_path):
    """Claims lost, results not yet on disk at prefilter time: B's
    poll loop picks them up when the claim holder lands them."""
    import threading

    from repro.runtime import chunk_claim_key, simulate_point

    chunks = _chunks()[:1]
    clear_trace_cache()
    results = [simulate_point(p, None) for p in chunks[0]]
    reference = _stat_rows([results])
    root = tmp_path / "shared"
    cache_a = DiskCache(root)
    keys = [p.cache_key() for p in chunks[0]]
    # "Host A" claimed the chunk before B arrived...
    assert cache_a.try_claim(chunk_claim_key(keys))

    def deliver():
        # ...and delivers the results while B is polling.
        for key, result in zip(keys, results):
            cache_a.put_result(key, result)

    publisher = threading.Timer(0.2, deliver)
    publisher.start()
    try:
        clear_trace_cache()
        obs.enable()
        obs.reset()
        b = SweepExecutor(
            jobs=1, cache=DiskCache(root), backend="shared-store",
            shared_timeout_s=30.0, shared_poll_s=0.01,
        )
        assert _stat_rows(b.run_chunks(chunks)) == reference
    finally:
        publisher.join()
    counters = obs.snapshot()["counters"]
    assert counters["executor.shared.chunks_waited"] == 1
    assert counters["executor.shared.polls"] >= 1
    assert counters.get("executor.shared.chunks_stolen", 0) == 0
    assert "sim.layers_simulated" not in counters


def test_shared_store_steals_abandoned_claims(tmp_path):
    """A claim whose holder never delivers is stolen after the
    timeout and computed locally — slow peers cost time, not answers."""
    chunks = _chunks()[:1]
    clear_trace_cache()
    reference = _stat_rows(
        SweepExecutor(jobs=1, backend="serial").run_chunks(chunks)
    )
    root = tmp_path / "shared"
    cache = DiskCache(root)
    from repro.runtime import chunk_claim_key

    keys = [p.cache_key() for p in chunks[0]]
    assert cache.try_claim(chunk_claim_key(keys))  # abandoned claim
    clear_trace_cache()
    obs.enable()
    obs.reset()
    b = SweepExecutor(
        jobs=1, cache=DiskCache(root), backend="shared-store",
        shared_timeout_s=0.05, shared_poll_s=0.01,
    )
    assert _stat_rows(b.run_chunks(chunks)) == reference
    counters = obs.snapshot()["counters"]
    obs.disable()
    assert counters["executor.shared.chunks_stolen"] == 1
    assert counters["executor.shared.chunks_waited"] == 1


def test_shared_store_partitions_work_between_executors(tmp_path):
    """Two executors over one store: claims partition the chunks —
    whoever comes second wins none of the already-claimed ones."""
    chunks = _chunks()
    root = tmp_path / "shared"
    cache = DiskCache(root)
    from repro.runtime import chunk_claim_key

    # Pre-claim the first chunk on behalf of a phantom peer, then let
    # the local executor run: it must own the rest, steal the phantom
    # chunk after the (tiny) timeout, and still return exact rows.
    clear_trace_cache()
    reference = _stat_rows(
        SweepExecutor(jobs=1, backend="serial").run_chunks(chunks)
    )
    keys = [p.cache_key() for p in chunks[0]]
    assert cache.try_claim(chunk_claim_key(keys))
    clear_trace_cache()
    obs.enable()
    obs.reset()
    executor = SweepExecutor(
        jobs=1, cache=DiskCache(root), backend="shared-store",
        shared_timeout_s=0.05, shared_poll_s=0.01,
    )
    assert _stat_rows(executor.run_chunks(chunks)) == reference
    counters = obs.snapshot()["counters"]
    obs.disable()
    assert counters["executor.shared.chunks_owned"] == len(chunks) - 1
    assert counters["executor.shared.chunks_waited"] == 1
    assert counters["executor.shared.chunks_stolen"] == 1
