"""Differential fuzzing: analytic predictions vs. the exact replay.

Hypothesis hunts the corners the fixed Table I validation grid misses:
random convolution geometries (strided, padded, transposed,
multi-batch, degenerate single-tile), random covered LHB geometries
(power-of-two set counts, any associativity, hashed and modular
indexing, lifetimes from 1 to infinite).  For every drawn
configuration the analytic model must:

* reproduce the replay's LHB counters (``lhb_lookups``, ``lhb_hits``,
  ``eliminated_fragments``) **bit for bit** — the model claims
  exactness there, so the assertion is equality, not a tolerance;
* keep every structural identity exact (load mix, access chaining,
  byte multiples);
* keep interpolated traffic within the documented fuzz bounds below —
  looser than the Table I bounds because random geometries fall
  outside the measured set, with the same absolute floors guarding
  small-count noise;
* match BASELINE mode exactly, field for field.

Example budgets reuse the ``REPRO_FUZZ_EXAMPLES`` /
``REPRO_FUZZ_EXAMPLES_SLOW`` knobs of ``test_fastpath_fuzz.py``; the
``slow``-marked variant goes deeper in the scheduled/CI lanes.
"""

import dataclasses
import os

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.analytic import METRIC_FLOORS, layer_profile, predict_stats, relative_error
from repro.core.lhb import LoadHistoryBuffer
from repro.gpu.config import BASELINE_KERNEL, SimulationOptions, TITAN_V
from repro.gpu.fastpath import replay_trace_fast
from repro.gpu.kernel import generate_sm_trace
from repro.gpu.ldst import EliminationMode

from tests.conftest import make_spec

MAX_EXAMPLES = int(os.environ.get("REPRO_FUZZ_EXAMPLES", "25"))
SLOW_EXAMPLES = int(os.environ.get("REPRO_FUZZ_EXAMPLES_SLOW", "300"))

#: Traffic bounds for random geometries (documented, looser than the
#: Table I bound table — see docs/ANALYTIC.md).  Floors are shared
#: with the validation harness.
FUZZ_BOUNDS = {
    "l1_hits": 0.10,
    "l2_hits": 0.25,
    "dram_read_bytes": 0.50,
}


@st.composite
def conv_specs(draw):
    """Small random layers with a valid, non-empty GEMM shape."""
    transposed = draw(st.booleans())
    try:
        spec = make_spec(
            name="fuzz",
            batch=draw(st.integers(1, 2)),
            h=draw(st.integers(4, 12)),
            w=draw(st.integers(4, 12)),
            c=draw(st.sampled_from([2, 4, 8])),
            filters=draw(st.sampled_from([8, 16, 24])),
            kh=draw(st.sampled_from([1, 3, 5])),
            kw=draw(st.sampled_from([1, 3])),
            pad=draw(st.integers(0, 2)),
            stride=1 if transposed else draw(st.integers(1, 2)),
            transposed=transposed,
            output_pad=draw(st.integers(0, 1)) if transposed else 0,
        )
        g = spec.gemm_shape
    except ValueError:
        assume(False)
    assume(g.m > 0 and g.n > 0 and g.k > 0)
    return spec


@st.composite
def covered_lhbs(draw):
    """Covered LHB geometries: oracle, or power-of-two set counts."""
    if draw(st.booleans()) and draw(st.booleans()):  # ~25% oracle
        entries, assoc = None, 1
    else:
        assoc = draw(st.sampled_from([1, 2, 4, 8]))
        entries = assoc * draw(st.sampled_from([1, 2, 8, 32, 256, 1024]))
    return dict(
        num_entries=entries,
        assoc=assoc,
        lifetime=draw(st.sampled_from([None, 1, 2, 17, 100, 4096])),
        hashed_index=draw(st.booleans()),
    )


@st.composite
def analytic_cases(draw):
    return (
        draw(conv_specs()),
        draw(covered_lhbs()),
        draw(st.sampled_from([EliminationMode.DUPLO, EliminationMode.WIR])),
        draw(st.sampled_from([1, 2, None])),  # max_ctas
    )


def _check_case(spec, config, mode, max_ctas):
    options = SimulationOptions(max_ctas=max_ctas)
    trace = generate_sm_trace(spec, TITAN_V, BASELINE_KERNEL, options)
    exact = replay_trace_fast(
        trace, spec, TITAN_V, options, mode, LoadHistoryBuffer(**config)
    )
    profile = layer_profile(spec, mode, TITAN_V, BASELINE_KERNEL, options)
    predicted = predict_stats(profile, LoadHistoryBuffer(**config))
    ctx = f"{spec.qualified_name} {mode.value} {config} max_ctas={max_ctas}"

    # Exactness claims: equality, not tolerance.
    for field in (
        "loads_total", "loads_workspace", "loads_filter", "loads_input",
        "stores", "workspace_instructions", "lhb_lookups", "lhb_hits",
        "eliminated_fragments", "unique_workspace_ids", "mma_ops",
        "l1_accesses", "dram_write_bytes",
    ):
        assert getattr(predicted, field) == getattr(exact, field), (
            f"{field}: {getattr(predicted, field)} != "
            f"{getattr(exact, field)}  [{ctx}]"
        )

    # Structural identities on the approximate side.
    assert predicted.l2_accesses == predicted.l1_accesses - predicted.l1_hits
    assert predicted.dram_read_bytes == (
        (predicted.l2_accesses - predicted.l2_hits) * TITAN_V.l1_line_bytes
    )
    assert predicted.breakdown.total == predicted.loads_total

    # Bounded-error traffic.
    for metric, bound in FUZZ_BOUNDS.items():
        err = relative_error(
            float(getattr(predicted, metric)),
            float(getattr(exact, metric)),
            METRIC_FLOORS[metric],
        )
        assert err <= bound, (
            f"{metric}: err={err:.4%} > {bound:.0%}  "
            f"predicted={getattr(predicted, metric)} "
            f"exact={getattr(exact, metric)}  [{ctx}]"
        )


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(case=analytic_cases())
def test_analytic_matches_fast_path(case):
    _check_case(*case)


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(spec=conv_specs(), max_ctas=st.sampled_from([1, 2, None]))
def test_baseline_profile_is_bit_exact(spec, max_ctas):
    options = SimulationOptions(max_ctas=max_ctas)
    trace = generate_sm_trace(spec, TITAN_V, BASELINE_KERNEL, options)
    exact = replay_trace_fast(
        trace, spec, TITAN_V, options, EliminationMode.BASELINE, None
    )
    profile = layer_profile(
        spec, EliminationMode.BASELINE, TITAN_V, BASELINE_KERNEL, options
    )
    predicted = predict_stats(profile, None)
    assert dataclasses.asdict(predicted) == dataclasses.asdict(exact)


@pytest.mark.slow
@settings(max_examples=SLOW_EXAMPLES, deadline=None)
@given(case=analytic_cases())
def test_analytic_matches_fast_path_deep(case):
    _check_case(*case)
