"""Correctness of every convolution method against the direct reference.

The direct (sliding-window) convolution is itself validated against
``scipy.signal`` and a hand-computed example; GEMM, Winograd, and FFT
must then agree with it bit-near-exactly — the equivalence that lets
the paper treat them as interchangeable implementations of the same
layer.
"""

import numpy as np
import pytest
from scipy import signal

from repro.conv.direct import direct_convolution
from repro.conv.fft_conv import (
    fft_applicable,
    fft_convolution,
    fft_flop_count,
    fft_workspace_bytes,
)
from repro.conv.gemm import (
    direct_footprint,
    explicit_gemm_footprint,
    filters_to_matrix,
    gemm_convolution,
    implicit_gemm_footprint,
)
from repro.conv.methods import (
    FIGURE_METHODS,
    METHOD_REGISTRY,
    applicable_methods,
    get_method,
)
from repro.conv.winograd import (
    transform_filters,
    winograd_applicable,
    winograd_convolution,
    winograd_mac_count,
    winograd_workspace_bytes,
)
from repro.conv.workloads import get_layer

from tests.conftest import make_spec


def random_problem(spec, rng):
    x = rng.standard_normal(spec.input_nhwc)
    f = rng.standard_normal(spec.filter_nhwc)
    return x, f


class TestDirect:
    def test_figure1_worked_example(self):
        spec = make_spec(h=4, w=4, c=1, filters=1, pad=0)
        x = np.array(
            [[3, 1, 4, -2], [1, 0, -2, 1], [4, -2, 4, 0], [-2, 1, 0, 3]],
            dtype=float,
        ).reshape(1, 4, 4, 1)
        f = np.array([[1, 0, 3], [-3, -1, 2], [0, 2, 1]], dtype=float).reshape(
            1, 3, 3, 1
        )
        out = direct_convolution(spec, x, f)
        np.testing.assert_array_equal(
            out.reshape(2, 2), np.array([[8, 7], [-5, 8]])
        )

    def test_against_scipy_single_channel(self, rng):
        spec = make_spec(h=10, w=10, c=1, filters=1, pad=0)
        x, f = random_problem(spec, rng)
        out = direct_convolution(spec, x, f)
        ref = signal.correlate2d(x[0, :, :, 0], f[0, :, :, 0], mode="valid")
        np.testing.assert_allclose(out[0, :, :, 0], ref, rtol=1e-10)

    def test_channel_reduction(self, rng):
        spec = make_spec(h=6, w=6, c=3, filters=2, pad=0)
        x, f = random_problem(spec, rng)
        out = direct_convolution(spec, x, f)
        ref = sum(
            signal.correlate2d(x[0, :, :, c], f[k, :, :, c], mode="valid")
            for c in range(3)
            for k in [0]
        )
        np.testing.assert_allclose(out[0, :, :, 0], ref, rtol=1e-10)

    def test_linearity(self, tiny_spec, rng):
        x, f = random_problem(tiny_spec, rng)
        out2 = direct_convolution(tiny_spec, 2 * x, f)
        np.testing.assert_allclose(
            out2, 2 * direct_convolution(tiny_spec, x, f), rtol=1e-10
        )

    def test_filter_shape_validation(self, tiny_spec, rng):
        x, _ = random_problem(tiny_spec, rng)
        with pytest.raises(ValueError, match="filter"):
            direct_convolution(tiny_spec, x, np.zeros((2, 3, 3, 4)))

    def test_batch_independence(self, rng):
        spec = make_spec(batch=2, h=6, w=6, c=2, filters=3)
        x, f = random_problem(spec, rng)
        full = direct_convolution(spec, x, f)
        single = make_spec(batch=1, h=6, w=6, c=2, filters=3)
        np.testing.assert_allclose(
            full[0], direct_convolution(single, x[:1], f)[0], rtol=1e-10
        )


class TestGemm:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(),
            dict(pad=0),
            dict(h=9, w=9, pad=0, stride=2),
            dict(batch=2, h=6, w=6),
            dict(h=7, w=5, c=3, filters=5, pad=2),
        ],
    )
    def test_matches_direct(self, rng, kwargs):
        spec = make_spec(**kwargs)
        x, f = random_problem(spec, rng)
        np.testing.assert_allclose(
            gemm_convolution(spec, x, f),
            direct_convolution(spec, x, f),
            rtol=1e-9,
            atol=1e-9,
        )

    def test_transposed_matches_direct(self, transposed_spec, rng):
        x, f = random_problem(transposed_spec, rng)
        np.testing.assert_allclose(
            gemm_convolution(transposed_spec, x, f),
            direct_convolution(transposed_spec, x, f),
            rtol=1e-9,
            atol=1e-9,
        )

    def test_filter_matrix_shape(self, tiny_spec, rng):
        _, f = random_problem(tiny_spec, rng)
        b = filters_to_matrix(tiny_spec, f)
        assert b.shape == (tiny_spec.filter_volume, tiny_spec.num_filters)

    def test_footprints_ordering(self, tiny_spec):
        explicit = explicit_gemm_footprint(tiny_spec)
        implicit = implicit_gemm_footprint(tiny_spec)
        direct = direct_footprint(tiny_spec)
        assert explicit.total_bytes > implicit.total_bytes >= direct.total_bytes
        assert implicit.workspace_bytes == 0
        assert explicit.workspace_bytes == tiny_spec.workspace_bytes


class TestWinograd:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(),
            dict(pad=0),
            dict(h=7, w=9, pad=1),
            dict(batch=2, h=6, w=6, c=2, filters=3),
            dict(h=5, w=5, c=1, filters=1, pad=0),
        ],
    )
    def test_matches_direct(self, rng, kwargs):
        spec = make_spec(**kwargs)
        x, f = random_problem(spec, rng)
        np.testing.assert_allclose(
            winograd_convolution(spec, x, f),
            direct_convolution(spec, x, f),
            rtol=1e-8,
            atol=1e-8,
        )

    def test_filter_transform_shape(self, rng):
        f = rng.standard_normal((5, 3, 3, 2))
        u = transform_filters(f)
        assert u.shape == (4, 4, 2, 5)

    def test_applicability_rules(self):
        assert winograd_applicable(make_spec())
        assert not winograd_applicable(make_spec(h=9, w=9, pad=0, stride=2))
        assert not winograd_applicable(make_spec(kh=5, kw=5, pad=2))
        assert not winograd_applicable(get_layer("gan", "TC1"))
        assert not winograd_applicable(get_layer("resnet", "C1"))
        assert winograd_applicable(get_layer("yolo", "C3"))

    def test_inapplicable_raises(self, rng):
        spec = make_spec(h=9, w=9, pad=0, stride=2)
        x, f = random_problem(spec, rng)
        with pytest.raises(ValueError, match="inapplicable"):
            winograd_convolution(spec, x, f)

    def test_mac_reduction_factor(self):
        spec = make_spec(h=8, w=8)  # even outputs: exact tiling
        direct_macs = spec.gemm_shape.macs
        wino_macs = winograd_mac_count(spec)
        assert wino_macs / direct_macs == pytest.approx(16 / 36)

    def test_workspace_bytes_positive_and_scales(self, tiny_spec):
        assert winograd_workspace_bytes(tiny_spec) > 0
        assert winograd_workspace_bytes(
            tiny_spec, element_bytes=8
        ) == 2 * winograd_workspace_bytes(tiny_spec, element_bytes=4)


class TestFFT:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(),
            dict(pad=0),
            dict(kh=5, kw=5, pad=2),
            dict(batch=2, h=6, w=6, c=2, filters=3),
            dict(h=7, w=9, kh=3, kw=5, pad=2),
        ],
    )
    def test_matches_direct(self, rng, kwargs):
        spec = make_spec(**kwargs)
        x, f = random_problem(spec, rng)
        np.testing.assert_allclose(
            fft_convolution(spec, x, f),
            direct_convolution(spec, x, f),
            rtol=1e-8,
            atol=1e-8,
        )

    def test_applicability(self):
        assert fft_applicable(make_spec())
        assert not fft_applicable(make_spec(h=9, w=9, pad=0, stride=2))
        assert not fft_applicable(get_layer("gan", "C1"))
        assert fft_applicable(get_layer("resnet", "C2"))

    def test_inapplicable_raises(self, strided_spec, rng):
        x, f = random_problem(strided_spec, rng)
        with pytest.raises(ValueError, match="inapplicable"):
            fft_convolution(strided_spec, x, f)

    def test_workspace_larger_than_input(self, tiny_spec):
        assert fft_workspace_bytes(tiny_spec) > tiny_spec.input_elements * 2
        assert fft_workspace_bytes(
            tiny_spec, library_allocation=True
        ) > fft_workspace_bytes(tiny_spec, library_allocation=False)

    def test_flop_count_positive(self, tiny_spec):
        assert fft_flop_count(tiny_spec) > 0


class TestRegistry:
    def test_all_methods_present(self):
        assert set(FIGURE_METHODS) <= set(METHOD_REGISTRY)
        assert "direct" in METHOD_REGISTRY

    def test_every_method_runs_when_applicable(self, tiny_spec, rng):
        x, f = random_problem(tiny_spec, rng)
        ref = direct_convolution(tiny_spec, x, f)
        for name in applicable_methods(tiny_spec):
            out = METHOD_REGISTRY[name].run(tiny_spec, x, f)
            np.testing.assert_allclose(out, ref, rtol=1e-7, atol=1e-7)

    def test_applicable_methods_gan(self):
        # The entire GAN has no Winograd/FFT bars (Figures 2-3).
        assert applicable_methods(get_layer("gan", "C1")) == ["gemm", "gemm_tc"]
        assert applicable_methods(get_layer("gan", "TC1")) == ["gemm", "gemm_tc"]

    def test_applicable_methods_unit_stride_3x3(self):
        assert applicable_methods(get_layer("yolo", "C2")) == list(FIGURE_METHODS)

    def test_get_method_error(self):
        with pytest.raises(KeyError, match="unknown method"):
            get_method("im2col")

    def test_check_raises_for_inapplicable(self):
        with pytest.raises(ValueError, match="inapplicable"):
            get_method("winograd").check(get_layer("gan", "C1"))

    def test_tensor_core_flags(self):
        assert METHOD_REGISTRY["gemm_tc"].uses_tensor_cores
        assert not METHOD_REGISTRY["gemm"].uses_tensor_cores
