"""ID-scheme verification: where the Section III formulas hold.

The headline characterisation this reproduction established:

* the published closed-form IDs are **exact** (sound and complete) on
  padding-free layers — any stride, channel count, or batch size;
* they are **unsound under zero padding**: the pure index arithmetic
  assigns padding positions IDs that collide with interior elements,
  so a hardware deployment must either exclude padded workspace
  regions from detection or use the canonical (inverse-map) IDs;
* STRICT mode is sound everywhere but incomplete by construction.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.table2 import TOY_SPEC
from repro.core.idgen import IDMode
from repro.core.verification import verify_id_scheme, verify_table
from repro.conv.workloads import ALL_LAYERS

from tests.conftest import make_spec


class TestCanonicalIsAlwaysExact:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(),
            dict(pad=0),
            dict(h=9, w=9, pad=0, stride=2),
            dict(batch=2, h=6, w=6, c=3),
            dict(h=4, w=4, c=8, kh=5, kw=5, pad=2, stride=2,
                 transposed=True, output_pad=1),
        ],
    )
    def test_exact(self, kwargs):
        report = verify_id_scheme(make_spec(**kwargs), IDMode.CANONICAL)
        assert report.exact
        assert report.scheme_classes == report.canonical_classes


class TestPaperFormulas:
    def test_exact_on_figure6(self):
        assert verify_id_scheme(TOY_SPEC, IDMode.PAPER).exact

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(pad=0),
            dict(h=9, w=9, pad=0, stride=2),
            dict(h=6, w=6, c=3, pad=0),
            dict(batch=3, h=6, w=6, c=2, pad=0),
            dict(h=8, w=8, c=4, kh=5, kw=5, pad=0),
        ],
    )
    def test_exact_without_padding(self, kwargs):
        assert verify_id_scheme(make_spec(**kwargs), IDMode.PAPER).exact

    def test_unsound_with_padding(self):
        """The published arithmetic ignores the padding ring: padding
        zeros alias interior elements — a correctness hazard the
        canonical IDs avoid."""
        report = verify_id_scheme(make_spec(pad=1), IDMode.PAPER)
        assert not report.sound
        assert report.unsound_merges > 0

    def test_padded_table1_layers_are_unsound(self):
        reports = verify_table(
            [spec.with_batch(1) for spec in ALL_LAYERS[:2]], IDMode.PAPER
        )
        # ResNet C1 and C2 are both padded.
        assert all(not r.sound for r in reports.values())

    def test_unpadded_table1_layer_is_sound(self):
        spec = next(
            layer for layer in ALL_LAYERS
            if layer.pad == 0 and not layer.transposed
        )
        assert verify_id_scheme(spec.with_batch(1), IDMode.PAPER).sound


class TestStrictMode:
    def test_sound_everywhere(self):
        for kwargs in [dict(), dict(pad=0), dict(h=9, w=9, pad=0, stride=2)]:
            report = verify_id_scheme(make_spec(**kwargs), IDMode.STRICT)
            assert report.sound

    def test_incomplete_by_construction(self):
        """STRICT splits canonical classes by output-column phase, so
        it misses duplicate pairs whenever duplication exists."""
        report = verify_id_scheme(make_spec(pad=0), IDMode.STRICT)
        assert report.missed_pairs > 0
        assert report.scheme_classes > report.canonical_classes


@settings(max_examples=25, deadline=None)
@given(
    h=st.integers(4, 9),
    c=st.sampled_from([1, 2, 4]),
    stride=st.sampled_from([1, 2]),
    batch=st.integers(1, 2),
)
def test_paper_formulas_exact_on_square_unpadded_property(h, c, stride, batch):
    """Property: on *square*, *unpadded* geometry — the regime every
    Table I layer lives in — the published formulas are exact for any
    stride, channel count, and batch size."""
    spec = make_spec(batch=batch, h=h, w=h, c=c, pad=0, stride=stride)
    report = verify_id_scheme(spec, IDMode.PAPER)
    assert report.exact, report


def test_paper_formulas_break_on_non_square_output():
    """The published formulas index patches by ``row / output_height``
    where the row-major workspace needs ``row / output_width`` —
    harmless for the paper's all-square layers, wrong beyond them."""
    spec = make_spec(h=4, w=5, c=1, pad=0)
    assert spec.output_shape.height != spec.output_shape.width
    assert not verify_id_scheme(spec, IDMode.PAPER).exact
