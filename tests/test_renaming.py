"""Warp register renaming and the physical register pool."""

import pytest

from repro.core.renaming import PhysicalRegisterFile, RegisterRenamingTable


class TestPhysicalRegisterFile:
    def test_allocate_unique(self):
        pool = PhysicalRegisterFile(8)
        regs = {pool.allocate() for _ in range(8)}
        assert len(regs) == 8

    def test_exhaustion(self):
        pool = PhysicalRegisterFile(2)
        pool.allocate()
        pool.allocate()
        with pytest.raises(RuntimeError, match="exhausted"):
            pool.allocate()

    def test_release_recycles(self):
        pool = PhysicalRegisterFile(1)
        reg = pool.allocate()
        pool.release(reg)
        assert pool.allocate() == reg

    def test_share_and_refcount(self):
        pool = PhysicalRegisterFile(4)
        reg = pool.allocate()
        pool.share(reg)
        assert pool.refcount(reg) == 2
        pool.release(reg)
        assert pool.refcount(reg) == 1
        pool.release(reg)
        assert pool.refcount(reg) == 0
        assert pool.allocated == 0

    def test_share_unallocated_rejected(self):
        pool = PhysicalRegisterFile(4)
        with pytest.raises(KeyError):
            pool.share(0)

    def test_release_unallocated_rejected(self):
        with pytest.raises(KeyError):
            PhysicalRegisterFile(4).release(0)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            PhysicalRegisterFile(0)


class TestRenamingTable:
    def test_define_maps(self):
        table = RegisterRenamingTable()
        phys = table.define(warp=0, arch_reg=4)
        assert table.lookup(0, 4) == phys

    def test_redefine_releases_old(self):
        table = RegisterRenamingTable(PhysicalRegisterFile(2))
        table.define(0, 4)
        table.define(0, 4)
        table.define(0, 4)  # would exhaust a 2-register pool otherwise
        assert table.regfile.allocated == 1

    def test_alias_shares_register(self):
        table = RegisterRenamingTable()
        holder = table.define(0, 4)
        aliased = table.alias(warp=1, arch_reg=3, phys=holder)
        assert aliased == holder
        assert table.lookup(1, 3) == holder
        assert table.regfile.refcount(holder) == 2

    def test_alias_cross_warp_is_duplo_semantics(self):
        """Duplo renames warp B's register onto warp A's value."""
        table = RegisterRenamingTable()
        a = table.define(0, 8)
        table.alias(1, 8, a)
        table.retire(0, 8)  # A's mapping dies ...
        assert table.regfile.refcount(a) == 1  # ... B still holds it
        assert table.lookup(1, 8) == a

    def test_retire_releases(self):
        table = RegisterRenamingTable()
        phys = table.define(0, 1)
        table.retire(0, 1)
        assert table.lookup(0, 1) is None
        assert table.regfile.refcount(phys) == 0

    def test_retire_unknown_is_noop(self):
        RegisterRenamingTable().retire(0, 99)

    def test_stats(self):
        table = RegisterRenamingTable()
        a = table.define(0, 1)
        table.alias(0, 2, a)
        table.retire(0, 2)
        assert table.stats.allocations == 1
        assert table.stats.reuse_renames == 1
        assert table.stats.releases == 1

    def test_mapping_count(self):
        table = RegisterRenamingTable()
        table.define(0, 1)
        table.define(1, 1)
        assert table.mapping_count() == 2

    def test_default_pool_matches_table_iii(self):
        # 256 KB register file / (32 threads x 4 bytes) = 2048.
        assert RegisterRenamingTable().regfile.num_registers == 2048
