"""Detection unit: programming, bypass, elimination, Table II."""

import pytest

from repro.analysis.table2 import (
    TABLE_II_SEQUENCE,
    TOY_SPEC,
    WORKSPACE_BASE,
    run_table2_workflow,
)
from repro.conv.lowering import workspace_shape
from repro.core.compiler import build_convolution_info
from repro.core.detection import DetectionUnit
from repro.core.idgen import IDMode
from repro.core.lhb import LoadHistoryBuffer

from tests.conftest import make_spec

BASE = 0x4000


def programmed_unit(spec, **lhb_kwargs):
    defaults = dict(num_entries=64, lifetime=None, hashed_index=False)
    defaults.update(lhb_kwargs)
    unit = DetectionUnit(lhb=LoadHistoryBuffer(**defaults))
    unit.program(spec, build_convolution_info(spec, BASE))
    return unit


def entry_addr(unit, row, col):
    return BASE + (row * unit.idgen.lda + col) * 2


class TestLifecycle:
    def test_unprogrammed_unit_bypasses(self):
        unit = DetectionUnit()
        out = unit.process_load(0, 1, 0x1234)
        assert not out.in_workspace
        assert not out.eliminated

    def test_power_gate_clears_state(self, tiny_spec):
        unit = programmed_unit(tiny_spec)
        assert unit.powered
        unit.process_load(0, 1, entry_addr(unit, 0, 0))
        unit.power_gate()
        assert not unit.powered
        with pytest.raises(RuntimeError, match="not programmed"):
            unit.idgen

    def test_reprogram_flushes_lhb(self, tiny_spec):
        unit = programmed_unit(tiny_spec)
        addr = entry_addr(unit, 1, 1)
        unit.process_load(0, 1, addr)
        unit.program(tiny_spec, build_convolution_info(tiny_spec, BASE))
        out = unit.process_load(0, 2, addr)
        assert not out.eliminated  # fresh kernel, fresh history


class TestDetection:
    def test_non_workspace_bypasses(self, tiny_spec):
        unit = programmed_unit(tiny_spec)
        out = unit.process_load(0, 1, 0xDEAD0000)
        assert not out.in_workspace

    def test_duplicate_entry_eliminated_and_renamed(self, tiny_spec):
        """Workspace rows 0/1 overlap: (0, c+C) and (1, c) duplicate."""
        unit = programmed_unit(tiny_spec)
        c = tiny_spec.in_channels
        first = unit.process_load(0, 1, entry_addr(unit, 0, 4 * c + c))
        second = unit.process_load(1, 2, entry_addr(unit, 1, 4 * c))
        assert first.in_workspace and not first.eliminated
        assert second.eliminated
        assert second.phys_reg == first.phys_reg
        assert second.element_id == first.element_id

    def test_distinct_entries_not_eliminated(self, tiny_spec):
        unit = programmed_unit(tiny_spec)
        a = unit.process_load(0, 1, entry_addr(unit, 0, 0))
        b = unit.process_load(0, 2, entry_addr(unit, 0, 1))
        assert not a.eliminated and not b.eliminated
        assert a.phys_reg != b.phys_reg

    def test_store_invalidates(self, tiny_spec):
        unit = programmed_unit(tiny_spec)
        addr = entry_addr(unit, 2, 3)
        unit.process_load(0, 1, addr)
        assert unit.process_store(addr)
        assert not unit.process_load(0, 2, addr).eliminated

    def test_store_outside_workspace(self, tiny_spec):
        unit = programmed_unit(tiny_spec)
        assert not unit.process_store(0xDEAD0000)

    def test_issues_memory_request_property(self, tiny_spec):
        unit = programmed_unit(tiny_spec)
        addr = entry_addr(unit, 3, 3)
        first = unit.process_load(0, 1, addr)
        second = unit.process_load(0, 2, addr)
        assert first.issues_memory_request
        assert not second.issues_memory_request

    def test_latency_validation(self):
        with pytest.raises(ValueError, match="latency"):
            DetectionUnit(latency_cycles=0)


class TestTableII:
    def test_statuses_match_paper(self):
        rows = run_table2_workflow()
        assert [r["lhb"] for r in rows] == ["miss", "bypass", "hit", "miss"]
        assert [r["operation"] for r in rows] == [
            "entry allocation",
            "N/A",
            "register reuse",
            "entry replacement",
        ]

    def test_element_ids_match_paper(self):
        rows = run_table2_workflow()
        assert rows[0]["element_id"] == 2
        assert rows[2]["element_id"] == 2
        assert rows[3]["element_id"] == 6

    def test_lhb_entry_indices(self):
        rows = run_table2_workflow()
        assert rows[0]["entry"] == 2
        assert rows[3]["entry"] == 2  # element 6 conflicts with element 2

    def test_hit_reuses_first_loads_register(self):
        rows = run_table2_workflow()
        assert rows[2]["reused_from"] == rows[0]["phys_reg"]
        assert rows[2]["phys_reg"] == rows[0]["phys_reg"]

    def test_array_indices_are_table_ii(self):
        assert [idx for _, _, idx in TABLE_II_SEQUENCE] == [2, None, 10, 28]

    def test_toy_spec_is_figure6(self):
        assert workspace_shape(TOY_SPEC) == (4, 9)
        assert TOY_SPEC.output_shape.pixels == 4
