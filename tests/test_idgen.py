"""ID generation (Section III): paper formulas, canonical map, addresses."""

import numpy as np
import pytest

from repro.analysis.table2 import TOY_SPEC
from repro.conv.lowering import lower_input, workspace_shape
from repro.core.idgen import (
    IDGenerator,
    IDMode,
    canonical_ids,
    paper_ids,
    paper_patch_ids,
    strict_ids,
)

from tests.conftest import make_spec

#: Figure 6's published ID tables for the 4x9 toy workspace.
FIG6_PATCH_IDS = np.array(
    [
        [0, 0, 0, 1, 1, 1, 2, 2, 2],
        [0, 0, 0, 1, 1, 1, 2, 2, 2],
        [1, 1, 1, 2, 2, 2, 3, 3, 3],
        [1, 1, 1, 2, 2, 2, 3, 3, 3],
    ]
)
FIG6_ELEMENT_IDS = np.array(
    [
        [0, 1, 2, 4, 5, 6, 8, 9, 10],
        [1, 2, 3, 5, 6, 7, 9, 10, 11],
        [4, 5, 6, 8, 9, 10, 12, 13, 14],
        [5, 6, 7, 9, 10, 11, 13, 14, 15],
    ]
)


def all_entries(spec):
    rows, cols = workspace_shape(spec)
    rr, cc = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
    return rr.ravel(), cc.ravel()


class TestPaperFormulas:
    def test_figure6_patch_ids(self):
        rows, cols = all_entries(TOY_SPEC)
        patch = paper_patch_ids(TOY_SPEC, rows, cols).reshape(4, 9)
        np.testing.assert_array_equal(patch, FIG6_PATCH_IDS)

    def test_figure6_element_ids(self):
        rows, cols = all_entries(TOY_SPEC)
        _, element = paper_ids(TOY_SPEC, rows, cols)
        np.testing.assert_array_equal(element.reshape(4, 9), FIG6_ELEMENT_IDS)

    def test_figure6_unique_count_matches_input(self):
        rows, cols = all_entries(TOY_SPEC)
        _, element = paper_ids(TOY_SPEC, rows, cols)
        # "there are total 16 unique element IDs from 0 to 15, and the
        # count matches the number of elements in the original 4x4 input"
        assert sorted(set(element.tolist())) == list(range(16))

    def test_agrees_with_canonical_on_toy(self):
        rows, cols = all_entries(TOY_SPEC)
        _, paper = paper_ids(TOY_SPEC, rows, cols)
        _, canon = canonical_ids(TOY_SPEC, rows, cols)
        np.testing.assert_array_equal(paper, canon)

    def test_batch_ids(self):
        spec = make_spec(batch=2, h=4, w=4, c=1, filters=1, pad=0)
        rows, cols = all_entries(spec)
        batch, element = paper_ids(spec, rows, cols)
        per_image = spec.output_shape.pixels
        assert set(batch[rows < per_image].tolist()) == {0}
        assert set(batch[rows >= per_image].tolist()) == {1}

    def test_equivalence_classes_match_canonical_multichannel(self):
        """Paper IDs must group duplicates exactly like the ground
        truth on an interior (padding-free) multi-channel layer."""
        spec = make_spec(h=6, w=6, c=2, filters=1, pad=0)
        rows, cols = all_entries(spec)
        _, paper = paper_ids(spec, rows, cols)
        _, canon = canonical_ids(spec, rows, cols)
        groups_paper = {}
        groups_canon = {}
        for i, (p, c) in enumerate(zip(paper.tolist(), canon.tolist())):
            groups_paper.setdefault(p, set()).add(i)
            groups_canon.setdefault(c, set()).add(i)
        assert (
            sorted(map(sorted, groups_paper.values()))
            == sorted(map(sorted, groups_canon.values()))
        )


class TestCanonicalIDs:
    def test_equal_id_implies_equal_value(self, rng):
        spec = make_spec(h=6, w=6, c=3, filters=2, pad=1)
        x = rng.standard_normal(spec.input_nhwc)
        ws = lower_input(spec, x).matrix
        rows, cols = all_entries(spec)
        batch, element = canonical_ids(spec, rows, cols)
        seen = {}
        for b, e, v in zip(batch, element, ws.ravel()):
            key = (int(b), int(e))
            assert seen.setdefault(key, v) == v

    def test_strided_and_transposed(self, strided_spec, transposed_spec, rng):
        for spec in (strided_spec, transposed_spec):
            x = rng.standard_normal(spec.input_nhwc)
            ws = lower_input(spec, x).matrix
            rows, cols = all_entries(spec)
            batch, element = canonical_ids(spec, rows, cols)
            seen = {}
            for b, e, v in zip(batch, element, ws.ravel()):
                key = (int(b), int(e))
                assert seen.setdefault(key, v) == v

    def test_strict_refines_canonical(self, tiny_spec):
        rows, cols = all_entries(tiny_spec)
        _, canon = canonical_ids(tiny_spec, rows, cols)
        _, strict = strict_ids(tiny_spec, rows, cols)
        # Same strict ID -> same canonical ID (strict partitions finer).
        mapping = {}
        for s, c in zip(strict.tolist(), canon.tolist()):
            assert mapping.setdefault(s, c) == c
        assert len(set(strict.tolist())) >= len(set(canon.tolist()))


class TestIDGenerator:
    BASE = 0x1000

    def make_gen(self, spec, mode=IDMode.CANONICAL, lda=None):
        _, cols = workspace_shape(spec)
        return IDGenerator(
            spec, workspace_base=self.BASE, lda=lda or cols, mode=mode
        )

    def test_region_check(self, tiny_spec):
        gen = self.make_gen(tiny_spec)
        assert gen.contains(self.BASE)
        assert not gen.contains(self.BASE - 2)
        assert not gen.contains(gen.workspace_end)

    def test_address_to_entry_roundtrip(self, tiny_spec):
        gen = self.make_gen(tiny_spec)
        addr = self.BASE + (5 * gen.lda + 7) * 2
        assert gen.address_to_entry(addr) == (5, 7)

    def test_misaligned_address_rejected(self, tiny_spec):
        gen = self.make_gen(tiny_spec)
        with pytest.raises(ValueError, match="aligned"):
            gen.address_to_entry(self.BASE + 1)

    def test_out_of_region_rejected(self, tiny_spec):
        gen = self.make_gen(tiny_spec)
        with pytest.raises(ValueError, match="outside"):
            gen.address_to_entry(self.BASE - 4)

    def test_generate_outside_workspace(self, tiny_spec):
        gen = self.make_gen(tiny_spec)
        out = gen.generate(0xDEAD0000)
        assert not out.in_workspace

    def test_generate_matches_vectorised(self, multibatch_spec):
        gen = self.make_gen(multibatch_spec)
        rows, cols = workspace_shape(multibatch_spec)
        addrs = [self.BASE + (r * gen.lda + c) * 2
                 for r, c in [(0, 0), (rows - 1, cols - 1), (7, 3)]]
        ok, batch, element = gen.generate_for_addresses(np.array(addrs))
        assert ok.all()
        for addr, b, e in zip(addrs, batch, element):
            single = gen.generate(addr)
            assert (single.batch_id, single.element_id) == (b, e)

    def test_lda_padding_columns_not_workspace(self, tiny_spec):
        _, cols = workspace_shape(tiny_spec)
        gen = self.make_gen(tiny_spec, lda=cols + 4)
        addr = self.BASE + (0 * gen.lda + cols) * 2  # first pad column
        assert not gen.generate(addr).in_workspace

    def test_lda_too_small_rejected(self, tiny_spec):
        _, cols = workspace_shape(tiny_spec)
        with pytest.raises(ValueError, match="leading dimension"):
            IDGenerator(tiny_spec, self.BASE, lda=cols - 1)

    def test_paper_mode(self):
        gen = IDGenerator(TOY_SPEC, self.BASE, lda=9, mode=IDMode.PAPER)
        # array_idx 10 -> element 2 (Table II instruction #3).
        out = gen.generate(self.BASE + 10 * 2)
        assert out.element_id == 2

    def test_vectorised_flags_out_of_range(self, tiny_spec):
        gen = self.make_gen(tiny_spec)
        ok, _, _ = gen.generate_for_addresses(
            np.array([self.BASE, self.BASE - 8, self.BASE + 1])
        )
        assert ok.tolist() == [True, False, False]
