"""Property-based ID-generation tests (hypothesis).

Ground truth is derived *forward*: walk the im2col definition with a
plain Python loop (output pixel × filter tap × channel) and record
which padded-input coordinate each workspace entry reads.  The
canonical generator must agree entry-for-entry, and two workspace
addresses must share a ``(batch_id, element_id)`` pair iff they read
the same input element.

The published closed-form ``paper_ids`` are characterised rather than
asserted equal: they coincide with the canonical ground truth exactly
on zero-padding layers whose output is square (which covers the
paper's Figure 6 example and tabulated geometry), and demonstrably
diverge on padded and non-square layers.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.conv.layer import ConvLayerSpec
from repro.conv.lowering import workspace_shape
from repro.core.idgen import IDGenerator, IDMode, canonical_ids, paper_ids
from repro.gpu.isa import WORKSPACE_BASE


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

@st.composite
def small_specs(draw):
    """Random small layers, padded/strided/multi-batch/non-square."""
    h = draw(st.integers(2, 6))
    w = draw(st.integers(2, 6))
    pad = draw(st.integers(0, 2))
    kh = draw(st.integers(1, min(3, h + 2 * pad)))
    kw = draw(st.integers(1, min(3, w + 2 * pad)))
    return ConvLayerSpec(
        name="hyp",
        network="test",
        batch=draw(st.integers(1, 2)),
        in_height=h,
        in_width=w,
        in_channels=draw(st.integers(1, 3)),
        num_filters=draw(st.integers(1, 4)),
        filter_height=kh,
        filter_width=kw,
        pad=pad,
        stride=draw(st.integers(1, 2)),
    )


@st.composite
def translation_specs(draw):
    """Layers for address-translation properties, transposed included.

    Transposed layers exercise the zero-insertion upsampling path: the
    generator must translate against the *effective* (post-upsampling,
    unit-stride) geometry, which is where a vectorised rewrite would
    most plausibly drift from the scalar model.
    """
    transposed = draw(st.booleans())
    h = draw(st.integers(2, 4))
    w = draw(st.integers(2, 4))
    stride = draw(st.integers(1, 2))
    output_pad = draw(st.integers(0, stride - 1)) if transposed else 0
    pad = draw(st.integers(0, 2))
    if transposed:
        eff_h = (h - 1) * stride + 1 + output_pad
        eff_w = (w - 1) * stride + 1 + output_pad
    else:
        eff_h, eff_w = h, w
    return ConvLayerSpec(
        name="hyp-t" if transposed else "hyp-f",
        network="test",
        batch=draw(st.integers(1, 2)),
        in_height=h,
        in_width=w,
        in_channels=draw(st.integers(1, 2)),
        num_filters=draw(st.integers(1, 4)),
        filter_height=draw(st.integers(1, min(3, eff_h + 2 * pad))),
        filter_width=draw(st.integers(1, min(3, eff_w + 2 * pad))),
        pad=pad,
        stride=stride,
        transposed=transposed,
        output_pad=output_pad,
    )


# ----------------------------------------------------------------------
# Forward ground truth
# ----------------------------------------------------------------------

def forward_im2col_sources(spec):
    """(rows, cols) array of padded-coordinate triples per entry.

    ``sources[r, c] = (batch, padded_flat)`` computed straight from
    the im2col definition — independent of the vectorised inverse map
    under test.
    """
    eff = spec.effective_spec()
    out = eff.output_shape
    rows, cols = workspace_shape(spec)
    padded_w = eff.in_width + 2 * eff.pad
    batch = np.empty((rows, cols), dtype=np.int64)
    flat = np.empty((rows, cols), dtype=np.int64)
    for n in range(eff.batch):
        for oy in range(out.height):
            for ox in range(out.width):
                r = (n * out.height + oy) * out.width + ox
                for fy in range(eff.filter_height):
                    for fx in range(eff.filter_width):
                        for ch in range(eff.in_channels):
                            c = (fy * eff.filter_width + fx) * eff.in_channels + ch
                            py = oy * eff.stride + fy
                            px = ox * eff.stride + fx
                            batch[r, c] = n
                            flat[r, c] = (py * padded_w + px) * eff.in_channels + ch
    return batch, flat


def all_entries(spec):
    rows, cols = workspace_shape(spec)
    r, c = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
    return r.ravel(), c.ravel()


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(small_specs())
def test_canonical_matches_forward_ground_truth(spec):
    rows, cols = all_entries(spec)
    gt_batch, gt_flat = forward_im2col_sources(spec)
    batch, element = canonical_ids(spec, rows, cols)
    np.testing.assert_array_equal(batch, gt_batch.ravel())
    np.testing.assert_array_equal(element, gt_flat.ravel())


@settings(max_examples=30, deadline=None)
@given(small_specs())
def test_ids_equal_iff_same_input_element(spec):
    """Address-level: IDs partition the workspace by source element."""
    n_rows, n_cols = workspace_shape(spec)
    lda = n_cols + 2  # non-trivial pitch: includes alignment padding
    gen = IDGenerator(spec, WORKSPACE_BASE, lda, mode=IDMode.CANONICAL)
    gt_batch, gt_flat = forward_im2col_sources(spec)

    addresses = WORKSPACE_BASE + 2 * np.arange(
        (gen.workspace_end - WORKSPACE_BASE) // 2
    )
    ok, batch, element = gen.generate_for_addresses(addresses)

    idx = (addresses - WORKSPACE_BASE) // 2
    rows, cols = np.divmod(idx, lda)
    logical = (rows < n_rows) & (cols < n_cols)
    # Workspace-region addresses outside the logical array (alignment
    # padding) must be rejected; logical entries accepted.
    np.testing.assert_array_equal(ok, logical)

    ids = {}
    for i in np.nonzero(ok)[0]:
        r, c = int(rows[i]), int(cols[i])
        pair = (int(batch[i]), int(element[i]))
        source = (int(gt_batch[r, c]), int(gt_flat[r, c]))
        # Same ID <-> same source element, checked both directions
        # via bijection between ID pairs and sources.
        if pair in ids:
            assert ids[pair] == source
        else:
            ids[pair] = source
    assert len(set(ids.values())) == len(ids)


@settings(max_examples=40, deadline=None)
@given(
    translation_specs(),
    st.integers(0, 3),
    st.sampled_from([2, 4, 3]),
    st.integers(0, 2**32 - 1),
)
def test_vectorized_translation_matches_scalar(
    spec, extra_pitch, element_bytes, seed
):
    """``generate_for_addresses`` must agree with the scalar
    ``generate`` on every address — in-workspace, alignment-padding,
    out-of-range and misaligned alike.  The vectorised path uses
    shift/mask arithmetic for power-of-two element sizes (and plain
    division otherwise, hence ``element_bytes=3``); the scalar path is
    the straightforward divmod model, so agreement pins the rewrite.
    Specs include padded and transposed (zero-insertion) layers.
    """
    n_rows, n_cols = workspace_shape(spec)
    lda = n_cols + extra_pitch
    gen = IDGenerator(
        spec, WORKSPACE_BASE, lda,
        element_bytes=element_bytes, mode=IDMode.CANONICAL,
    )
    span = gen.workspace_end - WORKSPACE_BASE
    rng = np.random.RandomState(seed)
    addresses = np.concatenate([
        # Region edges, one element in/out on each side.
        WORKSPACE_BASE + np.array([
            -element_bytes, -1, 0, span - 1, span, span + element_bytes,
        ]),
        # Random sample across the region, aligned or not.
        WORKSPACE_BASE + rng.randint(
            -2 * element_bytes, span + 2 * element_bytes, size=200
        ),
        # Aligned sample: guaranteed to hit the scalar ID arithmetic.
        WORKSPACE_BASE + element_bytes * rng.randint(
            0, max(1, span // element_bytes), size=200
        ),
    ])
    ok, batch, element = gen.generate_for_addresses(addresses)
    for i, addr in enumerate(addresses.tolist()):
        if gen.contains(addr) and (addr - WORKSPACE_BASE) % element_bytes:
            # Scalar path raises on misaligned in-region addresses; the
            # vectorised path must reject them.
            assert not ok[i]
            continue
        g = gen.generate(addr)
        assert bool(ok[i]) == g.in_workspace, addr
        if g.in_workspace:
            assert int(batch[i]) == g.batch_id
            assert int(element[i]) == g.element_id


@settings(max_examples=30, deadline=None)
@given(small_specs())
def test_paper_ids_exact_on_unpadded_square_outputs(spec):
    """Characterisation, agreement half: with no padding and a square
    output the published formulas reproduce the ground truth."""
    out = spec.effective_spec().output_shape
    if spec.pad != 0 or out.height != out.width:
        return  # divergence regime — covered by the fixed examples
    rows, cols = all_entries(spec)
    pb, pe = paper_ids(spec, rows, cols)
    cb, ce = canonical_ids(spec, rows, cols)
    np.testing.assert_array_equal(pb, cb)
    np.testing.assert_array_equal(pe, ce)


def _partition(batch, element):
    groups = {}
    for i, pair in enumerate(zip(batch.tolist(), element.tolist())):
        groups.setdefault(pair, []).append(i)
    return sorted(map(tuple, groups.values()))


class TestPaperDivergence:
    """Characterisation, divergence half: where the closed forms break.

    Not merely different labels — the *partitions* differ, i.e. the
    paper formulas merge or split duplicate classes on these layers.
    """

    def test_padded_layer_diverges(self):
        spec = ConvLayerSpec("pad", "test", 1, 6, 6, 2, 4, 3, 3, 1, 1)
        rows, cols = all_entries(spec)
        pb, pe = paper_ids(spec, rows, cols)
        cb, ce = canonical_ids(spec, rows, cols)
        assert not (
            np.array_equal(pb, cb) and np.array_equal(pe, ce)
        )
        assert _partition(pb, pe) != _partition(cb, ce)

    def test_non_square_output_diverges(self):
        spec = ConvLayerSpec("rect", "test", 1, 6, 4, 2, 4, 3, 3, 0, 1)
        rows, cols = all_entries(spec)
        pb, pe = paper_ids(spec, rows, cols)
        cb, ce = canonical_ids(spec, rows, cols)
        assert _partition(pb, pe) != _partition(cb, ce)

    def test_unpadded_square_agrees(self):
        """Control: the agreement regime really does agree (the
        Figure 6 worked example is the 4x4/3x3/pad-0 instance)."""
        spec = ConvLayerSpec("fig6", "test", 1, 4, 4, 1, 1, 3, 3, 0, 1)
        rows, cols = all_entries(spec)
        pb, pe = paper_ids(spec, rows, cols)
        cb, ce = canonical_ids(spec, rows, cols)
        np.testing.assert_array_equal(pb, cb)
        np.testing.assert_array_equal(pe, ce)
