"""Set-associative LRU cache model."""

import pytest

from repro.gpu.cache import CacheStats, SetAssociativeCache


def cache(capacity=1024, assoc=2, line=128):
    return SetAssociativeCache(capacity, assoc, line)


class TestGeometry:
    def test_sets_and_capacity(self):
        c = cache(capacity=1024, assoc=2, line=128)
        assert c.num_sets == 4
        assert c.capacity_bytes == 1024

    def test_non_pow2_sets_rounded_down(self):
        c = SetAssociativeCache(24 * 128 * 3, assoc=24, line_bytes=128)
        assert c.num_sets & (c.num_sets - 1) == 0

    def test_line_of(self):
        c = cache(line=128)
        assert c.line_of(0) == 0
        assert c.line_of(127) == 0
        assert c.line_of(128) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(0, 1)
        with pytest.raises(ValueError, match="power of two"):
            SetAssociativeCache(1024, 2, line_bytes=100)


class TestAccessSemantics:
    def test_cold_miss_then_hit(self):
        c = cache()
        assert not c.access(5)
        assert c.access(5)

    def test_lru_within_set(self):
        c = cache(capacity=512, assoc=2, line=128)  # 2 sets
        # Lines 0, 2, 4 map to set 0.
        c.access(0)
        c.access(2)
        c.access(0)  # refresh 0; 2 is now LRU
        c.access(4)  # evicts 2
        assert c.access(0)
        assert not c.access(2)

    def test_sets_are_independent(self):
        c = cache(capacity=512, assoc=2, line=128)
        c.access(0)
        c.access(1)  # other set
        c.access(2)
        assert c.access(0) and c.access(1) and c.access(2)

    def test_contains_does_not_update(self):
        c = cache(capacity=512, assoc=2)
        c.access(0)
        c.access(2)
        assert c.contains(0)
        c.access(4)  # 0 is LRU -> evicted despite contains() probe
        assert not c.contains(0)

    def test_flush(self):
        c = cache()
        c.access(1)
        c.flush()
        assert not c.contains(1)
        assert c.stats.accesses == 0


class TestStats:
    def test_counters(self):
        c = cache()
        c.access(1)
        c.access(1)
        c.access(2)
        assert c.stats.accesses == 3
        assert c.stats.hits == 1
        assert c.stats.misses == 2
        assert c.stats.hit_rate == pytest.approx(1 / 3)

    def test_empty_hit_rate(self):
        assert CacheStats().hit_rate == 0.0

    def test_streaming_working_set_larger_than_cache(self):
        c = cache(capacity=1024, assoc=4, line=128)  # 8 lines
        for _ in range(3):
            for line in range(32):
                c.access(line)
        # Pure streaming through a too-small cache: no reuse survives.
        assert c.stats.hits == 0

    def test_working_set_that_fits_is_all_hits_after_warmup(self):
        c = cache(capacity=1024, assoc=4, line=128)
        for line in range(8):
            c.access(line)
        for line in range(8):
            assert c.access(line)


class TestMshrAccounting:
    def test_merge_within_window(self):
        c = cache(capacity=1024, assoc=4, line=128)
        c.mshr_window = 4
        c.access(1)  # miss
        assert c.access(1)  # hit 1 access after the miss -> merge
        assert c.stats.mshr_merges == 1
        assert c.stats.demand_hits == 0

    def test_hit_after_window_is_demand_hit(self):
        c = SetAssociativeCache(1024, 4, 128, mshr_window=2)
        c.access(1)
        c.access(2)
        c.access(3)
        assert c.access(1)  # 3 accesses later: fill completed
        assert c.stats.mshr_merges == 0
        assert c.stats.demand_hits == 1

    def test_disabled_by_default(self):
        c = cache()
        c.access(1)
        c.access(1)
        assert c.stats.mshr_merges == 0
        assert c.stats.hits == 1

    def test_flush_clears_mshr_state(self):
        c = SetAssociativeCache(1024, 4, 128, mshr_window=100)
        c.access(1)
        c.flush()
        c.access(1)  # miss again
        assert c.access(1)
        assert c.stats.mshr_merges == 1  # merge with the *new* miss

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError, match="mshr_window"):
            SetAssociativeCache(1024, 4, 128, mshr_window=-1)
