"""Layer geometry: output shapes, GEMM dims, transposed convolutions."""

import math

import pytest

from repro.conv.layer import ConvLayerSpec, GemmShape, HALF_BYTES
from repro.conv.workloads import get_layer

from tests.conftest import make_spec


class TestOutputShape:
    def test_unit_stride_same_padding(self):
        spec = make_spec(h=8, w=8, kh=3, kw=3, pad=1, stride=1)
        assert (spec.output_shape.height, spec.output_shape.width) == (8, 8)

    def test_valid_padding_shrinks(self):
        spec = make_spec(h=8, w=8, pad=0)
        assert (spec.output_shape.height, spec.output_shape.width) == (6, 6)

    def test_stride_two(self):
        spec = make_spec(h=9, w=9, pad=0, stride=2)
        assert (spec.output_shape.height, spec.output_shape.width) == (4, 4)

    def test_resnet_c1_output_is_112(self):
        spec = get_layer("resnet", "C1")
        assert spec.output_shape.height == 112
        assert spec.output_shape.width == 112

    def test_rectangular_input(self):
        spec = make_spec(h=10, w=6, pad=0, kh=3, kw=3)
        assert (spec.output_shape.height, spec.output_shape.width) == (8, 4)

    def test_output_channels_track_filters(self):
        spec = make_spec(filters=13)
        assert spec.output_shape.channels == 13

    def test_pixels_and_elements(self):
        out = make_spec(h=8, w=8, pad=0).output_shape
        assert out.pixels == 36
        assert out.elements == 36 * 8


class TestTransposed:
    def test_dcgan_doubles_spatial_size(self, transposed_spec):
        out = transposed_spec.output_shape
        assert (out.height, out.width) == (8, 8)

    def test_effective_spec_is_unit_stride(self, transposed_spec):
        eff = transposed_spec.effective_spec()
        assert eff.stride == 1
        assert not eff.transposed
        assert eff.in_height == (4 - 1) * 2 + 1 + 1

    def test_effective_spec_identity_for_forward(self, tiny_spec):
        assert tiny_spec.effective_spec() is tiny_spec

    def test_gan_tc_chain_matches_table1(self):
        for name, next_hw in [("TC1", 8), ("TC2", 16), ("TC3", 32)]:
            out = get_layer("gan", name).output_shape
            assert out.height == next_hw, name

    def test_tc4_feeds_gan_c1(self):
        out = get_layer("gan", "TC4").output_shape
        c1 = get_layer("gan", "C1")
        assert (out.height, out.width, out.channels) == (64, 64, 3)
        assert (c1.in_height, c1.in_width, c1.in_channels) == (64, 64, 3)


class TestGemmShape:
    def test_dimensions(self, tiny_spec):
        g = tiny_spec.gemm_shape
        assert g.m == 1 * 8 * 8
        assert g.n == 8
        assert g.k == 3 * 3 * 4

    def test_macs_match_direct_convolution(self, tiny_spec):
        out = tiny_spec.output_shape
        expected = (
            tiny_spec.batch
            * out.pixels
            * tiny_spec.num_filters
            * tiny_spec.filter_volume
        )
        assert tiny_spec.gemm_shape.macs == expected

    def test_flops_twice_macs(self):
        g = GemmShape(m=10, n=20, k=30)
        assert g.flops == 2 * g.macs

    def test_padded_rounds_up(self):
        g = GemmShape(m=17, n=16, k=1).padded(16)
        assert (g.m, g.n, g.k) == (32, 16, 16)

    def test_workspace_bytes(self, tiny_spec):
        g = tiny_spec.gemm_shape
        assert tiny_spec.workspace_bytes == g.m * g.k * HALF_BYTES


class TestDuplication:
    def test_unit_stride_3x3_is_nearly_9x(self):
        spec = get_layer("yolo", "C3")
        assert spec.duplication_factor == pytest.approx(9.0, rel=0.01)

    def test_stride_reduces_duplication(self):
        s1 = make_spec(h=16, w=16, pad=1, stride=1)
        s2 = make_spec(h=16, w=16, pad=1, stride=2)
        assert s2.duplication_factor < s1.duplication_factor

    def test_transposed_counts_upsampled_elements(self, transposed_spec):
        eff = transposed_spec.effective_spec()
        assert transposed_spec.effective_input_elements == eff.input_elements


class TestValidationAndHelpers:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(batch=0),
            dict(h=0),
            dict(c=0),
            dict(filters=0),
            dict(pad=-1),
            dict(stride=0),
            dict(h=2, w=2, kh=5, kw=5, pad=0),
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            make_spec(**kwargs)

    def test_output_pad_only_for_transposed(self):
        with pytest.raises(ValueError):
            make_spec(output_pad=1)

    def test_with_batch(self, tiny_spec):
        assert tiny_spec.with_batch(32).batch == 32
        assert tiny_spec.with_batch(32).in_height == tiny_spec.in_height

    def test_scaled_halves_spatial_dims(self):
        spec = make_spec(h=16, w=16).scaled(0.5)
        assert (spec.in_height, spec.in_width) == (8, 8)

    def test_scaled_never_below_filter(self):
        spec = make_spec(h=16, w=16, kh=5, kw=5, pad=2).scaled(0.01)
        assert spec.in_height >= 5

    def test_qualified_name_and_str(self, tiny_spec):
        assert tiny_spec.qualified_name == "test/tiny"
        assert "pad=1" in str(tiny_spec)
        assert "transposed" in str(make_spec(transposed=True, stride=2,
                                             output_pad=1, kh=5, kw=5, pad=2))

    def test_nhwc_tuples(self, tiny_spec):
        assert tiny_spec.input_nhwc == (1, 8, 8, 4)
        assert tiny_spec.filter_nhwc == (8, 3, 3, 4)

    def test_specs_are_hashable_and_frozen(self, tiny_spec):
        {tiny_spec: 1}
        with pytest.raises(Exception):
            tiny_spec.batch = 2
