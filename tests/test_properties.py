"""Property-based tests (hypothesis) on the core invariants.

These are the load-bearing guarantees the reproduction rests on,
checked over randomly drawn convolution geometries and access streams:

1. the canonical ID map groups workspace entries exactly by value;
2. im2col / col2im are adjoint linear maps;
3. GEMM convolution equals direct convolution for any geometry;
4. the LRU cache matches a brute-force reference model;
5. an unbounded, non-expiring LHB hits exactly when the tag was seen.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.conv.direct import direct_convolution
from repro.conv.gemm import gemm_convolution
from repro.conv.lowering import (
    col2im,
    entries_to_padded_flat,
    lower_input,
    unique_element_count,
    workspace_shape,
)
from repro.core.lhb import LoadHistoryBuffer
from repro.gpu.cache import SetAssociativeCache

from tests.conftest import make_spec


@st.composite
def conv_specs(draw):
    """Random small-but-varied convolution geometries."""
    kh = draw(st.sampled_from([1, 3, 5]))
    kw = draw(st.sampled_from([1, 3, 5]))
    stride = draw(st.sampled_from([1, 2]))
    pad = draw(st.integers(0, 2))
    transposed = draw(st.booleans()) and stride > 1
    h = draw(st.integers(max(kh, 4), 10))
    w = draw(st.integers(max(kw, 4), 10))
    spec = make_spec(
        batch=draw(st.integers(1, 2)),
        h=h,
        w=w,
        c=draw(st.sampled_from([1, 2, 3, 4])),
        filters=draw(st.sampled_from([1, 2, 4])),
        kh=kh,
        kw=kw,
        pad=pad,
        stride=stride,
        transposed=transposed,
        output_pad=1 if transposed else 0,
    )
    eff = spec.effective_spec()
    out = eff.output_shape
    if out.height < 1 or out.width < 1:
        raise AssertionError("strategy produced empty output")
    return spec


@settings(max_examples=40, deadline=None)
@given(spec=conv_specs(), seed=st.integers(0, 2**32 - 1))
def test_canonical_ids_group_exactly_by_value(spec, seed):
    """Equal (batch, element) ID <=> equal workspace value.

    Continuous random inputs make distinct positions distinct with
    probability one, so the grouping must be exact in both directions
    (except the zero padding positions, which strict positional IDs
    keep apart even though they are value-equal).
    """
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(spec.input_nhwc)
    ws = lower_input(spec, x).matrix
    rows, cols = ws.shape
    rr, cc = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
    batch, element = entries_to_padded_flat(spec, rr.ravel(), cc.ravel())
    values = ws.ravel()
    seen = {}
    for b, e, v in zip(batch.tolist(), element.tolist(), values):
        assert seen.setdefault((b, e), v) == v
    # Reverse direction: distinct non-zero values -> distinct IDs.
    nonzero = values != 0.0
    ids_of = {}
    for b, e, v in zip(
        batch[nonzero].tolist(), element[nonzero].tolist(), values[nonzero]
    ):
        ids_of.setdefault(v, set()).add((b, e))
    assert all(len(s) == 1 for s in ids_of.values())
    assert len(seen) == unique_element_count(spec)


@settings(max_examples=30, deadline=None)
@given(spec=conv_specs(), seed=st.integers(0, 2**32 - 1))
def test_lowering_adjoint(spec, seed):
    """<lower(x), W> == <x_eff, col2im(W)> for random x and W."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(spec.input_nhwc)
    ws = lower_input(spec, x).matrix
    w = rng.standard_normal(ws.shape)
    lhs = float((ws * w).sum())
    eff = spec.effective_spec()
    from repro.conv.lowering import upsample_zero_insert

    x_eff = (
        upsample_zero_insert(x, spec.stride, spec.output_pad)
        if spec.transposed
        else x
    )
    rhs = float((x_eff * col2im(spec, w)).sum())
    assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-9)


@settings(max_examples=25, deadline=None)
@given(spec=conv_specs(), seed=st.integers(0, 2**32 - 1))
def test_gemm_equals_direct(spec, seed):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(spec.input_nhwc)
    f = rng.standard_normal(spec.filter_nhwc)
    np.testing.assert_allclose(
        gemm_convolution(spec, x, f),
        direct_convolution(spec, x, f),
        rtol=1e-8,
        atol=1e-8,
    )


class _ReferenceLRU:
    """Brute-force per-set LRU list, the oracle for the cache model."""

    def __init__(self, num_sets, assoc):
        self.num_sets = num_sets
        self.assoc = assoc
        self.sets = {i: [] for i in range(num_sets)}

    def access(self, line):
        ways = self.sets[line % self.num_sets]
        if line in ways:
            ways.remove(line)
            ways.append(line)
            return True
        if len(ways) >= self.assoc:
            ways.pop(0)
        ways.append(line)
        return False


@settings(max_examples=40, deadline=None)
@given(
    assoc=st.sampled_from([1, 2, 4]),
    sets=st.sampled_from([2, 4, 8]),
    stream=st.lists(st.integers(0, 63), min_size=1, max_size=300),
)
def test_cache_matches_reference_lru(assoc, sets, stream):
    cache = SetAssociativeCache(sets * assoc * 128, assoc, 128)
    assert cache.num_sets == sets
    ref = _ReferenceLRU(sets, assoc)
    for line in stream:
        assert cache.access(line) == ref.access(line)


@settings(max_examples=40, deadline=None)
@given(
    stream=st.lists(
        st.tuples(st.integers(0, 30), st.integers(0, 2)), min_size=1, max_size=300
    )
)
def test_oracle_lhb_hits_iff_tag_seen(stream):
    lhb = LoadHistoryBuffer(num_entries=None, lifetime=None)
    seen = set()
    for element, batch in stream:
        hit = lhb.access(element, batch, 0).hit
        assert hit == ((element, batch) in seen)
        seen.add((element, batch))
    assert lhb.stats.compulsory_misses == len(seen)


@settings(max_examples=30, deadline=None)
@given(
    entries=st.sampled_from([4, 8, 16]),
    lifetime=st.one_of(st.none(), st.integers(1, 50)),
    stream=st.lists(st.integers(0, 40), min_size=1, max_size=200),
)
def test_finite_lhb_hits_are_sound(entries, lifetime, stream):
    """A finite/expiring LHB may miss duplicates but must never hit a
    tag that was not previously accessed (no false positives)."""
    lhb = LoadHistoryBuffer(num_entries=entries, lifetime=lifetime)
    seen = set()
    for element in stream:
        hit = lhb.access(element, 0, 0).hit
        if hit:
            assert element in seen
        seen.add(element)
