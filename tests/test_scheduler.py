"""GTO scheduling order."""

import pytest

from repro.gpu.scheduler import Turn, gto_turns, waves


class TestGtoTurns:
    def test_single_warp_single_step(self):
        turns = list(gto_turns(1, 1, 1, runahead=4))
        assert turns == [Turn(cta_index=0, warp=0, k_start=0, k_end=1)]

    def test_runahead_spans(self):
        turns = list(gto_turns(1, 1, k_steps=10, runahead=4))
        assert [(t.k_start, t.k_end) for t in turns] == [(0, 4), (4, 8), (8, 10)]

    def test_oldest_cta_first_within_round(self):
        turns = list(gto_turns(2, 2, k_steps=2, runahead=2))
        order = [(t.cta_index, t.warp) for t in turns]
        assert order == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_every_warp_covers_every_kstep(self):
        turns = list(gto_turns(3, 4, k_steps=7, runahead=3))
        covered = {}
        for t in turns:
            key = (t.cta_index, t.warp)
            covered.setdefault(key, set()).update(range(t.k_start, t.k_end))
        assert all(v == set(range(7)) for v in covered.values())
        assert len(covered) == 12

    def test_zero_ksteps_yields_nothing(self):
        assert list(gto_turns(1, 1, 0, 1)) == []

    @pytest.mark.parametrize(
        "args", [(0, 1, 1, 1), (1, 0, 1, 1), (1, 1, -1, 1), (1, 1, 1, 0)]
    )
    def test_validation(self, args):
        with pytest.raises(ValueError):
            list(gto_turns(*args))


class TestWaves:
    def test_splits_in_order(self):
        assert [list(w) for w in waves([1, 2, 3, 4, 5], 2)] == [
            [1, 2],
            [3, 4],
            [5],
        ]

    def test_concurrency_validation(self):
        with pytest.raises(ValueError):
            list(waves([1], 0))
