"""Simulator invariants over every Table I layer (capped traces).

A breadth sweep: each of the 22 paper layers, simulated with a
one-CTA trace cap, must satisfy the model's conservation and ordering
invariants.  Catches geometry-specific regressions (partial tiles,
transposed upsampling, huge K, tiny N) that the synthetic-layer unit
tests can miss.
"""

import pytest

from repro.conv.workloads import ALL_LAYERS
from repro.gpu.config import SimulationOptions
from repro.gpu.simulator import EliminationMode, simulate_pair

OPTIONS = SimulationOptions(max_ctas=1)


@pytest.fixture(scope="module", autouse=True)
def _exact_engine():
    """The conservation invariants are stated over the exact tiers;
    module-scoped because ``results`` simulates at module scope."""
    mp = pytest.MonkeyPatch()
    mp.delenv("REPRO_ENGINE", raising=False)
    yield
    mp.undo()


@pytest.fixture(scope="module")
def results():
    out = {}
    for spec in ALL_LAYERS:
        out[spec.qualified_name] = simulate_pair(spec, options=OPTIONS)
    return out


@pytest.mark.parametrize("layer", [s.qualified_name for s in ALL_LAYERS])
class TestPerLayerInvariants:
    def test_duplo_never_slower(self, results, layer):
        base, duplo = results[layer]
        assert duplo.cycles <= base.cycles + 1e-6

    def test_service_breakdown_partitions_loads(self, results, layer):
        for r in results[layer]:
            assert r.stats.breakdown.total == r.stats.loads_total

    def test_hits_within_theory(self, results, layer):
        _, duplo = results[layer]
        s = duplo.stats
        assert s.lhb_hits <= s.lhb_lookups
        assert s.lhb_hit_rate <= s.theoretical_hit_limit + 1e-9

    def test_traffic_ordering(self, results, layer):
        base, duplo = results[layer]
        assert duplo.stats.l1_accesses <= base.stats.l1_accesses
        assert duplo.stats.dram_read_bytes <= base.stats.dram_read_bytes
        assert duplo.stats.dram_write_bytes == base.stats.dram_write_bytes

    def test_same_compute_both_configs(self, results, layer):
        base, duplo = results[layer]
        assert base.stats.mma_ops == duplo.stats.mma_ops
        assert base.stats.loads_total == duplo.stats.loads_total

    def test_octet_floor_on_hits(self, results, layer):
        """The dual octet copies alone guarantee a hit-rate floor of
        ~50% for any unbounded window; even the finite default LHB
        catches a solid share on every layer."""
        _, duplo = results[layer]
        assert duplo.stats.lhb_hit_rate > 0.25
