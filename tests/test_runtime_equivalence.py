"""Parallel/cached execution is bit-identical to the serial path.

The sweep engine's determinism contract (see
``repro.runtime.executor``): a point's result is a pure function of
the point, so rows must come back *numerically identical* — not
merely close — whether computed inline, across worker processes, or
read back from the persistent cache, for every elimination mode
(baseline / Duplo / WIR / oracle).
"""

import pytest

from tests.conftest import make_spec
from repro.analysis.sweeps import lhb_size_sweep
from repro.gpu import simulator
from repro.gpu.config import SimulationOptions
from repro.gpu.ldst import EliminationMode
from repro.gpu.simulator import clear_trace_cache, simulate_layer
from repro.runtime import DiskCache, SimPoint, SweepExecutor, simulate_point

#: Three-layer subset: plain, strided, and multi-batch geometry.
LAYERS = [
    make_spec(name="eq-plain"),
    make_spec(name="eq-strided", h=9, w=9, pad=0, stride=2),
    make_spec(name="eq-batch3", batch=3, h=6, w=6, c=2, filters=4),
]
SIZES = (64, 128, None)
OPTIONS = SimulationOptions(max_ctas=2)

#: (mode, lhb_entries): the paper's four configurations.
MODES = [
    (EliminationMode.BASELINE, None),
    (EliminationMode.DUPLO, 1024),
    (EliminationMode.WIR, 1024),
    (EliminationMode.DUPLO, None),  # oracle (unbounded LHB)
]


@pytest.fixture(autouse=True)
def _fresh_caches(monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    clear_trace_cache()
    yield
    clear_trace_cache()
    simulator.set_trace_store(None)


def serial_reference():
    """The pre-runtime serial loop, written out longhand."""
    rows = []
    for spec in LAYERS:
        base = simulate_layer(
            spec, EliminationMode.BASELINE, options=OPTIONS
        )
        for size in SIZES:
            result = simulate_layer(
                spec, EliminationMode.DUPLO, lhb_entries=size, options=OPTIONS
            )
            rows.append((spec.qualified_name, size, base, result))
    return rows


def assert_rows_identical(sweep, reference):
    assert len(sweep.rows) == len(reference)
    for row, (layer, _, base, result) in zip(sweep.rows, reference):
        assert row.layer == layer
        # Exact float equality — the determinism contract.
        assert row.improvement == result.speedup_over(base) - 1
        assert row.hit_rate == result.stats.lhb_hit_rate
        assert row.result.cycles == result.cycles
        assert row.result.time_ms == result.time_ms
        assert row.result.stats == result.stats
        assert row.result.sm_stats == result.sm_stats


@pytest.mark.parametrize("jobs", [1, 2, 4])
def test_executor_matches_serial(jobs):
    reference = serial_reference()
    clear_trace_cache()
    sweep = lhb_size_sweep(
        LAYERS,
        SIZES,
        options=OPTIONS,
        executor=SweepExecutor(jobs=jobs),
    )
    assert_rows_identical(sweep, reference)


@pytest.mark.parametrize("jobs", [1, 2])
def test_cached_run_matches_serial(tmp_path, jobs):
    reference = serial_reference()
    cache = DiskCache(tmp_path / "cache")
    # Cold populate, then verify the warm read-back separately.
    clear_trace_cache()
    cold = lhb_size_sweep(
        LAYERS, SIZES, options=OPTIONS,
        executor=SweepExecutor(jobs=jobs, cache=cache),
    )
    assert_rows_identical(cold, reference)
    clear_trace_cache()
    warm = lhb_size_sweep(
        LAYERS, SIZES, options=OPTIONS,
        executor=SweepExecutor(jobs=jobs, cache=cache),
    )
    assert_rows_identical(warm, reference)


def test_warm_cache_skips_trace_generation(tmp_path, monkeypatch):
    cache = DiskCache(tmp_path / "cache")
    first = lhb_size_sweep(
        LAYERS, SIZES, options=OPTIONS, executor=SweepExecutor(cache=cache)
    )

    calls = []
    real = simulator.generate_sm_trace

    def counting(*args, **kwargs):
        calls.append(args)
        return real(*args, **kwargs)

    monkeypatch.setattr(simulator, "generate_sm_trace", counting)
    clear_trace_cache()
    warm = lhb_size_sweep(
        LAYERS, SIZES, options=OPTIONS, executor=SweepExecutor(cache=cache)
    )
    assert calls == []  # every artifact served from disk
    for a, b in zip(first.rows, warm.rows):
        assert a.improvement == b.improvement
        assert a.hit_rate == b.hit_rate
        assert a.result.stats == b.result.stats


@pytest.mark.parametrize("mode,entries", MODES)
def test_mode_equivalence_through_runtime(tmp_path, mode, entries):
    """Every elimination mode survives the executor and the cache."""
    spec = LAYERS[0]
    direct = simulate_layer(
        spec, mode, lhb_entries=entries, options=OPTIONS
    )
    point = SimPoint(spec, mode, lhb_entries=entries, options=OPTIONS)

    # Through worker processes (no cache).
    via_pool = SweepExecutor(jobs=2).run_chunks([[point], [point]])
    for (result,) in via_pool:
        assert result.cycles == direct.cycles
        assert result.time_ms == direct.time_ms
        assert result.stats == direct.stats
        assert result.sm_stats == direct.sm_stats
        assert result.mode is mode

    # Through the persistent cache: cold write, warm read.
    cache = DiskCache(tmp_path / "cache")
    cold = simulate_point(point, cache)
    warm = simulate_point(point, cache)
    for result in (cold, warm):
        assert result.cycles == direct.cycles
        assert result.stats == direct.stats
    s = cache.stats()
    assert s.result_hits == 1 and s.result_misses == 1
