"""Smoke-run the fast example scripts end to end.

Each example is a deliverable; running the quick ones as subprocesses
guards their imports, argument handling, and output paths.  The
longer sweeps (lhb_design_space, network_inference, derived_networks,
training_study, implicit_vs_explicit) exercise the same library paths
already covered by the benchmark suite and are excluded to keep the
unit-test run fast.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "duplication_anatomy.py",
    "pipeline_walkthrough.py",
    "multikernel_sharing.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    path = EXAMPLES / script
    assert path.exists(), f"missing example {script}"
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=EXAMPLES.parent,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_all_examples_have_docstrings_and_mains():
    for script in EXAMPLES.glob("*.py"):
        text = script.read_text()
        assert text.startswith('"""'), script
        assert '__name__ == "__main__"' in text, script
        assert "Run:" in text, f"{script} lacks run instructions"
