"""Shared fixtures: small synthetic layers and deterministic data."""

import numpy as np
import pytest

from repro.conv.layer import ConvLayerSpec
from repro.gpu.config import SimulationOptions


def pytest_configure(config):
    # The benchmarks lane deselects with `-m "not slow"`; if the
    # marker ever drops out of pyproject.toml the filter silently
    # matches nothing, so assert its registration here once.
    markers = [m.split(":", 1)[0] for m in config.getini("markers")]
    assert "slow" in markers, (
        "the 'slow' marker must stay registered in pyproject.toml"
    )


def make_spec(
    name="tiny",
    network="test",
    batch=1,
    h=8,
    w=8,
    c=4,
    filters=8,
    kh=3,
    kw=3,
    pad=1,
    stride=1,
    transposed=False,
    output_pad=0,
):
    """Synthetic layer factory used across the suite."""
    return ConvLayerSpec(
        name=name,
        network=network,
        batch=batch,
        in_height=h,
        in_width=w,
        in_channels=c,
        num_filters=filters,
        filter_height=kh,
        filter_width=kw,
        pad=pad,
        stride=stride,
        transposed=transposed,
        output_pad=output_pad,
    )


@pytest.fixture
def tiny_spec():
    """1x8x8x4 input, 8 3x3 filters, pad 1, stride 1."""
    return make_spec()


@pytest.fixture
def strided_spec():
    """Stride-2, pad-0 variant (ResNet C3-style geometry)."""
    return make_spec(name="strided", h=9, w=9, pad=0, stride=2)


@pytest.fixture
def transposed_spec():
    """DCGAN-style transposed convolution (upsampling by 2)."""
    return make_spec(
        name="tconv", h=4, w=4, c=8, filters=4, kh=5, kw=5, pad=2,
        stride=2, transposed=True, output_pad=1,
    )


@pytest.fixture
def multibatch_spec():
    """Batch of 3 images to exercise batch-ID separation."""
    return make_spec(name="batch3", batch=3, h=6, w=6, c=2, filters=4)


@pytest.fixture
def rng():
    return np.random.default_rng(20200725)


@pytest.fixture
def fast_options():
    """Simulation options capped for test speed."""
    return SimulationOptions(max_ctas=2)


@pytest.fixture
def arch_preset():
    """The environment-selected architecture preset.

    Resolves ``$REPRO_ARCH`` (default volta) via
    :func:`repro.gpu.config.get_arch`; the CI arch-matrix lane re-runs
    the not-slow suite with this pointed at each zoo entry, so tests
    taking this fixture get exercised under every fragment geometry.
    """
    from repro.gpu.config import get_arch

    return get_arch()
