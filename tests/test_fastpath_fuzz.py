"""Differential fuzzing: vectorised replay vs. the event-level path.

The closed forms in :mod:`repro.gpu.fastpath` claim *bit-identical*
counters to the stateful models for every configuration they accept —
including the two paths added last (offline per-set LRU for
set-associative LHBs, PID-folded tags for multi-kernel interleavings).
Hypothesis hunts the corners a fixed test matrix misses: degenerate
stream lengths, negative (merged-padding) element IDs, lifetime
windows straddling chunk boundaries, single-set buffers, chunk sizes
coprime to stream lengths, and tiny cache geometries.

Tier-1 runs a small number of examples per property (override with
``REPRO_FUZZ_EXAMPLES``); the ``slow``-marked variants go deep and run
in the scheduled/CI lanes only.
"""

import dataclasses
import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.conv.attention import gemm_layer
from repro.core.lhb import LoadHistoryBuffer
from repro.gpu.config import (
    BASELINE_KERNEL,
    GPUConfig,
    SimulationOptions,
)
from repro.gpu.fastpath import replay_trace_fast, simulate_lhb_stream
from repro.gpu.kernel import generate_sm_trace
from repro.gpu.ldst import EliminationMode, replay_trace
from repro.gpu.multikernel import _interleave

from tests.conftest import make_spec

#: Example budget for the tier-1 (fast) properties.  The slow variants
#: multiply this up; both knobs are environment-tunable so the CI fuzz
#: lane can go deeper without a code change.
MAX_EXAMPLES = int(os.environ.get("REPRO_FUZZ_EXAMPLES", "25"))
SLOW_EXAMPLES = int(os.environ.get("REPRO_FUZZ_EXAMPLES_SLOW", "300"))


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

@st.composite
def lhb_configs(draw):
    """Every buffer organisation: direct-mapped through single-set
    fully-associative, oracle, finite/infinite lifetimes."""
    if draw(st.booleans()) and draw(st.booleans()):  # ~25% oracle
        entries, assoc = None, 1
    else:
        assoc = draw(st.sampled_from([1, 2, 4, 8]))
        entries = assoc * draw(st.sampled_from([1, 2, 4, 16]))
    return dict(
        num_entries=entries,
        assoc=assoc,
        lifetime=draw(st.sampled_from([None, 1, 2, 3, 8, 33, 4096])),
        hashed_index=draw(st.booleans()),
    )


@st.composite
def lookup_streams(draw, max_len=160, max_pids=3):
    """(element, batch, pid) int64 arrays of one synthetic stream.

    Element IDs include negatives (the merged-padding convention) and
    ranges both tighter and wider than any buffer under test.
    """
    n = draw(st.integers(0, max_len))
    hi = draw(st.sampled_from([1, 3, 9, 40, 300]))
    lo = -draw(st.sampled_from([0, 0, 1, 5]))
    element = draw(
        st.lists(st.integers(lo, hi), min_size=n, max_size=n)
    )
    batch = draw(
        st.lists(st.integers(0, 2), min_size=n, max_size=n)
    )
    pid = draw(
        st.lists(st.integers(0, max_pids - 1), min_size=n, max_size=n)
    )
    return (
        np.asarray(element, dtype=np.int64),
        np.asarray(batch, dtype=np.int64),
        np.asarray(pid, dtype=np.int64),
    )


@st.composite
def replay_cases(draw):
    """Layer geometry x fragment geometry x cache geometry x replay
    options for the full end-to-end trace replay differential.

    The fragment axis draws the architecture zoo's shapes — non-square
    tiles (Turing/Ampere's 16x8xK) and narrow INT8/FP8 operand widths
    — and the layer axis mixes conv geometries with attention-style
    GEMMs (the 1x1 identity embedding of ``repro.conv.attention``).
    """
    if draw(st.booleans()) and draw(st.booleans()):  # ~25% attention GEMM
        spec = gemm_layer(
            "fuzzgemm",
            batch=draw(st.integers(1, 2)),
            m=draw(st.sampled_from([3, 17, 33])),
            n=draw(st.sampled_from([1, 8, 40])),
            k=draw(st.sampled_from([2, 16, 24])),
            network="fuzz",
        )
    else:
        h = draw(st.integers(2, 5))
        w = draw(st.integers(2, 5))
        pad = draw(st.integers(0, 2))
        spec = make_spec(
            name="fuzz",
            batch=draw(st.integers(1, 2)),
            h=h,
            w=w,
            c=draw(st.sampled_from([1, 2, 4])),
            filters=draw(st.sampled_from([1, 4])),
            kh=draw(st.integers(1, min(3, h + 2 * pad))),
            kw=draw(st.integers(1, min(3, w + 2 * pad))),
            pad=pad,
            stride=draw(st.integers(1, 2)),
        )
    line = draw(st.sampled_from([32, 128]))
    l1_assoc = draw(st.sampled_from([1, 2, 4]))
    l2_assoc = draw(st.sampled_from([2, 8]))
    # Fragment geometry: every edge must divide the 32x32 warp tile
    # and tile_k the 64-deep stage; all pow2 draws satisfy both.
    gpu = GPUConfig(
        num_sms=1,
        l1_bytes=line * l1_assoc * draw(st.sampled_from([2, 8, 32])),
        l1_assoc=l1_assoc,
        l1_line_bytes=line,
        l2_bytes=line * l2_assoc * draw(st.sampled_from([8, 64])),
        l2_assoc=l2_assoc,
        l2_line_bytes=line,
        tile_m=draw(st.sampled_from([8, 16, 32])),
        tile_n=draw(st.sampled_from([8, 16, 32])),
        tile_k=draw(st.sampled_from([8, 16, 32])),
        element_bytes=draw(st.sampled_from([1, 2])),
    )
    options = SimulationOptions(
        max_ctas=1,
        lhb_lifetime=draw(st.sampled_from([None, 2, 16, 4096])),
        lhb_hashed_index=draw(st.booleans()),
        lhb_granularity=draw(st.sampled_from(["fragment", "instruction"])),
        merge_padding=draw(st.booleans()),
    )
    mode = draw(
        st.sampled_from(
            [EliminationMode.BASELINE, EliminationMode.DUPLO,
             EliminationMode.WIR]
        )
    )
    if draw(st.booleans()) and draw(st.booleans()):  # ~25% oracle
        entries, assoc = None, 1
    else:
        assoc = draw(st.sampled_from([1, 2, 4]))
        entries = assoc * draw(st.sampled_from([2, 16]))
    return spec, gpu, options, mode, entries, assoc


# ----------------------------------------------------------------------
# Reference implementations (plain event loops)
# ----------------------------------------------------------------------

def _event_stream(config, element, batch, pid):
    """Drive the stateful LHB access-by-access."""
    buf = LoadHistoryBuffer(**config)
    hits = [
        buf.access(int(e), int(b), dest_reg=0, pid=int(p)).hit
        for e, b, p in zip(element, batch, pid)
    ]
    return buf, np.asarray(hits, dtype=bool)


def _assert_stats_equal(fast, ref, context):
    assert dataclasses.asdict(fast.stats) == dataclasses.asdict(
        ref.stats
    ), context


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------

@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(config=lhb_configs(), stream=lookup_streams())
def test_stream_matches_event_path(config, stream):
    """Core recurrence: hit mask + all seven counters, any geometry."""
    element, batch, pid = stream
    ref, expected = _event_stream(config, element, batch, pid)
    fast = LoadHistoryBuffer(**config)
    got = simulate_lhb_stream(element, batch, fast, pid=pid)
    np.testing.assert_array_equal(got, expected, err_msg=str(config))
    _assert_stats_equal(fast, ref, config)


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(config=lhb_configs(), stream=lookup_streams(max_pids=1))
def test_stream_omitted_pid_equals_zero_pid(config, stream):
    """``pid=None`` must be exactly the all-zero PID stream (the
    single-kernel invariant the replay relies on)."""
    element, batch, _ = stream
    a = LoadHistoryBuffer(**config)
    got_a = simulate_lhb_stream(element, batch, a)
    b = LoadHistoryBuffer(**config)
    got_b = simulate_lhb_stream(
        element, batch, b, pid=np.zeros(len(element), dtype=np.int64)
    )
    np.testing.assert_array_equal(got_a, got_b)
    _assert_stats_equal(a, b, config)


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(
    config=lhb_configs(),
    streams=st.lists(lookup_streams(max_len=80), min_size=1, max_size=3),
    chunk=st.sampled_from([1, 3, 64, 997]),
)
def test_multikernel_interleave_matches_event_scheduler(
    config, streams, chunk
):
    """The round-robin interleave + PID-folded recurrence reproduces
    the event scheduler's shared-buffer counters and per-kernel hits."""
    kernels = [(b, e) for e, b, _ in streams]  # (batch, element) pairs

    # Event reference: the exact scheduler loop of simulate_shared_lhb.
    ref = LoadHistoryBuffer(**config)
    cursors = [0] * len(kernels)
    ref_hits = [0] * len(kernels)
    live = True
    while live:
        live = False
        for k, (batch, element) in enumerate(kernels):
            start = cursors[k]
            if start >= len(element):
                continue
            live = True
            stop = min(start + chunk, len(element))
            for b, e in zip(batch[start:stop], element[start:stop]):
                if ref.access(int(e), int(b), 0, pid=k).hit:
                    ref_hits[k] += 1
            cursors[k] = stop

    fast = LoadHistoryBuffer(**config)
    batch_i, element_i, pid_i = _interleave(kernels, chunk)
    hit = simulate_lhb_stream(element_i, batch_i, fast, pid=pid_i)
    fast_hits = np.bincount(
        pid_i[hit], minlength=len(kernels)
    ).tolist()

    _assert_stats_equal(fast, ref, (config, chunk))
    assert fast_hits == ref_hits, (config, chunk)


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(case=replay_cases())
def test_full_replay_matches_event_path(case):
    """End to end through the memory hierarchy: random tiny layers and
    cache geometries, asdict-equality on the whole LayerStats."""
    spec, gpu, options, mode, entries, assoc = case
    trace = generate_sm_trace(spec, gpu, BASELINE_KERNEL, options)

    def fresh_lhb():
        if mode is EliminationMode.BASELINE:
            return None
        return LoadHistoryBuffer(
            num_entries=entries,
            assoc=assoc,
            lifetime=options.lhb_lifetime,
            hashed_index=options.lhb_hashed_index,
        )

    event = replay_trace(trace, spec, gpu, options, mode, fresh_lhb())
    fast = replay_trace_fast(trace, spec, gpu, options, mode, fresh_lhb())
    assert dataclasses.asdict(event) == dataclasses.asdict(fast), (
        spec, gpu, options, mode, entries, assoc
    )


# ----------------------------------------------------------------------
# Deep variants (slow lane)
# ----------------------------------------------------------------------

@pytest.mark.slow
@settings(max_examples=SLOW_EXAMPLES, deadline=None)
@given(config=lhb_configs(), stream=lookup_streams(max_len=400, max_pids=4))
def test_stream_matches_event_path_deep(config, stream):
    element, batch, pid = stream
    ref, expected = _event_stream(config, element, batch, pid)
    fast = LoadHistoryBuffer(**config)
    got = simulate_lhb_stream(element, batch, fast, pid=pid)
    np.testing.assert_array_equal(got, expected, err_msg=str(config))
    _assert_stats_equal(fast, ref, config)


@pytest.mark.slow
@settings(max_examples=max(50, SLOW_EXAMPLES // 4), deadline=None)
@given(case=replay_cases())
def test_full_replay_matches_event_path_deep(case):
    test_full_replay_matches_event_path.hypothesis.inner_test(case)


# ----------------------------------------------------------------------
# Warm-buffer seeding (the last closed event-path fallback)
# ----------------------------------------------------------------------

@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(
    config=lhb_configs(),
    stream=lookup_streams(max_len=200, max_pids=3),
    cut=st.integers(0, 200),
    warm_fast=st.booleans(),
)
def test_warm_seeded_stream_matches_event_path(
    config, stream, cut, warm_fast
):
    """A warm buffer replays the rest of its stream on the fast path
    bit-identically to the event loop — whichever path (event accesses
    or a previous fast replay) built the residency being seeded."""
    element, batch, pid = stream
    cut = min(cut, len(element))
    ref, expected = _event_stream(config, element, batch, pid)
    expected = expected[cut:]

    fast = LoadHistoryBuffer(**config)
    if warm_fast:
        simulate_lhb_stream(
            element[:cut], batch[:cut], fast, pid=pid[:cut]
        )
    else:
        for e, b, p in zip(element[:cut], batch[:cut], pid[:cut]):
            fast.access(int(e), int(b), dest_reg=0, pid=int(p))
    got = simulate_lhb_stream(
        element[cut:], batch[cut:], fast, pid=pid[cut:]
    )
    np.testing.assert_array_equal(
        got, expected, err_msg=str((config, cut, warm_fast))
    )
    _assert_stats_equal(fast, ref, (config, cut, warm_fast))
    assert fast.live_entries() == ref.live_entries()


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(
    case=replay_cases(),
    warm=lookup_streams(max_len=60, max_pids=1),
    warm_fast=st.booleans(),
)
def test_full_replay_with_warm_lhb_matches_event_path(
    case, warm, warm_fast
):
    """End-to-end replay over a caller-supplied *warm* buffer: the
    residency snapshot seeding must leave every LayerStats counter and
    the final buffer state equal to the event path's."""
    spec, gpu, options, mode, entries, assoc = case
    if mode is EliminationMode.BASELINE:
        mode = EliminationMode.DUPLO  # warmth only matters with an LHB
    trace = generate_sm_trace(spec, gpu, BASELINE_KERNEL, options)
    w_element, w_batch, _ = warm

    def warmed(fast_seed):
        buf = LoadHistoryBuffer(
            num_entries=entries,
            assoc=assoc,
            lifetime=options.lhb_lifetime,
            hashed_index=options.lhb_hashed_index,
        )
        if fast_seed:
            simulate_lhb_stream(w_element, w_batch, buf)
        else:
            for e, b in zip(w_element, w_batch):
                buf.access(int(e), int(b), dest_reg=0)
        return buf

    ref_lhb = warmed(False)
    event = replay_trace(trace, spec, gpu, options, mode, ref_lhb)
    fast_lhb = warmed(warm_fast)
    fast = replay_trace_fast(trace, spec, gpu, options, mode, fast_lhb)
    assert dataclasses.asdict(event) == dataclasses.asdict(fast), (
        spec, gpu, options, mode, entries, assoc, warm_fast
    )
    _assert_stats_equal(fast_lhb, ref_lhb, (options, mode, warm_fast))
    assert fast_lhb.live_entries() == ref_lhb.live_entries()
