"""Shared-LHB multi-kernel runs: PID isolation and contention."""

import pytest

from repro.core.lhb import LoadHistoryBuffer
from repro.gpu.config import GPUConfig, KernelConfig, SimulationOptions
from repro.gpu.multikernel import contention_report, simulate_shared_lhb

from tests.conftest import make_spec

GPU = GPUConfig(num_sms=1)
KERNEL = KernelConfig(warp_runahead=8)
OPTIONS = SimulationOptions()


def spec_a():
    return make_spec(name="ka", batch=1, h=10, w=10, c=16, filters=16)


def spec_b():
    return make_spec(name="kb", batch=1, h=10, w=10, c=16, filters=16)


def run(specs, entries=1024, lhb=None, chunk=256):
    return simulate_shared_lhb(
        specs, entries, chunk=chunk, gpu=GPU, kernel=KERNEL,
        options=OPTIONS, lhb=lhb,
    )


class TestIsolation:
    def test_identical_kernels_do_not_cross_hit(self):
        """Two identical kernels issue identical (batch, element)
        streams; without PID separation every second lookup would hit
        the other kernel's entry.  With an *unbounded, non-expiring*
        buffer, each kernel must reproduce exactly its solo hits."""
        lhb = LoadHistoryBuffer(num_entries=None, lifetime=None)
        shared = run([spec_a(), spec_b()], lhb=lhb)
        solo = run([spec_a()], entries=None,
                   lhb=LoadHistoryBuffer(num_entries=None, lifetime=None))[0]
        for share in shared:
            assert share.hits == solo.hits

    def test_compulsory_misses_double_with_two_pids(self):
        lhb = LoadHistoryBuffer(num_entries=None, lifetime=None)
        run([spec_a(), spec_b()], lhb=lhb)
        solo_lhb = LoadHistoryBuffer(num_entries=None, lifetime=None)
        run([spec_a()], lhb=solo_lhb)
        assert (
            lhb.stats.compulsory_misses
            == 2 * solo_lhb.stats.compulsory_misses
        )


class TestContention:
    def test_finite_buffer_contention_costs_hits(self):
        report = contention_report(
            [spec_a(), spec_b()], lhb_entries=512,
            gpu=GPU, kernel=KERNEL, options=OPTIONS, chunk=128,
        )
        for stats in report.values():
            assert stats["contention_loss"] >= -1e-9
        assert any(s["contention_loss"] > 0.0 for s in report.values())

    def test_lookup_conservation(self):
        shares = run([spec_a(), spec_b()])
        solo = run([spec_a()])[0]
        assert all(s.lookups == solo.lookups for s in shares)


class TestValidation:
    def test_empty_kernel_list_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            simulate_shared_lhb([])

    def test_bad_chunk_rejected(self):
        with pytest.raises(ValueError, match="chunk"):
            simulate_shared_lhb([spec_a()], chunk=0)
