"""ASCII chart rendering."""

import pytest

from repro.analysis.charts import bar_chart, grouped_chart, summary_chart
from repro.analysis.experiments import Experiment


def toy_experiment():
    return Experiment(
        name="toy",
        description="demo",
        rows=[
            {"layer": "a", "lhb": "256", "improvement": 0.10},
            {"layer": "a", "lhb": "1024", "improvement": 0.20},
            {"layer": "b", "lhb": "256", "improvement": 0.05},
            {"layer": "b", "lhb": "1024", "improvement": -0.02},
        ],
        summary={"gmean": 0.08},
        paper={"gmean": 0.10},
    )


class TestBarChart:
    def test_scales_to_peak(self):
        text = bar_chart({"x": 1.0, "y": 0.5}, width=10, percent=False)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_negative_values_use_dashes(self):
        text = bar_chart({"up": 0.5, "down": -0.5}, width=4)
        assert "-" * 4 in text

    def test_percent_formatting(self):
        assert "+12.0%" in bar_chart({"a": 0.12})

    def test_empty(self):
        assert bar_chart({}) == "(no data)"

    def test_title(self):
        assert bar_chart({"a": 1}, title="T").startswith("T\n")

    def test_zero_values_safe(self):
        assert "|" in bar_chart({"a": 0.0})


class TestGroupedChart:
    def test_groups_and_series(self):
        text = grouped_chart(
            toy_experiment(), "layer", "lhb", "improvement", width=8
        )
        assert "a" in text and "b" in text
        assert text.count("256") == 2

    def test_max_groups(self):
        text = grouped_chart(
            toy_experiment(), "layer", "lhb", "improvement", max_groups=1
        )
        assert "\nb\n" not in text

    def test_empty_rows(self):
        exp = Experiment(name="x", description="", rows=[])
        assert grouped_chart(exp, "layer", "lhb", "v") == "(no data)"


class TestSummaryChart:
    def test_includes_paper_reference(self):
        text = summary_chart(toy_experiment())
        assert "gmean" in text
        assert "paper:" in text
        assert "+10.0%" in text
