"""Auxiliary layers (pooling/softmax) and Figure 14's epsilon claim."""

import numpy as np
import pytest

from repro.conv.auxiliary import (
    AuxiliaryCostModel,
    average_pool,
    max_pool,
    softmax,
)
from repro.conv.workloads import get_layer
from repro.gpu.simulator import EliminationMode, simulate_layer
from repro.gpu.config import SimulationOptions


@pytest.fixture(autouse=True)
def _exact_engine(monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)


class TestMaxPool:
    def test_reduces_spatial_dims(self, rng):
        x = rng.standard_normal((2, 8, 8, 3))
        assert max_pool(x).shape == (2, 4, 4, 3)

    def test_picks_window_maximum(self):
        x = np.arange(16, dtype=float).reshape(1, 4, 4, 1)
        out = max_pool(x)
        np.testing.assert_array_equal(
            out[0, :, :, 0], np.array([[5, 7], [13, 15]])
        )

    def test_stride_one(self, rng):
        x = rng.standard_normal((1, 5, 5, 2))
        assert max_pool(x, size=2, stride=1).shape == (1, 4, 4, 2)

    def test_rejects_non_nhwc(self):
        with pytest.raises(ValueError, match="NHWC"):
            max_pool(np.zeros((4, 4)))


class TestAveragePool:
    def test_window_mean(self):
        x = np.arange(16, dtype=float).reshape(1, 4, 4, 1)
        out = average_pool(x)
        np.testing.assert_allclose(
            out[0, :, :, 0], np.array([[2.5, 4.5], [10.5, 12.5]])
        )

    def test_constant_input_unchanged(self):
        x = np.full((1, 6, 6, 2), 3.0)
        np.testing.assert_allclose(average_pool(x), np.full((1, 3, 3, 2), 3.0))


class TestSoftmax:
    def test_sums_to_one(self, rng):
        p = softmax(rng.standard_normal((4, 10)))
        np.testing.assert_allclose(p.sum(axis=-1), np.ones(4))

    def test_invariant_to_shift(self, rng):
        x = rng.standard_normal((2, 5))
        np.testing.assert_allclose(softmax(x), softmax(x + 100.0))

    def test_handles_large_values(self):
        p = softmax(np.array([[1000.0, 1000.0]]))
        np.testing.assert_allclose(p, [[0.5, 0.5]])


class TestFigure14Epsilon:
    def test_pooling_is_invisible_next_to_convolution(self):
        """The paper's Figure 14 rationale: pooling/softmax account
        for an infinitesimally small fraction of execution time."""
        model = AuxiliaryCostModel()
        spec = get_layer("resnet", "C2")
        conv = simulate_layer(
            spec,
            EliminationMode.BASELINE,
            options=SimulationOptions(max_ctas=3),
        )
        fraction = model.fraction_of(spec, conv.cycles)
        # Real networks run many convolutions per pooling layer, so a
        # single-digit fraction of *one* conv is invisible at network
        # scale (the paper's "infinitesimally small").
        assert fraction < 0.10

    def test_softmax_negligible(self):
        model = AuxiliaryCostModel()
        assert model.softmax_cycles(classes=1000, batch=8) < 1000

    def test_fraction_validates(self):
        with pytest.raises(ValueError):
            AuxiliaryCostModel().fraction_of(get_layer("resnet", "C2"), 0)
