"""Winograd variants: F(2x2,3x3) vs F(4x4,3x3)."""

import numpy as np
import pytest

from repro.conv.direct import direct_convolution
from repro.conv.winograd import (
    DEFAULT_VARIANT,
    F_2X2_3X3,
    F_4X4_3X3,
    WinogradVariant,
    transform_filters,
    winograd_convolution,
    winograd_mac_count,
    winograd_workspace_bytes,
)

from tests.conftest import make_spec


@pytest.mark.parametrize("variant", [F_2X2_3X3, F_4X4_3X3])
class TestVariantCorrectness:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(),
            dict(pad=0),
            dict(h=7, w=11, pad=1),
            dict(batch=2, h=6, w=6, c=2, filters=3),
        ],
    )
    def test_matches_direct(self, rng, variant, kwargs):
        spec = make_spec(**kwargs)
        x = rng.standard_normal(spec.input_nhwc)
        f = rng.standard_normal(spec.filter_nhwc)
        np.testing.assert_allclose(
            winograd_convolution(spec, x, f, variant),
            direct_convolution(spec, x, f),
            rtol=1e-8,
            atol=1e-8,
        )

    def test_filter_transform_shape(self, rng, variant):
        f = rng.standard_normal((5, 3, 3, 2))
        t = variant.tile_in
        assert transform_filters(f, variant).shape == (t, t, 2, 5)


class TestVariantProperties:
    def test_mac_reductions(self):
        assert F_2X2_3X3.mac_reduction == pytest.approx(2.25)
        assert F_4X4_3X3.mac_reduction == pytest.approx(4.0)

    def test_tile_geometry(self):
        assert F_2X2_3X3.tile_in == 4
        assert F_4X4_3X3.tile_in == 6

    def test_f44_needs_fewer_multiplications(self):
        spec = make_spec(h=16, w=16)
        m22 = winograd_mac_count(spec, F_2X2_3X3)
        m44 = winograd_mac_count(spec, F_4X4_3X3)
        assert m44 < m22

    def test_f44_uses_more_transform_memory_per_tile(self):
        # Per output element, the 6x6 transform of a 4x4 tile is
        # cheaper than the 4x4 transform of a 2x2 tile, but per-tile
        # buffers are larger; both directions are worth pinning down.
        spec = make_spec(h=16, w=16)
        w22 = winograd_workspace_bytes(spec, variant=F_2X2_3X3)
        w44 = winograd_workspace_bytes(spec, variant=F_4X4_3X3)
        assert w44 < w22  # fewer tiles wins at this size

    def test_default_variant_is_f22(self):
        assert DEFAULT_VARIANT is F_2X2_3X3

    def test_variant_shape_validation(self):
        with pytest.raises(ValueError, match="B\\^T"):
            WinogradVariant(
                name="bad",
                tile_out=2,
                filter_size=3,
                bt=np.eye(3),
                g=np.zeros((4, 3)),
                at=np.zeros((2, 4)),
            )

    def test_transform_filter_size_validation(self, rng):
        with pytest.raises(ValueError, match="3x3 filters"):
            transform_filters(rng.standard_normal((1, 5, 5, 1)))

    def test_algebraic_identity(self, rng):
        """A^T [ (G g G^T) . (B^T d B) ] A == conv2d(d, g) for a
        single tile: the defining Winograd identity."""
        for variant in (F_2X2_3X3, F_4X4_3X3):
            t, m = variant.tile_in, variant.tile_out
            d = rng.standard_normal((t, t))
            g = rng.standard_normal((3, 3))
            u = variant.g @ g @ variant.g.T
            v = variant.bt @ d @ variant.bt.T
            y = variant.at @ (u * v) @ variant.at.T
            from scipy.signal import correlate2d

            ref = correlate2d(d, g, mode="valid")
            np.testing.assert_allclose(y, ref, rtol=1e-9, atol=1e-9)
