"""Simulator trace-cache contract: full-options keys, LRU, disk store.

The seed implementation keyed its in-process cache on
``(spec, gpu, kernel, options.max_ctas, options.representative_sm)``
and evicted FIFO.  Two ``SimulationOptions`` objects that differed in
any *other* field (id_mode, lhb_lifetime, granularity, ...) aliased
to one cache slot — a latent correctness hazard the moment any such
field influences trace generation.  These tests pin the fixed
contract: distinct options ⇒ distinct entries, hits refresh recency
(true LRU), and the optional disk store round-trips traces exactly.
"""

import numpy as np
import pytest

from tests.conftest import make_spec
from repro.core.idgen import IDMode
from repro.gpu import simulator
from repro.gpu.config import SimulationOptions
from repro.gpu.simulator import clear_trace_cache, simulate_layer, trace_cache_info
from repro.runtime import DiskCache
from repro.runtime.cachekey import trace_key


@pytest.fixture(autouse=True)
def _fresh_cache(monkeypatch):
    # Trace-count assertions require an exact tier: the analytic CI
    # lane's $REPRO_ENGINE=analytic would skip trace generation.
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    clear_trace_cache()
    simulator.set_trace_store(None)
    yield
    clear_trace_cache()
    simulator.set_trace_store(None)


@pytest.fixture
def count_generation(monkeypatch):
    calls = []
    real = simulator.generate_sm_trace

    def counting(spec, gpu, kernel, options):
        calls.append((spec.name, options))
        return real(spec, gpu, kernel, options)

    monkeypatch.setattr(simulator, "generate_sm_trace", counting)
    return calls


class TestFullOptionsKey:
    def test_options_beyond_cta_fields_do_not_alias(self, count_generation):
        """Regression: the seed cache keyed only on max_ctas /
        representative_sm, so these two options objects shared one
        trace slot.  They must occupy distinct entries."""
        spec = make_spec()
        a = SimulationOptions(max_ctas=2, id_mode=IDMode.CANONICAL)
        b = SimulationOptions(max_ctas=2, id_mode=IDMode.PAPER)
        simulate_layer(spec, options=a)
        simulate_layer(spec, options=b)
        assert len(count_generation) == 2
        assert len(trace_cache_info()["keys"]) == 2

    def test_distinct_lifetime_distinct_entries(self, count_generation):
        spec = make_spec()
        simulate_layer(spec, options=SimulationOptions(max_ctas=2))
        simulate_layer(
            spec, options=SimulationOptions(max_ctas=2, lhb_lifetime=128)
        )
        assert len(count_generation) == 2

    def test_equal_options_hit(self, count_generation):
        spec = make_spec()
        simulate_layer(spec, options=SimulationOptions(max_ctas=2))
        simulate_layer(spec, options=SimulationOptions(max_ctas=2))
        assert len(count_generation) == 1

    def test_disk_key_covers_full_options(self):
        spec = make_spec()
        gpu = simulator.TITAN_V
        kernel = simulator.BASELINE_KERNEL
        a = trace_key(spec, gpu, kernel, SimulationOptions(max_ctas=2))
        b = trace_key(
            spec, gpu, kernel,
            SimulationOptions(max_ctas=2, id_mode=IDMode.PAPER),
        )
        assert a != b


class TestLRUEviction:
    def test_hit_refreshes_recency(self, count_generation, monkeypatch):
        monkeypatch.setattr(simulator, "_TRACE_CACHE_LIMIT", 2)
        opts = SimulationOptions(max_ctas=1)
        s1, s2, s3 = (make_spec(name=f"lru{i}", h=6 + i) for i in range(3))
        simulate_layer(s1, options=opts)
        simulate_layer(s2, options=opts)
        simulate_layer(s1, options=opts)  # refresh s1
        simulate_layer(s3, options=opts)  # evicts s2, not s1
        n = len(count_generation)
        simulate_layer(s1, options=opts)  # still resident
        assert len(count_generation) == n
        simulate_layer(s2, options=opts)  # was evicted -> regenerates
        assert len(count_generation) == n + 1

    def test_limit_respected(self, monkeypatch):
        monkeypatch.setattr(simulator, "_TRACE_CACHE_LIMIT", 2)
        opts = SimulationOptions(max_ctas=1)
        for i in range(4):
            simulate_layer(make_spec(name=f"cap{i}", h=6 + i), options=opts)
        assert trace_cache_info()["size"] <= 2


class TestDiskBackedTraces:
    def test_round_trip_skips_regeneration(self, tmp_path, count_generation):
        store = DiskCache(tmp_path / "cache")
        simulator.set_trace_store(store)
        spec = make_spec()
        opts = SimulationOptions(max_ctas=2)
        first = simulate_layer(spec, options=opts)
        assert len(count_generation) == 1
        clear_trace_cache()  # drop memory; disk must serve
        second = simulate_layer(spec, options=opts)
        assert len(count_generation) == 1
        assert second.stats == first.stats
        assert second.cycles == first.cycles

    def test_persisted_trace_identical(self, tmp_path):
        store = DiskCache(tmp_path / "cache")
        simulator.set_trace_store(store)
        spec = make_spec()
        opts = SimulationOptions(max_ctas=2)
        trace = simulator._get_trace(
            spec, simulator.TITAN_V, simulator.BASELINE_KERNEL, opts
        )
        key = trace_key(
            spec, simulator.TITAN_V, simulator.BASELINE_KERNEL, opts
        )
        loaded = store.get_trace(key)
        np.testing.assert_array_equal(loaded.kind, trace.kind)
        np.testing.assert_array_equal(loaded.address, trace.address)
        np.testing.assert_array_equal(loaded.warp, trace.warp)
        np.testing.assert_array_equal(loaded.instr, trace.instr)
        assert loaded.grid_ctas == trace.grid_ctas
        assert loaded.lda == trace.lda

    def test_corrupt_artifact_degrades_to_miss(self, tmp_path, count_generation):
        store = DiskCache(tmp_path / "cache")
        simulator.set_trace_store(store)
        spec = make_spec()
        opts = SimulationOptions(max_ctas=1)
        simulate_layer(spec, options=opts)
        # Truncate every persisted trace form (npz, the sidecar pair,
        # any legacy pickle), drop memory, re-simulate.
        corrupted = 0
        for pattern in ("*.npz", "*.events.npy", "*.pkl"):
            for p in (tmp_path / "cache" / "traces").rglob(pattern):
                p.write_bytes(b"\x80corrupt")
                corrupted += 1
        assert corrupted, "no persisted trace artifacts found"
        clear_trace_cache()
        simulate_layer(spec, options=opts)
        assert len(count_generation) == 2
