"""End-to-end layer simulation: modes, scaling, caching, improvements."""

import pytest

from repro.gpu.config import KernelConfig, SimulationOptions
from repro.gpu.simulator import (
    EliminationMode,
    clear_trace_cache,
    make_lhb,
    performance_improvement,
    simulate_layer,
    simulate_pair,
)

from tests.conftest import make_spec

KERNEL = KernelConfig(warp_runahead=8)


@pytest.fixture(scope="module")
def spec():
    # C=16 -> intra-patch duplicates at k-distance 1: detectable.
    return make_spec(batch=2, h=12, w=12, c=16, filters=16)


@pytest.fixture(autouse=True)
def _fresh_cache(monkeypatch):
    # Event/fast tier internals are asserted here; pin the engine so
    # the analytic CI lane cannot reroute them.
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    clear_trace_cache()
    yield
    clear_trace_cache()


class TestSimulateLayer:
    def test_baseline_ignores_lhb_args(self, spec):
        r = simulate_layer(spec, EliminationMode.BASELINE, kernel=KERNEL)
        assert r.lhb_entries is None
        assert r.stats.lhb_lookups == 0

    def test_duplo_records_configuration(self, spec):
        r = simulate_layer(spec, lhb_entries=512, lhb_assoc=2, kernel=KERNEL)
        assert (r.lhb_entries, r.lhb_assoc) == (512, 2)

    def test_cycles_positive_and_time_consistent(self, spec):
        r = simulate_layer(spec, kernel=KERNEL)
        assert r.cycles > 0
        assert r.time_ms == pytest.approx(r.cycles / 1.2e9 * 1e3)

    def test_components_recorded(self, spec):
        r = simulate_layer(spec, kernel=KERNEL)
        assert set(r.stats.cycle_components) == {
            "compute",
            "ldst",
            "l2",
            "dram",
            "exposed_latency",
        }

    def test_improvement_positive_for_duplicated_layer(self, spec):
        assert performance_improvement(spec, kernel=KERNEL) > 0

    def test_oracle_at_least_finite(self, spec):
        base, d1024 = simulate_pair(spec, kernel=KERNEL)
        oracle = simulate_layer(spec, lhb_entries=None, kernel=KERNEL)
        assert oracle.stats.lhb_hit_rate >= d1024.stats.lhb_hit_rate
        assert oracle.speedup_over(base) >= d1024.speedup_over(base) - 1e-9


class TestScaling:
    def test_cta_cap_extrapolates_counts(self):
        spec = make_spec(batch=8, h=16, w=16, c=16, filters=16)
        full = simulate_layer(spec, EliminationMode.BASELINE, kernel=KERNEL)
        capped = simulate_layer(
            spec,
            EliminationMode.BASELINE,
            kernel=KERNEL,
            options=SimulationOptions(max_ctas=1),
        )
        ratio = capped.stats.loads_total / full.stats.loads_total
        assert ratio == pytest.approx(1.0, rel=0.05)

    def test_full_stats_cover_whole_grid(self, spec):
        r = simulate_layer(spec, EliminationMode.BASELINE, kernel=KERNEL)
        # Full-layer load count must match the layer's tiling, not one
        # SM's share: every 16x16x16 tile triple implies A fragments.
        assert r.stats.loads_total > 0
        assert r.stats.mma_ops > 0


class TestTraceCache:
    def test_cache_reuses_trace_across_modes(self, spec):
        import repro.gpu.simulator as sim

        simulate_layer(spec, EliminationMode.BASELINE, kernel=KERNEL)
        n = len(sim._trace_cache)
        simulate_layer(spec, EliminationMode.DUPLO, kernel=KERNEL)
        assert len(sim._trace_cache) == n

    def test_different_options_different_trace(self, spec):
        import repro.gpu.simulator as sim

        simulate_layer(spec, kernel=KERNEL)
        simulate_layer(
            spec, kernel=KERNEL, options=SimulationOptions(max_ctas=1)
        )
        assert len(sim._trace_cache) == 2


class TestMakeLhb:
    def test_oracle(self):
        assert make_lhb(None).is_oracle

    def test_parameters_propagate(self):
        lhb = make_lhb(256, assoc=4, lifetime=99, hashed_index=False)
        assert lhb.num_entries == 256
        assert lhb.assoc == 4
        assert lhb.lifetime == 99
        assert not lhb.hashed_index


class TestModesDiffer:
    def test_wir_vs_duplo_vs_baseline(self, spec):
        base = simulate_layer(spec, EliminationMode.BASELINE, kernel=KERNEL)
        wir = simulate_layer(spec, EliminationMode.WIR, kernel=KERNEL)
        duplo = simulate_layer(spec, EliminationMode.DUPLO, kernel=KERNEL)
        assert base.stats.lhb_hits == 0
        assert wir.stats.lhb_hits > 0
        assert duplo.stats.lhb_hits > 0
        # Duplo eliminates at least the same workspace traffic as the
        # same-address-only filter does on workspace loads.
        assert duplo.cycles <= base.cycles


class TestConvenienceApi:
    def test_performance_improvement_matches_pair(self, spec):
        from repro.gpu.simulator import performance_improvement

        base, duplo = simulate_pair(spec, kernel=KERNEL)
        imp = performance_improvement(spec, kernel=KERNEL)
        assert imp == pytest.approx(duplo.speedup_over(base) - 1)

    def test_top_level_reexport(self, spec):
        import repro

        r = repro.simulate_layer(spec, EliminationMode.BASELINE, kernel=KERNEL)
        assert r.cycles > 0

    def test_trace_cache_eviction_limit(self):
        import repro.gpu.simulator as sim

        for i in range(sim._TRACE_CACHE_LIMIT + 5):
            s = make_spec(name=f"evict{i}", batch=1, h=6 + (i % 3), w=6,
                          c=4, filters=4)
            simulate_layer(s, EliminationMode.BASELINE, kernel=KERNEL,
                           options=SimulationOptions(max_ctas=1))
        assert len(sim._trace_cache) <= sim._TRACE_CACHE_LIMIT
