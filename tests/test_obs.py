"""The observability layer: spans, metrics, manifests, CLI wiring."""

import concurrent.futures
import json
import multiprocessing
import threading

import pytest

from repro import obs
from repro.cli import main
from repro.conv.workloads import get_layer
from repro.gpu.config import SimulationOptions
from repro.gpu.simulator import EliminationMode, simulate_layer


@pytest.fixture(autouse=True)
def _obs_clean(monkeypatch):
    """Every test starts and ends with observability off and empty,
    and with no engine override (counter assertions here assume the
    exact tiers answer)."""
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------


class TestSpans:
    def test_nesting(self):
        obs.enable()
        with obs.span("outer", kind="root"):
            with obs.span("inner.a"):
                pass
            with obs.span("inner.b", x=2):
                with obs.span("leaf"):
                    pass
        tree = obs.tree()
        assert [s["name"] for s in tree["spans"]] == ["outer"]
        outer = tree["spans"][0]
        assert outer["attrs"] == {"kind": "root"}
        assert [c["name"] for c in outer["children"]] == [
            "inner.a", "inner.b",
        ]
        leaf = outer["children"][1]["children"][0]
        assert leaf["name"] == "leaf"
        assert leaf["duration_s"] >= 0.0
        # Children never outlast their parent.
        assert outer["duration_s"] >= leaf["duration_s"]

    def test_set_attrs_on_open_span(self):
        obs.enable()
        with obs.span("phase") as sp:
            sp.set(rows=7)
        assert obs.tree()["spans"][0]["attrs"] == {"rows": 7}

    def test_phase_timings_aggregate(self):
        obs.enable()
        for _ in range(3):
            with obs.span("repeated"):
                pass
        timings = obs.phase_timings()
        assert timings["repeated"]["count"] == 3
        assert timings["repeated"]["total_s"] >= 0.0

    def test_serialization_round_trip(self):
        obs.enable()
        with obs.span("root", layer="yolo/C2"):
            with obs.span("child"):
                pass
        exported = obs.export_spans()
        obs.reset()
        obs.merge_spans(exported, under="executor.worker", pid=123)
        spans = obs.tree()["spans"]
        assert spans[0]["name"] == "executor.worker"
        assert spans[0]["attrs"] == {"pid": 123}
        assert spans[0]["children"][0]["attrs"] == {"layer": "yolo/C2"}

    def test_threads_record_independently(self):
        obs.enable()

        def record(i):
            with obs.span(f"thread.{i}"):
                pass

        threads = [
            threading.Thread(target=record, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        names = sorted(s["name"] for s in obs.tree()["spans"])
        assert names == sorted(f"thread.{i}" for i in range(8))


class TestDisabledMode:
    def test_span_is_shared_noop(self):
        assert obs.span("anything", x=1) is obs.NULL_SPAN
        with obs.span("quiet"):
            pass
        assert obs.tree() == {"spans": []}

    def test_metrics_are_dropped(self):
        obs.add("some.counter", 5)
        obs.gauge("some.gauge", 1.5)
        assert obs.snapshot() == {"counters": {}, "gauges": {}}

    def test_simulation_emits_nothing(self):
        simulate_layer(
            get_layer("resnet", "C8"),
            options=SimulationOptions(max_ctas=1),
        )
        assert obs.snapshot() == {"counters": {}, "gauges": {}}
        assert obs.tree() == {"spans": []}


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------


class TestMetrics:
    def test_counters_and_gauges(self):
        obs.enable()
        obs.add("hits")
        obs.add("hits", 4)
        obs.gauge("util", 0.5)
        obs.gauge("util", 0.75)
        snap = obs.snapshot()
        assert snap["counters"]["hits"] == 5
        assert snap["gauges"]["util"] == 0.75

    def test_concurrent_thread_increments(self):
        obs.enable()
        per_thread, threads_n = 2000, 8

        def spin():
            for _ in range(per_thread):
                obs.add("race.hits")

        threads = [threading.Thread(target=spin) for _ in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert (
            obs.snapshot()["counters"]["race.hits"]
            == per_thread * threads_n
        )

    def test_merge_adds_counters_overwrites_gauges(self):
        obs.enable()
        obs.add("c", 1)
        obs.gauge("g", 0.1)
        obs.merge_metrics(
            {"counters": {"c": 2, "new": 7}, "gauges": {"g": 0.9}}
        )
        snap = obs.snapshot()
        assert snap["counters"] == {"c": 3, "new": 7}
        assert snap["gauges"] == {"g": 0.9}


def _pool_worker(n: int):
    """ProcessPool body: record n increments, ship the state back."""
    obs.enable()
    obs.reset()
    with obs.span("worker.batch", n=n):
        for _ in range(n):
            obs.add("pool.hits")
    obs.add("pool.batches")
    return obs.export_state()


class TestProcessMerge:
    def test_process_pool_counters_merge(self):
        """Increments from ProcessPoolExecutor workers sum exactly."""
        obs.enable()
        batches = [100, 250, 33, 17]
        ctx = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=2, mp_context=ctx
        ) as pool:
            for payload in pool.map(_pool_worker, batches):
                obs.merge_state(payload)
        snap = obs.snapshot()
        assert snap["counters"]["pool.hits"] == sum(batches)
        assert snap["counters"]["pool.batches"] == len(batches)
        workers = [
            s for s in obs.tree()["spans"] if s["name"] == "executor.worker"
        ]
        assert len(workers) == len(batches)
        assert {
            w["children"][0]["attrs"]["n"] for w in workers
        } == set(batches)

    def test_sweep_executor_merges_worker_chunks(self, tmp_path):
        """SweepExecutor ships per-chunk spans + metrics across forks."""
        from repro.gpu.ldst import EliminationMode
        from repro.runtime import DiskCache, SimPoint, SweepExecutor

        obs.enable()
        options = SimulationOptions(max_ctas=1)
        chunks = [
            [SimPoint(get_layer("resnet", "C8"), options=options)],
            [SimPoint(get_layer("gan", "C4"), options=options)],
            [
                SimPoint(
                    get_layer("resnet", "C8"),
                    mode=EliminationMode.BASELINE,
                    options=options,
                )
            ],
        ]
        # Force the process pool: the adaptive cutover would price
        # this tiny sweep as inline (the merge path is the subject).
        executor = SweepExecutor(
            jobs=2, cache=DiskCache(tmp_path / "c"),
            backend="processes", cutover=0,
        )
        executor.run_chunks(chunks)
        snap = obs.snapshot()
        assert snap["counters"]["executor.chunks"] == 3
        assert snap["counters"]["executor.points"] == 3
        assert snap["counters"]["sim.layers_simulated"] == 3
        assert 0.0 < snap["gauges"]["executor.worker_utilization"] <= 1.0
        chunk_spans = [
            c
            for s in obs.tree()["spans"]
            if s["name"] == "executor.worker"
            for c in s["children"]
            if c["name"] == "executor.chunk"
        ]
        assert len(chunk_spans) == 3

    def test_warm_rerun_skips_workers_entirely(self, tmp_path):
        from repro.runtime import DiskCache, SimPoint, SweepExecutor

        options = SimulationOptions(max_ctas=1)
        points = [SimPoint(get_layer("resnet", "C8"), options=options)]
        cache = DiskCache(tmp_path / "c")
        SweepExecutor(jobs=1, cache=cache).run(points)
        obs.enable()
        obs.reset()
        SweepExecutor(jobs=2, cache=cache).run(points)
        snap = obs.snapshot()
        assert snap["counters"]["executor.prefilter_hits"] == 1
        assert "sim.layers_simulated" not in snap["counters"]


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------


class TestManifest:
    def test_round_trips_through_json(self, tmp_path):
        obs.enable()
        with obs.span("phase.a"):
            obs.add("m.hits", 3)
        manifest = obs.collect_manifest(
            "unit-test",
            argv=["repro", "simulate"],
            options=SimulationOptions(max_ctas=2),
        )
        path = tmp_path / "manifest.json"
        manifest.write(str(path))
        restored = obs.RunManifest.from_json(path.read_text())
        assert restored.command == "unit-test"
        assert restored.argv == ["repro", "simulate"]
        assert restored.schema_version == manifest.schema_version
        assert restored.options["max_ctas"] == 2
        assert restored.metrics["counters"]["m.hits"] == 3
        assert "phase.a" in restored.phases
        assert restored.host["python"]
        assert restored.host["numpy"]
        # Re-serializing the restored manifest is a fixed point.
        assert restored.to_json() == manifest.to_json()

    def test_captures_git_and_rss(self):
        manifest = obs.collect_manifest("unit-test", argv=[])
        assert manifest.git.get("sha", "").strip() != ""
        assert manifest.peak_rss_bytes is None or (
            manifest.peak_rss_bytes > 1024 * 1024
        )

    def test_embeds_cache_stats(self, tmp_path):
        from repro.runtime import DiskCache

        cache = DiskCache(tmp_path / "c")
        cache.put_result("ab" * 32, {"x": 1})
        manifest = obs.collect_manifest("unit-test", argv=[], cache=cache)
        assert manifest.cache["result_files"] == 1


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------


class TestCliWiring:
    def test_metrics_out_matches_layer_stats(self, tmp_path, capsys):
        """Acceptance: ``--metrics-out`` LHB counters == LayerStats."""
        metrics_path = tmp_path / "metrics.json"
        assert main(
            [
                "simulate", "resnet", "C8", "--max-ctas", "1",
                "--metrics-out", str(metrics_path),
            ]
        ) == 0
        capsys.readouterr()
        payload = json.loads(metrics_path.read_text())
        assert payload["schema_version"] == 1
        assert payload["command"] == "simulate"
        counters = payload["counters"]

        duplo = simulate_layer(
            get_layer("resnet", "C8"),
            EliminationMode.DUPLO,
            lhb_entries=1024,
            lhb_assoc=1,
            options=SimulationOptions(max_ctas=1),
        )
        assert counters["sim.lhb.hits"] == duplo.stats.lhb_hits
        assert counters["sim.lhb.lookups"] == duplo.stats.lhb_lookups
        assert counters["sim.lhb.renames"] == duplo.stats.lhb_hits
        assert counters["sim.layers_simulated"] == 2  # baseline + duplo
        assert counters["sim.events_replayed"] > 0

    def test_trace_and_manifest_written(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        assert main(
            [
                "simulate", "resnet", "C8", "--max-ctas", "1",
                "--trace-out", str(trace_path),
                "--metrics-out", str(metrics_path),
            ]
        ) == 0
        capsys.readouterr()
        trace = json.loads(trace_path.read_text())
        assert trace["spans"][0]["name"] == "cli"
        names = {c["name"] for c in trace["spans"][0]["children"]}
        assert "sim.layer" in names
        manifest = obs.RunManifest.from_json(
            (tmp_path / "metrics.manifest.json").read_text()
        )
        assert manifest.command == "simulate"
        assert manifest.options is not None
        assert manifest.phases  # cli + sim.* at minimum

    def test_manifest_out_alone(self, tmp_path, capsys):
        manifest_path = tmp_path / "run.json"
        assert main(
            [
                "layers", "--manifest-out", str(manifest_path),
            ]
        ) == 0
        capsys.readouterr()
        manifest = obs.RunManifest.from_json(manifest_path.read_text())
        assert manifest.command == "layers"

    def test_obs_disabled_after_main(self, tmp_path, capsys):
        assert main(
            [
                "layers", "--manifest-out", str(tmp_path / "m.json"),
            ]
        ) == 0
        capsys.readouterr()
        assert not obs.enabled()

    def test_log_level_flag(self, tmp_path, capsys):
        import logging

        assert main(["layers", "--log-level", "debug"]) == 0
        capsys.readouterr()
        logger = logging.getLogger("repro")
        assert logger.level == logging.DEBUG
        for handler in list(logger.handlers):
            logger.removeHandler(handler)
        logger.setLevel(logging.NOTSET)

    def test_bad_log_level_rejected(self):
        with pytest.raises(SystemExit):
            main(["layers", "--log-level", "loud"])


class TestCacheStatsRegression:
    def test_stats_on_missing_cache_dir(self, tmp_path, capsys):
        """``repro cache stats`` on a never-created cache reports empty."""
        missing = tmp_path / "never" / "created"
        assert main(["cache", "stats", "--dir", str(missing)]) == 0
        out = capsys.readouterr().out
        assert "trace files:   0" in out
        assert "result files:  0" in out
        assert "disk bytes:    0" in out
        assert "not created yet" in out

    def test_clear_on_missing_cache_dir(self, tmp_path, capsys):
        missing = tmp_path / "never" / "created"
        assert main(["cache", "clear", "--dir", str(missing)]) == 0
        assert "removed 0" in capsys.readouterr().out

    def test_stats_default_dir_missing(
        self, tmp_path, monkeypatch, capsys
    ):
        """The default results/cache location may not exist either."""
        monkeypatch.chdir(tmp_path)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["cache", "stats"]) == 0
        assert "trace files:   0" in capsys.readouterr().out
