"""Claims catalog consistency with the experiment harness."""

import pytest

from repro.analysis import experiments as exp_mod
from repro.analysis.claims import CLAIMS, claims_by_key, measured_claims
from repro.conv.workloads import get_layer
from repro.gpu.config import SimulationOptions


class TestCatalogShape:
    def test_keys_unique(self):
        keys = [c.key for c in CLAIMS]
        assert len(set(keys)) == len(keys)

    def test_every_claim_cites_a_section(self):
        assert all(c.section for c in CLAIMS)

    def test_measured_claims_reference_real_experiments(self):
        for claim in measured_claims():
            name, _metric = claim.measured_by
            assert hasattr(exp_mod, name), claim.key

    def test_reasonable_coverage(self):
        """Most quantitative claims are directly measured."""
        assert len(measured_claims()) >= 14
        assert len(CLAIMS) >= 20


class TestPaperReferenceConsistency:
    """The experiment harness's ``paper`` dicts and the claims catalog
    must quote the same numbers (single source of truth check)."""

    @pytest.mark.parametrize(
        "name,builder",
        [
            ("figure2", lambda: exp_mod.figure2([get_layer("yolo", "C2")])),
            ("figure3", lambda: exp_mod.figure3([get_layer("yolo", "C2")])),
        ],
    )
    def test_static_experiments_match(self, name, builder):
        exp = builder()
        catalog = claims_by_key()
        for claim in measured_claims():
            exp_name, metric = claim.measured_by
            if exp_name != name:
                continue
            assert exp.paper[metric] == pytest.approx(claim.value)

    def test_metric_names_exist_in_experiment_paper_dicts(self):
        """Cheap structural check against the harness's declared paper
        references (no simulation needed: the dicts are static)."""
        static = {
            "figure9": {"gmean_oracle", "gmean_1024-entry"},
            "figure10": {"hit_oracle", "theoretical_limit"},
            "figure11": {
                "mean_dram_traffic_reduction",
                "mean_l1_service_reduction",
                "mean_l2_service_reduction",
            },
            "figure12": {"eight_way_advantage"},
            "figure13": {"batch32_degradation"},
            "figure14": {
                "gmean_inference_reduction",
                "gmean_training_reduction",
            },
            "energy_area": {"on_chip_energy_reduction", "area_overhead"},
            "figure2": {
                "gmean_gemm",
                "gmean_gemm_tc",
                "gmean_winograd",
                "gmean_fft",
            },
            "figure3": {
                "mean_gemm",
                "mean_gemm_tc",
                "mean_winograd",
                "mean_fft",
            },
        }
        for claim in measured_claims():
            name, metric = claim.measured_by
            assert metric in static.get(name, set()), claim.key
