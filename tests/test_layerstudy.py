"""Layer dossiers (analysis.layerstudy) and the inspect CLI."""

import pytest

from repro.analysis.layerstudy import study_layer
from repro.cli import main
from repro.conv.workloads import get_layer
from repro.gpu.config import SimulationOptions

from tests.conftest import make_spec

OPTIONS = SimulationOptions(max_ctas=2)


@pytest.fixture(scope="module")
def c2_dossier():
    return study_layer(get_layer("resnet", "C2"), options=OPTIONS)


class TestDossier:
    def test_summary_keys(self, c2_dossier):
        summary = c2_dossier.summary()
        assert {
            "duplication_factor",
            "lhb_hit_rate",
            "improvement",
            "dram_read_reduction",
            "on_chip_energy_reduction",
        } <= set(summary)

    def test_c2_is_sweet_spot(self, c2_dossier):
        assert "sweet spot" in c2_dossier.verdict
        assert c2_dossier.improvement > 0.1

    def test_share_decomposition_consistent(self, c2_dossier):
        s = c2_dossier.summary()
        assert (
            s["intra_patch_share"] + s["inter_patch_share"]
            <= s["duplicate_fraction"] + 1e-9
        )

    def test_low_duplication_verdict(self):
        dossier = study_layer(
            make_spec(name="k1", kh=1, kw=1, pad=0, c=16, filters=16),
            options=OPTIONS,
        )
        assert "little duplication" in dossier.verdict
        assert dossier.census.duplicates == 0

    def test_oracle_entries(self):
        dossier = study_layer(
            get_layer("resnet", "C8"), lhb_entries=None, options=OPTIONS
        )
        assert dossier.duplo.stats.lhb_hit_rate <= (
            dossier.duplo.stats.theoretical_hit_limit + 1e-9
        )


class TestInspectCli:
    def test_inspect_command(self, capsys):
        assert main(["inspect", "resnet", "C8", "--max-ctas", "1"]) == 0
        out = capsys.readouterr().out
        assert "verdict:" in out
        assert "lhb_hit_rate" in out
