"""The query service: schema, coalescing, eviction, jobs, HTTP.

The two load-bearing contracts:

1. **Bit-identity** — a served payload equals the payload built from a
   direct :func:`~repro.runtime.executor.simulate_point` call, field
   for field, after the JSON round-trip.
2. **Coalescing** — N concurrent identical cold queries trigger
   exactly one simulation (``serve.simulations == 1``,
   ``serve.coalesced == N-1``), and the analytic tier never shares a
   slot with the exact tiers even though their cache keys collide by
   design.

Eviction hygiene (the byte cap the service enforces on its store) is
pinned here too: the store may never exceed ``max_bytes`` after any
put, under a randomized put sequence, and reads refresh recency.
"""

import dataclasses
import json
import random
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.gpu.config import ARCHS
from repro.gpu.simulator import clear_trace_cache
from repro.runtime import DiskCache
from repro.runtime.executor import simulate_point
from repro.serve import (
    QueryService,
    SchemaError,
    ServiceConfig,
    make_server,
    parse_query,
    result_payload,
)
from repro.serve.jobs import JobQueue
from repro.serve.schema import Query, query_point
from repro.serve.service import _LatencyHistogram

BODY = {"network": "yolo", "layer": "C2", "max_ctas": 1}


@pytest.fixture(autouse=True)
def _fresh():
    obs.disable()
    obs.reset()
    clear_trace_cache()
    yield
    obs.disable()
    obs.reset()
    clear_trace_cache()


@pytest.fixture
def service(tmp_path):
    svc = QueryService(ServiceConfig(cache_dir=str(tmp_path / "cache")))
    yield svc
    svc.close()


def _reference(body):
    """The payload the bit-identity contract demands, JSON round-tripped."""
    query = parse_query(body)
    local = result_payload(query, simulate_point(query_point(query)))
    return json.loads(json.dumps(local))


# ----------------------------------------------------------------------
# Schema
# ----------------------------------------------------------------------

@pytest.mark.parametrize("body,fragment", [
    ([1, 2], "JSON object"),
    ({}, "'network'"),
    ({"network": "vgg", "layer": "C1"}, "'network'"),
    ({"network": "yolo"}, "'layer'"),
    ({"network": "yolo", "layer": "nope"}, "no layer"),
    (dict(BODY, mode="magic"), "'mode'"),
    (dict(BODY, lhb_entries="big"), "'lhb_entries'"),
    (dict(BODY, lhb_entries=True), "'lhb_entries'"),
    (dict(BODY, lhb_assoc=0), "'lhb_assoc'"),
    (dict(BODY, max_ctas=0), "'max_ctas'"),
    (dict(BODY, engine="warp"), "'engine'"),
    (dict(BODY, fast_path="maybe"), "'fast_path'"),
    (dict(BODY, arch="kepler"), "'arch'"),
    (dict(BODY, arch=1), "'arch'"),
    (dict(BODY, frobnicate=1), "unknown field"),
])
def test_schema_rejects(body, fragment):
    with pytest.raises(SchemaError, match=fragment):
        parse_query(body)


def test_schema_defaults_and_oracle_normalisation():
    q = parse_query({"network": "yolo", "layer": "C2"})
    assert q == Query(network="yolo", layer="C2")
    # 0 and null both mean the paper's oracle (unbounded) buffer.
    assert parse_query(dict(BODY, lhb_entries=0)).lhb_entries is None
    assert parse_query(dict(BODY, lhb_entries=None)).lhb_entries is None


def test_query_point_round_trip():
    q = parse_query(dict(BODY, mode="baseline", engine="fast"))
    p = query_point(q)
    assert p.spec.qualified_name == "yolo/C2"
    assert p.mode.value == "baseline"
    assert p.options.engine == "fast"
    assert p.options.max_ctas == 1


def test_arch_selects_preset_machine():
    q = parse_query(dict(BODY, arch="ampere-int8"))
    p = query_point(q)
    assert p.gpu == ARCHS["ampere-int8"].gpu
    assert p.kernel == ARCHS["ampere-int8"].kernel
    # Default body simulates the Volta preset.
    assert query_point(parse_query(BODY)).gpu.name == "volta"


def test_attention_network_servable():
    q = parse_query({"network": "attention", "layer": "QK", "max_ctas": 1})
    assert query_point(q).spec.qualified_name == "attention/QK"


# ----------------------------------------------------------------------
# Service: bit-identity and coalescing
# ----------------------------------------------------------------------

def test_served_payload_bit_identical(service):
    for body in (
        BODY,
        dict(BODY, engine="analytic"),
        dict(BODY, mode="baseline"),
        dict(BODY, lhb_entries=None, lhb_assoc=4),
        dict(BODY, arch="turing"),
    ):
        served = json.loads(json.dumps(service.query(body)))
        assert served == _reference(body)


def test_arch_echoed_verbatim_and_changes_the_answer(service):
    volta = service.query(BODY)
    turing = service.query(dict(BODY, arch="turing"))
    assert volta["query"]["arch"] == "volta"
    assert turing["query"]["arch"] == "turing"
    # Different fragment geometry -> different measured traffic.
    assert turing["stats"] != volta["stats"]


def test_query_validation_errors_counted(service):
    with pytest.raises(SchemaError):
        service.query({"network": "yolo"})
    counters = service.counters()
    assert counters["serve.errors"] == 1
    assert counters["serve.requests"] == 1


def test_concurrent_identical_cold_queries_coalesce(service, monkeypatch):
    """N identical cold queries -> exactly one simulation."""
    import repro.serve.service as service_mod

    n = 6
    gate = threading.Event()
    calls = []
    real = simulate_point

    def gated(point, cache=None, key=None, streaming=False):
        calls.append(point)
        assert gate.wait(30), "test gate never opened"
        return real(point, cache, key, streaming=streaming)

    monkeypatch.setattr(service_mod, "simulate_point", gated)
    payloads = [None] * n
    errors = []

    def client(i):
        try:
            payloads[i] = service.query(BODY)
        except Exception as exc:  # pragma: no cover - fails the test
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(n)
    ]
    for t in threads:
        t.start()
    # Open the gate only after every follower has parked on the
    # leader's slot, so the count below is deterministic.
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if service.counters()["serve.coalesced"] == n - 1:
            break
        time.sleep(0.005)
    gate.set()
    for t in threads:
        t.join(30)
    assert not errors
    counters = service.counters()
    assert len(calls) == 1
    assert counters["serve.simulations"] == 1
    assert counters["serve.coalesced"] == n - 1
    assert counters["serve.requests"] == n
    assert all(p == payloads[0] for p in payloads)


def test_analytic_and_exact_never_share_a_slot():
    exact = query_point(parse_query(dict(BODY, engine="fast")))
    analytic = query_point(parse_query(dict(BODY, engine="analytic")))
    # The result cache key normalises the engine away by design...
    assert exact.cache_key() == analytic.cache_key()
    # ...so the coalescing key must re-introduce the tier.
    assert QueryService._coalesce_key(exact) != (
        QueryService._coalesce_key(analytic)
    )


def test_archs_never_share_a_slot():
    """Unlike the engine tiers, two archs differ in *result*: both the
    result cache key and the coalescing key must separate them — for
    every preset pair, and regardless of tier."""
    points = {
        name: query_point(parse_query(dict(BODY, arch=name)))
        for name in ARCHS
    }
    cache_keys = {p.cache_key() for p in points.values()}
    coalesce_keys = {QueryService._coalesce_key(p) for p in points.values()}
    assert len(cache_keys) == len(ARCHS)
    assert len(coalesce_keys) == len(ARCHS)
    # The analytic tier of one arch must not collide with the exact
    # tier of another.
    analytic = query_point(
        parse_query(dict(BODY, arch="ampere", engine="analytic"))
    )
    assert QueryService._coalesce_key(analytic) != (
        QueryService._coalesce_key(points["volta"])
    )


def test_leader_failure_propagates_to_followers(service, monkeypatch):
    import repro.serve.service as service_mod

    gate = threading.Event()

    def boom(point, cache=None, key=None, streaming=False):
        assert gate.wait(30)
        raise RuntimeError("engine exploded")

    monkeypatch.setattr(service_mod, "simulate_point", boom)
    errors = []

    def client():
        try:
            service.query(BODY)
        except Exception as exc:
            errors.append(exc)

    threads = [threading.Thread(target=client) for _ in range(3)]
    for t in threads:
        t.start()
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if service.counters()["serve.coalesced"] == 2:
            break
        time.sleep(0.005)
    gate.set()
    for t in threads:
        t.join(30)
    assert len(errors) == 3
    assert all("engine exploded" in str(e) for e in errors)
    assert service.counters()["serve.errors"] == 3


# ----------------------------------------------------------------------
# Store eviction: the cap the service enforces
# ----------------------------------------------------------------------

def _family_bytes(cache):
    total = 0
    for family in ("traces", "results"):
        base = cache.root / family
        if base.is_dir():
            total += sum(
                f.stat().st_size for f in base.rglob("*") if f.is_file()
            )
    return total


def test_store_never_exceeds_cap_under_random_puts(tmp_path):
    cap = 64 * 1024
    cache = DiskCache(tmp_path / "capped", max_bytes=cap)
    rng = random.Random(0xD0B10)
    for i in range(60):
        payload = rng.randbytes(rng.randrange(1024, 16 * 1024))
        cache.put_result(f"{i:064x}", payload)
        assert _family_bytes(cache) <= cap, f"cap violated after put {i}"
    stats = cache.stats()
    assert stats.evictions > 0
    assert stats.result_files > 0


def test_store_admits_oversized_artifact_but_reclaims_it(tmp_path):
    cache = DiskCache(tmp_path / "tiny", max_bytes=4096)
    cache.put_result("ff" * 32, bytes(64 * 1024))
    # The caller's put succeeded, but the store fits its cap again.
    assert _family_bytes(cache) <= 4096
    assert cache.stats().evictions >= 1


def test_store_eviction_is_lru_and_reads_touch(tmp_path):
    import os

    cache = DiskCache(tmp_path / "lru", max_bytes=40 * 1024)
    keys = [f"{i:02d}" * 32 for i in range(3)]
    for i, key in enumerate(keys[:2]):
        cache.put_result(key, bytes(15 * 1024))
        # Backdate so recency order is unambiguous: keys[0] oldest.
        path = cache._path("results", key)
        os.utime(path, (1_000_000 + i, 1_000_000 + i))
    # Reading keys[0] refreshes it, leaving keys[1] as the LRU victim.
    assert cache.get_result(keys[0]) is not None
    cache.put_result(keys[2], bytes(15 * 1024))
    assert cache.has_result(keys[0])
    assert not cache.has_result(keys[1])
    assert cache.has_result(keys[2])


def test_service_enforces_cap_on_its_store(tmp_path):
    svc = QueryService(
        ServiceConfig(
            cache_dir=str(tmp_path / "svc"), store_max_bytes=32 * 1024
        )
    )
    try:
        for entries in (64, 128, 256, 512, 1024, None):
            svc.query(dict(BODY, lhb_entries=entries))
            assert _family_bytes(svc.cache) <= 32 * 1024
    finally:
        svc.close()


# ----------------------------------------------------------------------
# Jobs
# ----------------------------------------------------------------------

def _wait_job(jobs, job_id, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = jobs.status(job_id)
        if status["state"] in ("done", "error"):
            return status
        time.sleep(0.01)
    raise AssertionError(f"job {job_id} never finished")


def test_sweep_job_results_match_direct(service):
    bodies = [dict(BODY, lhb_entries=e) for e in (64, 256, None)]
    job_id = service.submit_sweep({"queries": bodies})
    status = _wait_job(service.jobs, job_id)
    assert status["state"] == "done"
    assert status["done"] == status["total"] == len(bodies)
    for body, payload in zip(bodies, status["results"]):
        assert json.loads(json.dumps(payload)) == _reference(body)


def test_sweep_validation():
    svc = QueryService(ServiceConfig(no_cache=True))
    try:
        with pytest.raises(SchemaError, match="queries"):
            svc.submit_sweep({"points": []})
        with pytest.raises(SchemaError, match="non-empty"):
            svc.submit_sweep({"queries": []})
        with pytest.raises(SchemaError, match="unknown field"):
            svc.submit_sweep({"queries": [dict(BODY, nope=1)]})
    finally:
        svc.close()


def test_job_queue_error_and_unknown():
    def boom(queries, progress):
        raise RuntimeError("sweep failed")

    jobs = JobQueue(boom)
    try:
        assert jobs.status("job-999999") is None
        with pytest.raises(ValueError):
            jobs.submit([])
        job_id = jobs.submit([parse_query(BODY)])
        status = _wait_job(jobs, job_id)
        assert status["state"] == "error"
        assert "sweep failed" in status["error"]
        assert "results" not in status
        assert jobs.depth() == 0
    finally:
        jobs.close()


# ----------------------------------------------------------------------
# Latency histogram
# ----------------------------------------------------------------------

def test_latency_histogram_percentiles():
    hist = _LatencyHistogram()
    assert hist.percentile(0.99) == 0.0
    for _ in range(90):
        hist.observe(0.0004)  # first bucket (<= 0.5 ms)
    for _ in range(10):
        hist.observe(0.2)  # the 0.25 s bucket
    snap = hist.as_dict()
    assert snap["count"] == 100
    assert snap["p50_s"] == 0.0005
    assert snap["p99_s"] == 0.25
    assert sum(snap["counts"]) == 100


# ----------------------------------------------------------------------
# HTTP end to end
# ----------------------------------------------------------------------

@pytest.fixture
def server(tmp_path):
    svc = QueryService(ServiceConfig(cache_dir=str(tmp_path / "http")))
    srv = make_server("127.0.0.1", 0, svc)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    host, port = srv.server_address[:2]
    yield f"http://{host}:{port}", svc
    srv.shutdown()
    srv.server_close()
    svc.close()


def _http(url, body=None):
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(
        url, data=data,
        headers={} if data is None else {"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def test_http_query_and_errors(server):
    base, _svc = server
    assert _http(base + "/healthz") == (200, {"ok": True})
    status, payload = _http(base + "/query", BODY)
    assert status == 200
    assert payload == _reference(BODY)
    assert _http(base + "/query", dict(BODY, frob=1))[0] == 400
    status, err = _http(base + "/query", dict(BODY, arch="kepler"))
    assert status == 400
    assert "arch" in err["error"]
    assert _http(base + "/nope")[0] == 404
    assert _http(base + "/jobs/job-424242")[0] == 404


def test_http_sweep_lifecycle_and_metrics(server):
    base, svc = server
    bodies = [dict(BODY, lhb_entries=e) for e in (64, None)]
    status, accepted = _http(base + "/sweep", {"queries": bodies})
    assert status == 202
    job_id = accepted["job"]
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        status, snap = _http(base + f"/jobs/{job_id}")
        assert status == 200
        if snap["state"] == "done":
            break
        time.sleep(0.01)
    assert snap["state"] == "done"
    assert [json.loads(json.dumps(r)) for r in snap["results"]] == [
        _reference(b) for b in bodies
    ]
    status, metrics = _http(base + "/metrics")
    assert status == 200
    serve = metrics["serve"]
    assert serve["serve.sweeps"] == 1
    assert serve["queue_depth"] == 0
    assert serve["latency"]["count"] == serve["serve.requests"]
    assert metrics["store"]["root"] == str(svc.cache.root)
