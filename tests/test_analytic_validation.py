"""Differential validation: analytic predictions vs exact replay.

The load-bearing accuracy harness of the analytic engine tier.  Every
grid point is answered twice — :func:`repro.analytic.model
.predict_stats` over the cached profile, and trace generation plus the
columnar replay called *directly* (so no engine selection, result
cache, or ``$REPRO_ENGINE`` override can leak into the exact side) —
and per-metric relative errors must stay within the committed bound
table ``tests/goldens/analytic_bounds.json``:

* LHB hit rate and elimination rate are **exact** (bound ``1e-9``):
  the per-level distinct-tag tables reproduce the replay's verdicts
  bit for bit across direct-mapped, set-associative and oracle
  buffers, hashed and modular indexing, any lifetime;
* cache/DRAM traffic and the on-chip energy delta interpolate between
  exact anchors and carry honest measured bounds (~2x the observed
  worst error).

The default test sweeps a representative layer subset (the worst
offenders observed across the full set, one per metric, plus the
paper's headline layers); the ``slow``-marked variant sweeps the full
Table I set exactly as the bounds were recorded.  A meta-test loosens
one predictor by 10% and proves the harness fails with a readable
worst-offender report — the bound assertions are only as good as
their ability to actually trip.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.analytic import (
    DEFAULT_GEOMETRIES,
    METRIC_FLOORS,
    predict_stats,
    validate,
)
from repro.conv.workloads import ALL_LAYERS, get_layer

BOUNDS_PATH = Path(__file__).parent / "goldens" / "analytic_bounds.json"
BOUNDS = json.loads(BOUNDS_PATH.read_text())["bounds"]

#: Representative subset for the tier-1 lane: the observed worst
#: offender per metric over the full Table I sweep (gan TC2/TC3/TC4,
#: resnet C4) plus the paper's headline layers (resnet C1, yolo C2).
SUBSET = [
    ("resnet", "C1"),
    ("resnet", "C4"),
    ("yolo", "C2"),
    ("gan", "TC2"),
    ("gan", "TC3"),
    ("gan", "TC4"),
]


def test_bound_table_covers_exactly_the_validated_metrics():
    assert set(BOUNDS) == set(METRIC_FLOORS)
    # Rates must stay pinned exact: loosening them is a model
    # regression, not a tolerance call.
    assert BOUNDS["lhb_hit_rate"] <= 1e-9
    assert BOUNDS["elimination_rate"] <= 1e-9


def test_representative_subset_within_bounds():
    layers = [get_layer(net, name) for net, name in SUBSET]
    report = validate(layers)
    assert report.points == len(layers) * 2 * len(DEFAULT_GEOMETRIES)
    failures = report.failures(BOUNDS)
    assert not failures, report.format_failures(BOUNDS)


@pytest.mark.slow
def test_full_table1_within_bounds():
    report = validate(ALL_LAYERS)
    assert report.points == len(ALL_LAYERS) * 2 * len(DEFAULT_GEOMETRIES)
    failures = report.failures(BOUNDS)
    assert not failures, report.format_failures(BOUNDS)


def test_loosened_predictor_trips_the_harness():
    """Deliberately degrade one predictor: the bounds must catch it
    and the failure report must name the offender readably."""

    def sloppy(profile, lhb=None):
        stats = predict_stats(profile, lhb)
        stats.l1_hits = int(stats.l1_hits * 1.10)
        return stats

    layers = [get_layer("yolo", "C2")]
    report = validate(layers, predict=sloppy)
    failures = report.failures(BOUNDS)
    failed_metrics = {metric for metric, _, _ in failures}
    assert "l1_hits" in failed_metrics
    text = report.format_failures(BOUNDS)
    assert "l1_hits" in text
    assert "yolo/C2" in text
    assert "bound" in text and "exceeded" in text
    assert "predicted=" in text and "exact=" in text


def test_missing_metric_is_itself_a_failure():
    """A bound whose metric the sweep never exercised must fail loudly
    (a silently skipped metric would look like a pass forever)."""
    report = validate([])  # empty sweep records nothing
    failures = report.failures(BOUNDS)
    assert {metric for metric, _, _ in failures} == set(BOUNDS)


def test_baseline_mode_is_exact():
    """BASELINE carries no elimination, sits on the first traffic
    anchor, and must therefore match the replay bit for bit."""
    from repro.analytic import layer_profile
    from repro.gpu.config import SimulationOptions, TITAN_V, BASELINE_KERNEL
    from repro.gpu.fastpath import replay_trace_fast
    from repro.gpu.kernel import generate_sm_trace
    from repro.gpu.ldst import EliminationMode

    spec = get_layer("resnet", "C2")
    options = SimulationOptions(max_ctas=2)
    trace = generate_sm_trace(spec, TITAN_V, BASELINE_KERNEL, options)
    exact = replay_trace_fast(
        trace, spec, TITAN_V, options, EliminationMode.BASELINE, None
    )
    profile = layer_profile(
        spec, EliminationMode.BASELINE, TITAN_V, BASELINE_KERNEL, options
    )
    predicted = predict_stats(profile, None)
    assert dataclasses.asdict(predicted) == dataclasses.asdict(exact)


def test_profile_stream_is_bit_exact_against_the_generator():
    """``_build_load_stream`` consumes the generator's own planner
    (``plan_sm_trace``) — this pins the remaining restated part, the
    load *ordering*, bit-exact against the synthesized trace."""
    import numpy as np

    from repro.analytic.profile import _build_load_stream
    from repro.gpu.config import (
        BASELINE_KERNEL,
        SimulationOptions,
        TITAN_V,
    )
    from repro.gpu.isa import LOAD_A, STORE_D
    from repro.gpu.kernel import generate_sm_trace

    from tests.conftest import make_spec

    cases = [
        (get_layer("resnet", "C2"), BASELINE_KERNEL,
         SimulationOptions(max_ctas=2)),
        (make_spec(name="rect", h=6, w=10, c=8, filters=24),
         BASELINE_KERNEL, SimulationOptions()),
        (get_layer("yolo", "C2"),
         dataclasses.replace(BASELINE_KERNEL, warp_runahead=3),
         SimulationOptions(max_ctas=3)),
    ]
    for spec, kernel, options in cases:
        trace = generate_sm_trace(spec, TITAN_V, kernel, options)
        is_load = trace.kind != STORE_D
        is_a, load_addr, geom, stores, mma_ops, meta = _build_load_stream(
            spec, TITAN_V, kernel, options
        )
        assert np.array_equal(load_addr, trace.address[is_load])
        assert np.array_equal(is_a, trace.kind[is_load] == LOAD_A)
        assert stores == int((~is_load).sum())
        assert mma_ops == trace.mma_ops
        assert geom.lda == trace.lda
        assert meta.traced_ctas == trace.traced_ctas
        assert meta.total_ctas == trace.total_ctas
        assert meta.grid_ctas == trace.grid_ctas
        assert meta.concurrent_warps == trace.concurrent_warps
