"""Differential fuzzing and streaming invariants of trace synthesis.

The closed-form columnar synthesizer (:mod:`repro.gpu.kernel`'s
``TracePlan``) claims *bit-identical* traces to the legacy per-turn
event loop (``REPRO_TRACE_GEN=loop``) for every configuration — and
its streaming form (:func:`~repro.gpu.kernel.iter_trace_blocks`)
claims block boundaries are invisible: any block size concatenates to
the same columns, replays to the same LayerStats, and persists to a
byte-identical store sidecar.  Hypothesis hunts the corners a fixed
matrix misses: degenerate geometries, guard-clipped warp tiles,
``max_ctas`` truncation (including to zero events), run-ahead values
coprime to the k-depth, and implicit-mode staging chunks straddling
turn boundaries.

Tier-1 runs a small number of examples per property (override with
``REPRO_FUZZ_EXAMPLES``); the ``slow``-marked variant goes deep in
the CI fuzz lanes.
"""

import dataclasses
import io
import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.conv.attention import gemm_layer
from repro.core.lhb import LoadHistoryBuffer
from repro.gpu.config import (
    BASELINE_KERNEL,
    IMPLICIT_KERNEL,
    SimulationOptions,
    TITAN_V,
)
from repro.gpu.fastpath import replay_blocks_fast, replay_trace_fast
from repro.gpu.kernel import (
    TRACE_BLOCK_ENV,
    TRACE_GEN_ENV,
    generate_sm_trace,
    iter_trace_blocks,
    plan_sm_trace,
)
from repro.gpu.ldst import EliminationMode
from repro.gpu.simulator import simulate_layer, simulate_layer_streaming
from repro.runtime.store import DiskCache

from tests.conftest import make_spec

MAX_EXAMPLES = int(os.environ.get("REPRO_FUZZ_EXAMPLES", "25"))
SLOW_EXAMPLES = int(os.environ.get("REPRO_FUZZ_EXAMPLES_SLOW", "300"))


@pytest.fixture(autouse=True)
def _no_generator_env(monkeypatch):
    """These tests drive both generators explicitly — the environment
    selectors must not leak in from the CI lane under test."""
    monkeypatch.delenv(TRACE_GEN_ENV, raising=False)
    monkeypatch.delenv(TRACE_BLOCK_ENV, raising=False)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

@st.composite
def gen_cases(draw):
    """Layer geometry x fragment geometry x kernel tiling x options.

    The fragment axis mirrors the architecture zoo: non-square wmma
    tiles and INT8/FP8 operand widths; the layer axis mixes conv
    geometries with attention-style GEMMs (1x1 identity embedding).
    """
    if draw(st.booleans()) and draw(st.booleans()):  # ~25% attention GEMM
        spec = gemm_layer(
            "genfuzzgemm",
            batch=draw(st.integers(1, 2)),
            m=draw(st.sampled_from([5, 19, 40])),
            n=draw(st.sampled_from([1, 16, 33])),
            k=draw(st.sampled_from([4, 24, 48])),
            network="genfuzz",
        )
    else:
        h = draw(st.integers(2, 6))
        w = draw(st.integers(2, 6))
        pad = draw(st.integers(0, 2))
        spec = make_spec(
            name="genfuzz",
            batch=draw(st.integers(1, 2)),
            h=h,
            w=w,
            c=draw(st.sampled_from([1, 2, 4, 8])),
            filters=draw(st.sampled_from([1, 4, 16])),
            kh=draw(st.integers(1, min(3, h + 2 * pad))),
            kw=draw(st.integers(1, min(3, w + 2 * pad))),
            pad=pad,
            stride=draw(st.integers(1, 2)),
        )
    tile_k = draw(st.sampled_from([8, 16, 32]))
    gpu = dataclasses.replace(
        TITAN_V,
        tile_m=draw(st.sampled_from([8, 16, 32])),
        tile_n=draw(st.sampled_from([8, 16, 32])),
        tile_k=tile_k,
        element_bytes=draw(st.sampled_from([1, 2])),
    )
    base = IMPLICIT_KERNEL if draw(st.booleans()) else BASELINE_KERNEL
    kernel = dataclasses.replace(
        base,
        warp_runahead=draw(st.sampled_from([1, 2, 3, 7, 32])),
        # Must decompose into both the legacy 16-wide wmma tile and
        # the drawn tile_k (validate_arch's stage constraint).
        stage_k=draw(
            st.sampled_from([s for s in (16, 32, 64) if s % tile_k == 0])
        ),
    )
    options = SimulationOptions(
        max_ctas=draw(st.sampled_from([None, 0, 1, 2, 5])),
        representative_sm=draw(st.sampled_from([0, 1])),
    )
    return spec, gpu, kernel, options


def _columns_equal(a, b, context):
    for field in ("kind", "address", "warp", "instr"):
        np.testing.assert_array_equal(
            getattr(a, field), getattr(b, field),
            err_msg=f"{field}: {context}",
        )
    assert a.meta() == b.meta(), context


# ----------------------------------------------------------------------
# Vectorised synthesizer vs legacy event loop
# ----------------------------------------------------------------------

def _legacy_loop_trace(spec, gpu, kernel, options):
    """Generate via the legacy event loop (hypothesis forbids the
    function-scoped monkeypatch fixture, so the env flip is inline)."""
    os.environ[TRACE_GEN_ENV] = "loop"
    try:
        return generate_sm_trace(spec, gpu, kernel, options)
    finally:
        del os.environ[TRACE_GEN_ENV]


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(case=gen_cases())
def test_vectorized_matches_legacy_loop(case):
    """The tentpole bit-identity claim, fuzzed: same columns, same
    scalar meta, for explicit and implicit kernels, any fragment
    geometry, any run-ahead, any ``max_ctas`` truncation."""
    spec, gpu, kernel, options = case
    vec = generate_sm_trace(spec, gpu, kernel, options)
    loop = _legacy_loop_trace(spec, gpu, kernel, options)
    _columns_equal(vec, loop, (spec.name, gpu, kernel, options))


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(case=gen_cases(), block=st.sampled_from([1, 17, 256, 1 << 20]))
def test_block_streaming_is_boundary_invariant(case, block):
    """Concatenating ``iter_trace_blocks`` output reproduces the
    single-shot trace for any block budget, and the closed-form
    ``event_count`` prices it exactly."""
    spec, gpu, kernel, options = case
    full = generate_sm_trace(spec, gpu, kernel, options)
    plan = plan_sm_trace(spec, gpu, kernel, options)
    assert plan.event_count() == len(full)
    blocks = list(
        iter_trace_blocks(spec, gpu, kernel, options, block_events=block)
    )
    assert all(len(b) for b in blocks)
    if blocks:
        streamed = plan.make_trace(
            np.concatenate([b.kind for b in blocks]),
            np.concatenate([b.address for b in blocks]),
            np.concatenate([b.warp for b in blocks]),
            np.concatenate([b.instr for b in blocks]),
        )
        _columns_equal(streamed, full, (spec.name, kernel, options, block))
    else:
        assert len(full) == 0


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(
    case=gen_cases(),
    block=st.sampled_from([1, 64, 4096]),
    mode=st.sampled_from(list(EliminationMode)),
)
def test_streaming_replay_matches_in_memory(case, block, mode):
    """``replay_blocks_fast`` over streamed blocks equals the
    in-memory replay on every LayerStats counter."""
    spec, gpu, kernel, options = case
    trace = generate_sm_trace(spec, gpu, kernel, options)
    plan = plan_sm_trace(spec, gpu, kernel, options)

    def lhb():
        if mode is EliminationMode.BASELINE:
            return None
        return LoadHistoryBuffer(num_entries=64, assoc=4, lifetime=128)

    ref = replay_trace_fast(trace, spec, gpu, options, mode, lhb())
    got = replay_blocks_fast(
        plan.iter_blocks(block), plan.meta(), spec, gpu, options,
        mode, lhb(),
    )
    assert dataclasses.asdict(got) == dataclasses.asdict(ref), (
        spec.name, gpu, kernel, options, block, mode
    )


# ----------------------------------------------------------------------
# Fixed-point checks (no hypothesis)
# ----------------------------------------------------------------------

SPEC = make_spec(name="gen", h=10, w=10, c=8, filters=16)


def test_forced_block_env_reproduces_single_shot(monkeypatch):
    full = generate_sm_trace(SPEC, TITAN_V, BASELINE_KERNEL,
                             SimulationOptions(max_ctas=2))
    monkeypatch.setenv(TRACE_BLOCK_ENV, "100")
    blocked = generate_sm_trace(SPEC, TITAN_V, BASELINE_KERNEL,
                                SimulationOptions(max_ctas=2))
    _columns_equal(blocked, full, "REPRO_TRACE_BLOCK=100")


def test_gen_counters_published(monkeypatch):
    obs.enable()
    obs.reset()
    try:
        trace = generate_sm_trace(SPEC, TITAN_V, BASELINE_KERNEL,
                                  SimulationOptions(max_ctas=1))
        counters = obs.counters_with_prefix("gen.")
        assert counters["gen.traces"] == 1
        assert counters["gen.events"] == len(trace)
        assert counters["gen.blocks"] == 1
        assert "gen.loop_traces" not in counters
        monkeypatch.setenv(TRACE_GEN_ENV, "loop")
        generate_sm_trace(SPEC, TITAN_V, BASELINE_KERNEL,
                          SimulationOptions(max_ctas=1))
        assert obs.counters_with_prefix("gen.")["gen.loop_traces"] == 1
    finally:
        obs.disable()
        obs.reset()


@pytest.mark.parametrize("mode", list(EliminationMode))
@pytest.mark.parametrize("kernel", [BASELINE_KERNEL, IMPLICIT_KERNEL])
def test_simulate_layer_streaming_matches_simulate_layer(kernel, mode):
    options = SimulationOptions(max_ctas=2)
    ref = simulate_layer(SPEC, mode, lhb_entries=64, lhb_assoc=2,
                         kernel=kernel, options=options)
    for block in (128, None):
        got = simulate_layer_streaming(
            SPEC, mode, lhb_entries=64, lhb_assoc=2, kernel=kernel,
            options=options, block_events=block,
        )
        assert dataclasses.asdict(got.stats) == dataclasses.asdict(ref.stats)
        assert dataclasses.asdict(got.sm_stats) == dataclasses.asdict(
            ref.sm_stats
        )
        assert got.cycles == ref.cycles
        assert got.time_ms == ref.time_ms


def test_stream_writer_sidecar_is_byte_identical(tmp_path):
    """Streamed persistence == ``save_npy`` of the materialised trace,
    and both store modes (mmap and plain) serve the pair back."""
    options = SimulationOptions(max_ctas=2)
    trace = generate_sm_trace(SPEC, TITAN_V, BASELINE_KERNEL, options)
    plan = plan_sm_trace(SPEC, TITAN_V, BASELINE_KERNEL, options)
    key = "ab" * 32
    cache = DiskCache(tmp_path)
    writer = cache.trace_stream_writer(key, plan.meta(), plan.event_count())
    try:
        for block in plan.iter_blocks(512):
            writer.append(block)
        writer.commit()
    except BaseException:
        writer.abort()
        raise

    streamed = cache._path("traces", key, ".events.npy").read_bytes()
    buf = io.BytesIO()
    trace.save_npy(buf)
    assert streamed == buf.getvalue()
    assert cache.has_trace(key)
    for mmap in (False, True):
        got = DiskCache(tmp_path, mmap_traces=mmap).get_trace(key)
        _columns_equal(got.densify(), trace, f"mmap={mmap}")


def test_stream_writer_shortfall_leaves_no_artifact(tmp_path):
    plan = plan_sm_trace(SPEC, TITAN_V, BASELINE_KERNEL,
                         SimulationOptions(max_ctas=2))
    cache = DiskCache(tmp_path)
    writer = cache.trace_stream_writer("cd" * 32, plan.meta(),
                                       plan.event_count())
    with pytest.raises(ValueError, match="ended early"):
        writer.commit()
    assert not cache.has_trace("cd" * 32)
    assert cache.get_trace("cd" * 32) is None


def test_stream_writer_overshoot_rejected(tmp_path):
    plan = plan_sm_trace(SPEC, TITAN_V, BASELINE_KERNEL,
                         SimulationOptions(max_ctas=2))
    cache = DiskCache(tmp_path)
    writer = cache.trace_stream_writer("ef" * 32, plan.meta(), 1)
    with pytest.raises(ValueError, match="overshot"):
        for block in plan.iter_blocks(512):
            writer.append(block)
    writer.abort()
    assert cache.get_trace("ef" * 32) is None


def test_simulate_layer_streaming_tees_into_store(tmp_path):
    from repro.runtime.cachekey import trace_key

    options = SimulationOptions(max_ctas=2)
    cache = DiskCache(tmp_path)
    simulate_layer_streaming(
        SPEC, EliminationMode.DUPLO, lhb_entries=64, options=options,
        block_events=256, store=cache,
    )
    digest = trace_key(
        SPEC, TITAN_V, BASELINE_KERNEL,
        dataclasses.replace(options, fast_path="auto"),
    )
    stored = cache.get_trace(digest)
    assert stored is not None
    full = generate_sm_trace(SPEC, TITAN_V, BASELINE_KERNEL, options)
    _columns_equal(stored.densify(), full, "teed store trace")


# ----------------------------------------------------------------------
# Deep variant (slow lane)
# ----------------------------------------------------------------------

@pytest.mark.slow
@settings(max_examples=SLOW_EXAMPLES, deadline=None)
@given(case=gen_cases())
def test_vectorized_matches_legacy_loop_deep(case):
    test_vectorized_matches_legacy_loop.hypothesis.inner_test(case)
