"""Tensor-core, DRAM, register-file, and configuration models."""

import pytest

from repro.gpu.config import (
    BASELINE_KERNEL,
    GPUConfig,
    KernelConfig,
    TITAN_V,
)
from repro.gpu.dram import DRAMModel
from repro.gpu.regfile import RegisterFileModel, WARP_REGISTER_BYTES
from repro.gpu.tensor_core import TensorCoreModel


class TestTableIII:
    """The baseline GPU transcribes Table III of the paper."""

    def test_core_parameters(self):
        assert TITAN_V.num_sms == 80
        assert TITAN_V.clock_mhz == 1200
        assert TITAN_V.max_ctas_per_sm == 32
        assert TITAN_V.max_warps_per_sm == 64
        assert TITAN_V.warp_schedulers_per_sm == 4
        assert TITAN_V.tensor_cores_per_sm == 8
        assert TITAN_V.regfile_bytes_per_sm == 256 * 1024

    def test_memory_parameters(self):
        assert TITAN_V.l1_bytes == 128 * 1024
        assert TITAN_V.l2_bytes == 4608 * 1024
        assert TITAN_V.l2_assoc == 24
        assert TITAN_V.l2_latency == 120
        assert TITAN_V.dram_bandwidth_gbps == pytest.approx(652.8)

    def test_derived_bandwidth(self):
        assert TITAN_V.dram_bytes_per_cycle == pytest.approx(544.0)
        assert TITAN_V.dram_bytes_per_sm_cycle == pytest.approx(6.8)

    def test_cache_scaling_helpers(self):
        assert TITAN_V.scaled_l1(16).l1_bytes == 16 * 128 * 1024
        assert TITAN_V.scaled_l2(4).l2_bytes == 4 * 4608 * 1024


class TestKernelConfig:
    def test_baseline_occupancy_is_three_ctas(self):
        """Section II-C: C-only-in-shared fits three CTAs in 96 KB."""
        assert BASELINE_KERNEL.shared_mem_per_cta() == 32 * 1024
        assert BASELINE_KERNEL.ctas_per_sm(TITAN_V) == 3

    def test_all_operands_in_shared_fits_one_cta(self):
        kern = KernelConfig(shared_operands="abc")
        assert kern.ctas_per_sm(TITAN_V) < BASELINE_KERNEL.ctas_per_sm(TITAN_V)

    def test_warp_grid(self):
        assert BASELINE_KERNEL.warps_per_cta == 8
        assert BASELINE_KERNEL.warp_tiles_m == 2
        assert BASELINE_KERNEL.warp_tiles_n == 2

    def test_tiling_validation(self):
        with pytest.raises(ValueError):
            KernelConfig(cta_tile_m=100)
        with pytest.raises(ValueError):
            KernelConfig(warp_tile_m=24)
        with pytest.raises(ValueError):
            KernelConfig(shared_operands="xyz")


class TestTensorCore:
    MODEL = TensorCoreModel()

    def test_macs_per_core(self):
        """16 FEDPs x 4-element dot products = 64 MACs/cycle."""
        assert self.MODEL.macs_per_core_cycle == 64

    def test_sm_throughput(self):
        assert self.MODEL.macs_per_sm_cycle == 512

    def test_wmma_cycles(self):
        assert self.MODEL.wmma_cycles_per_sm() == pytest.approx(4096 / 512)

    def test_paper_operational_intensity_claim(self):
        """Section II-B: tensor cores offer 8x the per-block MAC rate
        of the 16 fp32 units (16x counting mul+add separately)."""
        assert self.MODEL.speedup_over_cuda_cores() == pytest.approx(8.0)

    def test_peak_tflops_order_of_magnitude(self):
        # 512 MACs x 80 SMs x 1.2 GHz x 2 = ~98 TFLOPs (V100-class).
        assert self.MODEL.peak_tflops() == pytest.approx(98.3, rel=0.01)


class TestDRAM:
    MODEL = DRAMModel()

    def test_transfer_cycles(self):
        cycles = self.MODEL.transfer_cycles(5440, sharers=1)
        assert cycles == pytest.approx(10.0)

    def test_sharers_split_bandwidth(self):
        assert self.MODEL.transfer_cycles(1000, 10) == pytest.approx(
            10 * self.MODEL.transfer_cycles(1000, 1)
        )

    def test_energy(self):
        assert self.MODEL.energy_pj(100) == pytest.approx(3200.0)

    def test_utilisation(self):
        cycles = self.MODEL.transfer_cycles(54400)
        assert self.MODEL.bandwidth_utilisation(54400, cycles) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            self.MODEL.transfer_cycles(-1)
        with pytest.raises(ValueError):
            self.MODEL.transfer_cycles(1, 0)
        with pytest.raises(ValueError):
            self.MODEL.energy_pj(-1)
        with pytest.raises(ValueError):
            self.MODEL.bandwidth_utilisation(1, 0)


class TestRegisterFile:
    MODEL = RegisterFileModel()

    def test_warp_register_count(self):
        assert self.MODEL.warp_registers_per_sm == 2048

    def test_operand_footprint_scales_with_runahead(self):
        one = self.MODEL.operand_registers_per_warp(1)
        four = self.MODEL.operand_registers_per_warp(4)
        assert four == 4 * one
        assert one > 0

    def test_octet_duplication_overhead_is_half(self):
        """Section II-B: dual copies double the operand registers."""
        assert self.MODEL.duplication_overhead() == 0.5

    def test_fragment_energies_positive(self):
        assert self.MODEL.fragment_write_energy_pj() > 0
        assert self.MODEL.fragment_read_energy_pj() > 0

    def test_warp_register_is_128_bytes(self):
        assert WARP_REGISTER_BYTES == 32 * 4
