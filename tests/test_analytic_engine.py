"""Engine-tier selection: routing, counters, and cache hygiene.

Pins the selection matrix of :mod:`repro.analytic.engine` as wired
into :func:`repro.gpu.simulator.simulate_layer`:

* which tier answers for every (``options.engine``, ``$REPRO_ENGINE``)
  combination — explicit option beats environment beats legacy auto;
* ``engine.selected.*`` / ``analytic.fallback.*`` /
  ``fastpath.fallback.*`` counters asserted *exactly* (whole counter
  families compared at once, so an unexpected fallback fails);
* the analytic tier answers covered queries with **no trace
  generation** — the acceptance property that makes it O(1);
* analytic answers bypass the persistent result cache in both
  directions (never served from exact results, never persisted where
  an exact tier would read them);
* warm caller-supplied LHBs stay on the event path everywhere.
"""

import pytest

from repro import obs
from repro.analytic import (
    AnalyticUnsupported,
    analytic_fallback_reason,
    layer_profile,
    predict_stats,
    resolve_engine,
    supports_analytic,
)
from repro.analytic.engine import analytic_resolves
from repro.core.lhb import LoadHistoryBuffer
from repro.gpu import simulator
from repro.gpu.config import (
    BASELINE_KERNEL,
    IMPLICIT_KERNEL,
    SimulationOptions,
    TITAN_V,
)
from repro.gpu.fastpath import resolve_fast_path
from repro.gpu.ldst import EliminationMode
from repro.gpu.simulator import simulate_layer
from repro.runtime.executor import SimPoint, simulate_point
from repro.runtime.store import DiskCache

from tests.conftest import make_spec


@pytest.fixture(autouse=True)
def _clean_env_and_obs(monkeypatch):
    """This module asserts tier routing itself: neither engine nor
    fast-path environment overrides may leak in, and every test starts
    with a clean metrics registry."""
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    monkeypatch.delenv("REPRO_FAST_PATH", raising=False)
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


SPEC = make_spec(name="engine", h=16, w=16, c=8, filters=16)
OPTS = SimulationOptions(max_ctas=1)


def _selected(**kwargs):
    obs.enable()
    obs.reset()
    simulate_layer(SPEC, **kwargs)
    counters = obs.counters_with_prefix("engine.selected.")
    assert sum(counters.values()) == 1, counters
    return next(iter(counters))[len("engine.selected."):]


class TestSelectionMatrix:
    @pytest.mark.parametrize(
        "engine,env,expected",
        [
            ("auto", None, "fast"),
            ("auto", "analytic", "analytic"),
            ("auto", "fast", "fast"),
            ("auto", "event", "event"),
            ("analytic", None, "analytic"),
            ("analytic", "event", "analytic"),  # explicit beats env
            ("fast", "analytic", "fast"),
            ("event", "analytic", "event"),
        ],
    )
    def test_requested_tier(self, monkeypatch, engine, env, expected):
        if env is not None:
            monkeypatch.setenv("REPRO_ENGINE", env)
        options = SimulationOptions(max_ctas=1, engine=engine)
        assert resolve_engine(options) == (
            engine if engine != "auto" else (env or "auto")
        )
        assert _selected(options=options) == expected

    def test_unknown_env_value_is_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "warp-speed")
        assert resolve_engine(SimulationOptions()) == "auto"
        assert _selected(options=OPTS) == "fast"

    def test_bad_engine_option_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            SimulationOptions(engine="bogus")

    def test_auto_never_selects_analytic(self):
        """Legacy default stays exact: auto only tiers fast/event."""
        assert _selected(options=OPTS) == "fast"
        assert obs.counters_with_prefix("analytic.fallback") == {}


class TestAnalyticCoverage:
    def test_covered_configurations(self):
        for mode in EliminationMode:
            for lhb in (
                None if mode is EliminationMode.BASELINE
                else LoadHistoryBuffer(num_entries=1024),
                LoadHistoryBuffer(num_entries=96 * 2, assoc=2, lifetime=7)
                if mode is EliminationMode.BASELINE  # npo2 ok: no LHB use
                else LoadHistoryBuffer(
                    num_entries=64, assoc=8, hashed_index=False
                ),
            ):
                assert supports_analytic(BASELINE_KERNEL, OPTS, mode, lhb)

    @pytest.mark.parametrize(
        "kernel,options,entries,assoc,reason",
        [
            (IMPLICIT_KERNEL, OPTS, 1024, 1, "implicit-kernel"),
            (
                BASELINE_KERNEL,
                SimulationOptions(max_ctas=1, lhb_granularity="instruction"),
                1024,
                1,
                "instruction-granularity",
            ),
            (BASELINE_KERNEL, OPTS, 96, 1, "npo2-sets"),
            (BASELINE_KERNEL, OPTS, 24 * 8, 8, "npo2-sets"),
        ],
    )
    def test_fallback_reasons_and_counters(
        self, kernel, options, entries, assoc, reason
    ):
        lhb = LoadHistoryBuffer(num_entries=entries, assoc=assoc)
        assert (
            analytic_fallback_reason(
                kernel, options, EliminationMode.DUPLO, lhb
            )
            == reason
        )
        obs.enable()
        obs.reset()
        tier = _selected(
            lhb_entries=entries,
            lhb_assoc=assoc,
            kernel=kernel,
            options=SimulationOptions(
                max_ctas=options.max_ctas,
                lhb_granularity=options.lhb_granularity,
                engine="analytic",
            ),
        )
        assert tier == "fast"
        assert obs.counters_with_prefix("analytic.fallback") == {
            "analytic.fallback": 1,
            f"analytic.fallback.{reason}": 1,
        }

    def test_covered_run_counts_no_fallback(self):
        assert _selected(
            options=SimulationOptions(max_ctas=1, engine="analytic")
        ) == "analytic"
        assert obs.counters_with_prefix("analytic.fallback") == {}

    def test_warm_lhb_routes_to_fast_tier(self, monkeypatch):
        """The analytic closed forms still assume a fresh buffer, but
        the fallback now lands on the *fast* tier (which seeds its
        recurrence from the residency snapshot) — never the event
        path, so ``fastpath.fallback.warm-lhb`` stays retired."""
        monkeypatch.delenv("REPRO_FAST_PATH", raising=False)
        warm = LoadHistoryBuffer(num_entries=16)
        warm.access(1, 0, dest_reg=0)
        assert (
            analytic_fallback_reason(
                BASELINE_KERNEL, OPTS, EliminationMode.DUPLO, warm
            )
            == "warm-lhb"
        )
        obs.enable()
        obs.reset()
        assert resolve_fast_path(OPTS, EliminationMode.DUPLO, warm)
        assert obs.counters_with_prefix("fastpath.fallback") == {}
        profile = layer_profile(
            SPEC, EliminationMode.DUPLO, options=OPTS
        )
        with pytest.raises(AnalyticUnsupported, match="warm"):
            predict_stats(profile, warm)


class TestNoTraceGeneration:
    def test_analytic_tier_never_touches_the_trace_path(self, monkeypatch):
        """The acceptance property: a covered analytic query builds no
        trace — not from the generator, not from the cache."""
        simulator.clear_trace_cache()

        def boom(*args, **kwargs):
            raise AssertionError("analytic tier requested a trace")

        monkeypatch.setattr(simulator, "_get_trace", boom)
        monkeypatch.setattr(simulator, "generate_sm_trace", boom)
        result = simulate_layer(
            SPEC,
            options=SimulationOptions(max_ctas=1, engine="analytic"),
        )
        assert result.stats.loads_total > 0
        assert result.cycles > 0
        # ... and the exact tiers still do.
        with pytest.raises(AssertionError, match="requested a trace"):
            simulate_layer(SPEC, options=OPTS)


class TestResultCacheHygiene:
    def test_analytic_points_bypass_result_cache(self, tmp_path):
        cache = DiskCache(tmp_path)
        exact_point = SimPoint(SPEC, options=SimulationOptions(max_ctas=1))
        analytic_point = SimPoint(
            SPEC, options=SimulationOptions(max_ctas=1, engine="analytic")
        )
        # The cache key normalises the engine field away ...
        assert exact_point.cache_key() == analytic_point.cache_key()
        # ... which is exactly why analytic answers must bypass it.
        assert not analytic_resolves(
            exact_point.kernel, exact_point.options, exact_point.mode,
            exact_point.lhb_entries, exact_point.lhb_assoc,
        )
        assert analytic_resolves(
            analytic_point.kernel, analytic_point.options,
            analytic_point.mode, analytic_point.lhb_entries,
            analytic_point.lhb_assoc,
        )

        exact = simulate_point(exact_point, cache)
        analytic = simulate_point(analytic_point, cache)
        # Exact LHB counters agree; the analytic run was *not* the
        # cached exact result object round-tripped.
        assert analytic.stats.lhb_hits == exact.stats.lhb_hits
        # The persisted artifact is still the exact one.
        cached = cache.get_result(exact_point.cache_key())
        assert cached is not None
        assert cached.stats == exact.stats

    def test_analytic_point_never_persists(self, tmp_path):
        cache = DiskCache(tmp_path)
        point = SimPoint(
            SPEC, options=SimulationOptions(max_ctas=1, engine="analytic")
        )
        simulate_point(point, cache)
        assert cache.get_result(point.cache_key()) is None

    def test_uncovered_analytic_point_uses_cache_normally(self, tmp_path):
        """A point that *falls back* to an exact tier is exact and may
        cache: analytic_resolves mirrors the coverage predicate."""
        cache = DiskCache(tmp_path)
        point = SimPoint(
            SPEC,
            lhb_entries=96,  # npo2 -> exact fallback
            options=SimulationOptions(max_ctas=1, engine="analytic"),
        )
        assert not analytic_resolves(
            point.kernel, point.options, point.mode,
            point.lhb_entries, point.lhb_assoc,
        )
        result = simulate_point(point, cache)
        cached = cache.get_result(point.cache_key())
        assert cached is not None
        assert cached.stats == result.stats
