"""Vectorised replay building blocks vs. the event-level models.

Every closed form in :mod:`repro.gpu.fastpath` is checked against the
stateful reference it replaces: the dominance counter against a brute
force double loop, the LRU mask against :class:`SetAssociativeCache`,
and the LHB recurrence against :class:`LoadHistoryBuffer` — hit masks
*and* every statistics counter, across hashed/plain indexing, lifetime
windows, and the oracle configuration.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.lhb import LoadHistoryBuffer
from repro.gpu.cache import SetAssociativeCache
from repro.gpu.config import BASELINE_KERNEL, SimulationOptions, TITAN_V
from repro.gpu.fastpath import (
    distinct_count,
    dominance_counts,
    fast_path_fallback_reason,
    lru_hit_mask,
    prev_in_group,
    replay_trace_fast,
    simulate_lhb_stream,
    stable_order,
    supports_fast_path,
)
from repro.gpu.kernel import generate_sm_trace
from repro.gpu.ldst import EliminationMode, replay_trace

from tests.conftest import make_spec


class TestStableOrder:
    @pytest.mark.parametrize(
        "spread",
        [
            5,  # int32 composite-key tier
            1 << 24,  # int64 composite-key tier (span * n >= 2^31)
            1 << 61,  # timsort fallback tier
        ],
    )
    def test_matches_stable_argsort(self, rng, spread):
        values = rng.integers(-spread, spread, size=4097, dtype=np.int64)
        np.testing.assert_array_equal(
            stable_order(values), np.argsort(values, kind="stable")
        )

    def test_stability_on_heavy_ties(self, rng):
        values = rng.integers(0, 3, size=1000, dtype=np.int64)
        order = stable_order(values)
        # Equal values must keep their stream order.
        for v in range(3):
            positions = order[values[order] == v]
            assert np.all(np.diff(positions) > 0)

    def test_trivial_sizes(self):
        assert stable_order(np.array([], dtype=np.int64)).size == 0
        np.testing.assert_array_equal(
            stable_order(np.array([7], dtype=np.int64)), [0]
        )


class TestDistinctCount:
    def test_matches_unique(self, rng):
        values = rng.integers(-50, 50, size=1000, dtype=np.int64)
        assert distinct_count(values) == len(np.unique(values))

    def test_empty_and_constant(self):
        assert distinct_count(np.array([], dtype=np.int64)) == 0
        assert distinct_count(np.zeros(10, dtype=np.int64)) == 1


class TestPrevInGroup:
    def test_matches_brute_force(self, rng):
        group = rng.integers(0, 7, size=300, dtype=np.int64)
        prev = prev_in_group(group)
        last = {}
        for i, g in enumerate(group.tolist()):
            assert prev[i] == last.get(g, -1)
            last[g] = i


class TestDominanceCounts:
    @pytest.mark.parametrize("m", [1, 2, 3, 7, 64, 65, 300])
    def test_matches_brute_force(self, rng, m):
        """Contract inputs: values and thresholds are previous-occurrence
        indices in [-1, m)."""
        for _ in range(5):
            values = rng.integers(-1, m, size=m, dtype=np.int64)
            q = int(rng.integers(1, 2 * m + 1))
            qx = rng.integers(0, m, size=q, dtype=np.int64)
            qt = rng.integers(-1, m, size=q, dtype=np.int64)
            counts = dominance_counts(values, qx, qt)
            for k in range(q):
                expected = int(
                    np.count_nonzero(values[: qx[k] + 1] < qt[k])
                )
                assert counts[k] == expected, (m, k)

    def test_empty(self):
        empty = np.array([], dtype=np.int64)
        assert dominance_counts(empty, empty, empty).size == 0
        assert (
            dominance_counts(np.array([0]), empty, empty).size == 0
        )


class TestLruHitMask:
    @pytest.mark.parametrize(
        "capacity,assoc,n_lines",
        [
            (4 * 128, 1, 16),  # direct-mapped, heavy conflicts
            (8 * 128, 2, 16),
            (16 * 128, 4, 10),  # mostly-hit regime
            (16 * 128, 16, 40),  # fully associative set
            (128 * 128, 4, 400),  # sparse conflicts
        ],
    )
    def test_matches_reference_cache(self, rng, capacity, assoc, n_lines):
        for trial in range(4):
            cache = SetAssociativeCache(capacity, assoc, 128)
            lines = rng.integers(0, n_lines, size=600, dtype=np.int64)
            expected = np.array([cache.access(int(l)) for l in lines])
            got = lru_hit_mask(lines, cache.set_mask, cache.assoc)
            np.testing.assert_array_equal(got, expected, err_msg=str(trial))

    def test_titan_v_geometry(self, rng):
        """The exact L1 the replay instantiates, conflict-rich stream."""
        gpu = TITAN_V
        cache = SetAssociativeCache(
            gpu.l1_bytes, gpu.l1_assoc, gpu.l1_line_bytes
        )
        # Strided lines alias a few sets hard.
        lines = (
            rng.integers(0, 8, size=3000, dtype=np.int64)
            * (cache.set_mask + 1)
            + rng.integers(0, 4, size=3000, dtype=np.int64)
        )
        expected = np.array([cache.access(int(l)) for l in lines])
        got = lru_hit_mask(lines, cache.set_mask, cache.assoc)
        np.testing.assert_array_equal(got, expected)

    def test_empty_stream(self):
        assert lru_hit_mask(np.array([], dtype=np.int64), 0, 4).size == 0


LHB_CONFIGS = [
    dict(num_entries=16, assoc=1, lifetime=None, hashed_index=False),
    dict(num_entries=16, assoc=1, lifetime=None, hashed_index=True),
    dict(num_entries=16, assoc=1, lifetime=7, hashed_index=True),
    dict(num_entries=64, assoc=1, lifetime=3, hashed_index=False),
    dict(num_entries=None, assoc=1, lifetime=None, hashed_index=True),
    dict(num_entries=None, assoc=1, lifetime=5, hashed_index=True),
    # Set-associative organisations (Figure 12's sweep axis): the
    # offline per-set LRU resolution must reproduce the event-level
    # dead-entry-preferring eviction bit for bit.
    dict(num_entries=16, assoc=2, lifetime=None, hashed_index=True),
    dict(num_entries=16, assoc=4, lifetime=7, hashed_index=True),
    dict(num_entries=16, assoc=4, lifetime=None, hashed_index=False),
    dict(num_entries=64, assoc=8, lifetime=3, hashed_index=False),
    dict(num_entries=64, assoc=8, lifetime=40, hashed_index=True),
    dict(num_entries=8, assoc=8, lifetime=13, hashed_index=True),
]


class TestSimulateLhbStream:
    @pytest.mark.parametrize("config", LHB_CONFIGS)
    def test_matches_event_level_lhb(self, rng, config):
        for trial in range(4):
            n = 500
            element = rng.integers(0, 40, size=n, dtype=np.int64)
            batch = rng.integers(0, 3, size=n, dtype=np.int64)

            ref = LoadHistoryBuffer(**config)
            expected = np.array(
                [
                    ref.access(int(e), int(b), dest_reg=0).hit
                    for e, b in zip(element, batch)
                ]
            )

            fast = LoadHistoryBuffer(**config)
            got = simulate_lhb_stream(element, batch, fast)

            np.testing.assert_array_equal(got, expected, err_msg=str(config))
            for counter in (
                "lookups",
                "hits",
                "misses",
                "compulsory_misses",
                "expired_misses",
                "conflict_replacements",
                "store_invalidations",
            ):
                assert getattr(fast.stats, counter) == getattr(
                    ref.stats, counter
                ), (config, counter)

    @pytest.mark.parametrize("config", LHB_CONFIGS)
    def test_matches_event_level_lhb_with_pids(self, rng, config):
        """PID-tagged streams (multi-kernel interleavings): the PID
        folds into the tag key but never into the set index."""
        for trial in range(2):
            n = 500
            element = rng.integers(0, 40, size=n, dtype=np.int64)
            batch = rng.integers(0, 3, size=n, dtype=np.int64)
            pid = rng.integers(0, 3, size=n, dtype=np.int64)

            ref = LoadHistoryBuffer(**config)
            expected = np.array(
                [
                    ref.access(int(e), int(b), dest_reg=0, pid=int(p)).hit
                    for e, b, p in zip(element, batch, pid)
                ]
            )

            fast = LoadHistoryBuffer(**config)
            got = simulate_lhb_stream(element, batch, fast, pid=pid)

            np.testing.assert_array_equal(got, expected, err_msg=str(config))
            assert dataclasses.asdict(fast.stats) == dataclasses.asdict(
                ref.stats
            ), config

    def test_negative_elements_merge_padding(self, rng):
        """Merged-padding streams carry negative element IDs; the
        set-index and tag arithmetic must match the event path there
        too (Python %: non-negative for positive divisors)."""
        config = dict(num_entries=16, assoc=4, lifetime=9, hashed_index=False)
        n = 400
        element = rng.integers(-8, 24, size=n, dtype=np.int64)
        batch = rng.integers(0, 2, size=n, dtype=np.int64)
        ref = LoadHistoryBuffer(**config)
        expected = np.array(
            [
                ref.access(int(e), int(b), dest_reg=0).hit
                for e, b in zip(element, batch)
            ]
        )
        fast = LoadHistoryBuffer(**config)
        got = simulate_lhb_stream(element, batch, fast)
        np.testing.assert_array_equal(got, expected)
        assert dataclasses.asdict(fast.stats) == dataclasses.asdict(ref.stats)

    def test_empty_stream(self):
        buf = LoadHistoryBuffer(num_entries=16)
        empty = np.array([], dtype=np.int64)
        assert simulate_lhb_stream(empty, empty, buf).size == 0
        assert buf.stats.lookups == 0

    def test_accumulates_across_calls(self, rng):
        """Consecutive streams through one buffer merge their stats
        (the counters are += , matching LHBStats.merge semantics)."""
        buf = LoadHistoryBuffer(num_entries=16)
        e = rng.integers(0, 10, size=100, dtype=np.int64)
        b = np.zeros(100, dtype=np.int64)
        simulate_lhb_stream(e, b, buf)
        simulate_lhb_stream(e, b, buf)
        assert buf.stats.lookups == 200


class TestSupport:
    def test_supported_configurations(self):
        """Every fresh LHB organisation is covered — including the
        set-associative ones that used to fall back."""
        direct = LoadHistoryBuffer(num_entries=16, assoc=1)
        oracle = LoadHistoryBuffer(num_entries=None)
        wide = LoadHistoryBuffer(num_entries=16, assoc=4)
        assert supports_fast_path(EliminationMode.BASELINE, None)
        assert supports_fast_path(EliminationMode.BASELINE, wide)
        assert supports_fast_path(EliminationMode.DUPLO, direct)
        assert supports_fast_path(EliminationMode.DUPLO, oracle)
        assert supports_fast_path(EliminationMode.WIR, direct)
        assert supports_fast_path(EliminationMode.DUPLO, wide)

    def test_fallback_reason_covers_warm_lhb(self):
        """The last fallback is closed: a warm buffer's residency
        snapshot seeds the recurrence, so every configuration — warm
        caller-supplied buffers included — runs the fast path."""
        warm = LoadHistoryBuffer(num_entries=16, assoc=1)
        warm.access(1, 0, dest_reg=0)
        assert supports_fast_path(EliminationMode.DUPLO, warm)
        assert fast_path_fallback_reason(EliminationMode.DUPLO, warm) is None
        assert supports_fast_path(EliminationMode.BASELINE, warm)

    def test_replay_matches_event_path_for_warm_lhb(self):
        """A warm caller-supplied buffer replays bit-identically on
        both paths, and the post-replay buffer state agrees too."""
        spec = make_spec()
        options = SimulationOptions(max_ctas=1)
        trace = generate_sm_trace(spec, TITAN_V, BASELINE_KERNEL, options)

        def warmed():
            lhb = LoadHistoryBuffer(num_entries=16, assoc=4, lifetime=64)
            for i in range(40):
                lhb.access(i % 11, i % 3, dest_reg=i)
            return lhb

        warm_fast, warm_event = warmed(), warmed()
        fast = replay_trace_fast(
            trace, spec, TITAN_V, options, EliminationMode.DUPLO, warm_fast
        )
        event = replay_trace(
            trace, spec, TITAN_V, options, EliminationMode.DUPLO, warm_event
        )
        assert dataclasses.asdict(fast) == dataclasses.asdict(event)
        assert dataclasses.asdict(warm_fast.stats) == dataclasses.asdict(
            warm_event.stats
        )
        assert warm_fast.live_entries() == warm_event.live_entries()

    def test_replay_accepts_set_associative_lhb(self):
        """Regression for the closed fallback: a fresh wide LHB runs
        the vectorised replay outright."""
        spec = make_spec()
        options = SimulationOptions(max_ctas=1)
        trace = generate_sm_trace(spec, TITAN_V, BASELINE_KERNEL, options)
        wide = LoadHistoryBuffer(num_entries=16, assoc=4)
        stats = replay_trace_fast(
            trace, spec, TITAN_V, options, EliminationMode.DUPLO, wide
        )
        assert stats.lhb_lookups > 0
