"""Implicit GEMM mode (Section II-C / V-D extension)."""

import numpy as np
import pytest

from repro.gpu.config import (
    BASELINE_KERNEL,
    GPUConfig,
    IMPLICIT_KERNEL,
    KernelConfig,
    SimulationOptions,
    TITAN_V,
)
from repro.gpu.isa import (
    INPUT_BASE,
    LOAD_A,
    LOAD_A_SHARED,
    LOAD_B_SHARED,
    LOAD_INPUT,
)
from repro.gpu.kernel import generate_sm_trace
from repro.gpu.simulator import EliminationMode, clear_trace_cache, simulate_layer

from tests.conftest import make_spec

GPU = GPUConfig(num_sms=2)
IMPLICIT_SMALL = KernelConfig(
    shared_operands="abc", implicit=True, warp_runahead=4, stage_k=32
)


@pytest.fixture(scope="module")
def spec():
    return make_spec(batch=2, h=8, w=8, c=16, filters=16)


@pytest.fixture(scope="module")
def trace(spec):
    return generate_sm_trace(spec, GPU, IMPLICIT_SMALL, SimulationOptions())


@pytest.fixture(autouse=True)
def _fresh(monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    clear_trace_cache()
    yield
    clear_trace_cache()


class TestConfig:
    def test_implicit_requires_ab_staging(self):
        with pytest.raises(ValueError, match="implicit GEMM stages"):
            KernelConfig(shared_operands="c", implicit=True)

    def test_stage_k_tile_multiple(self):
        with pytest.raises(ValueError, match="stage_k"):
            KernelConfig(shared_operands="abc", implicit=True, stage_k=24)

    def test_one_cta_per_sm(self):
        """Section II-C: the 64 KB implicit CTA fits once in 96 KB."""
        assert IMPLICIT_KERNEL.ctas_per_sm(TITAN_V) == 1
        assert IMPLICIT_KERNEL.shared_mem_per_cta() > 32 * 1024


class TestTrace:
    def test_workspace_loads_become_shared(self, trace):
        kinds = set(trace.kind.tolist())
        assert LOAD_A_SHARED in kinds
        assert LOAD_B_SHARED in kinds
        assert LOAD_A not in kinds

    def test_staging_fetches_present(self, trace):
        assert LOAD_INPUT in set(trace.kind.tolist())
        inputs = trace.address[trace.kind == LOAD_INPUT]
        assert (inputs >= INPUT_BASE).all()

    def test_staging_fetches_unique_per_chunk(self, spec, trace):
        """The cooperative copy never refetches a block within one
        chunk, and total staged blocks cannot exceed the input size."""
        inputs = trace.address[trace.kind == LOAD_INPUT]
        blocks_per_cta = spec.input_elements * 2 / 32
        assert len(inputs) <= len(trace.kind)
        assert len(np.unique(inputs)) * 1.0 <= blocks_per_cta * trace.traced_ctas

    def test_global_traffic_smaller_than_explicit(self, spec):
        explicit = generate_sm_trace(
            spec, GPU, KernelConfig(warp_runahead=4), SimulationOptions()
        )
        imp = generate_sm_trace(spec, GPU, IMPLICIT_SMALL, SimulationOptions())
        explicit_global = int((explicit.kind == LOAD_A).sum())
        staged = int((imp.kind == LOAD_INPUT).sum())
        # Staging fetches the unexpanded input: far fewer global
        # fragments than the duplicated workspace reads.
        assert staged < explicit_global


class TestSimulation:
    def test_implicit_cuts_dram_reads(self, spec):
        base_exp = simulate_layer(
            spec,
            EliminationMode.BASELINE,
            kernel=KernelConfig(warp_runahead=4),
        )
        base_imp = simulate_layer(
            spec, EliminationMode.BASELINE, kernel=IMPLICIT_SMALL
        )
        assert base_imp.stats.dram_read_bytes < base_exp.stats.dram_read_bytes

    def test_duplo_still_helps_implicit(self, spec):
        """Section V-D: Duplo turns shared accesses into renaming."""
        base = simulate_layer(
            spec, EliminationMode.BASELINE, kernel=IMPLICIT_SMALL
        )
        duplo = simulate_layer(
            spec, EliminationMode.DUPLO, kernel=IMPLICIT_SMALL
        )
        assert duplo.stats.lhb_hits > 0
        assert duplo.stats.shared_accesses < base.stats.shared_accesses
        assert duplo.cycles <= base.cycles

    def test_breakdown_contains_shared(self, spec):
        base = simulate_layer(
            spec, EliminationMode.BASELINE, kernel=IMPLICIT_SMALL
        )
        assert base.stats.breakdown.shared > 0
        assert base.stats.breakdown.total == base.stats.loads_total

    def test_load_accounting_partitions(self, spec):
        r = simulate_layer(spec, EliminationMode.BASELINE, kernel=IMPLICIT_SMALL)
        s = r.stats
        assert s.loads_total == (
            s.loads_workspace + s.loads_filter + s.loads_input
        )
        assert s.loads_input > 0


class TestStagingCompleteness:
    def test_staged_blocks_cover_chunk_interior(self, spec):
        """Every interior input element a staged chunk references must
        be covered by the cooperative fetches (no element can appear
        in shared memory without having been read from global)."""
        import numpy as np

        from repro.conv.lowering import entries_to_padded_flat
        from repro.gpu.kernel import _stage_input_fragments, gemm_geometry

        geom = gemm_geometry(spec)
        eff = spec.effective_spec()
        row_range = (0, min(64, geom.m))
        col_range = (0, min(32, geom.k))
        frags = _stage_input_fragments(spec, geom, row_range, col_range)
        staged_blocks = set(((frags - INPUT_BASE) // 32).tolist())

        rr, cc = np.meshgrid(
            np.arange(*row_range), np.arange(*col_range), indexing="ij"
        )
        batch, element = entries_to_padded_flat(spec, rr.ravel(), cc.ravel())
        padded_w = eff.in_width + 2 * eff.pad
        py, rem = np.divmod(element, padded_w * eff.in_channels)
        px, ch = np.divmod(rem, eff.in_channels)
        iy, ix = py - eff.pad, px - eff.pad
        interior = (
            (iy >= 0) & (iy < eff.in_height) & (ix >= 0) & (ix < eff.in_width)
        )
        flat = (
            ((batch * eff.in_height + iy) * eff.in_width + ix)
            * eff.in_channels
            + ch
        )
        needed = set((flat[interior] * 2 // 32).tolist())
        assert needed <= staged_blocks
        assert needed == staged_blocks  # and nothing extra is fetched

    def test_empty_chunk_stages_nothing(self, spec):
        from repro.gpu.kernel import _stage_input_fragments, gemm_geometry

        geom = gemm_geometry(spec)
        frags = _stage_input_fragments(spec, geom, (geom.m, geom.m + 16), (0, 16))
        assert len(frags) == 0
