"""Network composition (SequentialNetwork) and the derived-network zoo."""

import numpy as np
import pytest

from repro.conv.dnn import (
    ConvLayer,
    PoolLayer,
    SequentialNetwork,
    SoftmaxLayer,
    conv,
)
from repro.conv.zoo import ZOO, build, discogan_generator, fcn_head, vgg16
from repro.gpu.config import SimulationOptions
from repro.gpu.simulator import EliminationMode


def tiny_network(batch=1):
    return SequentialNetwork(
        "tiny",
        [
            conv("c1", "tiny", (batch, 8, 8, 3), 8, kernel=3, pad=1),
            PoolLayer(),
            conv("c2", "tiny", (batch, 4, 4, 8), 16, kernel=3, pad=1),
            SoftmaxLayer(),
        ],
    )


class TestSequentialNetwork:
    def test_shape_chaining_validated_at_build(self):
        with pytest.raises(ValueError, match="input"):
            SequentialNetwork(
                "bad",
                [
                    conv("c1", "bad", (1, 8, 8, 3), 8, kernel=3, pad=1),
                    conv("c2", "bad", (1, 4, 4, 8), 8, kernel=3, pad=1),
                ],
            )

    def test_output_shape(self):
        net = tiny_network()
        assert net.output_nhwc == (1, 4, 4, 16)

    def test_forward_runs_and_normalises(self, rng):
        net = tiny_network()
        w = net.init_weights(rng)
        y = net.forward(rng.standard_normal(net.input_nhwc), w)
        # Softmax over flattened activations sums to one per image.
        np.testing.assert_allclose(y.reshape(1, -1).sum(), 1.0)

    def test_relu_nonnegativity(self, rng):
        net = SequentialNetwork(
            "r", [conv("c1", "r", (1, 6, 6, 2), 4, kernel=3, pad=1)]
        )
        y = net.forward(
            rng.standard_normal(net.input_nhwc), net.init_weights(rng)
        )
        assert (y >= 0).all()

    def test_weight_count_checked(self, rng):
        net = tiny_network()
        with pytest.raises(ValueError, match="weight tensors"):
            net.forward(np.zeros(net.input_nhwc), [])

    def test_needs_layers_and_leading_conv(self):
        with pytest.raises(ValueError, match="at least one layer"):
            SequentialNetwork("x", [])
        with pytest.raises(ValueError, match="first layer"):
            SequentialNetwork("x", [PoolLayer(),
                                    conv("c", "x", (1, 4, 4, 1), 1, 3, 1)])

    def test_simulate_returns_per_layer_cycles(self):
        net = tiny_network()
        cycles = net.simulate(
            EliminationMode.BASELINE, options=SimulationOptions(max_ctas=1)
        )
        assert cycles["total"] == pytest.approx(
            sum(v for k, v in cycles.items() if k != "total")
        )
        assert any(k.endswith(":pool") for k in cycles)

    def test_pool_validation(self):
        with pytest.raises(ValueError, match="kind"):
            PoolLayer(kind="median")
        with pytest.raises(ValueError, match="window"):
            PoolLayer(size=8).output_shape((1, 4, 4, 1))


class TestZoo:
    def test_vgg16_structure(self):
        net = vgg16(batch=1, resolution=32)
        specs = net.conv_specs()
        assert len(specs) == 13
        assert all(s.filter_height == 3 for s in specs)
        assert net.output_nhwc == (1, 1, 1, 512)

    def test_vgg_derivable_from_table1_blocks(self):
        """The paper: VGG derives from Table I's layer shapes — its
        convs are all 3x3 pad-1 unit-stride like ResNet/YOLO rows."""
        for spec in vgg16(batch=1, resolution=32).conv_specs():
            assert (spec.pad, spec.stride) == (1, 1)
            assert spec.duplication_factor > 5

    def test_discogan_roundtrip_resolution(self):
        net = discogan_generator(batch=1, resolution=16)
        assert net.input_nhwc == (1, 16, 16, 3)
        assert net.output_nhwc == (1, 16, 16, 3)
        assert sum(s.transposed for s in net.conv_specs()) == 4

    def test_fcn_upsamples(self):
        net = fcn_head(batch=1, spatial=7, backbone_channels=32)
        assert net.output_nhwc[1] == 14

    def test_build_by_name(self):
        assert build("vgg16", batch=1, resolution=32).name == "vgg16"
        with pytest.raises(KeyError, match="unknown network"):
            build("alexnet")

    def test_zoo_registry(self):
        assert set(ZOO) == {"vgg16", "discogan", "fcn"}

    def test_validation(self):
        with pytest.raises(ValueError, match="divisible"):
            vgg16(resolution=100)
        with pytest.raises(ValueError, match="divisible"):
            discogan_generator(resolution=100)
