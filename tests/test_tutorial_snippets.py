"""Execute every Python block in docs/TUTORIAL.md.

The tutorial's code is real: blocks run top-to-bottom in one shared
namespace, and their inline assertions are the test.  If the API
drifts, this test fails before a reader does.
"""

import pathlib
import re

import pytest

TUTORIAL = pathlib.Path(__file__).parent.parent / "docs" / "TUTORIAL.md"


def extract_blocks(text: str):
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


@pytest.fixture(scope="module")
def blocks():
    assert TUTORIAL.exists(), "tutorial missing"
    found = extract_blocks(TUTORIAL.read_text())
    assert len(found) >= 8, "tutorial lost its code blocks"
    return found


def test_tutorial_blocks_execute(blocks):
    namespace: dict = {}
    for i, block in enumerate(blocks):
        try:
            exec(compile(block, f"<tutorial block {i}>", "exec"), namespace)
        except Exception as err:  # pragma: no cover - failure reporting
            pytest.fail(f"tutorial block {i} failed: {err}\n---\n{block}")


def test_tutorial_blocks_contain_assertions(blocks):
    """Each snippet proves something (no decorative code)."""
    asserting = sum("assert" in b for b in blocks)
    assert asserting >= len(blocks) - 1
