"""Cross-module integration: the simulator's eliminations are *real*.

The decisive check: replay a layer whose workspace we explicitly
materialise with random data, intercept every load the LHB eliminates,
and verify the skipped fragment's bytes are identical to the fragment
the renamed register already holds.  If this passes, Duplo's
elimination is functionally lossless end-to-end.
"""

import numpy as np
import pytest

from repro.conv.lowering import lower_input, workspace_shape
from repro.core.compiler import build_convolution_info
from repro.core.idgen import IDGenerator, IDMode
from repro.core.lhb import LoadHistoryBuffer
from repro.gpu.config import GPUConfig, KernelConfig, SimulationOptions
from repro.gpu.isa import LOAD_A, WORKSPACE_BASE
from repro.gpu.kernel import gemm_geometry, generate_sm_trace

from tests.conftest import make_spec

GPU = GPUConfig(num_sms=1)
KERNEL = KernelConfig(warp_runahead=8)


def padded_workspace(spec, rng):
    """Materialise the explicit workspace exactly as the kernel lays
    it out: logical rows/cols padded to the allocation pitch."""
    geom = gemm_geometry(spec)
    ws = lower_input(spec, rng.standard_normal(spec.input_nhwc)).matrix
    alloc = np.zeros((geom.m_pad, geom.lda))
    alloc[: ws.shape[0], : ws.shape[1]] = ws
    return alloc, geom


@pytest.mark.parametrize(
    "spec_kwargs",
    [
        dict(batch=1, h=10, w=10, c=16, filters=16),
        dict(batch=2, h=8, w=8, c=16, filters=16, pad=0),
        dict(batch=1, h=9, w=9, c=16, filters=16, pad=0, stride=2),
        dict(batch=1, h=4, w=4, c=16, filters=16, kh=5, kw=5, pad=2,
             stride=2, transposed=True, output_pad=1),
    ],
)
def test_eliminated_fragments_hold_identical_values(spec_kwargs, rng):
    spec = make_spec(**spec_kwargs)
    alloc, geom = padded_workspace(spec, rng)
    trace = generate_sm_trace(spec, GPU, KERNEL, SimulationOptions())

    info = build_convolution_info(spec, WORKSPACE_BASE, lda=geom.lda)
    idgen = IDGenerator(spec, WORKSPACE_BASE, geom.lda, mode=IDMode.CANONICAL)
    lhb = LoadHistoryBuffer(num_entries=None, lifetime=None)

    def fragment_values(addr):
        idx = (addr - WORKSPACE_BASE) // 2
        row, col = divmod(idx, geom.lda)
        return alloc[row, col : col + 16]

    holder = {}  # element/batch tag -> fragment values
    checked = 0
    for i in range(len(trace.kind)):
        if trace.kind[i] != LOAD_A:
            continue
        addr = int(trace.address[i])
        gen = idgen.generate(addr)
        if not gen.in_workspace:
            continue
        result = lhb.access(gen.element_id, gen.batch_id, i)
        values = fragment_values(addr)
        key = (gen.element_id, gen.batch_id)
        if result.hit:
            np.testing.assert_array_equal(values, holder[key])
            checked += 1
        else:
            holder[key] = values.copy()
    assert checked > 0, "no eliminations happened; test proves nothing"


def test_strict_mode_also_lossless(rng):
    """STRICT IDs are a refinement, so they must be lossless too."""
    spec = make_spec(batch=1, h=10, w=10, c=16, filters=16)
    alloc, geom = padded_workspace(spec, rng)
    trace = generate_sm_trace(spec, GPU, KERNEL, SimulationOptions())
    idgen = IDGenerator(spec, WORKSPACE_BASE, geom.lda, mode=IDMode.STRICT)
    lhb = LoadHistoryBuffer(num_entries=None, lifetime=None)
    holder = {}
    hits = 0
    for i in range(len(trace.kind)):
        if trace.kind[i] != LOAD_A:
            continue
        addr = int(trace.address[i])
        gen = idgen.generate(addr)
        if not gen.in_workspace:
            continue
        idx = (addr - WORKSPACE_BASE) // 2
        row, col = divmod(idx, geom.lda)
        values = alloc[row, col : col + 16]
        key = (gen.element_id, gen.batch_id)
        if lhb.access(gen.element_id, gen.batch_id, i).hit:
            np.testing.assert_array_equal(values, holder[key])
            hits += 1
        else:
            holder[key] = values.copy()
    assert hits > 0


def test_gemm_result_unchanged_by_elimination(rng):
    """Computing the GEMM with renamed (shared) fragments gives the
    same output as computing it with freshly loaded fragments."""
    spec = make_spec(batch=1, h=8, w=8, c=4, filters=4)
    x = rng.standard_normal(spec.input_nhwc)
    f = rng.standard_normal(spec.filter_nhwc)
    ws = lower_input(spec, x).matrix

    rows, cols = workspace_shape(spec)
    from repro.conv.lowering import entries_to_padded_flat

    rr, cc = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
    batch, element = entries_to_padded_flat(spec, rr.ravel(), cc.ravel())
    # Rebuild the workspace *through the ID map*: every entry reads the
    # value of its ID's first occurrence (what renaming does).
    first_value = {}
    rebuilt = np.empty(rows * cols)
    flat = ws.ravel()
    for i, key in enumerate(zip(batch.tolist(), element.tolist())):
        rebuilt[i] = first_value.setdefault(key, flat[i])
    rebuilt = rebuilt.reshape(rows, cols)

    from repro.conv.gemm import filters_to_matrix

    b = filters_to_matrix(spec, f)
    np.testing.assert_allclose(rebuilt @ b, ws @ b, rtol=1e-12)
