"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_args(self):
        args = build_parser().parse_args(
            ["simulate", "resnet", "C2", "--lhb", "512", "--max-ctas", "2"]
        )
        assert args.network == "resnet"
        assert args.lhb == 512
        assert args.max_ctas == 2

    def test_bad_network_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "vgg", "C1"])


class TestCommands:
    def test_layers(self, capsys):
        assert main(["layers"]) == 0
        out = capsys.readouterr().out
        assert "resnet/C1" in out
        assert "yolo/C6" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "resnet", "C8", "--max-ctas", "1"]) == 0
        out = capsys.readouterr().out
        assert "improvement" in out
        assert "baseline" in out

    def test_simulate_oracle(self, capsys):
        assert main(
            ["simulate", "gan", "C4", "--lhb", "0", "--max-ctas", "1"]
        ) == 0
        assert "duplo" in capsys.readouterr().out

    def test_experiment_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        assert "register reuse" in capsys.readouterr().out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "figure99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_network_command(self, capsys):
        assert main(["network", "fcn", "--batch", "1", "--max-ctas", "1"]) == 0
        out = capsys.readouterr().out
        assert "gmean improvement" in out

    def test_network_unknown(self, capsys):
        assert main(["network", "alexnet"]) == 2
        assert "unknown network" in capsys.readouterr().err
