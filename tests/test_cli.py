"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_args(self):
        args = build_parser().parse_args(
            ["simulate", "resnet", "C2", "--lhb", "512", "--max-ctas", "2"]
        )
        assert args.network == "resnet"
        assert args.lhb == 512
        assert args.max_ctas == 2

    def test_bad_network_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "vgg", "C1"])


class TestCommands:
    def test_layers(self, capsys):
        assert main(["layers"]) == 0
        out = capsys.readouterr().out
        assert "resnet/C1" in out
        assert "yolo/C6" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "resnet", "C8", "--max-ctas", "1"]) == 0
        out = capsys.readouterr().out
        assert "improvement" in out
        assert "baseline" in out

    def test_simulate_oracle(self, capsys):
        assert main(
            ["simulate", "gan", "C4", "--lhb", "0", "--max-ctas", "1"]
        ) == 0
        assert "duplo" in capsys.readouterr().out

    def test_experiment_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        assert "register reuse" in capsys.readouterr().out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "figure99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_network_command(self, capsys):
        assert main(["network", "fcn", "--batch", "1", "--max-ctas", "1"]) == 0
        out = capsys.readouterr().out
        assert "gmean improvement" in out

    def test_network_unknown(self, capsys):
        assert main(["network", "alexnet"]) == 2
        assert "unknown network" in capsys.readouterr().err


class TestRuntimeFlags:
    def test_experiment_accepts_runtime_flags(self):
        args = build_parser().parse_args(
            ["experiment", "figure9", "--jobs", "4", "--no-cache"]
        )
        assert args.jobs == 4
        assert args.no_cache is True
        assert args.cache_dir is None

    def test_jobs_must_be_positive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "figure9", "--jobs", "0"])

    def test_calibration_accepts_runtime_flags(self):
        args = build_parser().parse_args(
            ["calibration", "--jobs", "2", "--cache-dir", "/tmp/x"]
        )
        assert args.jobs == 2
        assert args.cache_dir == "/tmp/x"

    def test_experiment_uses_cache_dir(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main(
            ["experiment", "table2", "--cache-dir", str(cache_dir)]
        ) == 0
        capsys.readouterr()

    def test_cache_stats_and_clear(self, tmp_path, capsys):
        from repro.runtime import DiskCache

        cache_dir = tmp_path / "cache"
        DiskCache(cache_dir).put_result("ab" * 32, {"x": 1})
        assert main(["cache", "stats", "--dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "result files:  1" in out
        assert main(["cache", "clear", "--dir", str(cache_dir)]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert main(["cache", "stats", "--dir", str(cache_dir)]) == 0
        assert "result files:  0" in capsys.readouterr().out
