"""Roofline analysis: the memory-boundedness premise."""

import pytest

from repro.analysis.roofline import roofline_point, roofline_table
from repro.conv.workloads import ALL_LAYERS, get_layer


class TestRooflinePoint:
    def test_explicit_gemm_is_memory_bound(self):
        """The Yan et al. premise the paper builds on: the explicit
        lowered GEMM of the large early layers sits under the
        bandwidth slope (late, channel-heavy layers with small
        workspaces climb above it)."""
        for name in ("C1", "C2", "C4"):
            point = roofline_point(get_layer("resnet", name))
            assert point.memory_bound, name
        for name in ("C2", "C3"):
            assert roofline_point(get_layer("yolo", name)).memory_bound

    def test_dedup_raises_intensity(self):
        spec = get_layer("resnet", "C2")
        explicit = roofline_point(spec, implicit=False)
        implicit = roofline_point(spec, implicit=True)
        assert implicit.arithmetic_intensity > explicit.arithmetic_intensity

    def test_attainable_capped_by_peak(self):
        for spec in ALL_LAYERS:
            point = roofline_point(spec)
            assert point.attainable_tflops <= point.peak_tflops + 1e-9

    def test_machine_balance_value(self):
        # ~98 TFLOPs over 652.8 GB/s -> ~150 FLOPs/byte.
        point = roofline_point(get_layer("resnet", "C2"))
        assert point.machine_balance == pytest.approx(150.6, rel=0.02)

    def test_utilisation_bound_in_unit_interval(self):
        for spec in ALL_LAYERS:
            u = roofline_point(spec).utilisation_bound
            assert 0 < u <= 1


class TestRooflineTable:
    def test_headroom_reflects_duplication(self):
        rows = roofline_table(
            [get_layer("resnet", "C2"), get_layer("resnet", "C5")]
        )
        by_layer = {r["layer"]: r for r in rows}
        # C2 duplicates 9x; C5 barely 2x -> dedup headroom much larger
        # for C2.
        assert (
            by_layer["resnet/C2"]["dedup_headroom"]
            > by_layer["resnet/C5"]["dedup_headroom"]
        )

    def test_every_table1_layer_has_headroom(self):
        for row in roofline_table(ALL_LAYERS):
            assert row["dedup_headroom"] >= 1.0
