"""Sweep-path streaming dispatch (the PR 8 follow-up).

``simulate_point(..., streaming=True)`` must route *cold fast-tier*
points through the bounded-RSS
:func:`~repro.gpu.simulator.simulate_layer_streaming` entry — and
ONLY those: warm traces (in-process LRU or disk store) keep the
cheaper replay-from-store path, the analytic/event tiers cannot
stream, and the retired loop generator cannot synthesize blocks.
Results are bit-identical either way; the routing itself is pinned by
the ``executor.streamed_points`` counter.
"""

import dataclasses
import json
import os
import subprocess
import sys

import pytest

from tests.conftest import make_spec
from repro import obs
from repro.gpu import simulator
from repro.gpu.config import SimulationOptions
from repro.gpu.kernel import TRACE_GEN_ENV
from repro.gpu.ldst import EliminationMode
from repro.gpu.simulator import clear_trace_cache
from repro.runtime import DiskCache, SimPoint, SweepExecutor
from repro.runtime.executor import STREAM_ENV, _stream_cold

LAYERS = [
    make_spec(name="st-plain"),
    make_spec(name="st-strided", h=9, w=9, pad=0, stride=2),
]
OPTIONS = SimulationOptions(max_ctas=2, engine="fast")


@pytest.fixture(autouse=True)
def _fresh(monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    monkeypatch.delenv("REPRO_FAST_PATH", raising=False)
    monkeypatch.delenv(STREAM_ENV, raising=False)
    monkeypatch.delenv(TRACE_GEN_ENV, raising=False)
    obs.enable()
    obs.reset()
    clear_trace_cache()
    yield
    obs.disable()
    obs.reset()
    clear_trace_cache()
    simulator.set_trace_store(None)


def _points(**overrides):
    options = dataclasses.replace(OPTIONS, **overrides)
    return [
        SimPoint(spec, options=options, lhb_entries=entries)
        for spec in LAYERS
        for entries in (64, None)
    ]


def _streamed() -> int:
    return obs.counters_with_prefix("executor.").get(
        "executor.streamed_points", 0
    )


def test_cold_fast_points_stream_once_per_layer(tmp_path):
    """Cold sweep: first point of each layer streams, the rest replay
    the trace the stream teed into the store."""
    cache = DiskCache(tmp_path / "cache")
    SweepExecutor(jobs=1, cache=cache, backend="serial").run(_points())
    assert _streamed() == len(LAYERS)
    # The tee persisted every layer's trace for later warm replays.
    from repro.runtime import trace_key

    for spec in LAYERS:
        p = _points()[0]
        assert cache.has_trace(
            trace_key(spec, p.gpu, p.kernel, p.options)
        )


def test_streaming_off_never_streams(tmp_path):
    cache = DiskCache(tmp_path / "cache")
    executor = SweepExecutor(
        jobs=1, cache=cache, backend="serial", streaming="off"
    )
    executor.run(_points())
    assert _streamed() == 0


def test_env_override_disables_streaming(tmp_path, monkeypatch):
    monkeypatch.setenv(STREAM_ENV, "off")
    cache = DiskCache(tmp_path / "cache")
    SweepExecutor(jobs=1, cache=cache, backend="serial").run(_points())
    assert _streamed() == 0


def test_streaming_results_bit_identical(tmp_path):
    off = SweepExecutor(
        jobs=1, cache=DiskCache(tmp_path / "off"), backend="serial",
        streaming="off",
    ).run(_points())
    clear_trace_cache()
    obs.reset()
    on = SweepExecutor(
        jobs=1, cache=DiskCache(tmp_path / "on"), backend="serial"
    ).run(_points())
    assert _streamed() == len(LAYERS)
    for a, b in zip(off, on):
        assert dataclasses.asdict(a.stats) == dataclasses.asdict(b.stats)
        assert (a.cycles, a.time_ms) == (b.cycles, b.time_ms)


def test_warm_store_suppresses_streaming(tmp_path):
    """Traces already persisted are replayed from the store (the mmap
    hand-off), never regenerated through the streaming entry."""
    cache = DiskCache(tmp_path / "cache")
    points = _points()
    SweepExecutor(jobs=1, cache=cache, backend="serial").run(points)
    clear_trace_cache()
    obs.reset()
    for p in points:
        # Drop persisted results so the executor must re-simulate —
        # cold results, warm traces: nothing may stream.
        path = cache._path("results", p.cache_key())
        if path.exists():
            path.unlink()
    SweepExecutor(jobs=1, cache=cache, backend="serial").run(points)
    assert _streamed() == 0


def test_non_fast_tiers_never_stream(tmp_path):
    cache = DiskCache(tmp_path / "cache")
    for p in _points(engine="analytic") + _points(engine="event"):
        assert not _stream_cold(p, cache)


def test_loop_generator_disables_streaming(tmp_path, monkeypatch):
    monkeypatch.setenv(TRACE_GEN_ENV, "loop")
    cache = DiskCache(tmp_path / "cache")
    for p in _points():
        assert not _stream_cold(p, cache)


def test_streaming_validation():
    with pytest.raises(ValueError, match="streaming"):
        SweepExecutor(streaming="sometimes")


def test_process_workers_stream(tmp_path):
    """The streaming flag crosses the process-pool job tuple."""
    cache = DiskCache(tmp_path / "cache")
    executor = SweepExecutor(
        jobs=2, cache=cache, backend="processes", cutover=0
    )
    # One chunk per layer (the executor's natural chunking): the
    # chunk's first point streams, later points of the same layer find
    # the teed trace warm in the store.
    options = dataclasses.replace(OPTIONS)
    chunks = [
        [
            SimPoint(spec, options=options, lhb_entries=entries)
            for entries in (64, None)
        ]
        for spec in LAYERS
    ]
    executor.run_chunks(chunks)
    # Worker metrics merge back into this process's registry.
    assert _streamed() == len(LAYERS)


_RSS_CHILD = """\
import dataclasses, json, sys
from repro import obs
from repro.conv.workloads import layers_for_network
from repro.gpu.config import SimulationOptions
from repro.gpu.ldst import EliminationMode
from repro.runtime.executor import SimPoint, SweepExecutor

obs.enable()
points = [
    SimPoint(
        spec=dataclasses.replace(spec, batch=16),
        mode=EliminationMode.DUPLO,
        options=SimulationOptions(engine="fast"),
    )
    for spec in layers_for_network("yolo")
]
results = SweepExecutor(jobs=1, backend="serial").run(points)
manifest = obs.collect_manifest("rss_child", argv=sys.argv)
streamed = obs.counters_with_prefix("executor.streamed_points")
json.dump({
    "n": len(results),
    "streamed": streamed.get("executor.streamed_points", 0),
    "peak_rss_bytes": manifest.peak_rss_bytes,
}, sys.stdout)
"""


@pytest.mark.slow
def test_full_network_cold_sweep_rss_bounded():
    """Executor-driven cold yolo sweep stays under the committed RSS
    cap (the same invariant the perf-gate streaming lane enforces)."""
    env = dict(os.environ)
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(root, "src"), env.get("PYTHONPATH")) if p
    )
    env["REPRO_TRACE_BLOCK"] = "65536"
    proc = subprocess.run(
        [sys.executable, "-c", _RSS_CHILD],
        capture_output=True, text=True, env=env, check=True,
    )
    payload = json.loads(proc.stdout)
    assert payload["n"] == 6
    assert payload["streamed"] == payload["n"]
    assert payload["peak_rss_bytes"] is None or (
        payload["peak_rss_bytes"] < 512 * 2**20
    )
