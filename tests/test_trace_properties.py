"""Property-based invariants of trace generation and replay."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu.config import GPUConfig, KernelConfig, SimulationOptions
from repro.gpu.isa import (
    LOAD_A,
    LOAD_B,
    STORE_D,
    OUTPUT_BASE,
    WORKSPACE_BASE,
)
from repro.gpu.kernel import gemm_geometry, generate_sm_trace
from repro.gpu.ldst import EliminationMode, replay_trace
from repro.core.lhb import LoadHistoryBuffer

from tests.conftest import make_spec

GPU = GPUConfig(num_sms=1)


@st.composite
def small_specs(draw):
    c = draw(st.sampled_from([4, 8, 16]))
    stride = draw(st.sampled_from([1, 2]))
    h = draw(st.integers(6, 12))
    return make_spec(
        batch=draw(st.integers(1, 2)),
        h=h,
        w=h,
        c=c,
        filters=draw(st.sampled_from([8, 16])),
        pad=draw(st.integers(0, 1)),
        stride=stride,
    )


@st.composite
def kernels(draw):
    return KernelConfig(
        warp_runahead=draw(st.sampled_from([1, 4, 16])),
        cta_tile_m=draw(st.sampled_from([64, 128])),
        cta_tile_n=64,
    )


@settings(max_examples=20, deadline=None)
@given(spec=small_specs(), kernel=kernels())
def test_store_coverage(spec, kernel):
    """Every valid 16-row x 16-col D tile is stored exactly once, and
    store addresses never collide."""
    trace = generate_sm_trace(spec, GPU, kernel, SimulationOptions())
    geom = gemm_geometry(spec)
    stores = trace.address[trace.kind == STORE_D]
    assert len(np.unique(stores)) == len(stores)
    m_tiles = -(-geom.m // 16)
    n_tiles = -(-geom.n // 16)
    assert len(stores) == m_tiles * 16 * n_tiles  # 16 rows per tile


@settings(max_examples=20, deadline=None)
@given(spec=small_specs(), kernel=kernels())
def test_a_loads_touch_only_valid_tiles(spec, kernel):
    trace = generate_sm_trace(spec, GPU, kernel, SimulationOptions())
    geom = gemm_geometry(spec)
    a = trace.address[trace.kind == LOAD_A]
    offs = (a - WORKSPACE_BASE) // 2
    rows = offs // geom.lda
    cols = offs % geom.lda
    assert rows.min() >= 0 and rows.max() < geom.m_pad
    assert cols.min() >= 0 and cols.max() < geom.k_pad
    # Fragment bases are k-step aligned.
    assert (cols % 16 == 0).all()


@settings(max_examples=20, deadline=None)
@given(spec=small_specs(), kernel=kernels())
def test_every_kstep_covered_per_tile_row(spec, kernel):
    """Each valid 16-row block loads every k-step at least once
    (no k-column of the workspace is skipped)."""
    trace = generate_sm_trace(spec, GPU, kernel, SimulationOptions())
    geom = gemm_geometry(spec)
    a = trace.address[trace.kind == LOAD_A]
    offs = (a - WORKSPACE_BASE) // 2
    blocks = (offs // geom.lda) // 16
    ksteps = (offs % geom.lda) // 16
    seen = set(zip(blocks.tolist(), ksteps.tolist()))
    for blk in range(-(-geom.m // 16)):
        for t in range(geom.k_steps):
            assert (blk, t) in seen


@settings(max_examples=15, deadline=None)
@given(
    spec=small_specs(),
    entries=st.sampled_from([64, 256, None]),
    granularity=st.sampled_from(["fragment", "instruction"]),
)
def test_replay_conservation(spec, entries, granularity):
    """Service breakdown always partitions the loads; elimination
    never exceeds the theoretical duplicate count."""
    kernel = KernelConfig(warp_runahead=4)
    options = SimulationOptions(lhb_granularity=granularity)
    trace = generate_sm_trace(spec, GPU, kernel, options)
    lhb = LoadHistoryBuffer(num_entries=entries, lifetime=None)
    stats = replay_trace(trace, spec, GPU, options, EliminationMode.DUPLO, lhb)
    assert stats.breakdown.total == stats.loads_total
    assert stats.lhb_hits <= stats.lhb_lookups
    assert stats.eliminated_fragments <= stats.loads_workspace
    assert stats.unique_workspace_ids <= stats.workspace_instructions
    # Oracle bound: hits can never beat total-minus-unique.
    assert stats.lhb_hits <= (
        stats.workspace_instructions - stats.unique_workspace_ids
    )


@settings(max_examples=15, deadline=None)
@given(spec=small_specs())
def test_baseline_vs_duplo_traffic_ordering(spec):
    """Elimination can only reduce each memory level's traffic."""
    kernel = KernelConfig(warp_runahead=4)
    options = SimulationOptions()
    trace = generate_sm_trace(spec, GPU, kernel, options)
    base = replay_trace(
        trace, spec, GPU, options, EliminationMode.BASELINE, None
    )
    lhb = LoadHistoryBuffer(num_entries=None, lifetime=None)
    duplo = replay_trace(trace, spec, GPU, options, EliminationMode.DUPLO, lhb)
    assert duplo.l1_accesses <= base.l1_accesses
    assert duplo.dram_read_bytes <= base.dram_read_bytes
    assert duplo.dram_write_bytes == base.dram_write_bytes  # stores equal
