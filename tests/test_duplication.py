"""Duplication census (Section III-A decomposition)."""

import pytest

from repro.analysis.duplication import duplication_census
from repro.analysis.table2 import TOY_SPEC
from repro.conv.lowering import unique_element_count
from repro.conv.workloads import get_layer

from tests.conftest import make_spec


class TestToyExample:
    """The paper's 4x4 / 3x3 running example (Figures 1, 5, 6)."""

    CENSUS = duplication_census(TOY_SPEC)

    def test_totals(self):
        assert self.CENSUS.total == 36
        assert self.CENSUS.unique == 16  # the 16 input elements

    def test_categories_partition(self):
        c = self.CENSUS
        assert c.unique + c.intra_patch + c.inter_patch + c.padding == c.total

    def test_figure5_decomposition(self):
        """Horizontal striding duplicates [1,4],[0,-2],[-2,4] twice per
        row pair (intra); vertical striding duplicates two full 3-wide
        rows per patch pair (inter)."""
        assert self.CENSUS.intra_patch == 8
        assert self.CENSUS.inter_patch == 12

    def test_duplicate_fraction(self):
        assert self.CENSUS.duplicate_fraction == pytest.approx(20 / 36)


class TestRealLayers:
    def test_3x3_unit_stride_approaches_8_9(self):
        """Section V-C: the theoretical hit limit for the Table I mix
        is 88.9% = 1 - 1/9, dominated by 3x3 unit-stride layers."""
        c = duplication_census(get_layer("yolo", "C3").with_batch(1))
        assert c.duplicate_fraction == pytest.approx(8 / 9, abs=0.03)

    def test_unique_matches_analytic_count_when_no_padding(self):
        spec = make_spec(h=8, w=8, c=4, pad=0)
        c = duplication_census(spec)
        assert c.unique == unique_element_count(spec)
        assert c.padding == 0

    def test_stride_two_reduces_duplication(self):
        s1 = duplication_census(make_spec(h=9, w=9, pad=0, stride=1))
        s2 = duplication_census(make_spec(h=9, w=9, pad=0, stride=2))
        assert s2.duplicate_fraction < s1.duplicate_fraction

    def test_no_cross_image_duplication(self):
        """Section III-C: batch images never duplicate each other, so
        the duplicate fraction is batch-invariant."""
        b1 = duplication_census(make_spec(batch=1, h=6, w=6, c=2))
        b3 = duplication_census(make_spec(batch=3, h=6, w=6, c=2))
        assert b3.duplicate_fraction == pytest.approx(b1.duplicate_fraction)
        assert b3.total == 3 * b1.total
        assert b3.unique == 3 * b1.unique

    def test_1x1_filter_has_no_duplicates(self):
        c = duplication_census(make_spec(kh=1, kw=1, pad=0))
        assert c.duplicates == 0
        assert c.duplicate_fraction == 0.0

    def test_fractions_sum_to_one(self):
        c = duplication_census(make_spec(h=7, w=9, c=3, pad=2, kh=5, kw=5))
        assert sum(c.fractions().values()) == pytest.approx(1.0)

    def test_inter_patch_dominates_3x3(self):
        """With a 3x3 filter, two of the three rows of every receptive
        field repeat vertically: inter-patch > intra-patch."""
        c = duplication_census(get_layer("resnet", "C2").with_batch(1))
        assert c.inter_patch > c.intra_patch
