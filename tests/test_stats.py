"""Statistics containers: breakdowns, rates, scaling, gmean."""

import math

import pytest

from repro.gpu.stats import LayerStats, MemoryBreakdown, geometric_mean


class TestMemoryBreakdown:
    def test_total_and_fractions(self):
        b = MemoryBreakdown(lhb=10, l1=60, l2=20, dram=10)
        assert b.total == 100
        f = b.fractions()
        assert f["l1"] == 0.6
        assert sum(f.values()) == pytest.approx(1.0)

    def test_empty_fractions(self):
        assert MemoryBreakdown().fractions() == {
            "lhb": 0.0,
            "l1": 0.0,
            "l2": 0.0,
            "dram": 0.0,
            "shared": 0.0,
        }

    def test_scaled(self):
        b = MemoryBreakdown(lhb=1, l1=2, l2=3, dram=4).scaled(2.0)
        assert (b.lhb, b.l1, b.l2, b.dram) == (2, 4, 6, 8)


class TestLayerStats:
    def test_rates(self):
        s = LayerStats(
            loads_total=100,
            loads_workspace=60,
            lhb_lookups=60,
            lhb_hits=30,
            eliminated_fragments=30,
            workspace_instructions=60,
            unique_workspace_ids=20,
            l1_accesses=50,
            l1_hits=40,
            l2_accesses=10,
            l2_hits=5,
        )
        assert s.lhb_hit_rate == 0.5
        assert s.elimination_rate == 0.3
        assert s.theoretical_hit_limit == pytest.approx(1 - 20 / 60)
        assert s.l1_hit_rate == 0.8
        assert s.l2_hit_rate == 0.5
        assert s.eliminated_loads == 30

    def test_zero_denominators(self):
        s = LayerStats()
        assert s.lhb_hit_rate == 0.0
        assert s.elimination_rate == 0.0
        assert s.theoretical_hit_limit == 0.0
        assert s.l1_hit_rate == 0.0

    def test_scaled_multiplies_counts(self):
        s = LayerStats(loads_total=10, lhb_hits=4, dram_read_bytes=128)
        t = s.scaled(2.5)
        assert t.loads_total == 25
        assert t.lhb_hits == 10
        assert t.dram_read_bytes == 320

    def test_scaled_preserves_rates(self):
        s = LayerStats(
            loads_total=100, lhb_lookups=50, lhb_hits=25,
            workspace_instructions=50, unique_workspace_ids=10,
        )
        t = s.scaled(3.0)
        assert t.lhb_hit_rate == s.lhb_hit_rate
        assert t.theoretical_hit_limit == s.theoretical_hit_limit


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_single(self):
        assert geometric_mean([7.0]) == pytest.approx(7.0)

    def test_matches_log_definition(self):
        vals = [1.1, 1.25, 1.4, 0.9]
        expected = math.exp(sum(math.log(v) for v in vals) / 4)
        assert geometric_mean(vals) == pytest.approx(expected)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
