"""Statistics containers: breakdowns, rates, scaling, gmean."""

import math

import pytest

from repro.gpu.stats import LayerStats, MemoryBreakdown, geometric_mean


class TestMemoryBreakdown:
    def test_total_and_fractions(self):
        b = MemoryBreakdown(lhb=10, l1=60, l2=20, dram=10)
        assert b.total == 100
        f = b.fractions()
        assert f["l1"] == 0.6
        assert sum(f.values()) == pytest.approx(1.0)

    def test_empty_fractions(self):
        assert MemoryBreakdown().fractions() == {
            "lhb": 0.0,
            "l1": 0.0,
            "l2": 0.0,
            "dram": 0.0,
            "shared": 0.0,
        }

    def test_scaled(self):
        b = MemoryBreakdown(lhb=1, l1=2, l2=3, dram=4).scaled(2.0)
        assert (b.lhb, b.l1, b.l2, b.dram) == (2, 4, 6, 8)


class TestLayerStats:
    def test_rates(self):
        s = LayerStats(
            loads_total=100,
            loads_workspace=60,
            lhb_lookups=60,
            lhb_hits=30,
            eliminated_fragments=30,
            workspace_instructions=60,
            unique_workspace_ids=20,
            l1_accesses=50,
            l1_hits=40,
            l2_accesses=10,
            l2_hits=5,
        )
        assert s.lhb_hit_rate == 0.5
        assert s.elimination_rate == 0.3
        assert s.theoretical_hit_limit == pytest.approx(1 - 20 / 60)
        assert s.l1_hit_rate == 0.8
        assert s.l2_hit_rate == 0.5
        assert s.eliminated_loads == 30

    def test_zero_denominators(self):
        s = LayerStats()
        assert s.lhb_hit_rate == 0.0
        assert s.elimination_rate == 0.0
        assert s.theoretical_hit_limit == 0.0
        assert s.l1_hit_rate == 0.0

    def test_scaled_multiplies_counts(self):
        s = LayerStats(loads_total=10, lhb_hits=4, dram_read_bytes=128)
        t = s.scaled(2.5)
        assert t.loads_total == 25
        assert t.lhb_hits == 10
        assert t.dram_read_bytes == 320

    @pytest.mark.parametrize("factor", [2.5, 0.3, 7 / 3, 1.015625, 13.7])
    def test_scaled_preserves_accounting_invariants(self, factor):
        """Regression: counters used to be rounded independently, so a
        fractional factor could yield ``lhb_hits > lhb_lookups``, a
        load mix not summing to ``loads_total``, and DRAM bytes that
        were not a whole number of lines.  Scaling must now preserve
        every identity the unscaled stats satisfy.

        The counts are chosen so that banker's rounding genuinely
        disagrees across fields (e.g. 37 * 2.5 and 21 * 2.5 both land
        on .5), which is exactly where the old code broke.
        """
        s = LayerStats(
            loads_total=58,
            loads_workspace=37,
            loads_filter=21,
            loads_input=0,
            stores=5,
            workspace_instructions=9,
            lhb_lookups=9,
            lhb_hits=5,
            eliminated_fragments=20,
            unique_workspace_ids=4,
            l1_accesses=38,
            l1_hits=29,
            l2_accesses=9,
            l2_hits=4,
            dram_read_bytes=5 * 128,
            dram_write_bytes=5 * 64,
            breakdown=MemoryBreakdown(lhb=20, l1=29, l2=4, dram=5),
        )
        # The fixture itself satisfies the simulator's identities.
        assert s.loads_workspace + s.loads_filter + s.loads_input == s.loads_total
        assert s.l1_accesses == s.loads_total - s.eliminated_fragments

        t = s.scaled(factor)
        assert t.loads_workspace + t.loads_filter + t.loads_input == t.loads_total
        assert t.lhb_hits <= t.lhb_lookups
        assert t.unique_workspace_ids <= t.workspace_instructions
        assert t.eliminated_fragments <= t.loads_total
        assert t.l1_accesses == (
            t.loads_total - t.eliminated_fragments - t.breakdown.shared
        )
        assert t.l1_hits <= t.l1_accesses
        assert t.l2_accesses == t.l1_accesses - t.l1_hits
        assert t.l2_hits <= t.l2_accesses
        assert t.dram_read_bytes == (t.l2_accesses - t.l2_hits) * 128
        assert t.dram_write_bytes == t.stores * 64
        assert t.breakdown.lhb == t.eliminated_fragments
        assert t.breakdown.l1 == t.l1_hits
        assert t.breakdown.l2 == t.l2_hits
        assert t.breakdown.dram == t.l2_accesses - t.l2_hits

    def test_scaled_independent_rounding_would_break(self):
        """Documents the adversarial case: independently rounding the
        load mix at factor 2.5 disagrees with the rounded total, so
        the derived path is doing real work."""
        parts = round(37 * 2.5) + round(21 * 2.5)
        assert parts != round(58 * 2.5)
        s = LayerStats(loads_total=58, loads_workspace=37, loads_filter=21)
        assert s.scaled(2.5).loads_total == parts

    def test_scaled_preserves_rates(self):
        s = LayerStats(
            loads_total=100, lhb_lookups=50, lhb_hits=25,
            workspace_instructions=50, unique_workspace_ids=10,
        )
        t = s.scaled(3.0)
        assert t.lhb_hit_rate == s.lhb_hit_rate
        assert t.theoretical_hit_limit == s.theoretical_hit_limit


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_single(self):
        assert geometric_mean([7.0]) == pytest.approx(7.0)

    def test_matches_log_definition(self):
        vals = [1.1, 1.25, 1.4, 0.9]
        expected = math.exp(sum(math.log(v) for v in vals) / 4)
        assert geometric_mean(vals) == pytest.approx(expected)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
