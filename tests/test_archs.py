"""Architecture zoo: preset consistency plus the per-arch lock-in matrix.

The matrix is the PR's acceptance property: every preset in
``repro.gpu.config.ARCHS`` crossed with {DUPLO, WIR} must replay
*natively* on the vectorised fast path — zero ``fastpath.fallback``
counters — and stay bit-identical to the event-driven reference, on
both a conv layer and an attention GEMM.
"""

import dataclasses

import pytest

from repro import obs
from repro.conv.attention import gemm_layer
from repro.energy.model import AreaModel
from repro.gpu.config import (
    ARCHS,
    BASELINE_KERNEL,
    DEFAULT_ARCH,
    GPUConfig,
    SimulationOptions,
    TITAN_V,
    arch_names,
    get_arch,
    validate_arch,
)
from repro.gpu.ldst import EliminationMode
from repro.gpu.simulator import simulate_layer

from tests.conftest import make_spec

OPTIONS = SimulationOptions(max_ctas=2)
CONV_SPEC = make_spec(name="archconv", batch=2, h=6, w=6, c=8, filters=16)
GEMM_SPEC = gemm_layer("archgemm", batch=2, m=24, n=32, k=48)

ARCH_MODE_MATRIX = [
    pytest.param(arch, mode, id=f"{arch}-{mode.name.lower()}")
    for arch in sorted(ARCHS)
    for mode in (EliminationMode.DUPLO, EliminationMode.WIR)
]


class TestPresetConsistency:
    def test_volta_derivations(self):
        gpu = ARCHS["volta"].gpu
        # The canonical 16x16x16 fp16 point: 32 B fragments, 64 B
        # accumulator stores, 4096 MACs per mma.
        assert gpu.frag_bytes == 32
        assert gpu.frag_shift == 5
        assert gpu.store_frag_bytes == 64
        assert gpu.mma_macs == 4096

    def test_volta_preset_is_titan_v(self):
        assert ARCHS["volta"].gpu == TITAN_V

    def test_names_match(self):
        for name, preset in ARCHS.items():
            assert preset.name == name
            assert preset.gpu.name == name

    def test_fragments_are_pow2(self):
        for preset in ARCHS.values():
            frag = preset.gpu.frag_bytes
            assert frag & (frag - 1) == 0, preset.name

    def test_presets_validate_against_their_kernels(self):
        for preset in ARCHS.values():
            validate_arch(preset.gpu, preset.kernel)

    def test_narrow_operand_presets(self):
        assert ARCHS["ampere-int8"].gpu.element_bytes == 1
        assert ARCHS["hopper-fp8"].gpu.element_bytes == 1
        assert ARCHS["turing"].gpu == dataclasses.replace(
            ARCHS["turing"].gpu
        )  # frozen + replaceable

    def test_nonsquare_tiles(self):
        gpu = ARCHS["ampere"].gpu
        assert (gpu.tile_m, gpu.tile_n, gpu.tile_k) == (16, 8, 16)
        assert ARCHS["turing"].gpu.tile_k == 8


class TestGetArch:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_ARCH", raising=False)
        assert get_arch().name == DEFAULT_ARCH == "volta"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARCH", "ampere-int8")
        assert get_arch().name == "ampere-int8"

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARCH", "ampere")
        assert get_arch("turing").name == "turing"

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="kepler"):
            get_arch("kepler")

    def test_arch_names_ordering(self):
        # Registry order: the Volta default first, then the zoo.
        assert list(arch_names()) == list(ARCHS)
        assert list(arch_names())[0] == DEFAULT_ARCH


class TestValidateArch:
    def test_rejects_indivisible_warp_tile(self):
        gpu = GPUConfig(name="odd", tile_m=24, tile_k=16, element_bytes=2)
        with pytest.raises(ValueError, match="warp_tile_m"):
            validate_arch(gpu, BASELINE_KERNEL)

    def test_rejects_indivisible_stage(self):
        # stage_k=48 passes KernelConfig's own legacy-tile check but
        # does not decompose into ampere-int8's 32-deep k-steps.
        kernel = dataclasses.replace(BASELINE_KERNEL, stage_k=48)
        with pytest.raises(ValueError, match="stage_k"):
            validate_arch(ARCHS["ampere-int8"].gpu, kernel)

    def test_rejects_non_pow2_fragment(self):
        with pytest.raises(ValueError, match="power of two"):
            GPUConfig(tile_k=12, element_bytes=2)


class TestAreaModelForArch:
    def test_volta_keeps_canonical_width(self):
        assert AreaModel.for_arch(ARCHS["volta"].gpu).element_id_bits == 32

    def test_narrow_fragment_widens_ids(self):
        # Turing: tile_k=8 x fp16 -> 16 B fragments -> one extra bit.
        assert AreaModel.for_arch(ARCHS["turing"].gpu).element_id_bits == 33

    def test_wide_fragment_never_shrinks(self):
        gpu = GPUConfig(name="wide", tile_k=32, element_bytes=2)
        assert AreaModel.for_arch(gpu).element_id_bits == 32

    def test_overhead_stays_small_across_zoo(self):
        for preset in ARCHS.values():
            overhead = AreaModel.for_arch(preset.gpu).area_overhead(1024)
            assert 0 < overhead < 0.05, preset.name


@pytest.mark.parametrize("spec", [CONV_SPEC, GEMM_SPEC], ids=["conv", "gemm"])
@pytest.mark.parametrize("arch,mode", ARCH_MODE_MATRIX)
class TestArchDifferentialMatrix:
    """Every preset x mode x workload class replays natively."""

    def test_fast_path_native_and_bit_identical(self, arch, mode, spec):
        preset = ARCHS[arch]
        obs.enable()
        obs.reset()
        fast = simulate_layer(
            spec,
            mode,
            gpu=preset.gpu,
            kernel=preset.kernel,
            options=dataclasses.replace(OPTIONS, fast_path="on"),
        )
        assert obs.counters_with_prefix("fastpath.fallback") == {}
        event = simulate_layer(
            spec,
            mode,
            gpu=preset.gpu,
            kernel=preset.kernel,
            options=dataclasses.replace(OPTIONS, fast_path="off"),
        )
        assert dataclasses.asdict(fast.stats) == dataclasses.asdict(
            event.stats
        )
        assert fast.stats.loads_total > 0


@pytest.mark.parametrize("mode", [EliminationMode.DUPLO, EliminationMode.WIR])
def test_env_selected_preset_replays_natively(arch_preset, mode):
    """Whatever preset ``$REPRO_ARCH`` selects (the CI arch-matrix
    lane cycles it through the zoo) must hold the same fast-path
    contract as the explicit matrix above."""
    obs.enable()
    obs.reset()
    result = simulate_layer(
        GEMM_SPEC,
        mode,
        gpu=arch_preset.gpu,
        kernel=arch_preset.kernel,
        options=dataclasses.replace(OPTIONS, fast_path="on"),
    )
    assert obs.counters_with_prefix("fastpath.fallback") == {}
    assert result.stats.loads_total > 0
