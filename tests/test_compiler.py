"""Compiler support: the 32-byte convolution blob and Section IV-D."""

import pytest

from repro.core.compiler import (
    ConvolutionInfo,
    build_convolution_info,
    compiler_only_tag_bytes,
)
from repro.conv.workloads import get_layer

from tests.conftest import make_spec


class TestConvolutionInfo:
    def test_blob_is_32_bytes(self, tiny_spec):
        """The paper: "convolution information ... totals only 32
        bytes per kernel"."""
        info = build_convolution_info(tiny_spec, 0x1000)
        assert info.encoded_bytes == 32
        assert len(info.encode()) == 32

    def test_fields_from_spec(self, tiny_spec):
        info = build_convolution_info(tiny_spec, 0x1000)
        assert info.input_width == 8
        assert info.filter_height == 3
        assert info.stride == 1
        assert info.batch == 1
        assert info.output_width == 8
        assert info.workspace_base == 0x1000

    def test_transposed_compiled_to_effective(self, transposed_spec):
        info = build_convolution_info(transposed_spec, 0)
        eff = transposed_spec.effective_spec()
        assert info.stride == 1
        assert info.input_height == eff.in_height

    def test_default_lda_tile_aligned(self, tiny_spec):
        info = build_convolution_info(tiny_spec, 0)
        assert info.lda % 16 == 0
        assert info.lda >= tiny_spec.filter_volume

    def test_explicit_lda(self, tiny_spec):
        info = build_convolution_info(tiny_spec, 0, lda=64)
        assert info.lda == 64

    def test_encode_roundtrips_geometry(self):
        spec = get_layer("resnet", "C2")
        info = build_convolution_info(spec, 0x1000_0000)
        blob = info.encode()
        assert isinstance(blob, bytes)
        # Re-encoding is deterministic.
        assert blob == build_convolution_info(spec, 0x1000_0000).encode()


class TestCompilerOnlyCosts:
    def test_yolo_c2_tag_storage_matches_paper(self):
        """~6.8M loads x 4 KB tags = 27.2 GB (Section IV-D)."""
        loads = 6_800_000
        assert compiler_only_tag_bytes(loads) == pytest.approx(
            27.2e9, rel=0.01
        )

    def test_minimal_variant(self):
        assert compiler_only_tag_bytes(100, tag_bytes_per_load=4) == 400

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            compiler_only_tag_bytes(-1)
