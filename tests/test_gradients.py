"""Backward-pass substrate: adjoint identities and dgrad geometry."""

import numpy as np
import pytest

from repro.conv.direct import direct_convolution
from repro.conv.gradients import (
    data_gradient,
    data_gradient_spec,
    weight_gradient,
    weight_gradient_gemm_shape,
)
from repro.conv.workloads import ALL_LAYERS, get_layer

from tests.conftest import make_spec


def problem(spec, rng):
    x = rng.standard_normal(spec.input_nhwc)
    f = rng.standard_normal(spec.filter_nhwc)
    out = spec.output_shape
    dy = rng.standard_normal((spec.batch, out.height, out.width,
                              spec.num_filters))
    return x, f, dy


SPECS = [
    dict(),
    dict(pad=0),
    dict(h=9, w=9, pad=0, stride=2),
    dict(batch=2, h=6, w=6, c=3, filters=5, kh=5, kw=5, pad=2),
    dict(h=4, w=4, c=8, filters=4, kh=5, kw=5, pad=2, stride=2,
         transposed=True, output_pad=1),
]


class TestAdjointIdentities:
    """<conv(x,f), dy> == <x, dgrad(dy,f)> == <f, wgrad(x,dy)>."""

    @pytest.mark.parametrize("kwargs", SPECS)
    def test_data_gradient_adjoint(self, rng, kwargs):
        spec = make_spec(**kwargs)
        x, f, dy = problem(spec, rng)
        lhs = float((direct_convolution(spec, x, f) * dy).sum())
        rhs = float((x * data_gradient(spec, dy, f)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-9)

    @pytest.mark.parametrize("kwargs", SPECS)
    def test_weight_gradient_adjoint(self, rng, kwargs):
        spec = make_spec(**kwargs)
        x, f, dy = problem(spec, rng)
        lhs = float((direct_convolution(spec, x, f) * dy).sum())
        rhs = float((f * weight_gradient(spec, x, dy)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-9)

    def test_weight_gradient_matches_finite_difference(self, rng):
        spec = make_spec(h=5, w=5, c=2, filters=2, pad=1)
        x, f, dy = problem(spec, rng)
        dw = weight_gradient(spec, x, dy)
        eps = 1e-6
        f2 = f.copy()
        f2[1, 2, 1, 0] += eps
        loss = lambda ff: float((direct_convolution(spec, x, ff) * dy).sum())
        numeric = (loss(f2) - loss(f)) / eps
        assert dw[1, 2, 1, 0] == pytest.approx(numeric, rel=1e-4)


class TestShapes:
    def test_gradient_shapes(self, tiny_spec, rng):
        x, f, dy = problem(tiny_spec, rng)
        assert weight_gradient(tiny_spec, x, dy).shape == f.shape
        assert data_gradient(tiny_spec, dy, f).shape == x.shape

    def test_bad_dy_rejected(self, tiny_spec, rng):
        x, f, _ = problem(tiny_spec, rng)
        with pytest.raises(ValueError, match="output-grad"):
            weight_gradient(tiny_spec, x, np.zeros((1, 2, 2, 8)))

    def test_wgrad_gemm_shape_transposes_m_and_k(self, tiny_spec):
        g = tiny_spec.gemm_shape
        wg = weight_gradient_gemm_shape(tiny_spec)
        assert (wg.m, wg.n, wg.k) == (g.k, g.n, g.m)
        assert wg.macs == g.macs


class TestDataGradientSpec:
    def test_unit_stride_is_full_correlation(self, tiny_spec):
        d = data_gradient_spec(tiny_spec)
        assert not d.transposed
        assert d.pad == tiny_spec.filter_height - 1 - tiny_spec.pad
        assert d.in_channels == tiny_spec.num_filters
        assert d.num_filters == tiny_spec.in_channels

    def test_output_recovers_input_extent(self):
        for kwargs in SPECS[:3]:
            spec = make_spec(**kwargs)
            d = data_gradient_spec(spec)
            out = d.output_shape
            assert (out.height, out.width) >= (
                spec.in_height,
                spec.in_width,
            ), (spec, d)

    def test_strided_forward_gives_transposed_dgrad(self, strided_spec):
        d = data_gradient_spec(strided_spec)
        assert d.transposed
        assert d.stride == strided_spec.stride

    def test_macs_match_forward(self, tiny_spec):
        """dgrad moves the same MAC volume as the forward conv."""
        d = data_gradient_spec(tiny_spec)
        assert d.gemm_shape.macs == pytest.approx(
            tiny_spec.gemm_shape.macs, rel=0.3
        )

    def test_table1_layers_all_have_dgrad_specs(self):
        for spec in ALL_LAYERS:
            d = data_gradient_spec(spec)
            assert d.batch == spec.batch
            assert d.gemm_shape.macs > 0

    def test_dgrad_of_3x3_has_duplication(self):
        d = data_gradient_spec(get_layer("yolo", "C3"))
        assert d.duplication_factor > 5
