"""Functional tensor-core execution (octets / threadgroups / FEDPs)."""

import numpy as np
import pytest

from repro.gpu.wmma import (
    FEDP_WIDTH,
    OCTETS_PER_WARP,
    WMMA,
    fedp,
    octet_operand_cols,
    octet_operand_rows,
    octet_output_quadrant,
    operand_sharing,
    threadgroup_block,
    warp_mma,
)


def random_tiles(rng):
    a = rng.standard_normal((16, 16))
    b = rng.standard_normal((16, 16))
    c = rng.standard_normal((16, 16))
    return a, b, c


class TestWarpMma:
    def test_matches_numpy_gemm(self, rng):
        a, b, c = random_tiles(rng)
        d, _ = warp_mma(a, b, c)
        np.testing.assert_allclose(d, a @ b + c, rtol=1e-12)

    def test_zero_accumulator(self, rng):
        a, b, _ = random_tiles(rng)
        d, _ = warp_mma(a, b, np.zeros((16, 16)))
        np.testing.assert_allclose(d, a @ b, rtol=1e-12)

    def test_shape_validation(self, rng):
        a, b, c = random_tiles(rng)
        with pytest.raises(ValueError, match="A must be 16x16"):
            warp_mma(a[:8], b, c)

    def test_fedp_op_count(self, rng):
        """16x16x16 MMA = 4096 MACs = 1024 four-element dot products."""
        a, b, c = random_tiles(rng)
        _, traces = warp_mma(a, b, c)
        assert sum(t.fedp_ops for t in traces) == 1024
        # Evenly split across the four octets.
        assert all(t.fedp_ops == 256 for t in traces)


class TestOctetGeometry:
    def test_quadrants_tile_the_output(self):
        covered = np.zeros((16, 16), dtype=int)
        for octet in range(OCTETS_PER_WARP):
            rows, cols = octet_output_quadrant(octet)
            covered[rows, cols] += 1
        assert (covered == 1).all()

    def test_bad_octet_rejected(self):
        with pytest.raises(ValueError):
            octet_output_quadrant(4)

    def test_operand_slices_match_quadrants(self):
        for octet in range(4):
            rows, cols = octet_output_quadrant(octet)
            assert octet_operand_rows(octet) == rows
            assert octet_operand_cols(octet) == cols

    def test_dual_load_story(self, rng):
        """Section II-B: each half of A and B is consumed by exactly
        two octets — the source of the dual register copies and the
        doubled load requests the LHB later filters."""
        a, b, c = random_tiles(rng)
        _, traces = warp_mma(a, b, c)
        sharing = operand_sharing(traces)
        assert sharing["a_half_consumers"] == 2
        assert sharing["b_half_consumers"] == 2
        assert sharing["distinct_a_halves"] == 2
        assert sharing["distinct_b_halves"] == 2


class TestBuildingBlocks:
    def test_fedp(self):
        assert fedp(
            np.array([1.0, 2, 3, 4]), np.array([1.0, 1, 1, 1]), 0.5
        ) == pytest.approx(10.5)

    def test_fedp_validates_width(self):
        with pytest.raises(ValueError):
            fedp(np.zeros(3), np.zeros(3), 0.0)

    def test_threadgroup_block_is_4x8(self, rng):
        a_half = rng.standard_normal((8, 16))
        b_half = rng.standard_normal((16, 8))
        c = rng.standard_normal((4, 8))
        block, ops = threadgroup_block(a_half, b_half, c, slice(0, 4))
        assert block.shape == (4, 8)
        np.testing.assert_allclose(block, a_half[:4] @ b_half + c, rtol=1e-12)
        assert ops == 4 * 8 * (16 // FEDP_WIDTH)
