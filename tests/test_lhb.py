"""Load history buffer: hits, conflicts, lifetime, associativity."""

import pytest

from repro.core.lhb import LHBStats, LoadHistoryBuffer


def lhb(**kwargs):
    defaults = dict(num_entries=16, assoc=1, lifetime=None, hashed_index=False)
    defaults.update(kwargs)
    return LoadHistoryBuffer(**defaults)


class TestBasicAccess:
    def test_first_access_misses(self):
        buf = lhb()
        assert not buf.access(element_id=3, batch_id=0, dest_reg=7).hit

    def test_repeat_access_hits_and_returns_holder(self):
        buf = lhb()
        buf.access(3, 0, dest_reg=7)
        result = buf.access(3, 0, dest_reg=9)
        assert result.hit
        assert result.reg == 7

    def test_different_batch_is_different_tag(self):
        buf = lhb()
        buf.access(3, 0, 1)
        assert not buf.access(3, 1, 2).hit

    def test_different_pid_is_different_tag(self):
        buf = lhb()
        buf.access(3, 0, 1, pid=0)
        assert not buf.access(3, 0, 2, pid=1).hit

    def test_direct_mapped_conflict_replaces(self):
        buf = lhb(num_entries=4)
        buf.access(1, 0, 1)
        buf.access(5, 0, 2)  # 5 % 4 == 1: replaces entry for 1
        assert buf.stats.conflict_replacements == 1
        assert not buf.access(1, 0, 3).hit  # replaces back
        assert buf.stats.conflict_replacements == 2

    def test_same_index_different_tag_is_miss_not_hit(self):
        buf = lhb(num_entries=4)
        buf.access(1, 0, 1)
        assert not buf.access(5, 0, 2).hit


class TestAssociativity:
    def test_two_way_avoids_single_conflict(self):
        buf = lhb(num_entries=8, assoc=2)
        buf.access(1, 0, 1)
        buf.access(5, 0, 2)  # same set, second way
        assert buf.access(1, 0, 3).hit
        assert buf.access(5, 0, 4).hit

    def test_lru_eviction_order(self):
        buf = lhb(num_entries=8, assoc=2)
        buf.access(1, 0, 1)
        buf.access(5, 0, 2)
        buf.access(1, 0, 3)  # refresh 1 -> 5 becomes LRU
        buf.access(9, 0, 4)  # evicts 5
        assert buf.access(1, 0, 5).hit
        assert not buf.access(5, 0, 6).hit

    def test_assoc_must_divide_entries(self):
        with pytest.raises(ValueError, match="divide"):
            LoadHistoryBuffer(num_entries=10, assoc=4)

    def test_full_assoc_limit(self):
        buf = lhb(num_entries=4, assoc=4)
        for e in (0, 1, 2, 3):
            buf.access(e, 0, e)
        for e in (0, 1, 2, 3):
            assert buf.access(e, 0, 9).hit


class TestOracle:
    def test_unbounded_capacity(self):
        buf = lhb(num_entries=None)
        for e in range(10000):
            buf.access(e, 0, e)
        for e in range(10000):
            assert buf.access(e, 0, 0).hit
        assert buf.is_oracle

    def test_oracle_has_no_storage(self):
        with pytest.raises(ValueError, match="no physical storage"):
            lhb(num_entries=None).storage_bits()


class TestLifetime:
    def test_entry_expires_after_window(self):
        buf = lhb(lifetime=3)
        buf.access(1, 0, 1)  # seq 1, expires at 4
        buf.access(2, 0, 2)
        buf.access(3, 0, 3)
        buf.access(4, 0, 4)  # seq 4
        assert not buf.access(1, 0, 5).hit  # seq 5 >= 4: expired
        assert buf.stats.expired_misses == 1

    def test_hit_relays_lifetime(self):
        buf = lhb(lifetime=3)
        buf.access(1, 0, 1)  # expires at seq 4
        buf.access(2, 0, 2)
        buf.access(1, 0, 3)  # hit relays: now expires at seq 6
        buf.access(3, 0, 4)
        assert buf.access(1, 0, 5).hit  # would have expired without relay

    def test_oracle_respects_lifetime(self):
        buf = lhb(num_entries=None, lifetime=2)
        buf.access(1, 0, 1)
        buf.access(2, 0, 2)
        buf.access(3, 0, 3)
        assert not buf.access(1, 0, 4).hit

    def test_invalid_lifetime(self):
        with pytest.raises(ValueError, match="lifetime"):
            LoadHistoryBuffer(lifetime=0)


class TestInvalidateAndFlush:
    def test_store_invalidation(self):
        buf = lhb()
        buf.access(1, 0, 1)
        assert buf.invalidate(1, 0)
        assert not buf.access(1, 0, 2).hit
        assert buf.stats.store_invalidations == 1

    def test_invalidate_missing_tag(self):
        buf = lhb()
        assert not buf.invalidate(1, 0)

    def test_invalidate_oracle(self):
        buf = lhb(num_entries=None)
        buf.access(1, 0, 1)
        assert buf.invalidate(1, 0)
        assert not buf.access(1, 0, 2).hit

    def test_invalidate_expired_entry_not_counted(self):
        """A store hitting an already-dead entry must release it
        without bumping store_invalidations (the register no longer
        holds the datum, so there is nothing live to invalidate)."""
        buf = lhb(lifetime=2)
        buf.access(1, 0, 1)  # seq 1, expires at 3
        buf.access(2, 0, 2)
        buf.access(3, 0, 3)  # seq 3: entry for 1 is now dead
        assert not buf.invalidate(1, 0)
        assert buf.stats.store_invalidations == 0
        # The dead entry was still released, not merely skipped.
        assert all(e.tag[0] != 1 for ways in buf._sets for e in ways)

    def test_invalidate_expired_entry_oracle(self):
        buf = lhb(num_entries=None, lifetime=2)
        buf.access(1, 0, 1)
        buf.access(2, 0, 2)
        buf.access(3, 0, 3)  # entry for 1 expired
        assert not buf.invalidate(1, 0)
        assert buf.stats.store_invalidations == 0
        assert (1, 0, 0) not in buf._oracle

    def test_invalidate_live_then_expired_mix(self):
        """Only the live release counts; the later dead one does not."""
        buf = lhb(lifetime=3)
        buf.access(1, 0, 1)
        assert buf.invalidate(1, 0)  # live: counted
        buf.access(2, 0, 2)
        buf.access(3, 0, 3)
        buf.access(4, 0, 4)
        buf.access(5, 0, 5)  # seq 5: entry for 2 (expires at 5) is dead
        assert not buf.invalidate(2, 0)
        assert buf.stats.store_invalidations == 1

    def test_flush_clears_everything(self):
        buf = lhb()
        for e in range(8):
            buf.access(e, 0, e)
        buf.flush()
        assert buf.live_entries() == 0
        assert not buf.access(1, 0, 9).hit


class TestStatsAndMisc:
    def test_counters(self):
        buf = lhb(num_entries=4)
        buf.access(1, 0, 1)
        buf.access(1, 0, 2)
        buf.access(2, 0, 3)
        s = buf.stats
        assert s.lookups == 3
        assert s.hits == 1
        assert s.misses == 2
        assert s.compulsory_misses == 2
        assert s.hit_rate == pytest.approx(1 / 3)

    def test_stats_merge(self):
        a = LHBStats(lookups=10, hits=5, misses=5)
        b = LHBStats(lookups=2, hits=1, misses=1)
        merged = a.merge(b)
        assert merged.lookups == 12
        assert merged.hit_rate == 0.5

    def test_empty_hit_rate(self):
        assert LHBStats().hit_rate == 0.0

    def test_live_entries(self):
        buf = lhb(lifetime=100)
        buf.access(1, 0, 1)
        buf.access(2, 0, 2)
        assert buf.live_entries() == 2

    def test_storage_bits_paper_default(self):
        buf = LoadHistoryBuffer(num_entries=1024)
        # 42-bit tag + 10-bit register ID per entry.
        assert buf.storage_bits() == 1024 * 52

    def test_tag_bits_fields_are_explicit(self):
        """22 upper element bits + 10 batch + 10 PID for the paper
        default; no width is baked into an opaque constant."""
        buf = LoadHistoryBuffer(num_entries=1024)
        assert buf.tag_bits() == 42
        assert buf.tag_bits(element_bits=32, batch_bits=10, pid_bits=10) == 42
        # Widening the PID field must widen the tag by the same amount.
        assert buf.tag_bits(pid_bits=16) == 48
        assert buf.tag_bits(batch_bits=0, pid_bits=0) == 22

    def test_tag_bits_tracks_set_count(self):
        """More sets imply more index bits and a narrower stored tag."""
        small = LoadHistoryBuffer(num_entries=16)
        large = LoadHistoryBuffer(num_entries=1024)
        assert small.tag_bits() - large.tag_bits() == 6  # 2^10 vs 2^4 sets
        # Associativity reduces the set count, restoring tag bits.
        assoc4 = LoadHistoryBuffer(num_entries=1024, assoc=4)
        assert assoc4.tag_bits() == large.tag_bits() + 2

    def test_tag_bits_oracle_rejected(self):
        with pytest.raises(ValueError, match="no physical storage"):
            LoadHistoryBuffer(num_entries=None).tag_bits()

    def test_repr_mentions_geometry(self):
        assert "1024" in repr(LoadHistoryBuffer(num_entries=1024))
        assert "oracle" in repr(LoadHistoryBuffer(num_entries=None))

    def test_invalid_entries(self):
        with pytest.raises(ValueError, match="num_entries"):
            LoadHistoryBuffer(num_entries=0)

    def test_hashed_index_spreads_strided_ids(self):
        """Stride-64 element IDs (a 64-channel workspace) must not
        collapse onto a few sets under the default hash."""
        plain = LoadHistoryBuffer(num_entries=256, hashed_index=False)
        hashed = LoadHistoryBuffer(num_entries=256, hashed_index=True)
        ids = [i * 64 for i in range(256)]
        assert len({plain._index(e) for e in ids}) <= 4
        assert len({hashed._index(e) for e in ids}) > 64
