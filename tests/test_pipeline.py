"""Cycle-stepped pipeline demonstrator (Figure 7)."""

import pytest

from repro.analysis.table2 import TOY_SPEC, WORKSPACE_BASE
from repro.core.compiler import build_convolution_info
from repro.core.detection import DetectionUnit
from repro.core.idgen import IDMode
from repro.core.lhb import LoadHistoryBuffer
from repro.gpu.pipeline import Instruction, Op, PipelineStats, SMPipeline, Warp


def load(dest, address):
    return Instruction(Op.LOAD, dest=dest, address=address)


def mma(dest, *srcs):
    return Instruction(Op.MMA, dest=dest, srcs=tuple(srcs))


def programmed_detection(entries=64):
    unit = DetectionUnit(
        lhb=LoadHistoryBuffer(
            num_entries=entries, lifetime=None, hashed_index=False
        ),
        id_mode=IDMode.PAPER,
    )
    unit.program(TOY_SPEC, build_convolution_info(TOY_SPEC, WORKSPACE_BASE, lda=9))
    return unit


def addr(array_idx):
    return WORKSPACE_BASE + array_idx * 2


class TestBasics:
    def test_single_instruction_completes(self):
        pipe = SMPipeline([Warp(0, [Instruction(Op.ALU, dest=1)])])
        stats = pipe.run()
        assert stats.issued == 1
        assert stats.cycles >= SMPipeline.LATENCIES[Op.ALU]

    def test_raw_hazard_serialises(self):
        # r2 depends on r1: the MMA cannot issue until the ALU's
        # 4-cycle latency drains.
        prog = [Instruction(Op.ALU, dest=1), mma(2, 1)]
        stats = SMPipeline([Warp(0, prog)]).run()
        assert stats.scoreboard_stalls > 0
        assert stats.cycles >= 4 + 8

    def test_independent_warps_overlap(self):
        prog = [load(1, addr(0)), mma(2, 1)]
        solo = SMPipeline([Warp(0, list(prog))]).run()
        dual = SMPipeline([Warp(0, list(prog)), Warp(1, list(prog))]).run()
        # Two warps take far less than twice the cycles: the second
        # warp issues into the first's stall shadow.
        assert dual.cycles < 2 * solo.cycles

    def test_gto_prefers_running_warp(self):
        w0 = Warp(0, [Instruction(Op.ALU, dest=1),
                      Instruction(Op.ALU, dest=2)])
        w1 = Warp(1, [Instruction(Op.ALU, dest=1)])
        pipe = SMPipeline([w0, w1])
        pipe.tick()  # issues w0[0]
        pipe.tick()  # greedy: w0[1] (independent) before w1[0]
        assert w0.done and not w1.done

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            SMPipeline([])
        with pytest.raises(ValueError, match="address"):
            Instruction(Op.LOAD, dest=1)
        with pytest.raises(ValueError, match="destination"):
            Instruction(Op.MMA)

    def test_run_raises_on_limit(self):
        pipe = SMPipeline([Warp(0, [load(1, addr(0))])])
        with pytest.raises(RuntimeError, match="not drained"):
            pipe.run(max_cycles=2)


class TestDuploIntegration:
    def duplicate_program(self):
        """Two loads of duplicate data feeding MMAs: array indices 2
        and 10 share element ID 2 (the Table II pair)."""
        return [
            load(4, addr(2)),
            mma(5, 4),
            load(3, addr(10)),  # duplicate of the first load
            mma(6, 3),
        ]

    def test_detection_unit_shortens_critical_path(self):
        base = SMPipeline([Warp(0, self.duplicate_program())]).run()
        duplo = SMPipeline(
            [Warp(0, self.duplicate_program())],
            detection=programmed_detection(),
        ).run()
        assert duplo.eliminated_loads == 1
        assert duplo.memory_loads == 1
        assert duplo.cycles < base.cycles
        # The saving is roughly a memory latency minus the detection
        # latency on the second dependent chain.
        assert base.cycles - duplo.cycles >= 20

    def test_unique_loads_unaffected(self):
        prog = [load(4, addr(0)), mma(5, 4), load(3, addr(4)), mma(6, 3)]
        base = SMPipeline([Warp(0, list(prog))]).run()
        duplo = SMPipeline(
            [Warp(0, list(prog))], detection=programmed_detection()
        ).run()
        assert duplo.eliminated_loads == 0
        assert duplo.cycles == base.cycles

    def test_cross_warp_elimination(self):
        """Warp 1 reuses the value warp 0 loaded — the warp-to-warp
        sharing a compiler cannot do (Section IV-D)."""
        w0 = [load(4, addr(2)), mma(5, 4)]
        w1 = [load(4, addr(10)), mma(5, 4)]
        duplo = SMPipeline(
            [Warp(0, w0), Warp(1, w1)], detection=programmed_detection()
        ).run()
        assert duplo.eliminated_loads == 1

    def test_stats_accounting(self):
        stats = SMPipeline(
            [Warp(0, self.duplicate_program())],
            detection=programmed_detection(),
        ).run()
        assert stats.issued == 4
        assert stats.memory_loads + stats.eliminated_loads == 2
