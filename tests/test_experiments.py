"""Analysis harness: figure entry points, sweeps, reporting."""

import pytest

from repro.analysis.experiments import (
    energy_area,
    figure2,
    figure3,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    table2,
)
from repro.analysis.methodcost import (
    method_memory_ratio,
    method_speedup,
    method_time_seconds,
)
from repro.analysis.network import network_time
from repro.analysis.report import (
    comparison_lines,
    format_experiment,
    format_table,
    format_value,
)
from repro.analysis.sweeps import (
    associativity_sweep,
    batch_size_sweep,
    lhb_size_sweep,
    size_label,
)
from repro.conv.workloads import get_layer
from repro.gpu.config import KernelConfig, SimulationOptions
from repro.gpu.simulator import EliminationMode, clear_trace_cache

from tests.conftest import make_spec

#: One small, duplication-rich layer so sweeps stay fast.
FAST_LAYERS = (make_spec(name="s1", batch=2, h=12, w=12, c=16, filters=16),)
FAST_OPTIONS = SimulationOptions()
FAST_KERNEL = KernelConfig(warp_runahead=8)


@pytest.fixture(autouse=True)
def _fresh(monkeypatch):
    # Figure/table numbers are pinned against the exact tiers; keep
    # the analytic CI lane's $REPRO_ENGINE override out.
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    clear_trace_cache()
    yield


class TestMethodCost:
    def test_speedups_positive(self):
        spec = get_layer("yolo", "C2")
        for method in ("gemm", "gemm_tc", "winograd", "fft"):
            assert method_speedup(spec, method) > 1.0

    def test_inapplicable_returns_none(self):
        spec = get_layer("gan", "C1")
        assert method_speedup(spec, "winograd") is None
        assert method_memory_ratio(spec, "fft") is None

    def test_unknown_method(self):
        with pytest.raises(KeyError):
            method_time_seconds(get_layer("yolo", "C2"), "magic")

    def test_implicit_gemm_memory_near_direct(self):
        assert method_memory_ratio(get_layer("yolo", "C2"), "gemm_tc") < 1.5

    def test_explicit_gemm_memory_large(self):
        # YOLO C2's large fp32 output dilutes the ratio; the workspace
        # still dominates a 9x-duplicating layer like ResNet C2.
        assert method_memory_ratio(get_layer("yolo", "C2"), "gemm") > 2
        assert method_memory_ratio(get_layer("resnet", "C2"), "gemm") > 3


class TestFigures2and3:
    def test_figure2_row_per_layer(self):
        exp = figure2(layers=[get_layer("resnet", "C2")])
        assert len(exp.rows) == 1
        assert exp.rows[0]["gemm"] > 1

    def test_figure2_gmean_in_paper_ballpark(self):
        exp = figure2()
        assert exp.summary["gmean_gemm"] == pytest.approx(13.5, rel=0.25)
        assert exp.summary["gmean_gemm_tc"] == pytest.approx(25.7, rel=0.25)

    def test_figure3_missing_bars_match_paper(self):
        exp = figure3()
        gan_rows = [r for r in exp.rows if r["layer"].startswith("gan/")]
        assert all(r["winograd"] is None and r["fft"] is None for r in gan_rows)
        resnet_c1 = next(r for r in exp.rows if r["layer"] == "resnet/C1")
        assert resnet_c1["winograd"] is None


class TestSweeps:
    def test_size_labels(self):
        assert size_label(None) == "oracle"
        assert size_label(1024) == "1024-entry"

    def test_lhb_size_sweep_monotone_hits(self):
        sweep = lhb_size_sweep(
            FAST_LAYERS, (256, 1024, None), FAST_OPTIONS, FAST_KERNEL
        )
        hits = [sweep.mean_hit_rate(p) for p in sweep.parameters()]
        assert hits == sorted(hits)

    def test_sweep_result_accessors(self):
        sweep = lhb_size_sweep(FAST_LAYERS, (1024,), FAST_OPTIONS, FAST_KERNEL)
        assert sweep.parameters() == ["1024-entry"]
        series = sweep.layer_series(FAST_LAYERS[0].qualified_name)
        assert "1024-entry" in series
        assert sweep.gmean_improvement("1024-entry") == pytest.approx(
            series["1024-entry"]
        )

    def test_associativity_sweep_parameters(self):
        sweep = associativity_sweep(
            FAST_LAYERS, (1, 8), 1024, FAST_OPTIONS, FAST_KERNEL
        )
        assert sweep.parameters() == ["direct", "8-way"]

    def test_batch_sweep_runs_each_batch(self):
        sweep = batch_size_sweep(
            FAST_LAYERS, (2, 4), 1024, FAST_OPTIONS, FAST_KERNEL
        )
        assert sorted({r.parameter for r in sweep.rows}) == [2, 4]


class TestFigureHarness:
    def test_figure9_structure(self):
        exp = figure9(FAST_LAYERS, FAST_OPTIONS, FAST_KERNEL)
        assert {r["lhb"] for r in exp.rows} == {
            "256-entry",
            "512-entry",
            "1024-entry",
            "2048-entry",
            "oracle",
        }
        assert exp.summary["gmean_oracle"] >= exp.summary["gmean_256-entry"]

    def test_figure10_limit_bounds_hits(self):
        exp = figure10(FAST_LAYERS, FAST_OPTIONS, FAST_KERNEL)
        assert exp.summary["hit_oracle"] <= exp.summary["theoretical_limit"] + 1e-9

    def test_figure11_fractions(self):
        exp = figure11(FAST_LAYERS, options=FAST_OPTIONS, kernel=FAST_KERNEL)
        row = exp.rows[0]
        assert row["baseline"]["lhb"] == 0.0
        assert row["duplo"]["lhb"] > 0.0
        assert sum(row["duplo"].values()) == pytest.approx(1.0)

    def test_figure12_includes_advantage(self):
        exp = figure12(FAST_LAYERS, FAST_OPTIONS, FAST_KERNEL)
        assert "eight_way_advantage" in exp.summary
        assert abs(exp.summary["eight_way_advantage"]) < 0.25

    def test_figure13_degradation_metric(self):
        layers = (make_spec(name="s1", batch=8, h=12, w=12, c=16, filters=16),)
        exp = figure13(layers, FAST_OPTIONS, FAST_KERNEL)
        assert "batch32_degradation" in exp.summary

    def test_energy_area(self):
        exp = energy_area(FAST_LAYERS, options=FAST_OPTIONS, kernel=FAST_KERNEL)
        assert 0 < exp.summary["on_chip_energy_reduction"] < 1
        assert exp.summary["area_overhead"] == pytest.approx(0.0077, rel=0.05)

    def test_table2_matches_paper(self):
        exp = table2()
        assert [r["lhb"] for r in exp.rows] == ["miss", "bypass", "hit", "miss"]


class TestNetworkTime:
    def test_training_slower_than_inference(self):
        t = network_time(
            "test",
            EliminationMode.DUPLO,
            layers=FAST_LAYERS,
            options=FAST_OPTIONS,
            kernel=FAST_KERNEL,
        )
        assert t.training_cycles > t.inference_cycles

    def test_training_gains_diluted(self):
        base = network_time(
            "test", EliminationMode.BASELINE, layers=FAST_LAYERS,
            options=FAST_OPTIONS, kernel=FAST_KERNEL,
        )
        duplo = network_time(
            "test", EliminationMode.DUPLO, layers=FAST_LAYERS,
            options=FAST_OPTIONS, kernel=FAST_KERNEL,
        )
        inf = duplo.inference_reduction(base)
        trn = duplo.training_reduction(base)
        assert 0 <= trn < inf
        # Forward is one of three roughly equal-cost passes.
        assert trn == pytest.approx(inf / 3, rel=0.35)

    def test_accelerated_backward_helps_more(self):
        base = network_time(
            "test", EliminationMode.BASELINE, layers=FAST_LAYERS,
            options=FAST_OPTIONS, kernel=FAST_KERNEL,
        )
        plain = network_time(
            "test", EliminationMode.DUPLO, layers=FAST_LAYERS,
            options=FAST_OPTIONS, kernel=FAST_KERNEL,
        )
        accel = network_time(
            "test", EliminationMode.DUPLO, layers=FAST_LAYERS,
            options=FAST_OPTIONS, kernel=FAST_KERNEL,
            accelerate_backward=True,
        )
        assert accel.training_reduction(base) >= plain.training_reduction(base)


class TestReport:
    def test_format_value(self):
        assert format_value(None) == "-"
        assert format_value(0.123456) == "0.123"
        assert format_value(1234.5) == "1,234.5"
        assert format_value("x") == "x"

    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "b": None}, {"a": 22, "b": 0.5}])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_experiment_truncates(self):
        exp = figure2(layers=[get_layer("yolo", "C2"), get_layer("yolo", "C3")])
        text = format_experiment(exp, max_rows=1)
        assert "more rows" in text
        assert "paper:" in text

    def test_comparison_lines(self):
        exp = table2()
        lines = comparison_lines(exp)
        assert any("paper=1" in line for line in lines)


class TestFigure13Coverage:
    def test_rows_include_lhb_coverage(self):
        layers = (make_spec(name="cov", batch=2, h=10, w=10, c=16,
                            filters=16),)
        exp = figure13(layers, FAST_OPTIONS, FAST_KERNEL)
        for row in exp.rows:
            assert 0 < row["lhb_coverage"] <= 1.0
        # More batch -> more unique IDs per SM -> coverage shrinks (or
        # stays equal once the cap binds).
        by_batch = {r["batch"]: r["lhb_coverage"] for r in exp.rows}
        batches = sorted(by_batch)
        assert by_batch[batches[-1]] <= by_batch[batches[0]] + 1e-9
