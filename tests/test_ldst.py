"""Trace replay: LHB elimination, cache routing, service breakdown."""

import numpy as np
import pytest

from repro.core.lhb import LoadHistoryBuffer
from repro.gpu.config import GPUConfig, KernelConfig, SimulationOptions
from repro.gpu.isa import LOAD_A, STORE_D
from repro.gpu.kernel import generate_sm_trace
from repro.gpu.ldst import (
    EliminationMode,
    instruction_bases,
    replay_trace,
    workspace_unique_ids,
)

from tests.conftest import make_spec

GPU = GPUConfig(num_sms=2)
KERNEL = KernelConfig(warp_runahead=4)
OPTIONS = SimulationOptions()


@pytest.fixture(scope="module")
def spec():
    return make_spec(batch=2, h=8, w=8, c=16, filters=16)


@pytest.fixture(scope="module")
def trace(spec):
    return generate_sm_trace(spec, GPU, KERNEL, OPTIONS)


def replay(trace, spec, mode=EliminationMode.DUPLO, lhb=None, options=OPTIONS):
    return replay_trace(trace, spec, GPU, options, mode, lhb)


class TestBaseline:
    def test_no_elimination(self, trace, spec):
        stats = replay(trace, spec, EliminationMode.BASELINE)
        assert stats.lhb_lookups == 0
        assert stats.eliminated_fragments == 0
        assert stats.breakdown.lhb == 0

    def test_every_load_served_once(self, trace, spec):
        stats = replay(trace, spec, EliminationMode.BASELINE)
        assert stats.breakdown.total == stats.loads_total

    def test_load_accounting(self, trace, spec):
        stats = replay(trace, spec, EliminationMode.BASELINE)
        assert stats.loads_total == stats.loads_workspace + stats.loads_filter
        assert stats.loads_workspace == int((trace.kind == LOAD_A).sum())
        assert stats.stores == int((trace.kind == STORE_D).sum())

    def test_dram_bytes_track_misses(self, trace, spec):
        stats = replay(trace, spec, EliminationMode.BASELINE)
        assert stats.dram_read_bytes == stats.breakdown.dram * GPU.l1_line_bytes
        assert stats.dram_write_bytes == stats.stores * 64


class TestDuplo:
    def test_elimination_happens(self, trace, spec):
        stats = replay(trace, spec)
        assert stats.lhb_hits > 0
        assert stats.eliminated_fragments == stats.breakdown.lhb

    def test_served_sum_invariant(self, trace, spec):
        stats = replay(trace, spec)
        assert stats.breakdown.total == stats.loads_total

    def test_hits_bounded_by_theory(self, trace, spec):
        oracle = LoadHistoryBuffer(num_entries=None, lifetime=None)
        stats = replay(trace, spec, lhb=oracle)
        assert stats.lhb_hit_rate <= stats.theoretical_hit_limit + 1e-12

    def test_infinite_everything_reaches_theory(self, trace, spec):
        oracle = LoadHistoryBuffer(num_entries=None, lifetime=None)
        stats = replay(trace, spec, lhb=oracle)
        assert stats.lhb_hit_rate == pytest.approx(
            stats.theoretical_hit_limit
        )

    def test_duplo_reduces_traffic_vs_baseline(self, trace, spec):
        base = replay(trace, spec, EliminationMode.BASELINE)
        duplo = replay(trace, spec)
        assert duplo.l1_accesses < base.l1_accesses
        assert duplo.dram_read_bytes <= base.dram_read_bytes

    def test_bigger_lhb_never_worse(self, trace, spec):
        hits = []
        for entries in (64, 256, 1024, None):
            lhb = LoadHistoryBuffer(num_entries=entries, lifetime=4096)
            hits.append(replay(trace, spec, lhb=lhb).lhb_hits)
        assert hits == sorted(hits)

    def test_filter_loads_never_consult_lhb(self, trace, spec):
        stats = replay(trace, spec)
        assert stats.lhb_lookups <= stats.workspace_instructions


class TestGranularity:
    def test_instruction_mode_fewer_lookups(self, trace, spec):
        frag = replay(trace, spec)
        opts = SimulationOptions(lhb_granularity="instruction")
        inst = replay(trace, spec, options=opts)
        assert inst.lhb_lookups * 16 == frag.lhb_lookups
        assert inst.workspace_instructions * 16 == frag.workspace_instructions

    def test_instruction_mode_eliminates_whole_tiles(self, trace, spec):
        opts = SimulationOptions(lhb_granularity="instruction")
        stats = replay(trace, spec, options=opts)
        assert stats.eliminated_fragments == 16 * stats.lhb_hits

    def test_invalid_granularity_rejected(self):
        with pytest.raises(ValueError, match="lhb_granularity"):
            SimulationOptions(lhb_granularity="warp")


class TestWir:
    def test_wir_eliminates_same_address_reuse(self, trace, spec):
        stats = replay(trace, spec, EliminationMode.WIR)
        # Octet dual-loads alone guarantee hits.
        assert stats.lhb_hit_rate >= 0.5

    def test_duplo_at_least_matches_wir_on_workspace(self, trace, spec):
        """Duplo subsumes same-address reuse for workspace loads and
        adds cross-address duplicates (Section V-B's comparison)."""
        oracle = lambda: LoadHistoryBuffer(num_entries=None, lifetime=None)
        wir = replay(trace, spec, EliminationMode.WIR, lhb=oracle())
        duplo = replay(trace, spec, EliminationMode.DUPLO, lhb=oracle())
        # WIR looks up A and B loads; compare per-fragment elimination
        # restricted to what each can possibly catch.
        assert duplo.lhb_hit_rate >= wir.lhb_hit_rate


class TestHelpers:
    def test_instruction_bases_are_group_starts(self, trace):
        bases = instruction_bases(trace)
        assert (trace.kind[bases] == LOAD_A).all()
        ins = trace.instr[bases]
        assert len(np.unique(ins)) == len(ins)

    def test_workspace_unique_ids_counts(self, trace, spec):
        lookups, uniques = workspace_unique_ids(trace, spec, OPTIONS)
        assert 0 < uniques <= lookups
        assert lookups == int((trace.kind == LOAD_A).sum())

    def test_merge_padding_reduces_uniques(self, trace, spec):
        _, plain = workspace_unique_ids(trace, spec, OPTIONS)
        _, merged = workspace_unique_ids(
            trace, spec, SimulationOptions(merge_padding=True)
        )
        assert merged <= plain
