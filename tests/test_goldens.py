"""Golden regression fixtures for the figure entry points.

``tests/goldens/*.json`` pins the exact rows of ``figure9`` /
``figure10`` / ``figure12`` / ``table2`` / ``multikernel`` on a fixed
three-layer subset at ``max_ctas=2``, plus one ``arch_<preset>``
fixture per architecture-zoo entry (conv + attention layers under
duplo and wir).  Tolerances are tight (relative
1e-9) — the point is to catch refactors that *silently* shift
reported numbers, not to allow drift: the figure12 fixture pins the
offline per-set LRU resolution, the multikernel fixture the
PID-folded shared-buffer replay.  After an intentional model change,
regenerate with::

    PYTHONPATH=src python scripts/make_goldens.py

and commit the refreshed fixtures alongside the change.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import experiments
from repro.conv.workloads import get_layer
from repro.gpu.config import ARCHS, SimulationOptions
from repro.gpu.simulator import clear_trace_cache

GOLDEN_DIR = Path(__file__).parent / "goldens"
GOLDEN_LAYERS = [("resnet", "C2"), ("gan", "TC3"), ("yolo", "C2")]
GOLDEN_OPTIONS = SimulationOptions(max_ctas=2)
REL_TOL = 1e-9


def _load(name):
    with open(GOLDEN_DIR / f"{name}.json") as fh:
        return json.load(fh)


def _layers():
    return [get_layer(net, name) for net, name in GOLDEN_LAYERS]


def assert_value_matches(measured, expected, context):
    if isinstance(expected, float) and isinstance(measured, float):
        assert measured == pytest.approx(expected, rel=REL_TOL), context
    else:
        assert measured == expected, context


def assert_experiment_matches(exp, golden):
    assert len(exp.rows) == len(golden["rows"])
    for i, (row, want) in enumerate(zip(exp.rows, golden["rows"])):
        assert set(row) == set(want), f"row {i} columns"
        for key, expected in want.items():
            assert_value_matches(row[key], expected, f"row {i} [{key}]")
    assert set(exp.summary) == set(golden["summary"])
    for key, expected in golden["summary"].items():
        assert_value_matches(exp.summary[key], expected, f"summary [{key}]")


@pytest.fixture(autouse=True)
def _fresh_trace_cache(monkeypatch):
    # Goldens pin the exact tiers' numbers bit for bit.
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    clear_trace_cache()
    yield
    clear_trace_cache()


def test_golden_config_matches_fixture():
    """The in-test configuration mirrors what the fixtures recorded."""
    for name in (
        "figure9", "figure10", "figure12", "table2", "multikernel",
        "analytic",
    ):
        config = _load(name)["config"]
        assert config["layers"] == ["/".join(p) for p in GOLDEN_LAYERS]
        assert config["max_ctas"] == GOLDEN_OPTIONS.max_ctas


def test_figure9_rows_pinned():
    exp = experiments.figure9(_layers(), GOLDEN_OPTIONS)
    assert_experiment_matches(exp, _load("figure9"))


def test_figure10_rows_pinned():
    exp = experiments.figure10(_layers(), GOLDEN_OPTIONS)
    assert_experiment_matches(exp, _load("figure10"))


def test_figure12_rows_pinned():
    """The associativity sweep — now served by the offline per-set LRU
    fast path — must keep producing the exact committed numbers."""
    exp = experiments.figure12(_layers(), GOLDEN_OPTIONS)
    assert_experiment_matches(exp, _load("figure12"))


def test_table2_rows_pinned():
    exp = experiments.table2()
    assert_experiment_matches(exp, _load("table2"))


def test_multikernel_rows_pinned():
    """PID-tagged shared-LHB study, pinned against drift in the
    interleave or the PID-folded recurrence."""
    exp = experiments.multikernel_sharing(_layers(), options=GOLDEN_OPTIONS)
    assert_experiment_matches(exp, _load("multikernel"))


ARCH_GOLDEN_LAYERS = GOLDEN_LAYERS + [("attention", "QK")]


@pytest.fixture(scope="module")
def arch_zoo_experiment():
    """One arch_zoo run shared by every per-preset drift check (the
    sweep covers all presets in a single pass)."""
    clear_trace_cache()
    layers = [get_layer(net, name) for net, name in ARCH_GOLDEN_LAYERS]
    return experiments.arch_zoo(layers, options=GOLDEN_OPTIONS)


@pytest.mark.parametrize("arch", sorted(ARCHS))
def test_arch_zoo_rows_pinned(arch, arch_zoo_experiment):
    """Every preset x {duplo, wir} x {conv, attention} is pinned: a
    change to fragment geometry, idgen shifts, or the per-arch area
    accounting shows up as a golden diff on its own arch_* fixture."""
    golden = _load(f"arch_{arch}")
    assert golden["config"]["arch"] == arch
    assert golden["config"]["layers"] == [
        "/".join(p) for p in ARCH_GOLDEN_LAYERS
    ]
    assert golden["config"]["max_ctas"] == GOLDEN_OPTIONS.max_ctas
    rows = [r for r in arch_zoo_experiment.rows if r["arch"] == arch]
    summary = {
        k: v
        for k, v in arch_zoo_experiment.summary.items()
        if k.endswith(f"_{arch}")
    }
    # Two modes per layer, and the preset's own summary slice.
    assert len(rows) == 2 * len(ARCH_GOLDEN_LAYERS)
    assert len(golden["rows"]) == len(rows)
    for i, (row, want) in enumerate(zip(rows, golden["rows"])):
        assert set(row) == set(want), f"row {i} columns"
        for key, expected in want.items():
            assert_value_matches(row[key], expected, f"{arch} row {i} [{key}]")
    assert set(summary) == set(golden["summary"])
    for key, expected in golden["summary"].items():
        assert_value_matches(summary[key], expected, f"{arch} [{key}]")


def test_analytic_predictions_pinned():
    """The analytic engine tier's predictions on the golden layers.

    The differential bounds in test_analytic_validation.py allow a
    tolerance band; this fixture pins the exact values, so accuracy
    drift *within* the band still shows up as a golden diff."""
    from repro.analytic import clear_profile_cache, prediction_rows

    clear_profile_cache()
    rows = prediction_rows(_layers(), options=GOLDEN_OPTIONS)
    golden = _load("analytic")["rows"]
    assert len(rows) == len(golden)
    for i, (row, want) in enumerate(zip(rows, golden)):
        assert set(row) == set(want), f"row {i} columns"
        for key, expected in want.items():
            assert_value_matches(row[key], expected, f"row {i} [{key}]")
