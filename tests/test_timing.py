"""Analytic timing model: component arithmetic and monotonicity."""

import pytest

from repro.gpu.config import GPUConfig, TITAN_V
from repro.gpu.stats import LayerStats
from repro.gpu.timing import (
    KERNEL_OVERHEAD_CYCLES,
    MACS_PER_MMA,
    TimingModel,
)


def stats(**kwargs):
    defaults = dict(
        loads_total=10000,
        loads_workspace=5000,
        loads_filter=5000,
        stores=500,
        mma_ops=300,
        l1_accesses=10000,
        l1_hits=8000,
        l2_accesses=2000,
        l2_hits=1000,
        dram_read_bytes=1000 * 128,
        dram_write_bytes=500 * 64,
    )
    defaults.update(kwargs)
    return LayerStats(**defaults)


MODEL = TimingModel()


class TestComponents:
    def test_compute_cycles(self):
        comps = MODEL.components(stats(), concurrent_warps=24, busy_sms=80)
        expected = 300 * MACS_PER_MMA / TITAN_V.macs_per_sm_cycle
        assert comps["compute"] == pytest.approx(expected)

    def test_ldst_charges_issued_fragments(self):
        s_all = stats()
        s_elim = stats(eliminated_fragments=4000, lhb_hits=250, lhb_lookups=5000)
        c_all = MODEL.components(s_all, 24, 80)["ldst"]
        c_elim = MODEL.components(s_elim, 24, 80)["ldst"]
        assert c_elim < c_all

    def test_dram_component_scales_with_bytes(self):
        c1 = MODEL.components(stats(), 24, 80)["dram"]
        c2 = MODEL.components(stats(dram_read_bytes=2000 * 128), 24, 80)["dram"]
        assert c2 > c1

    def test_fewer_busy_sms_get_more_bandwidth(self):
        few = MODEL.components(stats(), 24, busy_sms=8)["dram"]
        many = MODEL.components(stats(), 24, busy_sms=80)["dram"]
        assert few < many

    def test_exposed_latency_shrinks_with_warps(self):
        low = MODEL.components(stats(), concurrent_warps=8, busy_sms=80)
        high = MODEL.components(stats(), concurrent_warps=48, busy_sms=80)
        assert high["exposed_latency"] < low["exposed_latency"]


class TestTotalCycles:
    def test_total_exceeds_bottleneck(self):
        total, comps = MODEL.cycles(stats(), 24, 80)
        assert total >= max(comps.values()) + KERNEL_OVERHEAD_CYCLES

    def test_elimination_speeds_up(self):
        base, _ = MODEL.cycles(stats(), 24, 80)
        s = stats(
            eliminated_fragments=4000,
            lhb_hits=250,
            lhb_lookups=5000,
            l1_accesses=6000,
            l1_hits=5000,
            l2_accesses=1000,
            l2_hits=600,
            dram_read_bytes=400 * 128,
        )
        duplo, _ = MODEL.cycles(s, 24, 80)
        assert duplo < base

    def test_three_cycle_detection_costs_little(self):
        """Section IV-A: the 3-cycle detection unit loses ~0.9%."""
        s = stats(lhb_lookups=5000, lhb_hits=2500, eliminated_fragments=2500)
        fast, _ = TimingModel(detection_latency=2).cycles(s, 24, 80)
        slow, _ = TimingModel(detection_latency=3).cycles(s, 24, 80)
        assert slow >= fast
        assert (slow - fast) / fast < 0.05

    def test_execution_time_ms(self):
        model = TimingModel()
        assert model.execution_time_ms(1.2e6) == pytest.approx(1.0)

    def test_zero_overlap_is_pure_roofline(self):
        model = TimingModel(overlap=0.0)
        total, comps = model.cycles(stats(), 24, 80)
        assert total == pytest.approx(
            max(comps.values()) + KERNEL_OVERHEAD_CYCLES
        )

    def test_full_overlap_is_serialised_sum(self):
        model = TimingModel(overlap=1.0)
        total, comps = model.cycles(stats(), 24, 80)
        assert total == pytest.approx(sum(comps.values()) + KERNEL_OVERHEAD_CYCLES)
