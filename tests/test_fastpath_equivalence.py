"""Fast path vs. event path: bit-identical LayerStats, end to end.

The acceptance bar for the vectorised replay: `dataclasses.asdict`
equality on every counter, for every elimination mode, on real Table I
layer traces — plus the plumbing around it (the `fast_path` switch on
:func:`simulate_layer`, the `$REPRO_FAST_PATH` override, cache-key
normalisation, and the `.npz` trace round-trip the disk store uses).

The CI equivalence lanes run exactly this module twice, once with
``REPRO_FAST_PATH=on`` and once with ``off``; the direct
replay-vs-replay comparisons here are env-independent (both paths are
called explicitly), so the lanes additionally pin the dispatch logic.
"""

import dataclasses
import io

import numpy as np
import pytest

from repro.conv.workloads import get_layer
from repro.gpu.config import (
    BASELINE_KERNEL,
    IMPLICIT_KERNEL,
    SimulationOptions,
    TITAN_V,
)
from repro.gpu.fastpath import FastPathUnsupported, replay_trace_fast
from repro.gpu.kernel import generate_sm_trace
from repro.gpu.ldst import EliminationMode, replay_trace
from repro.gpu.simulator import (
    _resolve_fast_path,
    make_lhb,
    simulate_layer,
)
from repro.runtime.cachekey import result_key, trace_key
from repro.runtime.store import DiskCache

TABLE_I_LAYERS = [
    ("resnet", "C2"),
    ("resnet", "C8"),
    ("gan", "TC1"),
    ("gan", "TC3"),
    ("gan", "C2"),
    ("yolo", "C2"),
    ("yolo", "C5"),
]

OPTIONS = SimulationOptions(max_ctas=1)

_traces = {}


def layer_trace(network, layer, options=OPTIONS, kernel=BASELINE_KERNEL):
    """Per-module trace cache: one generation pays for all four modes."""
    key = (network, layer, options, kernel)
    if key not in _traces:
        spec = get_layer(network, layer)
        _traces[key] = (
            spec, generate_sm_trace(spec, TITAN_V, kernel, options)
        )
    return _traces[key]


def both_replays(trace, spec, options, mode, lhb_entries="default", **kwargs):
    """Run the event and fast replays on fresh, identical state."""

    def fresh_lhb():
        if mode is EliminationMode.BASELINE:
            return None
        if lhb_entries == "default":
            return make_lhb(1024, 1, options.lhb_lifetime, options.lhb_hashed_index)
        return make_lhb(
            lhb_entries, 1, options.lhb_lifetime, options.lhb_hashed_index
        )

    event = replay_trace(trace, spec, TITAN_V, options, mode, fresh_lhb(), **kwargs)
    fast = replay_trace_fast(
        trace, spec, TITAN_V, options, mode, fresh_lhb(), **kwargs
    )
    return event, fast


def assert_identical(event, fast, context):
    assert dataclasses.asdict(event) == dataclasses.asdict(fast), context


@pytest.mark.parametrize("network,layer", TABLE_I_LAYERS)
@pytest.mark.parametrize(
    "mode,lhb_entries",
    [
        (EliminationMode.BASELINE, "default"),
        (EliminationMode.DUPLO, "default"),  # paper's 1024-entry LHB
        (EliminationMode.DUPLO, None),  # oracle
        (EliminationMode.WIR, "default"),
    ],
    ids=["baseline", "duplo", "oracle", "wir"],
)
def test_bit_identical_on_table1_layers(network, layer, mode, lhb_entries):
    spec, trace = layer_trace(network, layer)
    event, fast = both_replays(trace, spec, OPTIONS, mode, lhb_entries)
    assert_identical(event, fast, (network, layer, mode, lhb_entries))
    # Not vacuous: the trace really exercised the hierarchy.
    assert event.loads_total > 0 and event.l1_accesses > 0


@pytest.mark.parametrize(
    "options,kernel,kwargs",
    [
        (SimulationOptions(max_ctas=1, lhb_granularity="instruction"),
         BASELINE_KERNEL, {}),
        (SimulationOptions(max_ctas=1, merge_padding=True), BASELINE_KERNEL, {}),
        (SimulationOptions(max_ctas=1, lhb_hashed_index=False),
         BASELINE_KERNEL, {}),
        (SimulationOptions(max_ctas=1, lhb_lifetime=None), BASELINE_KERNEL, {}),
        (SimulationOptions(max_ctas=1), IMPLICIT_KERNEL, {}),
        (SimulationOptions(max_ctas=1, lhb_granularity="instruction"),
         IMPLICIT_KERNEL, {}),
        (SimulationOptions(max_ctas=1), BASELINE_KERNEL,
         {"l2_share_sms": 80}),
    ],
    ids=[
        "instruction-granularity", "merge-padding", "unhashed-index",
        "no-lifetime", "implicit-gemm", "implicit-instruction", "l2-slice",
    ],
)
def test_bit_identical_across_configurations(options, kernel, kwargs):
    """Config axes that reroute the replay internals, on the paper's
    flagship layer (YOLO C2, Section IV-D)."""
    spec, trace = layer_trace("yolo", "C2", options, kernel)
    for mode in (EliminationMode.DUPLO, EliminationMode.WIR):
        event, fast = both_replays(
            trace, spec, options, mode, "default", **kwargs
        )
        assert_identical(event, fast, (options, kernel, mode))


def test_small_lhb_bit_identical():
    """16-entry buffer: conflict-dominated regime."""
    spec, trace = layer_trace("gan", "C2")
    event, fast = both_replays(
        trace, spec, OPTIONS, EliminationMode.DUPLO, 16
    )
    assert_identical(event, fast, "16-entry")
    assert event.lhb_hits < event.lhb_lookups  # conflicts actually bit


class TestSimulateLayerSwitch:
    def test_on_off_identical_results(self):
        spec = get_layer("gan", "TC3")
        results = {}
        for choice in ("on", "off"):
            options = dataclasses.replace(OPTIONS, fast_path=choice)
            r = simulate_layer(spec, EliminationMode.DUPLO, options=options)
            results[choice] = r
        on, off = results["on"], results["off"]
        assert dataclasses.asdict(on.stats) == dataclasses.asdict(off.stats)
        assert dataclasses.asdict(on.sm_stats) == dataclasses.asdict(off.sm_stats)
        assert on.cycles == off.cycles
        assert on.time_ms == off.time_ms

    def test_auto_falls_back_for_set_associative(self, monkeypatch):
        """assoc > 1 silently routes to the event path under auto.

        A forced ``$REPRO_FAST_PATH=on`` (the CI equivalence lane)
        would intentionally turn this into an error, so the override
        is cleared — this test is about the unforced default.
        """
        monkeypatch.delenv("REPRO_FAST_PATH", raising=False)
        spec = get_layer("gan", "TC3")
        auto = simulate_layer(
            spec, EliminationMode.DUPLO, lhb_assoc=4, options=OPTIONS
        )
        off = simulate_layer(
            spec, EliminationMode.DUPLO, lhb_assoc=4,
            options=dataclasses.replace(OPTIONS, fast_path="off"),
        )
        assert dataclasses.asdict(auto.stats) == dataclasses.asdict(off.stats)

    def test_forced_on_rejects_set_associative(self):
        spec = get_layer("gan", "TC3")
        with pytest.raises(FastPathUnsupported):
            simulate_layer(
                spec, EliminationMode.DUPLO, lhb_assoc=4,
                options=dataclasses.replace(OPTIONS, fast_path="on"),
            )

    def test_env_override_steers_auto(self, monkeypatch):
        lhb = make_lhb(1024, 1, 4096, True)
        auto = SimulationOptions(fast_path="auto")
        monkeypatch.setenv("REPRO_FAST_PATH", "off")
        assert not _resolve_fast_path(auto, EliminationMode.DUPLO, lhb)
        monkeypatch.setenv("REPRO_FAST_PATH", "on")
        assert _resolve_fast_path(auto, EliminationMode.DUPLO, lhb)
        # Explicit options beat the environment.
        assert not _resolve_fast_path(
            dataclasses.replace(auto, fast_path="off"),
            EliminationMode.DUPLO, lhb,
        )

    def test_invalid_choice_rejected(self):
        with pytest.raises(ValueError, match="fast_path"):
            SimulationOptions(fast_path="sometimes")


class TestTraceSerialization:
    def test_npz_round_trip(self, tmp_path):
        spec, trace = layer_trace("gan", "TC1")
        buf = io.BytesIO()
        trace.save_npz(buf)
        buf.seek(0)
        loaded = type(trace).load_npz(buf)
        for field in ("kind", "address", "warp", "instr"):
            np.testing.assert_array_equal(
                getattr(trace, field), getattr(loaded, field), err_msg=field
            )
        assert trace.meta() == loaded.meta()
        # The round-tripped trace replays identically.
        event, fast = both_replays(
            loaded, spec, OPTIONS, EliminationMode.DUPLO
        )
        assert_identical(event, fast, "npz round trip")

    def test_disk_store_uses_npz(self, tmp_path):
        _, trace = layer_trace("gan", "TC1")
        cache = DiskCache(tmp_path)
        cache.put_trace("a" * 64, trace)
        files = list(tmp_path.rglob("*.npz"))
        assert len(files) == 1
        assert not list(tmp_path.rglob("*.pkl"))
        loaded = cache.get_trace("a" * 64)
        np.testing.assert_array_equal(trace.address, loaded.address)
        # Compression pays: well under the pickled int64 form.
        import pickle

        assert files[0].stat().st_size < len(pickle.dumps(trace)) / 4


class TestCacheKeyNormalisation:
    def test_fast_path_choice_shares_artifacts(self):
        """on/off/auto runs must hit the same cached trace and result."""
        spec = get_layer("yolo", "C2")
        keys = set()
        rkeys = set()
        for choice in ("auto", "on", "off"):
            options = dataclasses.replace(OPTIONS, fast_path=choice)
            keys.add(trace_key(spec, TITAN_V, BASELINE_KERNEL, options))
            rkeys.add(
                result_key(
                    spec, TITAN_V, BASELINE_KERNEL, options,
                    "duplo", 1024, 1,
                )
            )
        assert len(keys) == 1
        assert len(rkeys) == 1

    def test_real_option_changes_still_split(self):
        spec = get_layer("yolo", "C2")
        a = trace_key(spec, TITAN_V, BASELINE_KERNEL, OPTIONS)
        b = trace_key(
            spec, TITAN_V, BASELINE_KERNEL,
            dataclasses.replace(OPTIONS, max_ctas=2),
        )
        assert a != b
