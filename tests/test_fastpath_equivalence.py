"""Fast path vs. event path: bit-identical LayerStats, end to end.

The acceptance bar for the vectorised replay: `dataclasses.asdict`
equality on every counter, for every elimination mode, on real Table I
layer traces — plus the plumbing around it (the `fast_path` switch on
:func:`simulate_layer`, the `$REPRO_FAST_PATH` override, cache-key
normalisation, and the `.npz` trace round-trip the disk store uses).

The CI equivalence lanes run exactly this module twice, once with
``REPRO_FAST_PATH=on`` and once with ``off``; the direct
replay-vs-replay comparisons here are env-independent (both paths are
called explicitly), so the lanes additionally pin the dispatch logic.
"""

import dataclasses
import io

import numpy as np
import pytest

from repro import obs
from repro.conv.workloads import get_layer
from repro.gpu.config import (
    BASELINE_KERNEL,
    IMPLICIT_KERNEL,
    SimulationOptions,
    TITAN_V,
)
from repro.gpu.fastpath import replay_trace_fast
from repro.gpu.kernel import generate_sm_trace
from repro.gpu.ldst import EliminationMode, replay_trace
from repro.gpu.multikernel import simulate_shared_lhb
from repro.gpu.simulator import (
    _resolve_fast_path,
    make_lhb,
    simulate_layer,
)
from repro.runtime.cachekey import result_key, trace_key
from repro.runtime.store import DiskCache


@pytest.fixture(autouse=True)
def _exact_engine(monkeypatch):
    """Fast-vs-event equivalence is meaningless under the analytic
    tier; the engine lanes must not reroute these dispatch tests."""
    monkeypatch.delenv("REPRO_ENGINE", raising=False)

TABLE_I_LAYERS = [
    ("resnet", "C2"),
    ("resnet", "C8"),
    ("gan", "TC1"),
    ("gan", "TC3"),
    ("gan", "C2"),
    ("yolo", "C2"),
    ("yolo", "C5"),
]

OPTIONS = SimulationOptions(max_ctas=1)

_traces = {}


def layer_trace(network, layer, options=OPTIONS, kernel=BASELINE_KERNEL):
    """Per-module trace cache: one generation pays for all four modes."""
    key = (network, layer, options, kernel)
    if key not in _traces:
        spec = get_layer(network, layer)
        _traces[key] = (
            spec, generate_sm_trace(spec, TITAN_V, kernel, options)
        )
    return _traces[key]


def both_replays(
    trace, spec, options, mode, lhb_entries="default", lhb_assoc=1, **kwargs
):
    """Run the event and fast replays on fresh, identical state."""

    def fresh_lhb():
        if mode is EliminationMode.BASELINE:
            return None
        entries = 1024 if lhb_entries == "default" else lhb_entries
        return make_lhb(
            entries, lhb_assoc, options.lhb_lifetime, options.lhb_hashed_index
        )

    event = replay_trace(trace, spec, TITAN_V, options, mode, fresh_lhb(), **kwargs)
    fast = replay_trace_fast(
        trace, spec, TITAN_V, options, mode, fresh_lhb(), **kwargs
    )
    return event, fast


def assert_identical(event, fast, context):
    assert dataclasses.asdict(event) == dataclasses.asdict(fast), context


@pytest.mark.parametrize("network,layer", TABLE_I_LAYERS)
@pytest.mark.parametrize(
    "mode,lhb_entries,lhb_assoc",
    [
        (EliminationMode.BASELINE, "default", 1),
        (EliminationMode.DUPLO, "default", 1),  # paper's 1024-entry LHB
        (EliminationMode.DUPLO, None, 1),  # oracle
        (EliminationMode.WIR, "default", 1),
        # Figure 12's associativity axis, per-set LRU in closed form.
        # The 64-entry 4-way point is deliberately conflict-rich.
        (EliminationMode.BASELINE, "default", 4),
        (EliminationMode.DUPLO, "default", 2),
        (EliminationMode.DUPLO, 64, 4),
        (EliminationMode.DUPLO, "default", 8),
        (EliminationMode.DUPLO, None, 4),  # oracle ignores geometry
        (EliminationMode.WIR, 64, 4),
    ],
    ids=[
        "baseline", "duplo", "oracle", "wir",
        "baseline-4way", "duplo-2way", "duplo-4way-small", "duplo-8way",
        "oracle-4way", "wir-4way-small",
    ],
)
def test_bit_identical_on_table1_layers(network, layer, mode, lhb_entries, lhb_assoc):
    spec, trace = layer_trace(network, layer)
    event, fast = both_replays(trace, spec, OPTIONS, mode, lhb_entries, lhb_assoc)
    assert_identical(event, fast, (network, layer, mode, lhb_entries, lhb_assoc))
    # Not vacuous: the trace really exercised the hierarchy.
    assert event.loads_total > 0 and event.l1_accesses > 0


@pytest.mark.parametrize(
    "options,kernel,kwargs",
    [
        (SimulationOptions(max_ctas=1, lhb_granularity="instruction"),
         BASELINE_KERNEL, {}),
        (SimulationOptions(max_ctas=1, merge_padding=True), BASELINE_KERNEL, {}),
        (SimulationOptions(max_ctas=1, lhb_hashed_index=False),
         BASELINE_KERNEL, {}),
        (SimulationOptions(max_ctas=1, lhb_lifetime=None), BASELINE_KERNEL, {}),
        (SimulationOptions(max_ctas=1), IMPLICIT_KERNEL, {}),
        (SimulationOptions(max_ctas=1, lhb_granularity="instruction"),
         IMPLICIT_KERNEL, {}),
        (SimulationOptions(max_ctas=1), BASELINE_KERNEL,
         {"l2_share_sms": 80}),
    ],
    ids=[
        "instruction-granularity", "merge-padding", "unhashed-index",
        "no-lifetime", "implicit-gemm", "implicit-instruction", "l2-slice",
    ],
)
def test_bit_identical_across_configurations(options, kernel, kwargs):
    """Config axes that reroute the replay internals, on the paper's
    flagship layer (YOLO C2, Section IV-D)."""
    spec, trace = layer_trace("yolo", "C2", options, kernel)
    for mode in (EliminationMode.DUPLO, EliminationMode.WIR):
        event, fast = both_replays(
            trace, spec, options, mode, "default", **kwargs
        )
        assert_identical(event, fast, (options, kernel, mode))


def test_small_lhb_bit_identical():
    """16-entry buffer: conflict-dominated regime."""
    spec, trace = layer_trace("gan", "C2")
    event, fast = both_replays(
        trace, spec, OPTIONS, EliminationMode.DUPLO, 16
    )
    assert_identical(event, fast, "16-entry")
    assert event.lhb_hits < event.lhb_lookups  # conflicts actually bit


class TestSimulateLayerSwitch:
    def test_on_off_identical_results(self):
        spec = get_layer("gan", "TC3")
        results = {}
        for choice in ("on", "off"):
            options = dataclasses.replace(OPTIONS, fast_path=choice)
            r = simulate_layer(spec, EliminationMode.DUPLO, options=options)
            results[choice] = r
        on, off = results["on"], results["off"]
        assert dataclasses.asdict(on.stats) == dataclasses.asdict(off.stats)
        assert dataclasses.asdict(on.sm_stats) == dataclasses.asdict(off.sm_stats)
        assert on.cycles == off.cycles
        assert on.time_ms == off.time_ms

    def test_set_associative_on_off_identical(self, monkeypatch):
        """assoc > 1 now runs the vectorised replay under auto — and
        both implementations agree end to end through simulate_layer.
        """
        monkeypatch.delenv("REPRO_FAST_PATH", raising=False)
        spec = get_layer("gan", "TC3")
        on = simulate_layer(
            spec, EliminationMode.DUPLO, lhb_assoc=4,
            options=dataclasses.replace(OPTIONS, fast_path="on"),
        )
        off = simulate_layer(
            spec, EliminationMode.DUPLO, lhb_assoc=4,
            options=dataclasses.replace(OPTIONS, fast_path="off"),
        )
        assert dataclasses.asdict(on.stats) == dataclasses.asdict(off.stats)
        assert on.cycles == off.cycles

    def test_no_covered_config_falls_back(self, monkeypatch):
        """Every simulate_layer configuration in the matrix takes the
        fast path under auto: a silent regression to the event replay
        shows up as a non-zero ``fastpath.fallback`` counter."""
        monkeypatch.delenv("REPRO_FAST_PATH", raising=False)
        obs.enable()
        obs.reset()
        try:
            spec = get_layer("gan", "TC3")
            for mode, entries, assoc in [
                (EliminationMode.BASELINE, 1024, 1),
                (EliminationMode.DUPLO, 1024, 1),
                (EliminationMode.DUPLO, 1024, 4),
                (EliminationMode.DUPLO, 1024, 8),
                (EliminationMode.DUPLO, None, 1),
                (EliminationMode.WIR, 64, 2),
            ]:
                simulate_layer(
                    spec, mode, lhb_entries=entries, lhb_assoc=assoc,
                    options=OPTIONS,
                )
            counters = obs.snapshot()["counters"]
            assert "fastpath.fallback" not in counters, counters
            assert counters.get("fastpath.replays", 0) > 0
        finally:
            obs.reset()
            obs.disable()

    def test_warm_lhb_stays_on_fast_path(self, monkeypatch):
        """The retired fallback: a warm caller-supplied buffer now
        seeds the recurrence, so auto keeps the fast path and the
        ``fastpath.fallback.warm-lhb`` counter stays at zero."""
        monkeypatch.delenv("REPRO_FAST_PATH", raising=False)
        warm = make_lhb(1024, 1, 4096, True)
        warm.access(1, 0, dest_reg=0)
        obs.enable()
        obs.reset()
        try:
            assert _resolve_fast_path(
                SimulationOptions(fast_path="auto"), EliminationMode.DUPLO,
                warm,
            )
            counters = obs.snapshot()["counters"]
            assert "fastpath.fallback" not in counters, counters
            assert "fastpath.fallback.warm-lhb" not in counters, counters
        finally:
            obs.reset()
            obs.disable()

    def test_forced_on_accepts_warm_lhb(self):
        warm = make_lhb(1024, 1, 4096, True)
        warm.access(1, 0, dest_reg=0)
        assert _resolve_fast_path(
            SimulationOptions(fast_path="on"), EliminationMode.DUPLO, warm
        )

    def test_env_override_steers_auto(self, monkeypatch):
        lhb = make_lhb(1024, 1, 4096, True)
        auto = SimulationOptions(fast_path="auto")
        monkeypatch.setenv("REPRO_FAST_PATH", "off")
        assert not _resolve_fast_path(auto, EliminationMode.DUPLO, lhb)
        monkeypatch.setenv("REPRO_FAST_PATH", "on")
        assert _resolve_fast_path(auto, EliminationMode.DUPLO, lhb)
        # Explicit options beat the environment.
        assert not _resolve_fast_path(
            dataclasses.replace(auto, fast_path="off"),
            EliminationMode.DUPLO, lhb,
        )

    def test_invalid_choice_rejected(self):
        with pytest.raises(ValueError, match="fast_path"):
            SimulationOptions(fast_path="sometimes")


class TestMultiKernelEquivalence:
    """PID-tagged shared-LHB interleavings: the fast path folds the PID
    into the tag key and must reproduce the event scheduler exactly —
    per-kernel hit counts and every shared-buffer counter."""

    @staticmethod
    def _run(specs, options, entries, assoc, chunk):
        lhb = make_lhb(entries, assoc, options.lhb_lifetime,
                       options.lhb_hashed_index)
        shares = simulate_shared_lhb(
            specs, entries, chunk=chunk, options=options, lhb=lhb
        )
        return shares, lhb

    @pytest.mark.parametrize("network,layer", TABLE_I_LAYERS)
    def test_bit_identical_shared_replay(self, network, layer):
        """Each Table I layer co-scheduled with a second kernel."""
        specs = [get_layer(network, layer), get_layer("gan", "TC3")]
        on = dataclasses.replace(OPTIONS, fast_path="on")
        off = dataclasses.replace(OPTIONS, fast_path="off")
        s_on, l_on = self._run(specs, on, 256, 1, 128)
        s_off, l_off = self._run(specs, off, 256, 1, 128)
        assert dataclasses.asdict(l_on.stats) == dataclasses.asdict(
            l_off.stats
        ), (network, layer)
        for a, b in zip(s_on, s_off):
            assert (a.pid, a.lookups, a.hits) == (b.pid, b.lookups, b.hits)
        assert sum(s.lookups for s in s_on) == l_on.stats.lookups

    @pytest.mark.parametrize("entries,assoc", [(256, 4), (64, 8), (None, 1)])
    @pytest.mark.parametrize("chunk", [64, 997])
    def test_geometry_and_chunk_axes(self, entries, assoc, chunk):
        """Associativity x interleave-granularity sweep, incl. oracle
        and a chunk size coprime to the stream lengths."""
        specs = [get_layer("gan", "TC3"), get_layer("resnet", "C2")]
        on = dataclasses.replace(OPTIONS, fast_path="on")
        off = dataclasses.replace(OPTIONS, fast_path="off")
        s_on, l_on = self._run(specs, on, entries, assoc, chunk)
        s_off, l_off = self._run(specs, off, entries, assoc, chunk)
        assert dataclasses.asdict(l_on.stats) == dataclasses.asdict(
            l_off.stats
        ), (entries, assoc, chunk)
        for a, b in zip(s_on, s_off):
            assert (a.lookups, a.hits) == (b.lookups, b.hits)

    def test_three_kernels_hold_isolation(self):
        """PIDs keep identical kernels from aliasing: three copies of
        one spec share no tags, so hits match the solo run only when
        capacity permits — here we just require fast == event."""
        spec = get_layer("gan", "TC3")
        on = dataclasses.replace(OPTIONS, fast_path="on")
        off = dataclasses.replace(OPTIONS, fast_path="off")
        s_on, l_on = self._run([spec] * 3, on, 128, 2, 32)
        s_off, l_off = self._run([spec] * 3, off, 128, 2, 32)
        assert dataclasses.asdict(l_on.stats) == dataclasses.asdict(
            l_off.stats
        )
        for a, b in zip(s_on, s_off):
            assert (a.lookups, a.hits) == (b.lookups, b.hits)

    def test_warm_lhb_stays_fast_and_matches_event(self, monkeypatch):
        """A warm shared buffer seeds the closed forms: auto keeps the
        fast path (no fallback counted) and the result matches a pure
        event run continued from the same state."""
        monkeypatch.delenv("REPRO_FAST_PATH", raising=False)
        specs = [get_layer("gan", "TC3")]
        warm_a = make_lhb(128, 1, 4096, True)
        warm_a.access(7, 0, dest_reg=0)
        warm_b = make_lhb(128, 1, 4096, True)
        warm_b.access(7, 0, dest_reg=0)
        auto = dataclasses.replace(OPTIONS, fast_path="auto")
        off = dataclasses.replace(OPTIONS, fast_path="off")
        obs.enable()
        obs.reset()
        try:
            s_auto = simulate_shared_lhb(specs, 128, options=auto, lhb=warm_a)
            counters = obs.snapshot()["counters"]
            assert "fastpath.fallback" not in counters, counters
            assert counters.get("fastpath.shared_replays") == 1
        finally:
            obs.reset()
            obs.disable()
        s_off = simulate_shared_lhb(specs, 128, options=off, lhb=warm_b)
        assert dataclasses.asdict(warm_a.stats) == dataclasses.asdict(
            warm_b.stats
        )
        assert s_auto[0].hits == s_off[0].hits
        assert warm_a.live_entries() == warm_b.live_entries()


class TestTraceSerialization:
    def test_npz_round_trip(self, tmp_path):
        spec, trace = layer_trace("gan", "TC1")
        buf = io.BytesIO()
        trace.save_npz(buf)
        buf.seek(0)
        loaded = type(trace).load_npz(buf)
        for field in ("kind", "address", "warp", "instr"):
            np.testing.assert_array_equal(
                getattr(trace, field), getattr(loaded, field), err_msg=field
            )
        assert trace.meta() == loaded.meta()
        # The round-tripped trace replays identically.
        event, fast = both_replays(
            loaded, spec, OPTIONS, EliminationMode.DUPLO
        )
        assert_identical(event, fast, "npz round trip")

    def test_disk_store_uses_npz(self, tmp_path):
        _, trace = layer_trace("gan", "TC1")
        cache = DiskCache(tmp_path)
        cache.put_trace("a" * 64, trace)
        files = list(tmp_path.rglob("*.npz"))
        assert len(files) == 1
        assert not list(tmp_path.rglob("*.pkl"))
        loaded = cache.get_trace("a" * 64)
        np.testing.assert_array_equal(trace.address, loaded.address)
        # Compression pays: well under the pickled int64 form.
        import pickle

        assert files[0].stat().st_size < len(pickle.dumps(trace)) / 4


class TestCacheKeyNormalisation:
    def test_fast_path_choice_shares_artifacts(self):
        """on/off/auto runs must hit the same cached trace and result."""
        spec = get_layer("yolo", "C2")
        keys = set()
        rkeys = set()
        for choice in ("auto", "on", "off"):
            options = dataclasses.replace(OPTIONS, fast_path=choice)
            keys.add(trace_key(spec, TITAN_V, BASELINE_KERNEL, options))
            rkeys.add(
                result_key(
                    spec, TITAN_V, BASELINE_KERNEL, options,
                    "duplo", 1024, 1,
                )
            )
        assert len(keys) == 1
        assert len(rkeys) == 1

    def test_real_option_changes_still_split(self):
        spec = get_layer("yolo", "C2")
        a = trace_key(spec, TITAN_V, BASELINE_KERNEL, OPTIONS)
        b = trace_key(
            spec, TITAN_V, BASELINE_KERNEL,
            dataclasses.replace(OPTIONS, max_ctas=2),
        )
        assert a != b
