"""Cache-scaling study (Section V-D)."""

import pytest

from repro.analysis.cachestudy import cache_scaling_study
from repro.gpu.config import KernelConfig, SimulationOptions

from tests.conftest import make_spec

LAYERS = (make_spec(name="s", batch=2, h=12, w=12, c=16, filters=16),)
OPTIONS = SimulationOptions()
KERNEL = KernelConfig(warp_runahead=8)


@pytest.fixture(scope="module")
def result():
    return cache_scaling_study(LAYERS, options=OPTIONS, kernel=KERNEL)


class TestCacheScaling:
    def test_row_per_layer(self, result):
        assert len(result.rows) == len(LAYERS)
        assert {"layer", "bigger_caches", "duplo"} <= set(result.rows[0])

    def test_bigger_caches_never_hurt(self, result):
        assert result.bigger_caches_gain >= -1e-9

    def test_duplo_beats_cache_scaling(self, result):
        """Section V-D's conclusion: deduplication, not capacity."""
        assert result.caches_are_not_the_answer
        assert result.duplo_gain > result.bigger_caches_gain

    def test_custom_factors(self):
        r = cache_scaling_study(
            LAYERS, l1_factor=2.0, l2_factor=2.0, options=OPTIONS,
            kernel=KERNEL,
        )
        assert r.bigger_caches_gain <= 0.10
