"""Export every figure's data series to CSV for external plotting.

Writes one ``results/figureN.csv`` per experiment (plus table2 and
energy_area) so the paper's plots can be regenerated with any plotting
tool.  Accepts ``--quick`` for the capped configuration.

Run:  python scripts/export_figures.py [--quick]
"""

import csv
import os
import sys

from repro.analysis.experiments import (
    energy_area,
    figure2,
    figure3,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    table2,
)
from repro.conv.workloads import ALL_LAYERS, get_layer
from repro.gpu.config import SimulationOptions


def flatten(row: dict) -> dict:
    """Expand nested dict cells (Figure 11's breakdowns) to columns."""
    flat = {}
    for key, value in row.items():
        if isinstance(value, dict):
            for sub, v in value.items():
                flat[f"{key}_{sub}"] = v
        else:
            flat[key] = value
    return flat


def main() -> None:
    quick = "--quick" in sys.argv
    if quick:
        layers = [get_layer(n, l) for n, l in
                  [("resnet", "C2"), ("gan", "TC3"), ("yolo", "C2")]]
        options = SimulationOptions(max_ctas=3)
    else:
        layers = list(ALL_LAYERS)
        options = SimulationOptions()

    experiments = [
        figure2(layers),
        figure3(layers),
        table2(),
        figure9(layers, options),
        figure10(layers, options),
        figure11(layers, options=options),
        figure12(layers, options),
        figure13(layers, options),
        figure14(options=options),
        energy_area(layers, options=options),
    ]
    os.makedirs("results", exist_ok=True)
    for exp in experiments:
        rows = [flatten(r) for r in exp.rows]
        columns = list(dict.fromkeys(k for r in rows for k in r))
        path = os.path.join("results", f"{exp.name}.csv")
        with open(path, "w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=columns)
            writer.writeheader()
            writer.writerows(rows)
        summary_path = os.path.join("results", f"{exp.name}_summary.csv")
        with open(summary_path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["metric", "measured", "paper"])
            for key, value in exp.summary.items():
                writer.writerow([key, value, exp.paper.get(key, "")])
        print(f"wrote {path} ({len(rows)} rows)", flush=True)


if __name__ == "__main__":
    main()
