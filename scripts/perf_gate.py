"""CI perf-regression gate over the not-slow benchmark kernel set.

Runs a fixed suite of micro-benchmarks (trace generation — the
closed-form synthesizer and the retired per-turn loop generator it
replaced — fast- and event-path replays — direct-mapped and 8-way
set-associative — a PID-tagged multi-kernel shared-LHB replay in both
implementations, an end-to-end baseline/Duplo pair, a warm-cache sweep
rerun, a cold fast-path query, an analytic-tier geometry sweep, a cold
parallel sweep under four executor configurations: serial, adaptive
cutover, forced thread pool, forced process pool, a subprocess
streaming sweep — driven through the SweepExecutor — whose manifest
peak RSS must stay under a committed cap, and a warm-service QPS run
through the full ``repro.serve`` HTTP stack with every response
checked bit-identical against ``simulate_point``), takes the
**median over N repeats**, and either records a baseline or checks
the current build against one.

Record a fresh baseline (after an intentional perf-relevant change)::

    PYTHONPATH=src python scripts/perf_gate.py --record

which writes ``BENCH_<date>.json`` at the repository root — commit it
together with the change.  Recording refuses to run from a dirty git
tree (the baseline must describe a committed state); pass
``--allow-dirty`` to override deliberately.  Check against the committed baseline (the
lexicographically newest ``BENCH_*.json``)::

    PYTHONPATH=src python scripts/perf_gate.py --check

The check applies three rules, strictest first:

1. **counters** must match the baseline exactly — they are
   deterministic model outputs (LHB hits, events replayed), so any
   drift is a correctness regression, not noise;
2. **derived ratios** (``fast_path_speedup`` /
   ``assoc_fast_path_speedup`` / ``multikernel_fast_path_speedup`` —
   event replay over fast replay — ``trace_gen_speedup`` — the legacy
   loop generator over the closed-form synthesizer on the same trace,
   target >= 5x — and ``analytic_speedup`` — a cold
   fast-path query over one warm-profile analytic query, target
   >= 100x — all measured in the same process on the same inputs —
   plus ``adaptive_cutover_ratio``, the serial sweep over the adaptive
   one, which the cutover must keep >= ~1.0 on any host, and
   ``parallel_efficiency``, the best forced-pool speedup per usable
   worker) must stay within ``--tolerance`` (default 25%) of the
   baseline, because ratios cancel host speed and are comparable
   across machines (``parallel_efficiency`` alone also depends on the
   host's core count);
3. **absolute medians** must stay under ``baseline * --time-tolerance``
   (default 3.0x) — a loose catastrophic-regression backstop, since CI
   runners and developer machines differ widely in absolute speed.

Artifacts: ``--metrics-out`` / ``--manifest-out`` dump the
:mod:`repro.obs` metrics snapshot and run manifest (the CI perf lane
uploads both).  See ``docs/OBSERVABILITY.md`` for how to read a
failure.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import statistics
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))

SCHEMA_VERSION = 1
DEFAULT_REPEATS = 5
DEFAULT_TOLERANCE = 0.25
DEFAULT_TIME_TOLERANCE = 3.0
#: Worker count for the parallel_sweep.* benchmarks; the derived
#: ``parallel_efficiency`` divides the forced-pool speedup by
#: ``min(PARALLEL_SWEEP_JOBS, cpu_count)`` so the ratio is an
#: efficiency per *usable* worker, not per requested one.
PARALLEL_SWEEP_JOBS = 4
#: Geometry queries per timed analytic_sweep run (32 distinct
#: geometries x 10 passes, so the timed body is long enough for a
#: stable median); the derived ``analytic_speedup`` divides the
#: cold-query median by the per-query analytic median.
ANALYTIC_SWEEP_GEOMETRIES = 32
ANALYTIC_SWEEP_PASSES = 10
ANALYTIC_SWEEP_QUERIES = ANALYTIC_SWEEP_GEOMETRIES * ANALYTIC_SWEEP_PASSES
#: Generations per timed run for the two generate-only benchmarks
#: (closed-form and legacy-loop).  One synthesized trace is ~2 ms —
#: far too short for a stable median on a busy runner — so both
#: bodies repeat the identical generation; the derived
#: ``trace_gen_speedup`` divides per-pass cost either way.
TRACE_GEN_PASSES = 5
#: Batch size for the streaming_sweep full-network run — large enough
#: that the extrapolated grids dwarf the traced slice, exercising the
#: bounded-memory claim on a workload whose full event columns would
#: otherwise be the biggest allocation in the process.
STREAMING_SWEEP_BATCH = 64
#: Streamed block budget for the streaming_sweep child (events per
#: :class:`~repro.gpu.isa.TraceBlock`); small enough that hundreds of
#: blocks flow through every layer.
STREAMING_SWEEP_BLOCK_EVENTS = 65536
#: Warm-query passes per timed serve_warm_qps run: each pass answers
#: the full query set once over HTTP against the in-process server, so
#: one timed body is ``SERVE_WARM_PASSES * len(set)`` round-trips —
#: long enough for a stable median through the socket stack.
SERVE_WARM_PASSES = 25
#: Committed peak-RSS cap for the streaming_sweep child process, read
#: from its obs run manifest (``ru_maxrss``).  Measured ~211 MB on the
#: reference host (interpreter + NumPy import dominate); the cap is a
#: regression tripwire for unbounded buffering, not a tight budget.
STREAMING_SWEEP_RSS_CAP_BYTES = 512 * 2**20

#: Child body for the streaming_sweep benchmark: a full-network
#: large-batch cold sweep *through the SweepExecutor* in its own
#: interpreter so the manifest's ``peak_rss_bytes`` (ru_maxrss — a
#: high-water mark, never resettable in-process) measures exactly this
#: workload and nothing else.  Driving the executor (rather than
#: calling ``simulate_layer_streaming`` directly) locks the sweep-path
#: streaming dispatch: every cold fast-tier point must route through
#: the bounded-RSS entry, asserted by the ``executor.streamed_points``
#: counter the child exports alongside its results.
_STREAMING_SWEEP_CHILD = """\
import dataclasses
import json
import os
import sys

from repro import obs
from repro.conv.workloads import layers_for_network
from repro.gpu.config import SimulationOptions
from repro.gpu.kernel import TRACE_BLOCK_ENV
from repro.gpu.ldst import EliminationMode
from repro.runtime.executor import SimPoint, SweepExecutor

batch, block_events = json.loads(sys.argv[1])
os.environ[TRACE_BLOCK_ENV] = str(block_events)
obs.enable()
obs.reset()
points = [
    SimPoint(
        spec=dataclasses.replace(spec, batch=batch),
        mode=EliminationMode.DUPLO,
        options=SimulationOptions(engine="fast"),
    )
    for spec in layers_for_network("yolo")
]
results = SweepExecutor(jobs=1, backend="serial").run(points)
rows = [
    [
        result.cycles,
        int(result.stats.lhb_hits),
        int(result.stats.lhb_lookups),
        int(result.stats.eliminated_fragments),
    ]
    for result in results
]
streamed = obs.counters_with_prefix("executor.streamed_points")
manifest = obs.collect_manifest("streaming_sweep", argv=sys.argv)
json.dump(
    {
        "rows": rows,
        "streamed_points": streamed.get("executor.streamed_points", 0),
        "peak_rss_bytes": manifest.peak_rss_bytes,
    },
    sys.stdout,
)
"""


# ----------------------------------------------------------------------
# Benchmark definitions
# ----------------------------------------------------------------------

def _bench_suite() -> Dict[str, Callable[[], Tuple[Callable, Callable]]]:
    """Name → setup() returning ``(timed_fn, counters_fn)``.

    ``setup`` runs once (untimed); ``timed_fn`` is the measured body,
    repeated N times; ``counters_fn`` extracts the deterministic
    counters from the last run's return value.
    """
    from repro.analysis.sweeps import lhb_size_sweep
    from repro.conv.workloads import get_layer
    from repro.gpu.config import BASELINE_KERNEL, SimulationOptions, TITAN_V
    from repro.gpu.fastpath import replay_trace_fast
    from repro.gpu.kernel import generate_sm_trace
    from repro.gpu.ldst import EliminationMode, replay_trace
    from repro.gpu.simulator import clear_trace_cache, make_lhb, simulate_pair
    from repro.runtime import DiskCache, SweepExecutor

    yolo_c2 = get_layer("yolo", "C2")
    gan_tc3 = get_layer("gan", "TC3")
    replay_options = SimulationOptions(max_ctas=8)

    def trace_gen_setup():
        # max_ctas=8 keeps the timed body large enough that the
        # synthesizer's fixed per-plan overhead is amortised — the
        # regime trace_gen_speedup is meant to price.
        options = SimulationOptions(max_ctas=8)

        def run():
            for _ in range(TRACE_GEN_PASSES - 1):
                generate_sm_trace(yolo_c2, TITAN_V, BASELINE_KERNEL, options)
            return generate_sm_trace(yolo_c2, TITAN_V, BASELINE_KERNEL, options)

        def counters(trace):
            return {
                "events": int(trace.kind.size),
                "traced_ctas": int(trace.traced_ctas),
            }

        return run, counters

    def trace_generation_loop_setup():
        """Generate-only, via the retired per-turn loop generator.

        Same layer and options as ``trace_gen.yolo_c2`` (the
        closed-form synthesizer), so the derived ``trace_gen_speedup``
        divides like for like; identical counters double as a spot
        check that the legacy path still produces the same trace.
        """
        from repro.gpu.kernel import TRACE_GEN_ENV

        options = SimulationOptions(max_ctas=8)

        def run():
            os.environ[TRACE_GEN_ENV] = "loop"
            try:
                for _ in range(TRACE_GEN_PASSES - 1):
                    generate_sm_trace(
                        yolo_c2, TITAN_V, BASELINE_KERNEL, options
                    )
                return generate_sm_trace(
                    yolo_c2, TITAN_V, BASELINE_KERNEL, options
                )
            finally:
                del os.environ[TRACE_GEN_ENV]

        def counters(trace):
            return {
                "events": int(trace.kind.size),
                "traced_ctas": int(trace.traced_ctas),
            }

        return run, counters

    def streaming_sweep_setup():
        """Full-network large-batch cold sweep, bounded peak RSS.

        The timed body launches a child interpreter running a
        :class:`~repro.runtime.executor.SweepExecutor` over every yolo
        layer at batch ``STREAMING_SWEEP_BATCH`` with a small block
        budget — the executor's streaming dispatch must route every
        cold fast-tier point through
        :func:`~repro.gpu.simulator.simulate_layer_streaming`
        (``all_points_streamed``) — then reads the child's obs run
        manifest:
        ``peak_rss_bytes`` must stay under the committed
        ``STREAMING_SWEEP_RSS_CAP_BYTES`` and the streamed results
        must equal the in-memory :func:`simulate_layer` reference
        computed untimed here.  Both checks land in the deterministic
        counters (``rss_under_cap`` / ``matches_inmemory``); the
        actual high-water mark is kept outside ``counters`` (in
        ``extra``) because absolute RSS is host-shaped.
        """
        import dataclasses
        import subprocess

        from repro.conv.workloads import layers_for_network
        from repro.gpu.simulator import simulate_layer

        specs = [
            dataclasses.replace(spec, batch=STREAMING_SWEEP_BATCH)
            for spec in layers_for_network("yolo")
        ]
        reference = []
        for spec in specs:
            result = simulate_layer(
                spec,
                mode=EliminationMode.DUPLO,
                options=SimulationOptions(engine="fast"),
            )
            reference.append([
                result.cycles,
                int(result.stats.lhb_hits),
                int(result.stats.lhb_lookups),
                int(result.stats.eliminated_fragments),
            ])

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (
                os.path.join(REPO_ROOT, "src"), env.get("PYTHONPATH")
            ) if p
        )
        child_args = json.dumps(
            [STREAMING_SWEEP_BATCH, STREAMING_SWEEP_BLOCK_EVENTS]
        )

        def run():
            proc = subprocess.run(
                [sys.executable, "-c", _STREAMING_SWEEP_CHILD, child_args],
                capture_output=True, text=True, env=env, check=True,
            )
            return json.loads(proc.stdout)

        def counters(payload):
            peak = payload["peak_rss_bytes"]
            return {
                "rows": len(payload["rows"]),
                "rss_under_cap": int(
                    peak is None or peak < STREAMING_SWEEP_RSS_CAP_BYTES
                ),
                "matches_inmemory": int(payload["rows"] == reference),
                "all_points_streamed": int(
                    payload["streamed_points"] == len(payload["rows"])
                ),
            }

        def extra(payload):
            return {
                "peak_rss_bytes": payload["peak_rss_bytes"],
                "rss_cap_bytes": STREAMING_SWEEP_RSS_CAP_BYTES,
            }

        return run, counters, extra

    def _replay_setup(replay, assoc=1):
        trace = generate_sm_trace(
            yolo_c2, TITAN_V, BASELINE_KERNEL, replay_options
        )

        def run():
            lhb = make_lhb(
                1024,
                assoc,
                replay_options.lhb_lifetime,
                replay_options.lhb_hashed_index,
            )
            return replay(
                trace, yolo_c2, TITAN_V, replay_options,
                EliminationMode.DUPLO, lhb,
            )

        def counters(stats):
            return {
                "events": int(trace.kind.size),
                "lhb_lookups": int(stats.lhb_lookups),
                "lhb_hits": int(stats.lhb_hits),
                "eliminated_fragments": int(stats.eliminated_fragments),
            }

        return run, counters

    def _multikernel_setup(fast):
        """Shared-LHB replay of a two-kernel interleave, PID-tagged.

        The streams and their round-robin interleave are prepared
        untimed (both implementations consume the identical arrays);
        the measured body is purely the buffer resolution — closed
        form vs. the event-level state machine.
        """
        from repro.gpu.fastpath import simulate_lhb_stream
        from repro.gpu.multikernel import _interleave, _workspace_stream

        options = SimulationOptions(max_ctas=4)
        streams = [
            _workspace_stream(spec, TITAN_V, BASELINE_KERNEL, options)
            for spec in (yolo_c2, gan_tc3)
        ]
        batch_i, element_i, pid_i = _interleave(streams, 256)
        element_l = element_i.tolist()
        batch_l = batch_i.tolist()
        pid_l = pid_i.tolist()

        def fresh():
            return make_lhb(
                1024, 1, options.lhb_lifetime, options.lhb_hashed_index
            )

        def run_fast():
            lhb = fresh()
            simulate_lhb_stream(element_i, batch_i, lhb, pid=pid_i)
            return lhb

        def run_event():
            lhb = fresh()
            access = lhb.access
            for e, b, p in zip(element_l, batch_l, pid_l):
                access(e, b, 0, pid=p)
            return lhb

        def counters(lhb):
            return {
                "lookups": int(lhb.stats.lookups),
                "hits": int(lhb.stats.hits),
                "compulsory_misses": int(lhb.stats.compulsory_misses),
            }

        return (run_fast if fast else run_event), counters

    def simulate_pair_setup():
        options = SimulationOptions(max_ctas=2)

        def run():
            # Trace generation is part of the measured end-to-end cost.
            clear_trace_cache()
            return simulate_pair(gan_tc3, lhb_entries=1024, options=options)

        def counters(pair):
            base, duplo = pair
            return {
                "baseline_lhb_hits": int(base.stats.lhb_hits),
                "duplo_lhb_hits": int(duplo.stats.lhb_hits),
                "duplo_lhb_lookups": int(duplo.stats.lhb_lookups),
            }

        return run, counters

    def cold_query_setup():
        """One cold exact query: trace generation plus fast replay.

        This is the cost the analytic tier displaces; the
        ``analytic_speedup`` ratio divides it by one warm-profile
        analytic query.
        """
        options = SimulationOptions(max_ctas=4)

        def run():
            trace = generate_sm_trace(
                yolo_c2, TITAN_V, BASELINE_KERNEL, options
            )
            lhb = make_lhb(
                1024, 1, options.lhb_lifetime, options.lhb_hashed_index
            )
            return replay_trace_fast(
                trace, yolo_c2, TITAN_V, options,
                EliminationMode.DUPLO, lhb,
            )

        def counters(stats):
            return {
                "lhb_lookups": int(stats.lhb_lookups),
                "lhb_hits": int(stats.lhb_hits),
                "eliminated_fragments": int(stats.eliminated_fragments),
            }

        return run, counters

    def analytic_sweep_setup():
        """32 LHB-geometry queries answered from one warm profile.

        The profile build (the only trace-stream work the analytic
        tier ever does) runs once, untimed — matching how sweeps use
        it: amortised per layer, O(1) per geometry afterwards.
        """
        from repro.analytic import clear_profile_cache, layer_profile, predict_stats
        from repro.core.lhb import LoadHistoryBuffer

        options = SimulationOptions(max_ctas=4)
        clear_profile_cache()
        profile = layer_profile(
            yolo_c2, EliminationMode.DUPLO, TITAN_V, BASELINE_KERNEL, options
        )
        geometries = [
            (sets * assoc, assoc, lifetime, True)
            for sets in (64, 256, 1024, 4096)
            for assoc in (1, 2, 4, 8)
            for lifetime in (4096, None)
        ]
        assert len(geometries) == ANALYTIC_SWEEP_GEOMETRIES

        def run():
            total_hits = 0
            for _ in range(ANALYTIC_SWEEP_PASSES):
                for entries, assoc, lifetime, hashed in geometries:
                    stats = predict_stats(
                        profile,
                        LoadHistoryBuffer(
                            num_entries=entries, assoc=assoc,
                            lifetime=lifetime, hashed_index=hashed,
                        ),
                    )
                    total_hits += stats.lhb_hits
            return total_hits

        run()  # untimed warm-up: builds the profile's lazy level tables

        def counters(total_hits):
            return {
                "queries": ANALYTIC_SWEEP_QUERIES,
                "total_lhb_hits": int(total_hits),
            }

        return run, counters

    def _parallel_sweep_setup(backend, jobs, cutover=None):
        """Cold Figure 9 sweep under one executor configuration.

        Every timed run gets a fresh cache directory and a cleared
        in-process trace LRU, so all four variants (serial, adaptive,
        forced threads, forced processes) price the identical cold
        workload and their min_s values divide into honest speedups.
        """
        import atexit
        import itertools
        import shutil
        import tempfile

        options = SimulationOptions(max_ctas=1)
        layers = [get_layer("resnet", "C2"), get_layer("gan", "C4")]
        tmp = tempfile.mkdtemp(prefix="perf_gate_psweep_")
        atexit.register(shutil.rmtree, tmp, True)
        fresh_dir = itertools.count()
        kwargs = {} if cutover is None else {"cutover": cutover}

        def run():
            clear_trace_cache()
            cache = DiskCache(os.path.join(tmp, str(next(fresh_dir))))
            return lhb_size_sweep(
                layers, options=options,
                executor=SweepExecutor(
                    jobs=jobs, cache=cache, backend=backend, **kwargs
                ),
            )

        def counters(exp):
            return {"rows": len(exp.rows)}

        return run, counters

    def serve_warm_setup():
        """Warm-cache QPS through the full service + HTTP stack.

        An in-process :class:`~repro.serve.QueryService` (fresh cache
        dir) serves the load harness's default query set; the warm-up
        pass and per-query reference payloads are computed untimed.
        The timed body answers the whole set ``SERVE_WARM_PASSES``
        times over real localhost HTTP, comparing every response to
        its reference — so ``bit_identical`` is a deterministic
        counter while the achieved QPS lands in ``extra`` (absolute
        throughput is host-shaped; the 3x median backstop still
        catches a collapse).
        """
        import atexit
        import shutil
        import tempfile
        import threading
        import urllib.request

        from repro.runtime.executor import simulate_point
        from repro.serve import QueryService, ServiceConfig, make_server
        from repro.serve.schema import parse_query, query_point, result_payload

        sys.path.insert(0, os.path.join(REPO_ROOT, "scripts"))
        from load_test import DEFAULT_QUERIES

        tmp = tempfile.mkdtemp(prefix="perf_gate_serve_")
        atexit.register(shutil.rmtree, tmp, True)
        service = QueryService(ServiceConfig(cache_dir=tmp))
        server = make_server("127.0.0.1", 0, service)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        atexit.register(server.shutdown)
        host, port = server.server_address[:2]
        url = f"http://{host}:{port}/query"

        def ask(body):
            req = urllib.request.Request(
                url,
                data=json.dumps(body).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(req, timeout=60) as resp:
                return json.loads(resp.read())

        queries = list(DEFAULT_QUERIES)
        reference = []
        for body in queries:
            ask(body)  # untimed warm-up: caches + analytic profile
            q = parse_query(body)
            reference.append(
                json.loads(
                    json.dumps(result_payload(q, simulate_point(query_point(q))))
                )
            )

        def run():
            identical = 0
            for _ in range(SERVE_WARM_PASSES):
                for body, expect in zip(queries, reference):
                    if ask(body) == expect:
                        identical += 1
            return identical

        total = SERVE_WARM_PASSES * len(queries)

        def counters(identical):
            return {
                "queries": total,
                "bit_identical": int(identical == total),
            }

        def extra(identical):
            return {"note": "qps = queries / median_s (host-shaped)"}

        return run, counters, extra

    def warm_sweep_setup():
        import atexit
        import shutil
        import tempfile

        options = SimulationOptions(max_ctas=1)
        layers = [get_layer("resnet", "C2"), get_layer("gan", "C4")]
        tmp = tempfile.mkdtemp(prefix="perf_gate_cache_")
        atexit.register(shutil.rmtree, tmp, True)
        cache = DiskCache(tmp)
        # Populate once; the timed body is the fully warm rerun.
        lhb_size_sweep(
            layers, options=options,
            executor=SweepExecutor(jobs=1, cache=cache),
        )

        def run():
            clear_trace_cache()
            return lhb_size_sweep(
                layers, options=options,
                executor=SweepExecutor(jobs=1, cache=cache),
            )

        def counters(exp):
            return {"rows": len(exp.rows)}

        return run, counters

    return {
        "trace_gen.yolo_c2": trace_gen_setup,
        "trace_generation.yolo_c2": trace_generation_loop_setup,
        "streaming_sweep.yolo": streaming_sweep_setup,
        "replay_fast.yolo_c2": lambda: _replay_setup(replay_trace_fast),
        "replay_event.yolo_c2": lambda: _replay_setup(replay_trace),
        "replay_fast_assoc8.yolo_c2":
            lambda: _replay_setup(replay_trace_fast, assoc=8),
        "replay_event_assoc8.yolo_c2":
            lambda: _replay_setup(replay_trace, assoc=8),
        "multikernel_fast.yolo_gan": lambda: _multikernel_setup(True),
        "multikernel_event.yolo_gan": lambda: _multikernel_setup(False),
        "simulate_pair.gan_tc3": simulate_pair_setup,
        "sweep.warm_cache": warm_sweep_setup,
        "serve_warm_qps.default_set": serve_warm_setup,
        "parallel_sweep.serial":
            lambda: _parallel_sweep_setup("serial", jobs=1),
        "parallel_sweep.adaptive":
            lambda: _parallel_sweep_setup("auto", jobs=PARALLEL_SWEEP_JOBS),
        "parallel_sweep.threads":
            lambda: _parallel_sweep_setup(
                "threads", jobs=PARALLEL_SWEEP_JOBS, cutover=0
            ),
        "parallel_sweep.procs":
            lambda: _parallel_sweep_setup(
                "processes", jobs=PARALLEL_SWEEP_JOBS, cutover=0
            ),
        "cold_query.yolo_c2": cold_query_setup,
        "analytic_sweep.yolo_c2": analytic_sweep_setup,
    }


def run_suite(repeats: int) -> Dict[str, dict]:
    results: Dict[str, dict] = {}
    for name, setup in _bench_suite().items():
        # setup() returns (run, counters) or (run, counters, extra);
        # ``extra`` carries host-shaped diagnostics (e.g. the
        # streaming sweep's actual peak RSS) that the checker must
        # never compare across machines.
        run, counters, *rest = setup()
        times: List[float] = []
        last = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            last = run()
            times.append(time.perf_counter() - t0)
        results[name] = {
            "median_s": round(statistics.median(times), 5),
            "min_s": round(min(times), 5),
            "counters": counters(last),
        }
        if rest:
            results[name]["extra"] = rest[0](last)
        print(
            f"  {name:28s} median {results[name]['median_s']:.4f}s "
            f"(min {results[name]['min_s']:.4f}s)"
        )
    return results


def derived_ratios(benchmarks: Dict[str, dict]) -> Dict[str, float]:
    ratios: Dict[str, float] = {}
    pairs = {
        "fast_path_speedup":
            ("replay_event.yolo_c2", "replay_fast.yolo_c2"),
        "assoc_fast_path_speedup":
            ("replay_event_assoc8.yolo_c2", "replay_fast_assoc8.yolo_c2"),
        "multikernel_fast_path_speedup":
            ("multikernel_event.yolo_gan", "multikernel_fast.yolo_gan"),
    }
    for name, (event_key, fast_key) in pairs.items():
        fast = benchmarks.get(fast_key, {}).get("median_s")
        event = benchmarks.get(event_key, {}).get("median_s")
        if fast and event:
            ratios[name] = round(event / fast, 2)
    # Legacy per-turn loop generator over the closed-form synthesizer
    # on the identical trace; acceptance target >= 5x.
    loop = benchmarks.get("trace_generation.yolo_c2", {}).get("median_s")
    vectorized = benchmarks.get("trace_gen.yolo_c2", {}).get("median_s")
    if loop and vectorized:
        ratios["trace_gen_speedup"] = round(loop / vectorized, 2)
    cold = benchmarks.get("cold_query.yolo_c2", {}).get("median_s")
    sweep = benchmarks.get("analytic_sweep.yolo_c2", {}).get("median_s")
    if cold and sweep:
        # Cold exact query vs ONE analytic query off the warm profile.
        ratios["analytic_speedup"] = round(
            cold / (sweep / ANALYTIC_SWEEP_QUERIES), 2
        )
    # Parallel-sweep ratios use min_s, not median_s: pool start-up and
    # scheduler jitter skew single-run wall clocks upward, and the
    # best-of-N run is the closest observable to the true cost of each
    # dispatch strategy.  adaptive_cutover_ratio must stay >= ~1.0 on
    # ANY host — the cutover falls back to inline execution whenever
    # pooling cannot pay for itself — while parallel_efficiency is
    # per-usable-worker and therefore host-shaped (a 1-core baseline
    # checked on a 16-core runner compares forced-pool scaling, which
    # the 25% ratio tolerance is expected to absorb).
    # Warm service throughput in queries/second.  Like
    # parallel_efficiency this is host-shaped (localhost socket stack
    # plus interpreter speed); the 25% floor catches a serving-path
    # regression while a faster runner sails through.
    serve = benchmarks.get("serve_warm_qps.default_set", {})
    serve_queries = serve.get("counters", {}).get("queries")
    if serve.get("median_s") and serve_queries:
        ratios["serve_warm_qps"] = round(serve_queries / serve["median_s"], 1)
    serial_min = benchmarks.get("parallel_sweep.serial", {}).get("min_s")
    adaptive_min = benchmarks.get("parallel_sweep.adaptive", {}).get("min_s")
    if serial_min and adaptive_min:
        ratios["adaptive_cutover_ratio"] = round(serial_min / adaptive_min, 2)
    pool_mins = [
        benchmarks.get(name, {}).get("min_s")
        for name in ("parallel_sweep.threads", "parallel_sweep.procs")
    ]
    pool_mins = [m for m in pool_mins if m]
    if serial_min and pool_mins:
        workers = min(PARALLEL_SWEEP_JOBS, os.cpu_count() or 1)
        ratios["parallel_efficiency"] = round(
            (serial_min / min(pool_mins)) / workers, 2
        )
    return ratios


def build_report(repeats: int) -> dict:
    from repro.obs.manifest import git_revision, host_fingerprint

    print(f"running perf suite ({repeats} repeats per benchmark)...")
    benchmarks = run_suite(repeats)
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "duplo-perf-baseline",
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "repeats": repeats,
        "host": host_fingerprint(),
        "git": git_revision(REPO_ROOT),
        "benchmarks": benchmarks,
        "derived": derived_ratios(benchmarks),
    }


# ----------------------------------------------------------------------
# Baseline comparison
# ----------------------------------------------------------------------

def dirty_tree_entries(root: str) -> List[str]:
    """``git status --porcelain`` lines, or [] when clean / not a repo.

    A recorded baseline embeds the git revision; recording from a
    dirty tree would pin numbers no commit can reproduce.
    """
    import subprocess

    try:
        proc = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=root, capture_output=True, text=True, timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return []
    if proc.returncode != 0:
        return []
    return [line for line in proc.stdout.splitlines() if line.strip()]


def find_baseline(path: Optional[str]) -> str:
    if path:
        return path
    candidates = sorted(glob.glob(os.path.join(REPO_ROOT, "BENCH_*.json")))
    if not candidates:
        raise SystemExit(
            "no BENCH_*.json baseline found; record one with --record"
        )
    return candidates[-1]


def check_against(
    report: dict,
    baseline: dict,
    tolerance: float,
    time_tolerance: float,
) -> List[str]:
    """Compare a fresh report to the baseline; returns failure lines."""
    failures: List[str] = []
    base_benchmarks = baseline.get("benchmarks", {})
    for name, current in report["benchmarks"].items():
        ref = base_benchmarks.get(name)
        if ref is None:
            print(f"  {name}: no baseline entry (new benchmark) — skipped")
            continue
        for key, expected in ref.get("counters", {}).items():
            got = current["counters"].get(key)
            if got != expected:
                failures.append(
                    f"counter drift in {name}: {key} = {got}, "
                    f"baseline {expected} (deterministic — investigate "
                    "a model/behavior change, not noise)"
                )
        limit = ref["median_s"] * time_tolerance
        if current["median_s"] > limit:
            failures.append(
                f"time regression in {name}: median {current['median_s']:.4f}s "
                f"> {limit:.4f}s ({time_tolerance:.1f}x baseline "
                f"{ref['median_s']:.4f}s)"
            )
    for name, expected in baseline.get("derived", {}).items():
        got = report["derived"].get(name)
        if got is None:
            continue
        floor = expected * (1.0 - tolerance)
        if got < floor:
            failures.append(
                f"ratio regression: {name} = {got:.2f}, below "
                f"{floor:.2f} (baseline {expected:.2f} - {tolerance:.0%})"
            )
    return failures


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------

def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="record or check the perf-regression baseline"
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--record", action="store_true",
        help="run the suite and write a BENCH_<date>.json baseline",
    )
    mode.add_argument(
        "--check", action="store_true",
        help="run the suite and compare against the committed baseline",
    )
    parser.add_argument(
        "--baseline", default=None,
        help="baseline path (default: newest BENCH_*.json in repo root)",
    )
    parser.add_argument(
        "--out", default=None,
        help="output path for --record (default BENCH_<date>.json)",
    )
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="allowed fractional drop in derived ratios (default 0.25)",
    )
    parser.add_argument(
        "--time-tolerance", type=float, default=DEFAULT_TIME_TOLERANCE,
        help="allowed multiple of baseline median seconds (default 3.0)",
    )
    parser.add_argument(
        "--metrics-out", default=None,
        help="also write the repro.obs metrics snapshot as JSON",
    )
    parser.add_argument(
        "--manifest-out", default=None,
        help="also write a run manifest next to the gate output",
    )
    parser.add_argument(
        "--allow-dirty", action="store_true",
        help="let --record overwrite the baseline from a dirty git tree",
    )
    args = parser.parse_args(argv)

    if args.record and not args.allow_dirty:
        dirty = dirty_tree_entries(REPO_ROOT)
        if dirty:
            print(
                "refusing to record a perf baseline from a dirty git tree\n"
                "(the baseline embeds the git revision; uncommitted changes "
                "would make it\nirreproducible). Uncommitted entries:"
            )
            for line in dirty[:20]:
                print(f"  {line}")
            if len(dirty) > 20:
                print(f"  ... and {len(dirty) - 20} more")
            print(
                "\nInspect with `git diff`, commit or stash first, or rerun "
                "with --allow-dirty\nto record anyway."
            )
            return 1

    from repro import obs

    if args.metrics_out or args.manifest_out:
        obs.enable()
        obs.reset()
    with obs.span("perf_gate", mode="record" if args.record else "check"):
        report = build_report(args.repeats)

    if args.metrics_out:
        payload = {"schema_version": 1, "command": "perf_gate"}
        payload.update(obs.snapshot())
        with open(args.metrics_out, "w") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
            fh.write("\n")
    if args.manifest_out:
        obs.collect_manifest("perf_gate", argv=sys.argv).write(
            args.manifest_out
        )

    if args.record:
        out = args.out or os.path.join(
            REPO_ROOT, time.strftime("BENCH_%Y-%m-%d.json", time.gmtime())
        )
        with open(out, "w") as fh:
            json.dump(report, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"baseline written: {out}")
        return 0

    baseline_path = find_baseline(args.baseline)
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    print(f"checking against {baseline_path}")
    failures = check_against(
        report, baseline, args.tolerance, args.time_tolerance
    )
    if failures:
        print("\nPERF GATE FAILED:")
        for line in failures:
            print(f"  - {line}")
        print(
            "\nIf the regression is intentional, refresh the baseline "
            "(scripts/perf_gate.py --record) and commit the new "
            "BENCH_*.json; see docs/OBSERVABILITY.md."
        )
        return 1
    print("perf gate OK: counters exact, ratios and medians within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
