"""Closed-loop load harness for the ``repro serve`` query server.

Drives N client threads against a running server (or a server it
boots in-process with ``--spawn``), each looping over a fixed warm
query set as fast as responses come back, for a wall-clock window.
Reports sustained QPS and exact latency percentiles as JSON — the
numbers the CI ``service-load`` lane gates on and the
``serve_warm_qps`` BENCH entry tracks.

The harness is *closed-loop* (a thread issues its next query only
after the previous response lands), so reported QPS is what the
server actually sustained, not an open-loop arrival rate it silently
shed.  Before the timed window every query is answered once untimed —
warming the result cache / analytic profile — and ``--spot-check``
re-answers a sample locally through
:func:`repro.runtime.executor.simulate_point` and demands the served
payloads be bit-identical (field-for-field equality after the JSON
round-trip, which preserves floats exactly).

Typical CI invocation (against a separately booted server)::

    python scripts/load_test.py --url http://127.0.0.1:8321 \\
        --threads 8 --duration 15 --min-qps 200 --max-p99-ms 100 \\
        --spot-check 4 --out load_report.json

Exit status is non-zero when any request errors, a spot check
mismatches, or a ``--min-qps`` / ``--max-p99-ms`` floor is violated.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

SCHEMA_VERSION = 1

#: Default query set: one layer across LHB geometries and tiers — the
#: interactive design-space pattern the service exists for.  Analytic
#: queries exercise the closed-form tier; the ``auto`` ones land in
#: the warm result cache after the warm-up pass.
DEFAULT_QUERIES: Tuple[Dict[str, Any], ...] = tuple(
    {
        "network": "yolo",
        "layer": "C2",
        "mode": "duplo",
        "lhb_entries": entries,
        "max_ctas": 2,
        "engine": engine,
    }
    for engine in ("analytic", "auto")
    for entries in (64, 256, 1024, None)
)


def _post_json(url: str, payload: Any, timeout: float = 60.0) -> Any:
    req = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return json.loads(resp.read())


def _get_json(url: str, timeout: float = 30.0) -> Any:
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return json.loads(resp.read())


def _percentile(sorted_values: List[float], p: float) -> float:
    """Exact (nearest-rank) percentile of a sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(1, int(round(p * len(sorted_values) + 0.5)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def spot_check(base_url: str, queries: List[Dict[str, Any]]) -> int:
    """Served payload == local simulate_point payload, field for field."""
    from repro.serve.schema import parse_query, query_point, result_payload
    from repro.runtime.executor import simulate_point

    matches = 0
    for raw in queries:
        served = _post_json(base_url + "/query", raw)
        query = parse_query(raw)
        local = result_payload(query, simulate_point(query_point(query)))
        # Round-trip the local payload through JSON so both sides have
        # identical types (tuples->lists); float values survive exactly.
        if served == json.loads(json.dumps(local)):
            matches += 1
        else:
            print(f"spot check MISMATCH for {raw}", file=sys.stderr)
    return matches


def run_load(
    base_url: str,
    queries: List[Dict[str, Any]],
    threads: int,
    duration_s: float,
) -> Tuple[int, int, List[float], float]:
    """Closed-loop window: (completed, errors, latencies_s, elapsed_s)."""
    deadline = time.monotonic() + duration_s
    per_thread: List[List[float]] = [[] for _ in range(threads)]
    errors = [0] * threads

    def worker(tid: int) -> None:
        url = base_url + "/query"
        i = tid  # offset so threads interleave the query set
        while time.monotonic() < deadline:
            body = queries[i % len(queries)]
            i += threads
            t0 = time.perf_counter()
            try:
                _post_json(url, body)
            except (urllib.error.URLError, OSError, ValueError):
                errors[tid] += 1
                continue
            per_thread[tid].append(time.perf_counter() - t0)

    pool = [
        threading.Thread(target=worker, args=(tid,), daemon=True)
        for tid in range(threads)
    ]
    started = time.monotonic()
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    elapsed = time.monotonic() - started
    latencies = sorted(x for bucket in per_thread for x in bucket)
    # QPS is normalised to the actual window (joins can overshoot).
    return len(latencies), sum(errors), latencies, elapsed


def _spawn_server() -> Tuple[str, Any]:
    """Boot an in-process server on an ephemeral port (self-contained runs)."""
    from repro.serve import QueryService, make_server

    server = make_server("127.0.0.1", 0, QueryService())
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    return f"http://{host}:{port}", server


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    target = parser.add_mutually_exclusive_group(required=True)
    target.add_argument("--url", help="base URL of a running repro serve")
    target.add_argument(
        "--spawn", action="store_true",
        help="boot an in-process server on an ephemeral port instead",
    )
    parser.add_argument("--threads", type=int, default=8)
    parser.add_argument("--duration", type=float, default=15.0,
                        help="timed window, seconds (default 15)")
    parser.add_argument(
        "--spot-check", type=int, default=4, metavar="N",
        help="queries to verify bit-identical against simulate_point",
    )
    parser.add_argument("--min-qps", type=float, default=None,
                        help="fail below this sustained QPS")
    parser.add_argument("--max-p99-ms", type=float, default=None,
                        help="fail above this p99 latency")
    parser.add_argument("--out", default=None,
                        help="write the JSON report here (always printed)")
    parser.add_argument(
        "--queries", default=None, metavar="PATH",
        help="JSON array of query objects (default: built-in yolo C2 set)",
    )
    args = parser.parse_args(argv)

    if args.threads < 1 or args.duration <= 0:
        parser.error("--threads must be >= 1 and --duration > 0")
    queries = list(DEFAULT_QUERIES)
    if args.queries:
        with open(args.queries) as fh:
            queries = json.load(fh)

    server = None
    base_url = args.url.rstrip("/") if args.url else ""
    if args.spawn:
        base_url, server = _spawn_server()
    try:
        # Warm-up: every query answered once, untimed — populates the
        # result cache / analytic profile so the window measures the
        # steady state the service is designed for.
        for body in queries:
            _post_json(base_url + "/query", body)

        checked = min(args.spot_check, len(queries))
        matched = spot_check(base_url, queries[:checked]) if checked else 0

        completed, errors, latencies, elapsed = run_load(
            base_url, queries, args.threads, args.duration
        )
        try:
            server_metrics = _get_json(base_url + "/metrics")
        except (urllib.error.URLError, OSError, ValueError):
            server_metrics = None
    finally:
        if server is not None:
            server.shutdown()
            server.service.close()

    qps = completed / elapsed if elapsed > 0 else 0.0
    report = {
        "schema_version": SCHEMA_VERSION,
        "url": base_url,
        "threads": args.threads,
        "window_s": round(elapsed, 3),
        "query_set": len(queries),
        "completed": completed,
        "errors": errors,
        "qps": round(qps, 1),
        "latency_ms": {
            "p50": round(_percentile(latencies, 0.50) * 1e3, 3),
            "p90": round(_percentile(latencies, 0.90) * 1e3, 3),
            "p99": round(_percentile(latencies, 0.99) * 1e3, 3),
            "max": round((latencies[-1] if latencies else 0.0) * 1e3, 3),
        },
        "spot_check": {"checked": checked, "matched": matched},
        "server_metrics": server_metrics,
    }
    text = json.dumps(report, indent=1)
    print(text)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")

    failures = []
    if errors:
        failures.append(f"{errors} request error(s)")
    if matched != checked:
        failures.append(f"spot check: {matched}/{checked} bit-identical")
    if args.min_qps is not None and qps < args.min_qps:
        failures.append(f"sustained QPS {qps:.1f} < floor {args.min_qps}")
    p99_ms = report["latency_ms"]["p99"]
    if args.max_p99_ms is not None and p99_ms > args.max_p99_ms:
        failures.append(f"p99 {p99_ms:.1f} ms > cap {args.max_p99_ms}")
    if failures:
        print("LOAD GATE FAILED: " + "; ".join(failures), file=sys.stderr)
        return 1
    print(
        f"load gate OK: {qps:.1f} qps sustained over {elapsed:.1f}s, "
        f"p99 {p99_ms:.1f} ms, {checked}/{checked} spot checks bit-identical"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
