"""Headline-metric regression guard.

Computes the quick-mode headline metrics (the benchmark subset:
1024-entry and oracle gmean improvements, mean hit rates, DRAM
reduction, on-chip energy saving) and compares them against a stored
baseline with tolerances.  First run writes the baseline;
``--update`` refreshes it deliberately.

Run:  python scripts/check_regressions.py [--update]
Exit: 0 when within tolerance, 1 on regression.
"""

import json
import os
import sys

from repro.conv.workloads import get_layer
from repro.energy.model import DEFAULT_ENERGY, on_chip_energy_reduction
from repro.gpu.config import SimulationOptions
from repro.gpu.simulator import EliminationMode, simulate_layer
from repro.gpu.stats import geometric_mean

BASELINE_PATH = os.path.join("results", "baseline_metrics.json")
TOLERANCE = 0.02  # absolute, on fraction-valued metrics

LAYERS = [
    ("resnet", "C2"),
    ("resnet", "C8"),
    ("gan", "TC3"),
    ("gan", "C2"),
    ("yolo", "C2"),
]


def compute_metrics() -> dict:
    options = SimulationOptions(max_ctas=3)
    imp_1024, imp_oracle, hits, dram = [], [], [], []
    energy_base = energy_duplo = None
    for net, name in LAYERS:
        spec = get_layer(net, name)
        base = simulate_layer(spec, EliminationMode.BASELINE, options=options)
        d1024 = simulate_layer(spec, lhb_entries=1024, options=options)
        oracle = simulate_layer(spec, lhb_entries=None, options=options)
        imp_1024.append(d1024.speedup_over(base))
        imp_oracle.append(oracle.speedup_over(base))
        hits.append(d1024.stats.lhb_hit_rate)
        dram.append(
            1 - d1024.stats.dram_read_bytes / max(base.stats.dram_read_bytes, 1)
        )
        eb = DEFAULT_ENERGY.breakdown(base.stats)
        ed = DEFAULT_ENERGY.breakdown(d1024.stats)
        energy_base = eb if energy_base is None else energy_base.merge(eb)
        energy_duplo = ed if energy_duplo is None else energy_duplo.merge(ed)
    return {
        "gmean_improvement_1024": geometric_mean(imp_1024) - 1,
        "gmean_improvement_oracle": geometric_mean(imp_oracle) - 1,
        "mean_hit_rate_1024": sum(hits) / len(hits),
        "mean_dram_reduction_1024": sum(dram) / len(dram),
        "on_chip_energy_reduction": on_chip_energy_reduction(
            energy_base, energy_duplo
        ),
    }


def main() -> int:
    metrics = compute_metrics()
    os.makedirs("results", exist_ok=True)
    if "--update" in sys.argv or not os.path.exists(BASELINE_PATH):
        with open(BASELINE_PATH, "w") as fh:
            json.dump(metrics, fh, indent=2, sort_keys=True)
        print(f"baseline written to {BASELINE_PATH}:")
        for key, value in metrics.items():
            print(f"  {key:32s} {value:+.4f}")
        return 0

    with open(BASELINE_PATH) as fh:
        baseline = json.load(fh)
    failures = []
    for key, expected in baseline.items():
        got = metrics.get(key)
        status = "ok"
        if got is None or abs(got - expected) > TOLERANCE:
            status = "REGRESSION"
            failures.append(key)
        print(
            f"  {key:32s} baseline {expected:+.4f}  now "
            f"{got:+.4f}  [{status}]"
        )
    if failures:
        print(f"\n{len(failures)} metric(s) outside ±{TOLERANCE}: {failures}")
        return 1
    print("\nall headline metrics within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
