"""Calibration sweep: compare model outputs to the paper's headlines.

Run:  python scripts/calibrate.py [granularity] [lifetime]

Prints per-layer LHB hit rates and performance improvements for the
Figure 9/10 LHB-size sweep, plus gmeans and DRAM traffic deltas, so
timing/lifetime constants can be tuned against the paper's targets:
oracle hit ~76%, oracle improvement +25.9%, 1024-entry +22.1%,
DRAM traffic -26.6% at 1024 entries.
"""

import sys
import time

from repro import ALL_LAYERS
from repro.gpu.config import SimulationOptions
from repro.gpu.simulator import EliminationMode, simulate_layer
from repro.gpu.stats import geometric_mean

granularity = sys.argv[1] if len(sys.argv) > 1 else "fragment"
lifetime = int(sys.argv[2]) if len(sys.argv) > 2 else 8192
max_ctas = int(sys.argv[3]) if len(sys.argv) > 3 else 0
options = SimulationOptions(
    lhb_granularity=granularity,
    lhb_lifetime=lifetime,
    max_ctas=max_ctas or None,
)

SIZES = [256, 512, 1024, 2048, None]
speedups = {s: [] for s in SIZES}
hits = {s: [] for s in SIZES}
dram_delta = []
t0 = time.time()
for spec in ALL_LAYERS:
    base = simulate_layer(spec, EliminationMode.BASELINE, options=options)
    row = [f"{spec.qualified_name:10s}"]
    for size in SIZES:
        r = simulate_layer(spec, lhb_entries=size, options=options)
        imp = r.speedup_over(base) - 1
        speedups[size].append(1 + imp)
        hits[size].append(r.stats.lhb_hit_rate)
        row.append(f"{size if size else 'ora'}:{r.stats.lhb_hit_rate:.2f}/{imp:+.2f}")
        if size == 1024:
            dram_delta.append(
                1 - r.stats.dram_read_bytes / max(base.stats.dram_read_bytes, 1)
            )
            limit = r.stats.theoretical_hit_limit
    row.append(f"lim={limit:.2f} dram-{dram_delta[-1]:.0%}")
    print("  ".join(row), flush=True)

print(f"\n=== granularity={granularity} lifetime={lifetime} "
      f"({time.time()-t0:.0f}s) ===")
for size in SIZES:
    label = size if size else "oracle"
    print(
        f"  {label}: gmean improvement "
        f"{geometric_mean(speedups[size]) - 1:+.3f}, "
        f"mean hit {sum(hits[size])/len(hits[size]):.3f}"
    )
print(f"  mean DRAM read reduction @1024: {sum(dram_delta)/len(dram_delta):.1%}")
print("  paper: oracle +25.9%, 1024 +22.1%, oracle hit ~76%, DRAM -26.6%")
