"""Regenerate the golden regression fixtures under tests/goldens/.

Run from the repository root after an *intentional* model change:

    PYTHONPATH=src python scripts/make_goldens.py

and commit the refreshed JSON together with the change that shifted
the numbers.  The goldens pin ``figure9`` / ``figure10`` /
``figure12`` / ``table2`` / ``multikernel`` on a fixed three-layer
subset at ``max_ctas=2`` (see GOLDEN_LAYERS / GOLDEN_OPTIONS,
mirrored in tests/test_goldens.py) so refactors that should be
numerically neutral — the vectorised set-associative and PID-tagged
replays included — cannot silently shift reported results.

``analytic`` additionally pins the analytic engine tier's predictions
(``repro.analytic.prediction_rows``) on the same layers, so accuracy
drift in the closed-form model is byte-visible in golden-drift CI
even while the differential bounds still pass.
"""

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis import experiments
from repro.analytic import prediction_rows
from repro.conv.workloads import get_layer
from repro.gpu.config import ARCHS, SimulationOptions

GOLDEN_LAYERS = [("resnet", "C2"), ("gan", "TC3"), ("yolo", "C2")]
#: The arch-zoo fixtures add one attention GEMM so every preset pins
#: both workload classes (conv + transformer).
ARCH_GOLDEN_LAYERS = GOLDEN_LAYERS + [("attention", "QK")]
GOLDEN_MAX_CTAS = 2
OUT_DIR = os.path.join(os.path.dirname(__file__), "..", "tests", "goldens")


def main() -> int:
    layers = [get_layer(net, name) for net, name in GOLDEN_LAYERS]
    options = SimulationOptions(max_ctas=GOLDEN_MAX_CTAS)
    os.makedirs(OUT_DIR, exist_ok=True)
    runs = {
        "figure9": lambda: experiments.figure9(layers, options),
        "figure10": lambda: experiments.figure10(layers, options),
        "figure12": lambda: experiments.figure12(layers, options),
        "table2": lambda: experiments.table2(),
        "multikernel": lambda: experiments.multikernel_sharing(
            layers, options=options
        ),
    }
    config = {
        "layers": ["/".join(p) for p in GOLDEN_LAYERS],
        "max_ctas": GOLDEN_MAX_CTAS,
    }
    for name, run in runs.items():
        exp = run()
        payload = {
            "config": config,
            "rows": exp.rows,
            "summary": exp.summary,
        }
        path = os.path.join(OUT_DIR, f"{name}.json")
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {path} ({len(exp.rows)} rows)")

    rows = prediction_rows(layers, options=options)
    path = os.path.join(OUT_DIR, "analytic.json")
    with open(path, "w") as fh:
        json.dump(
            {"config": config, "rows": rows}, fh, indent=1, sort_keys=True
        )
        fh.write("\n")
    print(f"wrote {path} ({len(rows)} rows)")

    # Per-architecture fixtures: one arch_<preset>.json per zoo entry,
    # pinning that preset's duplo/wir rows (conv + attention layers)
    # and its slice of the arch_zoo summary.
    arch_layers = [get_layer(net, name) for net, name in ARCH_GOLDEN_LAYERS]
    zoo = experiments.arch_zoo(arch_layers, options=options)
    arch_config = {
        "layers": ["/".join(p) for p in ARCH_GOLDEN_LAYERS],
        "max_ctas": GOLDEN_MAX_CTAS,
    }
    for name in ARCHS:
        payload = {
            "config": dict(arch_config, arch=name),
            "rows": [r for r in zoo.rows if r["arch"] == name],
            "summary": {
                k: v for k, v in zoo.summary.items() if k.endswith(f"_{name}")
            },
        }
        path = os.path.join(OUT_DIR, f"arch_{name}.json")
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {path} ({len(payload['rows'])} rows)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
