"""Run every paper experiment at full scale and emit EXPERIMENTS data.

Writes ``results/experiments.txt`` with the complete paper-vs-measured
record used by EXPERIMENTS.md.  Full traces over all 22 Table I
layers; takes tens of minutes.

Run:  python scripts/run_experiments.py [--quick]
"""

import os
import sys
import time

from repro.analysis.experiments import (
    energy_area,
    figure2,
    figure3,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    table2,
)
from repro.analysis.report import comparison_lines, format_experiment
from repro.conv.workloads import ALL_LAYERS, get_layer
from repro.gpu.config import SimulationOptions


def main() -> None:
    quick = "--quick" in sys.argv
    if quick:
        layers = [get_layer(n, l) for n, l in
                  [("resnet", "C2"), ("gan", "TC3"), ("yolo", "C2")]]
        options = SimulationOptions(max_ctas=3)
    else:
        layers = list(ALL_LAYERS)
        options = SimulationOptions()

    os.makedirs("results", exist_ok=True)
    out_path = os.path.join("results", "experiments.txt")
    experiments = [
        ("figure2", lambda: figure2(layers)),
        ("figure3", lambda: figure3(layers)),
        ("table2", table2),
        ("figure9", lambda: figure9(layers, options)),
        ("figure10", lambda: figure10(layers, options)),
        ("figure11", lambda: figure11(layers, options=options)),
        ("figure12", lambda: figure12(layers, options)),
        ("figure13", lambda: figure13(layers, options)),
        ("figure14", lambda: figure14(options=options)),
        ("energy_area", lambda: energy_area(layers, options=options)),
    ]
    with open(out_path, "w") as fh:
        for name, fn in experiments:
            t0 = time.time()
            exp = fn()
            dt = time.time() - t0
            block = format_experiment(exp)
            fh.write(block + f"\n[{dt:.0f}s]\n\n")
            fh.flush()
            for line in comparison_lines(exp):
                print(line, flush=True)
            print(f"  ... {name} done in {dt:.0f}s", flush=True)
    print(f"\nwrote {out_path}")


if __name__ == "__main__":
    main()
