"""Sensitivity of the headline results to the calibrated constants.

EXPERIMENTS.md freezes four calibrated constants (timing overlap, warp
run-ahead, LHB lifetime, RF cell-area ratio).  This script perturbs
each and reports how the two headline metrics move — the oracle and
1024-entry gmean improvements over a representative layer subset — so
a reviewer can judge how much of the reproduction is measurement and
how much is calibration.

Run:  python scripts/sensitivity.py [--full]
"""

import dataclasses
import sys

from repro.conv.workloads import ALL_LAYERS, get_layer
from repro.gpu.config import KernelConfig, SimulationOptions
from repro.gpu.simulator import (
    EliminationMode,
    clear_trace_cache,
    simulate_layer,
)
from repro.gpu.stats import geometric_mean
from repro.gpu.timing import TimingModel


def gmeans(layers, options, kernel, timing=None):
    imp = {1024: [], None: []}
    for spec in layers:
        base = simulate_layer(
            spec, EliminationMode.BASELINE, kernel=kernel, options=options,
            timing=timing,
        )
        for entries in imp:
            r = simulate_layer(
                spec, lhb_entries=entries, kernel=kernel, options=options,
                timing=timing,
            )
            imp[entries].append(r.cycles and base.cycles / r.cycles)
    return {k: geometric_mean(v) - 1 for k, v in imp.items()}


def main() -> None:
    if "--full" in sys.argv:
        layers = ALL_LAYERS
        options = SimulationOptions()
    else:
        layers = [
            get_layer("resnet", "C2"),
            get_layer("gan", "TC3"),
            get_layer("gan", "C2"),
            get_layer("yolo", "C2"),
            get_layer("yolo", "C5"),
        ]
        options = SimulationOptions(max_ctas=3)

    base_kernel = KernelConfig()
    print(f"{'configuration':40s} {'1024-entry':>10s} {'oracle':>10s}")

    def report(label, options=options, kernel=base_kernel, timing=None):
        clear_trace_cache()
        g = gmeans(layers, options, kernel, timing)
        print(f"{label:40s} {g[1024]:>+10.1%} {g[None]:>+10.1%}", flush=True)

    report("defaults (calibrated)")
    for overlap in (0.2, 0.5):
        report(f"timing overlap = {overlap}", timing=TimingModel(overlap=overlap))
    for runahead in (8, 16, 64):
        report(
            f"warp_runahead = {runahead}",
            kernel=KernelConfig(warp_runahead=runahead),
        )
    for lifetime in (1024, 2048, 8192, None):
        report(
            f"lhb_lifetime = {lifetime}",
            options=dataclasses.replace(options, lhb_lifetime=lifetime),
        )
    report(
        "plain (unhashed) LHB index",
        options=dataclasses.replace(options, lhb_hashed_index=False),
    )
    report(
        "instruction-granular lookups",
        options=dataclasses.replace(options, lhb_granularity="instruction"),
    )


if __name__ == "__main__":
    main()
