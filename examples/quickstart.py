"""Quickstart: simulate one convolutional layer with and without Duplo.

Runs ResNet's C2 layer (Table I) through the trace-driven GPU model,
compares the baseline tensor-core GEMM against Duplo with the paper's
default 1024-entry LHB, and prints the headline metrics the paper
reports: LHB hit rate, eliminated load traffic, DRAM traffic, and the
resulting speedup.

Run:  python examples/quickstart.py
"""

from repro import get_layer
from repro.analysis.report import format_table
from repro.gpu.simulator import EliminationMode, simulate_layer


def main() -> None:
    spec = get_layer("resnet", "C2")
    print(f"Layer: {spec}")
    g = spec.gemm_shape
    print(
        f"Lowered GEMM: M={g.m} N={g.n} K={g.k} "
        f"({spec.workspace_bytes / 2**20:.1f} MiB workspace, "
        f"{spec.duplication_factor:.1f}x duplication)\n"
    )

    baseline = simulate_layer(spec, EliminationMode.BASELINE)
    duplo = simulate_layer(spec, EliminationMode.DUPLO, lhb_entries=1024)
    oracle = simulate_layer(spec, EliminationMode.DUPLO, lhb_entries=None)

    rows = []
    for label, result in [
        ("baseline", baseline),
        ("duplo-1024", duplo),
        ("duplo-oracle", oracle),
    ]:
        s = result.stats
        rows.append(
            {
                "config": label,
                "time_ms": result.time_ms,
                "speedup": result.cycles and baseline.cycles / result.cycles,
                "lhb_hit_rate": s.lhb_hit_rate,
                "eliminated": s.elimination_rate,
                "dram_read_MiB": s.dram_read_bytes / 2**20,
            }
        )
    print(format_table(rows))

    print(
        f"\nDuplo (1024-entry LHB) improves this layer by "
        f"{duplo.speedup_over(baseline) - 1:+.1%}; the oracle LHB reaches "
        f"{oracle.speedup_over(baseline) - 1:+.1%} "
        f"(theoretical duplicate limit: "
        f"{oracle.stats.theoretical_hit_limit:.1%})."
    )


if __name__ == "__main__":
    main()
