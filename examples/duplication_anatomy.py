"""Anatomy of workspace duplication: Figures 1, 5, and 6 by hand.

Builds the paper's running example — a 4x4 input convolved with a 3x3
unit-stride filter — and walks through everything Section III derives
from it:

* the lowered 4x9 workspace (Figure 1b);
* the patch/element ID tables (Figure 6), computed with the paper's
  published formulas *and* the canonical inverse-im2col map;
* a duplicate census: which entries share IDs, verified value-by-value
  against the real workspace;
* the Table II detection-unit walk-through.

Run:  python examples/duplication_anatomy.py
"""

import numpy as np

from repro.analysis.table2 import TOY_SPEC, run_table2_workflow
from repro.analysis.report import format_table
from repro.conv.lowering import lower_input, workspace_shape
from repro.core.idgen import canonical_ids, paper_ids, paper_patch_ids


def main() -> None:
    # The exact input of Figure 1.
    x = np.array(
        [[3, 1, 4, -2], [1, 0, -2, 1], [4, -2, 4, 0], [-2, 1, 0, 3]],
        dtype=np.float64,
    ).reshape(1, 4, 4, 1)

    ws = lower_input(TOY_SPEC, x).matrix
    print("Workspace (Figure 1b):")
    print(ws.astype(int), "\n")

    rows, cols = workspace_shape(TOY_SPEC)
    rr, cc = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
    patch = paper_patch_ids(TOY_SPEC, rr.ravel(), cc.ravel()).reshape(rows, cols)
    _, element = paper_ids(TOY_SPEC, rr.ravel(), cc.ravel())
    _, canon = canonical_ids(TOY_SPEC, rr.ravel(), cc.ravel())

    print("Patch IDs (Figure 6, left):")
    print(patch, "\n")
    print("Element IDs (Figure 6, right — paper formulas):")
    print(element.reshape(rows, cols), "\n")
    assert (element == canon).all(), "paper and canonical IDs must agree here"

    # Duplicate census: group workspace entries by element ID and show
    # that every group holds a single value.
    groups = {}
    for (r, c), e, v in zip(
        zip(rr.ravel(), cc.ravel()), element.tolist(), ws.ravel()
    ):
        groups.setdefault(e, {"value": v, "entries": []})
        assert groups[e]["value"] == v, "ID scheme mismatched values!"
        groups[e]["entries"].append((int(r), int(c)))
    duplicated = {e: g for e, g in groups.items() if len(g["entries"]) > 1}
    total = rows * cols
    print(
        f"{total} workspace entries hold only {len(groups)} unique values "
        f"({total - len(groups)} duplicates = "
        f"{(total - len(groups)) / total:.0%} of all loads are redundant)."
    )
    print("Duplicated element IDs and where their copies live:")
    for e, g in sorted(duplicated.items()):
        print(f"  id {e:2d} (value {g['value']:+.0f}): entries {g['entries']}")

    print("\nTable II detection-unit walk-through:")
    print(format_table(run_table2_workflow()))


if __name__ == "__main__":
    main()
