"""Training-time study: why Figure 14's training bar is smaller.

Walks through the backward-pass substrate:

1. verifies the gradient implementations on real data (the adjoint
   identity <conv(x,f), dy> == <x, dgrad(dy,f)> == <f, wgrad(x,dy)>);
2. shows each layer's data gradient *is itself a convolution* with
   its own duplicated workspace (``data_gradient_spec``);
3. reproduces Figure 14's inference/training asymmetry and asks the
   paper's open what-if: how much of the gap returns if the compiler
   also programs the detection unit for the dgrad kernels?

Run:  python examples/training_study.py [--full]
"""

import sys

import numpy as np

from repro.analysis.charts import bar_chart
from repro.analysis.network import network_time
from repro.analysis.report import format_table
from repro.conv.direct import direct_convolution
from repro.conv.gradients import (
    data_gradient,
    data_gradient_spec,
    weight_gradient,
)
from repro.conv.workloads import TABLE_I, get_layer
from repro.gpu.config import SimulationOptions
from repro.gpu.simulator import EliminationMode


def check_gradients() -> None:
    spec = get_layer("resnet", "C8").with_batch(1).scaled(0.5)
    rng = np.random.default_rng(3)
    x = rng.standard_normal(spec.input_nhwc)
    f = rng.standard_normal(spec.filter_nhwc)
    out = spec.output_shape
    dy = rng.standard_normal((spec.batch, out.height, out.width,
                              spec.num_filters))
    lhs = float((direct_convolution(spec, x, f) * dy).sum())
    via_dx = float((x * data_gradient(spec, dy, f)).sum())
    via_dw = float((f * weight_gradient(spec, x, dy)).sum())
    print(
        f"adjoint identity on {spec.qualified_name}: "
        f"{lhs:.6f} == {via_dx:.6f} == {via_dw:.6f}\n"
    )


def main() -> None:
    options = (
        SimulationOptions()
        if "--full" in sys.argv
        else SimulationOptions(max_ctas=3)
    )
    check_gradients()

    print("Data gradients are convolutions with their own duplication:")
    rows = []
    for spec in TABLE_I["resnet"][:4]:
        d = data_gradient_spec(spec)
        rows.append(
            {
                "forward": spec.qualified_name,
                "dgrad": str(d.name),
                "dgrad_stride": d.stride,
                "dgrad_transposed": d.transposed,
                "dgrad_duplication": round(d.duplication_factor, 2),
            }
        )
    print(format_table(rows))

    print("\nFigure 14 asymmetry and the dgrad-acceleration what-if:")
    reductions = {}
    for network in TABLE_I:
        base = network_time(network, EliminationMode.BASELINE, options=options)
        duplo = network_time(network, EliminationMode.DUPLO, options=options)
        accel = network_time(
            network, EliminationMode.DUPLO, options=options,
            accelerate_backward=True,
        )
        reductions[f"{network} inference"] = duplo.inference_reduction(base)
        reductions[f"{network} training"] = duplo.training_reduction(base)
        reductions[f"{network} training+dgrad"] = accel.training_reduction(base)
    print(bar_chart(reductions, width=36))
    print("\npaper: inference -22.7%, training -8.3% (forward-only Duplo)")


if __name__ == "__main__":
    main()
