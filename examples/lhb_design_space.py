"""LHB design-space exploration (Figures 9, 10, and 12 in one script).

Sweeps the load history buffer's size (256 entries to oracle) and
associativity (direct-mapped to 8-way) over a representative slice of
the Table I layer set, printing the per-layer performance improvements
and hit rates plus the geometric means the paper quotes.

Run:  python examples/lhb_design_space.py [--full]

``--full`` sweeps all 22 Table I layers with untruncated traces
(several minutes); the default uses one layer per network with a CTA
cap for a ~30 second run.
"""

import sys

from repro.analysis.report import format_table
from repro.analysis.sweeps import (
    LHB_ASSOCS,
    LHB_SIZES,
    associativity_sweep,
    lhb_size_sweep,
)
from repro.conv.workloads import ALL_LAYERS, get_layer
from repro.gpu.config import SimulationOptions


def main() -> None:
    full = "--full" in sys.argv
    if full:
        layers = ALL_LAYERS
        options = SimulationOptions()
    else:
        layers = [
            get_layer("resnet", "C2"),
            get_layer("gan", "TC3"),
            get_layer("yolo", "C2"),
        ]
        options = SimulationOptions(max_ctas=4)

    print("=== LHB size sweep (Figures 9 and 10) ===")
    sweep = lhb_size_sweep(layers, LHB_SIZES, options)
    rows = []
    for layer in {r.layer: None for r in sweep.rows}:
        row = {"layer": layer}
        for r in sweep.rows:
            if r.layer == layer:
                row[f"{r.parameter}"] = f"{r.improvement:+.1%}/{r.hit_rate:.0%}"
        rows.append(row)
    print(format_table(rows))
    print("\nGeometric means (improvement / mean hit rate):")
    for p in sweep.parameters():
        print(
            f"  {p:12s} {sweep.gmean_improvement(p):+.1%} "
            f"/ {sweep.mean_hit_rate(p):.1%}"
        )
    print("  paper: oracle +25.9% (hit ~76%), 1024-entry +22.1%")

    print("\n=== Associativity sweep (Figure 12) ===")
    assoc = associativity_sweep(layers, LHB_ASSOCS, 1024, options)
    for p in assoc.parameters():
        print(f"  {p:8s} gmean improvement {assoc.gmean_improvement(p):+.2%}")
    direct = 1 + assoc.gmean_improvement("direct")
    eight = 1 + assoc.gmean_improvement("8-way")
    print(
        f"  8-way over direct-mapped: {eight / direct - 1:+.2%} "
        f"(paper: +3.6% — 'set-associative buffers are not necessary')"
    )


if __name__ == "__main__":
    main()
