"""Two kernels, one LHB: the PID tag at work (Section IV-B).

The LHB tag carries a process ID so concurrent kernels time-sliced
onto an SM cannot alias each other's workspace elements.  This script
runs two convolution kernels' load streams through one shared LHB and
shows (a) isolation — identical layers never cross-hit — and (b)
contention — the finite buffer splits between the two working sets.

Run:  python examples/multikernel_sharing.py
"""

from repro.analysis.report import format_table
from repro.conv.workloads import get_layer
from repro.gpu.config import KernelConfig, SimulationOptions
from repro.gpu.multikernel import contention_report, simulate_shared_lhb


def main() -> None:
    options = SimulationOptions(max_ctas=2)
    kernel = KernelConfig(warp_runahead=8)
    specs = [get_layer("resnet", "C8"), get_layer("gan", "C4")]

    print("Isolation: two copies of the same kernel, shared LHB")
    same = simulate_shared_lhb(
        [get_layer("resnet", "C8")] * 2, lhb_entries=None,
        kernel=kernel, options=options,
    )
    solo = simulate_shared_lhb(
        [get_layer("resnet", "C8")], lhb_entries=None,
        kernel=kernel, options=options,
    )[0]
    print(
        f"  solo hits {solo.hits}; shared-run hits per kernel: "
        f"{[s.hits for s in same]} — identical, because the PID keeps "
        f"their identical element IDs apart.\n"
    )

    print("Contention: two different kernels on one 1024-entry LHB")
    report = contention_report(
        specs, lhb_entries=1024, kernel=kernel, options=options, chunk=128
    )
    rows = [
        {"kernel": name, **{k: v for k, v in stats.items()}}
        for name, stats in report.items()
    ]
    print(format_table(rows))
    print(
        "\nEach kernel keeps most of its solo hit rate — short-distance"
        " reuse survives interleaving — and the loss is the price of"
        " backing two working sets with one buffer."
    )


if __name__ == "__main__":
    main()
