"""Explicit vs. implicit GEMM, with and without Duplo (Secs II-C, V-D).

Four configurations per layer:

* explicit workspace, baseline — the paper's evaluation baseline;
* explicit + Duplo — the paper's headline result;
* implicit (cuDNN-style shared-memory staging), baseline — less
  global traffic but one CTA per SM;
* implicit + Duplo — the paper's Section V-D remark: shared-memory
  accesses become register renaming.

Run:  python examples/implicit_vs_explicit.py [--full]
"""

import sys

from repro.analysis.charts import bar_chart
from repro.analysis.report import format_table
from repro.conv.workloads import get_layer
from repro.gpu.config import BASELINE_KERNEL, IMPLICIT_KERNEL, SimulationOptions
from repro.gpu.simulator import EliminationMode, simulate_layer


def main() -> None:
    options = (
        SimulationOptions()
        if "--full" in sys.argv
        else SimulationOptions(max_ctas=2)
    )
    layers = [
        get_layer("resnet", "C2"),
        get_layer("yolo", "C2"),
        get_layer("gan", "C2"),
    ]
    rows = []
    for spec in layers:
        results = {}
        for kname, kernel in (("explicit", BASELINE_KERNEL),
                              ("implicit", IMPLICIT_KERNEL)):
            base = simulate_layer(
                spec, EliminationMode.BASELINE, kernel=kernel, options=options
            )
            duplo = simulate_layer(spec, kernel=kernel, options=options)
            results[kname] = (base, duplo)
        exp_base, exp_duplo = results["explicit"]
        imp_base, imp_duplo = results["implicit"]
        rows.append(
            {
                "layer": spec.qualified_name,
                "explicit_dram_MiB": exp_base.stats.dram_read_bytes / 2**20,
                "implicit_dram_MiB": imp_base.stats.dram_read_bytes / 2**20,
                "duplo_on_explicit": exp_duplo.speedup_over(exp_base) - 1,
                "duplo_on_implicit": imp_duplo.speedup_over(imp_base) - 1,
                "shared_loads_saved": 1
                - imp_duplo.stats.shared_accesses
                / max(imp_base.stats.shared_accesses, 1),
            }
        )
    print(format_table(rows))
    print(
        "\nImplicit GEMM already deduplicates *global* traffic (it"
        " fetches only the unexpanded input), so Duplo's win there is"
        " the cheaper one the paper describes: shared-memory accesses"
        " turned into register renaming.\n"
    )
    print(bar_chart(
        {
            f"{r['layer']} explicit": r["duplo_on_explicit"]
            for r in rows
        } | {
            f"{r['layer']} implicit": r["duplo_on_implicit"]
            for r in rows
        },
        width=32,
        title="Duplo improvement by kernel style",
    ))


if __name__ == "__main__":
    main()
