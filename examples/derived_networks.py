"""Derived networks: VGG, DiscoGAN, and FCN end to end.

Table I's caption promises these three networks "can be easily
derived" from its layer shapes.  This script derives them with the
composition substrate (``repro.conv.zoo``), runs *real* NumPy
inference through reduced-resolution instances to prove the models
compute, then simulates the full-scale versions under Duplo and
reports the per-network improvement — extending Figure 14 beyond the
paper's three networks.

Run:  python examples/derived_networks.py [--full]
"""

import sys

import numpy as np

from repro.analysis.charts import bar_chart
from repro.analysis.report import format_table
from repro.conv.zoo import discogan_generator, fcn_head, vgg16
from repro.gpu.config import SimulationOptions
from repro.gpu.simulator import EliminationMode, simulate_layer
from repro.gpu.stats import geometric_mean


def functional_check() -> None:
    print("Functional check (reduced resolutions, real inference):")
    rng = np.random.default_rng(42)
    for net in (
        vgg16(batch=1, resolution=32),
        discogan_generator(batch=1, resolution=16),
        fcn_head(batch=1, spatial=7, backbone_channels=64),
    ):
        x = rng.standard_normal(net.input_nhwc) * 0.1
        y = net.forward(x, net.init_weights(rng))
        print(f"  {net.name:10s} {net.input_nhwc} -> {y.shape}, "
              f"finite={np.isfinite(y).all()}")
    print()


def main() -> None:
    functional_check()
    full = "--full" in sys.argv
    options = SimulationOptions() if full else SimulationOptions(max_ctas=2)
    networks = {
        # Paper-scale geometry (batch 8); VGG at half resolution keeps
        # the quick mode quick.
        "vgg16": vgg16(batch=8, resolution=224 if full else 64),
        "discogan": discogan_generator(batch=8, resolution=64),
        "fcn": fcn_head(batch=8, spatial=14),
    }

    improvements = {}
    rows = []
    for name, net in networks.items():
        speedups = []
        for spec in net.conv_specs():
            base = simulate_layer(
                spec, EliminationMode.BASELINE, options=options
            )
            duplo = simulate_layer(spec, options=options)
            speedups.append(duplo.speedup_over(base))
        improvements[name] = geometric_mean(speedups) - 1
        rows.append(
            {
                "network": name,
                "conv_layers": len(net.conv_specs()),
                "gmean_improvement": improvements[name],
                "max_duplication": max(
                    s.duplication_factor for s in net.conv_specs()
                ),
            }
        )
    print(format_table(rows))
    print()
    print(bar_chart(improvements, width=36,
                    title="Duplo improvement on derived networks"))
    print("\n(Table I networks measured +10-30% per layer; derivatives"
          " built from the same blocks land in the same band.)")


if __name__ == "__main__":
    main()
