"""Convolution methods tour (Figures 2 and 3): run them all, for real.

For one layer geometry, this script actually *executes* every
convolution method in the library — direct, GEMM (explicit lowering),
Winograd F(2x2,3x3), and FFT — checks they agree numerically, then
prints the modelled speedup/memory comparison for the full Table I
set, reproducing the shape of the paper's motivation figures.

Run:  python examples/conv_methods_tour.py
"""

import numpy as np

from repro.analysis.experiments import figure2, figure3
from repro.analysis.report import format_experiment
from repro.conv.methods import METHOD_REGISTRY, applicable_methods
from repro.conv.workloads import get_layer

from repro.conv.layer import ConvLayerSpec


def main() -> None:
    # A scaled-down unit-stride 3x3 layer every method can run.
    spec = ConvLayerSpec(
        name="tour",
        network="example",
        batch=2,
        in_height=16,
        in_width=16,
        in_channels=8,
        num_filters=16,
        filter_height=3,
        filter_width=3,
        pad=1,
        stride=1,
    )
    rng = np.random.default_rng(7)
    x = rng.standard_normal(spec.input_nhwc)
    f = rng.standard_normal(spec.filter_nhwc)

    reference = METHOD_REGISTRY["direct"].run(spec, x, f)
    print(f"Running every applicable method on {spec.qualified_name}:")
    for name in applicable_methods(spec):
        out = METHOD_REGISTRY[name].run(spec, x, f)
        err = float(np.abs(out - reference).max())
        print(f"  {name:12s} max |err| vs direct = {err:.2e}")
    print()

    print(format_experiment(figure2(), max_rows=8))
    print()
    print(format_experiment(figure3(), max_rows=8))
    print(
        "\nNote the missing Winograd/FFT entries: stride-2 layers (all"
        " of GAN) and the 7x7 ResNet C1 filter are outside those"
        " algorithms' reach — the applicability gap that makes"
        " accelerating GEMM-based convolution the practical target"
        " (Section II-A)."
    )


if __name__ == "__main__":
    main()
