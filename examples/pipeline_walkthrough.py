"""Figure 7 at cycle granularity: the pipeline walk-through.

Runs the Table II instruction sequence (plus MMA consumers) through
the cycle-stepped SM pipeline demonstrator twice — detection unit
power-gated vs. programmed — and prints the cycle-by-cycle difference:
the duplicate load's dependent MMA wakes after the 2-cycle detection
path instead of an L1 round-trip.

Also demonstrates the warp-to-warp sharing a compiler cannot express
(Section IV-D): warp 1 consumes a value warp 0 loaded.

Run:  python examples/pipeline_walkthrough.py
"""

from repro.analysis.report import format_table
from repro.analysis.table2 import TOY_SPEC, WORKSPACE_BASE
from repro.core.compiler import build_convolution_info
from repro.core.detection import DetectionUnit
from repro.core.idgen import IDMode
from repro.core.lhb import LoadHistoryBuffer
from repro.gpu.pipeline import Instruction, Op, SMPipeline, Warp


def addr(array_idx: int) -> int:
    return WORKSPACE_BASE + array_idx * 2


def table2_program():
    """Table II's loads, each feeding an MMA (so latency is visible)."""
    return [
        Instruction(Op.LOAD, dest=4, address=addr(2)),   # load.a %r4
        Instruction(Op.LOAD, dest=2, address=0xDEAD0000),  # load.b %r2
        Instruction(Op.MMA, dest=10, srcs=(4, 2)),
        Instruction(Op.LOAD, dest=3, address=addr(10)),  # duplicate!
        Instruction(Op.MMA, dest=11, srcs=(3, 2)),
        Instruction(Op.LOAD, dest=8, address=addr(28)),  # conflict miss
        Instruction(Op.MMA, dest=12, srcs=(8, 2)),
    ]


def detection_unit():
    unit = DetectionUnit(
        lhb=LoadHistoryBuffer(num_entries=4, lifetime=None, hashed_index=False),
        id_mode=IDMode.PAPER,
    )
    unit.program(TOY_SPEC, build_convolution_info(TOY_SPEC, WORKSPACE_BASE, lda=9))
    return unit


def main() -> None:
    baseline = SMPipeline([Warp(0, table2_program())]).run()
    duplo = SMPipeline(
        [Warp(0, table2_program())], detection=detection_unit()
    ).run()

    rows = [
        {
            "config": "baseline",
            "cycles": baseline.cycles,
            "memory_loads": baseline.memory_loads,
            "eliminated": baseline.eliminated_loads,
            "stalls": baseline.scoreboard_stalls,
        },
        {
            "config": "duplo",
            "cycles": duplo.cycles,
            "memory_loads": duplo.memory_loads,
            "eliminated": duplo.eliminated_loads,
            "stalls": duplo.scoreboard_stalls,
        },
    ]
    print("Table II program through the Figure 7 pipeline:")
    print(format_table(rows))
    saved = baseline.cycles - duplo.cycles
    print(
        f"\nThe duplicate load's MMA woke {saved} cycles earlier: the "
        f"2-cycle detection path replaced a 28-cycle L1 round-trip.\n"
    )

    print("Warp-to-warp value sharing (impossible for a compiler):")
    w0 = Warp(0, [Instruction(Op.LOAD, dest=4, address=addr(2)),
                  Instruction(Op.MMA, dest=5, srcs=(4,))])
    w1 = Warp(1, [Instruction(Op.LOAD, dest=4, address=addr(10)),
                  Instruction(Op.MMA, dest=5, srcs=(4,))])
    stats = SMPipeline([w0, w1], detection=detection_unit()).run()
    print(
        f"  warp 1's load of a different address was eliminated "
        f"({stats.eliminated_loads} elimination, "
        f"{stats.memory_loads} memory load) — the LHB knew warp 0's "
        f"register already held the value."
    )


if __name__ == "__main__":
    main()
