"""Network-level study: ResNet / DCGAN / YOLO end to end (Figure 14).

Simulates every convolutional layer of the three Table I networks
under the baseline and Duplo, composes network-level inference and
training times, and attaches the Section V-H energy accounting.

Run:  python examples/network_inference.py [--full]

Default uses a CTA cap per layer (~1 minute); ``--full`` replays
untruncated traces.
"""

import sys

from repro.analysis.network import network_time
from repro.analysis.report import format_table
from repro.conv.workloads import TABLE_I
from repro.energy.model import DEFAULT_ENERGY, on_chip_energy_reduction
from repro.gpu.config import SimulationOptions
from repro.gpu.simulator import EliminationMode, simulate_layer


def main() -> None:
    options = (
        SimulationOptions()
        if "--full" in sys.argv
        else SimulationOptions(max_ctas=4)
    )

    rows = []
    for network in TABLE_I:
        base = network_time(
            network, EliminationMode.BASELINE, options=options
        )
        duplo = network_time(
            network, EliminationMode.DUPLO, lhb_entries=1024, options=options
        )
        rows.append(
            {
                "network": network,
                "inference_time_reduction": duplo.inference_reduction(base),
                "training_time_reduction": duplo.training_reduction(base),
            }
        )
    print("=== Figure 14: network-level execution time ===")
    print(format_table(rows))
    print("paper averages: inference -22.7%, training -8.3%\n")

    print("=== Section V-H: on-chip energy per network ===")
    energy_rows = []
    for network, layers in TABLE_I.items():
        eb = ed = None
        for spec in layers:
            b = DEFAULT_ENERGY.breakdown(
                simulate_layer(
                    spec, EliminationMode.BASELINE, options=options
                ).stats
            )
            d = DEFAULT_ENERGY.breakdown(
                simulate_layer(
                    spec, EliminationMode.DUPLO, lhb_entries=1024,
                    options=options,
                ).stats
            )
            eb = b if eb is None else eb.merge(b)
            ed = d if ed is None else ed.merge(d)
        energy_rows.append(
            {
                "network": network,
                "on_chip_energy_reduction": on_chip_energy_reduction(eb, ed),
                "dram_energy_reduction": 1
                - ed.picojoules["dram"] / eb.picojoules["dram"],
            }
        )
    print(format_table(energy_rows))
    print("paper: 34.1% on-chip energy reduction at 0.77% area overhead")


if __name__ == "__main__":
    main()
