"""Warp-granular register renaming (Section IV-B, after Kim et al.).

Duplo reuses the WIR-style renaming substrate: each warp's
architectural registers map through a renaming table to physical
registers.  A normal instruction allocates a fresh physical register
for its destination; a tensor-core load that hits in the LHB instead
maps its destination onto the physical register already holding the
value, so subsequent readers source the duplicate for free.

Renaming happens at *warp* granularity: tensor-core fragments are
collectively owned by the 32 threads of a warp, so "one register"
here is one warp-wide register (32 threads x 32 bits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass
class RenamingStats:
    """Bookkeeping the energy model and Table II reproduction read."""

    allocations: int = 0
    reuse_renames: int = 0
    releases: int = 0


class PhysicalRegisterFile:
    """Pool of warp-wide physical registers with reference counts.

    A physical register stays allocated while any architectural
    mapping (from any warp — Duplo shares values *across* warps) still
    points at it.
    """

    def __init__(self, num_registers: int):
        if num_registers < 1:
            raise ValueError(f"need at least one register, got {num_registers}")
        self.num_registers = num_registers
        self._free = list(range(num_registers - 1, -1, -1))
        self._refcount: Dict[int, int] = {}

    @property
    def allocated(self) -> int:
        return len(self._refcount)

    def allocate(self) -> int:
        """Claim a free physical register (refcount 1)."""
        if not self._free:
            raise RuntimeError("physical register file exhausted")
        reg = self._free.pop()
        self._refcount[reg] = 1
        return reg

    def share(self, reg: int) -> None:
        """Add a reference to an already-allocated register."""
        if reg not in self._refcount:
            raise KeyError(f"register {reg} is not allocated")
        self._refcount[reg] += 1

    def release(self, reg: int) -> None:
        """Drop one reference; free the register at zero."""
        if reg not in self._refcount:
            raise KeyError(f"register {reg} is not allocated")
        self._refcount[reg] -= 1
        if self._refcount[reg] == 0:
            del self._refcount[reg]
            self._free.append(reg)

    def refcount(self, reg: int) -> int:
        return self._refcount.get(reg, 0)


class RegisterRenamingTable:
    """Maps (warp, architectural register) -> physical register.

    The two operations Duplo needs (Figure 7):

    * :meth:`define` — a normal destination write: allocate a fresh
      physical register and record the mapping;
    * :meth:`alias` — an LHB hit: point the destination at the
      physical register that already holds the value.
    """

    #: Warp-wide registers in a 256 KB SM register file (Table III):
    #: 256 KB / (32 threads x 4 bytes) = 2048.
    DEFAULT_POOL = 2048

    def __init__(self, regfile: Optional[PhysicalRegisterFile] = None):
        self.regfile = regfile or PhysicalRegisterFile(self.DEFAULT_POOL)
        self._map: Dict[Tuple[int, int], int] = {}
        self.stats = RenamingStats()

    def lookup(self, warp: int, arch_reg: int) -> Optional[int]:
        """Physical register currently mapped, or None."""
        return self._map.get((warp, arch_reg))

    def _unmap(self, key: Tuple[int, int]) -> None:
        old = self._map.pop(key, None)
        if old is not None:
            self.regfile.release(old)
            self.stats.releases += 1

    def define(self, warp: int, arch_reg: int) -> int:
        """Bind ``arch_reg`` of ``warp`` to a fresh physical register."""
        key = (warp, arch_reg)
        self._unmap(key)
        phys = self.regfile.allocate()
        self._map[key] = phys
        self.stats.allocations += 1
        return phys

    def alias(self, warp: int, arch_reg: int, phys: int) -> int:
        """Bind ``arch_reg`` of ``warp`` to an existing physical register.

        This is the LHB-hit path: the duplicate load is skipped and the
        destination becomes another name for the register that already
        holds the datum.
        """
        key = (warp, arch_reg)
        self._unmap(key)
        self.regfile.share(phys)
        self._map[key] = phys
        self.stats.reuse_renames += 1
        return phys

    def retire(self, warp: int, arch_reg: int) -> None:
        """Release a mapping when its value is dead."""
        self._unmap((warp, arch_reg))

    def mapping_count(self) -> int:
        return len(self._map)
