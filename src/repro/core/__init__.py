"""Duplo's contribution: duplicate detection and elimination machinery.

* :mod:`repro.core.idgen` — maps workspace memory addresses to
  ``(batch_id, element_id)`` pairs (Section III of the paper);
* :mod:`repro.core.lhb` — the load history buffer (Section IV-B);
* :mod:`repro.core.renaming` — warp-granular register renaming;
* :mod:`repro.core.detection` — the detection unit wiring ID generation,
  LHB lookup, and renaming together (Figure 8);
* :mod:`repro.core.compiler` — compile-time convolution info (Section
  IV-A) and the compiler-only alternative's costs (Section IV-D).
"""

from repro.core.compiler import ConvolutionInfo, build_convolution_info
from repro.core.detection import DetectionUnit, LoadOutcome
from repro.core.idgen import IDGenerator, IDMode, paper_ids, canonical_ids
from repro.core.lhb import LoadHistoryBuffer, LHBStats
from repro.core.renaming import RegisterRenamingTable

__all__ = [
    "ConvolutionInfo",
    "build_convolution_info",
    "DetectionUnit",
    "LoadOutcome",
    "IDGenerator",
    "IDMode",
    "paper_ids",
    "canonical_ids",
    "LoadHistoryBuffer",
    "LHBStats",
    "RegisterRenamingTable",
]
