"""The Duplo detection unit (Figure 8): ID generator + LHB + renaming.

One detection unit sits next to each SM's LDST unit.  It is
power-gated until a convolution kernel launches, at which point the
compiler-generated :class:`~repro.core.compiler.ConvolutionInfo`
programs the ID generator.  Every tensor-core load then flows through
:meth:`DetectionUnit.process_load`:

1. the ID generator checks whether the address falls in the workspace
   region (non-workspace loads bypass to L1 untouched — Table II
   instruction #2);
2. the LHB is probed with the generated ``(element, batch, PID)`` tag,
   in parallel with the L1 lookup;
3. a hit renames the destination register to the holder and cancels
   the memory request; a miss lets the request proceed and allocates
   an entry recording the fresh destination register.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.conv.layer import ConvLayerSpec
from repro.core.compiler import ConvolutionInfo
from repro.core.idgen import IDGenerator, IDMode
from repro.core.lhb import LoadHistoryBuffer
from repro.core.renaming import RegisterRenamingTable


@dataclass(frozen=True)
class LoadOutcome:
    """What the detection unit decided for one tensor-core load."""

    in_workspace: bool
    eliminated: bool
    phys_reg: int
    element_id: int = -1
    batch_id: int = -1

    @property
    def issues_memory_request(self) -> bool:
        """True when the load must still traverse the memory hierarchy."""
        return not self.eliminated


class DetectionUnit:
    """Per-SM duplicate-load detection (Figure 8).

    Parameters mirror the paper's design space: LHB geometry and the
    ID mode (canonical ground truth by default; ``IDMode.PAPER`` for
    the published closed-form formulas).
    """

    def __init__(
        self,
        lhb: Optional[LoadHistoryBuffer] = None,
        renaming: Optional[RegisterRenamingTable] = None,
        id_mode: IDMode = IDMode.CANONICAL,
        merge_padding: bool = False,
        latency_cycles: int = 2,
    ):
        if latency_cycles < 1:
            raise ValueError(f"latency must be >= 1 cycle, got {latency_cycles}")
        self.lhb = lhb if lhb is not None else LoadHistoryBuffer()
        self.renaming = renaming if renaming is not None else RegisterRenamingTable()
        self.id_mode = id_mode
        self.merge_padding = merge_padding
        self.latency_cycles = latency_cycles
        self._idgen: Optional[IDGenerator] = None
        self.powered = False

    # ------------------------------------------------------------------
    # Kernel lifecycle
    # ------------------------------------------------------------------
    def program(
        self, spec: ConvLayerSpec, info: ConvolutionInfo
    ) -> None:
        """Wake the unit and program the ID generator at kernel launch."""
        self._idgen = IDGenerator(
            spec=spec,
            workspace_base=info.workspace_base,
            lda=info.lda,
            element_bytes=info.element_bytes,
            mode=self.id_mode,
            merge_padding=self.merge_padding,
        )
        self._pid = info.pid
        self.powered = True
        self.lhb.flush()

    def power_gate(self) -> None:
        """Return to the gated idle state (kernel completion)."""
        self.powered = False
        self._idgen = None
        self.lhb.flush()

    @property
    def idgen(self) -> IDGenerator:
        if self._idgen is None:
            raise RuntimeError("detection unit not programmed (kernel not launched)")
        return self._idgen

    # ------------------------------------------------------------------
    # Per-load path
    # ------------------------------------------------------------------
    def process_load(self, warp: int, dest_reg: int, address: int) -> LoadOutcome:
        """Handle one tensor-core load issued by ``warp``.

        Returns whether the load was eliminated and which physical
        register the destination now names.
        """
        if not self.powered:
            phys = self.renaming.define(warp, dest_reg)
            return LoadOutcome(in_workspace=False, eliminated=False, phys_reg=phys)
        generated = self.idgen.generate(address)
        if not generated.in_workspace:
            phys = self.renaming.define(warp, dest_reg)
            return LoadOutcome(in_workspace=False, eliminated=False, phys_reg=phys)

        # A fresh physical register must exist before the LHB access so
        # a miss can record it; an LHB hit hands it straight back.
        phys = self.renaming.define(warp, dest_reg)
        result = self.lhb.access(
            element_id=generated.element_id,
            batch_id=generated.batch_id,
            dest_reg=phys,
            pid=self._pid,
        )
        if result.hit and result.reg != phys:
            # Renaming may fail only if the holder was recycled; the
            # LHB lifetime window is what prevents that in practice.
            if self.renaming.regfile.refcount(result.reg) > 0:
                phys_target = self.renaming.alias(warp, dest_reg, result.reg)
                return LoadOutcome(
                    in_workspace=True,
                    eliminated=True,
                    phys_reg=phys_target,
                    element_id=generated.element_id,
                    batch_id=generated.batch_id,
                )
        return LoadOutcome(
            in_workspace=True,
            eliminated=result.hit,
            phys_reg=result.reg if result.hit else phys,
            element_id=generated.element_id,
            batch_id=generated.batch_id,
        )

    def process_store(self, address: int) -> bool:
        """Release the LHB entry matching a store's tags (Section IV-B).

        Returns True if an entry was invalidated.  The paper never
        observed this in the GEMM kernels; the hook exists for
        consistency.
        """
        if not self.powered:
            return False
        generated = self.idgen.generate(address)
        if not generated.in_workspace:
            return False
        return self.lhb.invalidate(
            element_id=generated.element_id,
            batch_id=generated.batch_id,
            pid=self._pid,
        )
