"""ID generation: mapping workspace addresses to duplicate-detecting IDs.

Section III of the paper assigns every workspace entry a
``(batch_id, element_id)`` pair such that two entries carry the same
data iff they receive the same pair.  This module implements the
identification mechanism in three flavours:

``IDMode.PAPER``
    The closed-form formulas exactly as published (Sections III-B and
    III-C: patch IDs, per-patch offsets, and the multi-channel /
    non-unit-stride / multi-batch extensions).  Validated against the
    Figure 6 worked example.

``IDMode.CANONICAL``
    The exact ground truth: invert the im2col map and use the padded
    input coordinate as the element ID (``repro.conv.lowering``).  Two
    entries share a canonical pair iff they are true duplicates, so
    this is what the simulator uses by default (DESIGN.md documents
    the substitution).

``IDMode.STRICT``
    Canonical IDs extended with the output-column phase ``ox``.  A
    tensor-core load covers a 16x16 tile but the LHB tags only its
    base address; diagonal (intra-patch) duplicates whose tiles
    straddle an output-row wrap can then alias tiles that are not
    fully identical.  STRICT refuses those matches — an ablation
    quantifying how much of Duplo's benefit rides on the paper's
    tile-equality assumption.

All three are exposed both entry-wise and vectorised over NumPy
arrays; :class:`IDGenerator` adds the address arithmetic (workspace
region check, address -> (row, col)) from Section IV-A.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.conv.layer import ConvLayerSpec
from repro.conv.lowering import entries_to_padded_flat, workspace_shape


class IDMode(enum.Enum):
    """Which identification formula the generator applies."""

    PAPER = "paper"
    CANONICAL = "canonical"
    STRICT = "strict"


# ----------------------------------------------------------------------
# Published closed-form formulas (Sections III-B / III-C)
# ----------------------------------------------------------------------

def paper_patch_ids(
    spec: ConvLayerSpec, rows: np.ndarray, cols: np.ndarray
) -> np.ndarray:
    """Patch IDs per Section III: identical patches get identical IDs.

    ``patch_id = patch_row_idx * stride + patch_col_idx`` where the
    row index divides the workspace row by the output height and the
    column index divides the workspace column by the filter width
    (times channels, per the III-C generalisation).
    """
    eff = spec.effective_spec()
    out = eff.output_shape
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    patch_row_idx = rows // out.height
    patch_col_idx = cols // (eff.filter_width * eff.in_channels)
    return patch_row_idx * eff.stride + patch_col_idx


def paper_ids(
    spec: ConvLayerSpec, rows: np.ndarray, cols: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """``(batch_id, element_id)`` via the published formulas.

    Verbatim Section III-C (which reduces to III-B for single-channel,
    unit-stride inputs)::

        batch_id   = worksp_row_idx / (output_width * output_height)
        offset     = patch_id * input_width * num_channels
        element_id = worksp_row_idx % output_width
                       * num_channels * stride_dist
                   + worksp_col_idx % (filter_width * num_channels)
                   + offset

    The formulas assume the tabulated square-output geometry; tests
    characterise exactly where they agree with the canonical ground
    truth (they do on the paper's Figure 6 example and on all
    interior, non-padding entries of unit-stride layers).
    """
    eff = spec.effective_spec()
    out = eff.output_shape
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    batch_id = rows // (out.width * out.height)
    patch_id = paper_patch_ids(spec, rows % (out.width * out.height), cols)
    offset = patch_id * eff.in_width * eff.in_channels
    element_id = (
        (rows % out.width) * eff.in_channels * eff.stride
        + cols % (eff.filter_width * eff.in_channels)
        + offset
    )
    return batch_id, element_id


def canonical_ids(
    spec: ConvLayerSpec,
    rows: np.ndarray,
    cols: np.ndarray,
    merge_padding: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact ``(batch_id, element_id)`` via the inverse im2col map."""
    return entries_to_padded_flat(spec, rows, cols, merge_padding=merge_padding)


def strict_ids(
    spec: ConvLayerSpec,
    rows: np.ndarray,
    cols: np.ndarray,
    merge_padding: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Canonical IDs disambiguated by output-column phase.

    Appends ``ox`` (the output column of the workspace row) to the
    element ID so only loads whose 16x16 tiles advance identically can
    match.  See the module docstring and the tile-aliasing ablation.
    """
    eff = spec.effective_spec()
    out = eff.output_shape
    rows = np.asarray(rows, dtype=np.int64)
    batch_id, element_id = canonical_ids(spec, rows, cols, merge_padding)
    ox = rows % out.width
    return batch_id, element_id * out.width + ox


@dataclass(frozen=True)
class GeneratedID:
    """Result of translating one load address."""

    in_workspace: bool
    batch_id: int = -1
    element_id: int = -1
    row: int = -1
    col: int = -1


class IDGenerator:
    """The detection unit's address translator (Section IV-A).

    Programmed at kernel launch with the compile-time convolution
    information (dimensions, stride, batch size, workspace base
    address and leading dimension); thereafter translates tensor-core
    load addresses into ``(batch_id, element_id)`` pairs.  Addresses
    outside the workspace region report ``in_workspace=False`` and
    bypass the LHB, exactly as instruction #2 does in Table II.

    The hardware unit restricts data dimensions to powers of two so
    the divide/modulo chain reduces to shifts and masks; this model
    computes the same arithmetic exactly and therefore accepts any
    dimensions (the restriction is a circuit simplification, not a
    semantic one).
    """

    def __init__(
        self,
        spec: ConvLayerSpec,
        workspace_base: int,
        lda: int,
        element_bytes: int = 2,
        mode: IDMode = IDMode.CANONICAL,
        merge_padding: bool = False,
        row_align: int = 16,
    ):
        eff = spec.effective_spec()
        rows, cols = workspace_shape(spec)
        if lda < cols:
            raise ValueError(f"leading dimension {lda} < workspace cols {cols}")
        self.spec = spec
        self.effective = eff
        self.workspace_base = workspace_base
        self.lda = lda
        self.element_bytes = element_bytes
        self.mode = mode
        self.merge_padding = merge_padding
        self.logical_rows = rows
        self.logical_cols = cols
        # The workspace region spans the padded allocation; the kernel
        # pads M to the architecture's ``tile_m`` (``row_align``).
        rows_padded = -(-rows // row_align) * row_align
        self.workspace_end = workspace_base + rows_padded * lda * element_bytes

    def contains(self, address: int) -> bool:
        """True if ``address`` lies in the workspace region."""
        return self.workspace_base <= address < self.workspace_end

    def address_to_entry(self, address: int) -> Tuple[int, int]:
        """Translate an in-workspace address to its (row, col) entry."""
        if not self.contains(address):
            raise ValueError(f"address {address:#x} outside workspace region")
        offset = address - self.workspace_base
        if offset % self.element_bytes:
            raise ValueError(f"address {address:#x} not element-aligned")
        array_idx = offset // self.element_bytes
        return divmod(array_idx, self.lda)

    def generate(self, address: int) -> GeneratedID:
        """Translate one load address (scalar path, used by Table II)."""
        if not self.contains(address):
            return GeneratedID(in_workspace=False)
        row, col = self.address_to_entry(address)
        if row >= self.logical_rows or col >= self.logical_cols:
            # Alignment-padding entry: zero fill, never duplicated.
            return GeneratedID(in_workspace=False, row=row, col=col)
        batch, element = self.generate_many(
            np.array([row]), np.array([col])
        )
        return GeneratedID(
            in_workspace=True,
            batch_id=int(batch[0]),
            element_id=int(element[0]),
            row=row,
            col=col,
        )

    def generate_many(
        self, rows: np.ndarray, cols: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised ID generation for workspace entries."""
        if self.mode is IDMode.PAPER:
            return paper_ids(self.spec, rows, cols)
        if self.mode is IDMode.STRICT:
            return strict_ids(self.spec, rows, cols, self.merge_padding)
        return canonical_ids(self.spec, rows, cols, self.merge_padding)

    def generate_for_addresses(
        self, addresses: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised translation of raw addresses.

        Returns ``(in_workspace, batch_id, element_id)`` arrays; the ID
        entries of out-of-workspace addresses are undefined (-1).
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        offset = addresses - self.workspace_base
        eb = self.element_bytes
        if eb & (eb - 1) == 0:
            # Power-of-two element size: shift/mask beat the int64
            # divider (and match the hardware unit's circuit).
            array_idx = offset >> (eb.bit_length() - 1)
            aligned = (offset & (eb - 1)) == 0
        else:
            array_idx = offset // eb
            aligned = offset % eb == 0
        rows = array_idx // self.lda
        cols = array_idx - rows * self.lda
        ok = (
            (addresses >= self.workspace_base)
            & (addresses < self.workspace_end)
            & aligned
            & (rows < self.logical_rows)
            & (cols < self.logical_cols)
        )
        batch = np.full(addresses.shape, -1, dtype=np.int64)
        element = np.full(addresses.shape, -1, dtype=np.int64)
        if ok.any():
            b, e = self.generate_many(rows[ok], cols[ok])
            batch[ok] = b
            element[ok] = e
        return ok, batch, element
