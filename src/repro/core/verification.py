"""ID-scheme verification: is an identification formula safe to deploy?

Duplo's correctness rests entirely on one property of the ID scheme
the compiler programs: two workspace entries that receive the same
``(batch, element)`` pair must hold the same value (**soundness** —
violating it corrupts results), and ideally every pair of duplicated
entries receives the same pair (**completeness** — missing pairs only
costs performance).

This module checks both properties *exhaustively* for a layer by
materialising the canonical equivalence classes (the exact inverse
im2col map) and comparing them against the classes any candidate ID
mode induces.  A hardware vendor shipping Duplo would run exactly this
check over its supported configuration space; our tests run it over
the paper's Figure 6 example, the Table I layers, and randomized
geometries to characterise where the published Section III formulas
hold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.conv.layer import ConvLayerSpec
from repro.conv.lowering import workspace_shape
from repro.core.idgen import IDMode, canonical_ids, paper_ids, strict_ids


@dataclass(frozen=True)
class IDSchemeReport:
    """Outcome of verifying one ID mode on one layer.

    ``sound`` — no ID groups two entries with different values;
    ``complete`` — every true duplicate pair shares an ID;
    the counts quantify how far off an unsound/incomplete scheme is.
    """

    spec: ConvLayerSpec
    mode: IDMode
    entries: int
    canonical_classes: int
    scheme_classes: int
    unsound_merges: int  # ID classes mixing distinct canonical classes
    missed_pairs: int  # canonical classes split across scheme IDs

    @property
    def sound(self) -> bool:
        return self.unsound_merges == 0

    @property
    def complete(self) -> bool:
        return self.missed_pairs == 0

    @property
    def exact(self) -> bool:
        return self.sound and self.complete


def _ids_for_mode(
    spec: ConvLayerSpec, mode: IDMode, rows: np.ndarray, cols: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    if mode is IDMode.PAPER:
        return paper_ids(spec, rows, cols)
    if mode is IDMode.STRICT:
        return strict_ids(spec, rows, cols)
    return canonical_ids(spec, rows, cols)


def verify_id_scheme(
    spec: ConvLayerSpec, mode: IDMode = IDMode.PAPER
) -> IDSchemeReport:
    """Exhaustively verify ``mode``'s IDs against the canonical map."""
    rows, cols = workspace_shape(spec)
    rr, cc = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
    rr = rr.ravel()
    cc = cc.ravel()

    cb, ce = canonical_ids(spec, rr, cc)
    sb, se = _ids_for_mode(spec, mode, rr, cc)
    canon = cb * (1 << 44) + ce
    scheme = sb * (1 << 44) + se

    # Soundness: within each scheme class, is the canonical ID unique?
    order = np.lexsort((canon, scheme))
    s_sorted = scheme[order]
    c_sorted = canon[order]
    new_scheme = np.ones(len(order), dtype=bool)
    new_scheme[1:] = s_sorted[1:] != s_sorted[:-1]
    new_canon = np.ones(len(order), dtype=bool)
    new_canon[1:] = (c_sorted[1:] != c_sorted[:-1]) | new_scheme[1:]
    # Scheme classes containing >1 distinct canonical ID:
    canon_per_scheme = np.add.reduceat(
        new_canon.astype(np.int64), np.nonzero(new_scheme)[0]
    )
    unsound = int((canon_per_scheme > 1).sum())

    # Completeness: within each canonical class, is the scheme ID unique?
    order2 = np.lexsort((scheme, canon))
    c2 = canon[order2]
    s2 = scheme[order2]
    new_c2 = np.ones(len(order2), dtype=bool)
    new_c2[1:] = c2[1:] != c2[:-1]
    new_s2 = np.ones(len(order2), dtype=bool)
    new_s2[1:] = (s2[1:] != s2[:-1]) | new_c2[1:]
    scheme_per_canon = np.add.reduceat(
        new_s2.astype(np.int64), np.nonzero(new_c2)[0]
    )
    missed = int((scheme_per_canon > 1).sum())

    return IDSchemeReport(
        spec=spec,
        mode=mode,
        entries=len(rr),
        canonical_classes=int(np.unique(canon).size),
        scheme_classes=int(np.unique(scheme).size),
        unsound_merges=unsound,
        missed_pairs=missed,
    )


def verify_table(
    specs, mode: IDMode = IDMode.PAPER
) -> Dict[str, IDSchemeReport]:
    """Verify a collection of layers; keyed by qualified name."""
    return {spec.qualified_name: verify_id_scheme(spec, mode) for spec in specs}
