"""The load history buffer (LHB), Section IV-B of the paper.

The LHB records, per SM, which physical warp register holds each
recently loaded workspace datum.  Every tensor-core load consults it:

* **hit** — a preceding load already fetched the same
  ``(element_id, batch_id, pid)`` tag and its value is still live in
  the register file, so the load is eliminated and its destination is
  renamed to the recorded register;
* **miss** — the request proceeds to L1 and a new entry is allocated
  (possibly replacing a conflicting one — the paper's "entry
  replacement" in Table II).

Entry lifetime follows the paper's retirement rule: an entry is
released when its producing load retires, *unless* continuous hits
relay the register to later loads, extending its effective lifetime.
We model retirement as a sliding window of ``lifetime`` subsequent
warp-level loads on the same SM (a hit refreshes the window), which is
what makes even an infinite ("oracle") LHB saturate below the
theoretical duplicate fraction (Section V-C: ~76% vs. 88.9%).

Organisations: direct-mapped (the paper's default), N-way
set-associative with LRU (Figure 12), and unbounded oracle
(``num_entries=None``).  The paper's 1024-entry direct-mapped default
indexes with the low 10 bits of the element ID and tags with the rest
plus the batch ID and PID; we keep exactly that split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

Tag = Tuple[int, int, int]  # (element_id, batch_id, pid)

#: Lifetime value meaning "registers never retire" (theoretical bound).
INFINITE_LIFETIME = None


@dataclass
class LHBStats:
    """Counters the evaluation section plots."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    compulsory_misses: int = 0
    conflict_replacements: int = 0
    expired_misses: int = 0
    store_invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of workspace-load lookups that hit (Figure 10)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def publish(self, add, prefix: str = "lhb.raw.") -> None:
        """Report every counter through ``add(name, delta)``.

        ``add`` is typically :func:`repro.obs.add`; the simulator calls
        this after each replay so ``--metrics-out`` carries the
        buffer's own (traced-prefix) counters alongside the scaled
        ``sim.lhb.*`` aggregates.
        """
        add(prefix + "lookups", self.lookups)
        add(prefix + "hits", self.hits)
        add(prefix + "misses", self.misses)
        add(prefix + "compulsory_misses", self.compulsory_misses)
        add(prefix + "conflict_replacements", self.conflict_replacements)
        add(prefix + "expired_misses", self.expired_misses)
        add(prefix + "store_invalidations", self.store_invalidations)

    def merge(self, other: "LHBStats") -> "LHBStats":
        """Aggregate counters across SMs or layers."""
        return LHBStats(
            lookups=self.lookups + other.lookups,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            compulsory_misses=self.compulsory_misses + other.compulsory_misses,
            conflict_replacements=(
                self.conflict_replacements + other.conflict_replacements
            ),
            expired_misses=self.expired_misses + other.expired_misses,
            store_invalidations=(
                self.store_invalidations + other.store_invalidations
            ),
        )


@dataclass
class _Entry:
    """One LHB entry: tag, recorded register, and liveness horizon."""

    tag: Tag
    reg: int
    expires_at: Optional[int]
    last_use: int = 0


@dataclass(frozen=True)
class LHBResult:
    """Outcome of one LHB access."""

    hit: bool
    reg: int  # register holding the datum (existing on hit, new on miss)


class LoadHistoryBuffer:
    """Direct-mapped / set-associative / oracle LHB.

    Parameters
    ----------
    num_entries:
        Total entries, or ``None`` for the oracle (unbounded) buffer.
    assoc:
        Ways per set; 1 is the paper's direct-mapped default.
    lifetime:
        Retirement window in subsequent warp-level loads; ``None``
        models registers that never retire (theoretical upper bound).
    """

    def __init__(
        self,
        num_entries: Optional[int] = 1024,
        assoc: int = 1,
        lifetime: Optional[int] = 4096,
        hashed_index: bool = True,
    ):
        if num_entries is not None:
            if num_entries < 1:
                raise ValueError(f"num_entries must be >= 1, got {num_entries}")
            if assoc < 1 or num_entries % assoc:
                raise ValueError(
                    f"associativity {assoc} must divide num_entries {num_entries}"
                )
        if lifetime is not None and lifetime < 1:
            raise ValueError(f"lifetime must be >= 1 or None, got {lifetime}")
        self.num_entries = num_entries
        self.assoc = assoc
        self.lifetime = lifetime
        self.hashed_index = hashed_index
        self.stats = LHBStats()
        self._seq = 0
        self._oracle: Dict[Tag, _Entry] = {}
        # Per-set storage is allocated on first event-path access:
        # construction stays O(1), so analytic-tier geometry sweeps
        # (which build a buffer per query only to carry its geometry
        # and stats) do not pay for num_sets empty lists.
        self._lazy_sets: Optional[List[List[_Entry]]] = None
        self.num_sets = 0 if num_entries is None else num_entries // assoc
        self._seen_tags: set = set()

    @property
    def _sets(self) -> List[List[_Entry]]:
        if self._lazy_sets is None:
            self._lazy_sets = [[] for _ in range(self.num_sets)]
        return self._lazy_sets

    @property
    def is_oracle(self) -> bool:
        """True for the unbounded buffer the paper labels "oracle"."""
        return self.num_entries is None

    def is_fresh(self) -> bool:
        """True while the buffer has never served an access.

        The vectorised replay (:mod:`repro.gpu.fastpath`) resolves a
        whole lookup stream in closed form under the assumption that
        the buffer starts empty; a warm buffer (entries or counters
        carried over from a previous stream) has no such closed form
        and must take the event path.
        """
        return self._seq == 0 and not self._seen_tags

    # ------------------------------------------------------------------
    # Core access path
    # ------------------------------------------------------------------
    def _index(self, element_id: int) -> int:
        """Set index for an element ID.

        The paper slices the low 10 bits of the element ID.  Element
        IDs of concurrently live loads differ by multiples of the
        (power-of-two) channel count, so a plain low-bit slice
        collapses onto a handful of sets; the default XOR-folds the
        upper bits in (the standard index hash of GPU caches/TLBs —
        the one indexing liberty this model takes, kept switchable via
        ``hashed_index`` for the ablation bench).
        """
        if self.hashed_index:
            # Fibonacci-multiplicative mix (cheap in hardware: one
            # multiply-by-constant, or an XOR tree of shifted copies).
            element_id = (element_id * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
            element_id ^= element_id >> 29
        return element_id % self.num_sets

    def _alive(self, entry: _Entry) -> bool:
        return entry.expires_at is None or self._seq < entry.expires_at

    def _expiry(self) -> Optional[int]:
        if self.lifetime is None:
            return None
        return self._seq + self.lifetime

    def access(
        self, element_id: int, batch_id: int, dest_reg: int, pid: int = 0
    ) -> LHBResult:
        """Look up one tensor-core load; allocate on miss.

        ``dest_reg`` is the physical register the load would write; on
        a hit the returned register is the *existing* holder (the
        renaming target), and the hit relays the entry's lifetime.
        """
        self._seq += 1
        self.stats.lookups += 1
        tag: Tag = (element_id, batch_id, pid)

        if self.is_oracle:
            entry = self._oracle.get(tag)
            if entry is not None and self._alive(entry):
                return self._hit(entry)
            if entry is not None:
                self.stats.expired_misses += 1
            return self._miss_oracle(tag, dest_reg)

        index = self._index(element_id)
        ways = self._sets[index]
        for entry in ways:
            if entry.tag == tag:
                if self._alive(entry):
                    return self._hit(entry)
                ways.remove(entry)
                self.stats.expired_misses += 1
                break
        return self._miss_set(ways, tag, dest_reg)

    def _hit(self, entry: _Entry) -> LHBResult:
        self.stats.hits += 1
        entry.expires_at = self._expiry()  # relay
        entry.last_use = self._seq
        return LHBResult(hit=True, reg=entry.reg)

    def _miss_oracle(self, tag: Tag, dest_reg: int) -> LHBResult:
        self._count_miss(tag)
        self._oracle[tag] = _Entry(
            tag=tag, reg=dest_reg, expires_at=self._expiry(), last_use=self._seq
        )
        return LHBResult(hit=False, reg=dest_reg)

    def _miss_set(
        self, ways: List[_Entry], tag: Tag, dest_reg: int
    ) -> LHBResult:
        self._count_miss(tag)
        entry = _Entry(
            tag=tag, reg=dest_reg, expires_at=self._expiry(), last_use=self._seq
        )
        if len(ways) >= self.assoc:
            # Prefer evicting a dead entry, else true LRU (Table II's
            # "entry replacement" step for the direct-mapped case).
            victim = min(
                ways, key=lambda e: (self._alive(e), e.last_use)
            )
            ways.remove(victim)
            if self._alive(victim):
                self.stats.conflict_replacements += 1
        ways.append(entry)
        return LHBResult(hit=False, reg=dest_reg)

    def _count_miss(self, tag: Tag) -> None:
        self.stats.misses += 1
        if tag not in self._seen_tags:
            self._seen_tags.add(tag)
            self.stats.compulsory_misses += 1

    # ------------------------------------------------------------------
    # Consistency hooks
    # ------------------------------------------------------------------
    def invalidate(self, element_id: int, batch_id: int, pid: int = 0) -> bool:
        """Release the entry matching a store's tags (Section IV-B).

        Returns True if a *live* entry was released.  A matching entry
        whose lifetime window already lapsed is removed too (its
        register no longer holds the datum either way) but is not
        counted as a store invalidation — counting it would drift the
        Table II stats relative to :meth:`live_entries`.  The paper
        notes this never fired in their experiments (GEMM kernels do
        not store to the workspace); our tests exercise it anyway.
        """
        tag: Tag = (element_id, batch_id, pid)
        if self.is_oracle:
            entry = self._oracle.pop(tag, None)
            if entry is not None and self._alive(entry):
                self.stats.store_invalidations += 1
                return True
            return False
        ways = self._sets[self._index(element_id)]
        for entry in ways:
            if entry.tag == tag:
                ways.remove(entry)
                if self._alive(entry):
                    self.stats.store_invalidations += 1
                    return True
                return False
        return False

    def flush(self) -> None:
        """Drop all entries (kernel boundary / power-gating)."""
        if self.is_oracle:
            self._oracle.clear()
        elif self._lazy_sets is not None:
            for ways in self._lazy_sets:
                ways.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def live_entries(self) -> int:
        """Number of currently valid (non-expired) entries."""
        if self.is_oracle:
            return sum(self._alive(e) for e in self._oracle.values())
        if self._lazy_sets is None:
            return 0
        return sum(self._alive(e) for ways in self._lazy_sets for e in ways)

    def tag_bits(
        self,
        element_bits: int = 32,
        batch_bits: int = 10,
        pid_bits: int = 10,
    ) -> int:
        """Stored tag width: each field is explicit, none baked in.

        The element ID's low ``log2(num_sets)`` bits are implied by
        the set index and not stored; the batch ID and PID widths are
        parameters so the Section V-H area accounting in
        :mod:`repro.energy` composes the *same* fields rather than
        hiding the PID inside an opaque 42-bit constant.  Paper
        default (1024 entries, direct-mapped): 22 upper element bits
        + 10 batch + 10 PID = 42.
        """
        if self.is_oracle:
            raise ValueError("oracle LHB has no physical storage")
        index_bits = max(0, self.num_sets.bit_length() - 1)
        return (element_bits - index_bits) + batch_bits + pid_bits

    def storage_bits(
        self,
        element_bits: int = 32,
        batch_bits: int = 10,
        pid_bits: int = 10,
        reg_bits: int = 10,
    ) -> int:
        """Raw storage of the buffer (Section V-H area accounting).

        ``tag_bits`` per entry (see :meth:`tag_bits`) plus the 10-bit
        physical register payload.  1024-entry direct-mapped default:
        1024 x (42 + 10) bits.
        """
        if self.is_oracle:
            raise ValueError("oracle LHB has no physical storage")
        return self.num_entries * (
            self.tag_bits(element_bits, batch_bits, pid_bits) + reg_bits
        )

    def __repr__(self) -> str:
        size = "oracle" if self.is_oracle else str(self.num_entries)
        return (
            f"LoadHistoryBuffer(entries={size}, assoc={self.assoc}, "
            f"lifetime={self.lifetime}, hit_rate={self.stats.hit_rate:.3f})"
        )
