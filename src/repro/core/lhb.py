"""The load history buffer (LHB), Section IV-B of the paper.

The LHB records, per SM, which physical warp register holds each
recently loaded workspace datum.  Every tensor-core load consults it:

* **hit** — a preceding load already fetched the same
  ``(element_id, batch_id, pid)`` tag and its value is still live in
  the register file, so the load is eliminated and its destination is
  renamed to the recorded register;
* **miss** — the request proceeds to L1 and a new entry is allocated
  (possibly replacing a conflicting one — the paper's "entry
  replacement" in Table II).

Entry lifetime follows the paper's retirement rule: an entry is
released when its producing load retires, *unless* continuous hits
relay the register to later loads, extending its effective lifetime.
We model retirement as a sliding window of ``lifetime`` subsequent
warp-level loads on the same SM (a hit refreshes the window), which is
what makes even an infinite ("oracle") LHB saturate below the
theoretical duplicate fraction (Section V-C: ~76% vs. 88.9%).

Organisations: direct-mapped (the paper's default), N-way
set-associative with LRU (Figure 12), and unbounded oracle
(``num_entries=None``).  The paper's 1024-entry direct-mapped default
indexes with the low 10 bits of the element ID and tags with the rest
plus the batch ID and PID; we keep exactly that split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

Tag = Tuple[int, int, int]  # (element_id, batch_id, pid)

#: Lifetime value meaning "registers never retire" (theoretical bound).
INFINITE_LIFETIME = None


def vector_set_indices(
    element: np.ndarray, num_sets: int, hashed: bool = True
) -> np.ndarray:
    """Vectorised twin of :meth:`LoadHistoryBuffer._index`.

    Must produce exactly ``_index`` element-wise: the fast replay and
    the warm-residency fold both bucket by it, and any divergence from
    the scalar path would silently split tags across sets.
    """
    element = np.asarray(element)
    if hashed:
        mixed = element.astype(np.uint64) * np.uint64(0x9E3779B97F4A7C15)
        mixed ^= mixed >> np.uint64(29)
        return (mixed % np.uint64(num_sets)).astype(np.int64)
    return np.mod(element.astype(np.int64), num_sets)


def _tag_keys(
    element: np.ndarray, batch: np.ndarray, pid: np.ndarray
) -> np.ndarray:
    """Injective int64 key per tag triple (valid within one call).

    Bases are derived from the arrays themselves, so keys from
    different calls are not comparable.
    """
    if not len(element):
        return element.astype(np.int64)
    base_b = np.int64(int(batch.max()) + 1)
    base_p = np.int64(int(pid.max()) + 1)
    return (element * base_b + batch) * base_p + pid


@dataclass
class LHBStats:
    """Counters the evaluation section plots."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    compulsory_misses: int = 0
    conflict_replacements: int = 0
    expired_misses: int = 0
    store_invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of workspace-load lookups that hit (Figure 10)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def publish(self, add, prefix: str = "lhb.raw.") -> None:
        """Report every counter through ``add(name, delta)``.

        ``add`` is typically :func:`repro.obs.add`; the simulator calls
        this after each replay so ``--metrics-out`` carries the
        buffer's own (traced-prefix) counters alongside the scaled
        ``sim.lhb.*`` aggregates.
        """
        add(prefix + "lookups", self.lookups)
        add(prefix + "hits", self.hits)
        add(prefix + "misses", self.misses)
        add(prefix + "compulsory_misses", self.compulsory_misses)
        add(prefix + "conflict_replacements", self.conflict_replacements)
        add(prefix + "expired_misses", self.expired_misses)
        add(prefix + "store_invalidations", self.store_invalidations)

    def merge(self, other: "LHBStats") -> "LHBStats":
        """Aggregate counters across SMs or layers."""
        return LHBStats(
            lookups=self.lookups + other.lookups,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            compulsory_misses=self.compulsory_misses + other.compulsory_misses,
            conflict_replacements=(
                self.conflict_replacements + other.conflict_replacements
            ),
            expired_misses=self.expired_misses + other.expired_misses,
            store_invalidations=(
                self.store_invalidations + other.store_invalidations
            ),
        )


@dataclass
class _Entry:
    """One LHB entry: tag, recorded register, and liveness horizon."""

    tag: Tag
    reg: int
    expires_at: Optional[int]
    last_use: int = 0


@dataclass(frozen=True)
class LHBResult:
    """Outcome of one LHB access."""

    hit: bool
    reg: int  # register holding the datum (existing on hit, new on miss)


@dataclass(frozen=True)
class _VectorState:
    """Columnar residency snapshot of the buffer.

    ``element``/``batch``/``pid``/``last_use`` are parallel int64
    arrays, one row per resident entry (expired entries included — they
    still occupy ways), sorted by ``last_use`` ascending.  ``last_use``
    holds each entry's *global position*: the value of ``_seq`` at its
    most recent touch, unique across entries.  The ``seen_*`` arrays
    are the distinct tags ever missed (the compulsory-miss filter).

    The buffer is always in exactly one representation: either the
    Python ``_Entry`` structures (event path) or a ``_VectorState``
    plus pending fast-replay segments (fast path).
    :meth:`LoadHistoryBuffer.residency_snapshot` folds into this form;
    :meth:`LoadHistoryBuffer._materialize` folds back.
    """

    element: np.ndarray
    batch: np.ndarray
    pid: np.ndarray
    last_use: np.ndarray
    seen_element: np.ndarray
    seen_batch: np.ndarray
    seen_pid: np.ndarray


class LoadHistoryBuffer:
    """Direct-mapped / set-associative / oracle LHB.

    Parameters
    ----------
    num_entries:
        Total entries, or ``None`` for the oracle (unbounded) buffer.
    assoc:
        Ways per set; 1 is the paper's direct-mapped default.
    lifetime:
        Retirement window in subsequent warp-level loads; ``None``
        models registers that never retire (theoretical upper bound).
    """

    def __init__(
        self,
        num_entries: Optional[int] = 1024,
        assoc: int = 1,
        lifetime: Optional[int] = 4096,
        hashed_index: bool = True,
    ):
        if num_entries is not None:
            if num_entries < 1:
                raise ValueError(f"num_entries must be >= 1, got {num_entries}")
            if assoc < 1 or num_entries % assoc:
                raise ValueError(
                    f"associativity {assoc} must divide num_entries {num_entries}"
                )
        if lifetime is not None and lifetime < 1:
            raise ValueError(f"lifetime must be >= 1 or None, got {lifetime}")
        self.num_entries = num_entries
        self.assoc = assoc
        self.lifetime = lifetime
        self.hashed_index = hashed_index
        self.stats = LHBStats()
        self._seq = 0
        self._oracle: Dict[Tag, _Entry] = {}
        # Per-set storage is allocated on first event-path access:
        # construction stays O(1), so analytic-tier geometry sweeps
        # (which build a buffer per query only to carry its geometry
        # and stats) do not pay for num_sets empty lists.
        self._lazy_sets: Optional[List[List[_Entry]]] = None
        self.num_sets = 0 if num_entries is None else num_entries // assoc
        self._seen_tags: set = set()
        # Fast-replay residency state: the last folded snapshot plus
        # lookup segments replayed since (element, batch, pid arrays
        # and the value of _seq before the segment).  See
        # residency_snapshot() / _materialize().
        self._vector_state: Optional[_VectorState] = None
        self._pending_segments: List[
            Tuple[np.ndarray, np.ndarray, np.ndarray, int]
        ] = []

    @property
    def _sets(self) -> List[List[_Entry]]:
        if self._lazy_sets is None:
            self._lazy_sets = [[] for _ in range(self.num_sets)]
        return self._lazy_sets

    @property
    def is_oracle(self) -> bool:
        """True for the unbounded buffer the paper labels "oracle"."""
        return self.num_entries is None

    def is_fresh(self) -> bool:
        """True while the buffer has never served an access.

        The analytic tier (:mod:`repro.analytic`) prices a lookup
        stream in closed form under the assumption that the buffer
        starts empty, so a warm buffer routes past it.  The vectorised
        replay has no such restriction: it seeds its sorted-space
        recurrence from :meth:`residency_snapshot`, so warm buffers
        stay on the fast path.
        """
        return self._seq == 0 and not self._seen_tags

    # ------------------------------------------------------------------
    # Core access path
    # ------------------------------------------------------------------
    def _index(self, element_id: int) -> int:
        """Set index for an element ID.

        The paper slices the low 10 bits of the element ID.  Element
        IDs of concurrently live loads differ by multiples of the
        (power-of-two) channel count, so a plain low-bit slice
        collapses onto a handful of sets; the default XOR-folds the
        upper bits in (the standard index hash of GPU caches/TLBs —
        the one indexing liberty this model takes, kept switchable via
        ``hashed_index`` for the ablation bench).
        """
        if self.hashed_index:
            # Fibonacci-multiplicative mix (cheap in hardware: one
            # multiply-by-constant, or an XOR tree of shifted copies).
            element_id = (element_id * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
            element_id ^= element_id >> 29
        return element_id % self.num_sets

    def _alive(self, entry: _Entry) -> bool:
        return entry.expires_at is None or self._seq < entry.expires_at

    def _expiry(self) -> Optional[int]:
        if self.lifetime is None:
            return None
        return self._seq + self.lifetime

    def access(
        self, element_id: int, batch_id: int, dest_reg: int, pid: int = 0
    ) -> LHBResult:
        """Look up one tensor-core load; allocate on miss.

        ``dest_reg`` is the physical register the load would write; on
        a hit the returned register is the *existing* holder (the
        renaming target), and the hit relays the entry's lifetime.
        """
        self._materialize()
        self._seq += 1
        self.stats.lookups += 1
        tag: Tag = (element_id, batch_id, pid)

        if self.is_oracle:
            entry = self._oracle.get(tag)
            if entry is not None and self._alive(entry):
                return self._hit(entry)
            if entry is not None:
                self.stats.expired_misses += 1
            return self._miss_oracle(tag, dest_reg)

        index = self._index(element_id)
        ways = self._sets[index]
        for entry in ways:
            if entry.tag == tag:
                if self._alive(entry):
                    return self._hit(entry)
                ways.remove(entry)
                self.stats.expired_misses += 1
                break
        return self._miss_set(ways, tag, dest_reg)

    def _hit(self, entry: _Entry) -> LHBResult:
        self.stats.hits += 1
        entry.expires_at = self._expiry()  # relay
        entry.last_use = self._seq
        return LHBResult(hit=True, reg=entry.reg)

    def _miss_oracle(self, tag: Tag, dest_reg: int) -> LHBResult:
        self._count_miss(tag)
        self._oracle[tag] = _Entry(
            tag=tag, reg=dest_reg, expires_at=self._expiry(), last_use=self._seq
        )
        return LHBResult(hit=False, reg=dest_reg)

    def _miss_set(
        self, ways: List[_Entry], tag: Tag, dest_reg: int
    ) -> LHBResult:
        self._count_miss(tag)
        entry = _Entry(
            tag=tag, reg=dest_reg, expires_at=self._expiry(), last_use=self._seq
        )
        if len(ways) >= self.assoc:
            # Prefer evicting a dead entry, else true LRU (Table II's
            # "entry replacement" step for the direct-mapped case).
            victim = min(
                ways, key=lambda e: (self._alive(e), e.last_use)
            )
            ways.remove(victim)
            if self._alive(victim):
                self.stats.conflict_replacements += 1
        ways.append(entry)
        return LHBResult(hit=False, reg=dest_reg)

    def _count_miss(self, tag: Tag) -> None:
        self.stats.misses += 1
        if tag not in self._seen_tags:
            self._seen_tags.add(tag)
            self.stats.compulsory_misses += 1

    # ------------------------------------------------------------------
    # Fast-replay residency state
    # ------------------------------------------------------------------
    def note_fast_replay(
        self,
        element: np.ndarray,
        batch: np.ndarray,
        pid: Optional[np.ndarray] = None,
    ) -> None:
        """Record one fast-replayed lookup segment.

        The vectorised replay resolves the whole segment in closed form
        without touching ``_Entry`` structures; this logs the raw
        stream (and advances ``_seq`` by its length) so a later
        :meth:`residency_snapshot` or event-path access can reconstruct
        the exact post-segment buffer state lazily.
        """
        n = len(element)
        if n == 0:
            return
        element = np.asarray(element, dtype=np.int64)
        batch = np.asarray(batch, dtype=np.int64)
        if pid is None:
            pid = np.zeros(n, dtype=np.int64)
        else:
            pid = np.asarray(pid, dtype=np.int64)
        self._pending_segments.append((element, batch, pid, self._seq))
        self._seq += n

    def residency_snapshot(self) -> _VectorState:
        """Fold the buffer's current contents into a :class:`_VectorState`.

        Combines whichever representation is live — Python entries, a
        previous snapshot, pending fast-replay segments — into one
        columnar latest-per-tag view capped at ``assoc`` most-recent
        tags per set (exactly the membership the event path would hold:
        a hit refreshes recency, dead-preferred eviction coincides with
        plain LRU because expired entries are always older than live
        ones), then switches the buffer to vector representation.
        """
        # -- gather (element, batch, pid, gpos) rows from all sources --
        if self.is_oracle:
            py_entries = list(self._oracle.values())
        elif self._lazy_sets is not None:
            py_entries = [e for ways in self._lazy_sets for e in ways]
        else:
            py_entries = []
        parts = []
        if py_entries:
            parts.append(
                (
                    np.array([e.tag[0] for e in py_entries], dtype=np.int64),
                    np.array([e.tag[1] for e in py_entries], dtype=np.int64),
                    np.array([e.tag[2] for e in py_entries], dtype=np.int64),
                    np.array([e.last_use for e in py_entries], dtype=np.int64),
                )
            )
        vs = self._vector_state
        if vs is not None and len(vs.element):
            parts.append((vs.element, vs.batch, vs.pid, vs.last_use))
        for element, batch, pid, seq_before in self._pending_segments:
            gpos = seq_before + 1 + np.arange(len(element), dtype=np.int64)
            parts.append((element, batch, pid, gpos))

        empty = np.zeros(0, dtype=np.int64)
        seen_parts = []
        if vs is not None and len(vs.seen_element):
            seen_parts.append((vs.seen_element, vs.seen_batch, vs.seen_pid))
        if self._seen_tags:
            rows = np.array(sorted(self._seen_tags), dtype=np.int64)
            seen_parts.append((rows[:, 0], rows[:, 1], rows[:, 2]))

        if parts:
            el = np.concatenate([p[0] for p in parts])
            ba = np.concatenate([p[1] for p in parts])
            pi = np.concatenate([p[2] for p in parts])
            gp = np.concatenate([p[3] for p in parts])
            # Every row's tag has been looked up, so it belongs in the
            # seen set too.
            seen_parts.append((el, ba, pi))
            keep = self._latest_per_tag(el, ba, pi, gp)
            if not self.is_oracle:
                keep = self._cap_per_set(el, gp, keep)
            keep = keep[np.argsort(gp[keep], kind="stable")]
            el, ba, pi, gp = el[keep], ba[keep], pi[keep], gp[keep]
        else:
            el = ba = pi = gp = empty

        if seen_parts:
            s_el = np.concatenate([p[0] for p in seen_parts])
            s_ba = np.concatenate([p[1] for p in seen_parts])
            s_pi = np.concatenate([p[2] for p in seen_parts])
            ukey = _tag_keys(s_el, s_ba, s_pi)
            order = np.argsort(ukey, kind="stable")
            key_s = ukey[order]
            first = np.ones(len(key_s), dtype=bool)
            first[1:] = key_s[1:] != key_s[:-1]
            keep_s = order[first]
            s_el, s_ba, s_pi = s_el[keep_s], s_ba[keep_s], s_pi[keep_s]
        else:
            s_el = s_ba = s_pi = empty

        state = _VectorState(
            element=el, batch=ba, pid=pi, last_use=gp,
            seen_element=s_el, seen_batch=s_ba, seen_pid=s_pi,
        )
        self._vector_state = state
        self._pending_segments = []
        self._oracle = {}
        self._lazy_sets = None
        self._seen_tags = set()
        return state

    @staticmethod
    def _latest_per_tag(
        el: np.ndarray, ba: np.ndarray, pi: np.ndarray, gp: np.ndarray
    ) -> np.ndarray:
        """Row indices of each distinct tag's most recent occurrence."""
        key = _tag_keys(el, ba, pi)
        order = np.lexsort((gp, key))
        key_s = key[order]
        last = np.ones(len(key_s), dtype=bool)
        last[:-1] = key_s[1:] != key_s[:-1]
        return order[last]

    def _cap_per_set(
        self, el: np.ndarray, gp: np.ndarray, keep: np.ndarray
    ) -> np.ndarray:
        """Keep only the ``assoc`` most-recent tags of each set."""
        sets = vector_set_indices(el[keep], self.num_sets, self.hashed_index)
        order = np.lexsort((-gp[keep], sets))
        sets_s = sets[order]
        new_set = np.ones(len(order), dtype=bool)
        new_set[1:] = sets_s[1:] != sets_s[:-1]
        idx = np.arange(len(order))
        start = np.maximum.accumulate(np.where(new_set, idx, 0))
        return keep[order[(idx - start) < self.assoc]]

    def _materialize(self) -> None:
        """Fold vector residency state back into Python ``_Entry``\\ s.

        Called lazily at the top of every event-path operation so a
        fast-replayed buffer looks exactly as if the stream had been
        fed through :meth:`access` one lookup at a time (same
        membership, recency, expiry horizons, and seen-tag filter; the
        recorded registers are not reconstructed and read as 0).
        """
        if self._vector_state is None and not self._pending_segments:
            return
        state = self.residency_snapshot()
        self._vector_state = None
        lifetime = self.lifetime
        entries = [
            _Entry(
                tag=(e, b, p),
                reg=0,
                expires_at=None if lifetime is None else g + lifetime,
                last_use=g,
            )
            for e, b, p, g in zip(
                state.element.tolist(),
                state.batch.tolist(),
                state.pid.tolist(),
                state.last_use.tolist(),
            )
        ]
        if self.is_oracle:
            self._oracle = {entry.tag: entry for entry in entries}
        elif entries:
            sets = self._sets
            for entry in entries:
                sets[self._index(entry.tag[0])].append(entry)
        self._seen_tags = set(
            zip(
                state.seen_element.tolist(),
                state.seen_batch.tolist(),
                state.seen_pid.tolist(),
            )
        )

    # ------------------------------------------------------------------
    # Consistency hooks
    # ------------------------------------------------------------------
    def invalidate(self, element_id: int, batch_id: int, pid: int = 0) -> bool:
        """Release the entry matching a store's tags (Section IV-B).

        Returns True if a *live* entry was released.  A matching entry
        whose lifetime window already lapsed is removed too (its
        register no longer holds the datum either way) but is not
        counted as a store invalidation — counting it would drift the
        Table II stats relative to :meth:`live_entries`.  The paper
        notes this never fired in their experiments (GEMM kernels do
        not store to the workspace); our tests exercise it anyway.
        """
        self._materialize()
        tag: Tag = (element_id, batch_id, pid)
        if self.is_oracle:
            entry = self._oracle.pop(tag, None)
            if entry is not None and self._alive(entry):
                self.stats.store_invalidations += 1
                return True
            return False
        ways = self._sets[self._index(element_id)]
        for entry in ways:
            if entry.tag == tag:
                ways.remove(entry)
                if self._alive(entry):
                    self.stats.store_invalidations += 1
                    return True
                return False
        return False

    def flush(self) -> None:
        """Drop all entries (kernel boundary / power-gating)."""
        self._materialize()
        if self.is_oracle:
            self._oracle.clear()
        elif self._lazy_sets is not None:
            for ways in self._lazy_sets:
                ways.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def live_entries(self) -> int:
        """Number of currently valid (non-expired) entries."""
        self._materialize()
        if self.is_oracle:
            return sum(self._alive(e) for e in self._oracle.values())
        if self._lazy_sets is None:
            return 0
        return sum(self._alive(e) for ways in self._lazy_sets for e in ways)

    def tag_bits(
        self,
        element_bits: int = 32,
        batch_bits: int = 10,
        pid_bits: int = 10,
    ) -> int:
        """Stored tag width: each field is explicit, none baked in.

        The element ID's low ``log2(num_sets)`` bits are implied by
        the set index and not stored; the batch ID and PID widths are
        parameters so the Section V-H area accounting in
        :mod:`repro.energy` composes the *same* fields rather than
        hiding the PID inside an opaque 42-bit constant.  Paper
        default (1024 entries, direct-mapped): 22 upper element bits
        + 10 batch + 10 PID = 42.
        """
        if self.is_oracle:
            raise ValueError("oracle LHB has no physical storage")
        index_bits = max(0, self.num_sets.bit_length() - 1)
        return (element_bits - index_bits) + batch_bits + pid_bits

    def storage_bits(
        self,
        element_bits: int = 32,
        batch_bits: int = 10,
        pid_bits: int = 10,
        reg_bits: int = 10,
    ) -> int:
        """Raw storage of the buffer (Section V-H area accounting).

        ``tag_bits`` per entry (see :meth:`tag_bits`) plus the 10-bit
        physical register payload.  1024-entry direct-mapped default:
        1024 x (42 + 10) bits.
        """
        if self.is_oracle:
            raise ValueError("oracle LHB has no physical storage")
        return self.num_entries * (
            self.tag_bits(element_bits, batch_bits, pid_bits) + reg_bits
        )

    def __repr__(self) -> str:
        size = "oracle" if self.is_oracle else str(self.num_entries)
        return (
            f"LoadHistoryBuffer(entries={size}, assoc={self.assoc}, "
            f"lifetime={self.lifetime}, hit_rate={self.stats.hit_rate:.3f})"
        )
