"""Compiler support (Section IV-A) and compiler-only costs (IV-D).

Duplo's compiler emits a small per-kernel blob of convolution
information — input/filter dimensions, striding distance, batch size,
and the workspace's starting address — stored in global memory and
loaded into the detection unit at kernel launch.  The paper sizes it
at 32 bytes per kernel; :meth:`ConvolutionInfo.encoded_bytes` checks
our encoding stays within that budget.

Section IV-D argues compiler-*only* alternatives fail: warp-to-warp
register moves are impossible without hardware (warp mapping is a
runtime property), and tagging every tensor-core load offline needs
tag storage proportional to the dynamic load count (~27.2 GB for YOLO
C2 by the paper's accounting).  :func:`compiler_only_tag_bytes`
reproduces that arithmetic.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.conv.layer import ConvLayerSpec
from repro.conv.lowering import workspace_shape


@dataclass(frozen=True)
class ConvolutionInfo:
    """The compile-time blob programmed into the detection unit.

    All fields describe the *effective* convolution (transposed layers
    are already rewritten to their unit-stride equivalent by the time
    a kernel exists).
    """

    input_width: int
    input_height: int
    input_channels: int
    filter_width: int
    filter_height: int
    stride: int
    batch: int
    pad: int
    output_width: int
    output_height: int
    workspace_base: int
    lda: int  # workspace leading dimension, in elements
    element_bytes: int = 2
    pid: int = 0

    #: Struct layout: 10 u16 geometry fields + u64 base + u16 lda + u16 misc.
    _FORMAT = "<10HQ2H"

    def encode(self) -> bytes:
        """Serialise as the global-memory blob the GPU loads at launch."""
        return struct.pack(
            self._FORMAT,
            self.input_width,
            self.input_height,
            min(self.input_channels, 0xFFFF),
            self.filter_width,
            self.filter_height,
            self.stride,
            self.batch,
            self.pad,
            self.output_width,
            self.output_height,
            self.workspace_base,
            min(self.lda, 0xFFFF),
            (self.element_bytes & 0xF) | ((self.pid & 0xFFF) << 4),
        )

    @property
    def encoded_bytes(self) -> int:
        """Size of the blob; the paper budgets 32 bytes per kernel."""
        return struct.calcsize(self._FORMAT)


def build_convolution_info(
    spec: ConvLayerSpec,
    workspace_base: int,
    lda: int = 0,
    element_bytes: int = 2,
    pid: int = 0,
) -> ConvolutionInfo:
    """Compile a layer spec into the detection unit's programming.

    ``lda`` defaults to the workspace column count rounded up to the
    16-element tensor-core tile, matching the kernel's allocation.
    """
    eff = spec.effective_spec()
    _, cols = workspace_shape(spec)
    if lda == 0:
        lda = -(-cols // 16) * 16
    out = eff.output_shape
    return ConvolutionInfo(
        input_width=eff.in_width,
        input_height=eff.in_height,
        input_channels=eff.in_channels,
        filter_width=eff.filter_width,
        filter_height=eff.filter_height,
        stride=eff.stride,
        batch=eff.batch,
        pad=eff.pad,
        output_width=out.width,
        output_height=out.height,
        workspace_base=workspace_base,
        lda=lda,
        element_bytes=element_bytes,
        pid=pid,
    )


def compiler_only_tag_bytes(
    dynamic_loads: int, tag_bytes_per_load: int = 4000
) -> int:
    """Storage a compiler-only tagging scheme would need (Section IV-D).

    The paper quotes ~6.8 million tensor-core loads for YOLO C2 and a
    27.2 GB tag store, i.e. 4 KB of offline tag state per dynamic
    load (per-thread replication of the per-register tags: 32 threads
    x 8 destination registers x a 16-byte [element, batch, PID,
    register] record).  The per-load cost is a parameter so the
    minimal 4-byte-per-load variant can be compared.
    """
    if dynamic_loads < 0:
        raise ValueError(f"dynamic_loads must be >= 0, got {dynamic_loads}")
    return dynamic_loads * tag_bytes_per_load
