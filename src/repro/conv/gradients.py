"""Backward-pass substrate: weight and data gradients of a convolution.

Training (Figure 14) runs, per layer, the forward GEMM plus two
backward GEMMs of the same MAC count:

* the **weight gradient** contracts the lowered workspace with the
  output gradient over the output-pixel axis:
  ``dW = A^T @ dY``  (a (K x M) @ (M x F) GEMM);
* the **data gradient** scatters ``dY @ B^T`` back through the
  im2col map — mathematically a *transposed convolution* of the
  output gradient with the spatially flipped filters, whose own
  lowered form :func:`data_gradient_spec` exposes for the simulator.

Both are implemented exactly (adjoint identities are tested) so the
network-level training model rests on real substrate, not a scaling
factor.
"""

from __future__ import annotations

import numpy as np

from repro.conv.gemm import filters_to_matrix
from repro.conv.layer import ConvLayerSpec
from repro.conv.lowering import col2im, lower_input


def _check_output_grad(spec: ConvLayerSpec, dy: np.ndarray) -> None:
    out = spec.output_shape
    expected = (spec.batch, out.height, out.width, spec.num_filters)
    if tuple(dy.shape) != expected:
        raise ValueError(f"output-grad shape {dy.shape} != {expected}")


def weight_gradient(
    spec: ConvLayerSpec, x: np.ndarray, dy: np.ndarray
) -> np.ndarray:
    """dL/dW for output gradient ``dy``; returns (K, kH, kW, C)."""
    _check_output_grad(spec, dy)
    a = lower_input(spec, x).matrix  # (M, K)
    g = spec.gemm_shape
    dy_mat = dy.reshape(g.m, g.n)  # (M, F)
    dw = a.T @ dy_mat  # (K, F)
    return (
        dw.T.reshape(spec.filter_nhwc)
    )


def data_gradient(
    spec: ConvLayerSpec, dy: np.ndarray, filters: np.ndarray
) -> np.ndarray:
    """dL/dX for output gradient ``dy``; returns the input's shape.

    Computed as the exact adjoint of the forward path: the workspace
    gradient ``dY @ B^T`` is scattered back through :func:`col2im`;
    transposed layers additionally strip the zero-insertion (its
    adjoint is subsampling).
    """
    _check_output_grad(spec, dy)
    if tuple(filters.shape) != spec.filter_nhwc:
        raise ValueError(
            f"filter shape {filters.shape} != spec shape {spec.filter_nhwc}"
        )
    g = spec.gemm_shape
    dy_mat = dy.reshape(g.m, g.n)
    b = filters_to_matrix(spec, filters)  # (K, F)
    dws = dy_mat @ b.T  # workspace gradient (M, K)
    dx_eff = col2im(spec, dws)  # effective (possibly upsampled) frame
    if not spec.transposed:
        return dx_eff
    # Adjoint of zero-insertion: take the non-inserted positions.
    s = spec.stride
    return np.ascontiguousarray(
        dx_eff[
            :,
            : (spec.in_height - 1) * s + 1 : s,
            : (spec.in_width - 1) * s + 1 : s,
            :,
        ]
    )


def data_gradient_spec(spec: ConvLayerSpec) -> ConvLayerSpec:
    """The convolution computing ``spec``'s data gradient.

    Full-correlation geometry: the output gradient (N, OH, OW, F)
    convolved with the flipped filters (C, kH, kW, F), padded by
    ``k - 1 - p``.  Unit-stride forward layers give a forward conv;
    strided layers give a transposed (zero-insertion) conv — i.e. the
    dgrad of a conv is itself a Table-I-style layer the simulator can
    run (and Duplo could accelerate, the ``accelerate_backward``
    ablation).
    """
    eff = spec.effective_spec()
    out = eff.output_shape
    pad_h = eff.filter_height - 1 - eff.pad
    pad_w = eff.filter_width - 1 - eff.pad
    if pad_h < 0 or pad_w < 0:
        # Over-padded forward conv; clamp (the gradient geometry then
        # crops, which the coarse timing model does not distinguish).
        pad_h = max(pad_h, 0)
        pad_w = max(pad_w, 0)
    if pad_h != pad_w:
        raise ValueError("data_gradient_spec needs square filters/padding")

    stride = spec.effective_stride if not spec.transposed else spec.stride
    if spec.transposed:
        # Forward was an upsampling conv; its gradient is a plain
        # strided conv over the (unit-stride) effective geometry.
        return ConvLayerSpec(
            name=f"{spec.name}-dgrad",
            network=spec.network,
            batch=spec.batch,
            in_height=out.height,
            in_width=out.width,
            in_channels=spec.num_filters,
            num_filters=spec.in_channels,
            filter_height=spec.filter_height,
            filter_width=spec.filter_width,
            pad=pad_h,
            stride=spec.stride,
        )
    if spec.stride == 1:
        return ConvLayerSpec(
            name=f"{spec.name}-dgrad",
            network=spec.network,
            batch=spec.batch,
            in_height=out.height,
            in_width=out.width,
            in_channels=spec.num_filters,
            num_filters=spec.in_channels,
            filter_height=spec.filter_height,
            filter_width=spec.filter_width,
            pad=pad_h,
            stride=1,
        )
    # Strided forward conv: the gradient upsamples the output grad by
    # the stride (a transposed conv); output padding restores the
    # input extent where the forward conv dropped remainder pixels.
    reach = (out.height - 1) * spec.stride + 1
    output_pad = max(0, spec.in_height + 2 * pad_h
                     - spec.filter_height + 1 - reach)
    return ConvLayerSpec(
        name=f"{spec.name}-dgrad",
        network=spec.network,
        batch=spec.batch,
        in_height=out.height,
        in_width=out.width,
        in_channels=spec.num_filters,
        num_filters=spec.in_channels,
        filter_height=spec.filter_height,
        filter_width=spec.filter_width,
        pad=pad_h,
        stride=spec.stride,
        transposed=True,
        output_pad=output_pad,
    )


def weight_gradient_gemm_shape(spec: ConvLayerSpec):
    """GEMM dimensions of the weight-gradient contraction (K, F, M)."""
    g = spec.gemm_shape
    from repro.conv.layer import GemmShape

    return GemmShape(m=g.k, n=g.n, k=g.m)
