"""Derived networks: VGG, DiscoGAN, FCN.

Table I's caption: "many other neural networks can be easily derived
by using different combinations of convolutional layers shown in the
table, such as VGG [39], DiscoGAN [16], and fully convolutional
network (FCN) [38]".  This module derives exactly those three as
:class:`~repro.conv.dnn.SequentialNetwork` instances, so the whole
evaluation harness (simulation, duplication census, energy) runs on
them unchanged.
"""

from __future__ import annotations

from repro.conv.dnn import PoolLayer, SequentialNetwork, SoftmaxLayer, conv


def vgg16(batch: int = 8, resolution: int = 224) -> SequentialNetwork:
    """VGG-16's thirteen 3x3 convolutions with their pooling stages."""
    if resolution % 32:
        raise ValueError("VGG needs a resolution divisible by 32")
    n = batch
    r = resolution
    layers = []
    channels = 3
    plan = [(64, 2), (128, 2), (256, 3), (512, 3), (512, 3)]
    idx = 1
    for filters, repeats in plan:
        for _ in range(repeats):
            layers.append(
                conv(f"C{idx}", "vgg16", (n, r, r, channels), filters,
                     kernel=3, pad=1)
            )
            channels = filters
            idx += 1
        layers.append(PoolLayer())
        r //= 2
    layers.append(SoftmaxLayer())
    return SequentialNetwork("vgg16", layers)


def discogan_generator(batch: int = 8, resolution: int = 64) -> SequentialNetwork:
    """DiscoGAN's encoder/decoder generator (4x4 stride-2 convs).

    Four stride-2 downsampling convolutions followed by four
    zero-insertion upsampling (transposed) convolutions, mirroring the
    GAN rows of Table I with DiscoGAN's 4x4 kernels.
    """
    if resolution % 16:
        raise ValueError("DiscoGAN needs a resolution divisible by 16")
    n = batch
    r = resolution
    layers = []
    channels = 3
    # Encoder: r -> r/16.
    for i, filters in enumerate([64, 128, 256, 512], start=1):
        layers.append(
            conv(f"E{i}", "discogan", (n, r, r, channels), filters,
                 kernel=4, pad=1, stride=2)
        )
        channels = filters
        r //= 2
    # Decoder: transposed convolutions double the resolution back.
    for i, filters in enumerate([256, 128, 64, 3], start=1):
        layers.append(
            conv(f"D{i}", "discogan", (n, r, r, channels), filters,
                 kernel=4, pad=1, stride=2, transposed=True, output_pad=2,
                 relu=(filters != 3))
        )
        channels = filters
        r *= 2
    return SequentialNetwork("discogan", layers)


def fcn_head(
    batch: int = 8, spatial: int = 14, backbone_channels: int = 512,
    classes: int = 21,
) -> SequentialNetwork:
    """FCN's fully convolutional head: fc-as-conv scoring + upsampling.

    The classifier of FCN [38]: a 7x7 convolution standing in for
    fc6, 1x1 convolutions for fc7 and the class scores, then a
    transposed convolution upsampling the score map (the 2x stage of
    FCN-16/8; the full 32x bilinear stage is a fixed filter with the
    same geometry).
    """
    n = batch
    s = spatial
    layers = [
        conv("fc6", "fcn", (n, s, s, backbone_channels), 1024,
             kernel=7, pad=3),
        conv("fc7", "fcn", (n, s, s, 1024), 1024, kernel=1, pad=0),
        conv("score", "fcn", (n, s, s, 1024), classes, kernel=1, pad=0,
             relu=False),
        conv("up2", "fcn", (n, s, s, classes), classes, kernel=4, pad=1,
             stride=2, transposed=True, output_pad=2, relu=False),
        SoftmaxLayer(),
    ]
    return SequentialNetwork("fcn", layers)


#: Builders by name, for the CLI and tests.
ZOO = {
    "vgg16": vgg16,
    "discogan": discogan_generator,
    "fcn": fcn_head,
}


def build(name: str, batch: int = 8, **kwargs) -> SequentialNetwork:
    """Instantiate a derived network by name."""
    try:
        builder = ZOO[name]
    except KeyError:
        raise KeyError(f"unknown network {name!r}; choose from {sorted(ZOO)}")
    return builder(batch=batch, **kwargs)
