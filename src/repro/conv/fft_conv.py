"""FFT-based convolution.

The second transform-domain comparator in Figures 2 and 3: filter and
input are mapped into the Fourier domain, multiplied element-wise, and
mapped back.  Cross-correlation semantics (what CNNs call convolution)
are obtained by conjugating the filter spectrum.

Like Winograd, the method only handles unit strides, and its spectra
(one complex value per frequency bin per channel, for inputs padded to
``H + kH - 1``) are what make its memory footprint the worst of all
methods (53.5x direct on average in Figure 3).
"""

from __future__ import annotations

import numpy as np

from repro.conv.layer import ConvLayerSpec

#: Bytes of one complex spectrum value (complex64).
COMPLEX_BYTES = 8


def fft_applicable(spec: ConvLayerSpec) -> bool:
    """True if FFT convolution can run this layer (unit stride, forward)."""
    return not spec.transposed and spec.stride == 1


def _fft_sizes(spec: ConvLayerSpec) -> tuple:
    """Linear-convolution-safe FFT sizes (padded input + filter - 1)."""
    fh = spec.in_height + 2 * spec.pad + spec.filter_height - 1
    fw = spec.in_width + 2 * spec.pad + spec.filter_width - 1
    return fh, fw


def fft_convolution(
    spec: ConvLayerSpec, x: np.ndarray, filters: np.ndarray
) -> np.ndarray:
    """Convolve via per-channel 2-D FFTs.  NHWC in, NHWC out.

    Raises ``ValueError`` when :func:`fft_applicable` is False.
    """
    if not fft_applicable(spec):
        raise ValueError(f"FFT conv inapplicable to {spec.qualified_name}: {spec}")
    if tuple(filters.shape) != spec.filter_nhwc:
        raise ValueError(
            f"filter shape {filters.shape} != spec shape {spec.filter_nhwc}"
        )
    out = spec.output_shape
    pad = spec.pad
    fh, fw = _fft_sizes(spec)

    padded = np.zeros(
        (spec.batch, spec.in_height + 2 * pad, spec.in_width + 2 * pad,
         spec.in_channels),
        dtype=np.float64,
    )
    padded[:, pad : pad + spec.in_height, pad : pad + spec.in_width, :] = x

    # Spectra over the spatial axes; channels/batch ride along.
    xf = np.fft.rfft2(padded, s=(fh, fw), axes=(1, 2))  # (N, fh, fw', C)
    ff = np.fft.rfft2(
        filters.astype(np.float64), s=(fh, fw), axes=(1, 2)
    )  # (K, fh, fw', C)
    # Cross-correlation: conjugate the filter spectrum, reduce channels.
    spec_prod = np.einsum("nhwc,khwc->nhwk", xf, np.conj(ff))
    full = np.fft.irfft2(spec_prod, s=(fh, fw), axes=(1, 2))  # (N, fh, fw, K)
    # Valid cross-correlation outputs start at offset 0 of the padded frame.
    return np.ascontiguousarray(full[:, : out.height, : out.width, :])


def _next_pow2(x: int) -> int:
    return 1 << (x - 1).bit_length()


def fft_workspace_bytes(spec: ConvLayerSpec, library_allocation: bool = True) -> int:
    """Transform-domain memory: input, filter, and product spectra.

    With ``library_allocation`` (the default, modelling a cuFFT-style
    deployment as measured in Figure 3) spatial sizes round up to the
    next power of two and the FFT plan keeps a work area the size of
    its largest buffer.  ``library_allocation=False`` gives the
    minimal r2c footprint of the NumPy implementation above.
    """
    if not fft_applicable(spec):
        raise ValueError(f"FFT conv inapplicable to {spec.qualified_name}")
    fh, fw = _fft_sizes(spec)
    if library_allocation:
        fh, fw = _next_pow2(fh), _next_pow2(fw)
    bins = fh * (fw // 2 + 1)
    x_spec = spec.batch * bins * spec.in_channels
    f_spec = spec.num_filters * bins * spec.in_channels
    y_spec = spec.batch * bins * spec.num_filters
    total = x_spec + f_spec + y_spec
    if library_allocation:
        total += max(x_spec, f_spec, y_spec)  # plan work area
    return total * COMPLEX_BYTES


def fft_flop_count(spec: ConvLayerSpec) -> float:
    """Approximate FLOPs: forward/inverse FFTs plus the spectral product."""
    if not fft_applicable(spec):
        raise ValueError(f"FFT conv inapplicable to {spec.qualified_name}")
    fh, fw = _fft_sizes(spec)
    pixels = fh * fw
    log_term = max(np.log2(pixels), 1.0)
    fft_cost = 5.0 * pixels * log_term  # classic 5 N log N per 2-D FFT
    n_ffts = (
        spec.batch * spec.in_channels          # input spectra
        + spec.num_filters * spec.in_channels  # filter spectra
        + spec.batch * spec.num_filters        # inverse transforms
    )
    bins = fh * (fw // 2 + 1)
    # Complex MAC = 8 real FLOPs, reduced over channels.
    product_cost = 8.0 * bins * spec.batch * spec.num_filters * spec.in_channels
    return n_ffts * fft_cost + product_cost
