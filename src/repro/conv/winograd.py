"""Winograd convolution: F(2x2, 3x3) and F(4x4, 3x3).

One of the two transform-domain methods the paper compares against
(Figures 2 and 3).  A filter and input tile are mapped into the
Winograd domain, where convolution becomes an element-wise product,
and the result is mapped back — trading multiplications (2.25x fewer
for F(2x2, 3x3); 4x for F(4x4, 3x3)) for transform memory and
numerical headroom [41].

Applicability mirrors the paper's discussion: the algorithm works only
for specific small filters and only with unit stride, which is why the
GAN layers (stride 2) and ResNet C1 (7x7) have no Winograd bars in the
figures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.conv.layer import ConvLayerSpec

#: Filter sizes the Winograd implementation/cost model supports.
SUPPORTED_FILTER_SIZES = (3,)


@dataclass(frozen=True)
class WinogradVariant:
    """One F(m x m, r x r) algorithm: its transform matrices.

    ``bt`` maps an input tile to the transform domain, ``g`` maps a
    filter, ``at`` maps the product back; shapes follow Lavin & Gray,
    "Fast Algorithms for Convolutional Neural Networks".
    """

    name: str
    tile_out: int  # m
    filter_size: int  # r
    bt: np.ndarray  # (m+r-1, m+r-1)
    g: np.ndarray  # (m+r-1, r)
    at: np.ndarray  # (m, m+r-1)

    @property
    def tile_in(self) -> int:
        return self.tile_out + self.filter_size - 1

    @property
    def mac_reduction(self) -> float:
        """Direct multiplications per Winograd multiplication."""
        direct = (self.tile_out * self.filter_size) ** 2
        return direct / self.tile_in**2

    def __post_init__(self) -> None:
        t = self.tile_in
        if self.bt.shape != (t, t):
            raise ValueError(f"B^T must be {t}x{t}, got {self.bt.shape}")
        if self.g.shape != (t, self.filter_size):
            raise ValueError(f"G must be {t}x{self.filter_size}")
        if self.at.shape != (self.tile_out, t):
            raise ValueError(f"A^T must be {self.tile_out}x{t}")


F_2X2_3X3 = WinogradVariant(
    name="F(2x2,3x3)",
    tile_out=2,
    filter_size=3,
    bt=np.array(
        [
            [1, 0, -1, 0],
            [0, 1, 1, 0],
            [0, -1, 1, 0],
            [0, 1, 0, -1],
        ],
        dtype=np.float64,
    ),
    g=np.array(
        [
            [1.0, 0.0, 0.0],
            [0.5, 0.5, 0.5],
            [0.5, -0.5, 0.5],
            [0.0, 0.0, 1.0],
        ],
        dtype=np.float64,
    ),
    at=np.array(
        [
            [1, 1, 1, 0],
            [0, 1, -1, -1],
        ],
        dtype=np.float64,
    ),
)

F_4X4_3X3 = WinogradVariant(
    name="F(4x4,3x3)",
    tile_out=4,
    filter_size=3,
    bt=np.array(
        [
            [4, 0, -5, 0, 1, 0],
            [0, -4, -4, 1, 1, 0],
            [0, 4, -4, -1, 1, 0],
            [0, -2, -1, 2, 1, 0],
            [0, 2, -1, -2, 1, 0],
            [0, 4, 0, -5, 0, 1],
        ],
        dtype=np.float64,
    ),
    g=np.array(
        [
            [1 / 4, 0, 0],
            [-1 / 6, -1 / 6, -1 / 6],
            [-1 / 6, 1 / 6, -1 / 6],
            [1 / 24, 1 / 12, 1 / 6],
            [1 / 24, -1 / 12, 1 / 6],
            [0, 0, 1],
        ],
        dtype=np.float64,
    ),
    at=np.array(
        [
            [1, 1, 1, 1, 1, 0],
            [0, 1, -1, 2, -2, 0],
            [0, 1, 1, 4, 4, 0],
            [0, 1, -1, 8, -8, 1],
        ],
        dtype=np.float64,
    ),
)

#: Default algorithm (what the figures' Winograd bars model).
DEFAULT_VARIANT = F_2X2_3X3

#: Kept for backwards compatibility with the cost model.
TILE_OUT = DEFAULT_VARIANT.tile_out
TILE_IN = DEFAULT_VARIANT.tile_in


def winograd_applicable(spec: ConvLayerSpec) -> bool:
    """True if Winograd convolution can run this layer.

    Requires a square filter of a supported size, unit stride, and a
    forward (non-transposed) convolution — the conditions under which
    cuDNN offers a Winograd algorithm.
    """
    return (
        not spec.transposed
        and spec.stride == 1
        and spec.filter_height == spec.filter_width
        and spec.filter_height in SUPPORTED_FILTER_SIZES
    )


def transform_filters(
    filters: np.ndarray, variant: WinogradVariant = DEFAULT_VARIANT
) -> np.ndarray:
    """Map a (K, r, r, C) filter bank into the Winograd domain.

    Returns U with shape (t, t, C, K) where t = m + r - 1.
    """
    k, kh, kw, c = filters.shape
    r = variant.filter_size
    if (kh, kw) != (r, r):
        raise ValueError(f"{variant.name} needs {r}x{r} filters, got {kh}x{kw}")
    # g -> G g G^T per (K, C) slice: einsum over the two spatial axes.
    return np.einsum(
        "ij,kjlc,ml->imck", variant.g, filters.astype(np.float64), variant.g
    )


def winograd_convolution(
    spec: ConvLayerSpec,
    x: np.ndarray,
    filters: np.ndarray,
    variant: WinogradVariant = DEFAULT_VARIANT,
) -> np.ndarray:
    """Convolve via Winograd.  NHWC in, NHWC out.

    Raises ``ValueError`` when :func:`winograd_applicable` is False,
    matching the missing bars in the paper's figures.
    """
    if not winograd_applicable(spec):
        raise ValueError(f"Winograd inapplicable to {spec.qualified_name}: {spec}")
    if tuple(filters.shape) != spec.filter_nhwc:
        raise ValueError(
            f"filter shape {filters.shape} != spec shape {spec.filter_nhwc}"
        )
    m = variant.tile_out
    t = variant.tile_in
    out = spec.output_shape
    n = spec.batch
    c = spec.in_channels
    k = spec.num_filters
    pad = spec.pad

    tiles_y = -(-out.height // m)
    tiles_x = -(-out.width // m)
    # Pad so every t x t input tile (stride m) is in range.
    need_h = (tiles_y - 1) * m + t
    need_w = (tiles_x - 1) * m + t
    padded = np.zeros(
        (
            n,
            max(need_h, spec.in_height + 2 * pad),
            max(need_w, spec.in_width + 2 * pad),
            c,
        ),
        dtype=np.float64,
    )
    padded[:, pad : pad + spec.in_height, pad : pad + spec.in_width, :] = x

    # Gather all t x t input tiles: (N, tiles_y, tiles_x, t, t, C).
    ty = np.arange(tiles_y) * m
    tx = np.arange(tiles_x) * m
    iy = ty[:, None] + np.arange(t)[None, :]  # (tiles_y, t)
    ix = tx[:, None] + np.arange(t)[None, :]  # (tiles_x, t)
    tiles = padded[:, iy[:, None, :, None], ix[None, :, None, :], :]

    # V = B^T d B over the two spatial axes.
    v = np.einsum("ij,ntxjlc,ml->ntximc", variant.bt, tiles, variant.bt)
    u = transform_filters(filters, variant)  # (t, t, C, K)
    # Element-wise product in the transform domain + channel reduction.
    prod = np.einsum("ntxijc,ijck->ntxijk", v, u)
    # Y = A^T M A: (N, ty, tx, m, m, K).
    y = np.einsum("pi,ntxijk,qj->ntxpqk", variant.at, prod, variant.at)
    # Scatter tiles back to (N, OH_padded, OW_padded, K) and crop.
    full = y.transpose(0, 1, 3, 2, 4, 5).reshape(n, tiles_y * m, tiles_x * m, k)
    return np.ascontiguousarray(full[:, : out.height, : out.width, :])


def winograd_mac_count(
    spec: ConvLayerSpec, variant: WinogradVariant = DEFAULT_VARIANT
) -> int:
    """Multiplications in the transform-domain product stage.

    F(2x2, 3x3) computes a 2x2 output tile with 16 multiplications per
    channel instead of 36 — the 2.25x arithmetic reduction (4x for
    F(4x4, 3x3)).  Transform costs are additions and are accounted
    separately by the cost model.
    """
    if not winograd_applicable(spec):
        raise ValueError(f"Winograd inapplicable to {spec.qualified_name}")
    m, t = variant.tile_out, variant.tile_in
    out = spec.output_shape
    tiles = spec.batch * (-(-out.height // m)) * (-(-out.width // m))
    return tiles * t * t * spec.in_channels * spec.num_filters


def winograd_workspace_bytes(
    spec: ConvLayerSpec,
    element_bytes: int = 4,
    variant: WinogradVariant = DEFAULT_VARIANT,
) -> int:
    """Transform-domain memory: U, V, and M buffers.

    V (transformed input) dominates: t^2 values per m x m output tile
    per channel, plus the transformed filters and the
    pre-inverse-transform output.  Transforms are held in fp32
    (``element_bytes=4``) as library implementations do for numerical
    stability [41], which is part of why Figure 3 measures Winograd at
    12.2x the direct footprint.
    """
    if not winograd_applicable(spec):
        raise ValueError(f"Winograd inapplicable to {spec.qualified_name}")
    m, t = variant.tile_out, variant.tile_in
    out = spec.output_shape
    tiles = spec.batch * (-(-out.height // m)) * (-(-out.width // m))
    v_elems = tiles * t * t * spec.in_channels
    u_elems = t * t * spec.in_channels * spec.num_filters
    m_elems = tiles * t * t * spec.num_filters
    return (v_elems + u_elems + m_elems) * element_bytes
