"""Workload registry: Table I's conv networks plus transformer GEMMs.

Every figure in the paper's evaluation iterates over the 18
convolutional layers of Table I (8 ResNet, 4 transposed + 4 forward
GAN, 6 YOLO) at batch size 8.  The specs here transcribe Table I
verbatim; layer outputs are *not* forced to chain (the paper tabulates
representative shapes, e.g. ResNet C3's stride-2/pad-0 output does not
exactly equal C4's input — pooling and the tabulation's rounding sit
in between).

DCGAN's generator layers (TC1..TC4) are transposed convolutions with
``output_padding=1`` so each upsampling exactly doubles the spatial
size, matching the successive input shapes in the table (4 -> 8 -> 16
-> 32 -> 64).

:data:`WORKLOADS` is the full registry the lookup helpers (and the
serve/CLI layers above them) resolve against; it extends
:data:`TABLE_I` with the ``"attention"`` transformer block of
:mod:`repro.conv.attention`.  :data:`TABLE_I` itself stays exactly the
paper's table — figure-reproduction harnesses that iterate it are
unaffected by registry growth.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.conv.attention import ATTENTION_LAYERS
from repro.conv.layer import ConvLayerSpec

#: Batch size used throughout the paper's evaluation (Figures 2-12, 14).
DEFAULT_BATCH = 8


def _conv(
    network: str,
    name: str,
    input_nhwc: Tuple[int, int, int, int],
    filter_khwc: Tuple[int, int, int, int],
    pad: int,
    stride: int,
    transposed: bool = False,
) -> ConvLayerSpec:
    n, h, w, c = input_nhwc
    k, kh, kw, kc = filter_khwc
    if kc != c:
        raise ValueError(
            f"{network}/{name}: filter channels {kc} != input channels {c}"
        )
    return ConvLayerSpec(
        name=name,
        network=network,
        batch=n,
        in_height=h,
        in_width=w,
        in_channels=c,
        num_filters=k,
        filter_height=kh,
        filter_width=kw,
        pad=pad,
        stride=stride,
        transposed=transposed,
        output_pad=1 if transposed else 0,
    )


RESNET_LAYERS: List[ConvLayerSpec] = [
    _conv("resnet", "C1", (8, 224, 224, 3), (64, 7, 7, 3), pad=3, stride=2),
    _conv("resnet", "C2", (8, 56, 56, 64), (64, 3, 3, 64), pad=1, stride=1),
    _conv("resnet", "C3", (8, 56, 56, 64), (128, 3, 3, 64), pad=0, stride=2),
    _conv("resnet", "C4", (8, 28, 28, 128), (128, 3, 3, 128), pad=1, stride=1),
    _conv("resnet", "C5", (8, 28, 28, 128), (256, 3, 3, 128), pad=0, stride=2),
    _conv("resnet", "C6", (8, 14, 14, 256), (256, 3, 3, 256), pad=1, stride=1),
    _conv("resnet", "C7", (8, 14, 14, 256), (512, 3, 3, 256), pad=0, stride=2),
    _conv("resnet", "C8", (8, 7, 7, 512), (512, 3, 3, 512), pad=1, stride=1),
]

GAN_LAYERS: List[ConvLayerSpec] = [
    _conv("gan", "TC1", (8, 4, 4, 512), (256, 5, 5, 512), pad=2, stride=2,
          transposed=True),
    _conv("gan", "TC2", (8, 8, 8, 256), (128, 5, 5, 256), pad=2, stride=2,
          transposed=True),
    _conv("gan", "TC3", (8, 16, 16, 128), (64, 5, 5, 128), pad=2, stride=2,
          transposed=True),
    _conv("gan", "TC4", (8, 32, 32, 64), (3, 5, 5, 64), pad=2, stride=2,
          transposed=True),
    _conv("gan", "C1", (8, 64, 64, 3), (64, 5, 5, 3), pad=2, stride=2),
    _conv("gan", "C2", (8, 32, 32, 64), (128, 5, 5, 64), pad=2, stride=2),
    _conv("gan", "C3", (8, 16, 16, 128), (256, 5, 5, 128), pad=2, stride=2),
    _conv("gan", "C4", (8, 8, 8, 256), (512, 5, 5, 256), pad=2, stride=2),
]

YOLO_LAYERS: List[ConvLayerSpec] = [
    _conv("yolo", "C1", (8, 224, 224, 3), (32, 3, 3, 3), pad=1, stride=1),
    _conv("yolo", "C2", (8, 112, 112, 32), (64, 3, 3, 32), pad=1, stride=1),
    _conv("yolo", "C3", (8, 56, 56, 64), (128, 3, 3, 64), pad=1, stride=1),
    _conv("yolo", "C4", (8, 28, 28, 128), (256, 3, 3, 128), pad=1, stride=1),
    _conv("yolo", "C5", (8, 14, 14, 256), (512, 3, 3, 256), pad=1, stride=1),
    _conv("yolo", "C6", (8, 7, 7, 512), (1024, 3, 3, 512), pad=1, stride=1),
]

#: All Table I layers in the order the paper's figures plot them.
ALL_LAYERS: List[ConvLayerSpec] = RESNET_LAYERS + GAN_LAYERS + YOLO_LAYERS

#: Table I keyed by network name (the paper's evaluation set, verbatim).
TABLE_I: Dict[str, List[ConvLayerSpec]] = {
    "resnet": RESNET_LAYERS,
    "gan": GAN_LAYERS,
    "yolo": YOLO_LAYERS,
}

#: Every simulatable workload: Table I plus the transformer attention
#: GEMM block (QKV / QK / PV / OUT, BERT-base shapes at batch 8).
WORKLOADS: Dict[str, List[ConvLayerSpec]] = {
    **TABLE_I,
    "attention": ATTENTION_LAYERS,
}


def networks() -> Sequence[str]:
    """Registered network names, Table I first in figure order."""
    return tuple(WORKLOADS.keys())


def layers_for_network(network: str) -> List[ConvLayerSpec]:
    """All layers of one registered network.

    Raises ``KeyError`` with the valid choices for an unknown network.
    """
    try:
        return list(WORKLOADS[network])
    except KeyError:
        raise KeyError(
            f"unknown network {network!r}; choose from {sorted(WORKLOADS)}"
        ) from None


def get_layer(network: str, name: str) -> ConvLayerSpec:
    """Look up a single layer, e.g. ``get_layer("resnet", "C2")``."""
    for layer in layers_for_network(network):
        if layer.name == name:
            return layer
    valid = [layer.name for layer in WORKLOADS[network]]
    raise KeyError(f"no layer {name!r} in {network}; choose from {valid}")
