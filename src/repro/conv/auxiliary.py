"""Auxiliary (non-convolution) network layers: pooling and softmax.

Figure 14 omits pooling and softmax because they "account for
infinitesimally small fraction of execution time".  This module makes
that claim checkable instead of assumed: functional max/average
pooling and softmax implementations plus a bandwidth-bound cost model
whose cycle estimates feed the network model's epsilon.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.conv.layer import ConvLayerSpec
from repro.gpu.config import GPUConfig, TITAN_V


def max_pool(x: np.ndarray, size: int = 2, stride: int = 2) -> np.ndarray:
    """Max pooling over NHWC input (valid windows only)."""
    if x.ndim != 4:
        raise ValueError(f"expected NHWC tensor, got shape {x.shape}")
    n, h, w, c = x.shape
    oh = (h - size) // stride + 1
    ow = (w - size) // stride + 1
    out = np.full((n, oh, ow, c), -np.inf, dtype=x.dtype)
    for dy in range(size):
        for dx in range(size):
            window = x[
                :,
                dy : dy + oh * stride : stride,
                dx : dx + ow * stride : stride,
                :,
            ]
            np.maximum(out, window, out=out)
    return out


def average_pool(x: np.ndarray, size: int = 2, stride: int = 2) -> np.ndarray:
    """Average pooling over NHWC input (valid windows only)."""
    if x.ndim != 4:
        raise ValueError(f"expected NHWC tensor, got shape {x.shape}")
    n, h, w, c = x.shape
    oh = (h - size) // stride + 1
    ow = (w - size) // stride + 1
    out = np.zeros((n, oh, ow, c), dtype=np.promote_types(x.dtype, np.float64))
    for dy in range(size):
        for dx in range(size):
            out += x[
                :,
                dy : dy + oh * stride : stride,
                dx : dx + ow * stride : stride,
                :,
            ]
    return out / (size * size)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


@dataclass(frozen=True)
class AuxiliaryCostModel:
    """Bandwidth-bound cycle estimate for pooling/softmax layers.

    Both are streaming elementwise/reduction passes: one read and one
    (smaller) write of the activation tensor at DRAM bandwidth, with
    negligible arithmetic next to the tensor cores.
    """

    gpu: GPUConfig = TITAN_V
    element_bytes: int = 2

    def pool_cycles(self, spec: ConvLayerSpec) -> float:
        """Cycles to pool ``spec``'s output tensor (2x2/2)."""
        read = spec.output_elements * self.element_bytes
        write = read // 4
        return (read + write) / self.gpu.dram_bytes_per_cycle

    def softmax_cycles(self, classes: int, batch: int) -> float:
        bytes_moved = 2 * classes * batch * self.element_bytes
        return bytes_moved / self.gpu.dram_bytes_per_cycle

    def fraction_of(self, spec: ConvLayerSpec, conv_cycles: float) -> float:
        """Pooling time as a fraction of the convolution's time."""
        if conv_cycles <= 0:
            raise ValueError("conv_cycles must be positive")
        return self.pool_cycles(spec) / conv_cycles
