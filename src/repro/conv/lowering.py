"""Lowering (im2col): expanding a convolution input into a workspace.

Lowering turns the deeply nested convolution loop into GEMM (Figure 1
of the paper): every output pixel becomes one *row* of a workspace
matrix holding the flattened receptive field, and the filter bank
becomes the other GEMM operand.  This module provides

* :func:`lower_input` — the actual (vectorised NumPy) im2col, used by
  the GEMM convolution and as ground truth for duplication tests;
* :func:`workspace_entry_to_input_coord` and its vectorised sibling
  :func:`entries_to_padded_flat` — the exact inverse map from a
  workspace entry ``(row, col)`` back to the input coordinate whose
  value it holds.  Two workspace entries are duplicates *iff* they map
  to the same coordinate, which is the ground truth Duplo's ID
  generator must reproduce;
* :func:`col2im` — the scatter-add inverse used by training's data
  gradient, completing the substrate.

Workspace layout (NHWC, matching cuDNN's tensor-core convention from
Section II-B / Figure 4): rows iterate over ``(n, oy, ox)`` and columns
over ``(fy, fx, ch)``, both row-major.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.conv.layer import ConvLayerSpec

#: Sentinel element ID for padding when ``merge_padding`` is enabled.
MERGED_PADDING_ID = -1


@dataclass(frozen=True)
class InputCoord:
    """Input-tensor coordinate referenced by one workspace entry.

    ``is_padding`` marks coordinates that fall outside the (effective)
    input and therefore hold an implicit zero.
    """

    n: int
    iy: int
    ix: int
    ch: int
    is_padding: bool


@dataclass(frozen=True)
class LoweredWorkspace:
    """An explicit im2col workspace plus the spec that produced it."""

    spec: ConvLayerSpec
    matrix: np.ndarray  # (rows, cols)

    @property
    def rows(self) -> int:
        return self.matrix.shape[0]

    @property
    def cols(self) -> int:
        return self.matrix.shape[1]


def workspace_shape(spec: ConvLayerSpec) -> Tuple[int, int]:
    """(rows, cols) of the lowered workspace for ``spec``.

    Rows count output pixels across the whole batch; columns count the
    filter volume.  This is the *logical* shape — the GEMM kernel pads
    both to tile multiples separately.
    """
    eff = spec.effective_spec()
    out = eff.output_shape
    return (eff.batch * out.pixels, eff.filter_volume)


def upsample_zero_insert(x: np.ndarray, stride: int, output_pad: int = 0) -> np.ndarray:
    """Zero-insertion upsampling used by transposed convolutions.

    ``x`` is NHWC.  Each spatial gap of ``stride - 1`` zeros is inserted
    between neighbouring pixels, and ``output_pad`` rows/columns of
    zeros are appended at the bottom/right, exactly as the paper
    describes transposed convolution ("upsamples input data by
    inserting zeros before performing a convolution").
    """
    if x.ndim != 4:
        raise ValueError(f"expected NHWC tensor, got shape {x.shape}")
    if stride == 1 and output_pad == 0:
        return x
    n, h, w, c = x.shape
    up_h = (h - 1) * stride + 1 + output_pad
    up_w = (w - 1) * stride + 1 + output_pad
    out = np.zeros((n, up_h, up_w, c), dtype=x.dtype)
    out[:, : (h - 1) * stride + 1 : stride, : (w - 1) * stride + 1 : stride, :] = x
    return out


def _effective_input(spec: ConvLayerSpec, x: np.ndarray) -> np.ndarray:
    """Validate ``x`` against ``spec`` and apply transposed upsampling."""
    expected = spec.input_nhwc
    if tuple(x.shape) != expected:
        raise ValueError(f"input shape {x.shape} != spec shape {expected}")
    if spec.transposed:
        return upsample_zero_insert(x, spec.stride, spec.output_pad)
    return x


def lower_input(spec: ConvLayerSpec, x: np.ndarray) -> LoweredWorkspace:
    """Build the explicit im2col workspace for input ``x`` (NHWC).

    The result's rows follow ``(n, oy, ox)`` and its columns
    ``(fy, fx, ch)``.  Padding positions are materialised as zeros,
    exactly like an explicit-GEMM workspace in global memory.
    """
    eff = spec.effective_spec()
    x_eff = _effective_input(spec, x)
    n, h, w, c = x_eff.shape
    out = eff.output_shape
    pad = eff.pad
    padded = np.zeros((n, h + 2 * pad, w + 2 * pad, c), dtype=x_eff.dtype)
    padded[:, pad : pad + h, pad : pad + w, :] = x_eff

    # Gather receptive fields with advanced indexing: for each output
    # pixel (oy, ox) and tap (fy, fx) the padded coordinate is
    # (oy * s + fy, ox * s + fx).
    s = eff.stride
    oy = np.arange(out.height) * s
    ox = np.arange(out.width) * s
    fy = np.arange(eff.filter_height)
    fx = np.arange(eff.filter_width)
    iy = oy[:, None] + fy[None, :]  # (OH, kH)
    ix = ox[:, None] + fx[None, :]  # (OW, kW)
    # Broadcasting (OH,1,kH,1) x (1,OW,1,kW) -> (N, OH, OW, kH, kW, C).
    gathered = padded[:, iy[:, None, :, None], ix[None, :, None, :], :]
    matrix = gathered.reshape(n * out.pixels, eff.filter_volume)
    return LoweredWorkspace(spec=spec, matrix=np.ascontiguousarray(matrix))


def workspace_entry_to_input_coord(
    spec: ConvLayerSpec, row: int, col: int
) -> InputCoord:
    """Map one workspace entry back to the input coordinate it holds.

    Coordinates are in the *effective* (post-upsampling) input frame.
    """
    eff = spec.effective_spec()
    rows, cols = workspace_shape(spec)
    if not (0 <= row < rows and 0 <= col < cols):
        raise IndexError(f"entry ({row}, {col}) outside workspace {rows}x{cols}")
    out = eff.output_shape
    n, pix = divmod(row, out.pixels)
    oy, ox = divmod(pix, out.width)
    tap, ch = divmod(col, eff.in_channels)
    fy, fx = divmod(tap, eff.filter_width)
    iy = oy * eff.stride - eff.pad + fy
    ix = ox * eff.stride - eff.pad + fx
    is_padding = not (0 <= iy < eff.in_height and 0 <= ix < eff.in_width)
    return InputCoord(n=n, iy=iy, ix=ix, ch=ch, is_padding=is_padding)


def entries_to_padded_flat(
    spec: ConvLayerSpec,
    rows: np.ndarray,
    cols: np.ndarray,
    merge_padding: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised inverse map: workspace entries -> (batch_id, element_id).

    ``element_id`` indexes the *virtual padded input* of one image
    (size ``(H + 2p) * (W + 2p) * C``), so two entries share an
    element ID iff they reference the same input value (including a
    shared padding zero at the same padded coordinate).  This is the
    canonical, exact form of the paper's Section III identification
    mechanism; see ``repro.core.idgen`` for the published closed-form
    variant.

    With ``merge_padding=True`` every padding entry collapses to
    :data:`MERGED_PADDING_ID` (all padding zeros are value-identical,
    an ablation the paper does not exploit).
    """
    eff = spec.effective_spec()
    out = eff.output_shape
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)

    # The divide chain dominates the vectorised replay's translation
    # cost; int32 division is measurably faster and row/col indices of
    # any realistic workspace fit comfortably.
    if (
        rows.size
        and int(rows.min()) >= 0
        and int(rows.max()) < 2**31
        and int(cols.min()) >= 0
        and int(cols.max()) < 2**31
    ):
        r32 = rows.astype(np.int32)
        c32 = cols.astype(np.int32)
        n, pix = np.divmod(r32, np.int32(out.pixels))
        oy, ox = np.divmod(pix, np.int32(out.width))
        tap, ch = np.divmod(c32, np.int32(eff.in_channels))
        fy, fx = np.divmod(tap, np.int32(eff.filter_width))
        n = n.astype(np.int64)
    else:
        n, pix = np.divmod(rows, out.pixels)
        oy, ox = np.divmod(pix, out.width)
        tap, ch = np.divmod(cols, eff.in_channels)
        fy, fx = np.divmod(tap, eff.filter_width)
    py = oy.astype(np.int64) * eff.stride + fy  # padded-frame coords
    px = ox.astype(np.int64) * eff.stride + fx
    padded_w = eff.in_width + 2 * eff.pad
    element_id = (py * padded_w + px) * eff.in_channels + ch
    if merge_padding:
        iy = py - eff.pad
        ix = px - eff.pad
        is_pad = (
            (iy < 0)
            | (iy >= eff.in_height)
            | (ix < 0)
            | (ix >= eff.in_width)
        )
        element_id = np.where(is_pad, MERGED_PADDING_ID, element_id)
    return n, element_id


def unique_element_count(spec: ConvLayerSpec, merge_padding: bool = False) -> int:
    """Number of distinct (batch, element) IDs across the full workspace.

    Each image touches the padded coordinates ``oy * s + fy`` (and
    likewise in x); the touched set is the Cartesian product of the
    per-axis sets, which is contiguous when the filter covers the
    stride and gapped otherwise.  Padding merge collapses every
    padding coordinate onto a single shared ID.
    """
    eff = spec.effective_spec()
    out = eff.output_shape

    def touched(extent: int, filt: int, limit: int) -> np.ndarray:
        coords = (
            np.arange(extent)[:, None] * eff.stride + np.arange(filt)[None, :]
        )
        return np.unique(coords)

    ys = touched(out.height, eff.filter_height, eff.in_height)
    xs = touched(out.width, eff.filter_width, eff.in_width)
    per_image = ys.size * xs.size * eff.in_channels
    if merge_padding:
        interior_y = (
            (ys >= eff.pad) & (ys < eff.pad + eff.in_height)
        ).sum()
        interior_x = (
            (xs >= eff.pad) & (xs < eff.pad + eff.in_width)
        ).sum()
        interior = int(interior_y) * int(interior_x) * eff.in_channels
        has_padding = interior < per_image
        per_image = interior + (1 if has_padding else 0)
    return eff.batch * per_image


def col2im(
    spec: ConvLayerSpec, matrix: np.ndarray, accumulate: Optional[np.ndarray] = None
) -> np.ndarray:
    """Scatter-add a workspace back onto the (effective) input frame.

    The adjoint of :func:`lower_input`: entries mapping to the same
    input coordinate are summed, and padding entries are dropped.  Used
    by the data-gradient path of training and by tests asserting the
    forward/inverse maps agree.
    """
    eff = spec.effective_spec()
    rows, cols = workspace_shape(spec)
    if tuple(matrix.shape) != (rows, cols):
        raise ValueError(f"matrix shape {matrix.shape} != workspace {rows}x{cols}")
    result = accumulate
    if result is None:
        result = np.zeros(
            (eff.batch, eff.in_height, eff.in_width, eff.in_channels),
            dtype=matrix.dtype,
        )
    rr, cc = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
    batch, element = entries_to_padded_flat(spec, rr.ravel(), cc.ravel())
    padded_w = eff.in_width + 2 * eff.pad
    py, rem = np.divmod(element, padded_w * eff.in_channels)
    px, ch = np.divmod(rem, eff.in_channels)
    iy = py - eff.pad
    ix = px - eff.pad
    keep = (
        (iy >= 0) & (iy < eff.in_height) & (ix >= 0) & (ix < eff.in_width)
    )
    np.add.at(
        result,
        (batch[keep], iy[keep], ix[keep], ch[keep]),
        matrix.ravel()[keep],
    )
    return result
