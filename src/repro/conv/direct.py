"""Direct (sliding-window) convolution — the paper's reference method.

This is the mathematical definition from Figure 1(a): anchor the
filter, take the sum of element-wise products with the receptive
field, slide, repeat over filters / channels / images.  It is the
correctness oracle every other method is tested against, and the
normalisation baseline of Figures 2 and 3.
"""

from __future__ import annotations

import numpy as np

from repro.conv.layer import ConvLayerSpec
from repro.conv.lowering import _effective_input


def direct_convolution(spec: ConvLayerSpec, x: np.ndarray, filters: np.ndarray) -> np.ndarray:
    """Convolve ``x`` (NHWC) with ``filters`` ((K, kH, kW, C)) directly.

    Returns the NHWC output tensor.  Transposed layers are handled by
    zero-insertion upsampling first, matching the paper's definition.
    The loop nest runs over output pixels and filter taps; the
    channel/filter reduction is vectorised so tests stay fast without
    changing the arithmetic.
    """
    expected_filter = spec.filter_nhwc
    if tuple(filters.shape) != expected_filter:
        raise ValueError(
            f"filter shape {filters.shape} != spec shape {expected_filter}"
        )
    eff = spec.effective_spec()
    x_eff = _effective_input(spec, x)
    out_shape = eff.output_shape
    n, h, w, c = x_eff.shape
    pad = eff.pad
    padded = np.zeros((n, h + 2 * pad, w + 2 * pad, c), dtype=np.promote_types(x.dtype, filters.dtype))
    padded[:, pad : pad + h, pad : pad + w, :] = x_eff

    out = np.zeros((n, out_shape.height, out_shape.width, eff.num_filters), dtype=padded.dtype)
    # (K, kH, kW, C) -> (kH, kW, C, K) for a per-tap channel reduction.
    f = np.ascontiguousarray(filters.transpose(1, 2, 3, 0))
    s = eff.stride
    for oy in range(out_shape.height):
        for ox in range(out_shape.width):
            field = padded[:, oy * s : oy * s + eff.filter_height,
                           ox * s : ox * s + eff.filter_width, :]
            # (N, kH, kW, C) . (kH, kW, C, K) -> (N, K)
            out[:, oy, ox, :] = np.tensordot(field, f, axes=([1, 2, 3], [0, 1, 2]))
    return out
