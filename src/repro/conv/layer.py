"""Convolutional layer geometry.

A :class:`ConvLayerSpec` captures one convolutional layer exactly as
Table I of the Duplo paper lists it: an NHWC input tensor, an NHWC
filter bank, padding, stride, and (for the generator half of DCGAN) a
transposed-convolution flag.  Everything downstream — the im2col
lowering, the ID generator, the GEMM kernel model — derives its
geometry from this class, so all dimension arithmetic lives here.

Transposed convolutions are handled the way cuDNN and the paper handle
them ("upsamples input data by inserting zeros before performing a
convolution"): :meth:`ConvLayerSpec.effective_spec` rewrites a
transposed layer into an equivalent *unit-stride forward* convolution
over the zero-upsampled input, and the rest of the system only ever
sees that effective spec.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Tuple

#: Bytes per half-precision (fp16) element, the tensor-core operand type.
HALF_BYTES = 2
#: Bytes per single-precision (fp32) element, used for accumulators.
FLOAT_BYTES = 4


@dataclass(frozen=True)
class OutputShape:
    """Spatial output shape of a convolution (per image)."""

    height: int
    width: int
    channels: int

    @property
    def pixels(self) -> int:
        """Number of output pixels per image."""
        return self.height * self.width

    @property
    def elements(self) -> int:
        """Number of output elements per image."""
        return self.pixels * self.channels


@dataclass(frozen=True)
class GemmShape:
    """Dimensions of the GEMM ``D = A x B + C`` realising a lowered conv.

    ``A`` is the (batch * output-pixels) x (filter volume) workspace,
    ``B`` is the (filter volume) x (num filters) filter matrix, and
    ``D`` accumulates the (batch * output-pixels) x (num filters)
    output.  This matches the implicit-GEMM convention for NHWC data
    used by cuDNN with tensor cores (Section II-B of the paper).
    """

    m: int
    n: int
    k: int

    @property
    def macs(self) -> int:
        """Multiply-accumulate operations in the full GEMM."""
        return self.m * self.n * self.k

    @property
    def flops(self) -> int:
        """Floating-point operations (2 per MAC)."""
        return 2 * self.macs

    def padded(self, tile: int = 16) -> "GemmShape":
        """Round every dimension up to a multiple of ``tile``.

        Tensor cores operate on 16x16x16 fragments, so the kernel pads
        each GEMM dimension to the tile size.
        """
        def up(x: int) -> int:
            return ((x + tile - 1) // tile) * tile

        return GemmShape(m=up(self.m), n=up(self.n), k=up(self.k))


@dataclass(frozen=True)
class ConvLayerSpec:
    """One convolutional layer in Table I notation.

    Parameters
    ----------
    name:
        Layer label as in Table I (e.g. ``"C2"`` or ``"TC1"``).
    network:
        Owning network (``"resnet"``, ``"gan"``, ``"yolo"``), or any
        other string for synthetic layers.
    batch:
        Number of images ``N``.
    in_height, in_width, in_channels:
        Input ``H``, ``W``, ``C`` (NHWC layout).
    num_filters:
        Number of filters (output channels).
    filter_height, filter_width:
        Filter spatial dimensions.
    pad:
        Symmetric zero padding on each spatial border.
    stride:
        Filter striding distance (both axes).  For a transposed
        convolution this is the *upsampling* factor.
    transposed:
        True for the zero-insertion transposed convolutions of the GAN
        generator (Table I rows TC1..TC4).
    output_pad:
        Extra rows/columns of zeros appended at the bottom/right of the
        upsampled input of a transposed convolution (PyTorch's
        ``output_padding``); DCGAN's k=5/s=2/p=2 layers use 1 so the
        spatial size exactly doubles.
    """

    name: str
    network: str
    batch: int
    in_height: int
    in_width: int
    in_channels: int
    num_filters: int
    filter_height: int
    filter_width: int
    pad: int
    stride: int
    transposed: bool = False
    output_pad: int = 0

    def __post_init__(self) -> None:
        if self.batch < 1:
            raise ValueError(f"batch must be >= 1, got {self.batch}")
        if min(self.in_height, self.in_width, self.in_channels) < 1:
            raise ValueError(f"input dims must be >= 1: {self}")
        if min(self.filter_height, self.filter_width, self.num_filters) < 1:
            raise ValueError(f"filter dims must be >= 1: {self}")
        if self.pad < 0:
            raise ValueError(f"pad must be >= 0, got {self.pad}")
        if self.stride < 1:
            raise ValueError(f"stride must be >= 1, got {self.stride}")
        if not self.transposed and self.output_pad:
            raise ValueError("output_pad is only meaningful for transposed convs")
        eff = self._effective_dims()
        if eff[0] + 2 * self.pad < self.filter_height:
            raise ValueError(f"filter taller than padded input: {self}")
        if eff[1] + 2 * self.pad < self.filter_width:
            raise ValueError(f"filter wider than padded input: {self}")

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def _effective_dims(self) -> Tuple[int, int]:
        """(height, width) of the input actually convolved over.

        For a forward convolution this is the raw input; for a
        transposed convolution it is the zero-upsampled input.
        """
        if not self.transposed:
            return self.in_height, self.in_width
        h = (self.in_height - 1) * self.stride + 1 + self.output_pad
        w = (self.in_width - 1) * self.stride + 1 + self.output_pad
        return h, w

    @property
    def effective_stride(self) -> int:
        """Stride of the convolution actually executed after lowering."""
        return 1 if self.transposed else self.stride

    def effective_spec(self) -> "ConvLayerSpec":
        """The equivalent forward convolution executed on the GPU.

        Transposed layers become unit-stride forward convolutions over
        the zero-upsampled input; forward layers return ``self``.
        """
        if not self.transposed:
            return self
        h, w = self._effective_dims()
        return replace(
            self,
            in_height=h,
            in_width=w,
            stride=1,
            transposed=False,
            output_pad=0,
        )

    @property
    def output_shape(self) -> OutputShape:
        """Spatial output shape (per image)."""
        h, w = self._effective_dims()
        s = self.effective_stride
        out_h = (h + 2 * self.pad - self.filter_height) // s + 1
        out_w = (w + 2 * self.pad - self.filter_width) // s + 1
        return OutputShape(height=out_h, width=out_w, channels=self.num_filters)

    @property
    def filter_volume(self) -> int:
        """Elements per filter (kH * kW * C) — the GEMM K dimension."""
        return self.filter_height * self.filter_width * self.in_channels

    @property
    def gemm_shape(self) -> GemmShape:
        """GEMM dimensions of the lowered convolution."""
        out = self.output_shape
        return GemmShape(
            m=self.batch * out.pixels,
            n=self.num_filters,
            k=self.filter_volume,
        )

    # ------------------------------------------------------------------
    # Sizes (bytes / element counts)
    # ------------------------------------------------------------------
    @property
    def input_elements(self) -> int:
        """Elements in the raw input tensor (before any upsampling)."""
        return self.batch * self.in_height * self.in_width * self.in_channels

    @property
    def effective_input_elements(self) -> int:
        """Elements in the input tensor after transposed-conv upsampling."""
        h, w = self._effective_dims()
        return self.batch * h * w * self.in_channels

    @property
    def filter_elements(self) -> int:
        """Elements in the filter bank."""
        return self.num_filters * self.filter_volume

    @property
    def output_elements(self) -> int:
        """Elements in the output tensor."""
        return self.batch * self.output_shape.elements

    @property
    def workspace_elements(self) -> int:
        """Elements in the lowered (im2col) workspace matrix."""
        g = self.gemm_shape
        return g.m * g.k

    @property
    def workspace_bytes(self) -> int:
        """Bytes of the half-precision workspace matrix."""
        return self.workspace_elements * HALF_BYTES

    @property
    def duplication_factor(self) -> float:
        """Workspace elements per effective input element.

        A value of 1.0 means lowering created no duplicates; Table I
        layers typically sit between ~2x and ~9x (filter area divided
        by stride^2, clipped by borders).
        """
        return self.workspace_elements / self.effective_input_elements

    @property
    def macs(self) -> int:
        """Multiply-accumulates of the direct convolution (== GEMM MACs)."""
        return self.gemm_shape.macs

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    @property
    def input_nhwc(self) -> Tuple[int, int, int, int]:
        """Input shape as the (N, H, W, C) tuple Table I prints."""
        return (self.batch, self.in_height, self.in_width, self.in_channels)

    @property
    def filter_nhwc(self) -> Tuple[int, int, int, int]:
        """Filter shape as the (K, kH, kW, C) tuple Table I prints."""
        return (
            self.num_filters,
            self.filter_height,
            self.filter_width,
            self.in_channels,
        )

    @property
    def qualified_name(self) -> str:
        """Globally unique label, e.g. ``"resnet/C2"``."""
        return f"{self.network}/{self.name}"

    def with_batch(self, batch: int) -> "ConvLayerSpec":
        """Same layer with a different batch size (Fig 13 sweeps)."""
        return replace(self, batch=batch)

    def scaled(self, spatial: float) -> "ConvLayerSpec":
        """Same layer with spatial dims scaled by ``spatial`` (>= 1/H).

        Used to build reduced-size variants for fast tests; output
        geometry constraints are re-validated by ``__post_init__``.
        """
        return replace(
            self,
            in_height=max(self.filter_height, math.ceil(self.in_height * spatial)),
            in_width=max(self.filter_width, math.ceil(self.in_width * spatial)),
        )

    def __str__(self) -> str:
        kind = "transposed conv" if self.transposed else "conv"
        n, h, w, c = self.input_nhwc
        k, kh, kw, _ = self.filter_nhwc
        return (
            f"{self.qualified_name}: {kind} {n}x{h}x{w}x{c} * "
            f"{k}x{kh}x{kw}x{c} pad={self.pad} stride={self.stride}"
        )
