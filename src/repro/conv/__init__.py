"""Convolution substrate: layer specs, workloads, lowering, and methods.

This subpackage implements everything the Duplo paper's evaluation
depends on below the GPU model: convolutional layer geometry (including
the transposed convolutions of DCGAN), the Table I workload definitions,
im2col lowering with exact workspace<->input coordinate maps, and
functional implementations of every convolution method the paper
compares (direct, GEMM, Winograd, FFT).
"""

from repro.conv.layer import ConvLayerSpec, OutputShape, GemmShape
from repro.conv.attention import (
    ATTENTION_LAYERS,
    attention_layers,
    gemm_layer,
)
from repro.conv.workloads import (
    RESNET_LAYERS,
    GAN_LAYERS,
    YOLO_LAYERS,
    ALL_LAYERS,
    TABLE_I,
    WORKLOADS,
    get_layer,
    layers_for_network,
    networks,
)
from repro.conv.lowering import (
    LoweredWorkspace,
    lower_input,
    workspace_entry_to_input_coord,
    workspace_shape,
)
from repro.conv.methods import ConvMethod, METHOD_REGISTRY, applicable_methods

__all__ = [
    "ConvLayerSpec",
    "OutputShape",
    "GemmShape",
    "RESNET_LAYERS",
    "GAN_LAYERS",
    "YOLO_LAYERS",
    "ALL_LAYERS",
    "TABLE_I",
    "WORKLOADS",
    "ATTENTION_LAYERS",
    "attention_layers",
    "gemm_layer",
    "get_layer",
    "layers_for_network",
    "networks",
    "LoweredWorkspace",
    "lower_input",
    "workspace_entry_to_input_coord",
    "workspace_shape",
    "ConvMethod",
    "METHOD_REGISTRY",
    "applicable_methods",
]
