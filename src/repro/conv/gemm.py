"""GEMM-based convolution: lower, multiply, reshape.

The method Duplo accelerates (Figure 1(b)): the input is expanded into
the im2col workspace, the filter bank is flattened into a matrix, and
one large GEMM produces all outputs.  Two realisations matter to the
paper:

* **explicit GEMM** — the full workspace materialised in global
  memory (what :func:`gemm_convolution` computes, and what the Duplo
  detection unit observes addresses of);
* **implicit GEMM** — cuDNN's variant that expands tiles lazily into
  shared memory (Section II-C).  It computes the same thing; only its
  memory footprint differs, so it is modelled by
  :func:`implicit_gemm_footprint` rather than reimplemented.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.conv.layer import ConvLayerSpec, FLOAT_BYTES, HALF_BYTES
from repro.conv.lowering import lower_input


def filters_to_matrix(spec: ConvLayerSpec, filters: np.ndarray) -> np.ndarray:
    """Flatten a (K, kH, kW, C) filter bank to the (kH*kW*C, K) GEMM B."""
    if tuple(filters.shape) != spec.filter_nhwc:
        raise ValueError(
            f"filter shape {filters.shape} != spec shape {spec.filter_nhwc}"
        )
    return filters.reshape(spec.num_filters, spec.filter_volume).T


def gemm_convolution(
    spec: ConvLayerSpec, x: np.ndarray, filters: np.ndarray
) -> np.ndarray:
    """Convolve via an explicit lowered workspace and one GEMM.

    Bit-for-bit this equals the direct convolution (up to float
    associativity); the *cost* difference — the duplicated workspace —
    is what the rest of the library studies.
    """
    workspace = lower_input(spec, x)
    b = filters_to_matrix(spec, filters).astype(workspace.matrix.dtype)
    d = workspace.matrix @ b  # (N*OH*OW, K)
    out = spec.output_shape
    return d.reshape(spec.batch, out.height, out.width, spec.num_filters)


@dataclass(frozen=True)
class GemmFootprint:
    """Byte footprint of one GEMM-based convolution realisation."""

    input_bytes: int
    workspace_bytes: int
    filter_bytes: int
    output_bytes: int

    @property
    def total_bytes(self) -> int:
        return (
            self.input_bytes
            + self.workspace_bytes
            + self.filter_bytes
            + self.output_bytes
        )


def explicit_gemm_footprint(spec: ConvLayerSpec) -> GemmFootprint:
    """Global-memory footprint of explicit GEMM (fp16 operands)."""
    return GemmFootprint(
        input_bytes=spec.effective_input_elements * HALF_BYTES,
        workspace_bytes=spec.workspace_bytes,
        filter_bytes=spec.filter_elements * HALF_BYTES,
        output_bytes=spec.output_elements * FLOAT_BYTES,
    )


def implicit_gemm_footprint(spec: ConvLayerSpec) -> GemmFootprint:
    """Global-memory footprint of cuDNN-style implicit GEMM.

    The workspace lives tile-by-tile in shared memory, so no global
    workspace is allocated; the paper measures this as only ~1.1x the
    direct convolution's footprint (Figure 3, GEMM_TC bar).
    """
    return GemmFootprint(
        input_bytes=spec.effective_input_elements * HALF_BYTES,
        workspace_bytes=0,
        filter_bytes=spec.filter_elements * HALF_BYTES,
        output_bytes=spec.output_elements * FLOAT_BYTES,
    )


def direct_footprint(spec: ConvLayerSpec) -> GemmFootprint:
    """Footprint of the direct convolution (no workspace at all)."""
    return GemmFootprint(
        input_bytes=spec.input_elements * HALF_BYTES,
        workspace_bytes=0,
        filter_bytes=spec.filter_elements * HALF_BYTES,
        output_bytes=spec.output_elements * FLOAT_BYTES,
    )
