"""Composable DNNs: chain convolutions with pooling and softmax.

The paper evaluates isolated convolutional layers; a user adopting
this library wants whole networks.  :class:`SequentialNetwork` chains
typed layers with shape checking, runs *real* NumPy inference through
the convolution substrate (:meth:`forward`), and hands its
convolutional layers to the simulator (:meth:`simulate`) — the
network-level composition behind Figure 14, but constructed rather
than hard-coded.

Derived workloads the paper names ("many other neural networks can be
easily derived ... such as VGG, DiscoGAN, and FCN") live in
``repro.conv.zoo``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.conv.auxiliary import average_pool, max_pool, softmax
from repro.conv.gemm import gemm_convolution
from repro.conv.layer import ConvLayerSpec


@dataclass(frozen=True)
class ConvLayer:
    """A convolution stage: the spec plus optional ReLU."""

    spec: ConvLayerSpec
    relu: bool = True

    def output_shape(self, shape: Tuple[int, int, int, int]):
        if shape != self.spec.input_nhwc:
            raise ValueError(
                f"{self.spec.qualified_name}: input {shape} != "
                f"expected {self.spec.input_nhwc}"
            )
        out = self.spec.output_shape
        return (self.spec.batch, out.height, out.width, out.channels)

    def forward(self, x: np.ndarray, weights: np.ndarray) -> np.ndarray:
        y = gemm_convolution(self.spec, x, weights)
        if self.relu:
            y = np.maximum(y, 0.0)
        return y


@dataclass(frozen=True)
class PoolLayer:
    """Max or average pooling."""

    size: int = 2
    stride: int = 2
    kind: str = "max"

    def __post_init__(self):
        if self.kind not in ("max", "avg"):
            raise ValueError(f"kind must be 'max' or 'avg', got {self.kind!r}")

    def output_shape(self, shape):
        n, h, w, c = shape
        oh = (h - self.size) // self.stride + 1
        ow = (w - self.size) // self.stride + 1
        if oh < 1 or ow < 1:
            raise ValueError(f"pooling window exceeds input {shape}")
        return (n, oh, ow, c)

    def forward(self, x: np.ndarray) -> np.ndarray:
        fn = max_pool if self.kind == "max" else average_pool
        return fn(x, self.size, self.stride)


@dataclass(frozen=True)
class SoftmaxLayer:
    """Channel-wise softmax over the flattened activations."""

    def output_shape(self, shape):
        return shape

    def forward(self, x: np.ndarray) -> np.ndarray:
        n = x.shape[0]
        flat = x.reshape(n, -1)
        return softmax(flat, axis=-1).reshape(x.shape)


Layer = Union[ConvLayer, PoolLayer, SoftmaxLayer]


class SequentialNetwork:
    """A shape-checked chain of layers.

    The constructor validates that every layer's output feeds the
    next layer's expected input, so a mis-specified network fails at
    build time, not mid-inference.
    """

    def __init__(self, name: str, layers: Sequence[Layer]):
        if not layers:
            raise ValueError("a network needs at least one layer")
        self.name = name
        self.layers = list(layers)
        shape = self._input_shape()
        for layer in self.layers:
            shape = layer.output_shape(shape)
        self.output_nhwc = shape

    def _input_shape(self) -> Tuple[int, int, int, int]:
        first = next(
            (l for l in self.layers if isinstance(l, ConvLayer)), None
        )
        if first is None:
            raise ValueError("a network needs at least one convolution")
        if self.layers[0] is not first:
            raise ValueError("the first layer must be a convolution")
        return first.spec.input_nhwc

    @property
    def input_nhwc(self) -> Tuple[int, int, int, int]:
        return self._input_shape()

    def conv_specs(self) -> List[ConvLayerSpec]:
        return [l.spec for l in self.layers if isinstance(l, ConvLayer)]

    # ------------------------------------------------------------------
    # Real inference
    # ------------------------------------------------------------------
    def init_weights(self, rng: np.random.Generator) -> List[np.ndarray]:
        """He-style random filters for every convolution."""
        weights = []
        for spec in self.conv_specs():
            scale = np.sqrt(2.0 / spec.filter_volume)
            weights.append(
                rng.standard_normal(spec.filter_nhwc) * scale
            )
        return weights

    def forward(
        self, x: np.ndarray, weights: Sequence[np.ndarray]
    ) -> np.ndarray:
        """Run inference; returns the final activation tensor."""
        conv_count = len(self.conv_specs())
        if len(weights) != conv_count:
            raise ValueError(
                f"need {conv_count} weight tensors, got {len(weights)}"
            )
        w_iter = iter(weights)
        out = x
        for layer in self.layers:
            if isinstance(layer, ConvLayer):
                out = layer.forward(out, next(w_iter))
            else:
                out = layer.forward(out)
        return out

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulate(
        self,
        mode=None,
        lhb_entries: Optional[int] = 1024,
        options=None,
    ) -> Dict[str, float]:
        """Total simulated cycles of the network's convolutions.

        Returns per-layer and total cycles; pooling/softmax are
        charged via the auxiliary cost model.
        """
        from repro.conv.auxiliary import AuxiliaryCostModel
        from repro.gpu.config import SimulationOptions
        from repro.gpu.simulator import EliminationMode, simulate_layer

        if mode is None:
            mode = EliminationMode.DUPLO
        if options is None:
            options = SimulationOptions()
        aux = AuxiliaryCostModel()
        cycles: Dict[str, float] = {}
        total = 0.0
        conv_iter = iter(self.conv_specs())
        for i, layer in enumerate(self.layers):
            if isinstance(layer, ConvLayer):
                spec = next(conv_iter)
                c = simulate_layer(
                    spec, mode, lhb_entries=lhb_entries, options=options
                ).cycles
                cycles[f"{i}:{spec.name}"] = c
            elif isinstance(layer, PoolLayer):
                prev = self.layers[i - 1]
                ref = prev.spec if isinstance(prev, ConvLayer) else None
                c = aux.pool_cycles(ref) if ref is not None else 0.0
                cycles[f"{i}:pool"] = c
            else:
                c = aux.softmax_cycles(
                    classes=int(np.prod(self.output_nhwc[1:])),
                    batch=self.output_nhwc[0],
                )
                cycles[f"{i}:softmax"] = c
            total += c
        cycles["total"] = total
        return cycles

    def __repr__(self) -> str:
        return (
            f"SequentialNetwork({self.name!r}, {len(self.layers)} layers, "
            f"{self.input_nhwc} -> {self.output_nhwc})"
        )


def conv(
    name: str,
    network: str,
    input_nhwc: Tuple[int, int, int, int],
    filters: int,
    kernel: int,
    pad: int,
    stride: int = 1,
    relu: bool = True,
    transposed: bool = False,
    output_pad: int = 0,
) -> ConvLayer:
    """Terse ConvLayer builder used by the network zoo."""
    n, h, w, c = input_nhwc
    return ConvLayer(
        spec=ConvLayerSpec(
            name=name,
            network=network,
            batch=n,
            in_height=h,
            in_width=w,
            in_channels=c,
            num_filters=filters,
            filter_height=kernel,
            filter_width=kernel,
            pad=pad,
            stride=stride,
            transposed=transposed,
            output_pad=output_pad,
        ),
        relu=relu,
    )
