"""Registry of convolution methods compared in Figures 2 and 3.

Each :class:`ConvMethod` bundles a functional implementation (used as
the correctness reference for tests), an applicability predicate (the
missing bars in the figures), and the execution resource it runs on
(CUDA cores vs. tensor cores), which the Figure 2 cost model uses.

The five non-direct methods mirror the paper's legend: ``gemm``,
``winograd``, ``fft`` on CUDA cores, and ``gemm_tc``, ``winograd_tc``
on tensor cores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from repro.conv.direct import direct_convolution
from repro.conv.fft_conv import fft_applicable, fft_convolution
from repro.conv.gemm import gemm_convolution
from repro.conv.layer import ConvLayerSpec
from repro.conv.winograd import winograd_applicable, winograd_convolution

ConvFn = Callable[[ConvLayerSpec, np.ndarray, np.ndarray], np.ndarray]


@dataclass(frozen=True)
class ConvMethod:
    """One convolution method: implementation + applicability + resource."""

    name: str
    run: ConvFn
    applicable: Callable[[ConvLayerSpec], bool]
    uses_tensor_cores: bool
    description: str

    def check(self, spec: ConvLayerSpec) -> None:
        """Raise ``ValueError`` if this method cannot run ``spec``."""
        if not self.applicable(spec):
            raise ValueError(
                f"method {self.name!r} inapplicable to {spec.qualified_name}"
            )


def _always(spec: ConvLayerSpec) -> bool:
    return True


METHOD_REGISTRY: Dict[str, ConvMethod] = {
    method.name: method
    for method in [
        ConvMethod(
            name="direct",
            run=direct_convolution,
            applicable=_always,
            uses_tensor_cores=False,
            description="Sliding-window direct convolution (baseline of Figs 2-3)",
        ),
        ConvMethod(
            name="gemm",
            run=gemm_convolution,
            applicable=_always,
            uses_tensor_cores=False,
            description="Lowered GEMM convolution on CUDA cores",
        ),
        ConvMethod(
            name="gemm_tc",
            run=gemm_convolution,
            applicable=_always,
            uses_tensor_cores=True,
            description="Lowered GEMM convolution on tensor cores (implicit GEMM)",
        ),
        ConvMethod(
            name="winograd",
            run=winograd_convolution,
            applicable=winograd_applicable,
            uses_tensor_cores=False,
            description="Winograd F(2x2,3x3) on CUDA cores",
        ),
        ConvMethod(
            name="winograd_tc",
            run=winograd_convolution,
            applicable=winograd_applicable,
            uses_tensor_cores=True,
            description="Winograd F(2x2,3x3) with tensor-core product stage",
        ),
        ConvMethod(
            name="fft",
            run=fft_convolution,
            applicable=fft_applicable,
            uses_tensor_cores=False,
            description="FFT convolution on CUDA cores",
        ),
    ]
}

#: Method order used by the paper's figure legends (direct is the baseline).
FIGURE_METHODS = ("gemm", "winograd", "fft", "gemm_tc", "winograd_tc")


def get_method(name: str) -> ConvMethod:
    """Look up a method by name, with a helpful error for typos."""
    try:
        return METHOD_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown method {name!r}; choose from {sorted(METHOD_REGISTRY)}"
        ) from None


def applicable_methods(spec: ConvLayerSpec) -> List[str]:
    """Names of all methods that can run ``spec`` (figure-order)."""
    return [name for name in FIGURE_METHODS
            if METHOD_REGISTRY[name].applicable(spec)]
