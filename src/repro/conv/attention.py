"""Transformer attention GEMMs as native workload layers.

The Duplo pipeline lowers every layer to a GEMM before anything else
happens (im2col workspace x filter matrix), so a transformer attention
block — whose operators *are* GEMMs — slots in without any lowering at
all: an ``M x N x K`` GEMM is exactly a 1x1 convolution with unit
stride and zero padding over an ``1 x M`` "image" of ``K`` channels
with ``N`` filters.  :func:`gemm_layer` builds that identity
embedding, and :func:`attention_layers` uses it to emit the four
GEMMs of one multi-head self-attention block:

``QKV``
    The fused input projection: per sequence, ``seq x 3*d_model x
    d_model`` (Q, K and V projected in one GEMM, the cuBLAS batching
    convention).
``QK``
    The score GEMM ``Q K^T``: per (sequence, head), ``seq x seq x
    head_dim``.  Head and batch fold into the GEMM M dimension the
    same way image batch folds into conv output rows.
``PV``
    The context GEMM ``softmax(scores) V``: per (sequence, head),
    ``seq x head_dim x seq``.
``OUT``
    The output projection: ``seq x d_model x d_model``.

Because the embedding is the identity (1x1 filter, stride 1, pad 0,
filter volume == in_channels == K), the im2col workspace *is* the
activation matrix — ``duplication_factor == 1.0`` — and the layers
flow through :func:`repro.gpu.kernel.plan_sm_trace` and the vectorised
fast path natively: no fallback, no special cases downstream.  What
Duplo can still eliminate here is the redundancy the *kernel* creates
(octet dual-loads and cross-k reuse), which is precisely the paper's
Section II-B claim transplanted to transformer shapes.

Defaults are BERT-base-ish (``seq=128``, ``d_model=768``, 12 heads of
64) at the Table I batch size of 8.
"""

from __future__ import annotations

from typing import List

from repro.conv.layer import ConvLayerSpec

#: Default attention geometry: BERT-base (12 heads x 64 = 768).
DEFAULT_SEQ = 128
DEFAULT_D_MODEL = 768
DEFAULT_HEADS = 12

#: Table I batch size, mirrored from ``repro.conv.workloads`` (which
#: imports this module, so the constant lives here to avoid a cycle).
DEFAULT_BATCH = 8


def gemm_layer(
    name: str,
    batch: int,
    m: int,
    n: int,
    k: int,
    network: str = "attention",
) -> ConvLayerSpec:
    """Embed a batched ``M x N x K`` GEMM as a native workload layer.

    The returned spec is the identity 1x1 convolution: a ``1 x m``
    input of ``k`` channels convolved with ``n`` 1x1 filters, so
    ``gemm_shape == (batch * m, n, k)`` and the im2col workspace is
    the activation matrix itself (``duplication_factor == 1.0``).
    ``batch`` rides the conv batch axis, extending GEMM M exactly like
    a batched GEMM's flattened batch dimension.
    """
    if min(batch, m, n, k) < 1:
        raise ValueError(
            f"{network}/{name}: GEMM dims must be >= 1, got "
            f"batch={batch} m={m} n={n} k={k}"
        )
    return ConvLayerSpec(
        name=name,
        network=network,
        batch=batch,
        in_height=1,
        in_width=m,
        in_channels=k,
        num_filters=n,
        filter_height=1,
        filter_width=1,
        pad=0,
        stride=1,
    )


def attention_layers(
    batch: int = DEFAULT_BATCH,
    seq: int = DEFAULT_SEQ,
    d_model: int = DEFAULT_D_MODEL,
    heads: int = DEFAULT_HEADS,
) -> List[ConvLayerSpec]:
    """The four GEMMs of one multi-head self-attention block.

    ``d_model`` must split evenly across ``heads``; the per-head width
    becomes the K of the score GEMM and the N of the context GEMM.
    """
    if d_model % heads:
        raise ValueError(
            f"d_model={d_model} must be divisible by heads={heads}"
        )
    head_dim = d_model // heads
    return [
        # Fused Q/K/V input projection: one GEMM per sequence.
        gemm_layer("QKV", batch, seq, 3 * d_model, d_model),
        # Scores Q K^T: one GEMM per (sequence, head).
        gemm_layer("QK", batch * heads, seq, seq, head_dim),
        # Context softmax(scores) V: one GEMM per (sequence, head).
        gemm_layer("PV", batch * heads, seq, head_dim, seq),
        # Output projection back to d_model.
        gemm_layer("OUT", batch, seq, d_model, d_model),
    ]


#: The default attention block, registered as the "attention" network
#: in :data:`repro.conv.workloads.WORKLOADS`.
ATTENTION_LAYERS: List[ConvLayerSpec] = attention_layers()
