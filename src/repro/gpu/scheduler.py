"""Greedy-then-oldest (GTO) warp scheduling.

Table III's scheduling policy.  GTO runs one warp greedily until it
stalls on a long dependency (here: the MMA consuming a k-step's
fragments drains only so much run-ahead), then falls back to the
oldest ready warp.  For trace generation the observable consequence
is the *burst order*: each scheduling turn a warp issues
``warp_runahead`` k-steps of loads, and turns rotate oldest-CTA-first
across the CTAs co-resident on the SM.

:func:`gto_turns` yields that order; ``repro.gpu.kernel`` consumes it
so the interleaving the LHB observes is defined in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence


@dataclass(frozen=True)
class Turn:
    """One scheduling turn: a warp issuing a span of k-steps."""

    cta_index: int  # index into the wave's CTA list (oldest first)
    warp: int  # warp within the CTA
    k_start: int
    k_end: int  # exclusive


def gto_turns(
    num_ctas: int,
    warps_per_cta: int,
    k_steps: int,
    runahead: int,
) -> Iterator[Turn]:
    """Scheduling turns for one wave of co-resident CTAs.

    Every warp advances ``runahead`` k-steps per turn; turns sweep
    oldest CTA first, then warp order within the CTA.  (All warps of a
    wave execute the same k-loop length, so the wave stays aligned at
    turn boundaries — the lockstep the round-robin fallback of GTO
    produces for homogeneous warps.)
    """
    if num_ctas < 1 or warps_per_cta < 1:
        raise ValueError("need at least one CTA and one warp")
    if k_steps < 0 or runahead < 1:
        raise ValueError("k_steps must be >= 0 and runahead >= 1")
    for k_start in range(0, k_steps, runahead):
        k_end = min(k_start + runahead, k_steps)
        for cta_index in range(num_ctas):
            for warp in range(warps_per_cta):
                yield Turn(cta_index=cta_index, warp=warp, k_start=k_start, k_end=k_end)


def waves(items: Sequence, concurrency: int) -> Iterator[Sequence]:
    """Split a CTA list into co-resident waves (oldest first)."""
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    for start in range(0, len(items), concurrency):
        yield items[start : start + concurrency]
