"""Analytic cycle model: turning event counts into execution time.

DESIGN.md's documented substitution for GPGPU-sim's cycle-level
pipeline.  Per-SM execution time is modelled as the dominant resource
bottleneck plus a partial-overlap share of the remaining resources
and the TLP-exposed fraction of memory latency:

* **tensor cores** — MMA ops at 512 MACs/SM/cycle (Table III's 8
  tensor cores);
* **LDST issue/L1 bandwidth** — 32-byte fragments through a
  128 B/cycle pipe; LHB-eliminated loads retire in one issue slot
  ("as if the memory request is immediately served");
* **L2 bandwidth** — line refills against the SM's share of L2
  bandwidth;
* **DRAM bandwidth** — read + write bytes against the SM's share of
  652.8 GB/s (shared only among SMs the grid actually occupies);
* **exposed latency** — per-miss latencies divided by the in-flight
  capacity the resident warps provide (GPUs hide most, not all, of
  it — the memory-boundedness Yan et al. report for tensor-core
  GEMMs).

The overlap coefficient is the one calibration constant (EXPERIMENTS.md
records the calibration); everything else follows from Table III.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.gpu.config import GPUConfig, TITAN_V
from repro.gpu.stats import LayerStats

#: MACs in one 16x16x16 wmma MMA operation (the Volta default;
#: :class:`TimingModel` uses ``gpu.mma_macs`` so narrower Turing /
#: Ampere / Hopper fragment shapes price their own MMA size).
MACS_PER_MMA = 4096

#: Fraction of non-dominant resource time not hidden under the
#: dominant resource (0 = perfect overlap / pure roofline, 1 = fully
#: serialised).  Calibrated against the paper's baseline-vs-Duplo
#: deltas; see EXPERIMENTS.md.
DEFAULT_OVERLAP = 0.35

#: Outstanding memory requests one warp sustains (MSHR depth share).
INFLIGHT_PER_WARP = 4.0

#: Fixed per-kernel overhead (launch + drain), cycles.
KERNEL_OVERHEAD_CYCLES = 2000.0


@dataclass(frozen=True)
class TimingModel:
    """Cycle estimator with an explicit component breakdown."""

    gpu: GPUConfig = TITAN_V
    overlap: float = DEFAULT_OVERLAP
    inflight_per_warp: float = INFLIGHT_PER_WARP
    detection_latency: int = 2

    def components(
        self, stats: LayerStats, concurrent_warps: int, busy_sms: int
    ) -> Dict[str, float]:
        """Per-resource cycle totals for one SM's share of the layer."""
        gpu = self.gpu
        compute = stats.mma_ops * gpu.mma_macs / gpu.macs_per_sm_cycle

        issued = stats.loads_total - stats.eliminated_fragments
        fragment_cycles = gpu.frag_bytes / gpu.bytes_per_ldst_cycle
        # An eliminated warp-level load still spends one issue slot
        # (renaming) per fragment tile (``tile_m`` fragments on the A
        # side) but moves no data.
        ldst = issued * fragment_cycles
        ldst += stats.eliminated_fragments * (
            gpu.eliminated_load_cycles / gpu.tile_m
        )

        l2_bytes = stats.l2_accesses * gpu.l2_line_bytes
        l2 = l2_bytes / gpu.l2_bytes_per_sm_cycle

        dram_share = gpu.dram_bytes_per_cycle / max(1, min(busy_sms, gpu.num_sms))
        dram = (stats.dram_read_bytes + stats.dram_write_bytes) / dram_share

        l2_hits = stats.l2_hits
        dram_reads = stats.l2_accesses - stats.l2_hits
        total_latency = l2_hits * gpu.l2_latency + dram_reads * (
            gpu.l2_latency + gpu.dram_latency
        )
        # A detection unit slower than the baseline 2 cycles (Section
        # IV-A's 3-cycle sensitivity case, ~0.9% in the paper) delays
        # every LHB lookup's critical path.
        total_latency += stats.lhb_lookups * max(0, self.detection_latency - 2)
        inflight = max(1.0, concurrent_warps * self.inflight_per_warp)
        exposed = total_latency / inflight

        return {
            "compute": compute,
            "ldst": ldst,
            "l2": l2,
            "dram": dram,
            "exposed_latency": exposed,
        }

    def cycles(
        self, stats: LayerStats, concurrent_warps: int, busy_sms: int
    ) -> Tuple[float, Dict[str, float]]:
        """Estimated SM cycles plus the component breakdown."""
        comps = self.components(stats, concurrent_warps, busy_sms)
        bottleneck = max(comps.values())
        residual = sum(comps.values()) - bottleneck
        total = bottleneck + self.overlap * residual + KERNEL_OVERHEAD_CYCLES
        return total, comps

    def execution_time_ms(self, cycles: float) -> float:
        """Wall-clock milliseconds at the configured core clock."""
        return cycles / self.gpu.clock_hz * 1e3
