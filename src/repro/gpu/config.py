"""Machine, kernel, and simulation configuration.

:data:`TITAN_V` transcribes Table III of the paper (the GPGPU-sim
"Titan V-like" baseline).  :class:`KernelConfig` fixes the
cudaTensorCoreGemm-style tiling the paper uses as its baseline GEMM
(Section II-C: only the C accumulator tile lives in shared memory, so
three CTAs fit per SM).  :class:`SimulationOptions` holds the
reproduction-side knobs DESIGN.md documents (representative-SM
sampling, CTA caps, ID mode).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.core.idgen import IDMode


@dataclass(frozen=True)
class GPUConfig:
    """Table III baseline GPU plus derived timing constants.

    Timing constants beyond Table III (L2/DRAM bandwidth shares, LDST
    issue costs) are Titan V-class numbers used by the analytic cycle
    model; see ``repro.gpu.timing`` for how each enters.

    The WMMA fragment geometry lives here rather than on
    :class:`KernelConfig` because the replay side (``ldst``,
    ``fastpath``, ``analytic``) receives only the GPU model: a
    warp-level MMA computes a ``tile_m x tile_n x tile_k`` product, an
    A fragment is one ``tile_k``-element operand row (``tile_m`` rows
    per tile), a B fragment one ``tile_k``-element operand column
    (``tile_n`` columns per tile), and a D store writes ``tile_m``
    rows of ``tile_n`` accumulators.  Volta's 16x16x16 fp16 shape is
    the default; Turing/Ampere/Hopper presets in :data:`ARCHS` narrow
    ``tile_n``/``tile_k`` and shrink ``element_bytes`` for INT8/FP8.
    """

    #: Preset name this configuration was built from ("volta" for the
    #: Table III default).  Serialised into runtime cache keys via
    #: :func:`repro.runtime.cachekey.canonical` like every other field.
    name: str = "volta"

    num_sms: int = 80
    clock_mhz: int = 1200
    max_ctas_per_sm: int = 32
    max_warps_per_sm: int = 64
    warp_schedulers_per_sm: int = 4
    tensor_cores_per_sm: int = 8
    regfile_bytes_per_sm: int = 256 * 1024
    shared_mem_bytes_per_sm: int = 96 * 1024

    # Caches (Table III: 128 KB unified L1/SM; 4.5 MB L2, 24-way).
    l1_bytes: int = 128 * 1024
    l1_assoc: int = 4
    l1_line_bytes: int = 128
    l1_latency: int = 28
    l2_bytes: int = 4608 * 1024
    l2_assoc: int = 24
    l2_line_bytes: int = 128
    l2_latency: int = 120

    # DRAM (Table III: 652.8 GB/s).
    dram_bandwidth_gbps: float = 652.8
    dram_latency: int = 220

    # Tensor cores: 8/SM, each 16 FEDPs doing a 4x4x4 MMA per cycle
    # -> 64 MACs/cycle/core (Section II-B).
    macs_per_tensor_core_cycle: int = 64

    # LDST path: a tensor-core load moves a 512-byte tile through a
    # 128 B/cycle pipe; an LHB-eliminated load spends one issue slot.
    ldst_units_per_sm: int = 4
    bytes_per_ldst_cycle: int = 128
    eliminated_load_cycles: int = 1

    # L2 bandwidth share per SM (Titan V-class ~2.1 TB/s aggregate).
    l2_bandwidth_bytes_per_cycle: float = 1750.0

    # Duplo detection unit (Section IV-A: two-cycle ID-gen + LHB, in
    # parallel with L1; three cycles costs ~0.9% — an ablation).
    detection_latency: int = 2

    # WMMA fragment geometry (Snippet 3's per-generation table).  A
    # warp MMA instruction computes tile_m x tile_n x tile_k;
    # element_bytes is the A/B operand width (fp16=2, int8/fp8=1) and
    # acc_bytes the accumulator width stored to D (fp32/int32=4).
    tile_m: int = 16
    tile_n: int = 16
    tile_k: int = 16
    element_bytes: int = 2
    acc_bytes: int = 4

    def __post_init__(self) -> None:
        if min(self.tile_m, self.tile_n, self.tile_k) <= 0:
            raise ValueError("WMMA tile dimensions must be positive")
        if self.element_bytes <= 0 or self.acc_bytes <= 0:
            raise ValueError("element/accumulator widths must be positive")
        frag = self.tile_k * self.element_bytes
        if frag & (frag - 1):
            raise ValueError(
                f"fragment size tile_k * element_bytes must be a power of "
                f"two (WIR element IDs are fragment-aligned address "
                f"shifts), got {frag}"
            )

    @property
    def clock_hz(self) -> float:
        return self.clock_mhz * 1e6

    @property
    def frag_bytes(self) -> int:
        """Bytes per tensor-core operand fragment (one k-depth row or
        column of a tile): ``tile_k * element_bytes`` — 32 on Volta."""
        return self.tile_k * self.element_bytes

    @property
    def frag_shift(self) -> int:
        """log2(frag_bytes): the address shift WIR uses as element ID."""
        return self.frag_bytes.bit_length() - 1

    @property
    def store_frag_bytes(self) -> int:
        """Bytes per D-store event (one accumulator row of a tile):
        ``tile_n * acc_bytes`` — 64 on Volta."""
        return self.tile_n * self.acc_bytes

    @property
    def mma_macs(self) -> int:
        """MACs per warp-level MMA instruction (4096 on Volta)."""
        return self.tile_m * self.tile_n * self.tile_k

    @property
    def dram_bytes_per_cycle(self) -> float:
        """Aggregate DRAM bytes per GPU clock."""
        return self.dram_bandwidth_gbps * 1e9 / self.clock_hz

    @property
    def dram_bytes_per_sm_cycle(self) -> float:
        """Per-SM share of DRAM bandwidth (representative-SM model)."""
        return self.dram_bytes_per_cycle / self.num_sms

    @property
    def l2_bytes_per_sm_cycle(self) -> float:
        """Per-SM share of L2 bandwidth."""
        return self.l2_bandwidth_bytes_per_cycle / self.num_sms

    @property
    def macs_per_sm_cycle(self) -> int:
        """Peak tensor-core MACs per SM per cycle (512 for Table III)."""
        return self.tensor_cores_per_sm * self.macs_per_tensor_core_cycle

    def scaled_l1(self, factor: float) -> "GPUConfig":
        """Cache-scaling variant (Section V-D's 16x L1 / 4x L2 study)."""
        return replace(self, l1_bytes=int(self.l1_bytes * factor))

    def scaled_l2(self, factor: float) -> "GPUConfig":
        return replace(self, l2_bytes=int(self.l2_bytes * factor))


#: The paper's baseline machine.
TITAN_V = GPUConfig()


@dataclass(frozen=True)
class KernelConfig:
    """cudaTensorCoreGemm-style tiling (Sections II-B/II-C).

    Defaults give the paper's baseline: a 128x64 CTA output tile whose
    fp32 C block occupies 32 KB of shared memory, so three CTAs fit in
    the 96 KB SM shared memory ("placing only C in the shared memory
    ... achieving 29.7% better performance").  Eight warps per CTA in
    a 4x2 grid each own a 32x32 output patch (2x2 wmma tiles on
    Volta); per ``tile_k``-deep k-step a warp issues its A/B fragment
    loads *twice* — once per octet — reproducing the dual-load
    behaviour of Section II-B.
    """

    #: Legacy square-tile edge retained for the Volta-era divisibility
    #: checks below.  The tile is *not* always square: trace planning
    #: and replay take their m/n/k decomposition from
    #: ``GPUConfig.tile_m/tile_n/tile_k`` (a warp tile of
    #: ``warp_tile_m x warp_tile_n`` holds ``warp_tile_m//tile_m`` x
    #: ``warp_tile_n//tile_n`` MMA tiles, each stepping ``tile_k`` deep
    #: per k-step).  Use :func:`validate_arch` to check a
    #: (GPU, kernel) pairing; this field only anchors the default
    #: Volta 16x16x16 shape.
    tile: int = 16
    cta_tile_m: int = 128
    cta_tile_n: int = 64
    warp_tile_m: int = 32
    warp_tile_n: int = 32
    octet_duplication: int = 2
    #: Which operands are staged in shared memory: subset of "abc".
    shared_operands: str = "c"
    #: cuDNN-style implicit GEMM (Section II-C): the workspace is
    #: expanded lazily into shared memory from the *unexpanded* input,
    #: so global traffic shrinks to the unique data while tensor-core
    #: loads hit shared memory (which Duplo can still filter — the
    #: Section V-D remark).  Requires A and B staged in shared.
    implicit: bool = False
    #: K-depth of the shared-memory staging chunk in implicit mode
    #: (the paper's 16 KB A stage = 128 rows x 64 halfs).
    stage_k: int = 64
    #: K-steps a warp issues per scheduling turn before the GTO
    #: scheduler switches away (greedy run-ahead: loads of later
    #: k-steps issue while earlier MMAs drain, until the scoreboard /
    #: register budget stalls the warp).  This is what brings a warp's
    #: own cross-k duplicate loads within LHB reach.
    warp_runahead: int = 32

    def __post_init__(self) -> None:
        if self.cta_tile_m % self.warp_tile_m or self.cta_tile_n % self.warp_tile_n:
            raise ValueError("warp tile must divide CTA tile")
        if self.warp_tile_m % self.tile or self.warp_tile_n % self.tile:
            raise ValueError("wmma tile must divide warp tile")
        if set(self.shared_operands) - set("abc"):
            raise ValueError(f"bad shared_operands {self.shared_operands!r}")
        if self.implicit and not {"a", "b"} <= set(self.shared_operands):
            raise ValueError("implicit GEMM stages A and B in shared memory")
        if self.stage_k % self.tile:
            raise ValueError("stage_k must be a multiple of the wmma tile")

    @property
    def warps_per_cta(self) -> int:
        return (self.cta_tile_m // self.warp_tile_m) * (
            self.cta_tile_n // self.warp_tile_n
        )

    @property
    def warp_tiles_m(self) -> int:
        return self.warp_tile_m // self.tile

    @property
    def warp_tiles_n(self) -> int:
        return self.warp_tile_n // self.tile

    def shared_mem_per_cta(self, gpu: Optional[GPUConfig] = None) -> int:
        """Shared-memory bytes one CTA occupies (Section II-C cases).

        A/B stage buffers at the operand width, accumulator tile at
        the accumulator width.  Implicit GEMM stages a ``stage_k``-deep
        workspace chunk (the paper's 16 KB A buffer); explicit staging
        double-buffers one k-step.  ``gpu`` supplies the element widths
        and k-step depth (Volta defaults when omitted).
        """
        if gpu is None:
            gpu = TITAN_V
        total = 0
        a_depth = self.stage_k if self.implicit else gpu.tile_k * 2
        if "a" in self.shared_operands:
            total += self.cta_tile_m * a_depth * gpu.element_bytes
        if "b" in self.shared_operands:
            total += a_depth * self.cta_tile_n * gpu.element_bytes
        if "c" in self.shared_operands:
            total += self.cta_tile_m * self.cta_tile_n * gpu.acc_bytes
        return total

    def ctas_per_sm(self, gpu: GPUConfig) -> int:
        """Concurrent CTAs per SM under the shared-memory limit."""
        by_shared = gpu.shared_mem_bytes_per_sm // max(self.shared_mem_per_cta(gpu), 1)
        by_warps = gpu.max_warps_per_sm // self.warps_per_cta
        return max(1, min(by_shared, by_warps, gpu.max_ctas_per_sm))


#: Baseline kernel (C-only-in-shared, three CTAs per SM).
BASELINE_KERNEL = KernelConfig()

#: cuDNN-style implicit GEMM kernel (Section II-C: a 16 KB A stage, a
#: B stage, and the 32 KB C accumulator leave room for only one CTA
#: per SM — the TLP shortfall the paper's baseline avoids).
IMPLICIT_KERNEL = KernelConfig(shared_operands="abc", implicit=True)


def validate_arch(gpu: GPUConfig, kernel: KernelConfig) -> None:
    """Check a (GPU, kernel) pairing is internally consistent.

    The warp tile must decompose into whole MMA fragment tiles and the
    implicit-GEMM stage depth into whole k-steps; trace planning
    assumes both.  Raises ``ValueError`` naming the violated
    constraint.
    """
    if kernel.warp_tile_m % gpu.tile_m:
        raise ValueError(
            f"warp_tile_m={kernel.warp_tile_m} is not divisible by the "
            f"{gpu.name!r} fragment tile_m={gpu.tile_m}"
        )
    if kernel.warp_tile_n % gpu.tile_n:
        raise ValueError(
            f"warp_tile_n={kernel.warp_tile_n} is not divisible by the "
            f"{gpu.name!r} fragment tile_n={gpu.tile_n}"
        )
    if kernel.stage_k % gpu.tile_k:
        raise ValueError(
            f"stage_k={kernel.stage_k} is not divisible by the "
            f"{gpu.name!r} fragment tile_k={gpu.tile_k}"
        )


@dataclass(frozen=True)
class ArchPreset:
    """A named architecture point: GPU model plus matching kernel.

    Construction asserts the pairing is consistent (warp tile divisible
    by fragment tile, stage depth divisible by ``tile_k``) so a preset
    can never describe a geometry the planner would mis-tile.
    """

    name: str
    description: str
    gpu: GPUConfig
    kernel: KernelConfig = BASELINE_KERNEL

    def __post_init__(self) -> None:
        if self.gpu.name != self.name:
            raise ValueError(
                f"preset {self.name!r} wraps a GPUConfig named "
                f"{self.gpu.name!r}; the names must match for cache keys"
            )
        validate_arch(self.gpu, self.kernel)


#: The architecture zoo (fragment shapes per SNIPPETS Snippet 3's
#: generation table; machine numbers are class-representative).  The
#: "volta" entry wraps :data:`TITAN_V` unchanged, so the default
#: remains bit-identical to the paper baseline.
ARCHS: Dict[str, ArchPreset] = {
    preset.name: preset
    for preset in (
        ArchPreset(
            name="volta",
            description="Titan V (Table III): 16x16x16 fp16 WMMA",
            gpu=TITAN_V,
        ),
        ArchPreset(
            name="turing",
            description="TU102-class: 16x8x8 fp16 MMA, GDDR6",
            gpu=GPUConfig(
                name="turing",
                num_sms=68,
                clock_mhz=1350,
                max_warps_per_sm=32,
                l1_bytes=96 * 1024,
                l2_bytes=5632 * 1024,
                shared_mem_bytes_per_sm=64 * 1024,
                dram_bandwidth_gbps=616.0,
                tile_m=16,
                tile_n=8,
                tile_k=8,
            ),
        ),
        ArchPreset(
            name="ampere",
            description="A100-class: 16x8x16 fp16 MMA, HBM2e",
            gpu=GPUConfig(
                name="ampere",
                num_sms=108,
                clock_mhz=1410,
                l1_bytes=192 * 1024,
                l2_bytes=40 * 1024 * 1024,
                shared_mem_bytes_per_sm=164 * 1024,
                dram_bandwidth_gbps=1555.0,
                tile_m=16,
                tile_n=8,
                tile_k=16,
            ),
        ),
        ArchPreset(
            name="ampere-int8",
            description="A100-class INT8: 16x8x32 int8 MMA, int32 accum",
            gpu=GPUConfig(
                name="ampere-int8",
                num_sms=108,
                clock_mhz=1410,
                l1_bytes=192 * 1024,
                l2_bytes=40 * 1024 * 1024,
                shared_mem_bytes_per_sm=164 * 1024,
                dram_bandwidth_gbps=1555.0,
                # INT8 path doubles per-core MAC throughput.
                macs_per_tensor_core_cycle=128,
                tile_m=16,
                tile_n=8,
                tile_k=32,
                element_bytes=1,
            ),
        ),
        ArchPreset(
            name="hopper-fp8",
            description="H100-class FP8: 16x8x32 e4m3 MMA, fp32 accum",
            gpu=GPUConfig(
                name="hopper-fp8",
                num_sms=132,
                clock_mhz=1590,
                l1_bytes=256 * 1024,
                l2_bytes=50 * 1024 * 1024,
                shared_mem_bytes_per_sm=228 * 1024,
                dram_bandwidth_gbps=3350.0,
                macs_per_tensor_core_cycle=256,
                tile_m=16,
                tile_n=8,
                tile_k=32,
                element_bytes=1,
            ),
        ),
    )
}

DEFAULT_ARCH = "volta"


def arch_names() -> Tuple[str, ...]:
    """Preset names in registry order (volta first)."""
    return tuple(ARCHS)


def get_arch(name: Optional[str] = None) -> ArchPreset:
    """Look up a preset by name.

    ``None`` resolves the default, honouring the ``REPRO_ARCH``
    environment variable (used by the CI arch-matrix lane to steer
    arch-parametrised tests).  Unknown names raise ``ValueError``
    listing the registry.
    """
    if name is None:
        name = os.environ.get("REPRO_ARCH", DEFAULT_ARCH)
    try:
        return ARCHS[name]
    except KeyError:
        raise ValueError(
            f"unknown arch preset {name!r}; choose from {sorted(ARCHS)}"
        ) from None


@dataclass(frozen=True)
class SimulationOptions:
    """Reproduction-side knobs (DESIGN.md section 5).

    ``max_ctas`` caps how many of the representative SM's CTAs are
    traced; rates from the traced prefix extrapolate to the full
    layer.  ``id_mode`` selects the identification formula; ``pid``
    feeds the LHB tag's process ID field.
    """

    max_ctas: Optional[int] = None
    id_mode: IDMode = IDMode.CANONICAL
    merge_padding: bool = False
    lhb_lifetime: Optional[int] = 4096
    lhb_hashed_index: bool = True
    #: LHB lookup granularity.  "fragment" consults the LHB once per
    #: 16-half tensor-core load (the paper's load accounting: ~6.8M
    #: loads for YOLO C2, Section IV-D, matches fragment counting);
    #: "instruction" consults once per 16x16-tile warp instruction
    #: (one lookup per Table II row) — the coarser ablation.
    lhb_granularity: str = "fragment"
    detection_latency: int = 2
    pid: int = 0
    representative_sm: int = 0
    #: Vectorised replay selector.  "auto" uses the columnar fast path
    #: wherever it is exactly representable — baseline, direct-mapped,
    #: set-associative (any ways), oracle, and PID-tagged multi-kernel
    #: interleavings — and falls back to the event path only for a
    #: warm caller-supplied LHB (counted under ``fastpath.fallback``
    #: in :mod:`repro.obs`); the ``REPRO_FAST_PATH`` environment
    #: variable can force "on"/"off" when the option is left at
    #: "auto".  "on" raises for unsupported configurations instead of
    #: silently falling back; "off" always replays event by event.
    #: Both paths are bit-identical, so this never changes results —
    #: only wall-clock.
    fast_path: str = "auto"
    #: Simulation engine tier.  "auto" keeps today's exact behaviour
    #: (fast replay where representable, else event replay) unless the
    #: ``REPRO_ENGINE`` environment variable overrides it.  "analytic"
    #: answers covered configurations from the closed-form profile of
    #: :mod:`repro.analytic` — approximate traffic counters, exact LHB
    #: counters, no trace — and falls back to the exact tiering where
    #: uncovered (counted under ``analytic.fallback``).  "fast" pins
    #: the vectorised replay (event path only for its residual
    #: fallback); "event" pins the reference event replay.  The two
    #: exact tiers are bit-identical, so like ``fast_path`` the field
    #: is normalised out of cache keys; the analytic tier is
    #: approximate and therefore never touches the result cache.
    engine: str = "auto"

    def __post_init__(self) -> None:
        if self.lhb_granularity not in ("fragment", "instruction"):
            raise ValueError(
                f"lhb_granularity must be 'fragment' or 'instruction', "
                f"got {self.lhb_granularity!r}"
            )
        if self.fast_path not in ("auto", "on", "off"):
            raise ValueError(
                f"fast_path must be 'auto', 'on' or 'off', "
                f"got {self.fast_path!r}"
            )
        if self.engine not in ("auto", "analytic", "fast", "event"):
            raise ValueError(
                f"engine must be 'auto', 'analytic', 'fast' or 'event', "
                f"got {self.engine!r}"
            )
