"""The LDST path: replaying a kernel trace through LHB and caches.

This is the simulator's hot loop.  For every load event:

1. **Duplo** mode — workspace (matrix A) loads consult the detection
   unit (ID generation + LHB, modelled here by precomputed vectorised
   IDs feeding the :class:`~repro.core.lhb.LoadHistoryBuffer`); a hit
   eliminates the memory request (served "by the LHB");
2. surviving loads probe the L1, then the L2 slice, then DRAM,
   accumulating the Figure 11 service breakdown and byte traffic.

**WIR** mode replaces the ID with the raw fragment address, modelling
Kim et al.'s warp-instruction-reuse comparison: only loads to the
*same* address can be eliminated (Section V-B's discussion of why
Duplo outperforms it).  **Baseline** mode skips elimination entirely.

Output (matrix D) stores are streaming (no cache allocation) and are
accounted as DRAM write traffic directly.
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple

import numpy as np

from repro.conv.layer import ConvLayerSpec
from repro.core.compiler import build_convolution_info
from repro.core.idgen import IDGenerator
from repro.core.lhb import LoadHistoryBuffer
from repro.gpu.cache import SetAssociativeCache
from repro.gpu.config import GPUConfig, SimulationOptions, TITAN_V
from repro.gpu.isa import (
    KernelTrace,
    LOAD_A,
    LOAD_A_SHARED,
    LOAD_B,
    LOAD_B_SHARED,
    LOAD_INPUT,
    STORE_D,
    WORKSPACE_BASE,
)
from repro.gpu.stats import LayerStats, MemoryBreakdown


class EliminationMode(enum.Enum):
    """What sits in front of the memory hierarchy."""

    BASELINE = "baseline"
    DUPLO = "duplo"
    WIR = "wir"


def _load_ids(
    trace: KernelTrace,
    spec: ConvLayerSpec,
    options: SimulationOptions,
    mode: EliminationMode,
    load_kind: np.ndarray,
    load_addr: np.ndarray,
    gpu: GPUConfig = TITAN_V,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-load ``(consults_lhb, batch_id, element_id)`` arrays."""
    return load_ids_for(
        spec, options, mode, load_kind, load_addr, trace.lda, gpu
    )


def load_ids_for(
    spec: ConvLayerSpec,
    options: SimulationOptions,
    mode: EliminationMode,
    load_kind: np.ndarray,
    load_addr: np.ndarray,
    lda: int,
    gpu: GPUConfig = TITAN_V,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Trace-free twin of :func:`_load_ids`.

    Takes the load stream as plain arrays plus the workspace pitch so
    callers that never materialise a :class:`KernelTrace` — the
    analytic profiler — share the exact consult semantics of both
    replay paths (which ID generator, which loads consult, which
    fall through untranslated).  ``gpu`` supplies the fragment
    geometry: the WIR element shift and the workspace element width.
    """
    is_a = (load_kind == LOAD_A) | (load_kind == LOAD_A_SHARED)
    if mode is EliminationMode.WIR:
        # Same-address reuse: the "ID" is just the fragment address,
        # for both A and B loads (WIR is oblivious to workspaces).
        consults = np.ones(len(load_addr), dtype=bool)
        element = load_addr >> gpu.frag_shift  # fragment index
        batch = np.zeros(len(load_addr), dtype=np.int64)
        return consults, batch, element
    if mode is EliminationMode.BASELINE:
        zeros = np.zeros(len(load_addr), dtype=np.int64)
        return np.zeros(len(load_addr), dtype=bool), zeros, zeros

    info = build_convolution_info(spec, WORKSPACE_BASE, lda=lda, pid=options.pid)
    idgen = IDGenerator(
        spec=spec,
        workspace_base=info.workspace_base,
        lda=info.lda,
        element_bytes=gpu.element_bytes,
        mode=options.id_mode,
        merge_padding=options.merge_padding,
        row_align=gpu.tile_m,
    )
    consults = np.zeros(len(load_addr), dtype=bool)
    batch = np.zeros(len(load_addr), dtype=np.int64)
    element = np.zeros(len(load_addr), dtype=np.int64)
    if is_a.any():
        ok, b, e = idgen.generate_for_addresses(load_addr[is_a])
        consults[is_a] = ok
        batch[is_a] = b
        element[is_a] = e
    return consults, batch, element


def instruction_bases(trace: KernelTrace) -> np.ndarray:
    """Indices (into the trace) of each A-load instruction's base fragment.

    The base fragment's address is what the detection unit translates
    for the whole warp-level load in "instruction" granularity (one
    lookup per Table II row).
    """
    is_a = (trace.kind == LOAD_A) | (trace.kind == LOAD_A_SHARED)
    idx = np.nonzero(is_a)[0]
    if idx.size == 0:
        return idx
    ins = trace.instr[idx]
    first = np.ones(len(idx), dtype=bool)
    first[1:] = ins[1:] != ins[:-1]
    return idx[first]


def workspace_unique_ids(
    trace: KernelTrace,
    spec: ConvLayerSpec,
    options: SimulationOptions,
    gpu: GPUConfig = TITAN_V,
) -> Tuple[int, int]:
    """(lookups, distinct tags) across the trace's A loads.

    Feeds the theoretical hit-rate limit of Section V-C: the limit is
    one minus distinct-over-total at the LHB's lookup granularity.
    """
    is_a = (trace.kind == LOAD_A) | (trace.kind == LOAD_A_SHARED)
    if options.lhb_granularity == "fragment":
        bases = np.nonzero(is_a)[0]
    else:
        bases = instruction_bases(trace)
    if bases.size == 0:
        return 0, 0
    info = build_convolution_info(spec, WORKSPACE_BASE, lda=trace.lda, pid=options.pid)
    idgen = IDGenerator(
        spec=spec,
        workspace_base=info.workspace_base,
        lda=info.lda,
        element_bytes=gpu.element_bytes,
        mode=options.id_mode,
        merge_padding=options.merge_padding,
        row_align=gpu.tile_m,
    )
    ok, batch, element = idgen.generate_for_addresses(trace.address[bases])
    keys = batch[ok] * (1 << 44) + element[ok]
    uniques = int(np.unique(keys).size) + int((~ok).sum())
    return int(bases.size), uniques


def summarise_load_mix(
    trace: KernelTrace,
    spec: ConvLayerSpec,
    options: SimulationOptions,
    load_kind: np.ndarray,
    gpu: GPUConfig = TITAN_V,
) -> Tuple[int, int, int, int, int, int]:
    """Load/store mix counters shared by the event and fast paths.

    Returns ``(stores, loads_a, loads_b, loads_input, workspace
    instructions, unique workspace IDs)`` for the traced portion, so
    both replay implementations account the stream identically.
    """
    stores = int((trace.kind == STORE_D).sum())
    loads_a = int(
        ((load_kind == LOAD_A) | (load_kind == LOAD_A_SHARED)).sum()
    )
    loads_input = int((load_kind == LOAD_INPUT).sum())
    loads_b = len(load_kind) - loads_a - loads_input
    ws_instrs, unique_ids = workspace_unique_ids(trace, spec, options, gpu)
    return stores, loads_a, loads_b, loads_input, ws_instrs, unique_ids


def replay_trace(
    trace: KernelTrace,
    spec: ConvLayerSpec,
    gpu: GPUConfig = TITAN_V,
    options: SimulationOptions = SimulationOptions(),
    mode: EliminationMode = EliminationMode.DUPLO,
    lhb: Optional[LoadHistoryBuffer] = None,
    l2_share_sms: Optional[int] = None,
) -> LayerStats:
    """Replay one SM's trace through the LHB and memory hierarchy.

    Returns SM-level, traced-portion statistics (the simulator
    extrapolates and attaches timing).  The L2 is modelled at full
    capacity against this SM's stream: for the shared operands
    (filters) every SM reads the same lines so one copy serves all,
    and the private workspace stream is far larger than any slice
    would hold anyway.  ``l2_share_sms`` overrides this with a
    capacity slice (contention ablation).
    """
    if mode is not EliminationMode.BASELINE and lhb is None:
        lhb = LoadHistoryBuffer(lifetime=options.lhb_lifetime)
    # Zero-copy traces keep ``address`` as a strided memmap view; this
    # replay and ``workspace_unique_ids`` each walk the full column, so
    # materialise it once.
    trace = trace.densify()
    l2_capacity = gpu.l2_bytes
    if l2_share_sms is not None:
        l2_capacity = max(
            gpu.l2_bytes // l2_share_sms, gpu.l2_assoc * gpu.l2_line_bytes
        )

    # Hits within a fill latency of the line's miss are MSHR merges
    # (Figure 8's MSHR; same traffic, different latency attribution).
    l1 = SetAssociativeCache(
        gpu.l1_bytes, gpu.l1_assoc, gpu.l1_line_bytes,
        mshr_window=gpu.l1_latency,
    )
    l2 = SetAssociativeCache(l2_capacity, gpu.l2_assoc, gpu.l2_line_bytes)

    is_load = trace.kind != STORE_D
    load_kind = trace.kind[is_load]
    load_addr = trace.address[is_load]
    consults, batch, element = _load_ids(
        trace, spec, options, mode, load_kind, load_addr, gpu
    )

    # Hot loop inputs as plain Python lists (fastest CPython iteration).
    consults_l = consults.tolist()
    batch_l = batch.tolist()
    element_l = element.tolist()
    lines_l = (load_addr >> l1.line_shift).tolist()
    instr_l = trace.instr[is_load].tolist()
    is_shared_l = (
        (load_kind == LOAD_A_SHARED) | (load_kind == LOAD_B_SHARED)
    ).tolist()

    served_lhb = 0
    served_l1 = 0
    served_l2 = 0
    served_dram = 0
    served_shared = 0
    line_bytes = gpu.l1_line_bytes
    dram_read_bytes = 0

    lhb_access = lhb.access if lhb is not None else None
    l1_access = l1.access
    l2_access = l2.access

    if options.lhb_granularity == "fragment":
        # One LHB lookup per 16-half tensor-core load (the paper's
        # load accounting and the element-level IDs of Section III).
        for i in range(len(load_kind)):
            if consults_l[i] and lhb_access(element_l[i], batch_l[i], i).hit:
                served_lhb += 1
                continue
            if is_shared_l[i]:
                served_shared += 1
                continue
            line = lines_l[i]
            if l1_access(line):
                served_l1 += 1
            elif l2_access(line):
                served_l2 += 1
            else:
                served_dram += 1
                dram_read_bytes += line_bytes
    else:
        # One LHB lookup per warp-level instruction (its base
        # fragment); the outcome applies to all fragments it covers.
        prev_instr = -1
        eliminated = False
        for i in range(len(load_kind)):
            ins = instr_l[i]
            if ins != prev_instr:
                prev_instr = ins
                eliminated = bool(
                    consults_l[i]
                    and lhb_access(element_l[i], batch_l[i], ins).hit
                )
            if eliminated:
                served_lhb += 1
                continue
            if is_shared_l[i]:
                served_shared += 1
                continue
            line = lines_l[i]
            if l1_access(line):
                served_l1 += 1
            elif l2_access(line):
                served_l2 += 1
            else:
                served_dram += 1
                dram_read_bytes += line_bytes

    stores, loads_a, loads_b, loads_input, ws_instrs, unique_ids = (
        summarise_load_mix(trace, spec, options, load_kind, gpu)
    )

    stats = LayerStats(
        loads_total=len(load_kind),
        loads_workspace=loads_a,
        loads_filter=loads_b,
        loads_input=loads_input,
        stores=stores,
        workspace_instructions=ws_instrs,
        lhb_lookups=lhb.stats.lookups if lhb is not None else 0,
        lhb_hits=lhb.stats.hits if lhb is not None else 0,
        eliminated_fragments=served_lhb,
        unique_workspace_ids=unique_ids,
        l1_accesses=l1.stats.accesses,
        l1_hits=l1.stats.hits,
        l2_accesses=l2.stats.accesses,
        l2_hits=l2.stats.hits,
        dram_read_bytes=dram_read_bytes,
        dram_write_bytes=stores * gpu.store_frag_bytes,
        mma_ops=trace.mma_ops,
        breakdown=MemoryBreakdown(
            lhb=served_lhb,
            l1=served_l1,
            l2=served_l2,
            dram=served_dram,
            shared=served_shared,
        ),
    )
    return stats
