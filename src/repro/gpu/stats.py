"""Statistics containers shared by the simulator and analysis layers."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable


@dataclass
class MemoryBreakdown:
    """Which component served each data request (Figure 11).

    Counts are warp-level fragment loads serviced by each level; the
    LHB row is Duplo's elimination (zero in the baseline).
    """

    lhb: int = 0
    l1: int = 0
    l2: int = 0
    dram: int = 0
    shared: int = 0  # implicit-GEMM shared-memory service

    @property
    def total(self) -> int:
        return self.lhb + self.l1 + self.l2 + self.dram + self.shared

    def fractions(self) -> Dict[str, float]:
        """Normalised service shares, as the Figure 11 stacked bars."""
        total = self.total
        keys = ("lhb", "l1", "l2", "dram", "shared")
        if total == 0:
            return {k: 0.0 for k in keys}
        return {k: getattr(self, k) / total for k in keys}

    def scaled(self, factor: float) -> "MemoryBreakdown":
        return MemoryBreakdown(
            lhb=round(self.lhb * factor),
            l1=round(self.l1 * factor),
            l2=round(self.l2 * factor),
            dram=round(self.dram * factor),
            shared=round(self.shared * factor),
        )


@dataclass
class LayerStats:
    """Everything measured while replaying one layer under one config.

    All counts are full-layer (extrapolated from the traced portion
    when a CTA cap was in effect) and cover the representative SM;
    GPU-level byte totals multiply by the SM count where noted.
    """

    # Load accounting.  Fragment counts (32-byte units of traffic) and
    # instruction counts (warp-level wmma loads, the LHB's granularity)
    # are tracked separately.
    loads_total: int = 0  # fragments
    loads_workspace: int = 0  # fragments
    loads_filter: int = 0  # fragments
    loads_input: int = 0  # implicit-GEMM global staging fetches
    stores: int = 0
    workspace_instructions: int = 0
    lhb_lookups: int = 0  # instructions
    lhb_hits: int = 0  # instructions
    eliminated_fragments: int = 0
    unique_workspace_ids: int = 0  # distinct instruction tags

    # Memory hierarchy (accesses are fragment-granular).
    l1_accesses: int = 0
    l1_hits: int = 0
    l2_accesses: int = 0
    l2_hits: int = 0
    dram_read_bytes: int = 0
    dram_write_bytes: int = 0

    # Compute.
    mma_ops: int = 0

    # Timing (filled by repro.gpu.timing).
    cycles: float = 0.0
    cycle_components: Dict[str, float] = field(default_factory=dict)

    breakdown: MemoryBreakdown = field(default_factory=MemoryBreakdown)

    @property
    def eliminated_loads(self) -> int:
        """Load instructions Duplo removed (== LHB hits)."""
        return self.lhb_hits

    @property
    def lhb_hit_rate(self) -> float:
        """Figure 10's metric: hits per workspace load instruction."""
        if not self.lhb_lookups:
            return 0.0
        return self.lhb_hits / self.lhb_lookups

    @property
    def elimination_rate(self) -> float:
        """Fraction of tensor-core load traffic eliminated (Section V-B)."""
        if not self.loads_total:
            return 0.0
        return self.eliminated_fragments / self.loads_total

    @property
    def theoretical_hit_limit(self) -> float:
        """Upper bound on the LHB hit rate from duplication alone.

        ``1 - unique/total`` over workspace load instructions — the
        paper's "theoretical upper limit" (88.9% for their layer mix,
        computed at their granularity; see EXPERIMENTS.md).
        """
        if not self.workspace_instructions:
            return 0.0
        return 1.0 - self.unique_workspace_ids / self.workspace_instructions

    @property
    def shared_accesses(self) -> int:
        """Fragments served by shared memory (implicit GEMM)."""
        return self.breakdown.shared

    @property
    def l1_hit_rate(self) -> float:
        return self.l1_hits / self.l1_accesses if self.l1_accesses else 0.0

    @property
    def l2_hit_rate(self) -> float:
        return self.l2_hits / self.l2_accesses if self.l2_accesses else 0.0

    def scaled(self, factor: float) -> "LayerStats":
        """Extrapolate traced counts to the full layer."""
        return LayerStats(
            loads_total=round(self.loads_total * factor),
            loads_workspace=round(self.loads_workspace * factor),
            loads_filter=round(self.loads_filter * factor),
            loads_input=round(self.loads_input * factor),
            stores=round(self.stores * factor),
            workspace_instructions=round(self.workspace_instructions * factor),
            lhb_lookups=round(self.lhb_lookups * factor),
            lhb_hits=round(self.lhb_hits * factor),
            eliminated_fragments=round(self.eliminated_fragments * factor),
            unique_workspace_ids=round(self.unique_workspace_ids * factor),
            l1_accesses=round(self.l1_accesses * factor),
            l1_hits=round(self.l1_hits * factor),
            l2_accesses=round(self.l2_accesses * factor),
            l2_hits=round(self.l2_hits * factor),
            dram_read_bytes=round(self.dram_read_bytes * factor),
            dram_write_bytes=round(self.dram_write_bytes * factor),
            mma_ops=round(self.mma_ops * factor),
            cycles=self.cycles * factor,
            cycle_components=dict(self.cycle_components),
            breakdown=self.breakdown.scaled(factor),
        )


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, the aggregation the paper's "Gmean" bars use."""
    vals = [v for v in values]
    if not vals:
        raise ValueError("geometric mean of no values")
    if any(v <= 0 for v in vals):
        raise ValueError(f"geometric mean needs positive values, got {vals}")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
