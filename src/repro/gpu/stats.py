"""Statistics containers shared by the simulator and analysis layers."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable


@dataclass
class MemoryBreakdown:
    """Which component served each data request (Figure 11).

    Counts are warp-level fragment loads serviced by each level; the
    LHB row is Duplo's elimination (zero in the baseline).
    """

    lhb: int = 0
    l1: int = 0
    l2: int = 0
    dram: int = 0
    shared: int = 0  # implicit-GEMM shared-memory service

    @property
    def total(self) -> int:
        return self.lhb + self.l1 + self.l2 + self.dram + self.shared

    def fractions(self) -> Dict[str, float]:
        """Normalised service shares, as the Figure 11 stacked bars."""
        total = self.total
        keys = ("lhb", "l1", "l2", "dram", "shared")
        if total == 0:
            return {k: 0.0 for k in keys}
        return {k: getattr(self, k) / total for k in keys}

    def scaled(self, factor: float) -> "MemoryBreakdown":
        return MemoryBreakdown(
            lhb=round(self.lhb * factor),
            l1=round(self.l1 * factor),
            l2=round(self.l2 * factor),
            dram=round(self.dram * factor),
            shared=round(self.shared * factor),
        )


@dataclass
class LayerStats:
    """Everything measured while replaying one layer under one config.

    All counts are full-layer (extrapolated from the traced portion
    when a CTA cap was in effect) and cover the representative SM;
    GPU-level byte totals multiply by the SM count where noted.
    """

    # Load accounting.  Fragment counts (32-byte units of traffic) and
    # instruction counts (warp-level wmma loads, the LHB's granularity)
    # are tracked separately.
    loads_total: int = 0  # fragments
    loads_workspace: int = 0  # fragments
    loads_filter: int = 0  # fragments
    loads_input: int = 0  # implicit-GEMM global staging fetches
    stores: int = 0
    workspace_instructions: int = 0
    lhb_lookups: int = 0  # instructions
    lhb_hits: int = 0  # instructions
    eliminated_fragments: int = 0
    unique_workspace_ids: int = 0  # distinct instruction tags

    # Memory hierarchy (accesses are fragment-granular).
    l1_accesses: int = 0
    l1_hits: int = 0
    l2_accesses: int = 0
    l2_hits: int = 0
    dram_read_bytes: int = 0
    dram_write_bytes: int = 0

    # Compute.
    mma_ops: int = 0

    # Timing (filled by repro.gpu.timing).
    cycles: float = 0.0
    cycle_components: Dict[str, float] = field(default_factory=dict)

    breakdown: MemoryBreakdown = field(default_factory=MemoryBreakdown)

    @property
    def eliminated_loads(self) -> int:
        """Load instructions Duplo removed (== LHB hits)."""
        return self.lhb_hits

    @property
    def lhb_hit_rate(self) -> float:
        """Figure 10's metric: hits per workspace load instruction."""
        if not self.lhb_lookups:
            return 0.0
        return self.lhb_hits / self.lhb_lookups

    @property
    def elimination_rate(self) -> float:
        """Fraction of tensor-core load traffic eliminated (Section V-B)."""
        if not self.loads_total:
            return 0.0
        return self.eliminated_fragments / self.loads_total

    @property
    def theoretical_hit_limit(self) -> float:
        """Upper bound on the LHB hit rate from duplication alone.

        ``1 - unique/total`` over workspace load instructions — the
        paper's "theoretical upper limit" (88.9% for their layer mix,
        computed at their granularity; see EXPERIMENTS.md).
        """
        if not self.workspace_instructions:
            return 0.0
        return 1.0 - self.unique_workspace_ids / self.workspace_instructions

    @property
    def shared_accesses(self) -> int:
        """Fragments served by shared memory (implicit GEMM)."""
        return self.breakdown.shared

    @property
    def l1_hit_rate(self) -> float:
        return self.l1_hits / self.l1_accesses if self.l1_accesses else 0.0

    @property
    def l2_hit_rate(self) -> float:
        return self.l2_hits / self.l2_accesses if self.l2_accesses else 0.0

    def scaled(self, factor: float) -> "LayerStats":
        """Extrapolate traced counts to the full layer.

        Scaling is invariant-preserving: primary counters are scaled in
        float and rounded once, while dependent counters are *derived*
        from the scaled primaries whenever the corresponding identity
        held on the unscaled stats.  Independent rounding used to break
        the accounting for small fractional factors (``lhb_hits >
        lhb_lookups``, load-mix parts not summing to ``loads_total``,
        service breakdown drifting from the cache counters); a derived
        counter may therefore differ by +-1 from its independently
        rounded value — the identities win.  Identities the unscaled
        stats do not satisfy (hand-built partial stats) are left alone
        and every counter falls back to plain rounding.
        """

        def r(value: float) -> int:
            return round(value * factor)

        loads_workspace = r(self.loads_workspace)
        loads_filter = r(self.loads_filter)
        loads_input = r(self.loads_input)
        mix = self.loads_workspace + self.loads_filter + self.loads_input
        if mix == self.loads_total:
            loads_total = loads_workspace + loads_filter + loads_input
        else:
            loads_total = r(self.loads_total)

        stores = r(self.stores)
        workspace_instructions = r(self.workspace_instructions)
        lhb_lookups = r(self.lhb_lookups)
        lhb_hits = r(self.lhb_hits)
        if self.lhb_hits <= self.lhb_lookups:
            lhb_hits = min(lhb_hits, lhb_lookups)
        unique_workspace_ids = r(self.unique_workspace_ids)
        if self.unique_workspace_ids <= self.workspace_instructions:
            unique_workspace_ids = min(
                unique_workspace_ids, workspace_instructions
            )

        eliminated = r(self.eliminated_fragments)
        shared = r(self.breakdown.shared)
        if self.eliminated_fragments <= self.loads_total:
            eliminated = min(eliminated, loads_total)
        served_cached = (
            self.loads_total - self.eliminated_fragments - self.breakdown.shared
        )
        if self.l1_accesses == served_cached:
            shared = min(shared, loads_total - eliminated)
            l1_accesses = loads_total - eliminated - shared
        else:
            l1_accesses = r(self.l1_accesses)
        l1_hits = r(self.l1_hits)
        if self.l1_hits <= self.l1_accesses:
            l1_hits = min(l1_hits, l1_accesses)
        if self.l2_accesses == self.l1_accesses - self.l1_hits:
            l2_accesses = l1_accesses - l1_hits
        else:
            l2_accesses = r(self.l2_accesses)
        l2_hits = r(self.l2_hits)
        if self.l2_hits <= self.l2_accesses:
            l2_hits = min(l2_hits, l2_accesses)

        # Byte traffic follows the event counts it is made of (128 B
        # per L2 miss, 64 B per output store) rather than rounding on
        # its own and drifting from them.
        misses0 = self.l2_accesses - self.l2_hits
        if misses0 > 0 and self.dram_read_bytes % misses0 == 0:
            dram_read_bytes = (l2_accesses - l2_hits) * (
                self.dram_read_bytes // misses0
            )
        else:
            dram_read_bytes = r(self.dram_read_bytes)
        if self.stores > 0 and self.dram_write_bytes % self.stores == 0:
            dram_write_bytes = stores * (self.dram_write_bytes // self.stores)
        else:
            dram_write_bytes = r(self.dram_write_bytes)

        breakdown = MemoryBreakdown(
            lhb=eliminated
            if self.breakdown.lhb == self.eliminated_fragments
            else r(self.breakdown.lhb),
            l1=l1_hits if self.breakdown.l1 == self.l1_hits else r(self.breakdown.l1),
            l2=l2_hits if self.breakdown.l2 == self.l2_hits else r(self.breakdown.l2),
            dram=l2_accesses - l2_hits
            if self.breakdown.dram == self.l2_accesses - self.l2_hits
            else r(self.breakdown.dram),
            shared=shared,
        )

        return LayerStats(
            loads_total=loads_total,
            loads_workspace=loads_workspace,
            loads_filter=loads_filter,
            loads_input=loads_input,
            stores=stores,
            workspace_instructions=workspace_instructions,
            lhb_lookups=lhb_lookups,
            lhb_hits=lhb_hits,
            eliminated_fragments=eliminated,
            unique_workspace_ids=unique_workspace_ids,
            l1_accesses=l1_accesses,
            l1_hits=l1_hits,
            l2_accesses=l2_accesses,
            l2_hits=l2_hits,
            dram_read_bytes=dram_read_bytes,
            dram_write_bytes=dram_write_bytes,
            mma_ops=r(self.mma_ops),
            cycles=self.cycles * factor,
            cycle_components=dict(self.cycle_components),
            breakdown=breakdown,
        )


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, the aggregation the paper's "Gmean" bars use."""
    vals = [v for v in values]
    if not vals:
        raise ValueError("geometric mean of no values")
    if any(v <= 0 for v in vals):
        raise ValueError(f"geometric mean needs positive values, got {vals}")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
