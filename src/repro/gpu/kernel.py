"""Tensor-core GEMM kernel model: the load/store trace of one SM.

Reimplements the structure of the paper's baseline kernel (NVIDIA SDK
``cudaTensorCoreGemm``, configured per Section II-C with only the C
accumulator in shared memory, three CTAs per SM):

* the GEMM grid is tiled into ``cta_tile_m x cta_tile_n`` CTA blocks;
  CTAs are numbered M-fastest and distributed to SMs round-robin
  (the representative-SM sampling of DESIGN.md);
* each CTA runs ``warps_per_cta`` warps in an (m x n) grid, each
  owning a ``warp_tile_m x warp_tile_n`` output patch;
* per ``tile_k``-deep k-step, a warp issues tensor-core loads for its
  A (workspace) and B (filter) fragments.  One event is one
  ``tile_k``-element fragment (``GPUConfig.frag_bytes`` — 32 bytes on
  Volta's 16x16x16 fp16 shape; narrower on the Turing/Ampere/Hopper
  presets); the *octet duplication* of Section II-B makes every
  fragment appear twice back-to-back;
* warps are interleaved greedily-then-oldest (one k-step burst per
  warp per round, oldest CTA first), which is how the loads of
  different warps interleave in front of the LHB;
* after the k-loop each warp stores its fp32 D tiles.

Matrix A (the lowered workspace) is row-major with leading dimension
``lda`` (K padded to ``tile_k``); matrix B is column-major (filters) so
a tensor-core "column of B" fragment is contiguous; D is row-major at
the accumulator width.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.conv.layer import ConvLayerSpec
from repro.conv.lowering import entries_to_padded_flat, workspace_shape
from repro.gpu.config import (
    BASELINE_KERNEL,
    GPUConfig,
    KernelConfig,
    SimulationOptions,
    TITAN_V,
    validate_arch,
)
from repro.gpu.isa import (
    FILTER_BASE,
    INPUT_BASE,
    KernelTrace,
    LOAD_A,
    LOAD_A_SHARED,
    LOAD_B,
    LOAD_B_SHARED,
    LOAD_INPUT,
    OUTPUT_BASE,
    STORE_D,
    TraceBlock,
    WORKSPACE_BASE,
)
from repro.gpu.scheduler import gto_turns, waves

#: Environment override selecting the trace generator: ``loop`` keeps
#: the legacy per-turn event loop (one release of differential cover
#: for the closed-form synthesizer), anything else — the default — uses
#: the vectorised columnar synthesis.  Both are bit-identical; the
#: ``REPRO_TRACE_GEN=loop`` CI lane proves it on every push.
TRACE_GEN_ENV = "REPRO_TRACE_GEN"

#: Environment override forcing a small streaming block size (events
#: per yielded :class:`TraceBlock`) through ``generate_sm_trace``; the
#: assembled trace is bit-identical for any value by construction.
TRACE_BLOCK_ENV = "REPRO_TRACE_BLOCK"

#: Default block budget for streaming consumers that do not choose one.
DEFAULT_BLOCK_EVENTS = 1 << 20


def _align(x: int, a: int) -> int:
    return -(-x // a) * a


@dataclass(frozen=True)
class GemmGeometry:
    """Padded GEMM dimensions and allocation pitches for one layer.

    Padding follows the architecture's fragment tile: M to ``tile_m``,
    N to ``tile_n``, K to ``tile_k`` (square 16 on the Volta default).
    """

    m: int
    n: int
    k: int
    m_pad: int
    n_pad: int
    k_pad: int
    lda: int  # A row pitch (elements)
    ldb: int  # B column pitch (elements, column-major)
    ldd: int  # D row pitch (elements)
    tile_k: int = 16  # k-depth of one MMA step

    @property
    def k_steps(self) -> int:
        return self.k_pad // self.tile_k


def gemm_geometry(
    spec: ConvLayerSpec, gpu: GPUConfig = TITAN_V
) -> GemmGeometry:
    """Compute padded dimensions the kernel allocates for ``spec``."""
    rows, cols = workspace_shape(spec)
    g = spec.gemm_shape
    assert g.m == rows and g.k == cols
    return GemmGeometry(
        m=g.m,
        n=g.n,
        k=g.k,
        m_pad=_align(g.m, gpu.tile_m),
        n_pad=_align(g.n, gpu.tile_n),
        k_pad=_align(g.k, gpu.tile_k),
        lda=_align(g.k, gpu.tile_k),
        ldb=_align(g.k, gpu.tile_k),
        ldd=_align(g.n, gpu.tile_n),
        tile_k=gpu.tile_k,
    )


@dataclass(frozen=True)
class _WarpPlan:
    """Precomputed per-(CTA, warp) fragment address templates.

    A-fragment addresses at k-step t are ``a_base + frag_bytes * t``
    and B-fragment addresses ``b_base + frag_bytes * t`` (one k-step
    advances ``tile_k`` elements along both pitches — 32 bytes on
    Volta).  ``a_group`` / ``b_group`` assign each fragment to its
    warp-level instruction (one per MMA tile per octet copy); emission
    offsets them by a running global instruction counter.
    """

    a_base: np.ndarray
    b_base: np.ndarray
    a_group: np.ndarray
    b_group: np.ndarray
    a_instrs: int
    b_instrs: int
    store_addr: np.ndarray
    mma_per_step: int


class _CtaTemplates:
    """Memoised relative (base-0) fragment patterns shared across warps.

    A warp's valid tiles are fully determined by *how many* survive the
    guard (bases ``m0 + i*tile < limit`` form a prefix, since bases are
    increasing), so every per-warp array is an affine shift of a
    pattern keyed only by that count: fragment addresses shift by
    ``origin * pitch``, store addresses by
    ``(m0 * ldd + n0) * acc_bytes``, and the instruction groups are
    position-independent.  That collapses planning to one scalar-add
    per array instead of rebuilding arange/repeat products for every
    (CTA, warp).

    The two operand sides decompose differently on non-square
    architectures: an A tile spans ``tile_m`` workspace rows (one
    fragment per row), a B tile ``tile_n`` filter columns (one fragment
    per column), so :meth:`fragments` takes the per-side tile edge.
    """

    def __init__(self, geom: GemmGeometry, gpu: GPUConfig) -> None:
        self._geom = geom
        self._gpu = gpu
        self._frag: Dict[
            Tuple[int, int, int], Tuple[np.ndarray, np.ndarray]
        ] = {}
        self._store: Dict[Tuple[int, int], np.ndarray] = {}

    def fragments(
        self, origin: int, tiles: int, limit: int, pitch: int, tile: int
    ) -> Tuple[np.ndarray, np.ndarray, int, int]:
        """``(addresses - base, groups, instrs, valid_tiles)`` for one side.

        ``tile`` is the side's fragment-tile edge (``tile_m`` for A,
        ``tile_n`` for B): both the per-tile stride along the operand
        extent and the number of fragments per tile.
        """
        valid = max(0, min(tiles, -(-(limit - origin) // tile)))
        key = (valid, pitch, tile)
        cached = self._frag.get(key)
        if cached is None:
            rows = (
                tile * np.arange(valid, dtype=np.int64)[:, None]
                + np.arange(tile, dtype=np.int64)
            )
            values = np.repeat(rows, 2, axis=0).reshape(-1)
            groups = np.repeat(
                np.arange(2 * valid, dtype=np.int64), tile
            )
            cached = (values * pitch, groups)
            self._frag[key] = cached
        rel_addr, groups = cached
        return origin * pitch + rel_addr, groups, 2 * valid, valid

    def stores(self, m0: int, n0: int, ta: int, tb: int) -> np.ndarray:
        """Store addresses for ``ta`` row-tiles x ``tb`` col-tiles.

        One event per accumulator row: ``tile_m`` rows per tile, each
        ``tile_n`` accumulators wide (``GPUConfig.store_frag_bytes``).
        """
        key = (ta, tb)
        rel = self._store.get(key)
        if rel is None:
            tile_m, tile_n = self._gpu.tile_m, self._gpu.tile_n
            acc = self._gpu.acc_bytes
            rows = (
                tile_m * np.arange(ta, dtype=np.int64)[:, None]
                + np.arange(tile_m, dtype=np.int64)
            )
            cols = tile_n * np.arange(tb, dtype=np.int64)
            rel = (
                (rows[:, None, :] * self._geom.ldd + cols[None, :, None])
                * acc
            ).reshape(-1)
            self._store[key] = rel
        return (
            OUTPUT_BASE
            + (m0 * self._geom.ldd + n0) * self._gpu.acc_bytes
            + rel
        )


def _plan_cta(
    geom: GemmGeometry,
    kernel: KernelConfig,
    gpu: GPUConfig,
    cta_m: int,
    cta_n: int,
    templates: Optional[_CtaTemplates] = None,
) -> List[_WarpPlan]:
    """Build per-warp address templates for the CTA at block (m, n)."""
    warps_n = kernel.cta_tile_n // kernel.warp_tile_n
    elem = gpu.element_bytes
    if templates is None:
        templates = _CtaTemplates(geom, gpu)
    plans = []
    for w in range(kernel.warps_per_cta):
        wm, wn = divmod(w, warps_n)
        m0 = cta_m * kernel.cta_tile_m + wm * kernel.warp_tile_m
        n0 = cta_n * kernel.cta_tile_n + wn * kernel.warp_tile_n

        a_rel, a_group, a_instrs, ta = templates.fragments(
            m0, kernel.warp_tile_m // gpu.tile_m, geom.m,
            geom.lda * elem, gpu.tile_m,
        )
        b_rel, b_group, b_instrs, tb = templates.fragments(
            n0, kernel.warp_tile_n // gpu.tile_n, geom.n,
            geom.ldb * elem, gpu.tile_n,
        )
        plans.append(
            _WarpPlan(
                a_base=WORKSPACE_BASE + a_rel,
                b_base=FILTER_BASE + b_rel,
                a_group=a_group,
                b_group=b_group,
                a_instrs=a_instrs,
                b_instrs=b_instrs,
                store_addr=templates.stores(m0, n0, ta, tb),
                mma_per_step=ta * tb,
            )
        )
    return plans


def sm_cta_blocks(
    geom: GemmGeometry,
    kernel: KernelConfig,
    gpu: GPUConfig,
    sm_index: int,
) -> Tuple[List[Tuple[int, int]], int]:
    """CTA blocks assigned to one SM, plus the total grid size.

    CTAs are numbered with the M block index fastest and handed to
    SMs round-robin, the dispatch order that puts neighbouring
    workspace rows on the same SM.
    """
    grid_m = -(-geom.m // kernel.cta_tile_m)
    grid_n = -(-geom.n // kernel.cta_tile_n)
    total = grid_m * grid_n
    blocks = [
        (cta % grid_m, cta // grid_m)
        for cta in range(sm_index, total, gpu.num_sms)
    ]
    return blocks, total


class _TraceBuilder:
    """Accumulates parallel event arrays with running instruction IDs."""

    def __init__(self) -> None:
        self._kind: List[np.ndarray] = []
        self._address: List[np.ndarray] = []
        self._warp: List[np.ndarray] = []
        self._instr: List[np.ndarray] = []
        self.next_instr = 0

    def emit(
        self,
        kind: int,
        addresses: np.ndarray,
        warp: int,
        groups: Optional[np.ndarray] = None,
        num_instrs: Optional[int] = None,
    ) -> None:
        """Append one burst.

        ``groups`` assigns fragments to instructions relative to the
        running counter; without it, every fragment is its own
        instruction (cooperative staging / stores).
        """
        n = len(addresses)
        if n == 0:
            return
        if groups is None:
            groups = np.arange(n, dtype=np.int64)
            num_instrs = n
        self._kind.append(np.full(n, kind, dtype=np.uint8))
        self._address.append(np.asarray(addresses, dtype=np.int64))
        self._warp.append(np.full(n, warp, dtype=np.int32))
        self._instr.append(groups + self.next_instr)
        self.next_instr += num_instrs

    def arrays(self):
        empty_i64 = np.empty(0, dtype=np.int64)
        return (
            np.concatenate(self._kind) if self._kind else np.empty(0, np.uint8),
            np.concatenate(self._address) if self._address else empty_i64,
            np.concatenate(self._warp) if self._warp else np.empty(0, np.int32),
            np.concatenate(self._instr) if self._instr else empty_i64,
        )


def _stage_input_fragments(
    spec: ConvLayerSpec,
    geom: GemmGeometry,
    row_range: Tuple[int, int],
    col_range: Tuple[int, int],
    gpu: GPUConfig = TITAN_V,
) -> np.ndarray:
    """Global input fetches staging one implicit-GEMM shared chunk.

    The chunk covers workspace rows ``row_range`` x columns
    ``col_range``; the cooperative copy fetches each *unique*
    fragment-sized block of the unexpanded NHWC input exactly once
    (padding positions are materialised as zeros without any fetch).
    """
    eff = spec.effective_spec()
    r0, r1 = row_range
    c0, c1 = col_range
    rows = np.arange(r0, min(r1, geom.m))
    cols = np.arange(c0, min(c1, geom.k))
    if rows.size == 0 or cols.size == 0:
        return np.empty(0, dtype=np.int64)
    rr, cc = np.meshgrid(rows, cols, indexing="ij")
    batch, element = entries_to_padded_flat(spec, rr.ravel(), cc.ravel())

    padded_w = eff.in_width + 2 * eff.pad
    py, rem = np.divmod(element, padded_w * eff.in_channels)
    px, ch = np.divmod(rem, eff.in_channels)
    iy = py - eff.pad
    ix = px - eff.pad
    interior = (
        (iy >= 0) & (iy < eff.in_height) & (ix >= 0) & (ix < eff.in_width)
    )
    flat = (
        ((batch * eff.in_height + iy) * eff.in_width + ix) * eff.in_channels
        + ch
    )
    frag = gpu.frag_bytes
    blocks = np.unique(flat[interior] * gpu.element_bytes // frag)
    return INPUT_BASE + blocks * frag


def _generate_sm_trace_loop(
    spec: ConvLayerSpec,
    gpu: GPUConfig = TITAN_V,
    kernel: KernelConfig = BASELINE_KERNEL,
    options: SimulationOptions = SimulationOptions(),
) -> KernelTrace:
    """Legacy per-turn event-loop generator (``REPRO_TRACE_GEN=loop``).

    The original emission loop, kept verbatim for one release as the
    differential reference of the closed-form synthesizer: the fuzz
    suite asserts :func:`generate_sm_trace` reproduces this trace
    bit-identically for every configuration.
    """
    validate_arch(gpu, kernel)
    geom = gemm_geometry(spec, gpu)
    blocks, total_ctas = sm_cta_blocks(geom, kernel, gpu, options.representative_sm)
    assigned = len(blocks)
    if options.max_ctas is not None:
        blocks = blocks[: options.max_ctas]

    concurrency = kernel.ctas_per_sm(gpu)
    k_steps = geom.k_steps
    templates = _CtaTemplates(geom, gpu)
    plans_per_block = [
        _plan_cta(geom, kernel, gpu, m, n, templates) for m, n in blocks
    ]
    mma_ops = sum(
        p.mma_per_step * k_steps for plans in plans_per_block for p in plans
    )

    kind_a = LOAD_A_SHARED if kernel.implicit else LOAD_A
    kind_b = LOAD_B_SHARED if kernel.implicit else LOAD_B
    stage_steps = max(1, kernel.stage_k // gpu.tile_k)

    builder = _TraceBuilder()
    runahead = max(1, kernel.warp_runahead)
    wave_starts = range(0, len(blocks), concurrency)
    for wave_start, wave in zip(wave_starts, waves(plans_per_block, concurrency)):
        staged_through = [0] * len(wave)  # per-CTA staged k-step horizon
        # GTO: each scheduling turn a warp greedily issues `runahead`
        # k-steps of loads before the scheduler moves on.
        for turn in gto_turns(len(wave), kernel.warps_per_cta, k_steps, runahead):
            cta_index = wave_start + turn.cta_index
            plan = wave[turn.cta_index][turn.warp]
            wid = cta_index * kernel.warps_per_cta + turn.warp
            if kernel.implicit and turn.warp == 0:
                # The CTA's cooperative stage runs ahead of its warps.
                while staged_through[turn.cta_index] < turn.k_end:
                    s0 = staged_through[turn.cta_index]
                    s1 = min(s0 + stage_steps, k_steps)
                    m_blk, n_blk = blocks[cta_index]
                    builder.emit(
                        LOAD_INPUT,
                        _stage_input_fragments(
                            spec,
                            geom,
                            (m_blk * kernel.cta_tile_m,
                             (m_blk + 1) * kernel.cta_tile_m),
                            (s0 * gpu.tile_k, s1 * gpu.tile_k),
                            gpu,
                        ),
                        wid,
                    )
                    # B chunk staged cooperatively: one global fetch
                    # per filter column fragment, no octet dup.
                    n_cols = np.arange(
                        n_blk * kernel.cta_tile_n,
                        min((n_blk + 1) * kernel.cta_tile_n, geom.n),
                    )
                    k_offsets = np.arange(s0, s1) * gpu.frag_bytes
                    b_stage = (
                        FILTER_BASE
                        + (n_cols[:, None] * (geom.ldb * gpu.element_bytes)
                           + k_offsets[None, :]).ravel()
                    )
                    builder.emit(LOAD_B, b_stage, wid)
                    staged_through[turn.cta_index] = s1
            for t in range(turn.k_start, turn.k_end):
                step = gpu.frag_bytes * t
                builder.emit(
                    kind_a, plan.a_base + step, wid, plan.a_group, plan.a_instrs
                )
                builder.emit(
                    kind_b, plan.b_base + step, wid, plan.b_group, plan.b_instrs
                )
        for cta_slot, plans in enumerate(wave):
            for w, plan in enumerate(plans):
                wid = (wave_start + cta_slot) * kernel.warps_per_cta + w
                builder.emit(STORE_D, plan.store_addr, wid)

    kind, address, warp, instr = builder.arrays()
    return KernelTrace(
        kind=kind,
        address=address,
        warp=warp,
        instr=instr,
        mma_ops=mma_ops,
        traced_ctas=len(blocks),
        total_ctas=assigned,
        grid_ctas=total_ctas,
        lda=geom.lda,
        ldb=geom.ldb,
        ldd=geom.ldd,
        concurrent_warps=min(concurrency, max(assigned, 1)) * kernel.warps_per_cta,
    )


# ----------------------------------------------------------------------
# Closed-form columnar synthesis
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class _WaveTemplates:
    """Per-(CTA, warp) burst templates of one wave, pooled for gathers.

    Pair ``q = cta_slot * warps_per_cta + warp`` owns the pool slice
    ``[start[q], start[q] + length[q])``: the warp's A fragments then
    its B fragments for one k-step, with the B instruction groups
    already offset by the warp's A instruction count — so one combined
    burst per (pair, k-step) advances the global instruction counter by
    exactly ``advance[q]``, reproducing the legacy A-emit-then-B-emit
    pair (including the n==0 early return: an empty side contributes
    zero length *and* zero advance).
    """

    addr: np.ndarray  # int64 pooled base addresses
    kind: np.ndarray  # uint8 pooled event kinds
    group: np.ndarray  # int64 pooled instruction groups
    start: np.ndarray  # int64 per-pair pool offset
    length: np.ndarray  # int64 per-pair pool length
    advance: np.ndarray  # int64 per-pair instruction advance per k-step
    step_bytes: int = 32  # address advance per k-step (frag_bytes)


def _wave_templates(
    wave: List[List[_WarpPlan]], kind_a: int, kind_b: int,
    step_bytes: int = 32,
) -> _WaveTemplates:
    addrs: List[np.ndarray] = []
    groups: List[np.ndarray] = []
    ab_lens: List[int] = []
    start: List[int] = []
    length: List[int] = []
    advance: List[int] = []
    off = 0
    for plans in wave:
        for plan in plans:
            la, lb = len(plan.a_base), len(plan.b_base)
            addrs.append(plan.a_base)
            addrs.append(plan.b_base)
            ab_lens.append(la)
            ab_lens.append(lb)
            groups.append(plan.a_group)
            groups.append(plan.b_group + plan.a_instrs)
            start.append(off)
            length.append(la + lb)
            advance.append(plan.a_instrs + plan.b_instrs)
            off += la + lb
    empty = np.empty(0, dtype=np.int64)
    kind_pattern = np.tile(
        np.asarray([kind_a, kind_b], dtype=np.uint8), max(len(start), 1)
    )[: len(ab_lens)]
    return _WaveTemplates(
        addr=np.concatenate(addrs) if addrs else empty,
        kind=np.repeat(kind_pattern, np.asarray(ab_lens, dtype=np.int64)),
        group=np.concatenate(groups) if groups else empty,
        start=np.asarray(start, dtype=np.int64),
        length=np.asarray(length, dtype=np.int64),
        advance=np.asarray(advance, dtype=np.int64),
        step_bytes=step_bytes,
    )


def _store_templates(wave: List[List[_WarpPlan]]) -> _WaveTemplates:
    """Pooled store-epilogue templates of one wave.

    Models the per-(CTA, warp) ``STORE_D`` bursts as a one-k-step span:
    every store fragment is its own instruction (``groups=None`` in the
    legacy emitter), so the group pool is a per-pair ``arange`` and the
    per-pair advance equals its burst length.  Feeding this through
    :func:`_span_columns` with ``k0=0, k1=1`` reproduces the legacy
    epilogue (pairs in CTA-slot-major, warp-minor order) in one chunk.
    """
    addrs = [plan.store_addr for plans in wave for plan in plans]
    length = np.asarray([len(a) for a in addrs], dtype=np.int64)
    start = np.zeros(len(addrs) + 1, dtype=np.int64)
    np.cumsum(length, out=start[1:])
    total = int(start[-1])
    empty = np.empty(0, dtype=np.int64)
    addr = np.concatenate(addrs) if addrs else empty
    group = np.arange(total, dtype=np.int64) - np.repeat(start[:-1], length)
    return _WaveTemplates(
        addr=addr,
        kind=np.full(total, STORE_D, dtype=np.uint8),
        group=group,
        start=start[:-1],
        length=length,
        advance=length,
    )


_Columns = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


def _span_views(
    out: Optional[_Columns], pos: int, total: int
) -> _Columns:
    """Destination columns for one span: views into ``out`` or fresh."""
    if out is None:
        return (
            np.empty(total, dtype=np.uint8),
            np.empty(total, dtype=np.int64),
            np.empty(total, dtype=np.int32),
            np.empty(total, dtype=np.int64),
        )
    return (
        out[0][pos:pos + total],
        out[1][pos:pos + total],
        out[2][pos:pos + total],
        out[3][pos:pos + total],
    )


def _uniform_span(
    tpl: _WaveTemplates,
    q0: int,
    q1: int,
    k0: int,
    k1: int,
    wave_base: int,
    next_instr: int,
    pool_len: int,
    advance: int,
    out: Optional[_Columns],
    pos: int,
) -> _Columns:
    """Broadcast synthesis for spans whose pairs share one burst shape.

    When every pair in ``[q0, q1)`` has the same pool length and
    instruction advance (the common case: interior CTAs of one layer
    are congruent), the span is a dense ``(pairs, k-steps, fragments)``
    broadcast — each column is one output-sized write with no gather,
    which is what buys the bulk of the vectorised generator's speedup.
    With ``out`` the writes land directly in the caller's preallocated
    columns (no per-span allocation, no concatenation pass).
    """
    nq = q1 - q0
    nt = k1 - k0
    total = nq * nt * pool_len
    p0 = int(tpl.start[q0])
    pool = slice(p0, p0 + nq * pool_len)
    addr2 = tpl.addr[pool].reshape(nq, pool_len)
    group2 = tpl.group[pool].reshape(nq, pool_len)
    step = tpl.step_bytes * np.arange(k0, k1, dtype=np.int64)
    base2 = (
        next_instr + advance * np.arange(nq * nt, dtype=np.int64)
    ).reshape(nq, nt)
    kind, addr, warp, instr = _span_views(out, pos, total)
    kind.reshape(nq, nt, pool_len)[:] = tpl.kind[pool].reshape(
        nq, 1, pool_len
    )
    np.add(
        addr2[:, None, :], step[None, :, None],
        out=addr.reshape(nq, nt, pool_len),
    )
    np.add(
        group2[:, None, :], base2[:, :, None],
        out=instr.reshape(nq, nt, pool_len),
    )
    warp.reshape(nq, nt * pool_len)[:] = (
        wave_base + np.arange(q0, q1, dtype=np.int32)
    )[:, None]
    return kind, addr, warp, instr


def _span_columns(
    tpl: _WaveTemplates,
    q0: int,
    q1: int,
    k0: int,
    k1: int,
    wave_base: int,
    next_instr: int,
    out: Optional[_Columns] = None,
    pos: int = 0,
) -> Tuple[Optional[_Columns], int]:
    """Synthesize the events of pairs ``[q0, q1)`` over k-steps ``[k0, k1)``.

    Emission order is pair-major, k-step-minor — exactly the GTO turn
    order (CTAs oldest-first, warps in index order, each issuing its
    whole ``runahead`` burst before yielding).  Every column comes from
    arange/repeat/broadcast arithmetic; no per-event Python runs.
    ``out``/``pos`` select fill mode: the span's events are written at
    offset ``pos`` of the preallocated full columns.
    """
    nq = q1 - q0
    nt = k1 - k0
    nb = nq * nt
    span_len = tpl.length[q0:q1]
    span_adv = tpl.advance[q0:q1]
    pool_len = int(span_len[0]) if nq else 0
    advance = int(span_adv[0]) if nq else 0
    uniform = bool(
        np.all(span_len == pool_len) and np.all(span_adv == advance)
    )
    if uniform:
        end_instr = next_instr + advance * nb
        if nb * pool_len == 0:
            return None, end_instr
        return (
            _uniform_span(
                tpl, q0, q1, k0, k1, wave_base, next_instr,
                pool_len, advance, out, pos,
            ),
            end_instr,
        )
    # Ragged fallback: per-burst gather arithmetic.  Indexing each
    # per-burst table through ``boe`` exactly once keeps every
    # event-sized operation a single gather-plus-add.
    burst_q = np.repeat(np.arange(q0, q1, dtype=np.int64), nt)
    lengths = tpl.length[burst_q]
    starts = np.zeros(nb + 1, dtype=np.int64)
    np.cumsum(lengths, out=starts[1:])
    ibase = np.zeros(nb + 1, dtype=np.int64)
    np.cumsum(tpl.advance[burst_q], out=ibase[1:])
    total = int(starts[-1])
    end_instr = next_instr + int(ibase[-1])
    if total == 0:
        return None, end_instr
    src_base = tpl.start[burst_q] - starts[:-1]
    step = tpl.step_bytes * np.tile(np.arange(k0, k1, dtype=np.int64), nq)
    wid = (wave_base + burst_q).astype(np.int32)
    instr_base = next_instr + ibase[:-1]
    boe = np.repeat(np.arange(nb, dtype=np.int64), lengths)
    src = src_base[boe]
    src += np.arange(total, dtype=np.int64)
    kind, addr, warp, instr = _span_views(out, pos, total)
    np.take(tpl.kind, src, out=kind)
    np.take(tpl.addr, src, out=addr)
    addr += step[boe]
    np.take(wid, boe, out=warp)
    np.take(tpl.group, src, out=instr)
    instr += instr_base[boe]
    return (kind, addr, warp, instr), end_instr


@dataclass
class TracePlan:
    """Closed-form description of one SM's trace, ready to synthesize.

    Built once by :func:`plan_sm_trace`; every downstream consumer —
    the vectorised generator, :func:`iter_trace_blocks` streaming, the
    analytic profiler's consult-stream mirror, the disk store's
    streaming writer (which needs :meth:`event_count` up front for the
    ``.npy`` header) — derives from this object, so the schedule is
    defined in exactly one place.
    """

    spec: ConvLayerSpec
    gpu: GPUConfig
    kernel: KernelConfig
    geom: GemmGeometry
    blocks: List[Tuple[int, int]]
    plans_per_block: List[List[_WarpPlan]]
    assigned: int
    grid_ctas: int
    concurrency: int
    mma_ops: int
    kind_a: int
    kind_b: int
    stage_steps: int
    runahead: int
    _stage_memo: Dict[Tuple[int, int], List[np.ndarray]] = field(
        default_factory=dict, repr=False
    )

    @property
    def traced_ctas(self) -> int:
        return len(self.blocks)

    @property
    def concurrent_warps(self) -> int:
        return (
            min(self.concurrency, max(self.assigned, 1))
            * self.kernel.warps_per_cta
        )

    @property
    def scale_factor(self) -> float:
        """Extrapolation factor (`KernelTrace.scale_factor` twin) —
        the plan stands in for the trace in the simulator's scaling
        tail, so streaming replays never need the trace object."""
        if self.traced_ctas == 0:
            return 1.0
        return self.assigned / self.traced_ctas

    def meta(self) -> Dict[str, int]:
        """Scalar trace fields (`KernelTrace.meta` order and names)."""
        return {
            "mma_ops": self.mma_ops,
            "traced_ctas": self.traced_ctas,
            "total_ctas": self.assigned,
            "grid_ctas": self.grid_ctas,
            "lda": self.geom.lda,
            "ldb": self.geom.ldb,
            "ldd": self.geom.ldd,
            "concurrent_warps": self.concurrent_warps,
        }

    def stage_bursts(
        self, cta_index: int, s0: int, s1: int
    ) -> List[np.ndarray]:
        """The two staging bursts (input fetch, B chunk) of one stage step.

        Returned as ``[input_addresses, b_addresses]``; memoised so
        :meth:`event_count` and the generator compute each chunk once.
        """
        key = (cta_index, s0)
        cached = self._stage_memo.get(key)
        if cached is not None:
            return cached
        m_blk, n_blk = self.blocks[cta_index]
        stage_input = _stage_input_fragments(
            self.spec,
            self.geom,
            (m_blk * self.kernel.cta_tile_m,
             (m_blk + 1) * self.kernel.cta_tile_m),
            (s0 * self.gpu.tile_k, s1 * self.gpu.tile_k),
            self.gpu,
        )
        n_cols = np.arange(
            n_blk * self.kernel.cta_tile_n,
            min((n_blk + 1) * self.kernel.cta_tile_n, self.geom.n),
        )
        k_offsets = np.arange(s0, s1) * self.gpu.frag_bytes
        b_stage = (
            FILTER_BASE
            + (n_cols[:, None] * (self.geom.ldb * self.gpu.element_bytes)
               + k_offsets[None, :]).ravel()
        )
        bursts = [stage_input, b_stage]
        self._stage_memo[key] = bursts
        return bursts

    def event_count(self) -> int:
        """Total events of the synthesized trace, in closed form.

        The k-loop contribution is ``pool_length * k_steps`` per warp;
        stores and (implicit-mode) staging chunks add their literal
        burst lengths.  Streaming writers size their ``.npy`` header
        from this before any block is generated.
        """
        k_steps = self.geom.k_steps
        total = 0
        for plans in self.plans_per_block:
            for plan in plans:
                total += (len(plan.a_base) + len(plan.b_base)) * k_steps
                total += len(plan.store_addr)
        if self.kernel.implicit and k_steps:
            for cta_index in range(len(self.blocks)):
                for s0 in range(0, k_steps, self.stage_steps):
                    s1 = min(s0 + self.stage_steps, k_steps)
                    total += sum(
                        len(b) for b in self.stage_bursts(cta_index, s0, s1)
                    )
        return total

    def _iter_columns(
        self, out: Optional[_Columns] = None
    ) -> Iterator[_Columns]:
        """Yield column chunks in exact legacy emission order.

        With ``out`` (four preallocated full-length columns) every
        chunk is written in place at its running offset and the yielded
        tuples are views — the single-shot generator path, which skips
        all per-chunk allocation and the final concatenation.
        """
        k_steps = self.geom.k_steps
        warps = self.kernel.warps_per_cta
        next_instr = 0
        pos = 0
        wave_starts = range(0, len(self.blocks), self.concurrency)
        for wave_start, wave in zip(
            wave_starts, waves(self.plans_per_block, self.concurrency)
        ):
            tpl = _wave_templates(
                wave, self.kind_a, self.kind_b, self.gpu.frag_bytes
            )
            wave_base = wave_start * warps
            nw = len(wave)
            for k0 in range(0, k_steps, self.runahead):
                k1 = min(k0 + self.runahead, k_steps)
                if not self.kernel.implicit:
                    cols, next_instr = _span_columns(
                        tpl, 0, nw * warps, k0, k1, wave_base,
                        next_instr, out, pos,
                    )
                    if cols is not None:
                        pos += len(cols[0])
                        yield cols
                    continue
                for slot in range(nw):
                    cta_index = wave_start + slot
                    wid = cta_index * warps  # warp 0 runs the stage
                    staged = (
                        -(-k0 // self.stage_steps) * self.stage_steps
                        if k0
                        else 0
                    )
                    s0 = min(staged, k_steps)
                    while s0 < k1:
                        s1 = min(s0 + self.stage_steps, k_steps)
                        for kind_const, addrs in zip(
                            (LOAD_INPUT, LOAD_B),
                            self.stage_bursts(cta_index, s0, s1),
                        ):
                            n = len(addrs)
                            if n:
                                kind, addr, warp, instr = _span_views(
                                    out, pos, n
                                )
                                kind[:] = kind_const
                                addr[:] = addrs
                                warp[:] = wid
                                instr[:] = np.arange(n, dtype=np.int64)
                                instr += next_instr
                                pos += n
                                next_instr += n
                                yield kind, addr, warp, instr
                        s0 = s1
                    cols, next_instr = _span_columns(
                        tpl, slot * warps, (slot + 1) * warps,
                        k0, k1, wave_base, next_instr, out, pos,
                    )
                    if cols is not None:
                        pos += len(cols[0])
                        yield cols
            store_tpl = _store_templates(wave)
            cols, next_instr = _span_columns(
                store_tpl, 0, nw * warps, 0, 1, wave_base,
                next_instr, out, pos,
            )
            if cols is not None:
                pos += len(cols[0])
                yield cols

    def iter_blocks(
        self, block_events: Optional[int] = None
    ) -> Iterator[TraceBlock]:
        """Yield the trace as bounded-size :class:`TraceBlock` chunks.

        ``block_events`` caps the events accumulated per block (the
        last chunk may overshoot by one synthesis span); ``None``
        yields everything as a single block.  Concatenating the blocks
        reproduces :func:`generate_sm_trace` bit-identically for any
        block size, by construction.
        """
        if block_events is not None and block_events < 1:
            raise ValueError(
                f"block_events must be >= 1, got {block_events}"
            )
        pending: List[_Columns] = []
        count = 0
        for cols in self._iter_columns():
            pending.append(cols)
            count += len(cols[0])
            if block_events is not None and count >= block_events:
                yield _concat_block(pending)
                pending = []
                count = 0
        if pending:
            yield _concat_block(pending)

    def make_trace(
        self,
        kind: np.ndarray,
        address: np.ndarray,
        warp: np.ndarray,
        instr: np.ndarray,
    ) -> KernelTrace:
        """Attach the plan's scalar meta to synthesized columns."""
        return KernelTrace(
            kind=kind, address=address, warp=warp, instr=instr, **self.meta()
        )


def _concat_block(chunks: List[_Columns]) -> TraceBlock:
    if len(chunks) == 1:
        kind, address, warp, instr = chunks[0]
    else:
        kind = np.concatenate([c[0] for c in chunks])
        address = np.concatenate([c[1] for c in chunks])
        warp = np.concatenate([c[2] for c in chunks])
        instr = np.concatenate([c[3] for c in chunks])
    return TraceBlock(kind=kind, address=address, warp=warp, instr=instr)


def plan_sm_trace(
    spec: ConvLayerSpec,
    gpu: GPUConfig = TITAN_V,
    kernel: KernelConfig = BASELINE_KERNEL,
    options: SimulationOptions = SimulationOptions(),
) -> TracePlan:
    """Build the closed-form trace plan of one SM.

    Shared front half of every synthesis consumer: CTA assignment
    (round-robin, ``max_ctas`` truncation), per-warp fragment
    templates, and the scalar meta fields.
    """
    validate_arch(gpu, kernel)
    geom = gemm_geometry(spec, gpu)
    blocks, total_ctas = sm_cta_blocks(
        geom, kernel, gpu, options.representative_sm
    )
    assigned = len(blocks)
    if options.max_ctas is not None:
        blocks = blocks[: options.max_ctas]
    k_steps = geom.k_steps
    templates = _CtaTemplates(geom, gpu)
    plans_per_block = [
        _plan_cta(geom, kernel, gpu, m, n, templates) for m, n in blocks
    ]
    mma_ops = sum(
        p.mma_per_step * k_steps for plans in plans_per_block for p in plans
    )
    return TracePlan(
        spec=spec,
        gpu=gpu,
        kernel=kernel,
        geom=geom,
        blocks=blocks,
        plans_per_block=plans_per_block,
        assigned=assigned,
        grid_ctas=total_ctas,
        concurrency=kernel.ctas_per_sm(gpu),
        mma_ops=mma_ops,
        kind_a=LOAD_A_SHARED if kernel.implicit else LOAD_A,
        kind_b=LOAD_B_SHARED if kernel.implicit else LOAD_B,
        stage_steps=max(1, kernel.stage_k // gpu.tile_k),
        runahead=max(1, kernel.warp_runahead),
    )


def _env_block_events() -> Optional[int]:
    raw = os.environ.get(TRACE_BLOCK_ENV, "").strip()
    if not raw:
        return None
    return max(1, int(raw))


def iter_trace_blocks(
    spec: ConvLayerSpec,
    gpu: GPUConfig = TITAN_V,
    kernel: KernelConfig = BASELINE_KERNEL,
    options: SimulationOptions = SimulationOptions(),
    block_events: Optional[int] = None,
) -> Iterator[TraceBlock]:
    """Stream one SM's trace as bounded column blocks.

    The streaming twin of :func:`generate_sm_trace`: blocks arrive in
    emission order and concatenate to the exact full trace.  The block
    budget defaults to ``$REPRO_TRACE_BLOCK`` if set, else
    :data:`DEFAULT_BLOCK_EVENTS`.
    """
    if block_events is None:
        block_events = _env_block_events() or DEFAULT_BLOCK_EVENTS
    plan = plan_sm_trace(spec, gpu, kernel, options)
    yield from plan.iter_blocks(block_events)


def generate_sm_trace(
    spec: ConvLayerSpec,
    gpu: GPUConfig = TITAN_V,
    kernel: KernelConfig = BASELINE_KERNEL,
    options: SimulationOptions = SimulationOptions(),
) -> KernelTrace:
    """Generate the scheduled memory-event trace of one SM.

    Waves of up to ``kernel.ctas_per_sm(gpu)`` CTAs run concurrently;
    within a wave, each warp issues one k-step burst per scheduling
    round (GTO: a warp runs until its MMA dependency stalls it, then
    the next-oldest warp issues).

    In implicit mode (``kernel.implicit``) each CTA cooperatively
    stages a ``stage_k``-deep chunk of the workspace into shared
    memory — fetching only the unique unexpanded input from global —
    and the warps' tensor-core loads read shared memory instead.

    The columns are synthesized in closed form (see :class:`TracePlan`)
    rather than emitted turn by turn; ``REPRO_TRACE_GEN=loop`` selects
    the legacy event-loop generator, which produces a bit-identical
    trace.
    """
    if os.environ.get(TRACE_GEN_ENV, "").strip().lower() == "loop":
        obs.add("gen.loop_traces")
        return _generate_sm_trace_loop(spec, gpu, kernel, options)
    plan = plan_sm_trace(spec, gpu, kernel, options)
    block_events = _env_block_events()
    if block_events is not None:
        # Forced block size: route through the streaming iterator so
        # the REPRO_TRACE_BLOCK CI lane exercises block assembly.
        blocks = list(plan.iter_blocks(block_events))
        if not blocks:
            kind = np.empty(0, dtype=np.uint8)
            address = np.empty(0, dtype=np.int64)
            warp = np.empty(0, dtype=np.int32)
            instr = np.empty(0, dtype=np.int64)
        elif len(blocks) == 1:
            kind, address, warp, instr = (
                blocks[0].kind, blocks[0].address,
                blocks[0].warp, blocks[0].instr,
            )
        else:
            kind = np.concatenate([b.kind for b in blocks])
            address = np.concatenate([b.address for b in blocks])
            warp = np.concatenate([b.warp for b in blocks])
            instr = np.concatenate([b.instr for b in blocks])
        num_blocks = len(blocks)
    else:
        # Single-shot: synthesize straight into the final columns.
        total = plan.event_count()
        kind = np.empty(total, dtype=np.uint8)
        address = np.empty(total, dtype=np.int64)
        warp = np.empty(total, dtype=np.int32)
        instr = np.empty(total, dtype=np.int64)
        for _ in plan._iter_columns(out=(kind, address, warp, instr)):
            pass
        num_blocks = 1
    obs.add("gen.traces")
    obs.add("gen.events", int(kind.size))
    obs.add("gen.blocks", num_blocks)
    return plan.make_trace(kind, address, warp, instr)
