"""Tensor-core GEMM kernel model: the load/store trace of one SM.

Reimplements the structure of the paper's baseline kernel (NVIDIA SDK
``cudaTensorCoreGemm``, configured per Section II-C with only the C
accumulator in shared memory, three CTAs per SM):

* the GEMM grid is tiled into ``cta_tile_m x cta_tile_n`` CTA blocks;
  CTAs are numbered M-fastest and distributed to SMs round-robin
  (the representative-SM sampling of DESIGN.md);
* each CTA runs ``warps_per_cta`` warps in an (m x n) grid, each
  owning a ``warp_tile_m x warp_tile_n`` output patch;
* per 16-deep k-step, a warp issues tensor-core loads for its A
  (workspace) and B (filter) fragments.  One event is one 16-half
  fragment (32 bytes); the *octet duplication* of Section II-B makes
  every fragment appear twice back-to-back;
* warps are interleaved greedily-then-oldest (one k-step burst per
  warp per round, oldest CTA first), which is how the loads of
  different warps interleave in front of the LHB;
* after the k-loop each warp stores its fp32 D tiles.

Matrix A (the lowered workspace) is row-major with leading dimension
``lda`` (K padded to 16); matrix B is column-major (filters) so a
tensor-core "column of B" fragment is contiguous; D is row-major fp32.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.conv.layer import ConvLayerSpec
from repro.conv.lowering import entries_to_padded_flat, workspace_shape
from repro.gpu.config import (
    BASELINE_KERNEL,
    GPUConfig,
    KernelConfig,
    SimulationOptions,
    TITAN_V,
)
from repro.gpu.isa import (
    FILTER_BASE,
    INPUT_BASE,
    KernelTrace,
    LOAD_A,
    LOAD_A_SHARED,
    LOAD_B,
    LOAD_B_SHARED,
    LOAD_INPUT,
    OUTPUT_BASE,
    STORE_D,
    WORKSPACE_BASE,
)
from repro.gpu.scheduler import gto_turns, waves


def _align(x: int, a: int) -> int:
    return -(-x // a) * a


@dataclass(frozen=True)
class GemmGeometry:
    """Padded GEMM dimensions and allocation pitches for one layer."""

    m: int
    n: int
    k: int
    m_pad: int
    n_pad: int
    k_pad: int
    lda: int  # A row pitch (elements)
    ldb: int  # B column pitch (elements, column-major)
    ldd: int  # D row pitch (elements)

    @property
    def k_steps(self) -> int:
        return self.k_pad // 16


def gemm_geometry(spec: ConvLayerSpec, tile: int = 16) -> GemmGeometry:
    """Compute padded dimensions the kernel allocates for ``spec``."""
    rows, cols = workspace_shape(spec)
    g = spec.gemm_shape
    assert g.m == rows and g.k == cols
    return GemmGeometry(
        m=g.m,
        n=g.n,
        k=g.k,
        m_pad=_align(g.m, tile),
        n_pad=_align(g.n, tile),
        k_pad=_align(g.k, tile),
        lda=_align(g.k, tile),
        ldb=_align(g.k, tile),
        ldd=_align(g.n, tile),
    )


@dataclass(frozen=True)
class _WarpPlan:
    """Precomputed per-(CTA, warp) fragment address templates.

    A-fragment addresses at k-step t are ``a_base + 32 * t`` and
    B-fragment addresses ``b_base + 32 * t`` (one k-step advances 16
    fp16 elements = 32 bytes along both pitches).  ``a_group`` /
    ``b_group`` assign each fragment to its warp-level instruction
    (one per 16x16 tile per octet copy); emission offsets them by a
    running global instruction counter.
    """

    a_base: np.ndarray
    b_base: np.ndarray
    a_group: np.ndarray
    b_group: np.ndarray
    a_instrs: int
    b_instrs: int
    store_addr: np.ndarray
    mma_per_step: int


def _grouped_fragments(units: List[List[int]]) -> Tuple[np.ndarray, np.ndarray, int]:
    """Expand per-tile fragment lists into octet-duplicated groups.

    Each tile contributes two instructions (the octet dual-load of
    Section II-B), each covering the tile's 16 fragments.
    """
    values: List[int] = []
    groups: List[int] = []
    g = 0
    for unit in units:
        for _copy in range(2):
            values.extend(unit)
            groups.extend([g] * len(unit))
            g += 1
    return (
        np.asarray(values, dtype=np.int64),
        np.asarray(groups, dtype=np.int64),
        g,
    )


def _plan_cta(
    geom: GemmGeometry, kernel: KernelConfig, cta_m: int, cta_n: int
) -> List[_WarpPlan]:
    """Build per-warp address templates for the CTA at block (m, n)."""
    tile = kernel.tile
    warps_n = kernel.cta_tile_n // kernel.warp_tile_n
    plans = []
    for w in range(kernel.warps_per_cta):
        wm, wn = divmod(w, warps_n)
        m0 = cta_m * kernel.cta_tile_m + wm * kernel.warp_tile_m
        n0 = cta_n * kernel.cta_tile_n + wn * kernel.warp_tile_n

        a_tiles = []
        for i in range(kernel.warp_tiles_m):
            base_row = m0 + i * tile
            if base_row >= geom.m:
                continue  # guarded-off partial tile
            a_tiles.append(list(range(base_row, base_row + tile)))
        b_tiles = []
        for j in range(kernel.warp_tiles_n):
            base_col = n0 + j * tile
            if base_col >= geom.n:
                continue
            b_tiles.append(list(range(base_col, base_col + tile)))

        a_rows, a_group, a_instrs = _grouped_fragments(a_tiles)
        b_cols, b_group, b_instrs = _grouped_fragments(b_tiles)
        a_base = WORKSPACE_BASE + a_rows * (geom.lda * 2)
        b_base = FILTER_BASE + b_cols * (geom.ldb * 2)

        # D stores: one 64-byte row fragment per valid (row, n-tile).
        store = []
        for tile_rows in a_tiles:
            for b_tile in b_tiles:
                base_col = b_tile[0]
                for r in tile_rows:
                    store.append(OUTPUT_BASE + (r * geom.ldd + base_col) * 4)
        mma = len(a_tiles) * len(b_tiles)
        plans.append(
            _WarpPlan(
                a_base=a_base,
                b_base=b_base,
                a_group=a_group,
                b_group=b_group,
                a_instrs=a_instrs,
                b_instrs=b_instrs,
                store_addr=np.asarray(store, dtype=np.int64),
                mma_per_step=mma,
            )
        )
    return plans


def sm_cta_blocks(
    geom: GemmGeometry,
    kernel: KernelConfig,
    gpu: GPUConfig,
    sm_index: int,
) -> Tuple[List[Tuple[int, int]], int]:
    """CTA blocks assigned to one SM, plus the total grid size.

    CTAs are numbered with the M block index fastest and handed to
    SMs round-robin, the dispatch order that puts neighbouring
    workspace rows on the same SM.
    """
    grid_m = -(-geom.m // kernel.cta_tile_m)
    grid_n = -(-geom.n // kernel.cta_tile_n)
    total = grid_m * grid_n
    blocks = [
        (cta % grid_m, cta // grid_m)
        for cta in range(sm_index, total, gpu.num_sms)
    ]
    return blocks, total


class _TraceBuilder:
    """Accumulates parallel event arrays with running instruction IDs."""

    def __init__(self) -> None:
        self._kind: List[np.ndarray] = []
        self._address: List[np.ndarray] = []
        self._warp: List[np.ndarray] = []
        self._instr: List[np.ndarray] = []
        self.next_instr = 0

    def emit(
        self,
        kind: int,
        addresses: np.ndarray,
        warp: int,
        groups: Optional[np.ndarray] = None,
        num_instrs: Optional[int] = None,
    ) -> None:
        """Append one burst.

        ``groups`` assigns fragments to instructions relative to the
        running counter; without it, every fragment is its own
        instruction (cooperative staging / stores).
        """
        n = len(addresses)
        if n == 0:
            return
        if groups is None:
            groups = np.arange(n, dtype=np.int64)
            num_instrs = n
        self._kind.append(np.full(n, kind, dtype=np.uint8))
        self._address.append(np.asarray(addresses, dtype=np.int64))
        self._warp.append(np.full(n, warp, dtype=np.int32))
        self._instr.append(groups + self.next_instr)
        self.next_instr += num_instrs

    def arrays(self):
        empty_i64 = np.empty(0, dtype=np.int64)
        return (
            np.concatenate(self._kind) if self._kind else np.empty(0, np.uint8),
            np.concatenate(self._address) if self._address else empty_i64,
            np.concatenate(self._warp) if self._warp else np.empty(0, np.int32),
            np.concatenate(self._instr) if self._instr else empty_i64,
        )


def _stage_input_fragments(
    spec: ConvLayerSpec,
    geom: GemmGeometry,
    row_range: Tuple[int, int],
    col_range: Tuple[int, int],
) -> np.ndarray:
    """Global input fetches staging one implicit-GEMM shared chunk.

    The chunk covers workspace rows ``row_range`` x columns
    ``col_range``; the cooperative copy fetches each *unique* 32-byte
    block of the unexpanded NHWC input exactly once (padding positions
    are materialised as zeros without any fetch).
    """
    eff = spec.effective_spec()
    r0, r1 = row_range
    c0, c1 = col_range
    rows = np.arange(r0, min(r1, geom.m))
    cols = np.arange(c0, min(c1, geom.k))
    if rows.size == 0 or cols.size == 0:
        return np.empty(0, dtype=np.int64)
    rr, cc = np.meshgrid(rows, cols, indexing="ij")
    batch, element = entries_to_padded_flat(spec, rr.ravel(), cc.ravel())

    padded_w = eff.in_width + 2 * eff.pad
    py, rem = np.divmod(element, padded_w * eff.in_channels)
    px, ch = np.divmod(rem, eff.in_channels)
    iy = py - eff.pad
    ix = px - eff.pad
    interior = (
        (iy >= 0) & (iy < eff.in_height) & (ix >= 0) & (ix < eff.in_width)
    )
    flat = (
        ((batch * eff.in_height + iy) * eff.in_width + ix) * eff.in_channels
        + ch
    )
    blocks = np.unique(flat[interior] * 2 // 32)
    return INPUT_BASE + blocks * 32


def generate_sm_trace(
    spec: ConvLayerSpec,
    gpu: GPUConfig = TITAN_V,
    kernel: KernelConfig = BASELINE_KERNEL,
    options: SimulationOptions = SimulationOptions(),
) -> KernelTrace:
    """Generate the scheduled memory-event trace of one SM.

    Waves of up to ``kernel.ctas_per_sm(gpu)`` CTAs run concurrently;
    within a wave, each warp issues one k-step burst per scheduling
    round (GTO: a warp runs until its MMA dependency stalls it, then
    the next-oldest warp issues).

    In implicit mode (``kernel.implicit``) each CTA cooperatively
    stages a ``stage_k``-deep chunk of the workspace into shared
    memory — fetching only the unique unexpanded input from global —
    and the warps' tensor-core loads read shared memory instead.
    """
    geom = gemm_geometry(spec, kernel.tile)
    blocks, total_ctas = sm_cta_blocks(geom, kernel, gpu, options.representative_sm)
    assigned = len(blocks)
    if options.max_ctas is not None:
        blocks = blocks[: options.max_ctas]

    concurrency = kernel.ctas_per_sm(gpu)
    k_steps = geom.k_steps
    plans_per_block = [_plan_cta(geom, kernel, m, n) for m, n in blocks]
    mma_ops = sum(
        p.mma_per_step * k_steps for plans in plans_per_block for p in plans
    )

    kind_a = LOAD_A_SHARED if kernel.implicit else LOAD_A
    kind_b = LOAD_B_SHARED if kernel.implicit else LOAD_B
    stage_steps = max(1, kernel.stage_k // kernel.tile)

    builder = _TraceBuilder()
    runahead = max(1, kernel.warp_runahead)
    wave_starts = range(0, len(blocks), concurrency)
    for wave_start, wave in zip(wave_starts, waves(plans_per_block, concurrency)):
        staged_through = [0] * len(wave)  # per-CTA staged k-step horizon
        # GTO: each scheduling turn a warp greedily issues `runahead`
        # k-steps of loads before the scheduler moves on.
        for turn in gto_turns(len(wave), kernel.warps_per_cta, k_steps, runahead):
            cta_index = wave_start + turn.cta_index
            plan = wave[turn.cta_index][turn.warp]
            wid = cta_index * kernel.warps_per_cta + turn.warp
            if kernel.implicit and turn.warp == 0:
                # The CTA's cooperative stage runs ahead of its warps.
                while staged_through[turn.cta_index] < turn.k_end:
                    s0 = staged_through[turn.cta_index]
                    s1 = min(s0 + stage_steps, k_steps)
                    m_blk, n_blk = blocks[cta_index]
                    builder.emit(
                        LOAD_INPUT,
                        _stage_input_fragments(
                            spec,
                            geom,
                            (m_blk * kernel.cta_tile_m,
                             (m_blk + 1) * kernel.cta_tile_m),
                            (s0 * kernel.tile, s1 * kernel.tile),
                        ),
                        wid,
                    )
                    # B chunk staged cooperatively: one global fetch
                    # per filter column fragment, no octet dup.
                    n_cols = np.arange(
                        n_blk * kernel.cta_tile_n,
                        min((n_blk + 1) * kernel.cta_tile_n, geom.n),
                    )
                    k_offsets = np.arange(s0, s1) * (kernel.tile * 2)
                    b_stage = (
                        FILTER_BASE
                        + (n_cols[:, None] * (geom.ldb * 2)
                           + k_offsets[None, :]).ravel()
                    )
                    builder.emit(LOAD_B, b_stage, wid)
                    staged_through[turn.cta_index] = s1
            for t in range(turn.k_start, turn.k_end):
                step = 32 * t
                builder.emit(
                    kind_a, plan.a_base + step, wid, plan.a_group, plan.a_instrs
                )
                builder.emit(
                    kind_b, plan.b_base + step, wid, plan.b_group, plan.b_instrs
                )
        for cta_slot, plans in enumerate(wave):
            for w, plan in enumerate(plans):
                wid = (wave_start + cta_slot) * kernel.warps_per_cta + w
                builder.emit(STORE_D, plan.store_addr, wid)

    kind, address, warp, instr = builder.arrays()
    return KernelTrace(
        kind=kind,
        address=address,
        warp=warp,
        instr=instr,
        mma_ops=mma_ops,
        traced_ctas=len(blocks),
        total_ctas=assigned,
        grid_ctas=total_ctas,
        lda=geom.lda,
        ldb=geom.ldb,
        ldd=geom.ldd,
        concurrent_warps=min(concurrency, max(assigned, 1)) * kernel.warps_per_cta,
    )
