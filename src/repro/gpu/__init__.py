"""GPU substrate: the machine Duplo is evaluated on.

A trace-driven model of a Titan V-class GPU (Table III of the paper)
running the tensor-core GEMM kernel of lowered convolutions:

* :mod:`repro.gpu.config` — machine and kernel configuration;
* :mod:`repro.gpu.isa` — warp-level instruction records;
* :mod:`repro.gpu.kernel` — the cudaTensorCoreGemm-style trace
  generator (CTA/warp/octet tiling, dual octet loads);
* :mod:`repro.gpu.scheduler` — greedy-then-oldest warp interleaving;
* :mod:`repro.gpu.cache` / :mod:`repro.gpu.dram` — memory hierarchy;
* :mod:`repro.gpu.ldst` — the load path with the Duplo detection unit
  (or a WIR same-address filter) attached;
* :mod:`repro.gpu.timing` — the analytic cycle model;
* :mod:`repro.gpu.simulator` — per-layer entry points.
"""

from repro.gpu.config import GPUConfig, KernelConfig, SimulationOptions, TITAN_V
from repro.gpu.simulator import simulate_layer, LayerResult, EliminationMode
from repro.gpu.stats import LayerStats, MemoryBreakdown

__all__ = [
    "GPUConfig",
    "KernelConfig",
    "SimulationOptions",
    "TITAN_V",
    "simulate_layer",
    "LayerResult",
    "EliminationMode",
    "LayerStats",
    "MemoryBreakdown",
]
