"""Register file occupancy and access accounting.

Two roles:

* quantify the *dual-copy pressure* of Section II-B (each octet keeps
  its own copy of shared fragments, doubling the registers a warp
  spends on A/B operands) — and how much of it Duplo's warp-register
  sharing gives back;
* supply the access counts (reads/writes per fragment) the energy
  model charges.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.config import GPUConfig, KernelConfig, TITAN_V, BASELINE_KERNEL

#: One warp-wide register: 32 threads x 32 bits.
WARP_REGISTER_BYTES = 128

#: Registers one tensor-core load fills per thread (16 halfs in eight
#: 32-bit registers across the octet pair — Section II-B).
REGS_PER_FRAGMENT = 8


@dataclass(frozen=True)
class RegisterFileModel:
    """Occupancy/access arithmetic for the SM register file."""

    gpu: GPUConfig = TITAN_V
    kernel: KernelConfig = BASELINE_KERNEL
    #: Access energies (pJ) per warp-register read/write — McPAT-class
    #: numbers for a large banked SRAM register file.
    read_energy_pj: float = 27.0
    write_energy_pj: float = 29.0

    @property
    def warp_registers_per_sm(self) -> int:
        """2048 warp-wide registers for the 256 KB Table III file."""
        return self.gpu.regfile_bytes_per_sm // WARP_REGISTER_BYTES

    def operand_registers_per_warp(self, runahead_steps: int = 1) -> int:
        """Warp registers a warp's in-flight A/B fragments occupy.

        Per k-step a warp holds its A and B tiles once per octet copy
        (the dual-load doubles the footprint, Section II-B).  The A
        side carries ``tile_m`` fragments per tile, the B side
        ``tile_n``; either way the rows held per warp equal the warp
        tile edge, at ``frag_bytes`` each.
        """
        rows = self.kernel.warp_tile_m + self.kernel.warp_tile_n
        frags = rows * self.kernel.octet_duplication
        bytes_per_step = frags * self.gpu.frag_bytes
        return runahead_steps * bytes_per_step // WARP_REGISTER_BYTES

    def duplication_overhead(self) -> float:
        """Fraction of operand registers holding octet dual copies."""
        dup = self.kernel.octet_duplication
        return (dup - 1) / dup

    def fragment_write_energy_pj(self) -> float:
        """Energy to write one loaded fragment into the register file."""
        return self.write_energy_pj * (self.gpu.frag_bytes / WARP_REGISTER_BYTES)

    def fragment_read_energy_pj(self) -> float:
        """Energy for the MMA to read one fragment back."""
        return self.read_energy_pj * (self.gpu.frag_bytes / WARP_REGISTER_BYTES)
