"""Cycle-stepped SM pipeline demonstrator (Figure 7).

The bulk simulator (``repro.gpu.simulator``) is trace-driven; this
module complements it with an *instruction-level* pipeline that makes
Figure 7 concrete for small programs: fetch/decode feed an instruction
buffer, a greedy-then-oldest scheduler issues from it under a
scoreboard, tensor-core loads flow through the LDST unit where the
Duplo detection unit (ID generation + LHB + renaming) can eliminate
them, and execution latencies drain through writeback.

It is the machinery behind the Table II walk-through at cycle
granularity: the same four-instruction program visibly completes
earlier with the detection unit powered on, because the eliminated
load's dependents wake after the two-cycle detection latency instead
of a cache round-trip.

Deliberately small: warps of straight-line programs, warp-level
semantics (one "register" is a warp register), no branch handling —
enough to study issue/stall behaviour, not to replace the trace model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.detection import DetectionUnit


class Op(enum.Enum):
    """Warp-level instruction classes the pipeline models."""

    LOAD = "wmma.load"  # tensor-core load (LHB-eligible if workspace)
    MMA = "wmma.mma"
    STORE = "wmma.store"
    ALU = "alu"


@dataclass(frozen=True)
class Instruction:
    """One warp-level instruction: destination, sources, address."""

    op: Op
    dest: Optional[int] = None
    srcs: Tuple[int, ...] = ()
    address: Optional[int] = None

    def __post_init__(self) -> None:
        if self.op is Op.LOAD and self.address is None:
            raise ValueError("loads need an address")
        if self.op in (Op.LOAD, Op.MMA, Op.ALU) and self.dest is None:
            raise ValueError(f"{self.op.value} needs a destination")


@dataclass
class Warp:
    """A warp executing a straight-line program."""

    warp_id: int
    program: List[Instruction]
    pc: int = 0

    @property
    def done(self) -> bool:
        return self.pc >= len(self.program)

    def peek(self) -> Instruction:
        return self.program[self.pc]


@dataclass
class PipelineStats:
    """Issue/stall accounting over a run."""

    cycles: int = 0
    issued: int = 0
    eliminated_loads: int = 0
    memory_loads: int = 0
    scoreboard_stalls: int = 0
    idle_cycles: int = 0


@dataclass
class _Inflight:
    warp_id: int
    dest: Optional[int]
    ready_at: int


class SMPipeline:
    """Issue-limited in-order pipeline with a scoreboard per warp.

    One instruction issues per cycle (the paper's warp scheduler
    granularity).  GTO: the most recently issued warp retains priority
    while it can issue; otherwise the oldest ready warp goes.  A
    warp's instruction may issue when none of its sources or its
    destination are pending in the scoreboard.
    """

    #: Default latencies (cycles), Table III-flavoured.
    LATENCIES = {
        Op.LOAD: 28,  # L1 hit
        Op.MMA: 8,
        Op.STORE: 1,
        Op.ALU: 4,
    }

    def __init__(
        self,
        warps: List[Warp],
        detection: Optional[DetectionUnit] = None,
        latencies: Optional[Dict[Op, int]] = None,
        eliminated_latency: int = 2,
    ):
        if not warps:
            raise ValueError("need at least one warp")
        self.warps = warps
        self.detection = detection
        self.latencies = dict(self.LATENCIES)
        if latencies:
            self.latencies.update(latencies)
        self.eliminated_latency = eliminated_latency
        self.stats = PipelineStats()
        self._pending: Dict[Tuple[int, int], int] = {}  # (warp, reg) -> ready
        self._inflight: List[_Inflight] = []
        self._last_issued: Optional[int] = None
        self._cycle = 0

    # ------------------------------------------------------------------
    def _reg_ready(self, warp_id: int, reg: int) -> bool:
        return self._pending.get((warp_id, reg), 0) <= self._cycle

    def _can_issue(self, warp: Warp) -> bool:
        if warp.done:
            return False
        inst = warp.peek()
        regs = list(inst.srcs)
        if inst.dest is not None:
            regs.append(inst.dest)
        return all(self._reg_ready(warp.warp_id, r) for r in regs)

    def _pick_warp(self) -> Optional[Warp]:
        # Greedy: stick with the last issued warp while it can go.
        if self._last_issued is not None:
            warp = self.warps[self._last_issued]
            if self._can_issue(warp):
                return warp
        # Then oldest (lowest id) ready warp.
        for warp in self.warps:
            if self._can_issue(warp):
                return warp
        return None

    def _issue(self, warp: Warp) -> None:
        inst = warp.peek()
        warp.pc += 1
        self._last_issued = self.warps.index(warp)
        self.stats.issued += 1

        latency = self.latencies[inst.op]
        if inst.op is Op.LOAD:
            eliminated = False
            if self.detection is not None:
                outcome = self.detection.process_load(
                    warp.warp_id, inst.dest, inst.address
                )
                eliminated = outcome.eliminated
            if eliminated:
                latency = self.eliminated_latency
                self.stats.eliminated_loads += 1
            else:
                self.stats.memory_loads += 1
        if inst.dest is not None:
            ready = self._cycle + latency
            self._pending[(warp.warp_id, inst.dest)] = ready
            self._inflight.append(
                _Inflight(warp.warp_id, inst.dest, ready)
            )

    def tick(self) -> None:
        """Advance one cycle: retire completed ops, issue at most one."""
        self._cycle += 1
        self.stats.cycles = self._cycle
        self._inflight = [f for f in self._inflight if f.ready_at > self._cycle]

        warp = self._pick_warp()
        if warp is not None:
            self._issue(warp)
            return
        if all(w.done for w in self.warps):
            self.stats.idle_cycles += 1
        elif any(not w.done for w in self.warps):
            self.stats.scoreboard_stalls += 1

    @property
    def drained(self) -> bool:
        """All programs issued and all results written back."""
        return all(w.done for w in self.warps) and not self._inflight

    def run(self, max_cycles: int = 100_000) -> PipelineStats:
        """Tick until drained (or the safety limit trips)."""
        while not self.drained:
            if self._cycle >= max_cycles:
                raise RuntimeError(f"pipeline not drained in {max_cycles} cycles")
            self.tick()
        return self.stats
