"""Functional tensor-core execution (Section II-B / Figure 4).

Executes a warp-level 16x16x16 MMA exactly the way the paper describes
the hardware decomposing it, so the data-layout story of Figure 4 is
runnable rather than narrative:

* the warp's 32 threads form four 8-thread **octets**, each producing
  one 8x8 quadrant of the 16x16 output tile;
* an octet's two 4-thread **threadgroups** each produce a 4x8 block,
  taking two steps over the k-dimension halves;
* a threadgroup step issues 4x4x4 MMAs to the tensor core's 16
  four-element-dot-product (**FEDP**) units;
* each half of A and B is consumed by *two* octets — the dual-load
  the LHB later exploits (each octet holds its own register copy).

The functional model is bit-compatible with ``A @ B + C`` (up to float
associativity) and exposes the per-octet operand footprints that the
trace generator's duplication factor of 2 encodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

#: Geometry constants from Section II-B.
WMMA = 16
OCTETS_PER_WARP = 4
THREADS_PER_OCTET = 8
THREADGROUPS_PER_OCTET = 2
THREADS_PER_THREADGROUP = 4
FEDP_WIDTH = 4  # four-element dot product
FEDPS_PER_CORE = 16


def octet_output_quadrant(octet: int) -> Tuple[slice, slice]:
    """Rows/cols of the 16x16 D tile the given octet produces.

    Octets tile the output quadrant-wise: octet 0 upper-left, 1
    upper-right, 2 lower-left, 3 lower-right (Figure 4).
    """
    if not 0 <= octet < OCTETS_PER_WARP:
        raise ValueError(f"octet must be 0..3, got {octet}")
    row_half, col_half = divmod(octet, 2)
    return (
        slice(row_half * 8, row_half * 8 + 8),
        slice(col_half * 8, col_half * 8 + 8),
    )


def octet_operand_rows(octet: int) -> slice:
    """Rows of A the octet needs (its half of the A matrix)."""
    rows, _ = octet_output_quadrant(octet)
    return rows


def octet_operand_cols(octet: int) -> slice:
    """Columns of B the octet needs (its half of the B matrix)."""
    _, cols = octet_output_quadrant(octet)
    return cols


@dataclass
class OctetTrace:
    """What one octet read and computed during a warp MMA."""

    octet: int
    a_rows: Tuple[int, ...]
    b_cols: Tuple[int, ...]
    fedp_ops: int


def fedp(a4: np.ndarray, b4: np.ndarray, acc: float) -> float:
    """One four-element dot product unit: acc += a . b."""
    if a4.shape != (FEDP_WIDTH,) or b4.shape != (FEDP_WIDTH,):
        raise ValueError("FEDP operands must be 4-vectors")
    return acc + float(a4 @ b4)


def threadgroup_block(
    a_half: np.ndarray, b_half: np.ndarray, c_block: np.ndarray, step_rows: slice
) -> Tuple[np.ndarray, int]:
    """One threadgroup's 4x8 output block, built from FEDP calls.

    ``a_half``/``b_half`` are the octet's 8x16 / 16x8 operand halves;
    the threadgroup owns 4 of the octet's 8 output rows and produces
    them in FEDP_WIDTH-deep accumulation chunks ("a set of four
    consecutive threads ... generate a 4x8 rectangular block").
    """
    rows = a_half[step_rows]  # (4, 16)
    out = c_block.astype(np.float64).copy()
    ops = 0
    for i in range(rows.shape[0]):
        for j in range(b_half.shape[1]):
            acc = out[i, j]
            for k0 in range(0, rows.shape[1], FEDP_WIDTH):
                acc = fedp(
                    rows[i, k0 : k0 + FEDP_WIDTH],
                    b_half[k0 : k0 + FEDP_WIDTH, j],
                    acc,
                )
                ops += 1
            out[i, j] = acc
    return out, ops


def warp_mma(
    a: np.ndarray, b: np.ndarray, c: np.ndarray
) -> Tuple[np.ndarray, List[OctetTrace]]:
    """Execute D = A @ B + C (16x16x16) via the octet decomposition.

    Returns the output tile and per-octet traces recording which
    operand rows/columns each octet consumed — adjacent octets share
    halves, which is why the kernel issues each half twice.
    """
    for name, mat in (("A", a), ("B", b), ("C", c)):
        if mat.shape != (WMMA, WMMA):
            raise ValueError(f"{name} must be 16x16, got {mat.shape}")
    d = np.empty((WMMA, WMMA), dtype=np.float64)
    traces = []
    for octet in range(OCTETS_PER_WARP):
        rows, cols = octet_output_quadrant(octet)
        a_half = a[rows, :]  # (8, 16): the octet's copy of half of A
        b_half = b[:, cols]  # (16, 8): the octet's copy of half of B
        ops = 0
        for tg in range(THREADGROUPS_PER_OCTET):
            step = slice(tg * 4, tg * 4 + 4)
            block, tg_ops = threadgroup_block(
                a_half, b_half, c[rows, cols][step, :], step
            )
            d[rows.start + tg * 4 : rows.start + tg * 4 + 4, cols] = block
            ops += tg_ops
        traces.append(
            OctetTrace(
                octet=octet,
                a_rows=tuple(range(rows.start, rows.stop)),
                b_cols=tuple(range(cols.start, cols.stop)),
                fedp_ops=ops,
            )
        )
    return d, traces


def operand_sharing(traces: List[OctetTrace]) -> Dict[str, int]:
    """How many octets consume each A/B half — the dual-load count.

    Returns the multiplicity of every operand half; Section II-B:
    "each half of input matrices A and B are loaded twice by
    different octets".
    """
    a_counts: Dict[Tuple[int, ...], int] = {}
    b_counts: Dict[Tuple[int, ...], int] = {}
    for t in traces:
        a_counts[t.a_rows] = a_counts.get(t.a_rows, 0) + 1
        b_counts[t.b_cols] = b_counts.get(t.b_cols, 0) + 1
    return {
        "a_half_consumers": max(a_counts.values()),
        "b_half_consumers": max(b_counts.values()),
        "distinct_a_halves": len(a_counts),
        "distinct_b_halves": len(b_counts),
    }
