"""Per-layer simulation entry points.

:func:`simulate_layer` runs one Table I layer under one configuration
(baseline / Duplo with a given LHB / WIR) and returns a
:class:`LayerResult` holding both the SM-level timing and the
full-layer extrapolated statistics.  :func:`simulate_pair` runs the
baseline and a Duplo variant over the *same* trace, which is how all
the paper's "performance improvement over baseline" figures are
produced.

Traces are cached per (layer, gpu, kernel, options) in an in-process
LRU so parameter sweeps (Figures 9, 10, 12, 13) pay trace generation
once.  The key covers the *full* frozen :class:`SimulationOptions`
(an earlier revision keyed only on ``max_ctas`` / ``representative_sm``
and aliased options objects differing elsewhere).  The LRU can be
backed by a persistent :class:`repro.runtime.store.DiskCache` via
:func:`set_trace_store`, which the parallel runtime and the CLI hook
up so traces survive across runs.
"""

from __future__ import annotations

import logging
import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro import obs
from repro.conv.layer import ConvLayerSpec
from repro.core.lhb import LoadHistoryBuffer
from repro.gpu.config import (
    BASELINE_KERNEL,
    GPUConfig,
    KernelConfig,
    SimulationOptions,
    TITAN_V,
)
from repro.gpu.fastpath import (
    FAST_PATH_ENV,
    FastPathUnsupported,
    fast_path_fallback_reason,
    replay_trace_fast,
    resolve_fast_path as _resolve_fast_path,
    supports_fast_path,
)
from repro.gpu.isa import KernelTrace
from repro.gpu.kernel import generate_sm_trace
from repro.gpu.ldst import EliminationMode, replay_trace
from repro.gpu.stats import LayerStats
from repro.gpu.timing import TimingModel

__all_reexports__ = (FAST_PATH_ENV, FastPathUnsupported, supports_fast_path)

_log = logging.getLogger(__name__)

_trace_cache: "OrderedDict[Tuple, KernelTrace]" = OrderedDict()
_TRACE_CACHE_LIMIT = 64
#: Guards the LRU's OrderedDict against concurrent mutation — the
#: sweep executor's thread backend replays several layers at once and
#: ``move_to_end``/``popitem`` are not atomic.  Generation and store
#: round-trips run *outside* the lock (they dominate and are
#: independent per layer); the worst concurrent case is two threads
#: generating the same trace, which wastes work but stays correct.
_trace_lock = threading.Lock()
_trace_store = None  # optional repro.runtime.store.DiskCache


def set_trace_store(store) -> None:
    """Back the in-process trace LRU with a persistent disk store.

    ``store`` is a :class:`repro.runtime.store.DiskCache` (or any
    object with ``get_trace(key)`` / ``put_trace(key, trace)``) —
    ``None`` detaches it.  Misses in the LRU then consult the store
    before regenerating, and fresh traces are persisted.
    """
    global _trace_store
    _trace_store = store


def get_trace_store():
    """The currently attached persistent trace store (or ``None``)."""
    return _trace_store


def _get_trace(
    spec: ConvLayerSpec,
    gpu: GPUConfig,
    kernel: KernelConfig,
    options: SimulationOptions,
) -> KernelTrace:
    # fast_path selects the replay implementation, never the trace —
    # normalise it out so on/off runs share one cached trace.
    options = replace(options, fast_path="auto")
    key = (spec, gpu, kernel, options)
    with _trace_lock:
        trace = _trace_cache.get(key)
        if trace is not None:
            _trace_cache.move_to_end(key)
    if trace is not None:
        obs.add("sim.trace.lru_hits")
        return trace
    if _trace_store is not None:
        from repro.runtime.cachekey import trace_key

        digest = trace_key(spec, gpu, kernel, options)
        with obs.span("sim.trace.store_get", layer=spec.qualified_name):
            trace = _trace_store.get_trace(digest)
        if trace is None:
            with obs.span("sim.trace.generate", layer=spec.qualified_name):
                trace = generate_sm_trace(spec, gpu, kernel, options)
            obs.add("sim.trace.generated")
            with obs.span("sim.trace.store_put", layer=spec.qualified_name):
                _trace_store.put_trace(digest, trace)
        else:
            obs.add("sim.trace.store_hits")
    else:
        with obs.span("sim.trace.generate", layer=spec.qualified_name):
            trace = generate_sm_trace(spec, gpu, kernel, options)
        obs.add("sim.trace.generated")
    with _trace_lock:
        while len(_trace_cache) >= _TRACE_CACHE_LIMIT:
            _trace_cache.popitem(last=False)
        _trace_cache[key] = trace
    return trace


def trace_is_cached(
    spec: ConvLayerSpec,
    gpu: GPUConfig,
    kernel: KernelConfig,
    options: SimulationOptions,
) -> bool:
    """True iff the in-process LRU already holds this trace.

    A read-only probe (no LRU reordering, no store consult) — the
    sweep executor's cost estimator uses it to price a chunk as
    replay-only versus generate-plus-replay.
    """
    options = replace(options, fast_path="auto")
    with _trace_lock:
        return (spec, gpu, kernel, options) in _trace_cache


def clear_trace_cache() -> None:
    """Drop cached traces (tests that tweak globals call this)."""
    with _trace_lock:
        _trace_cache.clear()


def trace_cache_info() -> dict:
    """Introspection for tests: size, limit, and key list (LRU order)."""
    with _trace_lock:
        return {
            "size": len(_trace_cache),
            "limit": _TRACE_CACHE_LIMIT,
            "keys": list(_trace_cache.keys()),
            "store": _trace_store,
        }


@dataclass(frozen=True)
class LayerResult:
    """Outcome of simulating one layer under one configuration."""

    spec: ConvLayerSpec
    mode: EliminationMode
    stats: LayerStats  # full-layer extrapolation (GPU-wide counts)
    sm_stats: LayerStats  # one SM's full assignment (timing basis)
    cycles: float
    time_ms: float
    lhb_entries: Optional[int] = None
    lhb_assoc: int = 1

    @property
    def lhb_hit_rate(self) -> float:
        return self.stats.lhb_hit_rate

    def speedup_over(self, baseline: "LayerResult") -> float:
        """Execution-time ratio baseline/this (1.25 = 25% faster)."""
        return baseline.cycles / self.cycles


def make_lhb(
    entries: Optional[int],
    assoc: int = 1,
    lifetime: Optional[int] = 4096,
    hashed_index: bool = True,
) -> LoadHistoryBuffer:
    """LHB factory: ``entries=None`` builds the paper's oracle buffer."""
    return LoadHistoryBuffer(
        num_entries=entries,
        assoc=assoc,
        lifetime=lifetime,
        hashed_index=hashed_index,
    )


def _record_layer_metrics(
    spec: ConvLayerSpec,
    mode: EliminationMode,
    events: int,
    full_stats: LayerStats,
    lhb: Optional[LoadHistoryBuffer],
) -> None:
    """Report one simulated layer into the metrics registry.

    The ``sim.lhb.*`` counters accumulate the *same* ``LayerStats``
    fields the run returns (full-layer extrapolation), so for a
    single-layer run ``--metrics-out`` matches ``result.stats``
    exactly; ``lhb.raw.*`` are the buffer's own (unscaled, traced
    prefix) counters published by :meth:`~repro.core.lhb.LHBStats`.
    ``events`` is the traced event count — measured off the trace on
    the replay tiers, closed-form on the analytic tier (identical for
    the explicit kernel, so the counter is engine-invariant).
    """
    obs.add("sim.layers_simulated")
    obs.add("sim.events_replayed", events)
    obs.add("sim.lhb.lookups", full_stats.lhb_lookups)
    obs.add("sim.lhb.hits", full_stats.lhb_hits)
    obs.add("sim.lhb.renames", full_stats.lhb_hits)
    obs.add("sim.eliminated_fragments", full_stats.eliminated_fragments)
    obs.add("sim.l1.accesses", full_stats.l1_accesses)
    obs.add("sim.l1.hits", full_stats.l1_hits)
    obs.add("sim.l2.accesses", full_stats.l2_accesses)
    obs.add("sim.l2.hits", full_stats.l2_hits)
    obs.add("sim.dram.read_bytes", full_stats.dram_read_bytes)
    obs.add("sim.dram.write_bytes", full_stats.dram_write_bytes)
    if lhb is not None:
        lhb.stats.publish(obs.add)
    _log.debug(
        "simulated %s mode=%s events=%d lhb_hit_rate=%.3f",
        spec.qualified_name,
        mode.value,
        events,
        full_stats.lhb_hit_rate,
    )


def simulate_layer(
    spec: ConvLayerSpec,
    mode: EliminationMode = EliminationMode.DUPLO,
    lhb_entries: Optional[int] = 1024,
    lhb_assoc: int = 1,
    gpu: GPUConfig = TITAN_V,
    kernel: KernelConfig = BASELINE_KERNEL,
    options: SimulationOptions = SimulationOptions(),
    timing: Optional[TimingModel] = None,
) -> LayerResult:
    """Simulate one layer under one configuration.

    ``lhb_entries=None`` gives the oracle (unbounded) LHB; the
    ``options.lhb_lifetime`` window still applies, modelling register
    retirement (Section V-C).  ``mode=BASELINE`` ignores the LHB
    arguments.

    The ``options.engine`` tier (with its ``$REPRO_ENGINE`` override)
    picks how the request is answered: the trace-free analytic model
    where covered, else the exact fast/event replay tiering.  The
    tier that actually served is published as
    ``engine.selected.<tier>``; analytic coverage misses are counted
    under ``analytic.fallback`` — see :mod:`repro.analytic.engine`.
    """
    from repro.analytic.engine import (
        analytic_fallback_reason,
        count_fallback,
        count_selected,
        resolve_engine,
    )

    layer_span = obs.span(
        "sim.layer", layer=spec.qualified_name, mode=mode.value
    )
    with layer_span:
        lhb = None
        if mode is not EliminationMode.BASELINE:
            lhb = make_lhb(
                lhb_entries, lhb_assoc, options.lhb_lifetime,
                options.lhb_hashed_index,
            )
        tier = resolve_engine(options)
        sm_traced = None
        if tier == "analytic":
            reason = analytic_fallback_reason(kernel, options, mode, lhb)
            if reason is None:
                from repro.analytic.model import predict_stats
                from repro.analytic.profile import layer_profile

                with obs.span(
                    "sim.replay.analytic", layer=spec.qualified_name
                ):
                    profile = layer_profile(spec, mode, gpu, kernel, options)
                    sm_traced = predict_stats(profile, lhb)
                meta = profile.meta
                events = profile.counters.events
                selected = "analytic"
            else:
                count_fallback(reason)
        if sm_traced is None:
            trace = _get_trace(spec, gpu, kernel, options)
            meta = trace
            events = int(trace.kind.size)
            if tier == "event":
                use_fast = False
            elif tier == "fast":
                reason = fast_path_fallback_reason(mode, lhb)
                use_fast = reason is None
                if not use_fast:
                    obs.add("fastpath.fallback")
                    obs.add(f"fastpath.fallback.{reason}")
            else:  # "auto", or analytic coverage fallback
                use_fast = _resolve_fast_path(options, mode, lhb)
            selected = "fast" if use_fast else "event"
            if use_fast:
                with obs.span("sim.replay.fast", layer=spec.qualified_name):
                    sm_traced = replay_trace_fast(
                        trace, spec, gpu, options, mode, lhb
                    )
            else:
                with obs.span("sim.replay.event", layer=spec.qualified_name):
                    sm_traced = replay_trace(
                        trace, spec, gpu, options, mode, lhb
                    )
        count_selected(selected)

    return _assemble_result(
        spec, mode, sm_traced, meta, events, gpu, options, timing,
        lhb, lhb_entries, lhb_assoc,
    )


def _assemble_result(
    spec: ConvLayerSpec,
    mode: EliminationMode,
    sm_traced: LayerStats,
    meta,
    events: int,
    gpu: GPUConfig,
    options: SimulationOptions,
    timing: Optional[TimingModel],
    lhb: Optional[LoadHistoryBuffer],
    lhb_entries: Optional[int],
    lhb_assoc: int,
) -> LayerResult:
    """Scaling + timing tail shared by every replay entry point.

    Extrapolates the traced prefix to the SM's full CTA assignment,
    then to the whole grid.  ``meta`` is anything exposing the scaling
    fields (``scale_factor`` / ``grid_ctas`` / ``traced_ctas`` /
    ``concurrent_warps``): the trace on the replay tiers, the
    closed-form scalars on the analytic tier, the
    :class:`~repro.gpu.kernel.TracePlan` on the streaming tier.
    """
    sm_stats = sm_traced.scaled(meta.scale_factor)
    if timing is None:
        timing = TimingModel(gpu=gpu, detection_latency=options.detection_latency)
    busy_sms = max(1, min(gpu.num_sms, meta.grid_ctas))
    cycles, comps = timing.cycles(sm_stats, meta.concurrent_warps, busy_sms)
    sm_stats.cycles = cycles
    sm_stats.cycle_components = comps

    grid_scale = meta.grid_ctas / max(meta.traced_ctas, 1)
    full_stats = sm_traced.scaled(grid_scale)
    full_stats.cycles = cycles
    full_stats.cycle_components = comps

    if obs.enabled():
        _record_layer_metrics(spec, mode, events, full_stats, lhb)

    return LayerResult(
        spec=spec,
        mode=mode,
        stats=full_stats,
        sm_stats=sm_stats,
        cycles=cycles,
        time_ms=timing.execution_time_ms(cycles),
        lhb_entries=lhb_entries if lhb is not None else None,
        lhb_assoc=lhb_assoc,
    )


def simulate_layer_streaming(
    spec: ConvLayerSpec,
    mode: EliminationMode = EliminationMode.DUPLO,
    lhb_entries: Optional[int] = 1024,
    lhb_assoc: int = 1,
    gpu: GPUConfig = TITAN_V,
    kernel: KernelConfig = BASELINE_KERNEL,
    options: SimulationOptions = SimulationOptions(),
    timing: Optional[TimingModel] = None,
    block_events: Optional[int] = None,
    store=None,
) -> LayerResult:
    """Simulate one layer without ever materialising its trace.

    The bounded-memory twin of :func:`simulate_layer`: trace blocks
    stream straight from the closed-form synthesizer
    (:meth:`~repro.gpu.kernel.TracePlan.iter_blocks`) into the
    vectorised replay's accumulator, so peak memory holds one block
    plus the replay's compact derived streams instead of the full
    event columns.  Results are bit-identical to
    :func:`simulate_layer` for any block size.

    ``block_events`` defaults to ``$REPRO_TRACE_BLOCK`` or the
    built-in block budget.  With ``store`` (a
    :class:`repro.runtime.store.DiskCache`) each block is also teed
    into the store's streaming sidecar writer, persisting the trace
    under its usual content-addressed key at no extra memory cost.
    """
    from repro.analytic.engine import count_selected
    from repro.gpu.fastpath import replay_blocks_fast
    from repro.gpu.kernel import (
        DEFAULT_BLOCK_EVENTS,
        _env_block_events,
        plan_sm_trace,
    )

    if block_events is None:
        block_events = _env_block_events() or DEFAULT_BLOCK_EVENTS
    with obs.span(
        "sim.layer", layer=spec.qualified_name, mode=mode.value
    ):
        lhb = None
        if mode is not EliminationMode.BASELINE:
            lhb = make_lhb(
                lhb_entries, lhb_assoc, options.lhb_lifetime,
                options.lhb_hashed_index,
            )
        plan = plan_sm_trace(spec, gpu, kernel, options)
        events = plan.event_count()
        obs.add("gen.traces")
        obs.add("gen.events", events)
        blocks = plan.iter_blocks(block_events)
        writer = None
        if store is not None:
            from repro.runtime.cachekey import trace_key

            digest = trace_key(
                spec, gpu, kernel, replace(options, fast_path="auto")
            )
            writer = store.trace_stream_writer(digest, plan.meta(), events)
            blocks = _tee_blocks(blocks, writer)
        try:
            with obs.span(
                "sim.replay.stream", layer=spec.qualified_name
            ):
                sm_traced = replay_blocks_fast(
                    blocks, plan.meta(), spec, gpu, options, mode, lhb
                )
            if writer is not None:
                writer.commit()
        except BaseException:
            if writer is not None:
                writer.abort()
            raise
        count_selected("fast")

    return _assemble_result(
        spec, mode, sm_traced, plan, events, gpu, options, timing,
        lhb, lhb_entries, lhb_assoc,
    )


def _tee_blocks(blocks, writer):
    for block in blocks:
        writer.append(block)
        yield block


def simulate_pair(
    spec: ConvLayerSpec,
    lhb_entries: Optional[int] = 1024,
    lhb_assoc: int = 1,
    gpu: GPUConfig = TITAN_V,
    kernel: KernelConfig = BASELINE_KERNEL,
    options: SimulationOptions = SimulationOptions(),
) -> Tuple[LayerResult, LayerResult]:
    """(baseline, duplo) results over the same trace — the figures'
    "performance improvement" comparisons."""
    base = simulate_layer(
        spec, EliminationMode.BASELINE, gpu=gpu, kernel=kernel, options=options
    )
    duplo = simulate_layer(
        spec,
        EliminationMode.DUPLO,
        lhb_entries=lhb_entries,
        lhb_assoc=lhb_assoc,
        gpu=gpu,
        kernel=kernel,
        options=options,
    )
    return base, duplo


def performance_improvement(
    spec: ConvLayerSpec,
    lhb_entries: Optional[int] = 1024,
    lhb_assoc: int = 1,
    **kwargs,
) -> float:
    """Fractional speedup of Duplo over baseline (0.25 = +25%)."""
    base, duplo = simulate_pair(spec, lhb_entries, lhb_assoc, **kwargs)
    return duplo.speedup_over(base) - 1.0
