"""Set-associative LRU caches for the L1/L2 hierarchy.

Functional (hit/miss + traffic) cache models replayed over the kernel
trace.  Geometry defaults come from Table III: a 128 KB unified L1
per SM and a 4.5 MB 24-way L2.  Under the representative-SM sampling
(DESIGN.md) the L2 is modelled as this SM's slice — capacity divided
by the number of active SMs — which is statistically equivalent for
the striped, homogeneous CTA streams of GEMM kernels.

The implementation favours replay speed: one ``OrderedDict`` per set
gives O(1) LRU updates, and the line index is computed by the caller
so the hot loop stays allocation-free.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List


@dataclass
class CacheStats:
    """Hit/miss counters for one cache level.

    ``mshr_merges`` counts hits that landed while the line's fill was
    still in flight — requests a real MSHR (Figure 8) would merge onto
    the outstanding miss rather than serve from the data array.
    Traffic-wise the two are identical (one fill either way); the
    split matters for latency attribution and MSHR sizing.
    """

    accesses: int = 0
    hits: int = 0
    mshr_merges: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def demand_hits(self) -> int:
        """Hits served from an actually filled line."""
        return self.hits - self.mshr_merges


class SetAssociativeCache:
    """LRU set-associative cache keyed by line number.

    ``access(line)`` returns True on hit; a miss allocates the line
    (evicting LRU).  ``line_bytes`` must be a power of two so the set
    index is a mask.
    """

    def __init__(
        self,
        capacity_bytes: int,
        assoc: int,
        line_bytes: int = 128,
        mshr_window: int = 0,
    ):
        if capacity_bytes <= 0 or assoc <= 0:
            raise ValueError("capacity and associativity must be positive")
        if line_bytes & (line_bytes - 1):
            raise ValueError(f"line_bytes must be a power of two, got {line_bytes}")
        if mshr_window < 0:
            raise ValueError(f"mshr_window must be >= 0, got {mshr_window}")
        lines = max(assoc, capacity_bytes // line_bytes)
        self.num_sets = max(1, lines // assoc)
        # Round down to a power of two so indexing is a mask.
        while self.num_sets & (self.num_sets - 1):
            self.num_sets &= self.num_sets - 1
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.line_shift = line_bytes.bit_length() - 1
        self.set_mask = self.num_sets - 1
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        #: Hits within this many accesses of a line's miss count as
        #: MSHR merges (0 disables the accounting).
        self.mshr_window = mshr_window
        self._miss_seq: dict = {}
        self._seq = 0
        self.stats = CacheStats()

    @property
    def capacity_bytes(self) -> int:
        return self.num_sets * self.assoc * self.line_bytes

    def line_of(self, address: int) -> int:
        return address >> self.line_shift

    def access(self, line: int) -> bool:
        """Probe (and on miss, fill) the cache with one line."""
        self.stats.accesses += 1
        self._seq += 1
        ways = self._sets[line & self.set_mask]
        if line in ways:
            ways.move_to_end(line)
            self.stats.hits += 1
            if (
                self.mshr_window
                and self._seq - self._miss_seq.get(line, -(1 << 60))
                <= self.mshr_window
            ):
                self.stats.mshr_merges += 1
            return True
        if len(ways) >= self.assoc:
            ways.popitem(last=False)
        ways[line] = True
        if self.mshr_window:
            self._miss_seq[line] = self._seq
        return False

    def contains(self, line: int) -> bool:
        """Non-updating presence probe (used by tests)."""
        return line in self._sets[line & self.set_mask]

    def flush(self) -> None:
        for ways in self._sets:
            ways.clear()
        self._miss_seq.clear()
        self._seq = 0
        self.stats = CacheStats()
