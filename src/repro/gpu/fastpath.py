"""Vectorised columnar replay: the array-based simulation fast path.

:func:`replay_trace_fast` produces **bit-identical** :class:`LayerStats`
to the event-level :func:`repro.gpu.ldst.replay_trace` for every
elimination mode, but replaces the per-event Python loop with a handful
of NumPy passes over the trace's columnar arrays.  It rests on three
exact closed forms:

* **Direct-mapped / oracle LHB** — after any access the set holds the
  tag of that access with its lifetime window freshly anchored, so an
  access hits iff the *previous access to the same set* carried the
  same tag within the retirement window.  One stable sort by set index
  resolves every lookup; the same recurrence with "set = tag" is the
  oracle buffer.  Set-associative LHBs (Figure 12's 2/4/8-way sweep)
  resolve offline too: the buffer's dead-entry-preferring eviction
  *is* plain LRU (an expired entry's ``last_use`` is always older than
  any live entry's, so ``min(alive, last_use)`` equals
  ``min(last_use)``), which restores the stack-distance
  characterisation — an entry is still resident iff fewer than
  ``assoc`` distinct tags touched its set since its previous access,
  and a resident entry hits iff its retirement window also holds.
  PID-tagged multi-kernel interleavings
  (:mod:`repro.gpu.multikernel`) fold the PID into the tag key and
  resolve in the same recurrences.

* **LRU inclusion property** — an access to a set-associative LRU cache
  hits iff its *stack distance* (distinct lines referenced in the same
  set since the previous reference to this line) is below the
  associativity.  Stack distances are computed offline: immediate
  same-line re-references collapse first (they are hits at any
  associativity and provably do not disturb other distances), windows
  shorter than the associativity short-circuit to hits, and the
  residual distances come from a divide-and-conquer dominance count
  (:func:`dominance_counts`) built entirely from radix sorts and
  ``searchsorted`` — no per-event state machine.

* **Serve-order identity** — a load is served by exactly one of
  LHB / shared memory / L1 / L2 / DRAM, so the hierarchy's streams are
  plain boolean-mask filters of the trace once the LHB verdicts are
  known.

``LayerStats`` counters never depend on MSHR-merge attribution or on
the physical registers the LHB records, which is what keeps the closed
forms sufficient; the fast path fills the caller's
:class:`~repro.core.lhb.LHBStats` counters so introspection agrees with
the event path, but the buffer's entry arrays are left empty.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from repro import obs
from repro.conv.layer import ConvLayerSpec
from repro.core.lhb import LoadHistoryBuffer
from repro.gpu.cache import SetAssociativeCache
from repro.gpu.config import GPUConfig, SimulationOptions, TITAN_V
from repro.gpu.isa import (
    EVENT_BYTES,
    KernelTrace,
    LOAD_A,
    LOAD_A_SHARED,
    LOAD_B_SHARED,
    LOAD_INPUT,
    STORE_D,
)
from repro.gpu.ldst import EliminationMode, _load_ids, workspace_unique_ids
from repro.gpu.stats import LayerStats, MemoryBreakdown


class FastPathUnsupported(ValueError):
    """Raised when ``fast_path="on"`` forces an unsupported replay."""


#: Environment override consulted when ``options.fast_path == "auto"``:
#: set ``REPRO_FAST_PATH=on`` / ``off`` to force the replay
#: implementation without rebuilding options objects (the CI
#: equivalence lanes use exactly this).
FAST_PATH_ENV = "REPRO_FAST_PATH"


def fast_path_fallback_reason(
    mode: EliminationMode, lhb: Optional[LoadHistoryBuffer]
) -> Optional[str]:
    """Why this configuration needs the event path (``None`` = covered).

    Every LHB organisation — direct-mapped, set-associative (any
    associativity), oracle — is exactly representable now, as are
    PID-tagged multi-kernel streams.  The one residual fallback is a
    *warm* buffer: the closed forms assume the stream starts against
    an empty LHB, so a caller-supplied buffer that already served
    accesses routes to the event-level state machine.  The reason
    string is the label :func:`resolve_fast_path` reports through
    ``repro.obs`` (``fastpath.fallback.<reason>``) so a silent
    regression to the slow path shows up in metrics.
    """
    if mode is EliminationMode.BASELINE or lhb is None:
        return None
    if not lhb.is_fresh():
        return "warm-lhb"
    return None


def supports_fast_path(
    mode: EliminationMode, lhb: Optional[LoadHistoryBuffer]
) -> bool:
    """True when the vectorised recurrences cover this configuration."""
    return fast_path_fallback_reason(mode, lhb) is None


def resolve_fast_path(
    options,
    mode: EliminationMode,
    lhb: Optional[LoadHistoryBuffer],
) -> bool:
    """Decide which replay implementation serves this simulation.

    ``"auto"`` defers to ``$REPRO_FAST_PATH`` when set, otherwise uses
    the fast path wherever it is exactly representable — any fallback
    to the event path is *observable*, counted under
    ``fastpath.fallback`` (plus a ``fastpath.fallback.<reason>``
    label) so a covered configuration silently regressing to the slow
    path fails the metrics assertions in the test suite.  ``"on"``
    raises :class:`FastPathUnsupported` rather than silently degrade;
    ``"off"`` always takes the event path (an explicit choice, not a
    fallback — it is not counted).
    """
    choice = options.fast_path
    if choice == "auto":
        env = os.environ.get(FAST_PATH_ENV, "").strip().lower()
        if env in ("on", "off"):
            choice = env
    if choice == "off":
        return False
    reason = fast_path_fallback_reason(mode, lhb)
    if reason is None:
        return True
    if choice == "on":
        raise FastPathUnsupported(
            f"fast_path='on' but this configuration ({reason}) requires "
            "the event-level replay; use fast_path='auto'"
        )
    obs.add("fastpath.fallback")
    obs.add(f"fastpath.fallback.{reason}")
    return False


# ----------------------------------------------------------------------
# Generic vectorised building blocks
# ----------------------------------------------------------------------

def stable_order(values: np.ndarray) -> np.ndarray:
    """Stable argsort tuned for int keys.

    NumPy's ``kind="stable"`` argsort (timsort for ints) runs ~4x
    slower than introsort, so when the value range permits we fold the
    position into a composite key — ``(value - min) * n + position`` —
    whose uniqueness makes the default sort's order stable by
    construction.  Extreme ranges (strict-mode element IDs) fall back
    to the stable kind — kept deliberately, and counted under
    ``fastpath.stable_sort_fallback`` so the slow tier is observable.
    """
    n = len(values)
    if n < 2:
        return np.arange(n, dtype=np.int64)
    lo = int(values.min())
    span = int(values.max()) - lo + 1
    if span * n < (1 << 31):
        # Narrow ranges (set indices, cache sets) fit an int32 key,
        # which introsorts another ~30% faster than int64.
        key = (values - np.int64(lo)).astype(np.int32) * np.int32(n)
        key += np.arange(n, dtype=np.int32)
        return np.argsort(key)
    if span <= (1 << 62) // n:
        key = (values - np.int64(lo)) * np.int64(n) + np.arange(n, dtype=np.int64)
        return np.argsort(key)
    obs.add("fastpath.stable_sort_fallback")
    return np.argsort(values, kind="stable")


def distinct_count(values: np.ndarray) -> int:
    """Number of distinct values, via one introsort.

    ``np.unique`` on large int64 arrays routes through a hash table
    that benchmarks ~15x slower than sort-and-count-boundaries; the
    fast path only ever needs the cardinality, never the values.
    """
    if len(values) == 0:
        return 0
    s = np.sort(values)
    return int(np.count_nonzero(s[1:] != s[:-1])) + 1


def prev_in_group(group: np.ndarray) -> np.ndarray:
    """Index of the previous position carrying the same value (-1 if none).

    The workhorse of both recurrences: one stable argsort groups equal
    values while preserving stream order, and a shifted comparison
    links each position to its predecessor in the group.
    """
    n = len(group)
    prev = np.full(n, -1, dtype=np.int64)
    if n < 2:
        return prev
    order = stable_order(group)
    same = group[order[1:]] == group[order[:-1]]
    prev[order[1:][same]] = order[:-1][same]
    return prev


def dominance_counts(
    values: np.ndarray, query_x: np.ndarray, query_t: np.ndarray
) -> np.ndarray:
    """``counts[k] = #{j <= query_x[k] : values[j] < query_t[k]}``.

    Contract: ``values`` lie in ``[-1, m]`` and ``query_t`` in
    ``[-1, m)`` where ``m = len(values)`` — previous-occurrence
    indices (with ``m`` admitted as a "no next occurrence" sentinel:
    it shifts to ``m + 1``, ties the internal query marker, and is
    never counted because every threshold stays at most ``m``).
    ``query_x`` may include ``-1`` (an empty prefix, counting zero).

    Offline 2D dominance counting over a bottom-up merge-sort tree:
    the point array is sorted in place level by level (block size
    doubling each round), and each query prefix ``[0, x]`` decomposes
    into its binary aligned blocks — one block per set bit of
    ``x + 1``, resolved at the level whose block size matches that bit
    with one global ``searchsorted`` (the per-block sorted values are
    made globally monotone by adding ``block_index * offset``).  Every
    (point, query) pair lands in exactly one block of the
    decomposition.  All passes are sorts of presorted halves or binary
    searches; nothing is per-event, and queries never occupy slots, so
    the hot per-level arrays stay at the point count.
    """
    m = len(values)
    q = len(query_x)
    counts = np.zeros(q, dtype=np.int64)
    if q == 0 or m == 0:
        return counts

    padded = 1 << max(0, (m - 1).bit_length())
    big = np.int32(m + 1)  # sentinel: never counted by any threshold
    off = np.int64(m + 2)

    # Point values shift to [0, m+1] so they stay int32 — the per-level
    # sorts are the hot loop, and int32 halves their memory traffic.
    vals = np.full(padded, big, dtype=np.int32)
    vals[:m] = values + 1

    prefix = query_x.astype(np.int64) + 1  # prefix length per query
    qthr = query_t.astype(np.int64) + 1  # "< t" -> "< t+1"

    slot_idx = np.arange(padded, dtype=np.int64)
    blk = np.empty(padded, dtype=np.int64)
    aug = np.empty(padded, dtype=np.int64)
    maxp = int(prefix.max())
    span, shift = 1, 0
    while True:
        pair = 2 * span
        take = (prefix & span) != 0  # this bit's aligned block, if set
        if take.any():
            left_start = prefix[take] & ~np.int64(pair - 1)
            # Per-span-block offsets make the concatenation of all
            # sorted blocks globally monotone for one searchsorted.
            np.right_shift(slot_idx, shift, out=blk)
            np.multiply(blk, off, out=aug)
            aug += vals
            keys = qthr[take] + (left_start >> shift) * off
            hits = np.searchsorted(aug, keys, side="left") - left_start
            counts[take] += hits
        if span >= padded or pair > maxp:
            return counts  # no prefix has a higher bit set
        # Each block is two sorted halves; the stable sort's run
        # detection turns the pass into a linear merge.
        vals.reshape(padded // pair, pair).sort(axis=1, kind="stable")
        span, shift = pair, shift + 1


def lru_hit_mask(lines: np.ndarray, set_mask: int, assoc: int) -> np.ndarray:
    """Exact per-access hit mask of an LRU set-associative cache.

    Implements the stack-distance characterisation: group the stream by
    set, collapse immediate same-line re-references (always hits, no
    state disturbance), short-circuit windows shorter than ``assoc``,
    and resolve the rest with an offline dominance count of
    ``SD(i) = #{j in (p_i, i) : p_j < p_i}`` — the number of
    first-in-window references between an access and its previous
    same-line occurrence ``p_i``.
    """
    n = len(lines)
    hits = np.zeros(n, dtype=bool)
    if n == 0:
        return hits
    lines = np.asarray(lines, dtype=np.int64)
    sets = lines & np.int64(set_mask)

    order = stable_order(sets)
    s_sets = sets[order]
    s_lines = lines[order]

    # Immediate re-reference of the set's MRU line: hit at any assoc,
    # and removing it leaves every other stack distance unchanged.
    collapse = np.zeros(n, dtype=bool)
    collapse[1:] = (s_sets[1:] == s_sets[:-1]) & (s_lines[1:] == s_lines[:-1])
    hits[order[collapse]] = True

    keep = ~collapse
    r_lines = s_lines[keep]
    r_orig = order[keep]
    m = len(r_lines)
    if m == 0:
        return hits

    prev = prev_in_group(r_lines)  # same line => same set => same segment
    has_prev = prev >= 0
    position = np.arange(m, dtype=np.int64)
    window = position - prev - 1

    quick = has_prev & (window < assoc)  # SD <= window length
    hits[r_orig[quick]] = True

    residual = has_prev & ~quick
    if assoc > 1 and residual.any():
        qi = position[residual]
        qt = prev[residual]
        # First-ever occurrences inside the window are distinct lines
        # for free: an O(1) lower bound that settles most queries
        # without touching the dominance machinery.
        csum = np.cumsum(prev < 0)
        alive = (csum[qi - 1] - csum[qt]) < assoc
        qi, qt = qi[alive], qt[alive]
        if len(qi):
            # The window's lower end is closed-form: every prev pointer
            # is strictly below its own index, so
            # #{j <= qt : prev[j] < qt} == qt + 1 exactly.
            counts = dominance_counts(prev, qi - 1, qt)
            sd = counts - (qt + 1)
            hits[r_orig[qi[sd < assoc]]] = True
    return hits


def windowed_distinct_counts(
    group: np.ndarray, tag: np.ndarray
) -> np.ndarray:
    """Per-access distinct-tag count inside the reuse window of its group.

    For each access ``i``, counts the distinct *other* tags that touched
    ``group[i]`` strictly between ``i`` and the previous access of
    ``tag[i]`` (any group); ``-1`` when the tag was never seen before.
    Contract: equal tags always carry equal groups (the LHB's set index
    is a function of the tag's element ID), so the window of an access
    lies entirely inside its group's block once the stream is
    set-grouped — the same decomposition :func:`lru_hit_mask` uses,
    except the raw stack distances are returned instead of being
    compared against an associativity.

    This is the geometry-profiling primitive of :mod:`repro.analytic`:
    with ``group`` = the set index at one power-of-two level, the
    returned distances decide LRU residency for *every* associativity
    at that set count.
    """
    n = len(tag)
    out = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return out
    order = stable_order(np.asarray(group, dtype=np.int64))
    s_tag = np.asarray(tag, dtype=np.int64)[order]
    prev_s = prev_in_group(s_tag)  # same tag => same group => same block
    ip = np.nonzero(prev_s >= 0)[0]
    if len(ip):
        # #{j <= qt : prev_s[j] < qt} == qt + 1 (prev pointers sit
        # strictly below their own index), so the prefix count minus
        # that closed form is exactly the in-window distinct count.
        counts = dominance_counts(prev_s, ip - 1, prev_s[ip])
        out[order[ip]] = counts - (prev_s[ip] + 1)
    return out


# ----------------------------------------------------------------------
# LHB recurrence
# ----------------------------------------------------------------------

def _lhb_set_indices(element: np.ndarray, lhb: LoadHistoryBuffer) -> np.ndarray:
    """Vectorised twin of :meth:`LoadHistoryBuffer._index`."""
    if lhb.hashed_index:
        mixed = element.astype(np.uint64) * np.uint64(0x9E3779B97F4A7C15)
        mixed = mixed ^ (mixed >> np.uint64(29))
        return (mixed % np.uint64(lhb.num_sets)).astype(np.int64)
    return np.mod(element.astype(np.int64), lhb.num_sets)


def simulate_lhb_stream(
    element: np.ndarray,
    batch: np.ndarray,
    lhb: LoadHistoryBuffer,
    pid: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Replay a lookup stream through ``lhb`` in closed form.

    Returns the per-lookup hit mask and fills ``lhb.stats`` with the
    exact counters the event path would produce.  The buffer's entry
    storage is left empty — only the statistics are materialised.

    ``pid`` carries the per-lookup process ID of a multi-kernel
    interleaving (:mod:`repro.gpu.multikernel`); omitted, all lookups
    share one PID (the single-kernel replay invariant) and the tag
    reduces to ``(element_id, batch_id)``.  The PID folds into the
    tag key only — set indexing stays a function of the element ID,
    exactly as :meth:`~repro.core.lhb.LoadHistoryBuffer._index`.
    """
    n = len(element)
    stats = lhb.stats
    stats.lookups += n
    if n == 0:
        return np.zeros(0, dtype=bool)
    element = np.asarray(element, dtype=np.int64)
    batch = np.asarray(batch, dtype=np.int64)

    # Injective (element, batch[, pid]) -> int64 key: batches and PIDs
    # are small non-negative ints, elements may be negative (merged
    # padding).
    base = np.int64(int(batch.max()) + 1)
    tag = element * base + batch
    if pid is not None:
        pid = np.asarray(pid, dtype=np.int64)
        pbase = np.int64(int(pid.max()) + 1)
        tag = tag * pbase + pid

    if not lhb.is_oracle and lhb.assoc > 1:
        return _set_associative_lhb_stream(element, tag, lhb)

    # One stable sort groups the stream by set (tag, for the oracle);
    # every lookup's predecessor-in-set is then simply the previous
    # sorted neighbour, so the whole recurrence reduces to adjacent
    # pair comparisons in sorted space.  ``order`` holds stream
    # positions, so ``order[i] - order[i-1]`` is the lifetime gap.
    group = tag if lhb.is_oracle else _lhb_set_indices(element, lhb)
    order = stable_order(group)
    adjacent = group[order[1:]] == group[order[:-1]]  # has a predecessor
    if lhb.is_oracle:
        same_tag = adjacent
    else:
        s_tag = tag[order]
        same_tag = adjacent & (s_tag[1:] == s_tag[:-1])
    if lhb.lifetime is None:
        within = adjacent
    else:
        within = adjacent & ((order[1:] - order[:-1]) < lhb.lifetime)

    hit_pairs = same_tag & within
    hit = np.zeros(n, dtype=bool)
    hit[order[1:]] = hit_pairs
    n_hits = int(hit_pairs.sum())
    stats.hits += n_hits
    stats.misses += n - n_hits
    stats.expired_misses += int((same_tag & ~within).sum())
    if lhb.is_oracle:
        # Adjacency already chains same-tag accesses: the group leaders
        # are exactly the first-of-tag (compulsory) lookups.
        stats.compulsory_misses += n - int(adjacent.sum())
    else:
        stats.conflict_replacements += int((adjacent & ~same_tag & within).sum())
        stats.compulsory_misses += distinct_count(tag)
    return hit


def _set_associative_lhb_stream(
    element: np.ndarray, tag: np.ndarray, lhb: LoadHistoryBuffer
) -> np.ndarray:
    """Offline per-set LRU resolution of a 2+-way LHB stream.

    The buffer's eviction rule — prefer a dead entry, else least
    ``last_use`` — *is* plain LRU: an entry is dead iff its last use
    is at least ``lifetime`` steps old, so every dead entry is older
    than every live one and ``min((alive, last_use))`` coincides with
    ``min(last_use)``.  The expired-tag path (remove + reallocate)
    likewise just refreshes the tag's recency.  Set membership is
    therefore the classic "``assoc`` most recently used distinct tags
    per set", and each counter has a closed form over stack distances:

    * **resident** — previous access to the tag exists and fewer than
      ``assoc`` distinct tags touched the set in between (LRU
      inclusion; counted by the same dominance pass as
      :func:`lru_hit_mask`);
    * **hit** — resident and the previous access is within the
      retirement window (global stream positions — the LHB sequence
      number spans all sets);
    * **expired miss** — resident but outside the window (the entry is
      still in the set, so the event path finds-and-removes it);
    * **conflict replacement** — a miss of a non-resident tag in a
      full set (``assoc``-th distinct tag already seen) whose LRU
      victim is still live.  The victim is the ``assoc``-th most
      recently used distinct tag, so it is live iff at least ``assoc``
      distinct tags had their latest access inside the window — a
      windowed last-occurrence count, answered by one more dominance
      pass over next-occurrence indices.
    """
    n = len(tag)
    stats = lhb.stats
    assoc = lhb.assoc
    sets = _lhb_set_indices(element, lhb)

    order = stable_order(sets)  # set-grouped, stream order within
    s_tag = tag[order]
    pos = np.arange(n, dtype=np.int64)
    prev_s = prev_in_group(s_tag)  # same tag => same set => same block
    has_prev = prev_s >= 0

    first = ~has_prev  # first-ever occurrence of the tag (== in-set)
    csum = np.cumsum(first)

    # Residency: windows shorter than assoc short-circuit; first-ever
    # occurrences inside the window are distinct tags for free (an
    # O(1) stack-distance lower bound that settles most of the rest);
    # only the survivors pay for the dominance count of lru_hit_mask.
    window = pos - prev_s - 1  # same-set accesses strictly in between
    resident = has_prev & (window < assoc)
    residual = has_prev & ~resident
    if residual.any():
        qi = pos[residual]
        qt = prev_s[residual]
        alive = (csum[qi - 1] - csum[qt]) < assoc
        qi, qt = qi[alive], qt[alive]
        if len(qi):
            # The lower end of the window is closed-form: prev pointers
            # sit strictly below their own index, so
            # #{j <= qt : prev_s[j] < qt} == qt + 1 exactly.
            counts = dominance_counts(prev_s, qi - 1, qt)
            sd = counts - (qt + 1)
            resident[qi[sd < assoc]] = True

    # Retirement window: gaps are *global* stream positions (the LHB
    # sequence number counts every lookup, whichever set it lands in).
    within = np.zeros(n, dtype=bool)
    ip = np.nonzero(has_prev)[0]
    if lhb.lifetime is None:
        within[ip] = True
    else:
        within[ip] = (order[ip] - order[prev_s[ip]]) < lhb.lifetime

    hit_s = resident & within
    hit = np.zeros(n, dtype=bool)
    hit[order] = hit_s
    n_hits = int(hit_s.sum())
    stats.hits += n_hits
    stats.misses += n - n_hits
    stats.expired_misses += int((resident & ~within).sum())
    stats.compulsory_misses += distinct_count(tag)

    # Conflict replacements: misses of non-resident tags in full sets.
    s_sets = sets[order]
    new_block = np.ones(n, dtype=bool)
    new_block[1:] = s_sets[1:] != s_sets[:-1]
    block_id = np.cumsum(new_block) - 1
    bstart = pos[new_block][block_id]  # block start per sorted slot
    distinct_before = (csum - first) - (csum[bstart] - first[bstart])
    evict = ~resident & (distinct_before >= assoc)
    if evict.any():
        if lhb.lifetime is None:
            stats.conflict_replacements += int(evict.sum())
        else:
            ei = pos[evict]
            # Next same-tag occurrence per sorted slot (n = none).
            nxt = np.full(n, n, dtype=np.int64)
            nxt[prev_s[ip]] = ip
            # First in-window slot of each evicting miss's set block:
            # per-block offsets keep the (block, global position) key
            # monotone for one global searchsorted.
            big = np.int64(n + 1)
            aug = block_id * big + order
            first_in_window = np.searchsorted(
                aug, block_id[ei] * big + (order[ei] - lhb.lifetime),
                side="right",
            )
            # A window opening before the stream start underflows into
            # the previous set's block; the block start is the floor.
            first_in_window = np.maximum(first_in_window, bstart[ei])
            # Windows with fewer than assoc slots cannot hold assoc
            # live members — drop them before the dominance pass.
            wide = (ei - first_in_window) >= assoc
            ei, first_in_window = ei[wide], first_in_window[wide]
            if len(ei):
                # Live members = distinct tags whose *latest* access
                # before the miss sits inside the window: slots j in
                # [first_in_window, ei) with no later same-tag slot
                # < ei.
                k = len(ei)
                counts = dominance_counts(
                    nxt,
                    np.concatenate([ei - 1, first_in_window - 1]),
                    np.concatenate([ei, ei]),
                )
                reappearing = counts[:k] - counts[k:]
                live_members = (ei - first_in_window) - reappearing
                stats.conflict_replacements += int(
                    (live_members >= assoc).sum()
                )
    return hit


# ----------------------------------------------------------------------
# Full replay
# ----------------------------------------------------------------------

def replay_trace_fast(
    trace: KernelTrace,
    spec: ConvLayerSpec,
    gpu: GPUConfig = TITAN_V,
    options: SimulationOptions = SimulationOptions(),
    mode: EliminationMode = EliminationMode.DUPLO,
    lhb: Optional[LoadHistoryBuffer] = None,
    l2_share_sms: Optional[int] = None,
) -> LayerStats:
    """Vectorised, bit-identical drop-in for ``replay_trace``.

    Raises :class:`FastPathUnsupported` for configurations the closed
    forms cannot represent (currently only a warm, already-accessed
    LHB) — callers on ``fast_path="auto"`` route those to the event
    path.
    """
    if mode is not EliminationMode.BASELINE and lhb is None:
        lhb = LoadHistoryBuffer(lifetime=options.lhb_lifetime)
    reason = fast_path_fallback_reason(mode, lhb)
    if reason is not None:
        raise FastPathUnsupported(
            f"configuration ({reason}) has no vectorised recurrence; "
            "use the event-level replay"
        )
    obs.add("fastpath.replays")
    obs.add("fastpath.events", int(trace.kind.size))
    # Zero-copy traces keep ``address`` as a strided memmap view; the
    # passes below each walk the full column, so materialise it once.
    trace = trace.densify()

    l2_capacity = gpu.l2_bytes
    if l2_share_sms is not None:
        l2_capacity = max(
            gpu.l2_bytes // l2_share_sms, gpu.l2_assoc * gpu.l2_line_bytes
        )
    l1 = SetAssociativeCache(
        gpu.l1_bytes, gpu.l1_assoc, gpu.l1_line_bytes,
        mshr_window=gpu.l1_latency,
    )
    l2 = SetAssociativeCache(l2_capacity, gpu.l2_assoc, gpu.l2_line_bytes)

    is_load = trace.kind != STORE_D
    load_kind = trace.kind[is_load]
    load_addr = trace.address[is_load]
    consults, batch, element = _load_ids(
        trace, spec, options, mode, load_kind, load_addr
    )

    n = len(load_kind)
    eliminated = np.zeros(n, dtype=bool)
    if lhb is not None:
        if options.lhb_granularity == "fragment":
            idx = np.nonzero(consults)[0]
            eliminated[idx] = simulate_lhb_stream(element[idx], batch[idx], lhb)
        else:
            instr = trace.instr[is_load]
            first = np.ones(n, dtype=bool)
            first[1:] = instr[1:] != instr[:-1]
            group = np.cumsum(first) - 1
            base_idx = np.nonzero(first)[0]
            looked_up = consults[base_idx]
            lookup_idx = base_idx[looked_up]
            hit = simulate_lhb_stream(element[lookup_idx], batch[lookup_idx], lhb)
            group_hit = np.zeros(len(base_idx), dtype=bool)
            group_hit[looked_up] = hit
            eliminated = group_hit[group]

    is_shared = (load_kind == LOAD_A_SHARED) | (load_kind == LOAD_B_SHARED)
    served_shared_mask = is_shared & ~eliminated
    to_l1 = ~eliminated & ~is_shared
    lines = load_addr[to_l1] >> l1.line_shift

    l1_hit_mask = lru_hit_mask(lines, l1.set_mask, l1.assoc)
    l2_lines = lines[~l1_hit_mask]
    l2_hit_mask = lru_hit_mask(l2_lines, l2.set_mask, l2.assoc)

    served_lhb = int(eliminated.sum())
    served_shared = int(served_shared_mask.sum())
    l1_accesses = int(lines.size)
    l1_hits = int(l1_hit_mask.sum())
    l2_accesses = int(l2_lines.size)
    l2_hits = int(l2_hit_mask.sum())
    served_dram = l2_accesses - l2_hits
    dram_read_bytes = served_dram * gpu.l1_line_bytes

    l1.stats.accesses, l1.stats.hits = l1_accesses, l1_hits
    l2.stats.accesses, l2.stats.hits = l2_accesses, l2_hits

    is_a = (load_kind == LOAD_A) | (load_kind == LOAD_A_SHARED)
    stores = int((trace.kind == STORE_D).sum())
    loads_a = int(is_a.sum())
    loads_input = int((load_kind == LOAD_INPUT).sum())
    loads_b = n - loads_a - loads_input
    if mode is EliminationMode.DUPLO and options.lhb_granularity == "fragment":
        # The _load_ids pass already translated every A-load address
        # with the same generator ``workspace_unique_ids`` would build;
        # reuse its output instead of translating the stream twice.
        translated = is_a & consults
        keys = batch[translated] * (1 << 44) + element[translated]
        ws_instrs = loads_a
        unique_ids = distinct_count(keys) + loads_a - int(translated.sum())
    else:
        ws_instrs, unique_ids = workspace_unique_ids(trace, spec, options)
    return LayerStats(
        loads_total=n,
        loads_workspace=loads_a,
        loads_filter=loads_b,
        loads_input=loads_input,
        stores=stores,
        workspace_instructions=ws_instrs,
        lhb_lookups=lhb.stats.lookups if lhb is not None else 0,
        lhb_hits=lhb.stats.hits if lhb is not None else 0,
        eliminated_fragments=served_lhb,
        unique_workspace_ids=unique_ids,
        l1_accesses=l1_accesses,
        l1_hits=l1_hits,
        l2_accesses=l2_accesses,
        l2_hits=l2_hits,
        dram_read_bytes=dram_read_bytes,
        dram_write_bytes=stores * EVENT_BYTES[STORE_D],
        mma_ops=trace.mma_ops,
        breakdown=MemoryBreakdown(
            lhb=served_lhb,
            l1=l1_hits,
            l2=l2_hits,
            dram=served_dram,
            shared=served_shared,
        ),
    )
