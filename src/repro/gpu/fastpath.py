"""Vectorised columnar replay: the array-based simulation fast path.

:func:`replay_trace_fast` produces **bit-identical** :class:`LayerStats`
to the event-level :func:`repro.gpu.ldst.replay_trace` for every
elimination mode, but replaces the per-event Python loop with a handful
of NumPy passes over the trace's columnar arrays.  It rests on three
exact closed forms:

* **Direct-mapped / oracle LHB** — after any access the set holds the
  tag of that access with its lifetime window freshly anchored, so an
  access hits iff the *previous access to the same set* carried the
  same tag within the retirement window.  One stable sort by set index
  resolves every lookup; the same recurrence with "set = tag" is the
  oracle buffer.  Set-associative LHBs (Figure 12's 2/4/8-way sweep)
  resolve offline too: the buffer's dead-entry-preferring eviction
  *is* plain LRU (an expired entry's ``last_use`` is always older than
  any live entry's, so ``min(alive, last_use)`` equals
  ``min(last_use)``), which restores the stack-distance
  characterisation — an entry is still resident iff fewer than
  ``assoc`` distinct tags touched its set since its previous access,
  and a resident entry hits iff its retirement window also holds.
  PID-tagged multi-kernel interleavings
  (:mod:`repro.gpu.multikernel`) fold the PID into the tag key and
  resolve in the same recurrences.  *Warm* buffers resolve too: the
  buffer's residency snapshot (latest-per-tag membership with global
  sequence positions) prepends to the stream as a prefix of resident
  rows, and the recurrences run on global positions instead of stream
  offsets — for a fresh buffer the two coincide, so the fresh case is
  byte-for-byte the old closed form.

* **LRU inclusion property** — an access to a set-associative LRU cache
  hits iff its *stack distance* (distinct lines referenced in the same
  set since the previous reference to this line) is below the
  associativity.  Stack distances are computed offline: immediate
  same-line re-references collapse first (they are hits at any
  associativity and provably do not disturb other distances), windows
  shorter than the associativity short-circuit to hits, and the
  residual distances come from a divide-and-conquer dominance count
  (:func:`dominance_counts`) built entirely from radix sorts and
  ``searchsorted`` — no per-event state machine.

* **Serve-order identity** — a load is served by exactly one of
  LHB / shared memory / L1 / L2 / DRAM, so the hierarchy's streams are
  plain boolean-mask filters of the trace once the LHB verdicts are
  known.

``LayerStats`` counters never depend on MSHR-merge attribution or on
the physical registers the LHB records, which is what keeps the closed
forms sufficient; the fast path fills the caller's
:class:`~repro.core.lhb.LHBStats` counters so introspection agrees with
the event path, and logs the replayed stream with the buffer
(:meth:`~repro.core.lhb.LoadHistoryBuffer.note_fast_replay`) so
post-replay state — membership, recency, seen tags — reconstructs
lazily on the next event-path touch.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from repro import obs
from repro.conv.layer import ConvLayerSpec
from repro.core.compiler import build_convolution_info
from repro.core.idgen import IDGenerator
from repro.core.lhb import LoadHistoryBuffer, vector_set_indices
from repro.gpu.cache import SetAssociativeCache
from repro.gpu.config import GPUConfig, SimulationOptions, TITAN_V
from repro.gpu.isa import (
    KernelTrace,
    LOAD_A,
    LOAD_A_SHARED,
    LOAD_B_SHARED,
    LOAD_INPUT,
    STORE_D,
    WORKSPACE_BASE,
)
from repro.gpu.ldst import EliminationMode, load_ids_for
from repro.gpu.stats import LayerStats, MemoryBreakdown


class FastPathUnsupported(ValueError):
    """Raised when ``fast_path="on"`` forces an unsupported replay."""


#: Environment override consulted when ``options.fast_path == "auto"``:
#: set ``REPRO_FAST_PATH=on`` / ``off`` to force the replay
#: implementation without rebuilding options objects (the CI
#: equivalence lanes use exactly this).
FAST_PATH_ENV = "REPRO_FAST_PATH"


def fast_path_fallback_reason(
    mode: EliminationMode, lhb: Optional[LoadHistoryBuffer]
) -> Optional[str]:
    """Why this configuration needs the event path (``None`` = covered).

    Every configuration is exactly representable now: every LHB
    organisation — direct-mapped, set-associative (any associativity),
    oracle — plus PID-tagged multi-kernel streams, plus *warm* buffers
    (the last holdout, closed by seeding the sorted-space recurrence
    with the buffer's residency snapshot; the retired
    ``fastpath.fallback.warm-lhb`` counter stays at zero).  The
    function is kept — returning ``None`` unconditionally — so callers
    and the ``fastpath.fallback.<reason>`` obs plumbing in
    :func:`resolve_fast_path` survive any future coverage gap.
    """
    return None


def supports_fast_path(
    mode: EliminationMode, lhb: Optional[LoadHistoryBuffer]
) -> bool:
    """True when the vectorised recurrences cover this configuration."""
    return fast_path_fallback_reason(mode, lhb) is None


def resolve_fast_path(
    options,
    mode: EliminationMode,
    lhb: Optional[LoadHistoryBuffer],
) -> bool:
    """Decide which replay implementation serves this simulation.

    ``"auto"`` defers to ``$REPRO_FAST_PATH`` when set, otherwise uses
    the fast path wherever it is exactly representable — any fallback
    to the event path is *observable*, counted under
    ``fastpath.fallback`` (plus a ``fastpath.fallback.<reason>``
    label) so a covered configuration silently regressing to the slow
    path fails the metrics assertions in the test suite.  ``"on"``
    raises :class:`FastPathUnsupported` rather than silently degrade;
    ``"off"`` always takes the event path (an explicit choice, not a
    fallback — it is not counted).
    """
    choice = options.fast_path
    if choice == "auto":
        env = os.environ.get(FAST_PATH_ENV, "").strip().lower()
        if env in ("on", "off"):
            choice = env
    if choice == "off":
        return False
    reason = fast_path_fallback_reason(mode, lhb)
    if reason is None:
        return True
    if choice == "on":
        raise FastPathUnsupported(
            f"fast_path='on' but this configuration ({reason}) requires "
            "the event-level replay; use fast_path='auto'"
        )
    obs.add("fastpath.fallback")
    obs.add(f"fastpath.fallback.{reason}")
    return False


# ----------------------------------------------------------------------
# Generic vectorised building blocks
# ----------------------------------------------------------------------

def stable_order(values: np.ndarray) -> np.ndarray:
    """Stable argsort tuned for int keys.

    NumPy's ``kind="stable"`` argsort (timsort for ints) runs ~4x
    slower than introsort, so when the value range permits we fold the
    position into a composite key — ``(value - min) * n + position`` —
    whose uniqueness makes the default sort's order stable by
    construction.  Extreme ranges (strict-mode element IDs) fall back
    to the stable kind — kept deliberately, and counted under
    ``fastpath.stable_sort_fallback`` so the slow tier is observable.
    """
    n = len(values)
    if n < 2:
        return np.arange(n, dtype=np.int64)
    lo = int(values.min())
    span = int(values.max()) - lo + 1
    if span * n < (1 << 31):
        # Narrow ranges (set indices, cache sets) fit an int32 key,
        # which introsorts another ~30% faster than int64.
        key = (values - np.int64(lo)).astype(np.int32) * np.int32(n)
        key += np.arange(n, dtype=np.int32)
        return np.argsort(key)
    if span <= (1 << 62) // n:
        key = (values - np.int64(lo)) * np.int64(n) + np.arange(n, dtype=np.int64)
        return np.argsort(key)
    obs.add("fastpath.stable_sort_fallback")
    return np.argsort(values, kind="stable")


def distinct_count(values: np.ndarray) -> int:
    """Number of distinct values, via one introsort.

    ``np.unique`` on large int64 arrays routes through a hash table
    that benchmarks ~15x slower than sort-and-count-boundaries; the
    fast path only ever needs the cardinality, never the values.
    """
    if len(values) == 0:
        return 0
    s = np.sort(values)
    return int(np.count_nonzero(s[1:] != s[:-1])) + 1


def prev_in_group(group: np.ndarray) -> np.ndarray:
    """Index of the previous position carrying the same value (-1 if none).

    The workhorse of both recurrences: one stable argsort groups equal
    values while preserving stream order, and a shifted comparison
    links each position to its predecessor in the group.
    """
    n = len(group)
    prev = np.full(n, -1, dtype=np.int64)
    if n < 2:
        return prev
    order = stable_order(group)
    same = group[order[1:]] == group[order[:-1]]
    prev[order[1:][same]] = order[:-1][same]
    return prev


def dominance_counts(
    values: np.ndarray, query_x: np.ndarray, query_t: np.ndarray
) -> np.ndarray:
    """``counts[k] = #{j <= query_x[k] : values[j] < query_t[k]}``.

    Contract: ``values`` lie in ``[-1, m]`` and ``query_t`` in
    ``[-1, m)`` where ``m = len(values)`` — previous-occurrence
    indices (with ``m`` admitted as a "no next occurrence" sentinel:
    it shifts to ``m + 1``, ties the internal query marker, and is
    never counted because every threshold stays at most ``m``).
    ``query_x`` may include ``-1`` (an empty prefix, counting zero).

    Offline 2D dominance counting over a bottom-up merge-sort tree:
    the point array is sorted in place level by level (block size
    doubling each round), and each query prefix ``[0, x]`` decomposes
    into its binary aligned blocks — one block per set bit of
    ``x + 1``, resolved at the level whose block size matches that bit
    with one global ``searchsorted`` (the per-block sorted values are
    made globally monotone by adding ``block_index * offset``).  Every
    (point, query) pair lands in exactly one block of the
    decomposition.  All passes are sorts of presorted halves or binary
    searches; nothing is per-event, and queries never occupy slots, so
    the hot per-level arrays stay at the point count.
    """
    m = len(values)
    q = len(query_x)
    counts = np.zeros(q, dtype=np.int64)
    if q == 0 or m == 0:
        return counts

    padded = 1 << max(0, (m - 1).bit_length())
    big = np.int32(m + 1)  # sentinel: never counted by any threshold
    off = np.int64(m + 2)

    # Point values shift to [0, m+1] so they stay int32 — the per-level
    # sorts are the hot loop, and int32 halves their memory traffic.
    vals = np.full(padded, big, dtype=np.int32)
    vals[:m] = values + 1

    prefix = query_x.astype(np.int64) + 1  # prefix length per query
    qthr = query_t.astype(np.int64) + 1  # "< t" -> "< t+1"

    slot_idx = np.arange(padded, dtype=np.int64)
    blk = np.empty(padded, dtype=np.int64)
    aug = np.empty(padded, dtype=np.int64)
    maxp = int(prefix.max())
    span, shift = 1, 0
    while True:
        pair = 2 * span
        take = (prefix & span) != 0  # this bit's aligned block, if set
        if take.any():
            left_start = prefix[take] & ~np.int64(pair - 1)
            # Per-span-block offsets make the concatenation of all
            # sorted blocks globally monotone for one searchsorted.
            np.right_shift(slot_idx, shift, out=blk)
            np.multiply(blk, off, out=aug)
            aug += vals
            keys = qthr[take] + (left_start >> shift) * off
            hits = np.searchsorted(aug, keys, side="left") - left_start
            counts[take] += hits
        if span >= padded or pair > maxp:
            return counts  # no prefix has a higher bit set
        # Each block is two sorted halves; the stable sort's run
        # detection turns the pass into a linear merge.
        vals.reshape(padded // pair, pair).sort(axis=1, kind="stable")
        span, shift = pair, shift + 1


def lru_hit_mask(lines: np.ndarray, set_mask: int, assoc: int) -> np.ndarray:
    """Exact per-access hit mask of an LRU set-associative cache.

    Implements the stack-distance characterisation: group the stream by
    set, collapse immediate same-line re-references (always hits, no
    state disturbance), short-circuit windows shorter than ``assoc``,
    and resolve the rest with an offline dominance count of
    ``SD(i) = #{j in (p_i, i) : p_j < p_i}`` — the number of
    first-in-window references between an access and its previous
    same-line occurrence ``p_i``.
    """
    n = len(lines)
    hits = np.zeros(n, dtype=bool)
    if n == 0:
        return hits
    lines = np.asarray(lines, dtype=np.int64)
    sets = lines & np.int64(set_mask)

    order = stable_order(sets)
    s_sets = sets[order]
    s_lines = lines[order]

    # Immediate re-reference of the set's MRU line: hit at any assoc,
    # and removing it leaves every other stack distance unchanged.
    collapse = np.zeros(n, dtype=bool)
    collapse[1:] = (s_sets[1:] == s_sets[:-1]) & (s_lines[1:] == s_lines[:-1])
    hits[order[collapse]] = True

    keep = ~collapse
    r_lines = s_lines[keep]
    r_orig = order[keep]
    m = len(r_lines)
    if m == 0:
        return hits

    prev = prev_in_group(r_lines)  # same line => same set => same segment
    has_prev = prev >= 0
    position = np.arange(m, dtype=np.int64)
    window = position - prev - 1

    quick = has_prev & (window < assoc)  # SD <= window length
    hits[r_orig[quick]] = True

    residual = has_prev & ~quick
    if assoc > 1 and residual.any():
        qi = position[residual]
        qt = prev[residual]
        # First-ever occurrences inside the window are distinct lines
        # for free: an O(1) lower bound that settles most queries
        # without touching the dominance machinery.
        csum = np.cumsum(prev < 0)
        alive = (csum[qi - 1] - csum[qt]) < assoc
        qi, qt = qi[alive], qt[alive]
        if len(qi):
            # The window's lower end is closed-form: every prev pointer
            # is strictly below its own index, so
            # #{j <= qt : prev[j] < qt} == qt + 1 exactly.
            counts = dominance_counts(prev, qi - 1, qt)
            sd = counts - (qt + 1)
            hits[r_orig[qi[sd < assoc]]] = True
    return hits


def windowed_distinct_counts(
    group: np.ndarray, tag: np.ndarray
) -> np.ndarray:
    """Per-access distinct-tag count inside the reuse window of its group.

    For each access ``i``, counts the distinct *other* tags that touched
    ``group[i]`` strictly between ``i`` and the previous access of
    ``tag[i]`` (any group); ``-1`` when the tag was never seen before.
    Contract: equal tags always carry equal groups (the LHB's set index
    is a function of the tag's element ID), so the window of an access
    lies entirely inside its group's block once the stream is
    set-grouped — the same decomposition :func:`lru_hit_mask` uses,
    except the raw stack distances are returned instead of being
    compared against an associativity.

    This is the geometry-profiling primitive of :mod:`repro.analytic`:
    with ``group`` = the set index at one power-of-two level, the
    returned distances decide LRU residency for *every* associativity
    at that set count.
    """
    n = len(tag)
    out = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return out
    order = stable_order(np.asarray(group, dtype=np.int64))
    s_tag = np.asarray(tag, dtype=np.int64)[order]
    prev_s = prev_in_group(s_tag)  # same tag => same group => same block
    ip = np.nonzero(prev_s >= 0)[0]
    if len(ip):
        # #{j <= qt : prev_s[j] < qt} == qt + 1 (prev pointers sit
        # strictly below their own index), so the prefix count minus
        # that closed form is exactly the in-window distinct count.
        counts = dominance_counts(prev_s, ip - 1, prev_s[ip])
        out[order[ip]] = counts - (prev_s[ip] + 1)
    return out


# ----------------------------------------------------------------------
# LHB recurrence
# ----------------------------------------------------------------------

def _lhb_set_indices(element: np.ndarray, lhb: LoadHistoryBuffer) -> np.ndarray:
    """Vectorised twin of :meth:`LoadHistoryBuffer._index`."""
    return vector_set_indices(element, lhb.num_sets, lhb.hashed_index)


def simulate_lhb_stream(
    element: np.ndarray,
    batch: np.ndarray,
    lhb: LoadHistoryBuffer,
    pid: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Replay a lookup stream through ``lhb`` in closed form.

    Returns the per-lookup hit mask and fills ``lhb.stats`` with the
    exact counters the event path would produce.  The buffer may be
    *warm*: its residency snapshot (latest-per-tag membership with
    global sequence positions) prepends to the stream as a prefix of
    already-resident rows, and the recurrences compare retirement
    windows on global positions — for a fresh buffer those equal the
    stream offsets, so the fresh case reduces to the plain closed form.
    The replayed segment is logged with the buffer
    (:meth:`~repro.core.lhb.LoadHistoryBuffer.note_fast_replay`), so
    the sequence counter advances and a later event-path touch or
    chained fast replay sees the exact post-stream state.

    ``pid`` carries the per-lookup process ID of a multi-kernel
    interleaving (:mod:`repro.gpu.multikernel`); omitted, all lookups
    share PID 0 (the single-kernel replay invariant) and the tag
    reduces to ``(element_id, batch_id)``.  The PID folds into the
    tag key only — set indexing stays a function of the element ID,
    exactly as :meth:`~repro.core.lhb.LoadHistoryBuffer._index`.
    """
    n = len(element)
    stats = lhb.stats
    stats.lookups += n
    if n == 0:
        return np.zeros(0, dtype=bool)
    element = np.asarray(element, dtype=np.int64)
    batch = np.asarray(batch, dtype=np.int64)
    if pid is not None:
        pid = np.asarray(pid, dtype=np.int64)

    # Fold any carried-over state into the columnar snapshot.  The
    # prefix rows carry the residency the event path would hold (one
    # row per resident tag, positioned at its last use); the stream
    # continues the buffer's global sequence numbering.
    warm = lhb.residency_snapshot()
    n_prefix = len(warm.element)
    warm_seen = len(warm.seen_element) > 0
    gpos = lhb._seq + 1 + np.arange(n, dtype=np.int64)
    full_el, full_ba, full_pi = element, batch, pid
    if n_prefix:
        full_el = np.concatenate([warm.element, element])
        full_ba = np.concatenate([warm.batch, batch])
        full_pi = np.concatenate(
            [warm.pid, pid if pid is not None else np.zeros(n, dtype=np.int64)]
        )
        gpos = np.concatenate([warm.last_use, gpos])

    # Injective (element, batch[, pid]) -> int64 key: batches and PIDs
    # are small non-negative ints, elements may be negative (merged
    # padding).  Bases span the seen tags too so stream keys and the
    # compulsory-miss filter live in one key space.
    bmax = int(full_ba.max())
    if warm_seen:
        bmax = max(bmax, int(warm.seen_batch.max()))
    base = np.int64(bmax + 1)
    tag = full_el * base + full_ba
    seen_key = None
    if warm_seen:
        seen_key = warm.seen_element * base + warm.seen_batch
    if full_pi is not None or (warm_seen and warm.seen_pid.any()):
        if full_pi is None:
            full_pi = np.zeros(len(full_el), dtype=np.int64)
        pmax = int(full_pi.max())
        if warm_seen:
            pmax = max(pmax, int(warm.seen_pid.max()))
        pbase = np.int64(pmax + 1)
        tag = tag * pbase + full_pi
        if seen_key is not None:
            seen_key = seen_key * pbase + warm.seen_pid

    if not lhb.is_oracle and lhb.assoc > 1:
        hit_full = _set_associative_lhb_stream(full_el, tag, gpos, n_prefix, lhb)
    else:
        # One stable sort groups the rows by set (tag, for the oracle);
        # every lookup's predecessor-in-set is then simply the previous
        # sorted neighbour, so the whole recurrence reduces to adjacent
        # pair comparisons in sorted space.  Rows enter in ascending
        # ``gpos`` order (prefix first), so within a group the sorted
        # neighbours are consecutive in global time; prefix rows carry
        # distinct tags — at most one per set — and therefore are never
        # the *later* element of a pair.
        group = tag if lhb.is_oracle else _lhb_set_indices(full_el, lhb)
        order = stable_order(group)
        adjacent = group[order[1:]] == group[order[:-1]]  # has a predecessor
        if lhb.is_oracle:
            same_tag = adjacent
        else:
            s_tag = tag[order]
            same_tag = adjacent & (s_tag[1:] == s_tag[:-1])
        if lhb.lifetime is None:
            within = adjacent
        elif n_prefix == 0:
            # Fresh: gpos is affine in stream position, so position
            # gaps equal gpos gaps — skip the gather.
            within = adjacent & ((order[1:] - order[:-1]) < lhb.lifetime)
        else:
            g_s = gpos[order]
            within = adjacent & ((g_s[1:] - g_s[:-1]) < lhb.lifetime)

        hit_pairs = same_tag & within
        hit_full = np.zeros(n_prefix + n, dtype=bool)
        hit_full[order[1:]] = hit_pairs
        n_hits = int(hit_pairs.sum())
        stats.hits += n_hits
        stats.misses += n - n_hits
        stats.expired_misses += int((same_tag & ~within).sum())
        if lhb.is_oracle:
            if not warm_seen:
                # Adjacency already chains same-tag accesses: the group
                # leaders are exactly the first-of-tag (compulsory)
                # lookups.
                stats.compulsory_misses += n - int(adjacent.sum())
        else:
            stats.conflict_replacements += int(
                (adjacent & ~same_tag & within).sum()
            )

    # Compulsory misses: distinct stream tags never seen before.  The
    # event path counts a tag's first-ever miss; a stream tag absent
    # from the seen set necessarily misses on its first occurrence
    # (no resident prefix row carries an unseen tag).
    if warm_seen:
        stream_tag = tag[n_prefix:]
        sk = np.sort(seen_key)
        st = np.sort(stream_tag)
        firsts = np.ones(len(st), dtype=bool)
        firsts[1:] = st[1:] != st[:-1]
        distinct = st[firsts]
        idx = np.searchsorted(sk, distinct)
        idx[idx == len(sk)] = len(sk) - 1
        stats.compulsory_misses += int((sk[idx] != distinct).sum())
    elif not lhb.is_oracle:
        stats.compulsory_misses += distinct_count(tag)

    lhb.note_fast_replay(element, batch, pid)
    return hit_full[n_prefix:]


def _set_associative_lhb_stream(
    element: np.ndarray,
    tag: np.ndarray,
    gpos: np.ndarray,
    n_prefix: int,
    lhb: LoadHistoryBuffer,
) -> np.ndarray:
    """Offline per-set LRU resolution of a 2+-way LHB stream.

    The buffer's eviction rule — prefer a dead entry, else least
    ``last_use`` — *is* plain LRU: an entry is dead iff its last use
    is at least ``lifetime`` steps old, so every dead entry is older
    than every live one and ``min((alive, last_use))`` coincides with
    ``min(last_use)``.  The expired-tag path (remove + reallocate)
    likewise just refreshes the tag's recency.  Set membership is
    therefore the classic "``assoc`` most recently used distinct tags
    per set", and each counter has a closed form over stack distances:

    * **resident** — previous access to the tag exists and fewer than
      ``assoc`` distinct tags touched the set in between (LRU
      inclusion; counted by the same dominance pass as
      :func:`lru_hit_mask`);
    * **hit** — resident and the previous access is within the
      retirement window (global stream positions — the LHB sequence
      number spans all sets);
    * **expired miss** — resident but outside the window (the entry is
      still in the set, so the event path finds-and-removes it);
    * **conflict replacement** — a miss of a non-resident tag in a
      full set (``assoc``-th distinct tag already seen) whose LRU
      victim is still live.  The victim is the ``assoc``-th most
      recently used distinct tag, so it is live iff at least ``assoc``
      distinct tags had their latest access inside the window — a
      windowed last-occurrence count, answered by one more dominance
      pass over next-occurrence indices.

    The first ``n_prefix`` rows are a warm buffer's residency snapshot
    (distinct tags, at most ``assoc`` per set, positioned at their
    ``gpos`` of last use); they participate in every recurrence as
    already-resident candidates but never produce counters themselves
    — they carry no predecessor (distinct tags) and can never evict
    (at most ``assoc`` prefix rows per set).  Retirement windows
    compare ``gpos`` — the buffer's global sequence numbers — which
    for a fresh buffer coincide with stream positions.
    """
    n_total = len(tag)
    n = n_total - n_prefix  # stream lookups (counters cover these only)
    stats = lhb.stats
    assoc = lhb.assoc
    sets = _lhb_set_indices(element, lhb)

    order = stable_order(sets)  # set-grouped, global-time order within
    s_tag = tag[order]
    g_s = gpos[order]
    pos = np.arange(n_total, dtype=np.int64)
    prev_s = prev_in_group(s_tag)  # same tag => same set => same block
    has_prev = prev_s >= 0

    first = ~has_prev  # first-ever occurrence of the tag (== in-set)
    csum = np.cumsum(first)

    # Residency: windows shorter than assoc short-circuit; first-ever
    # occurrences inside the window are distinct tags for free (an
    # O(1) stack-distance lower bound that settles most of the rest);
    # only the survivors pay for the dominance count of lru_hit_mask.
    window = pos - prev_s - 1  # same-set accesses strictly in between
    resident = has_prev & (window < assoc)
    residual = has_prev & ~resident
    if residual.any():
        qi = pos[residual]
        qt = prev_s[residual]
        alive = (csum[qi - 1] - csum[qt]) < assoc
        qi, qt = qi[alive], qt[alive]
        if len(qi):
            # The lower end of the window is closed-form: prev pointers
            # sit strictly below their own index, so
            # #{j <= qt : prev_s[j] < qt} == qt + 1 exactly.
            counts = dominance_counts(prev_s, qi - 1, qt)
            sd = counts - (qt + 1)
            resident[qi[sd < assoc]] = True

    # Retirement window: gaps are *global* sequence positions (the LHB
    # sequence number counts every lookup, whichever set it lands in).
    within = np.zeros(n_total, dtype=bool)
    ip = np.nonzero(has_prev)[0]
    if lhb.lifetime is None:
        within[ip] = True
    else:
        within[ip] = (g_s[ip] - g_s[prev_s[ip]]) < lhb.lifetime

    hit_s = resident & within
    hit = np.zeros(n_total, dtype=bool)
    hit[order] = hit_s
    n_hits = int(hit_s.sum())
    stats.hits += n_hits
    stats.misses += n - n_hits
    stats.expired_misses += int((resident & ~within).sum())

    # Conflict replacements: misses of non-resident tags in full sets.
    s_sets = sets[order]
    new_block = np.ones(n_total, dtype=bool)
    new_block[1:] = s_sets[1:] != s_sets[:-1]
    block_id = np.cumsum(new_block) - 1
    bstart = pos[new_block][block_id]  # block start per sorted slot
    distinct_before = (csum - first) - (csum[bstart] - first[bstart])
    evict = ~resident & (distinct_before >= assoc)
    if evict.any():
        if lhb.lifetime is None:
            stats.conflict_replacements += int(evict.sum())
        else:
            ei = pos[evict]
            # Next same-tag occurrence per sorted slot (n_total = none).
            nxt = np.full(n_total, n_total, dtype=np.int64)
            nxt[prev_s[ip]] = ip
            # First in-window slot of each evicting miss's set block:
            # per-block offsets keep the (block, global position) key
            # monotone for one global searchsorted.  gpos is ascending
            # within each block, bounded by its final value.
            big = np.int64(int(gpos[-1]) + 2)
            aug = block_id * big + g_s
            first_in_window = np.searchsorted(
                aug, block_id[ei] * big + (g_s[ei] - lhb.lifetime),
                side="right",
            )
            # A window opening before the stream start underflows into
            # the previous set's block; the block start is the floor.
            first_in_window = np.maximum(first_in_window, bstart[ei])
            # Windows with fewer than assoc slots cannot hold assoc
            # live members — drop them before the dominance pass.
            wide = (ei - first_in_window) >= assoc
            ei, first_in_window = ei[wide], first_in_window[wide]
            if len(ei):
                # Live members = distinct tags whose *latest* access
                # before the miss sits inside the window: slots j in
                # [first_in_window, ei) with no later same-tag slot
                # < ei.
                k = len(ei)
                counts = dominance_counts(
                    nxt,
                    np.concatenate([ei - 1, first_in_window - 1]),
                    np.concatenate([ei, ei]),
                )
                reappearing = counts[:k] - counts[k:]
                live_members = (ei - first_in_window) - reappearing
                stats.conflict_replacements += int(
                    (live_members >= assoc).sum()
                )
    return hit


# ----------------------------------------------------------------------
# Full replay
# ----------------------------------------------------------------------

def _cat(parts, dtype):
    """Concatenate accumulated block slices without a needless copy."""
    if not parts:
        return np.zeros(0, dtype=dtype)
    if len(parts) == 1:
        return parts[0]
    return np.concatenate(parts)


class _StreamAccumulator:
    """Folds trace blocks into the compact streams the replay consumes.

    The closed-form replay needs only a few *derived* per-load streams
    — consult flags, (element, batch) lookup IDs, L1 line IDs,
    workspace-unique keys — each a fraction of the full four trace
    columns.  Feeding the trace block by block keeps peak memory at
    (derived streams + one block) instead of (full columns + derived
    streams): blocks are dropped as soon as their slice is folded.

    Bit-identity with :func:`replay_trace_fast` on a materialised
    trace is by construction: every per-block pass is elementwise (or
    carries its one-value boundary state — the previous instruction ID
    — across blocks), so concatenating per-block outputs equals the
    whole-column computation, and :meth:`finish` then runs the very
    same global recurrences (LHB, LRU stack distances) on the
    assembled streams.  ``replay_trace_fast`` itself feeds the full
    trace as a single block through this class.
    """

    def __init__(
        self,
        spec: ConvLayerSpec,
        lda: int,
        gpu: GPUConfig,
        options: SimulationOptions,
        mode: EliminationMode,
        lhb: Optional[LoadHistoryBuffer],
        l2_share_sms: Optional[int] = None,
    ):
        self.spec = spec
        self.lda = lda
        self.options = options
        self.mode = mode
        self.lhb = lhb

        l2_capacity = gpu.l2_bytes
        if l2_share_sms is not None:
            l2_capacity = max(
                gpu.l2_bytes // l2_share_sms, gpu.l2_assoc * gpu.l2_line_bytes
            )
        self.l1 = SetAssociativeCache(
            gpu.l1_bytes, gpu.l1_assoc, gpu.l1_line_bytes,
            mshr_window=gpu.l1_latency,
        )
        self.l2 = SetAssociativeCache(
            l2_capacity, gpu.l2_assoc, gpu.l2_line_bytes
        )
        self._gpu = gpu

        self._instruction = (
            lhb is not None and options.lhb_granularity != "fragment"
        )
        # The DUPLO+fragment replay reuses its own translated IDs for
        # the workspace-unique accounting; every other configuration
        # translates the A-load bases with a dedicated generator,
        # exactly as ldst.workspace_unique_ids.
        self._ws_shortcut = (
            mode is EliminationMode.DUPLO
            and options.lhb_granularity == "fragment"
        )
        if not self._ws_shortcut:
            info = build_convolution_info(
                spec, WORKSPACE_BASE, lda=lda, pid=options.pid
            )
            self._ws_idgen = IDGenerator(
                spec=spec,
                workspace_base=info.workspace_base,
                lda=info.lda,
                element_bytes=gpu.element_bytes,
                mode=options.id_mode,
                merge_padding=options.merge_padding,
                row_align=gpu.tile_m,
            )

        self.events = 0
        self.blocks = 0
        self._stores = 0
        self._loads = 0
        self._loads_a = 0
        self._loads_input = 0
        self._consult: list = []  # bool, per load
        self._shared: list = []  # bool, per load
        self._lines: list = []  # int64 L1 line IDs, per non-shared load
        self._element: list = []  # int64, per lookup-candidate position
        self._batch: list = []
        self._first: list = []  # bool, per load (instruction granularity)
        self._prev_instr: Optional[int] = None
        self._ws_keys: list = []  # int64 translated workspace keys
        self._ws_not_ok = 0
        self._ws_instrs = 0
        self._prev_a_instr: Optional[int] = None

    def feed(
        self, kind: np.ndarray, address: np.ndarray, instr: np.ndarray
    ) -> None:
        """Fold one block's columns into the accumulated streams."""
        self.events += len(kind)
        self.blocks += 1
        is_load = kind != STORE_D
        load_kind = kind[is_load]
        load_addr = address[is_load]
        n = len(load_kind)
        self._stores += len(kind) - n
        self._loads += n
        is_a = (load_kind == LOAD_A) | (load_kind == LOAD_A_SHARED)
        self._loads_a += int(is_a.sum())
        self._loads_input += int((load_kind == LOAD_INPUT).sum())

        consults, batch, element = load_ids_for(
            self.spec, self.options, self.mode, load_kind, load_addr,
            self.lda, self._gpu,
        )
        is_shared = (load_kind == LOAD_A_SHARED) | (load_kind == LOAD_B_SHARED)
        self._shared.append(is_shared)
        self._lines.append(load_addr[~is_shared] >> self.l1.line_shift)

        if self.lhb is not None:
            self._consult.append(consults)
            if self._instruction:
                load_instr = instr[is_load]
                first = np.ones(n, dtype=bool)
                if n:
                    first[1:] = load_instr[1:] != load_instr[:-1]
                    if self._prev_instr is not None:
                        first[0] = load_instr[0] != self._prev_instr
                    self._prev_instr = int(load_instr[-1])
                self._first.append(first)
                self._element.append(element[first])
                self._batch.append(batch[first])
            else:
                self._element.append(element[consults])
                self._batch.append(batch[consults])

        if self._ws_shortcut:
            translated = is_a & consults
            self._ws_keys.append(
                batch[translated] * (1 << 44) + element[translated]
            )
            self._ws_instrs += int(is_a.sum())
        else:
            a_addr = load_addr[is_a]
            if self.options.lhb_granularity == "fragment":
                bases_addr = a_addr
            else:
                a_instr = instr[is_load][is_a]
                first_a = np.ones(len(a_addr), dtype=bool)
                if len(a_addr):
                    first_a[1:] = a_instr[1:] != a_instr[:-1]
                    if self._prev_a_instr is not None:
                        first_a[0] = a_instr[0] != self._prev_a_instr
                    self._prev_a_instr = int(a_instr[-1])
                bases_addr = a_addr[first_a]
            if len(bases_addr):
                ok, b, e = self._ws_idgen.generate_for_addresses(bases_addr)
                self._ws_keys.append(b[ok] * (1 << 44) + e[ok])
                self._ws_not_ok += int((~ok).sum())
                self._ws_instrs += len(bases_addr)

    def finish(self, mma_ops: int) -> LayerStats:
        """Run the global recurrences on the assembled streams."""
        lhb = self.lhb
        n = self._loads
        eliminated = np.zeros(n, dtype=bool)
        if lhb is not None:
            consults = _cat(self._consult, bool)
            if self._instruction:
                first = _cat(self._first, bool)
                group = np.cumsum(first) - 1
                looked_up = consults[first]
                element = _cat(self._element, np.int64)
                batch = _cat(self._batch, np.int64)
                hit = simulate_lhb_stream(
                    element[looked_up], batch[looked_up], lhb
                )
                group_hit = np.zeros(len(element), dtype=bool)
                group_hit[looked_up] = hit
                eliminated = group_hit[group]
            else:
                idx = np.nonzero(consults)[0]
                eliminated[idx] = simulate_lhb_stream(
                    _cat(self._element, np.int64),
                    _cat(self._batch, np.int64),
                    lhb,
                )

        is_shared = _cat(self._shared, bool)
        served_shared = int((is_shared & ~eliminated).sum())
        lines = _cat(self._lines, np.int64)[~eliminated[~is_shared]]

        l1, l2 = self.l1, self.l2
        l1_hit_mask = lru_hit_mask(lines, l1.set_mask, l1.assoc)
        l2_lines = lines[~l1_hit_mask]
        l2_hit_mask = lru_hit_mask(l2_lines, l2.set_mask, l2.assoc)

        served_lhb = int(eliminated.sum())
        l1_accesses = int(lines.size)
        l1_hits = int(l1_hit_mask.sum())
        l2_accesses = int(l2_lines.size)
        l2_hits = int(l2_hit_mask.sum())
        served_dram = l2_accesses - l2_hits
        dram_read_bytes = served_dram * self._gpu.l1_line_bytes
        l1.stats.accesses, l1.stats.hits = l1_accesses, l1_hits
        l2.stats.accesses, l2.stats.hits = l2_accesses, l2_hits

        loads_a = self._loads_a
        loads_input = self._loads_input
        loads_b = n - loads_a - loads_input
        if self._ws_shortcut:
            keys = _cat(self._ws_keys, np.int64)
            ws_instrs = loads_a
            unique_ids = distinct_count(keys) + loads_a - len(keys)
        elif self._ws_instrs == 0:
            ws_instrs, unique_ids = 0, 0
        else:
            keys = _cat(self._ws_keys, np.int64)
            ws_instrs = self._ws_instrs
            unique_ids = int(np.unique(keys).size) + self._ws_not_ok
        return LayerStats(
            loads_total=n,
            loads_workspace=loads_a,
            loads_filter=loads_b,
            loads_input=loads_input,
            stores=self._stores,
            workspace_instructions=ws_instrs,
            lhb_lookups=lhb.stats.lookups if lhb is not None else 0,
            lhb_hits=lhb.stats.hits if lhb is not None else 0,
            eliminated_fragments=served_lhb,
            unique_workspace_ids=unique_ids,
            l1_accesses=l1_accesses,
            l1_hits=l1_hits,
            l2_accesses=l2_accesses,
            l2_hits=l2_hits,
            dram_read_bytes=dram_read_bytes,
            dram_write_bytes=self._stores * self._gpu.store_frag_bytes,
            mma_ops=mma_ops,
            breakdown=MemoryBreakdown(
                lhb=served_lhb,
                l1=l1_hits,
                l2=l2_hits,
                dram=served_dram,
                shared=served_shared,
            ),
        )


def replay_blocks_fast(
    blocks,
    meta,
    spec: ConvLayerSpec,
    gpu: GPUConfig = TITAN_V,
    options: SimulationOptions = SimulationOptions(),
    mode: EliminationMode = EliminationMode.DUPLO,
    lhb: Optional[LoadHistoryBuffer] = None,
    l2_share_sms: Optional[int] = None,
) -> LayerStats:
    """Streaming twin of :func:`replay_trace_fast`.

    ``blocks`` is any iterable of :class:`~repro.gpu.isa.TraceBlock`
    (``repro.gpu.kernel.iter_trace_blocks`` generates them without
    ever materialising the whole trace; ``KernelTrace.iter_blocks``
    slices an existing or memory-mapped trace).  ``meta`` carries the
    scalar trace fields (a dict from ``TracePlan.meta()`` /
    ``KernelTrace.meta()``).  Results are bit-identical to the
    in-memory replay whatever the block size.
    """
    if mode is not EliminationMode.BASELINE and lhb is None:
        lhb = LoadHistoryBuffer(lifetime=options.lhb_lifetime)
    acc = _StreamAccumulator(
        spec, int(meta["lda"]), gpu, options, mode, lhb, l2_share_sms
    )
    for block in blocks:
        acc.feed(
            np.asarray(block.kind), np.asarray(block.address),
            np.asarray(block.instr),
        )
    obs.add("fastpath.replays")
    obs.add("fastpath.stream_replays")
    obs.add("fastpath.stream_blocks", acc.blocks)
    obs.add("fastpath.events", acc.events)
    return acc.finish(int(meta["mma_ops"]))


def replay_trace_fast(
    trace: KernelTrace,
    spec: ConvLayerSpec,
    gpu: GPUConfig = TITAN_V,
    options: SimulationOptions = SimulationOptions(),
    mode: EliminationMode = EliminationMode.DUPLO,
    lhb: Optional[LoadHistoryBuffer] = None,
    l2_share_sms: Optional[int] = None,
) -> LayerStats:
    """Vectorised, bit-identical drop-in for ``replay_trace``.

    Covers every configuration the event path does, warm caller-
    supplied buffers included (the residency snapshot seeds the LHB
    recurrence).  :class:`FastPathUnsupported` is still raised by
    :func:`resolve_fast_path` should a future configuration fall
    outside :func:`fast_path_fallback_reason`'s coverage.
    """
    if mode is not EliminationMode.BASELINE and lhb is None:
        lhb = LoadHistoryBuffer(lifetime=options.lhb_lifetime)
    obs.add("fastpath.replays")
    obs.add("fastpath.events", int(trace.kind.size))
    # Zero-copy traces keep ``address`` as a strided memmap view; the
    # passes below each walk the full column, so materialise it once.
    trace = trace.densify()
    acc = _StreamAccumulator(
        spec, trace.lda, gpu, options, mode, lhb, l2_share_sms
    )
    acc.feed(trace.kind, trace.address, trace.instr)
    return acc.finish(trace.mma_ops)
