"""Tensor-core throughput model (Section II-B).

A tensor core is 16 four-element dot product (FEDP) units computing a
4x4x4 MMA per cycle (64 MACs).  Four consecutive threads form a
threadgroup producing a 4x8 block in two steps; two threadgroups form
an octet computing an 8x8 tile; four octets cover a warp's 16x16 MMA.
This module derives the cycle costs the timing model and tests use
from that structure, rather than hard-coding them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.config import GPUConfig, TITAN_V

#: Structure constants from Section II-B.
FEDPS_PER_CORE = 16
MACS_PER_FEDP = 4
THREADS_PER_THREADGROUP = 4
THREADGROUPS_PER_OCTET = 2
OCTETS_PER_WARP = 4
WMMA_TILE = 16


@dataclass(frozen=True)
class TensorCoreModel:
    """Cycle/throughput arithmetic for the SM's tensor cores."""

    gpu: GPUConfig = TITAN_V

    @property
    def macs_per_core_cycle(self) -> int:
        """64 for the Volta-style 16-FEDP core."""
        return FEDPS_PER_CORE * MACS_PER_FEDP

    @property
    def macs_per_sm_cycle(self) -> int:
        return self.gpu.tensor_cores_per_sm * self.macs_per_core_cycle

    @property
    def wmma_macs(self) -> int:
        """MACs in one 16x16x16 warp MMA."""
        return WMMA_TILE**3

    def wmma_cycles_per_sm(self) -> float:
        """SM-cycles one warp MMA occupies with all cores busy."""
        return self.wmma_macs / self.macs_per_sm_cycle

    def octet_steps(self) -> int:
        """Steps an octet needs for its 8x8 tile (two per threadgroup)."""
        return THREADGROUPS_PER_OCTET

    def peak_tflops(self, fused: bool = True) -> float:
        """Peak half-precision tensor throughput (2 FLOPs per MAC)."""
        flops_per_mac = 2 if fused else 1
        return (
            self.macs_per_sm_cycle
            * self.gpu.num_sms
            * self.gpu.clock_hz
            * flops_per_mac
            / 1e12
        )

    def speedup_over_cuda_cores(self, fp32_units_per_block: int = 16) -> float:
        """Operational-intensity ratio of Section II-B's comparison.

        The paper: a Volta processing block has 16 fp32 units while
        its two tensor cores do 256 half-precision MACs per cycle —
        16x greater operational intensity (8x at equal precision).
        """
        blocks_per_sm = self.gpu.warp_schedulers_per_sm
        tc_macs_per_block = self.macs_per_sm_cycle / blocks_per_sm
        return tc_macs_per_block / fp32_units_per_block
