"""DRAM bandwidth/latency model (Table III: 652.8 GB/s).

A simple stream model: transfer time is bytes over the bandwidth
share available to the requester, plus a fixed access latency for the
first beat.  ``repro.gpu.timing`` uses the per-SM share for its DRAM
resource component; the energy model uses :meth:`DRAMModel.energy_pj`
for per-byte access energy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.config import GPUConfig, TITAN_V


@dataclass(frozen=True)
class DRAMModel:
    """Bandwidth/latency/energy view of the device memory."""

    gpu: GPUConfig = TITAN_V
    #: Access energy per byte, pJ (HBM2-class ~4 pJ/bit -> ~32 pJ/B;
    #: the conventional figure used with McPAT-style accounting).
    energy_pj_per_byte: float = 32.0

    @property
    def bytes_per_cycle(self) -> float:
        """Aggregate bytes deliverable per core clock."""
        return self.gpu.dram_bytes_per_cycle

    def transfer_cycles(self, num_bytes: int, sharers: int = 1) -> float:
        """Cycles to stream ``num_bytes`` with ``sharers`` competing SMs."""
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be >= 0, got {num_bytes}")
        if sharers < 1:
            raise ValueError(f"sharers must be >= 1, got {sharers}")
        share = self.bytes_per_cycle / sharers
        return num_bytes / share

    def access_latency(self) -> int:
        """First-beat latency in cycles (beyond the L2)."""
        return self.gpu.dram_latency

    def energy_pj(self, num_bytes: int) -> float:
        """Access energy for ``num_bytes`` of DRAM traffic."""
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be >= 0, got {num_bytes}")
        return num_bytes * self.energy_pj_per_byte

    def bandwidth_utilisation(self, num_bytes: int, cycles: float) -> float:
        """Achieved fraction of peak bandwidth over ``cycles``."""
        if cycles <= 0:
            raise ValueError(f"cycles must be > 0, got {cycles}")
        return (num_bytes / cycles) / self.bytes_per_cycle
