"""Warp-level instruction events and the kernel trace container.

The simulator is trace-driven: :mod:`repro.gpu.kernel` emits the
memory events of the tensor-core GEMM kernel in scheduled order, and
the LDST/LHB/cache models replay them.  Events are kept in parallel
NumPy arrays (struct-of-arrays) because per-layer traces run into the
hundreds of thousands of events.

Two granularities coexist, matching the paper's microarchitecture:

* **fragments** — one event is one 16-half (32-byte) row/column
  fragment, the unit of cache and DRAM traffic;
* **instructions** — each warp-level ``wmma.load`` covers 16
  fragments (one 16x16 tile for one octet pair) and consults the LHB
  *once*, tagged by the ID of its base fragment (Table II shows one
  array index / element ID per load instruction).  The ``instr``
  array groups fragments into instructions; the octet dual-load of
  Section II-B appears as two instructions covering the same 16
  fragments back-to-back.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import BinaryIO, Dict, Iterator, Union

import numpy as np

#: Event kinds.  The first three belong to the explicit-GEMM kernel;
#: the *_SHARED / LOAD_INPUT kinds model cuDNN-style implicit GEMM
#: (Section II-C), where the workspace is expanded lazily into shared
#: memory and only the unexpanded input is fetched from global.
LOAD_A = 0  # workspace (matrix A) fragment load — consults the LHB
LOAD_B = 1  # filter (matrix B) fragment load — bypasses the LHB
STORE_D = 2  # output (matrix D) fragment store
LOAD_A_SHARED = 3  # workspace fragment from shared memory (implicit GEMM)
LOAD_B_SHARED = 4  # filter fragment from shared memory (implicit GEMM)
LOAD_INPUT = 5  # unexpanded-input fetch staging shared memory (global)

KIND_NAMES = {
    LOAD_A: "load_a",
    LOAD_B: "load_b",
    STORE_D: "store_d",
    LOAD_A_SHARED: "load_a_shared",
    LOAD_B_SHARED: "load_b_shared",
    LOAD_INPUT: "load_input",
}

#: Bytes moved by one event kind (fp16 fragments; fp32 output rows).
EVENT_BYTES = {
    LOAD_A: 32,
    LOAD_B: 32,
    STORE_D: 64,
    LOAD_A_SHARED: 32,
    LOAD_B_SHARED: 32,
    LOAD_INPUT: 32,
}

#: Disjoint base addresses for each memory region.  Workspace
#: addresses double as shared-memory offsets in implicit mode (the
#: detection unit's region check works identically either way).
WORKSPACE_BASE = 0x1000_0000
FILTER_BASE = 0x8000_0000
OUTPUT_BASE = 0xC000_0000
INPUT_BASE = 0xE000_0000

#: Columnar record layout of one trace event.  Narrow unsigned fields
#: (kinds fit a byte, warp slots a halfword) shrink the on-disk and
#: interchange footprint to 15 bytes/event versus the ~4x wider
#: individual int64 arrays, before ``.npz`` deflate even runs.
EVENT_DTYPE = np.dtype(
    [
        ("kind", np.uint8),
        ("address", np.int64),
        ("warp", np.uint16),
        ("instr", np.int32),
    ]
)

#: Scalar trace fields serialized alongside the event records, in a
#: fixed order so the ``.npz`` payload is a plain int64 vector.
_META_FIELDS = (
    "mma_ops",
    "traced_ctas",
    "total_ctas",
    "grid_ctas",
    "lda",
    "ldb",
    "ldd",
    "concurrent_warps",
)


@dataclass(frozen=True)
class TraceBlock:
    """One bounded slice of a trace's parallel event columns.

    The unit of streaming generation and replay: block boundaries are
    an implementation detail — concatenating a trace's blocks in order
    reproduces the full columns bit-identically, whatever the block
    size (``repro.gpu.kernel.iter_trace_blocks`` guarantees this by
    construction, and the ``REPRO_TRACE_BLOCK`` CI lane locks it).
    Consumers (:func:`repro.gpu.fastpath.replay_blocks_fast`, the disk
    store's streaming writer) fold each block into compact accumulators
    instead of materialising the whole trace.
    """

    kind: np.ndarray
    address: np.ndarray
    warp: np.ndarray
    instr: np.ndarray

    def __len__(self) -> int:
        return len(self.kind)

    def to_columnar(self) -> np.ndarray:
        """Pack this block's events into one structured record array."""
        events = np.empty(len(self), dtype=EVENT_DTYPE)
        events["kind"] = self.kind
        events["address"] = self.address
        events["warp"] = self.warp
        events["instr"] = self.instr
        return events


@dataclass
class KernelTrace:
    """Scheduled memory-event stream of one layer on one SM.

    Attributes
    ----------
    kind, address, warp, instr:
        Parallel arrays: event kind, byte address, the SM-local warp
        slot that issued it (CTA slot * warps-per-CTA + warp), and the
        warp-level instruction the fragment belongs to (fragments of
        one instruction are contiguous; the first fragment is the
        instruction's base address, whose ID tags the LHB lookup).
    mma_ops:
        Count of 16x16x16 wmma MMA operations in the traced portion.
    traced_ctas / total_ctas:
        How many of this SM's CTAs were traced vs. assigned; stats
        extrapolate by their ratio.
    lda / ldb / ldd:
        Leading dimensions (elements) of the A/B/D allocations.
    """

    kind: np.ndarray
    address: np.ndarray
    warp: np.ndarray
    instr: np.ndarray
    mma_ops: int
    traced_ctas: int
    total_ctas: int
    grid_ctas: int
    lda: int
    ldb: int
    ldd: int
    concurrent_warps: int

    def __post_init__(self) -> None:
        lengths = {
            len(self.kind),
            len(self.address),
            len(self.warp),
            len(self.instr),
        }
        if len(lengths) != 1:
            raise ValueError("trace arrays must be parallel")

    def __len__(self) -> int:
        return len(self.kind)

    @property
    def scale_factor(self) -> float:
        """Extrapolation factor from the traced prefix to all CTAs."""
        if self.traced_ctas == 0:
            return 1.0
        return self.total_ctas / self.traced_ctas

    def counts_by_kind(self) -> Dict[str, int]:
        """Event counts keyed by kind name (traced portion)."""
        kinds, counts = np.unique(self.kind, return_counts=True)
        return {KIND_NAMES[int(k)]: int(c) for k, c in zip(kinds, counts)}

    def iter_blocks(self, block_events: int) -> Iterator[TraceBlock]:
        """Yield the trace as bounded :class:`TraceBlock` column slices.

        Slices are zero-copy views, so replaying a memory-mapped trace
        block by block touches one window of the record file at a time
        instead of faulting the whole column in.
        """
        if block_events < 1:
            raise ValueError(f"block_events must be >= 1, got {block_events}")
        n = len(self)
        for start in range(0, n, block_events):
            stop = min(start + block_events, n)
            yield TraceBlock(
                kind=self.kind[start:stop],
                address=self.address[start:stop],
                warp=self.warp[start:stop],
                instr=self.instr[start:stop],
            )

    # -- columnar encoding -------------------------------------------------

    def to_columnar(self) -> np.ndarray:
        """Pack the parallel event arrays into one structured record array."""
        events = np.empty(len(self), dtype=EVENT_DTYPE)
        events["kind"] = self.kind
        events["address"] = self.address
        events["warp"] = self.warp
        events["instr"] = self.instr
        return events

    def meta(self) -> Dict[str, int]:
        """The scalar trace fields, keyed by name."""
        return {name: int(getattr(self, name)) for name in _META_FIELDS}

    @classmethod
    def from_columnar(
        cls, events: np.ndarray, meta: Dict[str, int], zero_copy: bool = False
    ) -> "KernelTrace":
        """Rebuild a trace from :meth:`to_columnar` + :meth:`meta` output.

        The narrow columns are widened back to the int64 arrays the
        replay paths index, so round-tripping is lossless.  With
        ``zero_copy`` the ``address`` column — already int64 and 8 of
        the 15 bytes per event — stays a *view* into ``events``; when
        ``events`` is a memory-mapped record array (see
        :meth:`load_npy`) that column is then served straight from the
        OS page cache with no copy, which is what lets many worker
        processes replay one persisted trace without each
        materialising the archive.  The narrow columns (kind / warp /
        instr) always widen: mixed-width arithmetic would silently
        wrap under NumPy's value-preserving promotion rules.
        """
        address = events["address"]
        if not zero_copy:
            address = address.astype(np.int64)
        return cls(
            kind=events["kind"].astype(np.int64),
            address=address,
            warp=events["warp"].astype(np.int64),
            instr=events["instr"].astype(np.int64),
            **{name: int(meta[name]) for name in _META_FIELDS},
        )

    def densify(self) -> "KernelTrace":
        """Return a trace whose columns are dense in-RAM arrays.

        Zero-copy traces (:meth:`load_npy` with ``mmap=True``) keep the
        ``address`` column as a strided view into the memory-mapped
        record file.  One boolean-mask pass over such a view is exactly
        as cheap as over a dense array, but the replay paths make
        *several* full passes (load split, workspace ID translation),
        so they call this once up front: a single sequential read
        through the page cache, after which every pass runs on dense
        memory.  Dense traces are returned unchanged.
        """
        addr = self.address
        if isinstance(addr, np.memmap) or not addr.flags.c_contiguous:
            return dataclasses.replace(self, address=np.ascontiguousarray(addr))
        return self

    def save_npz(self, file: Union[str, BinaryIO]) -> None:
        """Serialize columnar events + scalars as a compressed ``.npz``.

        Pure numeric payload — no pickle — so traces load with
        ``allow_pickle=False`` and the archive is ~10x smaller than the
        pickled struct-of-int64-arrays form.
        """
        meta = self.meta()
        np.savez_compressed(
            file,
            events=self.to_columnar(),
            meta=np.array([meta[name] for name in _META_FIELDS], dtype=np.int64),
        )

    @classmethod
    def load_npz(cls, file: Union[str, BinaryIO]) -> "KernelTrace":
        """Inverse of :meth:`save_npz`."""
        with np.load(file, allow_pickle=False) as payload:
            events = payload["events"]
            scalars = payload["meta"]
        meta = {name: int(scalars[i]) for i, name in enumerate(_META_FIELDS)}
        return cls.from_columnar(events, meta)

    def save_npy(self, file: Union[str, BinaryIO]) -> None:
        """Serialize the columnar events as one *uncompressed* ``.npy``.

        The mmap-able sibling of :meth:`save_npz`: the plain array
        format is what ``np.load(..., mmap_mode="r")`` can map, so the
        sweep runtime persists this form next to the compressed
        archive and hands worker processes the *file* (by
        content-addressed key) instead of a pickled trace.  Scalars
        travel separately (:meth:`meta` → JSON in the store).
        """
        np.save(file, self.to_columnar(), allow_pickle=False)

    @classmethod
    def load_npy(
        cls,
        file: Union[str, BinaryIO],
        meta: Dict[str, int],
        mmap: bool = True,
    ) -> "KernelTrace":
        """Load a :meth:`save_npy` events file plus its scalar fields.

        With ``mmap`` (the default) the record array is memory-mapped
        read-only and the int64 ``address`` column is used zero-copy —
        pages are faulted in on demand and shared between every
        process mapping the same file.
        """
        events = np.load(file, mmap_mode="r" if mmap else None,
                         allow_pickle=False)
        return cls.from_columnar(events, meta, zero_copy=mmap)
