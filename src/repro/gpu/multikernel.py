"""Concurrent kernels sharing one SM's LHB (the PID tag field).

The LHB tag carries a process ID precisely so that two kernels
time-sliced onto the same SM cannot alias each other's workspace
elements (Section IV-B's tag layout: element ID + batch ID + PID).
This module interleaves the load streams of multiple convolution
kernels through one shared LHB and measures

* **isolation** — a hit's provider always belongs to the same kernel
  (guaranteed by construction, asserted in tests);
* **contention** — how much each kernel's hit rate drops relative to
  running alone, since the buffer now backs several working sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.conv.layer import ConvLayerSpec
from repro.core.idgen import IDGenerator
from repro.core.compiler import build_convolution_info
from repro.core.lhb import LoadHistoryBuffer
from repro.gpu.config import (
    BASELINE_KERNEL,
    GPUConfig,
    KernelConfig,
    SimulationOptions,
    TITAN_V,
)
from repro.gpu.fastpath import resolve_fast_path, simulate_lhb_stream
from repro.gpu.isa import LOAD_A, LOAD_A_SHARED, WORKSPACE_BASE
from repro.gpu.kernel import generate_sm_trace
from repro.gpu.ldst import EliminationMode


@dataclass(frozen=True)
class KernelShare:
    """Per-kernel outcome of a shared-LHB run."""

    spec: ConvLayerSpec
    pid: int
    lookups: int
    hits: int

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


def _workspace_stream(
    spec: ConvLayerSpec,
    gpu: GPUConfig,
    kernel: KernelConfig,
    options: SimulationOptions,
) -> Tuple[np.ndarray, np.ndarray]:
    """(batch_id, element_id) arrays of one kernel's workspace loads."""
    trace = generate_sm_trace(spec, gpu, kernel, options)
    is_a = (trace.kind == LOAD_A) | (trace.kind == LOAD_A_SHARED)
    info = build_convolution_info(spec, WORKSPACE_BASE, lda=trace.lda)
    idgen = IDGenerator(
        spec,
        workspace_base=info.workspace_base,
        lda=info.lda,
        mode=options.id_mode,
        merge_padding=options.merge_padding,
    )
    ok, batch, element = idgen.generate_for_addresses(trace.address[is_a])
    return batch[ok], element[ok]


def _interleave(
    streams: Sequence[Tuple[np.ndarray, np.ndarray]], chunk: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Round-robin ``chunk``-sized slices into one (batch, element, pid)
    stream — the exact access order of the event-path scheduler loop."""
    b_parts: List[np.ndarray] = []
    e_parts: List[np.ndarray] = []
    p_parts: List[np.ndarray] = []
    cursors = [0] * len(streams)
    live = True
    while live:
        live = False
        for pid, (batch, element) in enumerate(streams):
            start = cursors[pid]
            if start >= len(element):
                continue
            live = True
            stop = min(start + chunk, len(element))
            b_parts.append(batch[start:stop])
            e_parts.append(element[start:stop])
            p_parts.append(np.full(stop - start, pid, dtype=np.int64))
            cursors[pid] = stop
    if not b_parts:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    return (
        np.concatenate(b_parts),
        np.concatenate(e_parts),
        np.concatenate(p_parts),
    )


def simulate_shared_lhb(
    specs: Sequence[ConvLayerSpec],
    lhb_entries: Optional[int] = 1024,
    chunk: int = 256,
    gpu: GPUConfig = TITAN_V,
    kernel: KernelConfig = BASELINE_KERNEL,
    options: SimulationOptions = SimulationOptions(),
    lhb: Optional[LoadHistoryBuffer] = None,
    lhb_assoc: int = 1,
) -> List[KernelShare]:
    """Interleave several kernels' workspace loads through one LHB.

    The scheduler alternates ``chunk``-sized load slices round-robin
    across the kernels (the granularity at which time-slicing
    interleaves co-resident kernels' warps); kernel ``i`` is tagged
    with PID ``i``.

    ``options.fast_path`` selects the replay implementation exactly as
    in the single-kernel simulator: the vectorised recurrence folds
    the PID into the tag key and is bit-identical to the event loop on
    every counter, including against a caller-supplied *warm* ``lhb``
    (its residency snapshot seeds the recurrence).
    """
    if not specs:
        raise ValueError("need at least one kernel")
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    if lhb is None:
        lhb = LoadHistoryBuffer(
            num_entries=lhb_entries,
            assoc=lhb_assoc,
            lifetime=options.lhb_lifetime,
            hashed_index=options.lhb_hashed_index,
        )

    streams = [
        _workspace_stream(spec, gpu, kernel, options) for spec in specs
    ]
    lookups = [len(element) for _, element in streams]

    if resolve_fast_path(options, EliminationMode.DUPLO, lhb):
        batch_i, element_i, pid_i = _interleave(streams, chunk)
        obs.add("fastpath.shared_replays")
        obs.add("fastpath.shared_lookups", int(len(element_i)))
        hit = simulate_lhb_stream(element_i, batch_i, lhb, pid=pid_i)
        counts = np.bincount(pid_i[hit], minlength=len(specs))
        hits = [int(c) for c in counts]
    else:
        cursors = [0] * len(specs)
        hits = [0] * len(specs)
        live = True
        while live:
            live = False
            for pid, (batch, element) in enumerate(streams):
                start = cursors[pid]
                if start >= len(element):
                    continue
                live = True
                stop = min(start + chunk, len(element))
                b_l = batch[start:stop].tolist()
                e_l = element[start:stop].tolist()
                access = lhb.access
                h = 0
                for b, e in zip(b_l, e_l):
                    if access(e, b, 0, pid=pid).hit:
                        h += 1
                hits[pid] += h
                cursors[pid] = stop

    return [
        KernelShare(spec=spec, pid=pid, lookups=lookups[pid], hits=hits[pid])
        for pid, spec in enumerate(specs)
    ]


def contention_report(
    specs: Sequence[ConvLayerSpec],
    lhb_entries: Optional[int] = 1024,
    **kwargs,
) -> Dict[str, Dict[str, float]]:
    """Solo vs. shared hit rates for each kernel."""
    shared = simulate_shared_lhb(specs, lhb_entries, **kwargs)
    report = {}
    for pid, spec in enumerate(specs):
        solo = simulate_shared_lhb([spec], lhb_entries, **kwargs)[0]
        report[f"{spec.qualified_name}#pid{pid}"] = {
            "solo_hit_rate": solo.hit_rate,
            "shared_hit_rate": shared[pid].hit_rate,
            "contention_loss": solo.hit_rate - shared[pid].hit_rate,
        }
    return report
