"""Engine-tier selection: analytic vs fast replay vs event replay.

One simulation request can be answered at three price points:

=========  =============  ==========================================
tier       cost           fidelity
=========  =============  ==========================================
analytic   O(1) / query   exact LHB counters, bounded-error traffic
fast       O(trace)       exact (bit-identical to the event path)
event      O(trace),      exact reference (per-event state machines)
           Python loop
=========  =============  ==========================================

:func:`resolve_engine` turns ``SimulationOptions.engine`` plus the
``$REPRO_ENGINE`` environment override into a requested tier;
:func:`analytic_fallback_reason` reports why a configuration is
outside analytic coverage (``None`` = covered), mirroring
:func:`repro.gpu.fastpath.fast_path_fallback_reason` — every silent
downgrade is counted under ``analytic.fallback`` (plus an
``analytic.fallback.<reason>`` label) so a covered configuration
regressing to a slower tier shows up in metrics.  The tier that
actually answered is published as ``engine.selected.<tier>``.

The env override only applies when the option is left at ``"auto"``,
exactly like ``$REPRO_FAST_PATH`` — an explicit option always wins.
"""

from __future__ import annotations

import os
from typing import Optional

from repro import obs
from repro.core.lhb import LoadHistoryBuffer
from repro.gpu.config import KernelConfig, SimulationOptions
from repro.gpu.fastpath import fast_path_fallback_reason
from repro.gpu.ldst import EliminationMode

#: Environment override consulted when ``options.engine == "auto"``:
#: set ``REPRO_ENGINE=analytic`` / ``fast`` / ``event`` to pin the
#: tier without rebuilding options objects (the CI engine lanes use
#: exactly this).
ENGINE_ENV = "REPRO_ENGINE"

#: Tiers the environment override may request.
ENGINE_TIERS = ("analytic", "fast", "event")


def resolve_engine(options: SimulationOptions) -> str:
    """The requested tier: explicit option, else env, else ``"auto"``.

    ``"auto"`` means "today's exact behaviour" — the caller then runs
    the legacy fast/event tiering
    (:func:`repro.gpu.fastpath.resolve_fast_path`), which has its own
    ``$REPRO_FAST_PATH`` override.
    """
    if options.engine != "auto":
        return options.engine
    env = os.environ.get(ENGINE_ENV, "").strip().lower()
    if env in ENGINE_TIERS:
        return env
    return "auto"


def analytic_fallback_reason(
    kernel: KernelConfig,
    options: SimulationOptions,
    mode: EliminationMode,
    lhb: Optional[LoadHistoryBuffer],
) -> Optional[str]:
    """Why this configuration needs an exact tier (``None`` = covered).

    Coverage is the explicit-GEMM fragment-granularity stream with a
    fresh LHB whose set count is a power of two (or the oracle) —
    hashed and modular indexing both covered.  Everything else routes
    to the exact tiering:

    * ``implicit-kernel`` — the implicit-GEMM stream stages through
      shared memory with cooperative input fetches the closed forms
      do not model;
    * ``instruction-granularity`` — the coarser LHB lookup ablation
      consults once per warp instruction, a different consult stream;
    * ``warm-lhb`` — a caller-supplied buffer that already served
      accesses (the same residual fallback as the fast path);
    * ``npo2-sets`` — the per-level reuse tables nest only along
      power-of-two set counts.
    """
    if kernel.implicit:
        return "implicit-kernel"
    if options.lhb_granularity != "fragment":
        return "instruction-granularity"
    if mode is not EliminationMode.BASELINE and lhb is not None:
        if not lhb.is_fresh():
            return "warm-lhb"
        if not lhb.is_oracle:
            num_sets = lhb.num_sets
            if num_sets & (num_sets - 1):
                return "npo2-sets"
    return None


def supports_analytic(
    kernel: KernelConfig,
    options: SimulationOptions,
    mode: EliminationMode,
    lhb: Optional[LoadHistoryBuffer],
) -> bool:
    """True when the analytic model covers this configuration."""
    return analytic_fallback_reason(kernel, options, mode, lhb) is None


def analytic_resolves(
    kernel: KernelConfig,
    options: SimulationOptions,
    mode: EliminationMode,
    lhb_entries: Optional[int],
    lhb_assoc: int,
) -> bool:
    """Would :func:`~repro.gpu.simulator.simulate_layer` answer this
    request analytically?

    The sweep executor consults this *before* touching the result
    cache: analytic answers are approximate, so they must neither be
    persisted under a key an exact tier would later read, nor be
    served from exact results cached earlier — an analytic sweep
    always recomputes from the (cheap) profile.  Mirrors
    :func:`analytic_fallback_reason` for the fresh LHB
    ``simulate_layer`` builds from ``(lhb_entries, lhb_assoc)``.
    """
    if resolve_engine(options) != "analytic":
        return False
    if kernel.implicit or options.lhb_granularity != "fragment":
        return False
    if mode is EliminationMode.BASELINE or lhb_entries is None:
        return True
    num_sets = lhb_entries // max(lhb_assoc, 1)
    return num_sets > 0 and not (num_sets & (num_sets - 1))


def count_fallback(reason: str) -> None:
    """Report one analytic → exact downgrade into the metrics registry."""
    obs.add("analytic.fallback")
    obs.add(f"analytic.fallback.{reason}")


def count_selected(tier: str) -> None:
    """Report which tier actually answered a simulation request."""
    obs.add(f"engine.selected.{tier}")
