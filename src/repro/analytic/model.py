"""Closed-form :class:`LayerStats` predictions from a layer profile.

:func:`predict_stats` is the analytic twin of
:func:`repro.gpu.fastpath.replay_trace_fast`: given a
:class:`~repro.analytic.profile.LayerProfile` and an LHB geometry it
assembles the traced-prefix ``LayerStats`` the replay would return —
without the replay.  Exactness splits per counter family:

* **LHB counters** (``lhb_lookups``, ``lhb_hits``,
  ``eliminated_fragments``) are *exact* for every covered geometry —
  direct-mapped, N-way and oracle, hashed and modular indexing, any
  lifetime — via the profile's per-level distinct-tag tables.  The
  differential suite asserts bit-equality against the replay.

* **Cache/DRAM counters** (``l1_hits``, ``l2_hits``,
  ``dram_read_bytes``) interpolate between the profile's exact oracle
  anchors along the eliminated-count axis.  Accesses stay exact
  (``l1_accesses = loads_total - eliminated``,
  ``l2_accesses = l1_accesses - l1_hits``); only the hit splits are
  approximate, within the bounds committed in
  ``tests/goldens/analytic_bounds.json``.  Baseline mode carries no
  elimination, sits exactly on the first anchor, and is therefore
  exact end to end.

* **Stream counters** (load mix, stores, instructions, unique IDs,
  MMA ops, write bytes) are closed-form identities of the tiling and
  exact by construction.

All identities :meth:`LayerStats.scaled` preserves on replay output
(load-mix sum, hits ≤ lookups, access chaining, byte multiples,
breakdown agreement) hold on the predicted stats too, so the
simulator's extrapolation tail treats both sources identically.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.lhb import LoadHistoryBuffer
from repro.gpu.ldst import EliminationMode
from repro.gpu.stats import LayerStats, MemoryBreakdown

from repro.analytic.profile import LayerProfile


class AnalyticUnsupported(ValueError):
    """Raised when a prediction is requested outside analytic coverage.

    :func:`repro.analytic.engine.analytic_fallback_reason` exists to
    route these configurations to the exact tiers *before* reaching
    the model; hitting this exception means a caller skipped the
    coverage check.
    """


def _predicted_hits(
    profile: LayerProfile, lhb: LoadHistoryBuffer
) -> int:
    """Exact LHB hit count for one geometry, from the reuse table."""
    if lhb.is_oracle:
        return profile.oracle_hits(lhb.lifetime)
    num_sets = lhb.num_sets
    k = num_sets.bit_length() - 1
    if (1 << k) != num_sets:
        raise AnalyticUnsupported(
            f"analytic LHB model needs a power-of-two set count, got "
            f"{num_sets} ({lhb.num_entries} entries / {lhb.assoc}-way)"
        )
    gaps, sds, counts = profile.level(lhb.hashed_index, k)
    mask = sds < lhb.assoc
    if lhb.lifetime is not None:
        mask = mask & (gaps < lhb.lifetime)
    return int(counts[mask].sum())


def predict_stats(
    profile: LayerProfile, lhb: Optional[LoadHistoryBuffer] = None
) -> LayerStats:
    """Assemble the traced-prefix :class:`LayerStats` for one geometry.

    ``lhb`` must be fresh (the closed forms assume an empty buffer,
    exactly like the fast path); its ``stats`` counters are filled
    with the exact lookup/hit/miss totals so Figure-10-style
    introspection agrees with the replay.  The structural miss
    taxonomy (compulsory / expired / conflict) is not modelled here —
    those counters stay zero and callers needing them use an exact
    tier.  ``mode=BASELINE`` profiles ignore ``lhb``.
    """
    c = profile.counters
    baseline = profile.mode is EliminationMode.BASELINE or lhb is None
    if baseline:
        lookups = hits = 0
    else:
        if not lhb.is_fresh():
            raise AnalyticUnsupported(
                "analytic predictions assume a fresh LHB; replay warm "
                "buffers through the event path"
            )
        lookups = profile.lookups
        hits = _predicted_hits(profile, lhb)
        lhb.stats.lookups += lookups
        lhb.stats.hits += hits
        lhb.stats.misses += lookups - hits

    eliminated = hits
    l1_accesses = c.loads_total - eliminated
    anchors = profile.anchors
    l1_hits = int(
        round(
            float(
                np.interp(
                    eliminated,
                    anchors.eliminated.astype(float),
                    anchors.l1_hits.astype(float),
                )
            )
        )
    )
    l1_hits = max(0, min(l1_hits, l1_accesses))
    l2_accesses = l1_accesses - l1_hits
    l2_hits = int(
        round(
            float(
                np.interp(
                    eliminated,
                    anchors.eliminated.astype(float),
                    anchors.l2_hits.astype(float),
                )
            )
        )
    )
    l2_hits = max(0, min(l2_hits, l2_accesses))
    dram_served = l2_accesses - l2_hits
    line_bytes = profile.gpu.l1_line_bytes

    return LayerStats(
        loads_total=c.loads_total,
        loads_workspace=c.loads_workspace,
        loads_filter=c.loads_filter,
        loads_input=0,
        stores=c.stores,
        workspace_instructions=c.workspace_instructions,
        lhb_lookups=lookups,
        lhb_hits=hits,
        eliminated_fragments=eliminated,
        unique_workspace_ids=c.unique_workspace_ids,
        l1_accesses=l1_accesses,
        l1_hits=l1_hits,
        l2_accesses=l2_accesses,
        l2_hits=l2_hits,
        dram_read_bytes=dram_served * line_bytes,
        dram_write_bytes=c.stores * profile.gpu.store_frag_bytes,
        mma_ops=c.mma_ops,
        breakdown=MemoryBreakdown(
            lhb=eliminated,
            l1=l1_hits,
            l2=l2_hits,
            dram=dram_served,
            shared=0,
        ),
    )
