"""``repro.analytic`` — closed-form layer predictors, no trace needed.

The analytic engine tier answers a (layer, mode, LHB geometry) query
from a once-per-layer reuse profile instead of generating and
replaying a memory trace:

* :func:`layer_profile` builds (and caches) the
  :class:`LayerProfile` — the scheduled load stream reduced to a
  geometry-independent reuse table, exact traffic anchors, and
  closed-form stream counters (:mod:`repro.analytic.profile`);
* :func:`predict_stats` assembles a full :class:`~repro.gpu.stats
  .LayerStats` from the profile for any covered LHB geometry — exact
  LHB/elimination counters, bounded-error cache traffic
  (:mod:`repro.analytic.model`);
* :func:`resolve_engine` / :func:`analytic_fallback_reason` implement
  the engine-tier selection :func:`repro.gpu.simulator.simulate_layer`
  routes through (:mod:`repro.analytic.engine`);
* :func:`validate` is the differential harness holding the model to
  the committed error bounds (:mod:`repro.analytic.validation`).

See ``docs/ANALYTIC.md`` for the derivations and the per-metric error
bound table.
"""

from repro.analytic.engine import (
    ENGINE_ENV,
    ENGINE_TIERS,
    analytic_fallback_reason,
    resolve_engine,
    supports_analytic,
)
from repro.analytic.model import AnalyticUnsupported, predict_stats
from repro.analytic.profile import (
    ANCHOR_LIFETIMES,
    LayerProfile,
    clear_profile_cache,
    layer_profile,
)
from repro.analytic.validation import (
    DEFAULT_GEOMETRIES,
    GOLDEN_GEOMETRIES,
    METRIC_FLOORS,
    ValidationCase,
    ValidationReport,
    prediction_rows,
    relative_error,
    validate,
)

__all__ = [
    "ANCHOR_LIFETIMES",
    "AnalyticUnsupported",
    "DEFAULT_GEOMETRIES",
    "ENGINE_ENV",
    "GOLDEN_GEOMETRIES",
    "ENGINE_TIERS",
    "LayerProfile",
    "METRIC_FLOORS",
    "ValidationCase",
    "ValidationReport",
    "analytic_fallback_reason",
    "clear_profile_cache",
    "layer_profile",
    "predict_stats",
    "prediction_rows",
    "relative_error",
    "resolve_engine",
    "supports_analytic",
    "validate",
]
