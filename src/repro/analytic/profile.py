"""Layer reuse profiles: everything geometry-independent, computed once.

A :class:`LayerProfile` captures the structure of one layer's scheduled
load stream under one elimination mode — without ever materialising a
:class:`~repro.gpu.isa.KernelTrace`.  The stream is rebuilt from the
generator's own closed-form planner (:func:`_build_load_stream`
consumes :func:`repro.gpu.kernel.plan_sm_trace`'s warp templates, so it
reproduces :func:`~repro.gpu.kernel.generate_sm_trace`'s emission order
event for event by sharing its inputs, not by mirroring its
arithmetic), and is then compressed into three geometry-independent
artifacts:

* the **reuse table** — per consulted lookup, the global gap to its
  previous same-tag occurrence, plus (lazily, per power-of-two set
  count) the exact number of distinct other tags that touched its LHB
  set in between.  Because the set index at ``2^k`` sets is the low-k
  slice of the (hashed or modular) index function, one pass per level
  answers *every* geometry with that set count: direct-mapped and
  N-way, any lifetime.  Predictions built from the table are exact —
  they reproduce :func:`repro.gpu.fastpath.simulate_lhb_stream`
  verdict for verdict (the differential suite pins this).

* the **traffic anchors** — exact L1/L2 replays of the load stream
  under a ladder of oracle elimination fronts (``gap < g`` for a fixed
  set of lifetimes ``g``), each yielding one exact
  ``(eliminated, l1_hits, l2_hits)`` point.  Per-geometry cache
  counters interpolate between the bracketing anchors along the
  eliminated-count axis; this is the analytic tier's one
  approximation, bounded by ``tests/goldens/analytic_bounds.json``.

* the **exact counters** — load mix, stores, instruction counts,
  unique workspace IDs, MMA ops, and the extrapolation metadata
  (traced/assigned/grid CTAs, concurrent warps) that
  :func:`~repro.gpu.simulator.simulate_layer` needs to scale and time
  a result, all in closed form from the tiling.

Profiles are cached in a small in-process LRU keyed by the full
configuration (same normalisation as the trace cache), so a geometry
sweep pays the stream pass once.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.conv.layer import ConvLayerSpec
from repro.gpu.cache import SetAssociativeCache
from repro.gpu.config import (
    BASELINE_KERNEL,
    GPUConfig,
    KernelConfig,
    SimulationOptions,
    TITAN_V,
)
from repro.gpu.fastpath import (
    distinct_count,
    lru_hit_mask,
    prev_in_group,
    windowed_distinct_counts,
)
from repro.gpu.isa import EVENT_BYTES, LOAD_A, LOAD_B, STORE_D
from repro.gpu.kernel import plan_sm_trace
from repro.gpu.ldst import EliminationMode, load_ids_for
from repro.gpu.scheduler import gto_turns, waves

#: Oracle elimination fronts anchoring the traffic interpolation.
#: Each lifetime ``g`` eliminates exactly the ``gap < g`` consults —
#: a geometry-independent, exactly replayable point on the
#: eliminated-count axis.  ``None`` is the maximal front (every
#: repeated tag eliminated); the implicit baseline anchor is zero.
ANCHOR_LIFETIMES: Tuple[Optional[int], ...] = (2, 17, 129, 1025, 8193, None)


@dataclass(frozen=True)
class TrafficAnchors:
    """Exact cache-behaviour samples along the eliminated-count axis."""

    eliminated: np.ndarray  # ascending, starts at 0
    l1_hits: np.ndarray
    l2_hits: np.ndarray


@dataclass(frozen=True)
class StreamCounters:
    """Closed-form stream totals (traced prefix of one SM)."""

    loads_total: int
    loads_workspace: int
    loads_filter: int
    stores: int
    workspace_instructions: int
    unique_workspace_ids: int
    mma_ops: int
    events: int  # loads + stores — what a trace would have held


@dataclass(frozen=True)
class ExtrapolationMeta:
    """The trace-derived scalars ``simulate_layer`` scales with."""

    traced_ctas: int
    total_ctas: int  # the SM's full assignment
    grid_ctas: int
    concurrent_warps: int

    @property
    def scale_factor(self) -> float:
        if self.traced_ctas == 0:
            return 1.0
        return self.total_ctas / self.traced_ctas

    @property
    def grid_scale(self) -> float:
        return self.grid_ctas / max(self.traced_ctas, 1)


def _build_load_stream(
    spec: ConvLayerSpec,
    gpu: GPUConfig,
    kernel: KernelConfig,
    options: SimulationOptions,
):
    """Rebuild one SM's scheduled load stream from the trace planner.

    Consumes :func:`repro.gpu.kernel.plan_sm_trace` — the *same*
    closed-form planner every trace synthesis path runs — so the
    consult-stream mirror cannot drift from the generator: the
    per-warp A/B fragment templates, store counts, MMA ops, and the
    extrapolation scalars all come straight from the plan.  Only the
    load *ordering* is restated here (waves of ``ctas_per_sm`` CTAs,
    GTO turns of ``runahead`` k-steps, per k-step the warp's A block
    then its B block), and that order is pinned bit-exact against the
    generator by the regression suite.  Returns
    ``(is_a, load_addr, geom, stores, mma_ops, meta)``.
    """
    plan = plan_sm_trace(spec, gpu, kernel, options)
    geom = plan.geom
    k_steps = geom.k_steps

    addr_chunks: List[np.ndarray] = []
    a_chunks: List[np.ndarray] = []
    for wave in waves(plan.plans_per_block, plan.concurrency):
        for turn in gto_turns(
            len(wave), kernel.warps_per_cta, k_steps, plan.runahead
        ):
            wp = wave[turn.cta_index][turn.warp]
            la, lb = len(wp.a_base), len(wp.b_base)
            if la + lb == 0:
                continue
            steps = (
                np.arange(turn.k_start, turn.k_end, dtype=np.int64)
                * gpu.frag_bytes
            )
            burst = np.concatenate([wp.a_base, wp.b_base])
            addr_chunks.append((steps[:, None] + burst[None, :]).ravel())
            mask = np.zeros(la + lb, dtype=bool)
            mask[:la] = True
            a_chunks.append(np.tile(mask, len(steps)))

    if addr_chunks:
        load_addr = np.concatenate(addr_chunks)
        is_a = np.concatenate(a_chunks)
    else:
        load_addr = np.empty(0, dtype=np.int64)
        is_a = np.empty(0, dtype=bool)

    stores = sum(
        len(wp.store_addr) for plans in plan.plans_per_block for wp in plans
    )
    meta = ExtrapolationMeta(
        traced_ctas=plan.traced_ctas,
        total_ctas=plan.assigned,
        grid_ctas=plan.grid_ctas,
        concurrent_warps=plan.concurrent_warps,
    )
    return is_a, load_addr, geom, stores, plan.mma_ops, meta


def _mix_index(element: np.ndarray) -> np.ndarray:
    """Fibonacci-mixed index value, before the modulo — the vectorised
    twin of :func:`repro.gpu.fastpath._lhb_set_indices`'s hashed arm."""
    mixed = element.astype(np.uint64) * np.uint64(0x9E3779B97F4A7C15)
    return mixed ^ (mixed >> np.uint64(29))


class LayerProfile:
    """Geometry-independent reuse/traffic profile of one (layer, mode)."""

    def __init__(
        self,
        spec: ConvLayerSpec,
        gpu: GPUConfig,
        kernel: KernelConfig,
        options: SimulationOptions,
        mode: EliminationMode,
    ):
        self.spec = spec
        self.gpu = gpu
        self.kernel = kernel
        self.options = options
        self.mode = mode

        is_a, load_addr, geom, stores, mma_ops, meta = _build_load_stream(
            spec, gpu, kernel, options
        )
        self.meta = meta
        n_loads = len(load_addr)
        load_kind = np.where(
            is_a, np.uint8(LOAD_A), np.uint8(LOAD_B)
        ).astype(np.uint8)

        consults, batch, element = load_ids_for(
            spec, options, mode, load_kind, load_addr, geom.lda, gpu
        )
        self._consult_idx = np.nonzero(consults)[0]
        self._element = element[self._consult_idx]
        cbatch = batch[self._consult_idx]
        nc = len(self._element)
        if nc:
            base = np.int64(int(cbatch.max()) + 1)
            self._tag = self._element * base + cbatch
        else:
            self._tag = np.empty(0, dtype=np.int64)
        prev = prev_in_group(self._tag)
        self._has_prev = prev >= 0
        self._gap = np.where(
            self._has_prev, np.arange(nc, dtype=np.int64) - prev, np.int64(-1)
        )
        self._levels: Dict[Tuple[bool, int], Tuple[np.ndarray, ...]] = {}

        # Unique workspace IDs: the same generator pass serves every
        # mode at fragment granularity (it always runs over A loads).
        a_ok, a_batch, a_element = load_ids_for(
            spec, options, EliminationMode.DUPLO, load_kind, load_addr,
            geom.lda, gpu,
        )
        a_idx = np.nonzero(is_a)[0]
        ok_a = a_ok[a_idx]
        keys = (
            a_batch[a_idx][ok_a] * (1 << 44) + a_element[a_idx][ok_a]
        )
        loads_a = int(is_a.sum())
        unique_ids = distinct_count(keys) + loads_a - int(ok_a.sum())

        self.counters = StreamCounters(
            loads_total=n_loads,
            loads_workspace=loads_a,
            loads_filter=n_loads - loads_a,
            stores=stores,
            workspace_instructions=loads_a,
            unique_workspace_ids=unique_ids,
            mma_ops=mma_ops,
            events=n_loads + stores,
        )

        self.anchors = self._build_anchors(load_addr)
        # The raw line stream is only needed for the anchors.
        self._n_loads = n_loads

    # -- traffic anchors ------------------------------------------------

    def _build_anchors(self, load_addr: np.ndarray) -> TrafficAnchors:
        gpu = self.gpu
        l1 = SetAssociativeCache(
            gpu.l1_bytes, gpu.l1_assoc, gpu.l1_line_bytes,
            mshr_window=gpu.l1_latency,
        )
        l2 = SetAssociativeCache(gpu.l2_bytes, gpu.l2_assoc, gpu.l2_line_bytes)
        all_lines = load_addr >> l1.line_shift

        fronts: List[Optional[int]] = [0, *ANCHOR_LIFETIMES]
        points = {}
        for g in fronts:
            if g == 0 or self.mode is EliminationMode.BASELINE:
                elim = np.zeros(0, dtype=np.int64)
            elif g is None:
                elim = self._consult_idx[self._has_prev]
            else:
                elim = self._consult_idx[self._has_prev & (self._gap < g)]
            e = len(elim)
            if e in points:
                continue
            keep = np.ones(len(all_lines), dtype=bool)
            keep[elim] = False
            lines = all_lines[keep]
            l1_hit = lru_hit_mask(lines, l1.set_mask, l1.assoc)
            l2_hit = lru_hit_mask(
                lines[~l1_hit], l2.set_mask, l2.assoc
            )
            points[e] = (int(l1_hit.sum()), int(l2_hit.sum()))
            if self.mode is EliminationMode.BASELINE:
                break
        es = np.array(sorted(points), dtype=np.int64)
        return TrafficAnchors(
            eliminated=es,
            l1_hits=np.array([points[e][0] for e in es], dtype=np.int64),
            l2_hits=np.array([points[e][1] for e in es], dtype=np.int64),
        )

    # -- reuse table ----------------------------------------------------

    @property
    def lookups(self) -> int:
        return len(self._tag)

    @property
    def max_eliminated(self) -> int:
        return int(self._has_prev.sum())

    def level(self, hashed: bool, k: int) -> Tuple[np.ndarray, ...]:
        """Bucketed ``(gap, distinct-in-set)`` table at ``2^k`` sets.

        Computed lazily per ``(index kind, level)`` and memoised:
        ``counts[i]`` lookups share gap ``gaps[i]`` and exactly
        ``sds[i]`` distinct other tags in their set's reuse window.
        """
        key = (hashed, k)
        cached = self._levels.get(key)
        if cached is not None:
            return cached
        num_sets = np.int64(1) << np.int64(k)
        if k == 0:
            klass = np.zeros(len(self._tag), dtype=np.int64)
        elif hashed:
            klass = (_mix_index(self._element) % np.uint64(num_sets)).astype(
                np.int64
            )
        else:
            klass = np.mod(self._element.astype(np.int64), num_sets)
        sd = windowed_distinct_counts(klass, self._tag)
        sel = self._has_prev
        gap, sd = self._gap[sel], sd[sel]
        # Compress to unique (gap, sd) pairs; gaps and distances are
        # bounded by the lookup count so the composite key cannot wrap.
        span = np.int64(len(self._tag) + 2)
        pairs, counts = np.unique(gap * span + sd, return_counts=True)
        table = (pairs // span, pairs % span, counts.astype(np.int64))
        self._levels[key] = table
        obs.add("analytic.levels_built")
        return table

    def oracle_hits(self, lifetime: Optional[int]) -> int:
        """Exact oracle (unbounded) hit count under one lifetime."""
        if lifetime is None:
            return self.max_eliminated
        return int((self._has_prev & (self._gap < lifetime)).sum())


# ----------------------------------------------------------------------
# Profile cache
# ----------------------------------------------------------------------

_profile_cache: "OrderedDict[Tuple, LayerProfile]" = OrderedDict()
_PROFILE_CACHE_LIMIT = 16


def _cache_options(options: SimulationOptions) -> SimulationOptions:
    # Like the trace cache: implementation selectors never change the
    # profile.  Query-side knobs (lifetime, hashed_index) stay in the
    # key — they are cheap to vary and keeping them avoids aliasing
    # surprises if a future field interacts with the stream.
    return replace(options, fast_path="auto", engine="auto")


def layer_profile(
    spec: ConvLayerSpec,
    mode: EliminationMode,
    gpu: GPUConfig = TITAN_V,
    kernel: KernelConfig = BASELINE_KERNEL,
    options: SimulationOptions = SimulationOptions(),
) -> LayerProfile:
    """Get-or-build the cached :class:`LayerProfile`."""
    key = (spec, gpu, kernel, _cache_options(options), mode)
    prof = _profile_cache.get(key)
    if prof is not None:
        _profile_cache.move_to_end(key)
        obs.add("analytic.profile.lru_hits")
        return prof
    with obs.span(
        "analytic.profile.build", layer=spec.qualified_name, mode=mode.value
    ):
        prof = LayerProfile(spec, gpu, kernel, options, mode)
    obs.add("analytic.profile.built")
    while len(_profile_cache) >= _PROFILE_CACHE_LIMIT:
        _profile_cache.popitem(last=False)
    _profile_cache[key] = prof
    return prof


def clear_profile_cache() -> None:
    """Drop cached profiles (tests that tweak globals call this)."""
    _profile_cache.clear()


# Re-exported for LayerStats assembly in the model.
_ = EVENT_BYTES, STORE_D
