"""Differential validation of the analytic model against exact replay.

:func:`validate` sweeps a layer x mode x LHB-geometry grid, answering
each point twice — analytically (:func:`repro.analytic.model
.predict_stats` over the cached profile) and exactly (trace generation
plus :func:`repro.gpu.fastpath.replay_trace_fast`, called directly so
no engine selection or environment override can leak into the exact
side) — and reports per-metric relative errors.  The committed bound
table ``tests/goldens/analytic_bounds.json`` caps the worst error per
metric; ``tests/test_analytic_validation.py`` fails with the report of
:meth:`ValidationReport.format_failures` when any bound is exceeded.

Error metric: ``|predicted - exact| / max(|exact|, floor)`` with a
per-metric absolute floor (:data:`METRIC_FLOORS`), so near-zero exact
values do not inflate relative errors into noise.  Rates use floor
``1.0`` — their "relative" error *is* the absolute difference, which
is the right scale for quantities bounded by one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.conv.layer import ConvLayerSpec
from repro.core.lhb import LoadHistoryBuffer
from repro.energy.model import EnergyModel, on_chip_energy_reduction
from repro.gpu.config import (
    BASELINE_KERNEL,
    GPUConfig,
    KernelConfig,
    SimulationOptions,
    TITAN_V,
)
from repro.gpu.fastpath import replay_trace_fast
from repro.gpu.kernel import generate_sm_trace
from repro.gpu.ldst import EliminationMode
from repro.gpu.stats import LayerStats

from repro.analytic.model import predict_stats
from repro.analytic.profile import layer_profile

#: Absolute floor per metric: the denominator of the relative error
#: never drops below it.  Rates (bounded by 1) use floor 1.0 so their
#: error is the plain absolute difference; count/byte metrics use the
#: scale below which a discrepancy stops being meaningful.
METRIC_FLOORS: Dict[str, float] = {
    "lhb_hit_rate": 1.0,
    "elimination_rate": 1.0,
    "l1_hits": 1e4,
    "l2_hits": 1e4,
    "dram_read_bytes": 1e6,
    "on_chip_energy_reduction": 0.05,
}

#: LHB geometry grid: (entries, assoc, lifetime, hashed_index).
#: ``entries=None`` is the oracle buffer.  Covers the paper's default
#: (1024-entry direct-mapped hashed, lifetime 4096), the Figure 12
#: associativity sweep, tiny/huge buffers, modular indexing, short
#: and infinite lifetimes.
DEFAULT_GEOMETRIES: Tuple[
    Tuple[Optional[int], int, Optional[int], bool], ...
] = (
    (1024, 1, 4096, True),
    (1024, 1, 4096, False),
    (64, 1, 4096, True),
    (256, 2, 4096, True),
    (1024, 4, 4096, True),
    (2048, 8, 4096, False),
    (16, 1, 512, True),
    (4096, 1, None, True),
    (8192, 8, 64, True),
    (None, 1, 4096, True),
    (None, 1, None, True),
)


@dataclass(frozen=True)
class ValidationCase:
    """One (layer, mode, geometry, metric) comparison."""

    layer: str
    mode: str
    entries: Optional[int]
    assoc: int
    lifetime: Optional[int]
    hashed: bool
    metric: str
    predicted: float
    exact: float
    error: float

    def describe(self) -> str:
        geom = (
            "oracle"
            if self.entries is None
            else f"{self.entries}e/{self.assoc}w"
        )
        index = "hashed" if self.hashed else "modular"
        life = "inf" if self.lifetime is None else str(self.lifetime)
        return (
            f"{self.metric}: err={self.error:.4%}  "
            f"predicted={self.predicted:.6g} exact={self.exact:.6g}  "
            f"at {self.layer} mode={self.mode} lhb={geom} "
            f"life={life} index={index}"
        )


@dataclass
class ValidationReport:
    """Aggregated differential-sweep outcome."""

    points: int = 0
    worst: Dict[str, ValidationCase] = field(default_factory=dict)

    def record(self, case: ValidationCase) -> None:
        prior = self.worst.get(case.metric)
        if prior is None or case.error > prior.error:
            self.worst[case.metric] = case

    def worst_errors(self) -> Dict[str, float]:
        return {m: c.error for m, c in sorted(self.worst.items())}

    def failures(
        self, bounds: Dict[str, float]
    ) -> List[Tuple[str, float, ValidationCase]]:
        """(metric, bound, worst case) for every exceeded bound.

        Every metric in ``bounds`` must have been exercised — a bound
        with no recorded case is itself a failure (the sweep silently
        stopped covering the metric).
        """
        out = []
        for metric, bound in sorted(bounds.items()):
            case = self.worst.get(metric)
            if case is None:
                case = ValidationCase(
                    layer="<none>", mode="<none>", entries=None, assoc=0,
                    lifetime=None, hashed=True, metric=metric,
                    predicted=float("nan"), exact=float("nan"),
                    error=float("inf"),
                )
            if case.error > bound:
                out.append((metric, bound, case))
        return out

    def format_failures(self, bounds: Dict[str, float]) -> str:
        """Readable worst-offender report for a failing assertion."""
        lines = [
            f"analytic validation: {self.points} grid points swept; "
            "bound violations:"
        ]
        for metric, bound, case in self.failures(bounds):
            lines.append(f"  bound {bound:.4%} exceeded -> {case.describe()}")
        lines.append("worst error per metric:")
        for metric, case in sorted(self.worst.items()):
            lines.append(f"  {case.describe()}")
        return "\n".join(lines)


def _case_metrics(
    predicted: LayerStats,
    exact: LayerStats,
    base_exact: LayerStats,
    base_pred: LayerStats,
    energy: EnergyModel,
) -> Dict[str, Tuple[float, float]]:
    """(predicted, exact) value pairs for every validated metric."""
    red_pred = on_chip_energy_reduction(
        energy.breakdown(base_pred), energy.breakdown(predicted)
    )
    red_exact = on_chip_energy_reduction(
        energy.breakdown(base_exact), energy.breakdown(exact)
    )
    return {
        "lhb_hit_rate": (predicted.lhb_hit_rate, exact.lhb_hit_rate),
        "elimination_rate": (
            predicted.elimination_rate, exact.elimination_rate
        ),
        "l1_hits": (predicted.l1_hits, exact.l1_hits),
        "l2_hits": (predicted.l2_hits, exact.l2_hits),
        "dram_read_bytes": (
            predicted.dram_read_bytes, exact.dram_read_bytes
        ),
        "on_chip_energy_reduction": (red_pred, red_exact),
    }


def relative_error(predicted: float, exact: float, floor: float) -> float:
    return abs(predicted - exact) / max(abs(exact), floor)


#: Geometry subset pinned by the analytic golden fixture: the paper's
#: default buffer, a set-associative point, and the oracle.
GOLDEN_GEOMETRIES: Tuple[
    Tuple[Optional[int], int, Optional[int], bool], ...
] = (
    (1024, 1, 4096, True),
    (256, 2, 4096, True),
    (None, 1, None, True),
)


def prediction_rows(
    layers: Sequence[ConvLayerSpec],
    modes: Iterable[EliminationMode] = (
        EliminationMode.DUPLO,
        EliminationMode.WIR,
    ),
    geometries: Sequence[
        Tuple[Optional[int], int, Optional[int], bool]
    ] = GOLDEN_GEOMETRIES,
    gpu: GPUConfig = TITAN_V,
    kernel: KernelConfig = BASELINE_KERNEL,
    options: SimulationOptions = SimulationOptions(max_ctas=2),
) -> List[Dict[str, object]]:
    """Analytic predictions as JSON-serialisable rows.

    Feeds the ``tests/goldens/analytic.json`` fixture: one row per
    (layer, mode, geometry) with the validated metrics plus the raw
    counters the model claims exact, so any accuracy drift — in the
    exact level tables or the interpolated traffic — is byte-visible
    in golden-drift CI.
    """
    energy = EnergyModel()
    rows: List[Dict[str, object]] = []
    for spec in layers:
        base = predict_stats(
            layer_profile(spec, EliminationMode.BASELINE, gpu, kernel, options),
            None,
        )
        base_bd = energy.breakdown(base)
        for mode in modes:
            profile = layer_profile(spec, mode, gpu, kernel, options)
            for entries, assoc, lifetime, hashed in geometries:
                stats = predict_stats(
                    profile,
                    LoadHistoryBuffer(
                        num_entries=entries, assoc=assoc,
                        lifetime=lifetime, hashed_index=hashed,
                    ),
                )
                rows.append({
                    "layer": spec.qualified_name,
                    "mode": mode.value,
                    "lhb_entries": entries,
                    "lhb_assoc": assoc,
                    "lhb_lifetime": lifetime,
                    "hashed_index": hashed,
                    "lhb_lookups": stats.lhb_lookups,
                    "lhb_hits": stats.lhb_hits,
                    "eliminated_fragments": stats.eliminated_fragments,
                    "lhb_hit_rate": stats.lhb_hit_rate,
                    "elimination_rate": stats.elimination_rate,
                    "l1_hits": stats.l1_hits,
                    "l2_hits": stats.l2_hits,
                    "dram_read_bytes": stats.dram_read_bytes,
                    "on_chip_energy_reduction": on_chip_energy_reduction(
                        base_bd, energy.breakdown(stats)
                    ),
                })
    return rows


def validate(
    layers: Sequence[ConvLayerSpec],
    modes: Iterable[EliminationMode] = (
        EliminationMode.DUPLO,
        EliminationMode.WIR,
    ),
    geometries: Sequence[
        Tuple[Optional[int], int, Optional[int], bool]
    ] = DEFAULT_GEOMETRIES,
    gpu: GPUConfig = TITAN_V,
    kernel: KernelConfig = BASELINE_KERNEL,
    options: SimulationOptions = SimulationOptions(max_ctas=2),
    predict=predict_stats,
) -> ValidationReport:
    """Differential sweep: analytic vs exact replay over the grid.

    The exact side calls trace generation and the columnar replay
    directly — no engine tiering, no caches, no environment coupling.
    ``predict`` is injectable so the suite's meta-test can loosen a
    predictor and demonstrate the harness catches it.
    """
    energy = EnergyModel()
    report = ValidationReport()
    for spec in layers:
        trace = generate_sm_trace(spec, gpu, kernel, options)
        base_exact = replay_trace_fast(
            trace, spec, gpu, options, EliminationMode.BASELINE, None
        )
        base_prof = layer_profile(
            spec, EliminationMode.BASELINE, gpu, kernel, options
        )
        base_pred = predict(base_prof, None)
        for mode in modes:
            if mode is EliminationMode.BASELINE:
                continue  # the baseline feeds every mode's energy delta
            profile = layer_profile(spec, mode, gpu, kernel, options)
            for entries, assoc, lifetime, hashed in geometries:
                exact_lhb = LoadHistoryBuffer(
                    num_entries=entries, assoc=assoc, lifetime=lifetime,
                    hashed_index=hashed,
                )
                exact = replay_trace_fast(
                    trace, spec, gpu, options, mode, exact_lhb
                )
                pred_lhb = LoadHistoryBuffer(
                    num_entries=entries, assoc=assoc, lifetime=lifetime,
                    hashed_index=hashed,
                )
                predicted = predict(profile, pred_lhb)
                report.points += 1
                pairs = _case_metrics(
                    predicted, exact, base_exact, base_pred, energy
                )
                for metric, (p, e) in pairs.items():
                    report.record(
                        ValidationCase(
                            layer=spec.qualified_name,
                            mode=mode.value,
                            entries=entries,
                            assoc=assoc,
                            lifetime=lifetime,
                            hashed=hashed,
                            metric=metric,
                            predicted=float(p),
                            exact=float(e),
                            error=relative_error(
                                float(p), float(e), METRIC_FLOORS[metric]
                            ),
                        )
                    )
    return report
