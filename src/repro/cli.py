"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``layers``
    Print Table I with derived GEMM geometry.
``simulate NETWORK LAYER``
    Simulate one layer (baseline vs. Duplo) and print the comparison.
``experiment NAME``
    Regenerate one paper figure/table (``figure2`` .. ``figure14``,
    ``table2``, ``multikernel``, ``energy_area``, ``arch_zoo``).
    ``--jobs N`` fans
    the sweep across N workers (``--backend`` picks threads,
    processes, or multi-host shared-store coordination; ``--cutover``
    tunes the adaptive inline/pool decision); artifacts persist under
    ``results/cache/`` unless ``--no-cache`` is given.
``calibration``
    Print the model's headline numbers against the paper's.
``cache stats`` / ``cache clear``
    Inspect or empty the persistent trace/result cache.
``serve``
    Long-running HTTP what-if query server (``docs/SERVICE.md``):
    coalesced ``/query``, async ``/sweep`` jobs, ``/metrics``, and a
    byte-capped store (``--store-max-bytes``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro import obs
from repro.analysis import experiments as exp_mod
from repro.analysis.report import format_experiment, format_table
from repro.conv.workloads import WORKLOADS, get_layer, networks
from repro.gpu.config import SimulationOptions, arch_names, get_arch
from repro.gpu.simulator import EliminationMode, simulate_layer

EXPERIMENTS = {
    "figure2": lambda a, ex: exp_mod.figure2(),
    "figure3": lambda a, ex: exp_mod.figure3(),
    "figure9": lambda a, ex: exp_mod.figure9(options=a, executor=ex),
    "figure10": lambda a, ex: exp_mod.figure10(options=a, executor=ex),
    "figure11": lambda a, ex: exp_mod.figure11(options=a, executor=ex),
    "figure12": lambda a, ex: exp_mod.figure12(options=a, executor=ex),
    "figure13": lambda a, ex: exp_mod.figure13(options=a, executor=ex),
    "figure14": lambda a, ex: exp_mod.figure14(options=a),
    "table2": lambda a, ex: exp_mod.table2(),
    "multikernel": lambda a, ex: exp_mod.multikernel_sharing(options=a),
    "energy_area": lambda a, ex: exp_mod.energy_area(options=a, executor=ex),
    "arch_zoo": lambda a, ex: exp_mod.arch_zoo(options=a, executor=ex),
}


def _make_executor(args: argparse.Namespace):
    """Build the sweep executor the experiment/calibration commands use."""
    from repro.runtime import DiskCache, SweepExecutor

    cache = None
    if not getattr(args, "no_cache", False):
        cache = DiskCache(args.cache_dir) if args.cache_dir else DiskCache()
    return SweepExecutor(
        jobs=getattr(args, "jobs", 1),
        cache=cache,
        backend=getattr(args, "backend", "auto"),
        cutover=getattr(args, "cutover", "auto"),
    )


def _cutover(text: str):
    """``--cutover`` parser: the literal ``auto`` or a seconds float."""
    if text.strip().lower() == "auto":
        return "auto"
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must be 'auto' or a number of seconds, got {text!r}"
        )
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_arch_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--arch", choices=list(arch_names()), default=None,
        help="architecture preset: selects the GPU model and its "
        "matching kernel tiling (default volta, overridable via "
        "$REPRO_ARCH)",
    )


def _add_fast_path_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fast-path", choices=["auto", "on", "off"], default="auto",
        help="vectorised replay: auto falls back where unsupported, "
        "on forces it (error if unsupported), off replays event by "
        "event; results are bit-identical either way",
    )
    parser.add_argument(
        "--engine", choices=["auto", "analytic", "fast", "event"],
        default="auto",
        help="simulation tier: auto keeps the exact replay tiering "
        "(honouring $REPRO_ENGINE), analytic answers covered configs "
        "from the closed-form profile (exact LHB counters, "
        "bounded-error traffic, ~100x faster), fast/event pin the "
        "exact replay implementations",
    )


def _options(args: argparse.Namespace, **overrides) -> SimulationOptions:
    """SimulationOptions from the common CLI knobs."""
    return SimulationOptions(
        max_ctas=args.max_ctas,
        fast_path=getattr(args, "fast_path", "auto"),
        engine=getattr(args, "engine", "auto"),
        **overrides,
    )


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """Observability knobs, shared by every subcommand."""
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write the nested phase-span tree as JSON",
    )
    group.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the counter/gauge registry snapshot as JSON",
    )
    group.add_argument(
        "--manifest-out", default=None, metavar="PATH",
        help="write the run manifest (git SHA, versions, options, "
        "cache stats, phase timings, peak RSS); defaults to "
        "<metrics/trace-out>.manifest.json when either is given",
    )
    group.add_argument(
        "--log-level", default=None,
        choices=["debug", "info", "warning", "error", "critical"],
        help="configure stdlib logging for the repro.* loggers",
    )


def _add_runtime_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=_positive_int, default=1,
        help="worker processes for the sweep (default 1 = serial)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="skip the persistent trace/result cache",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="cache location (default $REPRO_CACHE_DIR or results/cache)",
    )
    parser.add_argument(
        "--backend",
        choices=["auto", "serial", "threads", "processes", "shared-store"],
        default="auto",
        help="worker venue: auto prices each chunk (threads for the "
        "vectorised tiers, processes for the event tier, inline when "
        "a pool would not pay off), serial forces inline, "
        "shared-store coordinates hosts through the cache directory; "
        "results are bit-identical across backends",
    )
    parser.add_argument(
        "--cutover", type=_cutover, default="auto",
        help="estimated-seconds threshold below which the sweep runs "
        "inline (default auto: pool only when the estimated saving "
        "beats pool startup; 0 forces pooling, inf forces inline)",
    )


def _cmd_layers(args: argparse.Namespace) -> int:
    rows = []
    specs = [s for layers in WORKLOADS.values() for s in layers]
    for spec in specs:
        g = spec.gemm_shape
        rows.append(
            {
                "layer": spec.qualified_name,
                "input": "x".join(map(str, spec.input_nhwc)),
                "filter": "x".join(map(str, spec.filter_nhwc)),
                "pad": spec.pad,
                "stride": spec.stride,
                "M": g.m,
                "N": g.n,
                "K": g.k,
                "dup": round(spec.duplication_factor, 2),
            }
        )
    print(format_table(rows))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    spec = get_layer(args.network, args.layer)
    options = _options(args)
    preset = get_arch(args.arch)
    base = simulate_layer(
        spec, EliminationMode.BASELINE, gpu=preset.gpu,
        kernel=preset.kernel, options=options,
    )
    duplo = simulate_layer(
        spec,
        EliminationMode.DUPLO,
        lhb_entries=None if args.lhb == 0 else args.lhb,
        lhb_assoc=args.assoc,
        gpu=preset.gpu,
        kernel=preset.kernel,
        options=options,
    )
    rows = []
    print(f"arch: {preset.name} ({preset.description})")
    for label, r in [("baseline", base), ("duplo", duplo)]:
        rows.append(
            {
                "config": label,
                "cycles": round(r.cycles),
                "time_ms": r.time_ms,
                "hit_rate": r.stats.lhb_hit_rate,
                "eliminated": r.stats.elimination_rate,
                "dram_MiB": r.stats.dram_read_bytes / 2**20,
            }
        )
    print(spec)
    print(format_table(rows))
    print(f"improvement: {duplo.speedup_over(base) - 1:+.1%}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    try:
        runner = EXPERIMENTS[args.name]
    except KeyError:
        print(
            f"unknown experiment {args.name!r}; "
            f"choose from {sorted(EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2
    options = _options(args)
    exp = runner(options, _make_executor(args))
    if args.chart:
        from repro.analysis.charts import summary_chart

        print(summary_chart(exp))
    else:
        print(format_experiment(exp, max_rows=args.max_rows))
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.analysis.layerstudy import study_layer

    spec = get_layer(args.network, args.layer)
    options = _options(args)
    preset = get_arch(args.arch)
    dossier = study_layer(
        spec, lhb_entries=args.lhb or None, options=options,
        gpu=preset.gpu, kernel=preset.kernel,
    )
    print(spec)
    for key, value in dossier.summary().items():
        if isinstance(value, float) and abs(value) < 10:
            print(f"  {key:28s} {value:8.3f}")
        else:
            print(f"  {key:28s} {value:,.1f}")
    print(f"\nverdict: {dossier.verdict}")
    return 0


def _cmd_network(args: argparse.Namespace) -> int:
    from repro.conv.zoo import ZOO, build
    from repro.gpu.stats import geometric_mean

    try:
        net = build(args.name, batch=args.batch)
    except KeyError:
        print(
            f"unknown network {args.name!r}; choose from {sorted(ZOO)}",
            file=sys.stderr,
        )
        return 2
    options = _options(args)
    preset = get_arch(args.arch)
    rows = []
    speedups = []
    for spec in net.conv_specs():
        base = simulate_layer(
            spec, EliminationMode.BASELINE, gpu=preset.gpu,
            kernel=preset.kernel, options=options,
        )
        duplo = simulate_layer(
            spec, lhb_entries=args.lhb or None, gpu=preset.gpu,
            kernel=preset.kernel, options=options,
        )
        speedups.append(duplo.speedup_over(base))
        rows.append(
            {
                "layer": spec.name,
                "improvement": speedups[-1] - 1,
                "hit_rate": duplo.stats.lhb_hit_rate,
                "duplication": round(spec.duplication_factor, 2),
            }
        )
    print(net)
    print(format_table(rows))
    print(f"gmean improvement: {geometric_mean(speedups) - 1:+.1%}")
    return 0


def _cmd_calibration(args: argparse.Namespace) -> int:
    options = _options(args)
    executor = _make_executor(args)
    for name in ("figure9", "figure10", "figure11", "energy_area"):
        exp = EXPERIMENTS[name](options, executor)
        for key, ref in exp.paper.items():
            measured = exp.summary.get(key)
            print(f"{name:12s} {key:32s} paper={ref:<8} measured={measured:.3f}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import QueryService, ServiceConfig, make_server
    from repro.serve import serve_forever

    service = QueryService(
        ServiceConfig(
            cache_dir=args.cache_dir,
            no_cache=args.no_cache,
            store_max_bytes=args.store_max_bytes,
            sweep_jobs=args.jobs,
            sweep_backend=args.backend,
            job_workers=args.job_workers,
        )
    )
    server = make_server(args.host, args.port, service)
    host, port = server.server_address[:2]
    # The bound address goes to stdout so callers using --port 0 can
    # discover the ephemeral port (the CI load lane does).
    print(f"serving on http://{host}:{port}", flush=True)
    serve_forever(server)
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.runtime import DiskCache

    cache = DiskCache(args.dir) if args.dir else DiskCache()
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached artifact(s) from {cache.root}")
        return 0
    s = cache.stats()
    note = "" if cache.root.is_dir() else "  (empty — not created yet)"
    print(f"cache root:    {s.root}{note}")
    print(f"trace files:   {s.trace_files}")
    print(f"result files:  {s.result_files}")
    print(f"disk bytes:    {s.disk_bytes:,}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Duplo (MICRO 2020) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    layers = sub.add_parser("layers", help="print Table I with GEMM geometry")

    sim = sub.add_parser("simulate", help="simulate one layer")
    sim.add_argument("network", choices=list(networks()))
    sim.add_argument("layer", help="layer name, e.g. C2, TC1 or QK")
    sim.add_argument("--lhb", type=int, default=1024,
                     help="LHB entries (0 = oracle)")
    sim.add_argument("--assoc", type=int, default=1)
    sim.add_argument("--max-ctas", type=int, default=None)
    _add_arch_flag(sim)
    _add_fast_path_flag(sim)

    exp = sub.add_parser("experiment", help="regenerate a paper figure")
    exp.add_argument("name", help="figure2..figure14, table2, energy_area, "
                     "arch_zoo")
    exp.add_argument("--max-ctas", type=int, default=4)
    exp.add_argument("--max-rows", type=int, default=30)
    exp.add_argument("--chart", action="store_true",
                     help="render summary metrics as a bar chart")
    _add_fast_path_flag(exp)
    _add_runtime_flags(exp)

    cal = sub.add_parser("calibration", help="paper-vs-measured headlines")
    cal.add_argument("--max-ctas", type=int, default=4)
    _add_fast_path_flag(cal)
    _add_runtime_flags(cal)

    cache = sub.add_parser(
        "cache", help="inspect or clear the persistent trace/result cache"
    )
    cache.add_argument("action", choices=["stats", "clear"])
    cache.add_argument(
        "--dir", default=None,
        help="cache location (default $REPRO_CACHE_DIR or results/cache)",
    )

    ins = sub.add_parser("inspect", help="full dossier for one layer")
    ins.add_argument("network", choices=list(networks()))
    ins.add_argument("layer")
    ins.add_argument("--lhb", type=int, default=1024)
    ins.add_argument("--max-ctas", type=int, default=3)
    _add_arch_flag(ins)
    _add_fast_path_flag(ins)

    net = sub.add_parser(
        "network", help="simulate a derived network (vgg16/discogan/fcn)"
    )
    net.add_argument("name", help="network from the zoo")
    net.add_argument("--batch", type=int, default=8)
    net.add_argument("--lhb", type=int, default=1024,
                     help="LHB entries (0 = oracle)")
    net.add_argument("--max-ctas", type=int, default=2)
    _add_arch_flag(net)
    _add_fast_path_flag(net)

    srv = sub.add_parser(
        "serve", help="long-running HTTP what-if query server"
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument(
        "--port", type=int, default=8321,
        help="listen port (0 = ephemeral; the bound address is printed)",
    )
    srv.add_argument(
        "--store-max-bytes", type=_positive_int, default=None,
        metavar="BYTES",
        help="byte cap on the persistent store; the service evicts "
        "LRU artifact groups past it (default: unbounded)",
    )
    srv.add_argument(
        "--job-workers", type=_positive_int, default=1,
        help="background workers draining the /sweep job queue",
    )
    _add_runtime_flags(srv)

    for command in (layers, sim, exp, cal, cache, ins, net, srv):
        _add_obs_flags(command)

    return parser


def _obs_requested(args: argparse.Namespace) -> bool:
    return any(
        getattr(args, name, None)
        for name in ("trace_out", "metrics_out", "manifest_out")
    )


def _manifest_path(args: argparse.Namespace) -> Optional[Path]:
    """Explicit ``--manifest-out``, else next to the metrics/trace file."""
    if getattr(args, "manifest_out", None):
        return Path(args.manifest_out)
    for name in ("metrics_out", "trace_out"):
        value = getattr(args, name, None)
        if value:
            p = Path(value)
            return p.with_name(p.stem + ".manifest.json")
    return None


def _write_obs_outputs(args: argparse.Namespace) -> None:
    """Serialize the span tree, metrics snapshot, and run manifest."""
    if getattr(args, "trace_out", None):
        payload = {"schema_version": 1, "command": args.command}
        payload.update(obs.tree())
        Path(args.trace_out).write_text(
            json.dumps(payload, indent=1) + "\n"
        )
    if getattr(args, "metrics_out", None):
        payload = {"schema_version": 1, "command": args.command}
        payload.update(obs.snapshot())
        Path(args.metrics_out).write_text(
            json.dumps(payload, indent=1, sort_keys=True) + "\n"
        )
    manifest_path = _manifest_path(args)
    if manifest_path is not None:
        options = (
            _options(args) if hasattr(args, "max_ctas") else None
        )
        cache = None
        if hasattr(args, "no_cache") and not args.no_cache:
            from repro.runtime import DiskCache

            cache = (
                DiskCache(args.cache_dir) if args.cache_dir else DiskCache()
            )
        manifest = obs.collect_manifest(
            args.command,
            argv=list(sys.argv),
            options=options,
            cache=cache,
        )
        manifest.write(str(manifest_path))


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "layers": _cmd_layers,
        "simulate": _cmd_simulate,
        "experiment": _cmd_experiment,
        "calibration": _cmd_calibration,
        "network": _cmd_network,
        "inspect": _cmd_inspect,
        "cache": _cmd_cache,
        "serve": _cmd_serve,
    }
    if getattr(args, "log_level", None):
        obs.configure_logging(args.log_level)
    requested = _obs_requested(args)
    if requested:
        obs.enable()
        obs.reset()
    try:
        with obs.span("cli", command=args.command):
            status = handlers[args.command](args)
        if requested:
            _write_obs_outputs(args)
    finally:
        if requested:
            obs.disable()
    return status


if __name__ == "__main__":
    raise SystemExit(main())
