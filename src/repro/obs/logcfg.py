"""Stdlib ``logging`` configuration for the repro CLI and scripts.

All repro modules log through child loggers of the ``repro`` root
(``logging.getLogger("repro.runtime.executor")`` etc.) and never call
``basicConfig`` themselves, so embedding applications keep full
control.  The CLI's ``--log-level`` flag routes here.
"""

from __future__ import annotations

import logging
from typing import Optional, Union

#: Format mirrors the span naming scheme: time, level, dotted module.
LOG_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"

_LEVELS = ("debug", "info", "warning", "error", "critical")


def configure_logging(
    level: Union[int, str, None] = None,
    stream=None,
) -> Optional[logging.Handler]:
    """Attach one stream handler to the ``repro`` logger tree.

    ``level`` accepts the usual names (case-insensitive) or numeric
    levels; ``None`` leaves logging untouched (the library default —
    silent unless the host application configured handlers).  Returns
    the handler so tests can detach it.
    """
    if level is None:
        return None
    if isinstance(level, str):
        name = level.strip().lower()
        if name not in _LEVELS:
            raise ValueError(
                f"log level must be one of {_LEVELS}, got {level!r}"
            )
        level = getattr(logging, name.upper())
    logger = logging.getLogger("repro")
    handler = logging.StreamHandler(stream)
    handler.setFormatter(logging.Formatter(LOG_FORMAT))
    logger.addHandler(handler)
    logger.setLevel(level)
    return handler
