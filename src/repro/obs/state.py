"""Global enable flag for the observability layer.

Everything in :mod:`repro.obs` is a no-op unless instrumentation has
been switched on, so the simulator's hot paths pay only a module-level
boolean test when tracing is off.  The flag lives in its own module so
:mod:`repro.obs.trace` and :mod:`repro.obs.metrics` can share it
without import cycles.

Enable programmatically via :func:`enable` (the CLI does this when any
of ``--trace-out`` / ``--metrics-out`` / ``--manifest-out`` is given)
or by exporting ``REPRO_OBS=1`` before the process starts — worker
processes spawned by :class:`repro.runtime.executor.SweepExecutor`
are enabled explicitly through the pool initializer instead, so the
environment knob is only needed for ad-hoc scripts.
"""

from __future__ import annotations

import os

#: Environment variable that enables instrumentation at import time.
OBS_ENV = "REPRO_OBS"

_enabled: bool = os.environ.get(OBS_ENV, "").strip().lower() in (
    "1",
    "on",
    "true",
)


def enabled() -> bool:
    """True when spans and metrics are being recorded."""
    return _enabled


def enable() -> None:
    """Turn instrumentation on (idempotent)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn instrumentation off; recorded data is kept until reset."""
    global _enabled
    _enabled = False
