"""``repro.obs`` — spans, metrics, run manifests, logging config.

The observability layer the simulator, cache hierarchy, LHB, sweep
runtime, and disk store report into.  Three pieces:

* :func:`span` — nested wall-clock phase tracing into a
  process-global, thread-safe tree (:mod:`repro.obs.trace`);
* :func:`add` / :func:`gauge` / :class:`MetricsRegistry` — counters
  and gauges (:mod:`repro.obs.metrics`);
* :class:`RunManifest` / :func:`collect_manifest` — the run-identity
  document written next to every instrumented invocation
  (:mod:`repro.obs.manifest`).

Everything is a no-op until :func:`enable` is called (or
``REPRO_OBS=1`` is exported): the disabled fast path is a module-level
flag test, which keeps the simulator's measured overhead below the 2%
budget.  ``repro.runtime.executor`` ships worker-process state back to
the parent via :func:`export_state` / :func:`merge_state`.

See ``docs/OBSERVABILITY.md`` for naming conventions and schemas.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.obs.logcfg import configure_logging
from repro.obs.manifest import RunManifest, collect_manifest, peak_rss_bytes
from repro.obs.metrics import (
    MetricsRegistry,
    add,
    counters_with_prefix,
    export_metrics,
    gauge,
    merge_metrics,
    registry,
    snapshot,
)
from repro.obs.state import OBS_ENV, disable, enable, enabled
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    export_spans,
    merge_spans,
    phase_timings,
    span,
    tree,
)

__all__ = [
    "MetricsRegistry",
    "NULL_SPAN",
    "OBS_ENV",
    "RunManifest",
    "Span",
    "add",
    "collect_manifest",
    "configure_logging",
    "counters_with_prefix",
    "disable",
    "enable",
    "enabled",
    "export_metrics",
    "export_spans",
    "export_state",
    "gauge",
    "merge_metrics",
    "merge_spans",
    "merge_state",
    "peak_rss_bytes",
    "phase_timings",
    "registry",
    "reset",
    "snapshot",
    "span",
    "tree",
]


def reset() -> None:
    """Clear recorded spans and metrics (the enable flag is kept)."""
    from repro.obs import metrics as _metrics
    from repro.obs import trace as _trace

    _metrics.reset()
    _trace.reset()


def export_state() -> Dict[str, Any]:
    """Snapshot this process's spans + metrics for transport."""
    return {"spans": export_spans(), "metrics": export_metrics()}


def merge_state(payload: Dict[str, Any], **span_attrs: Any) -> None:
    """Fold a worker's :func:`export_state` payload into this process.

    Metrics counters add; the worker's span forest is grouped under
    one ``executor.worker`` span tagged with ``span_attrs``.
    """
    if not payload:
        return
    merge_metrics(payload.get("metrics", {}))
    merge_spans(
        payload.get("spans", []), under="executor.worker", **span_attrs
    )
