"""Nested wall-clock phase tracing.

:func:`span` is a context manager recording one named phase::

    with obs.span("sim.layer", layer="yolo/C2", mode="duplo"):
        ...

Spans nest: a span opened while another is active becomes its child,
so a run produces a forest of phase trees (one root per top-level
phase).  Each thread keeps its own open-span stack (``threading.local``)
and finished roots are appended to a process-global list under a lock,
which makes recording safe from concurrent threads; worker *processes*
serialize their forest with :func:`export_spans` and the parent folds
it back in with :func:`merge_spans` (see
:mod:`repro.runtime.executor`).

When instrumentation is disabled (:mod:`repro.obs.state`) ``span``
returns a shared singleton whose ``__enter__``/``__exit__`` do
nothing — the hot-path cost is one flag test and one attribute call.

Serialized form (``tree()``)::

    {"spans": [{"name": ..., "attrs": {...}, "start": t0,
                "duration_s": dt, "children": [...]}, ...]}

``start`` is seconds since the process-local ``time.perf_counter``
epoch and is only meaningful for ordering/nesting within one process;
``duration_s`` is the quantity the manifest and perf gate consume.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

from repro.obs import state

JsonDict = Dict[str, Any]


class Span:
    """One recorded phase: name, attributes, wall-clock, children."""

    __slots__ = ("name", "attrs", "start", "duration_s", "children")

    def __init__(self, name: str, attrs: Optional[JsonDict] = None):
        self.name = name
        self.attrs: JsonDict = attrs or {}
        self.start: float = 0.0
        self.duration_s: float = 0.0
        self.children: List["Span"] = []

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to an open span (chainable)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.start = time.perf_counter()
        _stack().append(self)
        return self

    def __exit__(self, *exc: Any) -> bool:
        self.duration_s = time.perf_counter() - self.start
        stack = _stack()
        # Tolerate exits out of order (a span closed from a different
        # thread than it was opened on records as its own root).
        if stack and stack[-1] is self:
            stack.pop()
        if stack:
            stack[-1].children.append(self)
        else:
            with _LOCK:
                _ROOTS.append(self)
        return False

    def as_dict(self) -> JsonDict:
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "start": self.start,
            "duration_s": self.duration_s,
            "children": [c.as_dict() for c in self.children],
        }

    @staticmethod
    def from_dict(payload: JsonDict) -> "Span":
        span = Span(str(payload["name"]), dict(payload.get("attrs", {})))
        span.start = float(payload.get("start", 0.0))
        span.duration_s = float(payload.get("duration_s", 0.0))
        span.children = [
            Span.from_dict(c) for c in payload.get("children", [])
        ]
        return span


class _NullSpan:
    """Shared do-nothing span returned while instrumentation is off."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


NULL_SPAN = _NullSpan()

_LOCK = threading.Lock()
_ROOTS: List[Span] = []
_LOCAL = threading.local()


def _stack() -> List[Span]:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = []
        _LOCAL.stack = stack
    return stack


def span(name: str, **attrs: Any):
    """Open a phase span (no-op singleton when disabled)."""
    if not state.enabled():
        return NULL_SPAN
    return Span(name, attrs or None)


def tree() -> JsonDict:
    """The finished span forest, JSON-serializable."""
    with _LOCK:
        roots = list(_ROOTS)
    return {"spans": [r.as_dict() for r in roots]}


def reset() -> None:
    """Drop all finished spans and this thread's open-span stack.

    Clearing the stack matters under ``fork``: a worker process
    inherits the parent's open spans (e.g. ``executor.run_chunks``),
    and without the reset every span the worker records would attach
    to that phantom parent instead of becoming an exportable root.
    """
    with _LOCK:
        _ROOTS.clear()
    _LOCAL.stack = []


def export_spans() -> List[JsonDict]:
    """Finished roots in serialized form (worker → parent transport)."""
    return tree()["spans"]


def merge_spans(
    spans: List[JsonDict], under: Optional[str] = None, **attrs: Any
) -> None:
    """Fold a worker's exported forest into this process's trace.

    With ``under`` set, the imported roots are grouped beneath one
    synthetic span of that name (attributes identify the worker), so
    per-chunk spans from N processes stay distinguishable.
    """
    imported = [Span.from_dict(p) for p in spans]
    if not imported:
        return
    if under is not None:
        group = Span(under, attrs or None)
        group.start = min(s.start for s in imported)
        group.duration_s = sum(s.duration_s for s in imported)
        group.children = imported
        imported = [group]
    with _LOCK:
        _ROOTS.extend(imported)


def phase_timings() -> Dict[str, Dict[str, float]]:
    """Aggregate seconds/call-count per span name over the whole forest.

    The flat view the run manifest embeds: ``{name: {"total_s": ...,
    "count": ...}}``, children included.
    """
    totals: Dict[str, Dict[str, float]] = {}

    def visit(span_: Span) -> None:
        agg = totals.setdefault(span_.name, {"total_s": 0.0, "count": 0})
        agg["total_s"] += span_.duration_s
        agg["count"] += 1
        for child in span_.children:
            visit(child)

    with _LOCK:
        roots = list(_ROOTS)
    for root in roots:
        visit(root)
    for agg in totals.values():
        agg["total_s"] = round(agg["total_s"], 6)
    return totals
