"""Run manifests: one JSON document describing one invocation.

A :class:`RunManifest` pins everything needed to interpret (or re-run)
a CLI/experiment invocation: the exact code version (git SHA + dirty
flag), interpreter and NumPy versions, the resolved
:class:`~repro.gpu.config.SimulationOptions`, disk-cache inventory,
the per-phase wall-clock aggregate from :mod:`repro.obs.trace`, the
metrics snapshot, and the process's peak RSS.  The CLI writes one next
to every ``--metrics-out`` / ``--trace-out`` destination, and
``scripts/perf_gate.py`` embeds the same host block in each
``BENCH_*.json`` baseline.

The schema (``docs/OBSERVABILITY.md``) is versioned via
``schema_version`` so downstream tooling can evolve safely;
:meth:`RunManifest.from_json` round-trips anything
:meth:`RunManifest.to_json` produced.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: Bump when the manifest layout changes incompatibly.
SCHEMA_VERSION = 1


def _json_default(obj: Any) -> Any:
    """Flatten the non-JSON types that appear inside options dicts."""
    value = getattr(obj, "value", None)  # Enum members
    if value is not None and not callable(value):
        return value
    if isinstance(obj, (set, frozenset, tuple)):
        return sorted(obj) if isinstance(obj, (set, frozenset)) else list(obj)
    return str(obj)


def git_revision(cwd: Optional[str] = None) -> Dict[str, Any]:
    """Current git SHA/branch/dirty flag, or ``{}`` outside a repo."""
    info: Dict[str, Any] = {}
    try:
        def _run(*argv: str) -> str:
            return subprocess.run(
                ["git", *argv],
                cwd=cwd,
                capture_output=True,
                text=True,
                timeout=10,
                check=True,
            ).stdout.strip()

        info["sha"] = _run("rev-parse", "HEAD")
        info["branch"] = _run("rev-parse", "--abbrev-ref", "HEAD")
        info["dirty"] = bool(_run("status", "--porcelain"))
    except Exception:
        # Not a repo / git missing: the manifest still stands.
        pass
    return info


def host_fingerprint() -> Dict[str, Any]:
    """Interpreter, NumPy, and platform identity."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        numpy_version = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": numpy_version,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def peak_rss_bytes() -> Optional[int]:
    """Peak resident set size of this process, in bytes.

    Uses ``resource.getrusage``; ``ru_maxrss`` is KiB on Linux and
    bytes on macOS.  Returns ``None`` where unavailable (Windows).
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - POSIX-only module
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - mac reports bytes
        return int(peak)
    return int(peak) * 1024


@dataclass
class RunManifest:
    """Everything that identifies one instrumented run."""

    command: str
    argv: list = field(default_factory=list)
    schema_version: int = SCHEMA_VERSION
    created_unix: float = 0.0
    git: Dict[str, Any] = field(default_factory=dict)
    host: Dict[str, Any] = field(default_factory=dict)
    options: Optional[Dict[str, Any]] = None
    cache: Optional[Dict[str, Any]] = None
    phases: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)
    peak_rss_bytes: Optional[int] = None

    def to_json(self, indent: int = 1) -> str:
        return json.dumps(
            dataclasses.asdict(self),
            indent=indent,
            sort_keys=True,
            default=_json_default,
        )

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        payload = json.loads(text)
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in names})

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")


def collect_manifest(
    command: str,
    argv: Optional[list] = None,
    options: Any = None,
    cache: Any = None,
) -> RunManifest:
    """Assemble a manifest from the current process state.

    ``options`` is a :class:`~repro.gpu.config.SimulationOptions` (or
    any dataclass); ``cache`` a :class:`~repro.runtime.store.DiskCache`
    whose inventory/hit counters get embedded.  Phase timings and the
    metrics snapshot come from the live :mod:`repro.obs` state.
    """
    from repro.obs import metrics as metrics_mod
    from repro.obs import trace as trace_mod

    options_dict = None
    if options is not None:
        options_dict = (
            dataclasses.asdict(options)
            if dataclasses.is_dataclass(options) and not isinstance(options, type)
            else dict(options)
        )
    cache_dict = None
    if cache is not None:
        cache_dict = cache.stats().as_dict()
    return RunManifest(
        command=command,
        argv=list(argv if argv is not None else sys.argv),
        created_unix=time.time(),
        git=git_revision(),
        host=host_fingerprint(),
        options=options_dict,
        cache=cache_dict,
        phases=trace_mod.phase_timings(),
        metrics=metrics_mod.snapshot(),
        peak_rss_bytes=peak_rss_bytes(),
    )
