"""Counter/gauge registry the instrumented modules report into.

Two metric kinds, both named with dotted lower-case paths (see
``docs/OBSERVABILITY.md`` for the naming scheme):

* **counters** — monotonically accumulated integers (events replayed,
  LHB hits, cache hits, bytes written).  :func:`add` folds a delta in.
* **gauges** — last-write-wins floats (worker utilization, hit ratios,
  speedups).  :func:`gauge` sets the value.

The module-level registry is process-global and lock-protected, so
concurrent threads can report safely.  Worker processes snapshot
theirs with :func:`export_metrics` and the parent folds the payload in
with :func:`merge_metrics` — counters add, gauges are imported under
the worker's namespace only if names collide (last write wins
otherwise), which keeps e.g. per-worker busy-time gauges intact.

Every entry point early-outs on the :mod:`repro.obs.state` flag, so
with instrumentation disabled a call costs one boolean test.
"""

from __future__ import annotations

import threading
from typing import Dict, Union

from repro.obs import state

Number = Union[int, float]


class MetricsRegistry:
    """Thread-safe counters + gauges with snapshot/merge support."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}

    def add(self, name: str, delta: int = 1) -> None:
        """Accumulate ``delta`` into counter ``name``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(delta)

    def gauge(self, name: str, value: Number) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = float(value)

    def counter(self, name: str) -> int:
        """Current value of a counter (0 if never written)."""
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> Dict[str, Dict[str, Number]]:
        """JSON-serializable copy: ``{"counters": ..., "gauges": ...}``."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
            }

    def merge(self, payload: Dict[str, Dict[str, Number]]) -> None:
        """Fold an exported snapshot in: counters add, gauges overwrite."""
        counters = payload.get("counters", {})
        gauges = payload.get("gauges", {})
        with self._lock:
            for name, value in counters.items():
                self._counters[name] = self._counters.get(name, 0) + int(value)
            for name, value in gauges.items():
                self._gauges[name] = float(value)

    def counters_with_prefix(self, prefix: str) -> Dict[str, int]:
        """All counters whose dotted name starts with ``prefix``.

        The engine/fallback assertions in the test suite compare whole
        counter families (``engine.selected.*``, ``analytic.*``,
        ``fastpath.fallback.*``) at once — filtering here keeps those
        assertions exact: an *unexpected* counter appearing under the
        prefix fails the comparison instead of going unnoticed.
        """
        with self._lock:
            return {
                name: value
                for name, value in self._counters.items()
                if name.startswith(prefix)
            }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-global registry (always available, even disabled)."""
    return _REGISTRY


def add(name: str, delta: int = 1) -> None:
    """Accumulate into a global counter; no-op while disabled."""
    if state.enabled():
        _REGISTRY.add(name, delta)


def gauge(name: str, value: Number) -> None:
    """Set a global gauge; no-op while disabled."""
    if state.enabled():
        _REGISTRY.gauge(name, value)


def snapshot() -> Dict[str, Dict[str, Number]]:
    """Copy of the global registry's state."""
    return _REGISTRY.snapshot()


def counters_with_prefix(prefix: str) -> Dict[str, int]:
    """Prefix-filtered counters of the global registry."""
    return _REGISTRY.counters_with_prefix(prefix)


def export_metrics() -> Dict[str, Dict[str, Number]]:
    """Alias of :func:`snapshot` (worker → parent transport)."""
    return _REGISTRY.snapshot()


def merge_metrics(payload: Dict[str, Dict[str, Number]]) -> None:
    """Fold a worker's exported snapshot into the global registry."""
    _REGISTRY.merge(payload)


def reset() -> None:
    """Clear the global registry."""
    _REGISTRY.reset()
