"""Catalog of the paper's quantitative claims.

Every number the paper states in its evaluation (and the quantitative
statements scattered through Sections II–IV) is registered here with
its source location and, where this reproduction measures an
equivalent, the experiment/metric that produces it.  Tests assert the
catalog stays consistent with the experiment harness, and
EXPERIMENTS.md is the human-readable rendering of the same mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Claim:
    """One quantitative statement from the paper."""

    key: str
    section: str
    statement: str
    value: float
    #: (experiment name, summary metric) producing our measurement, or
    #: None when the claim is checked by a dedicated test instead.
    measured_by: Optional[Tuple[str, str]] = None


CLAIMS: List[Claim] = [
    Claim(
        key="gemm_speedup",
        section="II-A / Fig 2",
        statement="GEMM-based convolution achieves 13.5x over direct",
        value=13.5,
        measured_by=("figure2", "gmean_gemm"),
    ),
    Claim(
        key="gemm_tc_speedup",
        section="II-A / Fig 2",
        statement="Tensor cores accelerate the GEMM convolution 25.7x",
        value=25.7,
        measured_by=("figure2", "gmean_gemm_tc"),
    ),
    Claim(
        key="winograd_speedup",
        section="II-A / Fig 2",
        statement="Winograd achieves 20.7x over direct",
        value=20.7,
        measured_by=("figure2", "gmean_winograd"),
    ),
    Claim(
        key="fft_speedup",
        section="II-A / Fig 2",
        statement="FFT achieves 11.5x over direct",
        value=11.5,
        measured_by=("figure2", "gmean_fft"),
    ),
    Claim(
        key="gemm_memory",
        section="II-A / Fig 3",
        statement="Explicit GEMM needs 9.7x the direct footprint",
        value=9.7,
        measured_by=("figure3", "mean_gemm"),
    ),
    Claim(
        key="implicit_memory",
        section="II-C / Fig 3",
        statement="Implicit GEMM (tensor cores) needs only 1.1x",
        value=1.1,
        measured_by=("figure3", "mean_gemm_tc"),
    ),
    Claim(
        key="winograd_memory",
        section="II-A / Fig 3",
        statement="Winograd needs 12.2x the direct footprint",
        value=12.2,
        measured_by=("figure3", "mean_winograd"),
    ),
    Claim(
        key="fft_memory",
        section="II-A / Fig 3",
        statement="FFT needs 53.5x the direct footprint",
        value=53.5,
        measured_by=("figure3", "mean_fft"),
    ),
    Claim(
        key="tc_operational_intensity",
        section="II-B",
        statement="Tensor cores offer 8x per-block MAC rate at equal precision",
        value=8.0,
    ),
    Claim(
        key="c_only_advantage",
        section="II-C",
        statement="C-only-in-shared beats all-in-shared by 29.7% (3 vs 1 CTAs)",
        value=0.297,
    ),
    Claim(
        key="conv_info_bytes",
        section="IV-A",
        statement="Compiler blob totals 32 bytes per kernel",
        value=32,
    ),
    Claim(
        key="detection_latency_cost",
        section="IV-A",
        statement="A 3-cycle detection unit costs only ~0.9%",
        value=0.009,
    ),
    Claim(
        key="compiler_tag_storage",
        section="IV-D",
        statement="Compiler-only tags for YOLO C2 need 27.2 GB",
        value=27.2e9,
    ),
    Claim(
        key="oracle_improvement",
        section="V-B / Fig 9",
        statement="Oracle LHB improves performance 25.9% on average",
        value=0.259,
        measured_by=("figure9", "gmean_oracle"),
    ),
    Claim(
        key="default_improvement",
        section="V-B / Fig 9",
        statement="1024-entry LHB improves performance 22.1%",
        value=0.221,
        measured_by=("figure9", "gmean_1024-entry"),
    ),
    Claim(
        key="oracle_elimination",
        section="V-B",
        statement="Oracle eliminates ~76% of tensor-core loads",
        value=0.76,
        measured_by=("figure10", "hit_oracle"),
    ),
    Claim(
        key="theoretical_hit_limit",
        section="V-C",
        statement="Theoretical hit-rate ceiling is 88.9%",
        value=0.889,
        measured_by=("figure10", "theoretical_limit"),
    ),
    Claim(
        key="dram_traffic_reduction",
        section="V-D / Fig 11",
        statement="Duplo cuts DRAM traffic 26.6% at 1024 entries",
        value=0.266,
        measured_by=("figure11", "mean_dram_traffic_reduction"),
    ),
    Claim(
        key="cache_scaling_futility",
        section="V-D",
        statement="16x L1 + 4x L2 caches buy only 1.8%",
        value=0.018,
    ),
    Claim(
        key="associativity_gain",
        section="V-E / Fig 12",
        statement="8-way LHB gains only 3.6% over direct-mapped",
        value=0.036,
        measured_by=("figure12", "eight_way_advantage"),
    ),
    Claim(
        key="batch_degradation",
        section="V-F / Fig 13",
        statement="Batch 8 to 32 loses 8.2% of the improvement",
        value=0.082,
        measured_by=("figure13", "batch32_degradation"),
    ),
    Claim(
        key="inference_reduction",
        section="V-G / Fig 14",
        statement="Duplo reduces inference time 22.7%",
        value=0.227,
        measured_by=("figure14", "gmean_inference_reduction"),
    ),
    Claim(
        key="training_reduction",
        section="V-G / Fig 14",
        statement="Duplo reduces training time 8.3%",
        value=0.083,
        measured_by=("figure14", "gmean_training_reduction"),
    ),
    Claim(
        key="energy_reduction",
        section="V-H",
        statement="34.1% on-chip energy reduction",
        value=0.341,
        measured_by=("energy_area", "on_chip_energy_reduction"),
    ),
    Claim(
        key="area_overhead",
        section="V-H",
        statement="0.77% area overhead vs. the register file",
        value=0.0077,
        measured_by=("energy_area", "area_overhead"),
    ),
]


def claims_by_key() -> Dict[str, Claim]:
    return {c.key: c for c in CLAIMS}


def measured_claims() -> List[Claim]:
    """Claims whose value an experiment summary reproduces directly."""
    return [c for c in CLAIMS if c.measured_by is not None]
