"""Evaluation harness: one entry point per paper figure/table.

``repro.analysis.experiments`` exposes ``figure2()`` .. ``figure14()``,
``table2()``, and ``energy_area()``; each returns the rows/series the
corresponding figure or table in the paper plots, computed from this
package's models.  ``repro.analysis.report`` renders them as text.
"""

from repro.analysis.experiments import (
    figure2,
    figure3,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    table2,
    energy_area,
)

__all__ = [
    "figure2",
    "figure3",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
    "table2",
    "energy_area",
]
