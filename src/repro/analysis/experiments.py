"""One entry point per figure/table in the paper's evaluation.

Every function returns an :class:`Experiment` whose ``rows`` are the
exact bars/series the paper plots and whose ``summary`` holds the
aggregate the paper quotes in prose, alongside ``paper`` — the
published value — so EXPERIMENTS.md can tabulate paper-vs-measured.

All functions accept ``layers`` and ``options`` so the benchmark
suite can run reduced configurations (CTA caps) while examples and
EXPERIMENTS.md use the full traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.methodcost import (
    method_memory_ratio,
    method_speedup,
)
from repro.analysis.network import all_network_times
from repro.analysis.sweeps import (
    BATCH_SIZES,
    LHB_ASSOCS,
    LHB_SIZES,
    associativity_sweep,
    batch_size_sweep,
    lhb_size_sweep,
    size_label,
)
from repro.conv.layer import ConvLayerSpec
from repro.conv.methods import FIGURE_METHODS
from repro.conv.workloads import ALL_LAYERS, TABLE_I, get_layer
from repro.energy.model import (
    AreaModel,
    DEFAULT_AREA,
    DEFAULT_ENERGY,
    EnergyBreakdown,
    on_chip_energy_reduction,
)
from repro.gpu.config import (
    ARCHS,
    BASELINE_KERNEL,
    KernelConfig,
    SimulationOptions,
)
from repro.gpu.simulator import EliminationMode
from repro.gpu.stats import geometric_mean
from repro.runtime.executor import SimPoint, SweepExecutor


def _pairs_via_executor(
    layers: Sequence[ConvLayerSpec],
    lhb_entries: Optional[int],
    options: SimulationOptions,
    kernel: KernelConfig,
    jobs: int,
    executor: Optional[SweepExecutor],
):
    """(baseline, duplo) result pairs per layer, one chunk per layer."""
    executor = executor if executor is not None else SweepExecutor(jobs=jobs)
    chunks = [
        [
            SimPoint(
                spec, EliminationMode.BASELINE, kernel=kernel, options=options
            ),
            SimPoint(
                spec,
                EliminationMode.DUPLO,
                lhb_entries=lhb_entries,
                kernel=kernel,
                options=options,
            ),
        ]
        for spec in layers
    ]
    return executor.run_chunks(chunks)


@dataclass
class Experiment:
    """Rows + aggregates of one reproduced figure/table."""

    name: str
    description: str
    rows: List[Dict]
    summary: Dict[str, float] = field(default_factory=dict)
    paper: Dict[str, float] = field(default_factory=dict)


def _default_layers(layers: Optional[Sequence[ConvLayerSpec]]):
    return list(layers) if layers is not None else list(ALL_LAYERS)


# ----------------------------------------------------------------------
# Figures 2 and 3: convolution method comparison
# ----------------------------------------------------------------------

def figure2(layers: Optional[Sequence[ConvLayerSpec]] = None) -> Experiment:
    """Speedup of each convolution method over direct convolution."""
    layers = _default_layers(layers)
    rows = []
    per_method: Dict[str, List[float]] = {m: [] for m in FIGURE_METHODS}
    for spec in layers:
        row: Dict = {"layer": spec.qualified_name}
        for method in FIGURE_METHODS:
            s = method_speedup(spec, method)
            row[method] = s
            if s is not None:
                per_method[method].append(s)
        rows.append(row)
    summary = {
        f"gmean_{m}": geometric_mean(v) if v else float("nan")
        for m, v in per_method.items()
    }
    return Experiment(
        name="figure2",
        description="Speedup of convolution methods over direct convolution",
        rows=rows,
        summary=summary,
        paper={
            "gmean_gemm": 13.5,
            "gmean_winograd": 20.7,
            "gmean_fft": 11.5,
            "gmean_gemm_tc": 25.7,
        },
    )


def figure3(layers: Optional[Sequence[ConvLayerSpec]] = None) -> Experiment:
    """Memory usage of each method relative to direct convolution."""
    layers = _default_layers(layers)
    rows = []
    per_method: Dict[str, List[float]] = {m: [] for m in FIGURE_METHODS}
    for spec in layers:
        row: Dict = {"layer": spec.qualified_name}
        for method in FIGURE_METHODS:
            r = method_memory_ratio(spec, method)
            row[method] = r
            if r is not None:
                per_method[method].append(r)
        rows.append(row)
    summary = {
        f"mean_{m}": sum(v) / len(v) if v else float("nan")
        for m, v in per_method.items()
    }
    return Experiment(
        name="figure3",
        description="Relative memory usage of convolution methods",
        rows=rows,
        summary=summary,
        paper={
            "mean_gemm": 9.7,
            "mean_gemm_tc": 1.1,
            "mean_winograd": 12.2,
            "mean_fft": 53.5,
        },
    )


# ----------------------------------------------------------------------
# Figures 9 and 10: LHB size
# ----------------------------------------------------------------------

def figure9(
    layers: Optional[Sequence[ConvLayerSpec]] = None,
    options: SimulationOptions = SimulationOptions(),
    kernel: KernelConfig = BASELINE_KERNEL,
    jobs: int = 1,
    executor: Optional[SweepExecutor] = None,
) -> Experiment:
    """Performance improvement vs. LHB size."""
    sweep = lhb_size_sweep(
        _default_layers(layers), LHB_SIZES, options, kernel, jobs, executor
    )
    rows = [
        {
            "layer": r.layer,
            "lhb": r.parameter,
            "improvement": r.improvement,
        }
        for r in sweep.rows
    ]
    summary = {
        f"gmean_{p}": sweep.gmean_improvement(p) for p in sweep.parameters()
    }
    return Experiment(
        name="figure9",
        description="Duplo performance improvement with variable-sized LHBs",
        rows=rows,
        summary=summary,
        paper={"gmean_oracle": 0.259, "gmean_1024-entry": 0.221},
    )


def figure10(
    layers: Optional[Sequence[ConvLayerSpec]] = None,
    options: SimulationOptions = SimulationOptions(),
    kernel: KernelConfig = BASELINE_KERNEL,
    jobs: int = 1,
    executor: Optional[SweepExecutor] = None,
) -> Experiment:
    """LHB hit rate vs. size, plus the theoretical limit."""
    layers = _default_layers(layers)
    sweep = lhb_size_sweep(layers, LHB_SIZES, options, kernel, jobs, executor)
    rows = [
        {"layer": r.layer, "lhb": r.parameter, "hit_rate": r.hit_rate}
        for r in sweep.rows
    ]
    limits = [
        r.result.stats.theoretical_hit_limit
        for r in sweep.rows
        if r.parameter == size_label(None)
    ]
    summary = {
        f"hit_{p}": sweep.mean_hit_rate(p) for p in sweep.parameters()
    }
    summary["theoretical_limit"] = sum(limits) / len(limits)
    return Experiment(
        name="figure10",
        description="LHB hit rate with variable buffer sizes",
        rows=rows,
        summary=summary,
        paper={"hit_oracle": 0.76, "theoretical_limit": 0.889},
    )


# ----------------------------------------------------------------------
# Figure 11: memory-hierarchy service breakdown
# ----------------------------------------------------------------------

def figure11(
    layers: Optional[Sequence[ConvLayerSpec]] = None,
    lhb_entries: int = 1024,
    options: SimulationOptions = SimulationOptions(),
    kernel: KernelConfig = BASELINE_KERNEL,
    jobs: int = 1,
    executor: Optional[SweepExecutor] = None,
) -> Experiment:
    """Which component serves each load, baseline vs. Duplo."""
    layers = _default_layers(layers)
    rows = []
    dram_deltas = []
    l1_deltas = []
    l2_deltas = []
    pairs = _pairs_via_executor(
        layers, lhb_entries, options, kernel, jobs, executor
    )
    for spec, (base, duplo) in zip(layers, pairs):
        rows.append(
            {
                "layer": spec.qualified_name,
                "baseline": base.stats.breakdown.fractions(),
                "duplo": duplo.stats.breakdown.fractions(),
            }
        )
        dram_deltas.append(
            1 - duplo.stats.dram_read_bytes / max(base.stats.dram_read_bytes, 1)
        )
        l1_deltas.append(
            1 - duplo.stats.breakdown.l1 / max(base.stats.breakdown.l1, 1)
        )
        l2_deltas.append(
            1 - duplo.stats.breakdown.l2 / max(base.stats.breakdown.l2, 1)
        )
    summary = {
        "mean_dram_traffic_reduction": sum(dram_deltas) / len(dram_deltas),
        "mean_l1_service_reduction": sum(l1_deltas) / len(l1_deltas),
        "mean_l2_service_reduction": sum(l2_deltas) / len(l2_deltas),
    }
    return Experiment(
        name="figure11",
        description="Breakdown of data services along the memory hierarchy",
        rows=rows,
        summary=summary,
        paper={
            "mean_dram_traffic_reduction": 0.266,
            "mean_l1_service_reduction": 0.281,
            "mean_l2_service_reduction": 0.192,
        },
    )


# ----------------------------------------------------------------------
# Figure 12: set associativity
# ----------------------------------------------------------------------

def figure12(
    layers: Optional[Sequence[ConvLayerSpec]] = None,
    options: SimulationOptions = SimulationOptions(),
    kernel: KernelConfig = BASELINE_KERNEL,
    jobs: int = 1,
    executor: Optional[SweepExecutor] = None,
) -> Experiment:
    """Set-associative LHBs vs. the direct-mapped default."""
    sweep = associativity_sweep(
        _default_layers(layers), LHB_ASSOCS, 1024, options, kernel, jobs,
        executor,
    )
    rows = [
        {"layer": r.layer, "assoc": r.parameter, "improvement": r.improvement}
        for r in sweep.rows
    ]
    summary = {
        f"gmean_{p}": sweep.gmean_improvement(p) for p in sweep.parameters()
    }
    direct = 1 + summary["gmean_direct"]
    eight = 1 + summary["gmean_8-way"]
    summary["eight_way_advantage"] = eight / direct - 1
    return Experiment(
        name="figure12",
        description="Performance impact of set-associative LHBs",
        rows=rows,
        summary=summary,
        paper={"eight_way_advantage": 0.036},
    )


# ----------------------------------------------------------------------
# Figure 13: batch size
# ----------------------------------------------------------------------

def figure13(
    layers: Optional[Sequence[ConvLayerSpec]] = None,
    options: SimulationOptions = SimulationOptions(),
    kernel: KernelConfig = BASELINE_KERNEL,
    jobs: int = 1,
    executor: Optional[SweepExecutor] = None,
) -> Experiment:
    """Performance improvement across batch sizes 8/16/32."""
    sweep = batch_size_sweep(
        _default_layers(layers), BATCH_SIZES, 1024, options, kernel, jobs,
        executor,
    )
    rows = [
        {
            "layer": r.layer,
            "batch": r.parameter,
            "improvement": r.improvement,
            # The paper's coverage argument: how much of the SM's
            # unique workspace the fixed LHB can hold at once.
            "lhb_coverage": min(
                1.0,
                1024 / max(r.result.sm_stats.unique_workspace_ids, 1),
            ),
        }
        for r in sweep.rows
    ]
    summary = {
        f"gmean_batch{p}": sweep.gmean_improvement(p) for p in sweep.parameters()
    }
    small = 1 + summary["gmean_batch8"]
    large = 1 + summary["gmean_batch32"]
    summary["batch32_degradation"] = 1 - large / small
    return Experiment(
        name="figure13",
        description="Performance implications of variable-sized batches",
        rows=rows,
        summary=summary,
        paper={"batch32_degradation": 0.082},
    )


# ----------------------------------------------------------------------
# Figure 14: network-level execution time
# ----------------------------------------------------------------------

def figure14(
    lhb_entries: int = 1024,
    options: SimulationOptions = SimulationOptions(),
    kernel: KernelConfig = BASELINE_KERNEL,
) -> Experiment:
    """Inference/training execution time, baseline vs. Duplo."""
    base = all_network_times(
        EliminationMode.BASELINE, options=options, kernel=kernel
    )
    duplo = all_network_times(
        EliminationMode.DUPLO, lhb_entries, options=options, kernel=kernel
    )
    rows = []
    infer = []
    train = []
    for network in TABLE_I:
        inf_red = duplo[network].inference_reduction(base[network])
        trn_red = duplo[network].training_reduction(base[network])
        rows.append(
            {
                "network": network,
                "inference_reduction": inf_red,
                "training_reduction": trn_red,
                "norm_inference_time": 1 - inf_red,
                "norm_training_time": 1 - trn_red,
            }
        )
        infer.append(1 - inf_red)
        train.append(1 - trn_red)
    summary = {
        "gmean_inference_reduction": 1 - geometric_mean(infer),
        "gmean_training_reduction": 1 - geometric_mean(train),
    }
    return Experiment(
        name="figure14",
        description="Network-level execution time (inference and training)",
        rows=rows,
        summary=summary,
        paper={
            "gmean_inference_reduction": 0.227,
            "gmean_training_reduction": 0.083,
        },
    )


# ----------------------------------------------------------------------
# Section V-H: concurrent kernels sharing one SM's LHB
# ----------------------------------------------------------------------

def multikernel_sharing(
    layers: Optional[Sequence[ConvLayerSpec]] = None,
    lhb_entries: Optional[int] = 1024,
    chunk: int = 256,
    options: SimulationOptions = SimulationOptions(),
    kernel: KernelConfig = BASELINE_KERNEL,
) -> Experiment:
    """PID-tagged sharing study: all ``layers`` co-resident on one SM.

    For each kernel: its hit rate running alone vs. time-sliced
    against the rest of the set through one shared buffer.  The PID
    tag field guarantees isolation (no cross-kernel aliasing); the
    contention loss quantifies how much capacity pressure the shared
    working sets add.
    """
    from repro.gpu.multikernel import simulate_shared_lhb

    layers = _default_layers(layers)
    shared = simulate_shared_lhb(
        layers, lhb_entries, chunk=chunk, kernel=kernel, options=options
    )
    rows = []
    losses = []
    for pid, spec in enumerate(layers):
        solo = simulate_shared_lhb(
            [spec], lhb_entries, chunk=chunk, kernel=kernel, options=options
        )[0]
        loss = solo.hit_rate - shared[pid].hit_rate
        losses.append(loss)
        rows.append(
            {
                "layer": spec.qualified_name,
                "pid": pid,
                "lookups": shared[pid].lookups,
                "solo_hit_rate": solo.hit_rate,
                "shared_hit_rate": shared[pid].hit_rate,
                "contention_loss": loss,
            }
        )
    total_lookups = sum(r["lookups"] for r in rows)
    total_hits = sum(s.hits for s in shared)
    summary = {
        "kernels": float(len(layers)),
        "shared_hit_rate": total_hits / total_lookups if total_lookups else 0.0,
        "mean_contention_loss": sum(losses) / len(losses),
        "max_contention_loss": max(losses),
    }
    return Experiment(
        name="multikernel",
        description="Concurrent kernels sharing one SM's LHB (PID tags)",
        rows=rows,
        summary=summary,
    )


# ----------------------------------------------------------------------
# Table II: detection-unit workflow
# ----------------------------------------------------------------------

def table2() -> Experiment:
    """The worked Duplo workflow example on the Figure 6 toy layer.

    Four tensor-core loads against a 4x4 input lowered with a 3x3
    unit-stride filter: miss/allocate, bypass (non-workspace), hit /
    register reuse, conflict miss / entry replacement.
    """
    from repro.analysis.table2 import run_table2_workflow

    rows = run_table2_workflow()
    hits = sum(1 for r in rows if r["lhb"] == "hit")
    return Experiment(
        name="table2",
        description="Duplo workflow example (LHB miss/bypass/hit/replace)",
        rows=rows,
        summary={"hits": hits},
        paper={"hits": 1},
    )


# ----------------------------------------------------------------------
# Section V-H: energy and area
# ----------------------------------------------------------------------

def energy_area(
    layers: Optional[Sequence[ConvLayerSpec]] = None,
    lhb_entries: int = 1024,
    options: SimulationOptions = SimulationOptions(),
    kernel: KernelConfig = BASELINE_KERNEL,
    jobs: int = 1,
    executor: Optional[SweepExecutor] = None,
) -> Experiment:
    """On-chip energy reduction and detection-unit area overhead."""
    layers = _default_layers(layers)
    rows = []
    base_total: Optional[EnergyBreakdown] = None
    duplo_total: Optional[EnergyBreakdown] = None
    pairs = _pairs_via_executor(
        layers, lhb_entries, options, kernel, jobs, executor
    )
    for spec, (base, duplo) in zip(layers, pairs):
        eb = DEFAULT_ENERGY.breakdown(base.stats)
        ed = DEFAULT_ENERGY.breakdown(duplo.stats)
        rows.append(
            {
                "layer": spec.qualified_name,
                "on_chip_reduction": on_chip_energy_reduction(eb, ed),
                "baseline_pj": eb.on_chip_pj,
                "duplo_pj": ed.on_chip_pj,
            }
        )
        base_total = eb if base_total is None else base_total.merge(eb)
        duplo_total = ed if duplo_total is None else duplo_total.merge(ed)
    summary = {
        "on_chip_energy_reduction": on_chip_energy_reduction(
            base_total, duplo_total
        ),
        "area_overhead": DEFAULT_AREA.area_overhead(lhb_entries),
    }
    return Experiment(
        name="energy_area",
        description="On-chip energy reduction and area overhead (Sec V-H)",
        rows=rows,
        summary=summary,
        paper={"on_chip_energy_reduction": 0.341, "area_overhead": 0.0077},
    )


# ----------------------------------------------------------------------
# Architecture zoo: Duplo across tensor-core generations
# ----------------------------------------------------------------------

def arch_zoo(
    layers: Optional[Sequence[ConvLayerSpec]] = None,
    lhb_entries: int = 1024,
    options: SimulationOptions = SimulationOptions(),
    jobs: int = 1,
    executor: Optional[SweepExecutor] = None,
) -> Experiment:
    """Duplo and WIR across every :data:`ARCHS` preset.

    One row per (arch, layer, mode): improvement over that arch's own
    baseline, LHB hit rate, elimination rate, plus the preset's
    detection-unit area overhead (the WIR element-ID field widens as
    fragments shrink below Volta's 32 bytes).  The default layer set
    pairs two Table I convs with the two attention GEMMs so every
    fragment geometry exercises both workload classes.
    """
    if layers is None:
        layers = [
            get_layer("resnet", "C2"),
            get_layer("yolo", "C3"),
            get_layer("attention", "QK"),
            get_layer("attention", "PV"),
        ]
    else:
        layers = list(layers)
    executor = executor if executor is not None else SweepExecutor(jobs=jobs)
    rows: List[Dict] = []
    summary: Dict[str, float] = {}
    for name, preset in ARCHS.items():
        chunks = [
            [
                SimPoint(
                    spec,
                    mode,
                    lhb_entries=lhb_entries,
                    gpu=preset.gpu,
                    kernel=preset.kernel,
                    options=options,
                )
                for mode in (
                    EliminationMode.BASELINE,
                    EliminationMode.DUPLO,
                    EliminationMode.WIR,
                )
            ]
            for spec in layers
        ]
        outs = executor.run_chunks(chunks)
        speedups: Dict[str, List[float]] = {"duplo": [], "wir": []}
        for spec, (base, duplo, wir) in zip(layers, outs):
            for label, result in (("duplo", duplo), ("wir", wir)):
                speedup = result.speedup_over(base)
                speedups[label].append(speedup)
                rows.append(
                    {
                        "arch": name,
                        "layer": spec.qualified_name,
                        "mode": label,
                        "improvement": speedup - 1,
                        "hit_rate": result.stats.lhb_hit_rate,
                        "eliminated": result.stats.elimination_rate,
                    }
                )
        for label, values in speedups.items():
            summary[f"gmean_{label}_{name}"] = geometric_mean(values) - 1
        summary[f"area_overhead_{name}"] = AreaModel.for_arch(
            preset.gpu
        ).area_overhead(lhb_entries)
    return Experiment(
        name="arch_zoo",
        description="Duplo/WIR improvement across tensor-core generations",
        rows=rows,
        summary=summary,
    )
