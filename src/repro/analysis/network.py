"""Network-level execution time (Figure 14).

A DNN's execution time is modelled as the sum of its convolutional
layers' times (the paper: pooling/softmax are "infinitesimally small"
— carried here as a configurable epsilon):

* **inference** — one forward pass; Duplo accelerates every lowered
  convolution;
* **training** — forward plus backward.  The backward pass runs two
  GEMMs per layer: the *data gradient*, which is itself a convolution
  (``repro.conv.gradients.data_gradient_spec``) and is simulated as
  one, and the *weight gradient*, a (K x F x M) contraction with no
  input-workspace duplication, charged at its baseline GEMM cost.
  Duplo's detection unit is only programmed for the forward
  convolutions (matching the paper's 8.3%-vs-22.7% asymmetry);
  ``accelerate_backward=True`` is the what-if ablation where the
  compiler also programs the data-gradient convolutions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.conv.gradients import data_gradient_spec
from repro.conv.layer import ConvLayerSpec
from repro.conv.workloads import TABLE_I
from repro.gpu.config import BASELINE_KERNEL, KernelConfig, SimulationOptions
from repro.gpu.simulator import EliminationMode, simulate_layer

#: Fraction of network time in non-convolution layers (pooling,
#: softmax, ...) — invisible in the paper's Figure 14.
NON_CONV_EPSILON = 0.002


@dataclass(frozen=True)
class NetworkTime:
    """Execution time of one network under one configuration."""

    network: str
    inference_cycles: float
    training_cycles: float

    def inference_reduction(self, baseline: "NetworkTime") -> float:
        """Fractional execution-time reduction vs. a baseline run."""
        return 1.0 - self.inference_cycles / baseline.inference_cycles

    def training_reduction(self, baseline: "NetworkTime") -> float:
        return 1.0 - self.training_cycles / baseline.training_cycles


def network_time(
    network: str,
    mode: EliminationMode = EliminationMode.DUPLO,
    lhb_entries: Optional[int] = 1024,
    layers: Optional[Sequence[ConvLayerSpec]] = None,
    options: SimulationOptions = SimulationOptions(),
    kernel: KernelConfig = BASELINE_KERNEL,
    accelerate_backward: bool = False,
) -> NetworkTime:
    """Total cycles for one network's inference and training steps."""
    if layers is None:
        layers = TABLE_I[network]
    forward = 0.0
    backward = 0.0
    for spec in layers:
        fwd = simulate_layer(
            spec, mode, lhb_entries=lhb_entries, kernel=kernel, options=options
        ).cycles
        # Data gradient: a real (often transposed) convolution.
        dgrad_mode = (
            mode if accelerate_backward else EliminationMode.BASELINE
        )
        dgrad = simulate_layer(
            data_gradient_spec(spec),
            dgrad_mode,
            lhb_entries=lhb_entries,
            kernel=kernel,
            options=options,
        ).cycles
        # Weight gradient: same MAC volume, no programmed workspace;
        # charged at the forward GEMM's baseline cost.
        wgrad = simulate_layer(
            spec, EliminationMode.BASELINE, kernel=kernel, options=options
        ).cycles
        forward += fwd
        backward += dgrad + wgrad
    inference = forward * (1 + NON_CONV_EPSILON)
    training = (forward + backward) * (1 + NON_CONV_EPSILON)
    return NetworkTime(
        network=network, inference_cycles=inference, training_cycles=training
    )


def all_network_times(
    mode: EliminationMode,
    lhb_entries: Optional[int] = 1024,
    options: SimulationOptions = SimulationOptions(),
    kernel: KernelConfig = BASELINE_KERNEL,
    accelerate_backward: bool = False,
) -> Dict[str, NetworkTime]:
    """Figure 14's bar set for one configuration."""
    return {
        network: network_time(
            network,
            mode,
            lhb_entries,
            options=options,
            kernel=kernel,
            accelerate_backward=accelerate_backward,
        )
        for network in TABLE_I
    }
