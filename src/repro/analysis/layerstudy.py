"""Layer dossier: everything the library knows about one layer.

Combines geometry, the duplicate census, roofline placement, the
simulated baseline/Duplo comparison, and energy accounting into one
structured report — the "why does Duplo help (or not) on *this*
layer" tool, exposed as ``python -m repro inspect NETWORK LAYER``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.duplication import DuplicationCensus, duplication_census
from repro.analysis.roofline import RooflinePoint, roofline_point
from repro.conv.layer import ConvLayerSpec
from repro.energy.model import DEFAULT_ENERGY, on_chip_energy_reduction
from repro.gpu.config import (
    BASELINE_KERNEL,
    GPUConfig,
    KernelConfig,
    SimulationOptions,
    TITAN_V,
)
from repro.gpu.simulator import EliminationMode, LayerResult, simulate_layer


@dataclass(frozen=True)
class LayerDossier:
    """Full characterisation of one layer under Duplo."""

    spec: ConvLayerSpec
    census: DuplicationCensus
    roofline: RooflinePoint
    baseline: LayerResult
    duplo: LayerResult
    energy_reduction: float

    @property
    def improvement(self) -> float:
        return self.duplo.speedup_over(self.baseline) - 1

    @property
    def verdict(self) -> str:
        """One-line diagnosis of where this layer's benefit comes from."""
        if self.census.duplicate_fraction < 0.3:
            return (
                "little duplication to mine: lowering barely replicates "
                "this geometry"
            )
        if not self.roofline.memory_bound:
            return (
                "duplication exists but the layer is compute-bound: "
                "eliminated traffic hides behind the tensor cores"
            )
        if self.duplo.stats.lhb_hit_rate < 0.5 * (
            self.duplo.stats.theoretical_hit_limit or 1
        ):
            return (
                "duplicates recur beyond the LHB's reach: a larger buffer "
                "or longer register lifetimes would help"
            )
        return "memory-bound with reachable duplicates: Duplo's sweet spot"

    def summary(self) -> Dict[str, float]:
        """Flat metric dict (what the CLI prints)."""
        return {
            "duplication_factor": self.spec.duplication_factor,
            "duplicate_fraction": self.census.duplicate_fraction,
            "intra_patch_share": self.census.intra_patch / self.census.total,
            "inter_patch_share": self.census.inter_patch / self.census.total,
            "arithmetic_intensity": self.roofline.arithmetic_intensity,
            "memory_bound": float(self.roofline.memory_bound),
            "lhb_hit_rate": self.duplo.stats.lhb_hit_rate,
            "theoretical_hit_limit": self.duplo.stats.theoretical_hit_limit,
            "eliminated_load_fraction": self.duplo.stats.elimination_rate,
            "dram_read_reduction": 1
            - self.duplo.stats.dram_read_bytes
            / max(self.baseline.stats.dram_read_bytes, 1),
            "improvement": self.improvement,
            "on_chip_energy_reduction": self.energy_reduction,
        }


def study_layer(
    spec: ConvLayerSpec,
    lhb_entries: Optional[int] = 1024,
    options: SimulationOptions = SimulationOptions(),
    gpu: GPUConfig = TITAN_V,
    kernel: KernelConfig = BASELINE_KERNEL,
) -> LayerDossier:
    """Build the dossier for one layer.

    The census runs on the single-image variant (duplication is
    batch-invariant; see ``tests/test_duplication.py``) to keep the
    exact enumeration cheap.  ``gpu``/``kernel`` select the machine
    model (pass an :data:`repro.gpu.config.ARCHS` preset's pair for a
    non-Volta dossier); the census and roofline stay geometry-level.
    """
    census = duplication_census(spec.with_batch(1))
    point = roofline_point(spec)
    baseline = simulate_layer(
        spec, EliminationMode.BASELINE, gpu=gpu, kernel=kernel,
        options=options,
    )
    duplo = simulate_layer(
        spec, EliminationMode.DUPLO, lhb_entries=lhb_entries, gpu=gpu,
        kernel=kernel, options=options,
    )
    energy = on_chip_energy_reduction(
        DEFAULT_ENERGY.breakdown(baseline.stats),
        DEFAULT_ENERGY.breakdown(duplo.stats),
    )
    return LayerDossier(
        spec=spec,
        census=census,
        roofline=point,
        baseline=baseline,
        duplo=duplo,
        energy_reduction=energy,
    )
